package gemini_test

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"gemini"
)

var (
	sysOnce sync.Once
	sysInst *gemini.System
)

// testSystem builds one small-scale system for the whole test binary.
func testSystem(t testing.TB) *gemini.System {
	t.Helper()
	sysOnce.Do(func() {
		s, err := gemini.NewSystem(gemini.Small())
		if err != nil {
			t.Fatalf("NewSystem: %v", err)
		}
		sysInst = s
	})
	return sysInst
}

func TestNewSystemZeroConfigRejected(t *testing.T) {
	if _, err := gemini.NewSystem(gemini.Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestSearchFacade(t *testing.T) {
	s := testSystem(t)
	res, ms, err := s.Search("united kingdom")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || len(res) > 10 {
		t.Fatalf("results = %d", len(res))
	}
	if ms <= 0 {
		t.Fatalf("service time = %v", ms)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted by score")
		}
	}
	if _, _, err := s.Search("zzzz qqqq"); err == nil {
		t.Error("nonsense query accepted")
	}
}

func TestPredictFacade(t *testing.T) {
	s := testSystem(t)
	pred, errMs, err := s.Predict("toyota")
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || pred > 61 {
		t.Fatalf("predicted ms = %v", pred)
	}
	if errMs < -10 || errMs > 10 {
		t.Fatalf("predicted error = %v", errMs)
	}
	if _, _, err := s.Predict(""); err == nil {
		t.Error("empty query accepted")
	}
}

func TestFeaturesFacade(t *testing.T) {
	s := testSystem(t)
	fv, err := s.Features("canada")
	if err != nil {
		t.Fatal(err)
	}
	names := gemini.FeatureNames()
	if len(fv) != len(names) {
		t.Fatalf("features %d vs names %d", len(fv), len(names))
	}
	if fv[0] <= 0 { // posting list length
		t.Errorf("posting list length = %v", fv[0])
	}
}

func TestSimulateFacade(t *testing.T) {
	s := testSystem(t)
	m, err := s.Simulate("Gemini", gemini.TraceSpec{Kind: "fixed", EngineRPS: 40, DurationMs: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.Completed+m.Dropped != m.Requests {
		t.Fatalf("request accounting: %+v", m)
	}
	if m.SocketPowerW < 10 || m.SocketPowerW > 45 {
		t.Errorf("socket power = %v", m.SocketPowerW)
	}
	if m.TailLatencyMs <= 0 || m.TailLatencyMs > 60 {
		t.Errorf("tail = %v", m.TailLatencyMs)
	}
	if _, err := s.Simulate("NoSuchPolicy", gemini.TraceSpec{}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestSimulateDefaultsApplied(t *testing.T) {
	s := testSystem(t)
	m, err := s.Simulate("Baseline", gemini.TraceSpec{DurationMs: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Error("defaults produced no requests")
	}
}

func TestSimulateCluster(t *testing.T) {
	s := testSystem(t)
	m, err := s.Simulate("Gemini", gemini.TraceSpec{
		Kind: "fixed", EngineRPS: 120, DurationMs: 20_000, Cores: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 || m.Completed+m.Dropped != m.Requests {
		t.Fatalf("cluster accounting: %+v", m)
	}
}

func TestGeminiBeatsBaselinePower(t *testing.T) {
	s := testSystem(t)
	spec := gemini.TraceSpec{Kind: "fixed", EngineRPS: 60, DurationMs: 30_000}
	g, err := s.Simulate("Gemini", spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Simulate("Baseline", spec)
	if err != nil {
		t.Fatal(err)
	}
	if g.SocketPowerW >= b.SocketPowerW {
		t.Errorf("Gemini %v W >= Baseline %v W", g.SocketPowerW, b.SocketPowerW)
	}
	// The small test platform's deliberately tiny NNs underfit the spike
	// class, so the tail runs somewhat past the budget here; the full-scale
	// platform holds it under 40 ms (see EXPERIMENTS.md).
	if g.TailLatencyMs > 55 {
		t.Errorf("Gemini tail %v ms far beyond budget", g.TailLatencyMs)
	}
}

func TestPoliciesListed(t *testing.T) {
	s := testSystem(t)
	for _, name := range gemini.Policies() {
		if _, err := s.Simulate(name, gemini.TraceSpec{Kind: "fixed", EngineRPS: 20, DurationMs: 5_000}); err != nil {
			t.Errorf("policy %s: %v", name, err)
		}
	}
}

func TestExperimentFacade(t *testing.T) {
	s := testSystem(t)
	names := s.Experiments()
	if len(names) < 15 {
		t.Fatalf("only %d experiments", len(names))
	}
	out, err := s.Experiment("table2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "toyota") || !strings.Contains(out, "united kingdom") {
		t.Errorf("table2 output missing example queries:\n%s", out)
	}
	if _, err := s.Experiment("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestConfigModifiers(t *testing.T) {
	cfg := gemini.Small().WithSeed(7).WithBudgetMs(50)
	s, err := gemini.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := s.Simulate("Gemini", gemini.TraceSpec{Kind: "fixed", EngineRPS: 30, DurationMs: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests == 0 {
		t.Error("no requests")
	}
}

func TestPlatformExposed(t *testing.T) {
	s := testSystem(t)
	if s.Platform() == nil || s.Platform().Engine == nil {
		t.Error("platform not exposed")
	}
}

func TestSimulateTraceFile(t *testing.T) {
	s := testSystem(t)
	path := t.TempDir() + "/replay.csv"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, "arrival_ms")
	for i := 0; i < 100; i++ {
		fmt.Fprintf(f, "%d\n", i*50)
	}
	f.Close()

	m, err := s.Simulate("Gemini", gemini.TraceSpec{File: path})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests != 100 {
		t.Fatalf("requests = %d, want 100 (replayed)", m.Requests)
	}
	if _, err := s.Simulate("Gemini", gemini.TraceSpec{File: path + ".missing"}); err == nil {
		t.Error("missing trace file accepted")
	}
}
