// Searchservice stands up the paper's Fig. 1a architecture as real HTTP
// services: four Index Serving Nodes (each the Fig. 9 structure — a search
// handler feeding a blocking queue drained by one working thread) behind an
// aggregator that broadcasts each query and merges the top-K, with partial
// aggregation ignoring stragglers (ref [2]).
//
//	go run ./examples/searchservice
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"gemini/internal/corpus"
	"gemini/internal/index"
	"gemini/internal/search"
	"gemini/internal/server"
)

func main() {
	const shards = 4
	fmt.Printf("building %d ISN shards...\n", shards)

	var urls []string
	for s := 0; s < shards; s++ {
		spec := corpus.SmallSpec()
		spec.Seed = int64(s + 1)
		spec.NumDocs = 800 + 400*s // uneven shards, like real partitions
		c := corpus.Generate(spec)
		eng := search.NewEngine(index.Build(c), search.DefaultK)
		cost := search.DefaultCostModel()
		isn := server.NewISN(s, c, eng, cost)
		isn.Start()
		defer isn.Stop()

		mux := http.NewServeMux()
		mux.Handle("/search", isn)
		srv := httptest.NewServer(mux)
		defer srv.Close()
		urls = append(urls, srv.URL)
		fmt.Printf("  ISN-%d serving %d docs at %s\n", s, spec.NumDocs, srv.URL)
	}

	agg := server.NewAggregator(urls, 10)
	agg.Policy = server.Partial
	agg.Quorum = shards // wait for all, but never longer than the timeout
	agg.Timeout = 200 * time.Millisecond

	for _, q := range []string{"united kingdom", "canada", "toyota", "power energy"} {
		resp, err := agg.Search(context.Background(), q)
		if err != nil {
			log.Fatalf("query %q: %v", q, err)
		}
		fmt.Printf("\nquery %q: %d/%d shards in %.2f ms\n",
			q, resp.ShardsResponded, resp.ShardsAsked, resp.LatencyMs)
		for i, r := range resp.Results[:min(3, len(resp.Results))] {
			fmt.Printf("  #%d shard %d doc %d score %.3f\n", i+1, r.Shard, r.Doc, r.Score)
		}
		for _, ps := range resp.PerShard {
			fmt.Printf("  ISN-%d modeled service %.2f ms\n", ps.Shard, ps.ServiceMs)
		}
	}
	fmt.Println("\nthe per-shard modeled service times are what Gemini's DVFS planner")
	fmt.Println("consumes: the overall response is gated by the slowest shard, which is")
	fmt.Println("why the paper manages the tail at every ISN.")
}
