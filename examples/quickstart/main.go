// Quickstart: build the reproduction system, run a search, inspect the
// neural predictors' view of a query, and simulate one Gemini-managed ISN.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gemini"
)

func main() {
	// Small() builds in well under a second: a reduced corpus and compact
	// predictor networks. Use gemini.Default() for the paper-scale setup.
	sys, err := gemini.NewSystem(gemini.Small())
	if err != nil {
		log.Fatal(err)
	}

	// 1. The search substrate: top-K retrieval with MaxScore pruning.
	results, serviceMs, err := sys.Search("united kingdom")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query %q: %d results, modeled service time %.2f ms at 2.7 GHz\n",
		"united kingdom", len(results), serviceMs)
	for i, r := range results[:3] {
		fmt.Printf("  #%d doc %d score %.3f\n", i+1, r.Doc, r.Score)
	}

	// 2. The two NN predictors (paper §IV): service time S* and error E*.
	pred, predErr, err := sys.Predict("united kingdom")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted S* = %.1f ms, predicted error E* = %+.1f ms\n", pred, predErr)

	// 3. The Table II feature vector feeding both predictors.
	fv, _ := sys.Features("united kingdom")
	names := gemini.FeatureNames()
	fmt.Println("features:")
	for i, v := range fv {
		fmt.Printf("  %-26s %.2f\n", names[i], v)
	}

	// 4. A Gemini-managed ISN under a 60 RPS Wikipedia-model load,
	// side by side with the unmanaged baseline.
	spec := gemini.TraceSpec{Kind: "wiki", EngineRPS: 60, DurationMs: 30_000}
	for _, policy := range []string{"Baseline", "Gemini"} {
		m, err := sys.Simulate(policy, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s power %5.1f W   p95 %5.1f ms   violations %.1f%%   drops %.1f%%\n",
			m.Policy, m.SocketPowerW, m.TailLatencyMs, m.ViolationRate*100, m.DropRate*100)
	}
}
