// Multicore demonstrates the paper's §V extension plan: a global broker
// distributing the query stream over N independently Gemini-managed cores,
// each with its own queue ("we can maintain a separate queue for each core
// and have a global broker to distribute the incoming requests to each
// core ... each core will manage its power consumption independently").
//
//	go run ./examples/multicore
package main

import (
	"fmt"
	"log"

	"gemini"
)

func main() {
	sys, err := gemini.NewSystem(gemini.Small())
	if err != nil {
		log.Fatal(err)
	}

	// A stream far beyond one core's capacity: engine-level 400 RPS.
	const engineRPS = 400
	fmt.Printf("engine load %.0f RPS, Gemini per core:\n\n", float64(engineRPS))
	fmt.Printf("%-6s %-10s %-12s %-10s %-8s\n", "cores", "p95 (ms)", "violations", "drops", "power W")
	for _, cores := range []int{1, 2, 4, 8} {
		m, err := sys.Simulate("Gemini", gemini.TraceSpec{
			Kind: "fixed", EngineRPS: engineRPS, DurationMs: 30_000, Cores: cores,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6d %-10.1f %-12s %-10s %-8.1f\n",
			cores, m.TailLatencyMs,
			fmt.Sprintf("%.1f%%", m.ViolationRate*100),
			fmt.Sprintf("%.1f%%", m.DropRate*100),
			m.SocketPowerW)
	}
	fmt.Println("\nadding cores relieves the overload: the broker's least-expected-work")
	fmt.Println("dispatch keeps per-core queues short, and each core still harvests")
	fmt.Println("slack with its own two-step DVFS plan.")
}
