// Policycompare runs the trace-driven evaluation (Figs. 12–14): all policies
// over the three synthetic traces, reporting power saving, tail latency and
// violation rates — the paper's headline comparison.
//
//	go run ./examples/policycompare
//	go run ./examples/policycompare -trace lucene -duration 200
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gemini"
)

func main() {
	var (
		traceName = flag.String("trace", "all", "trace: wiki, lucene, trec, all")
		duration  = flag.Float64("duration", 100, "seconds of simulated time per run")
		full      = flag.Bool("full", false, "use the paper-scale platform")
	)
	flag.Parse()

	cfg := gemini.Small()
	rps := 35.0 // within the small demo platform's single-worker capacity
	if *full {
		cfg = gemini.Default()
		rps = 60
	}
	sys, err := gemini.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	traces := []string{"wiki", "lucene", "trec"}
	if *traceName != "all" {
		traces = []string{*traceName}
	}
	policies := []string{"Baseline", "Rubik", "Pegasus", "Gemini", "Gemini-a", "Gemini-95th", "EETL", "PACE-oracle"}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "trace\tpolicy\tpower W\tsaving\tp95 ms\tviolations\tdrops")
	for _, tr := range traces {
		var baseW float64
		for _, p := range policies {
			m, err := sys.Simulate(p, gemini.TraceSpec{
				Kind: tr, EngineRPS: rps, DurationMs: *duration * 1000,
			})
			if err != nil {
				log.Fatal(err)
			}
			if p == "Baseline" {
				baseW = m.SocketPowerW
			}
			saving := 0.0
			if baseW > 0 {
				saving = 1 - m.SocketPowerW/baseW
			}
			fmt.Fprintf(w, "%s\t%s\t%.1f\t%.1f%%\t%.1f\t%.1f%%\t%.1f%%\n",
				tr, p, m.SocketPowerW, saving*100, m.TailLatencyMs,
				m.ViolationRate*100, m.DropRate*100)
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npaper reference: Gemini saves up to 42.2% (Lucene trace) with the lowest violation rate (2.4%)")
}
