// Powerstudy sweeps server load (the Fig. 10/11 experiment) across all five
// evaluated policies and prints the power, saving and tail-latency grid.
//
//	go run ./examples/powerstudy            # small platform, quick
//	go run ./examples/powerstudy -full      # paper-scale platform
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"gemini"
)

func main() {
	full := flag.Bool("full", false, "use the paper-scale platform")
	flag.Parse()

	cfg := gemini.Small()
	durMs := 30_000.0
	// The small demo platform's mean service time is higher than the
	// paper-scale platform's, so its sweep stops at 60 engine RPS to stay
	// inside a single worker's capacity.
	rates := []float64{10, 20, 30, 45, 60}
	if *full {
		cfg = gemini.Default()
		durMs = 120_000
		rates = []float64{20, 40, 60, 80, 100}
	}
	sys, err := gemini.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}

	policies := []string{"Baseline", "Rubik", "Pegasus", "Gemini-a", "Gemini"}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "RPS")
	for _, p := range policies {
		fmt.Fprintf(w, "\t%s W\t%s p95", p, p)
	}
	fmt.Fprintln(w)

	for _, rps := range rates {
		fmt.Fprintf(w, "%.0f", rps)
		var baseW float64
		for _, p := range policies {
			m, err := sys.Simulate(p, gemini.TraceSpec{
				Kind: "fixed", EngineRPS: rps, DurationMs: durMs, Seed: int64(rps),
			})
			if err != nil {
				log.Fatal(err)
			}
			if p == "Baseline" {
				baseW = m.SocketPowerW
			}
			fmt.Fprintf(w, "\t%.1f", m.SocketPowerW)
			fmt.Fprintf(w, "\t%.1f", m.TailLatencyMs)
			_ = baseW
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npaper reference at 100 RPS: Pegasus saves 9.2%, Rubik 16.8%, Gemini-a 32.7%, Gemini 37.9%")
}
