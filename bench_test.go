// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the DESIGN.md ablations. Each benchmark runs its experiment
// end-to-end on the shared small-scale platform (the full-scale numbers are
// produced by cmd/geminisim and recorded in EXPERIMENTS.md) and reports the
// experiment's headline quantity as a custom metric.
package gemini_test

import (
	"sync"
	"testing"
	"time"

	"gemini/internal/cpu"
	"gemini/internal/harness"
	"gemini/internal/sim"
)

var (
	benchOnce sync.Once
	benchPlat *harness.Platform
)

// benchPlatform builds the shared small platform once per binary.
func benchPlatform(b *testing.B) *harness.Platform {
	b.Helper()
	benchOnce.Do(func() { benchPlat = harness.NewPlatform(harness.SmallOptions()) })
	return benchPlat
}

// benchSet returns a fresh experiment set (so cached grids do not leak
// between iterations) at a bench-friendly duration scale.
func benchSet(b *testing.B) *harness.ExperimentSet {
	return harness.NewExperimentSet(benchPlatform(b), 0.05)
}

// runExperiment drives one named experiment b.N times. The platform is built
// outside the timed region; each iteration gets a fresh experiment set (via
// benchSet) so cached grids do not leak between iterations.
func runExperiment(b *testing.B, name string) {
	benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := benchSet(b).Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Comparison(b *testing.B) { runExperiment(b, "table1") }

func BenchmarkTable2Features(b *testing.B) { runExperiment(b, "table2") }

func BenchmarkFig1bWorkload(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		_, data := p.Fig1b()
		ratio = data.NormalizedMaxRPS
	}
	b.ReportMetric(ratio, "maxRPS/minRPS")
}

func BenchmarkFig1cServiceTimes(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var spread float64
	for i := 0; i < b.N; i++ {
		_, data := p.Fig1c()
		spread = data.SpreadMax
	}
	b.ReportMetric(spread, "service-spread-x")
}

func BenchmarkFig3FreqLatency(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var r2 float64
	for i := 0; i < b.N; i++ {
		_, data := p.Fig3()
		r2 = data.FitR2
	}
	b.ReportMetric(r2, "R2-vs-1/f")
}

func BenchmarkFig6FeatureImportance(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var first, last float64
	for i := 0; i < b.N; i++ {
		_, data := p.Fig6()
		first = data.Points[0].Accuracy
		last = data.Points[len(data.Points)-1].Accuracy
	}
	b.ReportMetric(first*100, "acc-1-feature-%")
	b.ReportMetric(last*100, "acc-all-features-%")
}

func BenchmarkFig7ModelComparison(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var clfErr float64
	for i := 0; i < b.N; i++ {
		_, data := p.Fig7()
		clfErr = data.Evals[2].ErrorRate
	}
	b.ReportMetric(clfErr*100, "classifier-err-%")
}

func BenchmarkFig8ErrorPredictor(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var acc float64
	for i := 0; i < b.N; i++ {
		_, data := p.Fig8()
		acc = data.Accuracy
	}
	b.ReportMetric(acc*100, "error-NN-acc-%")
}

func BenchmarkFig10PowerVsRPS(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var saving float64
	for i := 0; i < b.N; i++ {
		data := p.RPSSweep([]float64{20, 60, 100}, 10_000)
		cells := data.Cells["Gemini"]
		saving = cells[len(cells)-1].SavingFrac
	}
	b.ReportMetric(saving*100, "gemini-saving-%@100RPS")
}

func BenchmarkFig11TailLatency(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var tail float64
	for i := 0; i < b.N; i++ {
		data := p.RPSSweep([]float64{20, 60, 100}, 10_000)
		cells := data.Cells["Gemini"]
		tail = cells[len(cells)-1].TailMs
	}
	b.ReportMetric(tail, "gemini-p95-ms@100RPS")
}

func BenchmarkFig12Traces(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var saving float64
	for i := 0; i < b.N; i++ {
		data := p.TraceRuns([]string{"wiki", "lucene", "trec"}, []string{"Rubik", "Pegasus", "Gemini"}, 60, 50_000)
		saving = data.Cell("lucene", "Gemini").SavingFrac
	}
	b.ReportMetric(saving*100, "gemini-saving-%-lucene")
}

func BenchmarkFig13LatencyDistribution(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var viol float64
	for i := 0; i < b.N; i++ {
		data := p.TraceRuns([]string{"wiki"}, []string{"Rubik", "Pegasus", "Gemini"}, 60, 50_000)
		viol = data.Cell("wiki", "Gemini").ViolationPct
	}
	b.ReportMetric(viol, "gemini-violation-%")
}

func BenchmarkFig14Breakdown(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		data := p.TraceRuns([]string{"trec"}, []string{"Gemini", "Gemini-a", "Gemini-95th"}, 60, 50_000)
		full := data.Cell("trec", "Gemini").SavingFrac
		p95 := data.Cell("trec", "Gemini-95th").SavingFrac
		if full > 0 {
			ratio = p95 / full
		}
	}
	b.ReportMetric(ratio, "95th/full-saving")
}

func BenchmarkAblationNoBoost(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, data := p.AblationBoost(80, 10_000); len(data.Cells) < 3 {
			b.Fatal("missing ablation cells")
		}
	}
}

func BenchmarkAblationPerRequestPlan(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, data := p.AblationGrouping(80, 10_000); len(data.Cells) < 2 {
			b.Fatal("missing ablation cells")
		}
	}
}

func BenchmarkAblationTdvfs(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, data := p.AblationTdvfs(80, 10_000); len(data.Cells) != 4 {
			b.Fatal("missing ablation cells")
		}
	}
}

func BenchmarkAblationBudget(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, data := p.AblationBudget(80, 10_000); len(data.Cells) != 5 {
			b.Fatal("missing ablation cells")
		}
	}
}

func BenchmarkAblationSleep(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, data := p.AblationSleep(20, 10_000); len(data.Cells) < 3 {
			b.Fatal("missing ablation cells")
		}
	}
}

// sweepArgs are shared by the serial/parallel grid-runner benchmark pair.
var sweepRPS = []float64{20, 40, 60, 80, 100}

// BenchmarkSweepSerial runs the Fig. 10/11 grid on one worker — the
// reference cost the parallel engine is measured against.
func BenchmarkSweepSerial(b *testing.B) {
	p := benchPlatform(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RPSSweepWorkers(sweepRPS, 10_000, 1)
	}
}

// BenchmarkSweepParallel runs the same grid on all available workers and
// reports the speedup over a serial reference run as a custom metric.
func BenchmarkSweepParallel(b *testing.B) {
	p := benchPlatform(b)
	workers := harness.DefaultWorkers()
	serialStart := time.Now()
	p.RPSSweepWorkers(sweepRPS, 10_000, 1)
	serial := time.Since(serialStart)
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		p.RPSSweepWorkers(sweepRPS, 10_000, workers)
	}
	perIter := time.Since(start) / time.Duration(b.N)
	b.ReportMetric(float64(workers), "workers")
	if perIter > 0 {
		b.ReportMetric(float64(serial)/float64(perIter), "speedup-x")
	}
}

// BenchmarkEnginePlatformConfig runs the raw event engine under the real
// platform's sim.Config on the shared bench workload (see
// internal/sim/benchsupport.go — the same scaffolding behind the
// internal/sim engine pair and BENCH_sim.json), so the whole-stack numbers
// here and the engine-only numbers there stay directly comparable.
func BenchmarkEnginePlatformConfig(b *testing.B) {
	p := benchPlatform(b)
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := sim.BenchWorkload(2000, int64(i))
		cfg := p.SimConfig()
		b.StartTimer()
		res := sim.Run(cfg, wl, &sim.FixedPolicy{F: cpu.FDefault})
		events += res.Events
	}
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

// BenchmarkExperimentSetAll exercises the whole registry once per iteration
// at a tiny duration scale — the end-to-end cost of regenerating everything.
func BenchmarkExperimentSetAll(b *testing.B) {
	set := benchSet(b)
	names := set.Names()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := harness.NewExperimentSet(benchPlatform(b), 0.02)
		for _, n := range names {
			if _, err := fresh.Run(n); err != nil {
				b.Fatal(err)
			}
		}
	}
	_ = set
}
