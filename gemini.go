// Package gemini is a from-scratch Go reproduction of "Gemini: Learning to
// Manage CPU Power for Latency-Critical Search Engines" (Zhou, Bhuyan,
// Ramakrishnan — MICRO 2020): per-query two-step DVFS driven by a neural
// service-time predictor and a second neural predictor for the first one's
// error, evaluated on a simulated Index Serving Node.
//
// The package is a facade over the full stack:
//
//   - a search engine substrate (inverted index, BM25 impacts, MaxScore
//     pruning, Table II feature extraction) standing in for Solr/Lucene;
//   - a dependency-free neural-network library (relu MLPs, Adam/RMSprop);
//   - a discrete-event ISN/CPU simulator with per-core DVFS, transition
//     stalls and a calibrated socket power model;
//   - the Gemini planner (paper eqs. 1–15) and the evaluated policies
//     (Baseline, Pegasus, Rubik, Gemini, Gemini-α, Gemini-95th) plus the
//     EETL-style and PACE-oracle extension baselines;
//   - an experiment harness that regenerates every table and figure of the
//     paper's evaluation.
//
// Quick start:
//
//	sys, err := gemini.NewSystem(gemini.Small())
//	res, _ := sys.Search("united kingdom")
//	metrics, _ := sys.Simulate("Gemini", gemini.TraceSpec{Kind: "wiki", EngineRPS: 60, DurationMs: 60_000})
//	fmt.Println(metrics.SocketPowerW, metrics.TailLatencyMs)
package gemini

import (
	"fmt"

	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/harness"
	"gemini/internal/search"
	"gemini/internal/sim"
	"gemini/internal/trace"
)

// System is a fully assembled reproduction platform: corpus, index, engine,
// trained predictors, and the simulation/experiment harness.
type System struct {
	p   *harness.Platform
	set *harness.ExperimentSet
}

// Config controls system construction. The zero value is not valid; use
// Default or Small.
type Config struct {
	opts     harness.Options
	durScale float64
}

// Default returns the full-scale configuration (the one used to regenerate
// the paper's figures; builds in a few seconds).
func Default() Config {
	return Config{opts: harness.DefaultOptions(), durScale: 1}
}

// Small returns a fast, reduced-scale configuration for tests and demos.
func Small() Config {
	return Config{opts: harness.SmallOptions(), durScale: 0.2}
}

// WithSeed returns a copy of the config with a different master seed.
func (c Config) WithSeed(seed int64) Config {
	c.opts.Seed = seed
	return c
}

// WithBudgetMs returns a copy of the config with a different latency budget.
func (c Config) WithBudgetMs(budget float64) Config {
	c.opts.BudgetMs = budget
	return c
}

// NewSystem builds the platform: generates and indexes the corpus,
// calibrates the cost model, trains the latency and error predictors, and
// prepares the workload pool. Construction is deterministic per Config.
func NewSystem(cfg Config) (*System, error) {
	if cfg.opts.PoolSize == 0 {
		return nil, fmt.Errorf("gemini: zero Config; use gemini.Default() or gemini.Small()")
	}
	p := harness.NewPlatform(cfg.opts)
	set := harness.NewExperimentSet(p, cfg.durScale)
	set.Workers = harness.DefaultWorkers()
	return &System{p: p, set: set}, nil
}

// SearchResult is one scored document of a query evaluation.
type SearchResult struct {
	Doc   int32
	Score float32
}

// Search evaluates a free-text query on the ISN index and returns the top-K
// documents together with the modeled service time at the default frequency.
func (s *System) Search(query string) ([]SearchResult, float64, error) {
	q, ok := corpus.ParseQuery(s.p.Corpus, query)
	if !ok {
		return nil, 0, fmt.Errorf("gemini: no query term found in %q", query)
	}
	ex := s.p.Engine.Search(q)
	out := make([]SearchResult, len(ex.Results))
	for i, r := range ex.Results {
		out[i] = SearchResult{Doc: r.Doc, Score: r.Score}
	}
	ms := cpu.TimeFor(s.p.Cost.WorkFor(ex.Stats), cpu.FDefault)
	return out, ms, nil
}

// Predict returns the NN predictors' view of a query: predicted service time
// at the default frequency (S*, eq. 1) and predicted error (E*, eq. 6).
func (s *System) Predict(query string) (predMs, predErrMs float64, err error) {
	q, ok := corpus.ParseQuery(s.p.Corpus, query)
	if !ok {
		return 0, 0, fmt.Errorf("gemini: no query term found in %q", query)
	}
	fv := s.p.Extractor.Features(q)
	return s.p.Classifier.PredictMs(fv), s.p.ErrPred.PredictErrMs(fv), nil
}

// Features returns the Table II feature vector of a query, paired with
// FeatureNames.
func (s *System) Features(query string) ([]float64, error) {
	q, ok := corpus.ParseQuery(s.p.Corpus, query)
	if !ok {
		return nil, fmt.Errorf("gemini: no query term found in %q", query)
	}
	fv := s.p.Extractor.Features(q)
	return fv[:], nil
}

// FeatureNames lists the Table II feature names in vector order.
func FeatureNames() []string {
	return search.FeatureNames[:]
}

// Policies lists the policy names accepted by Simulate.
func Policies() []string {
	return []string{"Baseline", "Pegasus", "Rubik", "Gemini", "Gemini-a", "Gemini-95th", "EETL", "PACE-oracle", "Gemini+Sleep", "ondemand", "conservative"}
}

// TraceSpec describes a workload for Simulate.
type TraceSpec struct {
	// Kind selects the arrival model: "wiki", "lucene", "trec" (the paper's
	// three traces) or "fixed" for a constant-rate Poisson stream.
	Kind string
	// File, when set, replays arrivals from a CSV trace file (one
	// arrival_ms per line, as written by cmd/tracegen) instead of
	// generating them; the arrivals are taken as ISN-level (no shard
	// fraction is applied) and Kind/EngineRPS are ignored.
	File string
	// EngineRPS is the engine-level request rate; each ISN serves
	// ShardFraction of it (see DESIGN.md).
	EngineRPS float64
	// DurationMs is the simulated duration (default 60 s).
	DurationMs float64
	// Seed varies the arrival and jitter draws (default 1).
	Seed int64
	// Cores > 0 dispatches the stream over a multi-core ISN cluster with
	// one policy instance per core (the paper's §V multi-core plan); the
	// socket power then counts the simulated cores plus an idle floor for
	// the rest. Cores == 0 simulates a single ISN whose core power is
	// extrapolated to all 12 sockets cores (the paper's measurement setup).
	Cores int
	// Workers shards a Cores > 0 run over this many OS threads. Results
	// are byte-identical to the serial run (sim.RunClusterWorkers merges
	// cores deterministically); <= 1 runs serially. Ignored when Cores == 0.
	Workers int
}

// Metrics summarizes one simulation run.
type Metrics struct {
	Policy        string
	Requests      int
	Completed     int
	Dropped       int
	ViolationRate float64
	DropRate      float64
	TailLatencyMs float64 // 95th percentile
	MeanLatencyMs float64
	SocketPowerW  float64
	Transitions   int
}

// Simulate runs one policy over a generated trace and returns its metrics.
func (s *System) Simulate(policyName string, spec TraceSpec) (*Metrics, error) {
	if spec.DurationMs <= 0 {
		spec.DurationMs = 60_000
	}
	if spec.EngineRPS <= 0 {
		spec.EngineRPS = 60
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Kind == "" {
		spec.Kind = "fixed"
	}
	var tr *trace.Trace
	if spec.File != "" {
		loaded, err := trace.LoadFile(spec.File)
		if err != nil {
			return nil, err
		}
		tr = loaded
		if d := tr.DurationMs() + s.p.Opt.BudgetMs; d > spec.DurationMs {
			spec.DurationMs = d
		}
	} else {
		isnRPS := spec.EngineRPS * s.p.Opt.ShardFraction
		if spec.Kind == "fixed" {
			tr = trace.GenFixedRPS(isnRPS, spec.DurationMs, spec.Seed)
		} else {
			tr = trace.GenEvalTrace(spec.Kind, isnRPS, spec.DurationMs, spec.Seed)
		}
	}
	wl := s.p.Workload(tr.Arrivals, spec.DurationMs, spec.Seed+1)
	cfg := s.p.SimConfig()

	if spec.Cores > 0 {
		cr := sim.RunClusterWorkers(cfg, wl, spec.Cores, spec.Workers, func(int) sim.Policy {
			return s.p.MustPolicy(policyName)
		})
		mean := 0.0
		if len(cr.Latencies) > 0 {
			for _, l := range cr.Latencies {
				mean += l
			}
			mean /= float64(len(cr.Latencies))
		}
		return &Metrics{
			Policy:        policyName,
			Requests:      cr.Total,
			Completed:     cr.Completed,
			Dropped:       cr.Dropped,
			ViolationRate: cr.ViolationRate(),
			DropRate:      float64(cr.Dropped) / float64(max(cr.Total, 1)),
			TailLatencyMs: cr.TailLatencyMs(95),
			MeanLatencyMs: mean,
			SocketPowerW:  cr.SocketPowerW(s.p.Power),
		}, nil
	}

	pol, err := s.p.NewPolicy(policyName)
	if err != nil {
		return nil, err
	}
	res := sim.Run(cfg, wl, pol)
	return &Metrics{
		Policy:        policyName,
		Requests:      res.Total,
		Completed:     res.Completed,
		Dropped:       res.Dropped,
		ViolationRate: res.ViolationRate(),
		DropRate:      res.DropRate(),
		TailLatencyMs: res.TailLatencyMs(95),
		MeanLatencyMs: res.MeanLatencyMs(),
		SocketPowerW:  res.SocketPowerW(s.p.Power),
		Transitions:   res.Transitions,
	}, nil
}

// Experiments lists the named paper experiments (tables, figures,
// ablations).
func (s *System) Experiments() []string { return s.set.Names() }

// Experiment runs a named paper experiment and returns its printable report.
func (s *System) Experiment(name string) (string, error) {
	rep, err := s.set.Run(name)
	if err != nil {
		return "", err
	}
	return rep.String(), nil
}

// Platform exposes the underlying harness platform for advanced use (the
// cmd/ tools and benchmarks build on it directly).
func (s *System) Platform() *harness.Platform { return s.p }
