// Package index builds and serves the inverted index of an Index Serving
// Node (ISN). Each vocabulary term maps to a posting list of (document,
// impact) pairs, where the impact is the precomputed BM25 contribution of
// that term to the document's score — the "impact-ordered" organization that
// selective-pruning engines (paper refs [21], [24]) rely on.
package index

import (
	"errors"
	"math"
	"sort"

	"gemini/internal/corpus"
)

// Posting is one (document, impact) entry of a posting list, sorted by
// ascending document ID within a list.
type Posting struct {
	Doc    int32
	Impact float32
}

// PostingList holds all postings of one term plus the precomputed upper
// bound used by MaxScore-style pruning.
type PostingList struct {
	Term      corpus.TermID
	Postings  []Posting
	MaxImpact float32
	IDF       float64
}

// Len returns the posting list length (a Table II feature).
func (p *PostingList) Len() int { return len(p.Postings) }

// BM25 parameters (standard Robertson/Sparck-Jones defaults). Exported so
// the search package can derive analytic score bounds.
const (
	BM25K1 = 1.2
	BM25B  = 0.75
)

// Index is the immutable inverted index of one shard.
type Index struct {
	lists     []*PostingList // indexed by TermID; nil for absent terms
	numDocs   int
	avgDocLen float64
	docLens   []int32
}

// ErrUnknownTerm is returned when a term has no posting list.
var ErrUnknownTerm = errors.New("index: unknown term")

// Build constructs the inverted index for a corpus: one pass to accumulate
// term frequencies per document, then BM25 impact computation per posting.
func Build(c *corpus.Corpus) *Index {
	numDocs := len(c.Docs)
	docLens := make([]int32, numDocs)
	totalLen := 0
	for d, doc := range c.Docs {
		docLens[d] = int32(len(doc))
		totalLen += len(doc)
	}
	avgDocLen := float64(totalLen) / float64(numDocs)

	// Accumulate tf per (term, doc). Documents are visited in ascending ID
	// order, so appending keeps posting lists sorted by document.
	type tfEntry struct {
		doc int32
		tf  int32
	}
	perTerm := make([][]tfEntry, c.Spec.VocabSize)
	for d, doc := range c.Docs {
		// Count tf within this document.
		counts := map[corpus.TermID]int32{}
		for _, t := range doc {
			counts[t]++
		}
		// Deterministic iteration: collect and sort term IDs.
		terms := make([]corpus.TermID, 0, len(counts))
		for t := range counts {
			terms = append(terms, t)
		}
		sort.Slice(terms, func(i, j int) bool { return terms[i] < terms[j] })
		for _, t := range terms {
			perTerm[t] = append(perTerm[t], tfEntry{doc: int32(d), tf: counts[t]})
		}
	}

	lists := make([]*PostingList, c.Spec.VocabSize)
	for t, entries := range perTerm {
		if len(entries) == 0 {
			continue
		}
		df := float64(len(entries))
		idf := math.Log(1 + (float64(numDocs)-df+0.5)/(df+0.5))
		pl := &PostingList{
			Term:     corpus.TermID(t),
			Postings: make([]Posting, len(entries)),
			IDF:      idf,
		}
		for i, e := range entries {
			tf := float64(e.tf)
			dl := float64(docLens[e.doc])
			norm := tf * (BM25K1 + 1) / (tf + BM25K1*(1-BM25B+BM25B*dl/avgDocLen))
			imp := float32(idf * norm)
			pl.Postings[i] = Posting{Doc: e.doc, Impact: imp}
			if imp > pl.MaxImpact {
				pl.MaxImpact = imp
			}
		}
		lists[t] = pl
	}

	return &Index{
		lists:     lists,
		numDocs:   numDocs,
		avgDocLen: avgDocLen,
		docLens:   docLens,
	}
}

// NumDocs returns the number of documents in the shard.
func (ix *Index) NumDocs() int { return ix.numDocs }

// AvgDocLen returns the average document length in tokens.
func (ix *Index) AvgDocLen() float64 { return ix.avgDocLen }

// List returns the posting list for a term.
func (ix *Index) List(t corpus.TermID) (*PostingList, error) {
	if int(t) < 0 || int(t) >= len(ix.lists) || ix.lists[t] == nil {
		return nil, ErrUnknownTerm
	}
	return ix.lists[t], nil
}

// Lists resolves all the terms of a query, silently dropping unknown terms.
func (ix *Index) Lists(q corpus.Query) []*PostingList {
	out := make([]*PostingList, 0, len(q.Terms))
	for _, t := range q.Terms {
		if pl, err := ix.List(t); err == nil {
			out = append(out, pl)
		}
	}
	return out
}

// VocabSize returns the size of the term space (including absent terms).
func (ix *Index) VocabSize() int { return len(ix.lists) }

// TotalPostings returns the total number of postings stored.
func (ix *Index) TotalPostings() int {
	n := 0
	for _, l := range ix.lists {
		if l != nil {
			n += len(l.Postings)
		}
	}
	return n
}
