package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"gemini/internal/corpus"
)

// Index serialization with posting-list compression: document IDs are
// delta-encoded as uvarints and impacts quantized to 16-bit fixed point
// relative to the list's MaxImpact (classic impact-quantized layout; the
// paper's engines rely on the same family of compressed inverted files,
// refs [31], [32]). Quantization is lossy within 1/65535 of MaxImpact —
// far below score-comparison noise — and MaxScore's pruning bound stays
// valid because MaxImpact itself is stored exactly.

// codecMagic identifies the on-disk format.
const codecMagic = "GEMIDX01"

// impactScale is the fixed-point quantization range.
const impactScale = 65535

// WriteTo serializes the index. It returns the number of bytes written.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	bw := cw.w.(*bufio.Writer)

	if _, err := cw.Write([]byte(codecMagic)); err != nil {
		return cw.n, err
	}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(scratch[:], v)
		_, err := cw.Write(scratch[:n])
		return err
	}
	putFloat := func(f float64) error {
		binary.LittleEndian.PutUint64(scratch[:8], math.Float64bits(f))
		_, err := cw.Write(scratch[:8])
		return err
	}

	if err := putUvarint(uint64(ix.numDocs)); err != nil {
		return cw.n, err
	}
	if err := putFloat(ix.avgDocLen); err != nil {
		return cw.n, err
	}
	if err := putUvarint(uint64(len(ix.docLens))); err != nil {
		return cw.n, err
	}
	for _, dl := range ix.docLens {
		if err := putUvarint(uint64(dl)); err != nil {
			return cw.n, err
		}
	}

	if err := putUvarint(uint64(len(ix.lists))); err != nil {
		return cw.n, err
	}
	for term, pl := range ix.lists {
		if pl == nil {
			continue
		}
		if err := putUvarint(uint64(term)); err != nil {
			return cw.n, err
		}
		if err := putUvarint(uint64(len(pl.Postings))); err != nil {
			return cw.n, err
		}
		if err := putFloat(float64(pl.MaxImpact)); err != nil {
			return cw.n, err
		}
		if err := putFloat(pl.IDF); err != nil {
			return cw.n, err
		}
		prev := int32(0)
		for _, p := range pl.Postings {
			if err := putUvarint(uint64(p.Doc - prev)); err != nil {
				return cw.n, err
			}
			prev = p.Doc
			q := quantize(p.Impact, pl.MaxImpact)
			if err := putUvarint(uint64(q)); err != nil {
				return cw.n, err
			}
		}
	}
	// End-of-lists sentinel: a term id equal to the vocabulary size.
	if err := putUvarint(uint64(len(ix.lists))); err != nil {
		return cw.n, err
	}
	return cw.n, bw.Flush()
}

// ReadIndex deserializes an index written by WriteTo.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(codecMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: read magic: %w", err)
	}
	if string(magic) != codecMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	getUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	getFloat := func() (float64, error) {
		var b [8]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
	}

	nd, err := getUvarint()
	if err != nil {
		return nil, fmt.Errorf("index: numDocs: %w", err)
	}
	avg, err := getFloat()
	if err != nil {
		return nil, fmt.Errorf("index: avgDocLen: %w", err)
	}
	nl, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if nl > 1<<31 {
		return nil, fmt.Errorf("index: implausible docLens length %d", nl)
	}
	docLens := make([]int32, nl)
	for i := range docLens {
		v, err := getUvarint()
		if err != nil {
			return nil, err
		}
		docLens[i] = int32(v)
	}

	vocab, err := getUvarint()
	if err != nil {
		return nil, err
	}
	if vocab > 1<<31 {
		return nil, fmt.Errorf("index: implausible vocabulary size %d", vocab)
	}
	lists := make([]*PostingList, vocab)
	for {
		term, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("index: term id: %w", err)
		}
		if term == vocab {
			break // sentinel
		}
		if term > vocab {
			return nil, fmt.Errorf("index: term id %d out of range", term)
		}
		n, err := getUvarint()
		if err != nil {
			return nil, err
		}
		maxImp, err := getFloat()
		if err != nil {
			return nil, err
		}
		idf, err := getFloat()
		if err != nil {
			return nil, err
		}
		if n > nd {
			return nil, fmt.Errorf("index: posting list longer than corpus (%d > %d)", n, nd)
		}
		pl := &PostingList{
			Term:      corpus.TermID(term),
			Postings:  make([]Posting, n),
			MaxImpact: float32(maxImp),
			IDF:       idf,
		}
		prev := int32(0)
		for i := range pl.Postings {
			d, err := getUvarint()
			if err != nil {
				return nil, err
			}
			q, err := getUvarint()
			if err != nil {
				return nil, err
			}
			prev += int32(d)
			pl.Postings[i] = Posting{Doc: prev, Impact: dequantize(uint16(q), pl.MaxImpact)}
		}
		lists[term] = pl
	}

	return &Index{
		lists:     lists,
		numDocs:   int(nd),
		avgDocLen: avg,
		docLens:   docLens,
	}, nil
}

// SaveFile writes the index to a file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = ix.WriteTo(f)
	return err
}

// LoadFile reads an index from a file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}

// quantize maps an impact into 16-bit fixed point relative to max.
func quantize(imp, max float32) uint16 {
	if max <= 0 {
		return 0
	}
	q := float64(imp) / float64(max) * impactScale
	if q < 0 {
		q = 0
	}
	if q > impactScale {
		q = impactScale
	}
	return uint16(q + 0.5)
}

// dequantize restores an impact from fixed point.
func dequantize(q uint16, max float32) float32 {
	return float32(float64(q) / impactScale * float64(max))
}

// UncompressedBytes estimates the in-memory posting storage (8 bytes per
// posting) for compression-ratio reporting.
func (ix *Index) UncompressedBytes() int64 {
	return int64(ix.TotalPostings()) * 8
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
