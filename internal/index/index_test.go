package index

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"gemini/internal/corpus"
)

func buildSmall(t testing.TB) (*corpus.Corpus, *Index) {
	t.Helper()
	c := corpus.Generate(corpus.SmallSpec())
	return c, Build(c)
}

func TestBuildBasics(t *testing.T) {
	c, ix := buildSmall(t)
	if ix.NumDocs() != len(c.Docs) {
		t.Fatalf("NumDocs = %d, want %d", ix.NumDocs(), len(c.Docs))
	}
	if ix.VocabSize() != c.Spec.VocabSize {
		t.Fatalf("VocabSize = %d, want %d", ix.VocabSize(), c.Spec.VocabSize)
	}
	wantAvg := float64(c.TotalTokens()) / float64(len(c.Docs))
	if math.Abs(ix.AvgDocLen()-wantAvg) > 1e-9 {
		t.Errorf("AvgDocLen = %v, want %v", ix.AvgDocLen(), wantAvg)
	}
	if ix.TotalPostings() == 0 {
		t.Fatal("no postings")
	}
}

func TestPostingListsSortedAndDeduped(t *testing.T) {
	_, ix := buildSmall(t)
	for term := 0; term < ix.VocabSize(); term++ {
		pl, err := ix.List(corpus.TermID(term))
		if err != nil {
			continue
		}
		if pl.Len() == 0 {
			t.Fatalf("term %d has an empty non-nil list", term)
		}
		for i := 1; i < pl.Len(); i++ {
			if pl.Postings[i].Doc <= pl.Postings[i-1].Doc {
				t.Fatalf("term %d postings not strictly ascending at %d", term, i)
			}
		}
	}
}

func TestMaxImpactInvariant(t *testing.T) {
	_, ix := buildSmall(t)
	for term := 0; term < ix.VocabSize(); term++ {
		pl, err := ix.List(corpus.TermID(term))
		if err != nil {
			continue
		}
		max := float32(0)
		for _, p := range pl.Postings {
			if p.Impact <= 0 {
				t.Fatalf("term %d non-positive impact %v", term, p.Impact)
			}
			if p.Impact > max {
				max = p.Impact
			}
		}
		if max != pl.MaxImpact {
			t.Fatalf("term %d MaxImpact = %v, actual max %v", term, pl.MaxImpact, max)
		}
	}
}

func TestIDFDecreasesWithDF(t *testing.T) {
	_, ix := buildSmall(t)
	type tl struct {
		df  int
		idf float64
	}
	var all []tl
	for term := 0; term < ix.VocabSize(); term++ {
		if pl, err := ix.List(corpus.TermID(term)); err == nil {
			all = append(all, tl{df: pl.Len(), idf: pl.IDF})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].df < all[j].df })
	for i := 1; i < len(all); i++ {
		if all[i].df > all[i-1].df && all[i].idf > all[i-1].idf {
			t.Fatalf("IDF not monotone: df %d->%d idf %v->%v",
				all[i-1].df, all[i].df, all[i-1].idf, all[i].idf)
		}
	}
}

func TestPopularTermHasLongList(t *testing.T) {
	c, ix := buildSmall(t)
	// Term 0 is the most popular vocabulary slot under the Zipf draw.
	pl0, err := ix.List(0)
	if err != nil {
		t.Fatal("most popular term missing")
	}
	if pl0.Len() < len(c.Docs)/4 {
		t.Errorf("popular term list len = %d, want >= %d", pl0.Len(), len(c.Docs)/4)
	}
}

func TestUnknownTerm(t *testing.T) {
	_, ix := buildSmall(t)
	if _, err := ix.List(corpus.TermID(ix.VocabSize())); err != ErrUnknownTerm {
		t.Errorf("out-of-range term: err = %v", err)
	}
	if _, err := ix.List(-1); err != ErrUnknownTerm {
		t.Errorf("negative term: err = %v", err)
	}
}

func TestListsDropsUnknown(t *testing.T) {
	c, ix := buildSmall(t)
	q := corpus.Query{Terms: []corpus.TermID{0, corpus.TermID(c.Spec.VocabSize + 5)}}
	ls := ix.Lists(q)
	if len(ls) != 1 || ls[0].Term != 0 {
		t.Errorf("Lists = %v", ls)
	}
}

// Every posting in the index must reference a document that actually
// contains the term — verified against the raw corpus.
func TestPostingsMatchCorpus(t *testing.T) {
	c, ix := buildSmall(t)
	for term := 0; term < 50; term++ { // spot-check the popular head
		pl, err := ix.List(corpus.TermID(term))
		if err != nil {
			continue
		}
		want := map[int32]bool{}
		for d, doc := range c.Docs {
			for _, tok := range doc {
				if tok == corpus.TermID(term) {
					want[int32(d)] = true
					break
				}
			}
		}
		if len(want) != pl.Len() {
			t.Fatalf("term %d df mismatch: index %d corpus %d", term, pl.Len(), len(want))
		}
		for _, p := range pl.Postings {
			if !want[p.Doc] {
				t.Fatalf("term %d posting doc %d not in corpus", term, p.Doc)
			}
		}
	}
}

// Property: higher tf in an otherwise comparable document yields higher
// impact — check BM25 monotonicity in tf directly.
func TestBM25MonotoneInTF(t *testing.T) {
	f := func(tfRaw uint8) bool {
		tf1 := float64(tfRaw%20) + 1
		tf2 := tf1 + 1
		dl, avg := 100.0, 100.0
		norm := func(tf float64) float64 {
			return tf * (BM25K1 + 1) / (tf + BM25K1*(1-BM25B+BM25B*dl/avg))
		}
		return norm(tf2) > norm(tf1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	c := corpus.Generate(corpus.SmallSpec())
	a := Build(c)
	b := Build(c)
	if a.TotalPostings() != b.TotalPostings() {
		t.Fatalf("posting totals differ")
	}
	for term := 0; term < a.VocabSize(); term++ {
		la, ea := a.List(corpus.TermID(term))
		lb, eb := b.List(corpus.TermID(term))
		if (ea == nil) != (eb == nil) {
			t.Fatalf("term %d presence differs", term)
		}
		if ea != nil {
			continue
		}
		if la.MaxImpact != lb.MaxImpact || la.IDF != lb.IDF {
			t.Fatalf("term %d stats differ", term)
		}
		for i := range la.Postings {
			if la.Postings[i] != lb.Postings[i] {
				t.Fatalf("term %d posting %d differs", term, i)
			}
		}
	}
}
