package index

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"gemini/internal/corpus"
)

func TestCodecRoundTrip(t *testing.T) {
	c, ix := buildSmall(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != ix.NumDocs() || got.VocabSize() != ix.VocabSize() {
		t.Fatalf("shape mismatch: %d/%d vs %d/%d",
			got.NumDocs(), got.VocabSize(), ix.NumDocs(), ix.VocabSize())
	}
	if math.Abs(got.AvgDocLen()-ix.AvgDocLen()) > 1e-12 {
		t.Errorf("avgDocLen %v vs %v", got.AvgDocLen(), ix.AvgDocLen())
	}
	if got.TotalPostings() != ix.TotalPostings() {
		t.Fatalf("postings %d vs %d", got.TotalPostings(), ix.TotalPostings())
	}
	// Every list round-trips: docs exact, impacts within quantization error,
	// MaxImpact and IDF exact.
	for term := 0; term < ix.VocabSize(); term++ {
		want, errW := ix.List(corpus.TermID(term))
		have, errH := got.List(corpus.TermID(term))
		if (errW == nil) != (errH == nil) {
			t.Fatalf("term %d presence differs", term)
		}
		if errW != nil {
			continue
		}
		if want.MaxImpact != have.MaxImpact || want.IDF != have.IDF {
			t.Fatalf("term %d stats differ", term)
		}
		for i := range want.Postings {
			if want.Postings[i].Doc != have.Postings[i].Doc {
				t.Fatalf("term %d doc %d differs", term, i)
			}
			tol := float64(want.MaxImpact) / 65535 * 1.01
			if math.Abs(float64(want.Postings[i].Impact-have.Postings[i].Impact)) > tol {
				t.Fatalf("term %d impact %d: %v vs %v (tol %v)",
					term, i, want.Postings[i].Impact, have.Postings[i].Impact, tol)
			}
		}
	}
	_ = c
}

func TestCodecCompresses(t *testing.T) {
	_, ix := buildSmall(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	ratio := float64(buf.Len()) / float64(ix.UncompressedBytes())
	if ratio > 0.75 {
		t.Errorf("compression ratio %.2f, want < 0.75 (varint+quantization)", ratio)
	}
}

func TestCodecFileRoundTrip(t *testing.T) {
	_, ix := buildSmall(t)
	path := t.TempDir() + "/shard.idx"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalPostings() != ix.TotalPostings() {
		t.Errorf("postings differ after file round trip")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"short",
		"NOTMAGIC",
		codecMagic, // truncated right after magic
	}
	for _, c := range cases {
		if _, err := ReadIndex(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
}

func TestCodecRejectsTruncated(t *testing.T) {
	_, ix := buildSmall(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 3} {
		if _, err := ReadIndex(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// Quantization properties: identity at the extremes, bounded error, and
// order preservation within quantization resolution.
func TestQuantizeProperties(t *testing.T) {
	if quantize(0, 1) != 0 || quantize(1, 1) != impactScale {
		t.Fatal("endpoint quantization wrong")
	}
	if dequantize(0, 3) != 0 {
		t.Fatal("dequantize(0) != 0")
	}
	f := func(impRaw, maxRaw uint16) bool {
		max := float32(maxRaw)/1000 + 0.001
		imp := float32(impRaw) / 65535 * max
		q := quantize(imp, max)
		back := dequantize(q, max)
		return math.Abs(float64(back-imp)) <= float64(max)/65535+1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Search results over a round-tripped index must match the original's
// within quantization noise (same docs modulo near-ties).
func TestSearchEquivalenceAfterRoundTrip(t *testing.T) {
	c, ix := buildSmall(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	g := corpus.NewQueryGen(c, 31)
	for i := 0; i < 100; i++ {
		q := g.Next()
		a := ix.Lists(q)
		b := got.Lists(q)
		if len(a) != len(b) {
			t.Fatalf("list resolution differs for %q", q.Text)
		}
		for j := range a {
			if a[j].Len() != b[j].Len() {
				t.Fatalf("list %d length differs for %q", j, q.Text)
			}
		}
	}
}

func BenchmarkIndexWrite(b *testing.B) {
	c := corpus.Generate(corpus.SmallSpec())
	ix := Build(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexRead(b *testing.B) {
	c := corpus.Generate(corpus.SmallSpec())
	ix := Build(c)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadIndex(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	c := corpus.Generate(corpus.SmallSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(c)
	}
}
