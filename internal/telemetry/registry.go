// Package telemetry is the observability layer of the reproduction: a
// lock-cheap metrics registry with a Prometheus text-format encoder, and a
// per-query DVFS decision trace (Decision, Ring, Tracer) that captures what
// the Gemini controller predicted, what it planned, and what actually
// happened — the runtime view production DVFS controllers ship and the paper
// only reports in post-hoc aggregates (Figs. 10–14).
//
// The registry's hot-path instruments (Counter, Gauge, Histogram) are
// built on atomics so the live ISN serving path never contends on a
// registry-wide lock; Summary reuses the internal/stats reservoir and
// online estimators behind a small per-metric mutex.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gemini/internal/stats"
)

// Label is one metric dimension, e.g. {Name: "shard", Value: "0"}.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// addFloatBits atomically adds v to a float64 stored as uint64 bits.
//
//gemini:hotpath
func addFloatBits(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//gemini:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//gemini:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
//
//gemini:hotpath
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
//
//gemini:hotpath
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the value by v (v may be negative).
//
//gemini:hotpath
func (g *Gauge) Add(v float64) { addFloatBits(&g.bits, v) }

// Value returns the current value.
//
//gemini:hotpath
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefaultLatencyBuckets covers the repo's millisecond latency range: the
// paper's budget is 40 ms, ISN service times average ~10 ms, and aggregator
// round trips sit well under a second. The sub-millisecond bounds exist for
// the phase histograms — queue-wait spans on an unloaded ISN routinely sit
// under 0.5 ms, which a coarser first bucket would collapse to one bin.
var DefaultLatencyBuckets = []float64{0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 20, 40, 80, 160, 320, 640, 1280}

// Histogram is a streaming cumulative histogram with fixed upper bounds
// (Prometheus "le" semantics: counts[i] observes x <= bounds[i], with an
// implicit +Inf bucket at the end). Observe is atomic per bucket and
// allocation-free.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1; last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one value.
//
//gemini:hotpath
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x
	h.counts[i].Add(1)
	addFloatBits(&h.sumBits, x)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Summary tracks quantiles via the internal/stats reservoir sampler plus
// Welford online moments — the memory-bounded estimators the simulator's
// long trace runs already rely on. A small mutex guards both.
type Summary struct {
	mu        sync.Mutex
	online    stats.Online
	res       *stats.Reservoir
	quantiles []float64 // in (0, 1)
}

func newSummary(quantiles []float64) *Summary {
	qs := make([]float64, len(quantiles))
	copy(qs, quantiles)
	sort.Float64s(qs)
	// The reservoir seed is fixed: exposition must be deterministic for a
	// deterministic observation stream.
	return &Summary{res: stats.NewReservoir(1024, 1), quantiles: qs}
}

// Observe records one value.
func (s *Summary) Observe(x float64) {
	s.mu.Lock()
	s.online.Add(x)
	s.res.Add(x)
	s.mu.Unlock()
}

// Quantile returns the estimated q-th quantile (q in (0,1)).
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, err := s.res.Percentile(q * 100)
	if err != nil {
		return 0
	}
	return v
}

// Count returns the number of observations.
func (s *Summary) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.online.N()
}

// Mean returns the running mean.
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.online.Mean()
}

// metricKind is the Prometheus exposition type of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
	kindSummary   metricKind = "summary"
)

// child is one labeled instance within a family.
type child struct {
	labels []Label
	metric any // *Counter | *Gauge | *Histogram | *Summary
}

// family is one named metric with a fixed type and help string.
type family struct {
	name     string
	help     string
	kind     metricKind
	children map[string]*child
	order    []string
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration takes a registry-wide lock; observation
// paths touch only the returned instrument.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
	// defBuckets are the histogram bounds used when Histogram is called with
	// nil bounds — DefaultLatencyBuckets unless the registry was created with
	// NewRegistryBuckets.
	defBuckets []float64
}

// NewRegistry creates an empty registry whose default histogram bounds are
// DefaultLatencyBuckets.
func NewRegistry() *Registry {
	return NewRegistryBuckets(nil)
}

// NewRegistryBuckets creates an empty registry with custom default histogram
// bounds: every Histogram registered with nil bounds uses these instead of
// DefaultLatencyBuckets (which a nil/empty argument selects). Bucket
// boundaries are fixed per histogram at registration, so the place to widen
// or refine them fleet-wide is registry creation.
func NewRegistryBuckets(bounds []float64) *Registry {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Registry{families: make(map[string]*family), defBuckets: bs}
}

// labelKey renders labels into a canonical map key / exposition fragment.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// register returns the existing child or installs one built by mk.
// A name registered twice with different kinds is a programming error.
func (r *Registry) register(name, help string, kind metricKind, labels []Label, mk func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, children: make(map[string]*child)}
		r.families[name] = f
		r.order = append(r.order, name)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	if c, ok := f.children[key]; ok {
		return c.metric
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	c := &child{labels: ls, metric: mk()}
	f.children[key] = c
	f.order = append(f.order, key)
	return c.metric
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(name, help, kindCounter, labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(name, help, kindGauge, labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or fetches) a histogram with the given upper bounds
// (the registry's default bounds when nil — DefaultLatencyBuckets unless the
// registry was created with NewRegistryBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = r.defBuckets
	}
	return r.register(name, help, kindHistogram, labels, func() any { return newHistogram(bounds) }).(*Histogram)
}

// Summary registers (or fetches) a reservoir-backed quantile summary.
func (r *Registry) Summary(name, help string, quantiles []float64, labels ...Label) *Summary {
	if quantiles == nil {
		quantiles = []float64{0.5, 0.95, 0.99}
	}
	return r.register(name, help, kindSummary, labels, func() any { return newSummary(quantiles) }).(*Summary)
}

// WritePrometheus renders every family in the text exposition format.
// Families appear in registration order; within a family the labeled
// children render in sorted label-set order. Sorting matters for the
// lazily-created families (ClusterMetrics route counters, the live servers'
// per-shard instruments): their registration order is the first-touch order,
// which concurrent serving makes racy — sorted children keep /metrics
// byte-stable for the same metric state no matter which shard routed first.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := make([]string, 0, 16)
	for _, name := range r.order {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		keys = append(keys[:0], f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			if err := writeChild(w, f, f.children[key]); err != nil {
				return err
			}
		}
	}
	return nil
}

// joinLabels merges a child's label fragment with extra rendered pairs.
func joinLabels(base string, extra ...string) string {
	parts := make([]string, 0, 1+len(extra))
	if base != "" {
		parts = append(parts, base)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeChild(w io.Writer, f *family, c *child) error {
	base := labelKey(c.labels)
	switch m := c.metric.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, joinLabels(base), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, joinLabels(base), fmtFloat(m.Value()))
		return err
	case *Histogram:
		cum := uint64(0)
		for i, b := range m.bounds {
			cum += m.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, joinLabels(base, `le="`+fmtFloat(b)+`"`), cum); err != nil {
				return err
			}
		}
		cum += m.counts[len(m.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, joinLabels(base, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, joinLabels(base), fmtFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, joinLabels(base), m.Count())
		return err
	case *Summary:
		m.mu.Lock()
		n := m.online.N()
		sum := m.online.Mean() * float64(n)
		qvals := make([]float64, len(m.quantiles))
		for i, q := range m.quantiles {
			qvals[i], _ = m.res.Percentile(q * 100)
		}
		m.mu.Unlock()
		for i, q := range m.quantiles {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, joinLabels(base, `quantile="`+fmtFloat(q)+`"`), fmtFloat(qvals[i])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, joinLabels(base), fmtFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, joinLabels(base), n)
		return err
	}
	return fmt.Errorf("telemetry: unknown metric type %T", c.metric)
}
