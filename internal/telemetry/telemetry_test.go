package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs_total", "requests", L("shard", "0"))
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	// Same name+labels returns the same instrument.
	if reg.Counter("reqs_total", "requests", L("shard", "0")) != c {
		t.Error("re-registration returned a new counter")
	}
	g := reg.Gauge("depth", "queue depth")
	g.Set(3.5)
	g.Add(-1.5)
	if g.Value() != 2 {
		t.Errorf("gauge = %v, want 2", g.Value())
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Error("kind conflict did not panic")
		}
	}()
	reg.Gauge("m", "h")
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ms", "latency", []float64{1, 5, 10}, L("shard", "1"))
	for _, v := range []float64{0.5, 1, 3, 7, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); got != 61.5 {
		t.Errorf("sum = %v, want 61.5", got)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE lat_ms histogram",
		`lat_ms_bucket{shard="1",le="1"} 2`,    // 0.5 and 1 (le is inclusive)
		`lat_ms_bucket{shard="1",le="5"} 3`,    // + 3
		`lat_ms_bucket{shard="1",le="10"} 4`,   // + 7
		`lat_ms_bucket{shard="1",le="+Inf"} 5`, // + 50
		`lat_ms_sum{shard="1"} 61.5`,
		`lat_ms_count{shard="1"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestSummaryQuantiles(t *testing.T) {
	reg := NewRegistry()
	s := reg.Summary("svc_ms", "service", []float64{0.5, 0.95})
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if s.Count() != 100 {
		t.Fatalf("count = %d", s.Count())
	}
	if m := s.Mean(); m != 50.5 {
		t.Errorf("mean = %v, want 50.5", m)
	}
	if q := s.Quantile(0.5); q < 40 || q > 61 {
		t.Errorf("p50 = %v, want ~50", q)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `svc_ms{quantile="0.5"}`) {
		t.Errorf("summary exposition missing quantile line:\n%s", buf.String())
	}
}

func TestInstrumentsConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c", "h")
	g := reg.Gauge("g", "h")
	h := reg.Histogram("h", "h", nil)
	s := reg.Summary("s", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 50))
				s.Observe(float64(i % 50))
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
	if h.Count() != 8000 || s.Count() != 8000 {
		t.Errorf("hist/summary counts = %d/%d, want 8000", h.Count(), s.Count())
	}
}

func TestRingEvictsOldest(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Push(Decision{RequestID: i})
	}
	if r.Total() != 5 {
		t.Errorf("total = %d", r.Total())
	}
	got := r.Snapshot(0)
	if len(got) != 3 || got[0].RequestID != 2 || got[2].RequestID != 4 {
		t.Errorf("snapshot = %+v, want ids 2,3,4", got)
	}
	if last := r.Snapshot(1); len(last) != 1 || last[0].RequestID != 4 {
		t.Errorf("snapshot(1) = %+v", last)
	}
}

func TestTracerEmitRingQualitySink(t *testing.T) {
	tr := NewTracer(8)
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	tr.SetSink(w)

	// Two covered predictions, one not covered, one unpredicted (ignored by
	// the quality audit).
	tr.Emit(Decision{RequestID: 0, PredictedMs: 10, PredErrMs: 1, ActualMs: 10.5})
	tr.Emit(Decision{RequestID: 1, PredictedMs: 8, PredErrMs: 2, ActualMs: 9})
	tr.Emit(Decision{RequestID: 2, PredictedMs: 5, PredErrMs: 0.5, ActualMs: 9})
	tr.Emit(Decision{RequestID: 3, ActualMs: 4})

	if tr.Emitted() != 4 {
		t.Fatalf("emitted = %d", tr.Emitted())
	}
	ds := tr.Ring().Snapshot(0)
	if len(ds) != 4 || ds[0].Seq != 1 || ds[3].Seq != 4 {
		t.Fatalf("ring = %+v", ds)
	}
	q := tr.Quality()
	if q.N != 3 {
		t.Fatalf("quality n = %d, want 3 (unpredicted excluded)", q.N)
	}
	if want := 2.0 / 3.0; q.CoverageRate < want-1e-9 || q.CoverageRate > want+1e-9 {
		t.Errorf("coverage = %v, want %v", q.CoverageRate, want)
	}
	// abs errors: 0.5, 1, 4 → MAE 5.5/3
	if mae := q.MAEMs; mae < 1.83 || mae > 1.84 {
		t.Errorf("MAE = %v", mae)
	}

	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if tr.SinkErr() != nil {
		t.Fatal(tr.SinkErr())
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("sink lines = %d", len(lines))
	}
	var d Decision
	if err := json.Unmarshal([]byte(lines[2]), &d); err != nil {
		t.Fatal(err)
	}
	if d.RequestID != 2 || d.PredictedMs != 5 {
		t.Errorf("decoded = %+v", d)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit(Decision{})
	if tr.Ring() != nil || tr.Emitted() != 0 || tr.SinkErr() != nil {
		t.Error("nil tracer accessors not inert")
	}
	_ = tr.Quality()
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Error(err)
	}
}

func TestHTTPHandlers(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up", "h").Inc()
	srv := httptest.NewServer(MetricsHandler(reg))
	defer srv.Close()
	resp := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(resp, httptest.NewRequest("GET", "/metrics", nil))
	if !strings.Contains(resp.Body.String(), "up 1") {
		t.Errorf("metrics body:\n%s", resp.Body.String())
	}

	tr := NewTracer(4)
	tr.Emit(Decision{RequestID: 7, PredictedMs: 3, ActualMs: 3.2})
	rec := httptest.NewRecorder()
	DecisionsHandler(tr, 10).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/decisions", nil))
	var payload struct {
		Total     uint64     `json:"total"`
		Decisions []Decision `json:"decisions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Total != 1 || len(payload.Decisions) != 1 || payload.Decisions[0].RequestID != 7 {
		t.Errorf("payload = %+v", payload)
	}

	rec2 := httptest.NewRecorder()
	DecisionsHandler(tr, 10).ServeHTTP(rec2, httptest.NewRequest("GET", "/debug/decisions?n=bogus", nil))
	if rec2.Code != 400 {
		t.Errorf("bad n: status %d", rec2.Code)
	}
}
