package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"gemini/internal/stats"
)

// Time-series telemetry: fixed-interval samples of the quantities the
// cumulative counters and per-request traces cannot show evolving — modeled
// watts, frequency residency, queue depth, arrival/completion rates, cap
// throttling, and windowed tail latency. The same row schema serves three
// producers: the simulator's reserved-timer sampler (simulated time), the
// cluster runners' deterministic core-order merge, and the live listeners'
// wall-clock ticker behind /debug/timeline.
//
// The storage discipline mirrors the decision tracer: everything is
// preallocated ring-buffered columns, Append copies values into existing
// capacity, and a disabled sampler is a nil pointer costing the engine one
// pointer test per lifecycle event and zero allocations
// (TestTimeseriesDisabledAddsNoAllocsPerRequest, BenchmarkRunTimeseries*).

// TimeseriesRow is one sample: the state of a core (or a cluster aggregate)
// over the window ending at TimeMs.
type TimeseriesRow struct {
	// TimeMs is the window's end boundary (ms since run start).
	TimeMs float64 `json:"time_ms"`
	// PowerW is the modeled average power over the window (core power for a
	// single-core run; uncore plus every core for a cluster merge).
	PowerW float64 `json:"power_watts"`
	// QueueDepth and InFlight are instantaneous at the boundary: requests
	// queued (including the executing head) and requests executing.
	QueueDepth float64 `json:"queue_depth"`
	InFlight   float64 `json:"in_flight"`
	// Arrivals, Completions, Drops count lifecycle events inside the window.
	Arrivals    uint64 `json:"arrivals"`
	Completions uint64 `json:"completions"`
	Drops       uint64 `json:"drops"`
	// CapThrottles counts power-cap ceiling step-downs applied at coordinator
	// boundaries inside the window; CapModeledW is the coordinator's modeled
	// cluster watts at its last boundary at or before TimeMs (zero when
	// uncapped or before the first boundary).
	CapThrottles uint64  `json:"cap_throttles"`
	CapModeledW  float64 `json:"cap_modeled_watts"`
	// P50Ms/P95Ms/P99Ms are percentiles of the latencies of requests that
	// completed inside the window (zero when none did).
	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`
	// SLOViolations counts in-window completions whose latency exceeded the
	// producer's SLO deadline (zero when no deadline is configured). Always
	// <= Completions; drops burn budget separately via Drops.
	SLOViolations uint64 `json:"slo_violations"`
	// QueueHighWater is the deepest queue observed inside the window — the
	// saturation signal the boundary-instant QueueDepth smooths away. In a
	// cluster merge it is the sum of per-core high-water marks (an upper
	// bound on the cluster-wide instantaneous peak).
	QueueHighWater float64 `json:"queue_high_water"`
	// Goroutines, GCPauseMs, HeapDeltaBytes are runtime self-telemetry from
	// the live wall-clock samplers: goroutine count at the boundary, GC
	// pause time accumulated inside the window, and the heap-alloc delta
	// across it. Always zero in simulator rows.
	Goroutines     float64 `json:"goroutines"`
	GCPauseMs      float64 `json:"gc_pause_ms"`
	HeapDeltaBytes float64 `json:"heap_delta_bytes"`
	// Residency is the fraction of the window spent at each ladder level,
	// index-aligned with the series' FreqsGHz (averaged across cores in a
	// cluster merge).
	Residency []float64 `json:"residency"`
}

// Timeseries is a bounded ring of TimeseriesRows stored as preallocated
// columns. All methods are safe for concurrent use and nil-safe; Append is
// allocation-free (the Residency slice is copied into flat preallocated
// storage, never retained).
type Timeseries struct {
	mu         sync.Mutex
	intervalMs float64
	freqs      []float64
	capacity   int
	start, n   int    // ring window: rows [start, start+n) mod capacity
	total      uint64 // rows ever appended (evictions included)

	timeMs, powerW, queueDepth, inFlight []float64
	arrivals, completions, drops, capThr []uint64
	capModeledW, p50, p95, p99           []float64
	sloViol                              []uint64
	queueHW, goroutines, gcPause, heapD  []float64
	resid                                []float64 // capacity × len(freqs), flattened
}

// NewTimeseries creates a sampler ring. intervalMs is the sample interval,
// freqsGHz the frequency-ladder levels residency is tracked over (may be
// empty for producers with no DVFS model), capacity the row count retained
// (older rows are evicted). Invalid parameters return nil, which every method
// accepts.
func NewTimeseries(intervalMs float64, freqsGHz []float64, capacity int) *Timeseries {
	if intervalMs <= 0 || capacity < 1 {
		return nil
	}
	fs := make([]float64, len(freqsGHz))
	copy(fs, freqsGHz)
	return &Timeseries{
		intervalMs:  intervalMs,
		freqs:       fs,
		capacity:    capacity,
		timeMs:      make([]float64, capacity),
		powerW:      make([]float64, capacity),
		queueDepth:  make([]float64, capacity),
		inFlight:    make([]float64, capacity),
		arrivals:    make([]uint64, capacity),
		completions: make([]uint64, capacity),
		drops:       make([]uint64, capacity),
		capThr:      make([]uint64, capacity),
		capModeledW: make([]float64, capacity),
		p50:         make([]float64, capacity),
		p95:         make([]float64, capacity),
		p99:         make([]float64, capacity),
		sloViol:     make([]uint64, capacity),
		queueHW:     make([]float64, capacity),
		goroutines:  make([]float64, capacity),
		gcPause:     make([]float64, capacity),
		heapD:       make([]float64, capacity),
		resid:       make([]float64, capacity*len(fs)),
	}
}

// IntervalMs returns the sample interval (0 for a nil series).
func (t *Timeseries) IntervalMs() float64 {
	if t == nil {
		return 0
	}
	return t.intervalMs
}

// FreqsGHz returns a copy of the residency frequency levels.
func (t *Timeseries) FreqsGHz() []float64 {
	if t == nil {
		return nil
	}
	out := make([]float64, len(t.freqs))
	copy(out, t.freqs)
	return out
}

// LevelCount returns the number of residency levels.
func (t *Timeseries) LevelCount() int {
	if t == nil {
		return 0
	}
	return len(t.freqs)
}

// Len returns the number of retained rows.
func (t *Timeseries) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Total returns the number of rows ever appended, evicted ones included.
func (t *Timeseries) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Append records one row, evicting the oldest when the ring is full. The
// row's Residency must have exactly LevelCount entries (shorter slices
// zero-fill); the slice is copied, never retained. Allocation-free.
func (t *Timeseries) Append(row TimeseriesRow) {
	if t == nil {
		return
	}
	t.mu.Lock()
	i := (t.start + t.n) % t.capacity
	if t.n == t.capacity {
		t.start = (t.start + 1) % t.capacity
	} else {
		t.n++
	}
	t.timeMs[i] = row.TimeMs
	t.powerW[i] = row.PowerW
	t.queueDepth[i] = row.QueueDepth
	t.inFlight[i] = row.InFlight
	t.arrivals[i] = row.Arrivals
	t.completions[i] = row.Completions
	t.drops[i] = row.Drops
	t.capThr[i] = row.CapThrottles
	t.capModeledW[i] = row.CapModeledW
	t.p50[i] = row.P50Ms
	t.p95[i] = row.P95Ms
	t.p99[i] = row.P99Ms
	t.sloViol[i] = row.SLOViolations
	t.queueHW[i] = row.QueueHighWater
	t.goroutines[i] = row.Goroutines
	t.gcPause[i] = row.GCPauseMs
	t.heapD[i] = row.HeapDeltaBytes
	lv := len(t.freqs)
	dst := t.resid[i*lv : (i+1)*lv]
	for j := range dst {
		if j < len(row.Residency) {
			dst[j] = row.Residency[j]
		} else {
			dst[j] = 0
		}
	}
	t.total++
	t.mu.Unlock()
}

// row materializes ring slot (start+k)%capacity. Caller holds t.mu.
func (t *Timeseries) row(k int) TimeseriesRow {
	i := (t.start + k) % t.capacity
	lv := len(t.freqs)
	res := make([]float64, lv)
	copy(res, t.resid[i*lv:(i+1)*lv])
	return TimeseriesRow{
		TimeMs:         t.timeMs[i],
		PowerW:         t.powerW[i],
		QueueDepth:     t.queueDepth[i],
		InFlight:       t.inFlight[i],
		Arrivals:       t.arrivals[i],
		Completions:    t.completions[i],
		Drops:          t.drops[i],
		CapThrottles:   t.capThr[i],
		CapModeledW:    t.capModeledW[i],
		P50Ms:          t.p50[i],
		P95Ms:          t.p95[i],
		P99Ms:          t.p99[i],
		SLOViolations:  t.sloViol[i],
		QueueHighWater: t.queueHW[i],
		Goroutines:     t.goroutines[i],
		GCPauseMs:      t.gcPause[i],
		HeapDeltaBytes: t.heapD[i],
		Residency:      res,
	}
}

// Rows returns every retained row, oldest first.
func (t *Timeseries) Rows() []TimeseriesRow {
	return t.Snapshot(0)
}

// Snapshot returns the most recent n rows, oldest first (n <= 0 returns
// every retained row).
func (t *Timeseries) Snapshot(n int) []TimeseriesRow {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]TimeseriesRow, n)
	for k := 0; k < n; k++ {
		out[k] = t.row(t.n - n + k)
	}
	return out
}

// WriteJSONL dumps the retained rows, oldest first, as JSON lines — the
// geminisim -timeline export. Byte-stable for identical row contents, which
// is what the serial-vs-sharded identity smoke compares.
func (t *Timeseries) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, row := range t.Rows() {
		if err := enc.Encode(&row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the retained rows as CSV with a header; residency levels
// become one resid_<GHz> column each.
func (t *Timeseries) WriteCSV(w io.Writer) error {
	if t == nil {
		return nil
	}
	cols := []string{"time_ms", "power_watts", "queue_depth", "in_flight",
		"arrivals", "completions", "drops", "cap_throttles", "cap_modeled_watts",
		"p50_ms", "p95_ms", "p99_ms", "slo_violations", "queue_high_water",
		"goroutines", "gc_pause_ms", "heap_delta_bytes"}
	for _, f := range t.FreqsGHz() {
		cols = append(cols, "resid_"+strconv.FormatFloat(f, 'g', -1, 64))
	}
	if _, err := fmt.Fprintln(w, join(cols)); err != nil {
		return err
	}
	for _, row := range t.Rows() {
		vals := []string{
			fcsv(row.TimeMs), fcsv(row.PowerW), fcsv(row.QueueDepth), fcsv(row.InFlight),
			strconv.FormatUint(row.Arrivals, 10), strconv.FormatUint(row.Completions, 10),
			strconv.FormatUint(row.Drops, 10), strconv.FormatUint(row.CapThrottles, 10),
			fcsv(row.CapModeledW), fcsv(row.P50Ms), fcsv(row.P95Ms), fcsv(row.P99Ms),
			strconv.FormatUint(row.SLOViolations, 10), fcsv(row.QueueHighWater),
			fcsv(row.Goroutines), fcsv(row.GCPauseMs), fcsv(row.HeapDeltaBytes),
		}
		for _, r := range row.Residency {
			vals = append(vals, fcsv(r))
		}
		if _, err := fmt.Fprintln(w, join(vals)); err != nil {
			return err
		}
	}
	return nil
}

func fcsv(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ","
		}
		out += p
	}
	return out
}

// SampleCount returns the number of sample boundaries a run of durationMs
// produces at intervalMs: boundaries sit at k·interval for k = 1, 2, …, with
// the final boundary clamped to exactly durationMs (a partial last window).
// Boundary math multiplies rather than accumulates so every producer —
// engine timers, cluster merges, tests — lands on bit-identical timestamps.
func SampleCount(durationMs, intervalMs float64) int {
	if durationMs <= 0 || intervalMs <= 0 {
		return 0
	}
	k := int(durationMs / intervalMs)
	if float64(k)*intervalMs < durationMs {
		k++
	}
	if k < 1 {
		k = 1
	}
	return k
}

// sampleBoundary returns the k-th (1-based) boundary, clamped to the horizon.
func sampleBoundary(k int, intervalMs, durationMs float64) float64 {
	b := float64(k) * intervalMs
	if b > durationMs {
		b = durationMs
	}
	return b
}

// SampleCursor is one run's sampling state: the window accumulators the
// engine feeds between boundaries and drains into the Timeseries at each
// reserved-timer fire. It lives in package telemetry — not sim — because the
// hot-path analyzer exempts only statements guarded by a nil check on a
// telemetry pointer, the same contract the decision tracer uses; every
// engine-side touch sits under `if s.tsc != nil`.
//
// All methods are allocation-free except OnCompletion's amortized window
// growth (sampling enabled implies the window buffer is part of the
// contract). A SampleCursor is single-run, single-goroutine state: unlike
// Timeseries it takes no locks.
type SampleCursor struct {
	ts         *Timeseries
	intervalMs float64
	durationMs float64

	k      int     // boundaries sampled so far
	nextAt float64 // next boundary, -1 once the horizon boundary was sampled

	lastMs       float64
	lastEnergyMJ float64

	level                        int // current ladder level (residency key)
	arrivals, completions, drops uint64
	resid                        []float64 // ms at each level this window
	window                       []float64 // latencies completed this window

	// SLO classification and queue saturation (zero-valued when unused).
	sloDeadlineMs float64 // 0 = no classification
	sloViolations uint64
	queueHW       float64 // deepest queue seen this window
}

// StartRun opens a sampling cursor for one run over [0, durationMs]. Returns
// nil — a disabled cursor — for a nil series or a degenerate horizon.
func (t *Timeseries) StartRun(durationMs float64) *SampleCursor {
	if t == nil || durationMs <= 0 {
		return nil
	}
	return &SampleCursor{
		ts:         t,
		intervalMs: t.intervalMs,
		durationMs: durationMs,
		k:          0,
		nextAt:     sampleBoundary(1, t.intervalMs, durationMs),
		resid:      make([]float64, len(t.freqs)),
		window:     make([]float64, 0, 64),
	}
}

// NextAt returns the next boundary to arm a timer for, or -1 when the run's
// final boundary has been sampled.
func (c *SampleCursor) NextAt() float64 { return c.nextAt }

// SetLevel records a frequency-ladder level switch; subsequent Accrue time
// lands on the new level. Out-of-range levels clamp into the table.
func (c *SampleCursor) SetLevel(level int) {
	if level < 0 {
		level = 0
	}
	if n := len(c.resid); level >= n {
		level = n - 1
	}
	c.level = level
}

// Accrue charges dtMs of residency at the current level.
func (c *SampleCursor) Accrue(dtMs float64) {
	if dtMs > 0 && c.level >= 0 && c.level < len(c.resid) {
		c.resid[c.level] += dtMs
	}
}

// SetSLODeadline arms deadline classification: subsequent OnCompletion calls
// with latency above deadlineMs count into the row's SLOViolations column.
// A non-positive deadline disables classification.
func (c *SampleCursor) SetSLODeadline(deadlineMs float64) {
	if deadlineMs < 0 {
		deadlineMs = 0
	}
	c.sloDeadlineMs = deadlineMs
}

// OnArrival counts one arrival in the current window. depth is the queue
// depth including the new request — arrivals are the only moments the queue
// grows, so the per-window high-water mark is the max over these readings
// and the previous boundary's instantaneous depth.
func (c *SampleCursor) OnArrival(depth float64) {
	c.arrivals++
	if depth > c.queueHW {
		c.queueHW = depth
	}
}

// OnCompletion counts one completion and records its latency for the
// window's percentiles, classifying it against the SLO deadline when one is
// armed.
func (c *SampleCursor) OnCompletion(latencyMs float64) {
	c.completions++
	if c.sloDeadlineMs > 0 && latencyMs > c.sloDeadlineMs {
		c.sloViolations++
	}
	c.window = append(c.window, latencyMs)
}

// OnDrop counts one drop in the current window.
func (c *SampleCursor) OnDrop() { c.drops++ }

// Sample seals the window ending at nowMs (a boundary the engine's reserved
// timer just fired at): modeled power from the energy-meter delta, residency
// fractions, windowed percentiles (the buffer is sorted in place), and the
// instantaneous queue/in-flight readings — then resets the accumulators and
// advances to the next boundary.
func (c *SampleCursor) Sample(nowMs, energyMJ, queueDepth, inFlight float64) {
	if queueDepth > c.queueHW {
		c.queueHW = queueDepth
	}
	row := TimeseriesRow{
		TimeMs:         nowMs,
		QueueDepth:     queueDepth,
		InFlight:       inFlight,
		Arrivals:       c.arrivals,
		Completions:    c.completions,
		Drops:          c.drops,
		SLOViolations:  c.sloViolations,
		QueueHighWater: c.queueHW,
		Residency:      c.resid,
	}
	if dt := nowMs - c.lastMs; dt > 0 {
		// mJ per ms is watts.
		row.PowerW = (energyMJ - c.lastEnergyMJ) / dt
		for i, r := range c.resid {
			c.resid[i] = r / dt
		}
	}
	if len(c.window) > 0 {
		sort.Float64s(c.window)
		row.P50Ms = stats.PercentileSorted(c.window, 50)
		row.P95Ms = stats.PercentileSorted(c.window, 95)
		row.P99Ms = stats.PercentileSorted(c.window, 99)
	}
	c.ts.Append(row)

	c.lastMs, c.lastEnergyMJ = nowMs, energyMJ
	c.arrivals, c.completions, c.drops = 0, 0, 0
	c.sloViolations = 0
	// The queue only grows at arrivals, so the boundary depth seeds the next
	// window's high-water mark: a draining queue's mark falls with it, a
	// saturated one carries over.
	c.queueHW = queueDepth
	for i := range c.resid {
		c.resid[i] = 0
	}
	c.window = c.window[:0]
	c.k++
	if nowMs >= c.durationMs {
		c.nextAt = -1
		return
	}
	c.nextAt = sampleBoundary(c.k+1, c.intervalMs, c.durationMs)
}

// timelinePayload is the JSON body served by TimelineHandler.
type timelinePayload struct {
	IntervalMs float64         `json:"interval_ms"`
	FreqsGHz   []float64       `json:"freqs_ghz"`
	Total      uint64          `json:"total"`
	Samples    []TimeseriesRow `json:"samples"`
}

// TimelineHandler serves the most recent timeline samples as JSON — mount it
// at /debug/timeline. The ?n= query parameter bounds the sample count
// (ClampDebugN semantics: default defaultN, hard ceiling MaxDebugN). The
// schema matches the simulator's -timeline export row for row.
func TimelineHandler(t *Timeseries, defaultN int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, err := ClampDebugN(r.URL.Query().Get("n"), defaultN)
		if err != nil {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		payload := timelinePayload{Samples: []TimeseriesRow{}}
		if t != nil {
			payload.IntervalMs = t.IntervalMs()
			payload.FreqsGHz = t.FreqsGHz()
			payload.Total = t.Total()
			if rows := t.Snapshot(n); rows != nil {
				payload.Samples = rows
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}
