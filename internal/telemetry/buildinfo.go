package telemetry

import (
	"runtime"
	"runtime/debug"
)

// BuildInfoFamily is the standard Prometheus build-metadata gauge: constant
// value 1, with the interesting facts carried as labels so dashboards can
// join fleet metrics against the binary that produced them.
const BuildInfoFamily = "gemini_build_info"

// RegisterBuildInfo installs the gemini_build_info gauge on reg, following
// the <name>_build_info convention: value fixed at 1, labeled with the
// module version (from the embedded build info; "unknown" when the binary
// was built without module metadata), the Go toolchain version, and the
// caller-supplied engine identifier (e.g. "isnserver", "geminiload").
// Registering is idempotent per (reg, labels).
func RegisterBuildInfo(reg *Registry, engine string) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	reg.Gauge(BuildInfoFamily,
		"Build metadata: constant 1 labeled with module version, Go toolchain, and serving engine.",
		// Build metadata takes exactly one value per binary: the _build_info
		// idiom trades three bounded labels for joinability in dashboards.
		L("version", version),              //gemini:allow metriclabel -- one module version per binary
		L("go_version", runtime.Version()), //gemini:allow metriclabel -- one toolchain version per binary
		L("engine", engine),                //gemini:allow metriclabel -- engine id is a compile-time choice per command
	).Set(1)
}
