package telemetry

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
)

// SLO & error-budget burn tracking. The paper's objective is a latency SLO —
// finish every query inside deadline D at a target tail percentile — at
// minimum energy; this file gives that objective a runtime representation.
// An SLOTracker counts good events (latency <= deadline) and bad events
// (violations, drops, errors) into fixed-width time buckets and derives
// SRE-style multi-window error-budget burn rates: the ratio of the observed
// bad fraction to the budgeted bad fraction (1 - target percentile). A burn
// rate of 1 consumes the budget exactly as provisioned; a fast burn of 14.4
// over a short window empties a 30-day budget in two days, the classic
// fast-page threshold.
//
// The tracker takes every timestamp explicitly (milliseconds on the caller's
// clock) and never reads a wall clock itself — it serves both the simulator
// (simulated time via TimeseriesRow feeds, byte-identical serial vs -workers
// N because the rows are) and the live listeners (internal/server supplies
// wall time, the one layer allowed to). The geminivet nodeterminism analyzer
// enforces this split: internal/telemetry is inside the wall-clock ban scope.

// SLOConfig parameterizes a tracker. The zero value is completed by
// withDefaults: the paper's 40 ms deadline at p99, 1 s buckets, 1 s / 10 s /
// 60 s burn windows, and the conventional 14.4 (fast) / 1.0 (slow) burn
// thresholds.
type SLOConfig struct {
	// DeadlineMs is the latency SLO deadline D: an event observed with
	// latency <= DeadlineMs is good, above it bad.
	DeadlineMs float64 `json:"deadline_ms"`
	// TargetPct is the target percentile (e.g. 99): the SLO holds while at
	// most 1 - TargetPct/100 of events are bad. That fraction is the error
	// budget burn rates are normalized against.
	TargetPct float64 `json:"target_pct"`
	// BucketMs is the accounting granularity; windows are rounded up to
	// whole buckets.
	BucketMs float64 `json:"bucket_ms"`
	// WindowsMs are the trailing burn-rate windows, shortest first. The
	// shortest window drives the fast-burn flag, the longest the slow-burn
	// flag.
	WindowsMs []float64 `json:"windows_ms"`
	// FastBurnThreshold and SlowBurnThreshold gate the snapshot's FastBurn /
	// SlowBurn flags against the shortest / longest window's burn rate.
	FastBurnThreshold float64 `json:"fast_burn_threshold"`
	SlowBurnThreshold float64 `json:"slow_burn_threshold"`
}

// DefaultSLOWindowsMs are the default burn windows: 1 s, 10 s, 60 s.
var DefaultSLOWindowsMs = []float64{1000, 10_000, 60_000}

// withDefaults fills zero fields with the package defaults.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.DeadlineMs <= 0 {
		c.DeadlineMs = 40
	}
	if c.TargetPct <= 0 || c.TargetPct >= 100 {
		c.TargetPct = 99
	}
	if c.BucketMs <= 0 {
		c.BucketMs = 1000
	}
	if len(c.WindowsMs) == 0 {
		c.WindowsMs = DefaultSLOWindowsMs
	}
	if c.FastBurnThreshold <= 0 {
		c.FastBurnThreshold = 14.4
	}
	if c.SlowBurnThreshold <= 0 {
		c.SlowBurnThreshold = 1
	}
	return c
}

// BudgetFraction is the budgeted bad-event fraction 1 - TargetPct/100.
func (c SLOConfig) BudgetFraction() float64 { return 1 - c.TargetPct/100 }

// sloBucket is one accounting bucket: good/bad counts for the bucket whose
// absolute index (bucket start = abs·BucketMs) the ring position holds.
type sloBucket struct {
	abs       int64 // absolute bucket number; -1 = never written
	good, bad uint64
}

// SLOTracker accumulates good/bad events into a bucket ring and answers
// multi-window burn-rate queries. All methods are safe for concurrent use
// and nil-safe; Observe is allocation-free. Time flows forward: an
// observation earlier than the current bucket is counted into the current
// bucket rather than rewinding history.
type SLOTracker struct {
	mu      sync.Mutex
	cfg     SLOConfig
	buckets []sloBucket
	cur     int   // ring index of the current bucket
	curAbs  int64 // absolute bucket number of the current bucket
	started bool
	// Cumulative totals, evictions included.
	good, bad uint64
}

// NewSLOTracker builds a tracker; zero config fields take the defaults. The
// ring retains exactly enough buckets to answer the longest window.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	maxWin := cfg.WindowsMs[0]
	for _, w := range cfg.WindowsMs {
		if w > maxWin {
			maxWin = w
		}
	}
	n := windowBuckets(maxWin, cfg.BucketMs)
	t := &SLOTracker{cfg: cfg, buckets: make([]sloBucket, n)}
	for i := range t.buckets {
		t.buckets[i].abs = -1
	}
	return t
}

// windowBuckets is the bucket count covering a trailing window: whole
// buckets, rounded up, at least one (the current, possibly partial, bucket).
func windowBuckets(windowMs, bucketMs float64) int {
	k := int(math.Ceil(windowMs / bucketMs))
	if k < 1 {
		k = 1
	}
	return k
}

// Config returns the tracker's effective (default-completed) configuration.
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}.withDefaults()
	}
	return t.cfg
}

// advance rolls the ring forward so the bucket containing nowMs is current.
// Bucket boundaries multiply (abs·BucketMs) rather than accumulate — the
// same drift-free discipline the timeline sampler uses. Caller holds t.mu.
func (t *SLOTracker) advance(nowMs float64) {
	target := int64(nowMs / t.cfg.BucketMs)
	if nowMs < 0 {
		target = 0
	}
	if !t.started {
		t.started = true
		t.curAbs = target
		t.buckets[t.cur] = sloBucket{abs: target}
		return
	}
	if target <= t.curAbs {
		return // same bucket, or out-of-order: count into the current bucket
	}
	if steps := target - t.curAbs; steps >= int64(len(t.buckets)) {
		// The jump clears the whole ring: reset rather than stepping.
		for i := range t.buckets {
			t.buckets[i] = sloBucket{abs: -1}
		}
		t.cur = 0
		t.curAbs = target
		t.buckets[0] = sloBucket{abs: target}
		return
	}
	for t.curAbs < target {
		t.curAbs++
		t.cur = (t.cur + 1) % len(t.buckets)
		t.buckets[t.cur] = sloBucket{abs: t.curAbs}
	}
}

// Observe records one event at nowMs: good when latencyMs <= the deadline,
// bad otherwise. Allocation-free.
func (t *SLOTracker) Observe(nowMs, latencyMs float64) {
	if t == nil {
		return
	}
	if latencyMs <= t.cfg.DeadlineMs {
		t.ObserveCounts(nowMs, 1, 0)
	} else {
		t.ObserveCounts(nowMs, 0, 1)
	}
}

// ObserveBad records one bad event (a drop, an error, a shed request) at
// nowMs — events that never produced a latency still burn budget.
func (t *SLOTracker) ObserveBad(nowMs float64) {
	t.ObserveCounts(nowMs, 0, 1)
}

// ObserveCounts records a batch of pre-classified events at nowMs. This is
// the TimeseriesRow feed: the simulator's sampler classifies completions
// against the workload deadline per window, and each row's counts land in
// the bucket containing the row's end boundary.
func (t *SLOTracker) ObserveCounts(nowMs float64, good, bad uint64) {
	if t == nil || (good == 0 && bad == 0) {
		return
	}
	t.mu.Lock()
	t.advance(nowMs)
	t.buckets[t.cur].good += good
	t.buckets[t.cur].bad += bad
	t.good += good
	t.bad += bad
	t.mu.Unlock()
}

// FeedRows replays sampled timeline rows into the tracker: good = in-window
// completions that met the deadline, bad = deadline violations plus drops.
// Rows are byte-identical for serial and sharded runs, so so is the
// resulting tracker state.
func (t *SLOTracker) FeedRows(rows []TimeseriesRow) {
	if t == nil {
		return
	}
	for _, r := range rows {
		good := r.Completions - r.SLOViolations
		if r.SLOViolations > r.Completions {
			good = 0
		}
		t.ObserveCounts(r.TimeMs, good, r.SLOViolations+r.Drops)
	}
}

// SLOWindow is one trailing window's burn view.
type SLOWindow struct {
	WindowMs    float64 `json:"window_ms"`
	Good        uint64  `json:"good"`
	Bad         uint64  `json:"bad"`
	BadFraction float64 `json:"bad_fraction"`
	// BurnRate is BadFraction divided by the budgeted fraction: 1.0 burns
	// the budget exactly as provisioned, 0 when the window is empty.
	BurnRate float64 `json:"burn_rate"`
}

// SLOBucketView is one accounting bucket in a snapshot, oldest first.
type SLOBucketView struct {
	EndMs float64 `json:"end_ms"`
	Good  uint64  `json:"good"`
	Bad   uint64  `json:"bad"`
}

// SLOSnapshot is the tracker's queryable state at an instant — the
// /debug/slo payload and the SoakReport's SLO section.
type SLOSnapshot struct {
	Config SLOConfig `json:"config"`
	// NowMs is the query instant the windows trail from.
	NowMs float64 `json:"now_ms"`
	// Good and Bad are cumulative since the tracker was created.
	Good uint64 `json:"good"`
	Bad  uint64 `json:"bad"`
	// BudgetRemaining is the unconsumed fraction of the cumulative error
	// budget: 1 with no bad events, 0 at exactly the budgeted bad fraction,
	// negative once the SLO is cumulatively blown. 1 when no events at all.
	BudgetRemaining float64 `json:"budget_remaining"`
	// FastBurn / SlowBurn flag the shortest / longest window's burn rate
	// crossing its configured threshold.
	FastBurn bool        `json:"fast_burn"`
	SlowBurn bool        `json:"slow_burn"`
	Windows  []SLOWindow `json:"windows"`
	// Buckets are the most recent accounting buckets, oldest first, bounded
	// by the snapshot's n.
	Buckets []SLOBucketView `json:"buckets"`
}

// Snapshot computes the multi-window burn view at nowMs, returning at most n
// trailing buckets (n <= 0 returns every retained bucket).
func (t *SLOTracker) Snapshot(nowMs float64, n int) SLOSnapshot {
	if t == nil {
		return SLOSnapshot{Config: SLOConfig{}.withDefaults(), Windows: []SLOWindow{}, Buckets: []SLOBucketView{}}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.advance(nowMs)
	s := SLOSnapshot{
		Config:          t.cfg,
		NowMs:           nowMs,
		Good:            t.good,
		Bad:             t.bad,
		BudgetRemaining: 1,
		Windows:         make([]SLOWindow, 0, len(t.cfg.WindowsMs)),
		Buckets:         []SLOBucketView{},
	}
	budget := t.cfg.BudgetFraction()
	if total := t.good + t.bad; total > 0 && budget > 0 {
		s.BudgetRemaining = 1 - (float64(t.bad)/float64(total))/budget
	}
	for _, w := range t.cfg.WindowsMs {
		win := SLOWindow{WindowMs: w}
		k := windowBuckets(w, t.cfg.BucketMs)
		if k > len(t.buckets) {
			k = len(t.buckets)
		}
		for i := 0; i < k; i++ {
			b := t.buckets[(t.cur-i+len(t.buckets))%len(t.buckets)]
			if b.abs < 0 || b.abs > t.curAbs-int64(i) {
				continue // never written, or a stale slot from before a reset
			}
			win.Good += b.good
			win.Bad += b.bad
		}
		if total := win.Good + win.Bad; total > 0 {
			win.BadFraction = float64(win.Bad) / float64(total)
			if budget > 0 {
				win.BurnRate = win.BadFraction / budget
			}
		}
		s.Windows = append(s.Windows, win)
	}
	if len(s.Windows) > 0 {
		s.FastBurn = s.Windows[0].BurnRate >= t.cfg.FastBurnThreshold
		s.SlowBurn = s.Windows[len(s.Windows)-1].BurnRate >= t.cfg.SlowBurnThreshold
	}
	if n <= 0 || n > len(t.buckets) {
		n = len(t.buckets)
	}
	for i := n - 1; i >= 0; i-- {
		b := t.buckets[(t.cur-i+len(t.buckets))%len(t.buckets)]
		if b.abs < 0 {
			continue
		}
		s.Buckets = append(s.Buckets, SLOBucketView{
			EndMs: float64(b.abs+1) * t.cfg.BucketMs,
			Good:  b.good,
			Bad:   b.bad,
		})
	}
	return s
}

// GoodBad splits the histogram's observations at the deadline using the
// cumulative bucket counts: good is every observation in a bucket whose
// upper bound le is <= deadlineMs, bad is the rest — the implicit le="+Inf"
// bucket included, so observations beyond the largest finite bound always
// count bad. When the deadline falls strictly inside a bucket the whole
// bucket counts bad (the conservative reading: the SLO cannot claim
// observations it cannot prove met the deadline).
func (h *Histogram) GoodBad(deadlineMs float64) (good, bad uint64) {
	for i, b := range h.bounds {
		if b <= deadlineMs {
			good += h.counts[i].Load()
		} else {
			bad += h.counts[i].Load()
		}
	}
	bad += h.counts[len(h.bounds)].Load() // le="+Inf"
	return good, bad
}

// SLOHandler serves an SLO snapshot as JSON — mount it at /debug/slo. The
// snap callback supplies the snapshot so the clock stays with the caller
// (wall time in internal/server, simulated time in tests); n is the clamped
// ?n= bucket bound (default defaultN, ClampDebugN semantics).
func SLOHandler(snap func(n int) SLOSnapshot, defaultN int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, err := ClampDebugN(r.URL.Query().Get("n"), defaultN)
		if err != nil {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		s := snap(n)
		if s.Windows == nil {
			s.Windows = []SLOWindow{}
		}
		if s.Buckets == nil {
			s.Buckets = []SLOBucketView{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(s)
	})
}
