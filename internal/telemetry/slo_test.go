package telemetry

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"
)

// cfg helper: 10 ms deadline at p99 (budget fraction 0.01), default 1 s
// buckets and 1/10/60 s windows.
func testSLOConfig() SLOConfig {
	return SLOConfig{DeadlineMs: 10, TargetPct: 99}
}

func observeN(t *SLOTracker, nowMs float64, good, bad int) {
	for i := 0; i < good; i++ {
		t.Observe(nowMs, 1)
	}
	for i := 0; i < bad; i++ {
		t.Observe(nowMs, 100)
	}
}

func TestSLOBurnRateGolden(t *testing.T) {
	// burn = badFraction / budgetFraction. At p99 the budget fraction is
	// 0.01, so 1 bad in 100 burns at exactly 1.0 and 144 bad in 1000 at
	// exactly 14.4 — the classic fast-page threshold.
	cases := []struct {
		name      string
		good, bad int
		wantBurn  float64
		wantFast  bool
		wantSlow  bool
	}{
		{"exactly budgeted", 99, 1, 1.0, false, false},
		{"under budget", 991, 9, 0.9, false, false},
		{"clear slow burn", 98, 2, 2.0, false, true},
		{"clear fast burn", 850, 150, 15.0, true, true},
		{"all good", 1000, 0, 0, false, false},
	}
	// Note "exactly budgeted": 1 - 99/100 is not exactly representable, so a
	// burn of nominally 1.0 computes fractionally under the slow threshold —
	// the exact >= boundary is pinned separately with representable arithmetic
	// in TestSLOBurnThresholdBoundaryExact.
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := NewSLOTracker(testSLOConfig())
			observeN(tr, 500, tc.good, tc.bad)
			s := tr.Snapshot(500, 0)
			if got := s.Windows[0].BurnRate; math.Abs(got-tc.wantBurn) > 1e-9 {
				t.Fatalf("window[0] burn = %v, want %v", got, tc.wantBurn)
			}
			if s.FastBurn != tc.wantFast {
				t.Fatalf("FastBurn = %v, want %v", s.FastBurn, tc.wantFast)
			}
			if s.SlowBurn != tc.wantSlow {
				t.Fatalf("SlowBurn = %v, want %v", s.SlowBurn, tc.wantSlow)
			}
		})
	}
}

func TestSLOBurnThresholdBoundaryExact(t *testing.T) {
	// TargetPct 75 gives an exactly representable budget fraction of 0.25,
	// so burn rates land on exact values and the >= flag boundary is testable
	// without float noise.
	cfg := SLOConfig{DeadlineMs: 10, TargetPct: 75, FastBurnThreshold: 2, SlowBurnThreshold: 1}
	tr := NewSLOTracker(cfg)
	observeN(tr, 500, 1, 1) // bad fraction 0.5 → burn exactly 2.0
	s := tr.Snapshot(500, 0)
	if s.Windows[0].BurnRate != 2.0 {
		t.Fatalf("burn = %v, want exactly 2.0", s.Windows[0].BurnRate)
	}
	if !s.FastBurn || !s.SlowBurn {
		t.Fatalf("flags at exact thresholds = fast %v slow %v, want true/true (>= semantics)", s.FastBurn, s.SlowBurn)
	}

	tr = NewSLOTracker(cfg)
	observeN(tr, 500, 3, 1) // bad fraction 0.25 → burn exactly 1.0
	s = tr.Snapshot(500, 0)
	if s.Windows[0].BurnRate != 1.0 {
		t.Fatalf("burn = %v, want exactly 1.0", s.Windows[0].BurnRate)
	}
	if s.FastBurn || !s.SlowBurn {
		t.Fatalf("flags at burn 1.0 = fast %v slow %v, want false/true", s.FastBurn, s.SlowBurn)
	}
}

func TestSLOEmptyWindowBurnsZero(t *testing.T) {
	tr := NewSLOTracker(testSLOConfig())
	observeN(tr, 500, 10, 5)
	// Jump far past the longest window: every trailing window is empty, so
	// burn rates drop to zero while cumulative accounting persists.
	s := tr.Snapshot(500_000, 0)
	for _, w := range s.Windows {
		if w.Good != 0 || w.Bad != 0 || w.BurnRate != 0 {
			t.Fatalf("window %v not empty after idle jump: %+v", w.WindowMs, w)
		}
	}
	if s.FastBurn || s.SlowBurn {
		t.Fatalf("burn flags set on empty windows")
	}
	if s.Good != 10 || s.Bad != 5 {
		t.Fatalf("cumulative = %d/%d, want 10/5", s.Good, s.Bad)
	}
	if s.BudgetRemaining >= 0 {
		t.Fatalf("BudgetRemaining = %v, want negative (5/15 bad at a 0.01 budget)", s.BudgetRemaining)
	}
}

func TestSLORingEviction(t *testing.T) {
	// 100 ms buckets, one 300 ms window: a 3-bucket ring.
	cfg := SLOConfig{DeadlineMs: 10, TargetPct: 99, BucketMs: 100, WindowsMs: []float64{300}}
	tr := NewSLOTracker(cfg)
	tr.ObserveCounts(50, 1, 0)  // bucket 0
	tr.ObserveCounts(150, 2, 0) // bucket 1
	tr.ObserveCounts(250, 4, 0) // bucket 2
	tr.ObserveCounts(350, 8, 0) // bucket 3 evicts bucket 0
	s := tr.Snapshot(350, 0)
	if got := s.Windows[0].Good; got != 2+4+8 {
		t.Fatalf("window good = %d, want 14 (bucket 0 evicted)", got)
	}
	if s.Good != 15 {
		t.Fatalf("cumulative good = %d, want 15 (evictions included)", s.Good)
	}
	if n := len(s.Buckets); n != 3 {
		t.Fatalf("retained buckets = %d, want 3", n)
	}
	if s.Buckets[0].EndMs != 200 || s.Buckets[2].EndMs != 400 {
		t.Fatalf("bucket range = [%v, %v], want [200, 400]", s.Buckets[0].EndMs, s.Buckets[2].EndMs)
	}
}

func TestSLORingResetOnLongJump(t *testing.T) {
	cfg := SLOConfig{DeadlineMs: 10, TargetPct: 99, BucketMs: 100, WindowsMs: []float64{300}}
	tr := NewSLOTracker(cfg)
	tr.ObserveCounts(50, 3, 3)
	// A jump of many ring lengths must clear every slot — stale buckets from
	// before the jump may not leak into windows or snapshots.
	tr.ObserveCounts(10_050, 1, 0)
	s := tr.Snapshot(10_050, 0)
	if s.Windows[0].Good != 1 || s.Windows[0].Bad != 0 {
		t.Fatalf("window after reset = %d/%d, want 1/0", s.Windows[0].Good, s.Windows[0].Bad)
	}
	if len(s.Buckets) != 1 {
		t.Fatalf("buckets after reset = %d, want 1", len(s.Buckets))
	}
	if s.Good != 4 || s.Bad != 3 {
		t.Fatalf("cumulative = %d/%d, want 4/3", s.Good, s.Bad)
	}
}

func TestSLOOutOfOrderCountsIntoCurrentBucket(t *testing.T) {
	cfg := SLOConfig{DeadlineMs: 10, TargetPct: 99, BucketMs: 100, WindowsMs: []float64{100}}
	tr := NewSLOTracker(cfg)
	tr.ObserveCounts(250, 1, 0)
	tr.ObserveCounts(50, 1, 0) // earlier than the current bucket: no rewind
	s := tr.Snapshot(250, 0)
	if s.Windows[0].Good != 2 {
		t.Fatalf("window good = %d, want 2 (out-of-order counts forward)", s.Windows[0].Good)
	}
}

func TestSLOFeedRows(t *testing.T) {
	tr := NewSLOTracker(testSLOConfig())
	tr.FeedRows([]TimeseriesRow{
		{TimeMs: 1000, Completions: 10, SLOViolations: 2, Drops: 1},
		{TimeMs: 2000, Completions: 5, SLOViolations: 7, Drops: 0}, // clamp: violations > completions
	})
	s := tr.Snapshot(2000, 0)
	// Row 1: good 8, bad 3. Row 2: good clamps to 0, bad 7.
	if s.Good != 8 || s.Bad != 10 {
		t.Fatalf("cumulative = %d/%d, want 8/10", s.Good, s.Bad)
	}
}

func TestSLOTrackerNilSafe(t *testing.T) {
	var tr *SLOTracker
	tr.Observe(0, 1)
	tr.ObserveBad(0)
	tr.FeedRows([]TimeseriesRow{{TimeMs: 1}})
	s := tr.Snapshot(0, 0)
	if s.Windows == nil || s.Buckets == nil {
		t.Fatalf("nil tracker snapshot must carry empty slices")
	}
}

func TestHistogramGoodBad(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_lat_ms", "test", []float64{5, 10, 20})
	for _, v := range []float64{3, 7, 15, 100} {
		h.Observe(v) // lands in buckets le=5, le=10, le=20, le=+Inf
	}
	cases := []struct {
		deadline  float64
		good, bad uint64
	}{
		{10, 2, 2},  // le=5 and le=10 provably met the deadline
		{12, 2, 2},  // deadline inside (10,20]: the straddling bucket counts bad
		{20, 3, 1},  // only the +Inf observation is bad
		{4, 0, 4},   // no bucket bound <= 4: nothing provable, all bad
		{1e9, 3, 1}, // le="+Inf" stays bad at any finite deadline
	}
	for _, tc := range cases {
		good, bad := h.GoodBad(tc.deadline)
		if good != tc.good || bad != tc.bad {
			t.Fatalf("GoodBad(%v) = %d/%d, want %d/%d", tc.deadline, good, bad, tc.good, tc.bad)
		}
	}
}

func TestClampDebugN(t *testing.T) {
	cases := []struct {
		s       string
		def     int
		want    int
		wantErr bool
	}{
		{"", 50, 50, false},
		{"17", 50, 17, false},
		{"abc", 50, 0, true},
		{"-5", 50, 0, true},
		{"1.5", 50, 0, true},
		{"0", 50, MaxDebugN, false},
		{"999999", 50, MaxDebugN, false},
		{"", 0, MaxDebugN, false},      // default is clamped too
		{"", 99_999, MaxDebugN, false}, // oversized default is clamped too
	}
	for _, tc := range cases {
		got, err := ClampDebugN(tc.s, tc.def)
		if (err != nil) != tc.wantErr {
			t.Fatalf("ClampDebugN(%q, %d) err = %v, wantErr %v", tc.s, tc.def, err, tc.wantErr)
		}
		if err == nil && got != tc.want {
			t.Fatalf("ClampDebugN(%q, %d) = %d, want %d", tc.s, tc.def, got, tc.want)
		}
	}
}

func TestSLOHandler(t *testing.T) {
	tr := NewSLOTracker(testSLOConfig())
	observeN(tr, 500, 3, 1)
	h := SLOHandler(func(n int) SLOSnapshot { return tr.Snapshot(1000, n) }, 60)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	var s SLOSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if s.Good != 3 || s.Bad != 1 || len(s.Windows) != 3 {
		t.Fatalf("snapshot = %d/%d with %d windows, want 3/1 with 3", s.Good, s.Bad, len(s.Windows))
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo?n=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad n: status = %d, want 400", rec.Code)
	}
}

func TestSLOObserveZeroAlloc(t *testing.T) {
	tr := NewSLOTracker(testSLOConfig())
	now := 0.0
	if allocs := testing.AllocsPerRun(1000, func() {
		now += 0.5
		tr.Observe(now, 5)
	}); allocs != 0 {
		t.Fatalf("Observe allocates %v/op, want 0", allocs)
	}
}

func BenchmarkSLOTrackerObserve(b *testing.B) {
	tr := NewSLOTracker(testSLOConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Observe(float64(i)*0.01, 5)
	}
}

func BenchmarkSLOSnapshot(b *testing.B) {
	tr := NewSLOTracker(testSLOConfig())
	for i := 0; i < 70_000; i++ {
		tr.Observe(float64(i), 5)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tr.Snapshot(70_000, 60)
	}
}
