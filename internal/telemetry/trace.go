package telemetry

import (
	"encoding/json"
	"io"
	"sync"

	"gemini/internal/stats"
)

// Decision is one per-query DVFS control record: the predictors' view of the
// request (S*, E*), the plan the policy chose (eq. 5 initial frequency,
// eq. 7/15 boost time, the critical request anchoring a group plan), and the
// executed outcome (actual service time, deadline slack, frequency
// transitions and core energy attributed to the request). The simulator
// fills the lifecycle and outcome fields; policies annotate the plan fields
// through the sim's TracePlan hook.
type Decision struct {
	// Seq is a monotonically increasing emit index, assigned by the Tracer.
	Seq    uint64 `json:"seq"`
	Policy string `json:"policy"`
	// RequestID is the workload request ID (or a live-path sequence number).
	RequestID int     `json:"request_id"`
	ArrivalMs float64 `json:"arrival_ms"`

	// Predictor view (zero for policies that do not predict).
	PredictedMs float64 `json:"predicted_ms"` // S*, at FDefault
	PredErrMs   float64 `json:"pred_err_ms"`  // E*, signed

	// Plan, as chosen at decision time.
	InitialFreqGHz float64 `json:"initial_freq_ghz,omitempty"` // eq. 5 / eq. 14
	BoostFreqGHz   float64 `json:"boost_freq_ghz,omitempty"`   // f_b; 0 = no boost step
	BoostAtMs      float64 `json:"boost_at_ms,omitempty"`      // T (absolute); 0 = no boost step
	CriticalID     int     `json:"critical_id"`                // group anchor; -1 = none
	QueueDepth     int     `json:"queue_depth"`                // incl. this request, at arrival

	// Executed outcome.
	StartFreqGHz    float64 `json:"start_freq_ghz"` // core frequency as execution began
	StartMs         float64 `json:"start_ms"`
	FinishMs        float64 `json:"finish_ms"`
	ServiceMs       float64 `json:"service_ms"`        // wall execution time start→finish
	ActualMs        float64 `json:"actual_ms"`         // true work at FDefault (S* target)
	LatencyMs       float64 `json:"latency_ms"`        // finish − arrival
	DeadlineSlackMs float64 `json:"deadline_slack_ms"` // deadline − finish
	Transitions     int     `json:"freq_transitions"`  // while this request held the core
	EnergyMJ        float64 `json:"energy_mj"`         // core energy while it held the core
	Dropped         bool    `json:"dropped,omitempty"`
	Violated        bool    `json:"violated,omitempty"`
}

// AbsErrMs returns |actual − predicted| service time at FDefault.
func (d *Decision) AbsErrMs() float64 {
	e := d.ActualMs - d.PredictedMs
	if e < 0 {
		e = -e
	}
	return e
}

// Covered reports whether the budgeted estimate S* + E* bounded the actual
// service time — the property eq. 7's boost time relies on.
func (d *Decision) Covered() bool {
	return d.ActualMs <= d.PredictedMs+d.PredErrMs
}

// Ring is a bounded, concurrency-safe buffer of the most recent decisions.
type Ring struct {
	mu    sync.Mutex
	buf   []Decision
	next  int
	full  bool
	total uint64
}

// NewRing creates a ring holding up to capacity decisions (min 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Decision, capacity)}
}

// Push appends one decision, evicting the oldest when full.
func (r *Ring) Push(d Decision) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Total returns the number of decisions ever pushed.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns up to n of the most recent decisions, oldest first
// (all retained entries when n <= 0).
func (r *Ring) Snapshot(n int) []Decision {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Decision, n)
	start := r.next - n
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = r.buf[(start+i)%len(r.buf)]
	}
	return out
}

// qualityBuckets are the |S* − actual| histogram bounds of the prediction
// quality view, in ms (the paper audits errors at 1–5 ms tolerance, Fig. 7/8).
var qualityBuckets = []float64{0.5, 1, 2, 3, 5, 7.5, 10, 15, 20}

// Quality accumulates the prediction-audit view over emitted decisions: the
// absolute-error distribution of S* versus actual service time and the
// coverage rate of the error bound E* — the live equivalent of the paper's
// Fig. 7/8 offline evaluation.
type Quality struct {
	mu      sync.Mutex
	absErr  stats.Online
	signed  stats.Online
	res     *stats.Reservoir
	buckets []uint64 // len(qualityBuckets)+1
	covered int
	total   int
}

// NewQuality creates an empty quality accumulator.
func NewQuality() *Quality {
	return &Quality{res: stats.NewReservoir(2048, 1), buckets: make([]uint64, len(qualityBuckets)+1)}
}

// Observe folds one completed, predicted decision into the audit. Decisions
// without a prediction (PredictedMs == 0) or without an executed outcome are
// ignored.
func (q *Quality) Observe(d *Decision) {
	if d.PredictedMs <= 0 || d.ActualMs <= 0 || d.Dropped {
		return
	}
	abs := d.AbsErrMs()
	q.mu.Lock()
	q.absErr.Add(abs)
	q.signed.Add(d.ActualMs - d.PredictedMs)
	q.res.Add(abs)
	i := 0
	for i < len(qualityBuckets) && abs > qualityBuckets[i] {
		i++
	}
	q.buckets[i]++
	if d.Covered() {
		q.covered++
	}
	q.total++
	q.mu.Unlock()
}

// QualitySnapshot is a point-in-time summary of the prediction audit.
type QualitySnapshot struct {
	N            int     `json:"n"`
	MAEMs        float64 `json:"mae_ms"`
	MeanSignedMs float64 `json:"mean_signed_ms"`
	MaxAbsMs     float64 `json:"max_abs_ms"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	// CoverageRate is the fraction of requests with actual <= S* + E*.
	CoverageRate float64 `json:"coverage_rate"`
	// BucketBounds/BucketCounts form the abs-error histogram (last bucket
	// is +Inf).
	BucketBounds []float64 `json:"bucket_bounds_ms"`
	BucketCounts []uint64  `json:"bucket_counts"`
}

// Snapshot summarizes the audit so far.
func (q *Quality) Snapshot() QualitySnapshot {
	q.mu.Lock()
	defer q.mu.Unlock()
	s := QualitySnapshot{
		N:            q.total,
		MAEMs:        q.absErr.Mean(),
		MeanSignedMs: q.signed.Mean(),
		MaxAbsMs:     q.absErr.Max(),
		BucketBounds: append([]float64(nil), qualityBuckets...),
		BucketCounts: append([]uint64(nil), q.buckets...),
	}
	s.P50Ms, _ = q.res.Percentile(50)
	s.P95Ms, _ = q.res.Percentile(95)
	s.P99Ms, _ = q.res.Percentile(99)
	if q.total > 0 {
		s.CoverageRate = float64(q.covered) / float64(q.total)
	}
	return s
}

// Tracer is the decision sink handed to the simulator (sim.Config.Tracer)
// or a live ISN: every emitted Decision is stamped with a sequence number,
// retained in the bounded ring, folded into the prediction-quality audit,
// and — when a sink is attached — streamed out as one JSON line.
//
// A nil *Tracer is valid everywhere and means "telemetry disabled"; all
// methods are nil-safe, so callers hold exactly one branch on the hot path.
type Tracer struct {
	mu      sync.Mutex
	seq     uint64
	ring    *Ring
	quality *Quality
	sink    io.Writer
	enc     *json.Encoder
	sinkErr error
}

// NewTracer creates a tracer with a ring of the given capacity.
func NewTracer(ringCap int) *Tracer {
	return &Tracer{ring: NewRing(ringCap), quality: NewQuality()}
}

// SetSink attaches a streaming JSONL writer: every subsequent Emit writes
// one JSON-encoded Decision line. The caller owns flushing/closing.
func (t *Tracer) SetSink(w io.Writer) {
	t.mu.Lock()
	t.sink = w
	t.enc = json.NewEncoder(w)
	t.mu.Unlock()
}

// Emit records one decision. Safe for concurrent use; nil-safe.
func (t *Tracer) Emit(d Decision) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.seq++
	d.Seq = t.seq
	enc := t.enc
	t.mu.Unlock()

	t.ring.Push(d)
	t.quality.Observe(&d)
	if enc != nil {
		t.mu.Lock()
		if err := t.enc.Encode(&d); err != nil && t.sinkErr == nil {
			t.sinkErr = err
		}
		t.mu.Unlock()
	}
}

// Ring returns the bounded decision buffer (nil for a nil tracer).
func (t *Tracer) Ring() *Ring {
	if t == nil {
		return nil
	}
	return t.ring
}

// Quality returns the current prediction-audit snapshot.
func (t *Tracer) Quality() QualitySnapshot {
	if t == nil {
		return QualitySnapshot{}
	}
	return t.quality.Snapshot()
}

// Emitted returns the total number of decisions emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// SinkErr returns the first error hit while writing the JSONL sink.
func (t *Tracer) SinkErr() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sinkErr
}

// WriteJSONL dumps the ring's retained decisions (oldest first) as JSON
// lines — the offline-analysis export used by geminisim -log-decisions when
// no streaming sink is attached.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, d := range t.ring.Snapshot(0) {
		if err := enc.Encode(&d); err != nil {
			return err
		}
	}
	return nil
}
