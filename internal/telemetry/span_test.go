package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
)

func spanN(trace string, i int, start, end float64) Span {
	return Span{
		TraceID: trace, SpanID: "s" + strconv.Itoa(i), Name: "phase",
		StartMs: start, EndMs: end,
	}
}

func TestSpanTracerRingEviction(t *testing.T) {
	tr := NewSpanTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit(spanN("t", i, float64(i), float64(i+1)))
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d", tr.Total())
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("retained = %d", len(got))
	}
	for i, s := range got {
		if want := "s" + strconv.Itoa(6+i); s.SpanID != want {
			t.Errorf("span %d = %s, want %s (oldest-first)", i, s.SpanID, want)
		}
	}
	if snap := tr.Snapshot(2); len(snap) != 2 || snap[1].SpanID != "s9" {
		t.Errorf("Snapshot(2) = %+v", snap)
	}
}

func TestSpanTracerTraces(t *testing.T) {
	tr := NewSpanTracer(64)
	tr.EmitBatch([]Span{spanN("a", 0, 0, 5), spanN("a", 1, 1, 3)})
	tr.EmitBatch([]Span{spanN("b", 0, 10, 12)})
	views := tr.Traces(0)
	if len(views) != 2 {
		t.Fatalf("traces = %d", len(views))
	}
	a := views[0]
	if a.TraceID != "a" || a.StartMs != 0 || a.EndMs != 5 || a.DurationMs != 5 || len(a.Spans) != 2 {
		t.Errorf("trace a view = %+v", a)
	}
	// maxTraces keeps the most recent traces.
	if views = tr.Traces(1); len(views) != 1 || views[0].TraceID != "b" {
		t.Errorf("Traces(1) = %+v", views)
	}
}

func TestGroupSpansByTraceOrder(t *testing.T) {
	ids, byTrace := GroupSpansByTrace([]Span{
		spanN("x", 0, 0, 1), spanN("y", 0, 0, 1), spanN("x", 1, 1, 2),
	})
	if len(ids) != 2 || ids[0] != "x" || ids[1] != "y" {
		t.Fatalf("ids = %v", ids)
	}
	if len(byTrace["x"]) != 2 || byTrace["x"][1].SpanID != "s1" {
		t.Errorf("trace x spans = %+v", byTrace["x"])
	}
}

func TestSortSpans(t *testing.T) {
	spans := []Span{
		{SpanID: "c", Name: "c", StartMs: 2, EndMs: 3},
		{SpanID: "b", Name: "b", StartMs: 0, EndMs: 1},
		{SpanID: "a", Name: "a", StartMs: 0, EndMs: 5},
	}
	SortSpans(spans)
	if spans[0].SpanID != "a" || spans[1].SpanID != "b" || spans[2].SpanID != "c" {
		t.Errorf("order = %s %s %s", spans[0].SpanID, spans[1].SpanID, spans[2].SpanID)
	}
}

// TestNilSpanTracerAllocFree proves the disabled path is allocation-free:
// every method of a nil *SpanTracer must return without allocating.
func TestNilSpanTracerAllocFree(t *testing.T) {
	var tr *SpanTracer
	sp := spanN("t", 0, 0, 1)
	batch := []Span{sp}
	if n := testing.AllocsPerRun(100, func() {
		tr.Emit(sp)
		tr.EmitBatch(batch)
		_ = tr.Total()
		_ = tr.Snapshot(4)
		_ = tr.Traces(4)
	}); n != 0 {
		t.Errorf("nil tracer allocates %.1f per call set", n)
	}
}

// TestSpanTracerConcurrentEmit exercises the tracer under concurrent
// emitters (run with -race): batches from distinct goroutines must stay
// internally adjacent and nothing may be lost or torn.
func TestSpanTracerConcurrentEmit(t *testing.T) {
	const workers, traces = 8, 50
	tr := NewSpanTracer(workers * traces * 3)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < traces; i++ {
				id := "w" + strconv.Itoa(w) + "-" + strconv.Itoa(i)
				tr.EmitBatch([]Span{spanN(id, 0, 0, 2), spanN(id, 1, 0, 1)})
				tr.Emit(spanN(id, 2, 1, 2))
			}
		}(w)
	}
	wg.Wait()
	if want := uint64(workers * traces * 3); tr.Total() != want {
		t.Fatalf("total = %d, want %d", tr.Total(), want)
	}
	spans := tr.Spans()
	// EmitBatch holds the lock across the batch: the two batch spans of any
	// trace must be adjacent in the ring.
	for i := 0; i < len(spans); i++ {
		if spans[i].SpanID == "s0" {
			if i+1 >= len(spans) || spans[i+1].TraceID != spans[i].TraceID || spans[i+1].SpanID != "s1" {
				t.Fatalf("batch torn at %d: %+v", i, spans[i])
			}
		}
	}
	ids, byTrace := GroupSpansByTrace(spans)
	if len(ids) != workers*traces {
		t.Fatalf("traces = %d", len(ids))
	}
	for _, id := range ids {
		if len(byTrace[id]) != 3 {
			t.Errorf("trace %s has %d spans", id, len(byTrace[id]))
		}
	}
}

func TestTracesHandler(t *testing.T) {
	tr := NewSpanTracer(64)
	tr.EmitBatch([]Span{spanN("q1", 0, 0, 4), spanN("q1", 1, 0, 2)})
	tr.EmitBatch([]Span{spanN("q2", 0, 5, 9)})

	h := TracesHandler(tr, 16)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var payload struct {
		TotalSpans uint64      `json:"total_spans"`
		Traces     []TraceView `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.TotalSpans != 3 || len(payload.Traces) != 2 {
		t.Fatalf("payload = %+v", payload)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Traces) != 1 || payload.Traces[0].TraceID != "q2" {
		t.Fatalf("n=1 payload = %+v", payload)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=-2", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status %d", rec.Code)
	}

	// A nil tracer serves an empty payload rather than panicking.
	rec = httptest.NewRecorder()
	TracesHandler(nil, 16).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.TotalSpans != 0 || len(payload.Traces) != 0 {
		t.Errorf("nil-tracer payload = %+v", payload)
	}
}

func TestSpanAccumulatorUnbounded(t *testing.T) {
	tr := NewSpanAccumulator()
	const n = 5000
	for i := 0; i < n; i++ {
		tr.Emit(spanN("t", i, float64(i), float64(i+1)))
	}
	if tr.Total() != n {
		t.Fatalf("total = %d", tr.Total())
	}
	got := tr.Spans()
	if len(got) != n {
		t.Fatalf("retained %d of %d — accumulator must never evict", len(got), n)
	}
	for i, s := range got {
		if want := "s" + strconv.Itoa(i); s.SpanID != want {
			t.Fatalf("span %d = %s, want %s (emission order)", i, s.SpanID, want)
		}
	}
	if snap := tr.Snapshot(3); len(snap) != 3 || snap[2].SpanID != "s4999" {
		t.Errorf("Snapshot(3) = %+v", snap)
	}
}

func TestSpanAccumulatorReplayEqualsDirect(t *testing.T) {
	// The sharded-cluster telemetry contract: capture into accumulators,
	// replay via EmitBatch into a bounded ring — the ring must end up exactly
	// as if the spans had been emitted directly.
	direct := NewSpanTracer(8)
	acc := NewSpanAccumulator()
	for i := 0; i < 20; i++ {
		sp := spanN("t", i, float64(i), float64(i+1))
		direct.Emit(sp)
		acc.Emit(sp)
	}
	replayed := NewSpanTracer(8)
	replayed.EmitBatch(acc.Spans())
	d, r := direct.Spans(), replayed.Spans()
	if len(d) != len(r) {
		t.Fatalf("retained %d vs %d", len(d), len(r))
	}
	for i := range d {
		if d[i].SpanID != r[i].SpanID || d[i].StartMs != r[i].StartMs {
			t.Fatalf("span %d differs: %+v vs %+v", i, d[i], r[i])
		}
	}
}
