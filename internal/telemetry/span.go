package telemetry

import (
	"sort"
	"sync"
)

// Span is one named phase of a traced query's lifetime: a [StartMs, EndMs)
// window on the trace's timeline plus numeric attributes (frequency, energy,
// deadline slack, shard IDs). Spans sharing a TraceID form one query's
// waterfall; ParentID links a phase to its enclosing span so the tree can be
// re-assembled after stitching (the aggregator nests ISN spans under its
// per-shard fan-out spans, the simulator nests phase spans under the request
// root).
//
// Times are milliseconds on the emitter's own clock: the simulator uses
// simulated time, the live servers use wall time relative to the trace's
// origin (the aggregator rebases each shard's spans onto its own timeline
// when stitching, see server.Aggregator).
type Span struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	ParentID string `json:"parent_id,omitempty"`
	Name     string `json:"name"`

	StartMs float64 `json:"start_ms"`
	EndMs   float64 `json:"end_ms"`

	// Attrs carries the phase's numeric attributes (freq_ghz, energy_mj,
	// deadline_slack_ms, shard, ...). Nil is valid: not every phase has
	// attributes, and the zero value keeps disabled-path emission
	// allocation-free.
	Attrs map[string]float64 `json:"attrs,omitempty"`
}

// DurationMs returns the span's length.
func (s Span) DurationMs() float64 { return s.EndMs - s.StartMs }

// Attr returns the named attribute (0 when absent).
func (s Span) Attr(name string) float64 { return s.Attrs[name] }

// SpanTracer is the span sink handed to the simulator (sim.Config.Spans) or
// a live server: emitted spans are retained in a bounded ring, oldest
// evicted first.
//
// A nil *SpanTracer is valid everywhere and means "tracing disabled"; all
// methods are nil-safe, so emitters hold exactly one pointer test on the hot
// path and the disabled path allocates nothing (see
// TestNilSpanTracerAllocFree and the sim benchmark pair).
type SpanTracer struct {
	mu        sync.Mutex
	buf       []Span
	next      int
	full      bool
	unbounded bool
	total     uint64
}

// NewSpanTracer creates a tracer retaining up to capacity spans (min 1).
func NewSpanTracer(capacity int) *SpanTracer {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanTracer{buf: make([]Span, capacity)}
}

// NewSpanAccumulator creates a tracer that retains every emitted span with no
// ring bound. Sharded cluster runs capture each core's spans into a private
// accumulator and replay them into the caller's (possibly bounded) tracer in
// deterministic core order afterwards — a bounded intermediate would evict
// early spans and diverge from the serial run's retention.
func NewSpanAccumulator() *SpanTracer {
	return &SpanTracer{unbounded: true}
}

// Emit records one span. Safe for concurrent use; nil-safe.
func (t *SpanTracer) Emit(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.push(sp)
	t.mu.Unlock()
}

// EmitBatch records a trace's spans in one critical section, so spans of the
// same trace stay adjacent in the ring even under concurrent emitters.
// Nil-safe; an empty batch is a no-op.
func (t *SpanTracer) EmitBatch(sps []Span) {
	if t == nil || len(sps) == 0 {
		return
	}
	t.mu.Lock()
	for _, sp := range sps {
		t.push(sp)
	}
	t.mu.Unlock()
}

// push appends under t.mu.
func (t *SpanTracer) push(sp Span) {
	if t.unbounded {
		t.buf = append(t.buf, sp)
		t.next = len(t.buf)
		t.total++
		return
	}
	t.buf[t.next] = sp
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
		t.full = true
	}
	t.total++
}

// Total returns the number of spans ever emitted.
func (t *SpanTracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Snapshot returns up to n of the most recent spans, oldest first (all
// retained spans when n <= 0). Nil-safe (returns nil).
func (t *SpanTracer) Snapshot(n int) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	size := t.next
	if t.full {
		size = len(t.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Span, n)
	start := t.next - n
	if start < 0 {
		start += len(t.buf)
	}
	for i := 0; i < n; i++ {
		out[i] = t.buf[(start+i)%len(t.buf)]
	}
	return out
}

// Spans returns every retained span, oldest first.
func (t *SpanTracer) Spans() []Span { return t.Snapshot(0) }

// TraceView is one stitched trace: every retained span sharing a TraceID,
// in emission order, with the trace's overall time window.
type TraceView struct {
	TraceID    string  `json:"trace_id"`
	StartMs    float64 `json:"start_ms"`
	EndMs      float64 `json:"end_ms"`
	DurationMs float64 `json:"duration_ms"`
	Spans      []Span  `json:"spans"`
}

// Traces groups the retained spans by TraceID (ordered by each trace's first
// retained span) and returns the most recent maxTraces of them (all when
// maxTraces <= 0). Traces whose early spans were already evicted from the
// ring appear truncated — the bound is on spans, not traces. Nil-safe.
func (t *SpanTracer) Traces(maxTraces int) []TraceView {
	spans := t.Snapshot(0)
	if len(spans) == 0 {
		return nil
	}
	idx := make(map[string]int, 16)
	var views []TraceView
	for _, sp := range spans {
		i, ok := idx[sp.TraceID]
		if !ok {
			i = len(views)
			idx[sp.TraceID] = i
			views = append(views, TraceView{TraceID: sp.TraceID, StartMs: sp.StartMs, EndMs: sp.EndMs})
		}
		v := &views[i]
		if sp.StartMs < v.StartMs {
			v.StartMs = sp.StartMs
		}
		if sp.EndMs > v.EndMs {
			v.EndMs = sp.EndMs
		}
		v.Spans = append(v.Spans, sp)
	}
	for i := range views {
		views[i].DurationMs = views[i].EndMs - views[i].StartMs
	}
	if maxTraces > 0 && len(views) > maxTraces {
		views = views[len(views)-maxTraces:]
	}
	return views
}

// GroupSpansByTrace buckets spans by TraceID preserving within-trace order —
// the offline-analysis helper behind the harness waterfall tables. The
// returned IDs are in first-appearance order.
func GroupSpansByTrace(spans []Span) (ids []string, byTrace map[string][]Span) {
	byTrace = make(map[string][]Span)
	for _, sp := range spans {
		if _, ok := byTrace[sp.TraceID]; !ok {
			ids = append(ids, sp.TraceID)
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	return ids, byTrace
}

// SortSpans orders spans by start time (ties: longer first, then by name) —
// waterfall display order.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		switch {
		case spans[i].StartMs < spans[j].StartMs:
			return true
		case spans[i].StartMs > spans[j].StartMs:
			return false
		case spans[i].EndMs > spans[j].EndMs:
			return true
		case spans[i].EndMs < spans[j].EndMs:
			return false
		}
		return spans[i].Name < spans[j].Name
	})
}
