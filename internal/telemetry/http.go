package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
)

// MaxDebugN is the hard ceiling on the ?n= result-count parameter accepted
// by every /debug/ JSON handler (decisions, traces, timeline, slo). Debug
// endpoints are scraped during soaks while the server is saturated; an
// unbounded body on a large ring would stall the very listener under test.
const MaxDebugN = 10000

// ClampDebugN parses a ?n= query value with the shared /debug/ semantics:
// missing → def, invalid or negative → error (the handler answers 400),
// 0 (historically "everything retained") and anything above MaxDebugN →
// MaxDebugN. The default is clamped too, so no handler can be configured
// past the ceiling.
func ClampDebugN(s string, def int) (int, error) {
	n := def
	if s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("bad n parameter %q", s)
		}
		n = v
	}
	if n <= 0 || n > MaxDebugN {
		n = MaxDebugN
	}
	return n, nil
}

// MetricsHandler serves the registry in the Prometheus text exposition
// format — mount it at /metrics.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// tracesPayload is the JSON body served by TracesHandler.
type tracesPayload struct {
	TotalSpans uint64      `json:"total_spans"`
	Traces     []TraceView `json:"traces"`
}

// TracesHandler serves the most recent stitched traces of a span tracer as
// JSON — mount it at /debug/traces. The ?n= query parameter bounds the trace
// count (default defaultN; n=0 returns every retained trace).
func TracesHandler(t *SpanTracer, defaultN int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, err := ClampDebugN(r.URL.Query().Get("n"), defaultN)
		if err != nil {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		payload := tracesPayload{Traces: []TraceView{}}
		if t != nil {
			payload.TotalSpans = t.Total()
			if views := t.Traces(n); views != nil {
				payload.Traces = views
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}

// decisionsPayload is the JSON body served by DecisionsHandler.
type decisionsPayload struct {
	Total     uint64          `json:"total"`
	Decisions []Decision      `json:"decisions"`
	Quality   QualitySnapshot `json:"prediction_quality"`
}

// DecisionsHandler serves the most recent decisions of a tracer as JSON —
// mount it at /debug/decisions. The ?n= query parameter bounds the count
// (default defaultN; n=0 returns everything retained).
func DecisionsHandler(t *Tracer, defaultN int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n, err := ClampDebugN(r.URL.Query().Get("n"), defaultN)
		if err != nil {
			http.Error(w, "bad n parameter", http.StatusBadRequest)
			return
		}
		payload := decisionsPayload{Decisions: []Decision{}}
		if t != nil {
			payload.Total = t.Ring().Total()
			payload.Decisions = t.Ring().Snapshot(n)
			payload.Quality = t.Quality()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}
