package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// MetricsHandler serves the registry in the Prometheus text exposition
// format — mount it at /metrics.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// tracesPayload is the JSON body served by TracesHandler.
type tracesPayload struct {
	TotalSpans uint64      `json:"total_spans"`
	Traces     []TraceView `json:"traces"`
}

// TracesHandler serves the most recent stitched traces of a span tracer as
// JSON — mount it at /debug/traces. The ?n= query parameter bounds the trace
// count (default defaultN; n=0 returns every retained trace).
func TracesHandler(t *SpanTracer, defaultN int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := defaultN
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n parameter", http.StatusBadRequest)
				return
			}
			n = v
		}
		payload := tracesPayload{Traces: []TraceView{}}
		if t != nil {
			payload.TotalSpans = t.Total()
			if views := t.Traces(n); views != nil {
				payload.Traces = views
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}

// decisionsPayload is the JSON body served by DecisionsHandler.
type decisionsPayload struct {
	Total     uint64          `json:"total"`
	Decisions []Decision      `json:"decisions"`
	Quality   QualitySnapshot `json:"prediction_quality"`
}

// DecisionsHandler serves the most recent decisions of a tracer as JSON —
// mount it at /debug/decisions. The ?n= query parameter bounds the count
// (default defaultN; n=0 returns everything retained).
func DecisionsHandler(t *Tracer, defaultN int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := defaultN
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n parameter", http.StatusBadRequest)
				return
			}
			n = v
		}
		payload := decisionsPayload{Decisions: []Decision{}}
		if t != nil {
			payload.Total = t.Ring().Total()
			payload.Decisions = t.Ring().Snapshot(n)
			payload.Quality = t.Quality()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(payload)
	})
}
