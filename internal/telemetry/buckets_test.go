package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// The default latency buckets must resolve sub-millisecond phases (queue
// waits and initial-frequency steps sit well under 1 ms at low load).
func TestDefaultLatencyBucketsSubMillisecond(t *testing.T) {
	subMs := 0
	for _, b := range DefaultLatencyBuckets {
		if b < 1 {
			subMs++
		}
	}
	if subMs < 3 {
		t.Fatalf("only %d sub-ms default buckets: %v", subMs, DefaultLatencyBuckets)
	}
	reg := NewRegistry()
	h := reg.Histogram("lat_ms", "latency", nil)
	h.Observe(0.07)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `le="0.1"} 1`) {
		t.Errorf("0.07 ms observation not resolved by a sub-ms bucket:\n%s", buf.String())
	}
}

// NewRegistryBuckets makes the nil-bounds default configurable per registry;
// explicit bounds still win, and the given bounds are copied and sorted.
func TestNewRegistryBuckets(t *testing.T) {
	bounds := []float64{10, 1, 5} // deliberately unsorted
	reg := NewRegistryBuckets(bounds)
	bounds[0] = 99 // the registry must have copied, not aliased

	h := reg.Histogram("h", "h", nil)
	for _, v := range []float64{0.5, 3, 7, 50} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_bucket{le="1"} 1`,
		`h_bucket{le="5"} 2`,
		`h_bucket{le="10"} 3`,
		`h_bucket{le="+Inf"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="99"`) {
		t.Error("registry aliased the caller's bounds slice")
	}

	// Explicit bounds override the registry default.
	e := reg.Histogram("explicit", "e", []float64{2})
	e.Observe(1)
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `explicit_bucket{le="2"} 1`) {
		t.Errorf("explicit bounds ignored:\n%s", buf.String())
	}

	// Nil/empty falls back to DefaultLatencyBuckets.
	if def := NewRegistryBuckets(nil); len(def.defBuckets) != len(DefaultLatencyBuckets) {
		t.Errorf("nil bounds: defBuckets = %v", def.defBuckets)
	}
}
