package telemetry

import "strconv"

// Cluster-topology metric families: per-replica routing counters, power-cap
// throttle totals, the coordinator's modeled cluster power, and the query
// (straggler) latency distribution. The topology runner publishes them once
// per run, after its deterministic merge, so scraping them never perturbs a
// simulation; the CI smoke job greps these exact family names from the
// geminisim -shards exposition.
const (
	ClusterRouteTotalName     = "gemini_cluster_route_total"
	ClusterCapThrottleName    = "gemini_cluster_cap_throttle_total"
	ClusterModeledPowerWName  = "gemini_cluster_modeled_power_watts"
	ClusterQueryLatencyMsName = "gemini_cluster_query_latency_ms"
)

// ClusterMetrics bundles the cluster-topology families registered on one
// Registry. Route counters are created lazily per (shard, replica) so a
// 100×4 topology does not register 400 children before any query routes.
type ClusterMetrics struct {
	reg       *Registry
	routes    map[[2]int]*Counter
	throttles *Counter
	modeledW  *Gauge
	queryLat  *Histogram
}

// NewClusterMetrics registers the cluster families on reg.
func NewClusterMetrics(reg *Registry) *ClusterMetrics {
	return &ClusterMetrics{
		reg:    reg,
		routes: make(map[[2]int]*Counter),
		throttles: reg.Counter(ClusterCapThrottleName,
			"power-cap coordinator ceiling step-downs applied"),
		modeledW: reg.Gauge(ClusterModeledPowerWName,
			"modeled cluster power at the last control boundary (CMOS model, watts)"),
		queryLat: reg.Histogram(ClusterQueryLatencyMsName,
			"query straggler latency (slowest shard finish - arrival, ms)", nil),
	}
}

// AddRoutes adds n routed shard requests to the (shard, replica) counter.
func (m *ClusterMetrics) AddRoutes(shard, replica int, n uint64) {
	key := [2]int{shard, replica}
	c := m.routes[key]
	if c == nil {
		c = m.reg.Counter(ClusterRouteTotalName,
			"shard requests routed to each replica core",
			L("shard", strconv.Itoa(shard)), L("replica", strconv.Itoa(replica)))
		m.routes[key] = c
	}
	c.Add(n)
}

// AddCapThrottles adds n coordinator ceiling step-downs.
func (m *ClusterMetrics) AddCapThrottles(n uint64) { m.throttles.Add(n) }

// SetModeledPowerW records the modeled cluster wattage.
func (m *ClusterMetrics) SetModeledPowerW(w float64) { m.modeledW.Set(w) }

// ObserveQueryLatency records one query's straggler latency.
func (m *ClusterMetrics) ObserveQueryLatency(ms float64) { m.queryLat.Observe(ms) }
