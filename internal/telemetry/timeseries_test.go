package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func sampleRow(k int) TimeseriesRow {
	return TimeseriesRow{
		TimeMs:      float64(k+1) * 100,
		PowerW:      5 + float64(k),
		QueueDepth:  float64(k % 3),
		InFlight:    1,
		Arrivals:    uint64(k + 2),
		Completions: uint64(k + 1),
		Residency:   []float64{0.25, 0.75},
		P99Ms:       float64(10 + k),
	}
}

func TestTimeseriesRingEviction(t *testing.T) {
	ts := NewTimeseries(100, []float64{1.2, 2.7}, 3)
	for k := 0; k < 5; k++ {
		ts.Append(sampleRow(k))
	}
	if ts.Len() != 3 || ts.Total() != 5 {
		t.Fatalf("Len=%d Total=%d, want 3 and 5", ts.Len(), ts.Total())
	}
	rows := ts.Rows()
	for i, want := range []float64{300, 400, 500} {
		if rows[i].TimeMs != want {
			t.Fatalf("row %d TimeMs = %v, want %v (oldest-first after eviction)", i, rows[i].TimeMs, want)
		}
	}
	if got := ts.Snapshot(2); len(got) != 2 || got[0].TimeMs != 400 {
		t.Fatalf("Snapshot(2) = %+v, want the 2 most recent oldest-first", got)
	}
}

func TestTimeseriesAppendCopiesResidency(t *testing.T) {
	ts := NewTimeseries(100, []float64{1.2, 2.7}, 4)
	resid := []float64{0.5, 0.5}
	ts.Append(TimeseriesRow{TimeMs: 100, Residency: resid})
	resid[0] = 99 // caller reuses its buffer; the stored row must not alias it
	if got := ts.Rows()[0].Residency[0]; got != 0.5 {
		t.Fatalf("stored residency %v follows caller mutation, want 0.5", got)
	}
}

func TestTimeseriesAppendNoAllocs(t *testing.T) {
	ts := NewTimeseries(100, []float64{1.2, 2.7}, 8)
	row := sampleRow(0)
	allocs := testing.AllocsPerRun(100, func() { ts.Append(row) })
	if allocs > 0 {
		t.Fatalf("Append allocates %.1f per call; the ring is preallocated", allocs)
	}
}

func TestTimeseriesNilSafe(t *testing.T) {
	var ts *Timeseries
	if ts.Len() != 0 || ts.Total() != 0 || ts.Rows() != nil || ts.StartRun(100) != nil {
		t.Fatal("nil Timeseries methods must be inert")
	}
	ts.Append(sampleRow(0))
	if ts.Len() != 0 {
		t.Fatal("Append on nil Timeseries must be a no-op")
	}
}

func TestSampleCount(t *testing.T) {
	cases := []struct {
		dur, iv float64
		want    int
	}{
		{1000, 100, 10},
		{1050, 100, 11}, // partial final window
		{100, 100, 1},
		{50, 100, 1}, // shorter than one interval: single clamped window
		{0, 100, 0},  // invalid inputs produce no windows
		{1000, 0, 0},
	}
	for _, c := range cases {
		if got := SampleCount(c.dur, c.iv); got != c.want {
			t.Errorf("SampleCount(%v, %v) = %d, want %d", c.dur, c.iv, got, c.want)
		}
	}
}

func TestTimeseriesJSONLAndCSV(t *testing.T) {
	ts := NewTimeseries(100, []float64{1.2, 2.7}, 4)
	ts.Append(sampleRow(0))
	ts.Append(sampleRow(1))

	var jl bytes.Buffer
	if err := ts.WriteJSONL(&jl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jl.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("JSONL has %d lines, want 2", len(lines))
	}
	var row TimeseriesRow
	if err := json.Unmarshal([]byte(lines[0]), &row); err != nil {
		t.Fatalf("JSONL line does not round-trip: %v", err)
	}
	if row.TimeMs != 100 || row.Arrivals != 2 || len(row.Residency) != 2 {
		t.Fatalf("round-tripped row = %+v", row)
	}

	var csv bytes.Buffer
	if err := ts.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	out := csv.String()
	header := strings.SplitN(out, "\n", 2)[0]
	if !strings.HasPrefix(header, "time_ms,power_watts,") || !strings.Contains(header, "resid_1.2") || !strings.Contains(header, "resid_2.7") {
		t.Fatalf("CSV header = %q", header)
	}
	if got := strings.Count(out, "\n"); got != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 rows", got)
	}
}

func TestTimelineHandler(t *testing.T) {
	ts := NewTimeseries(100, []float64{2.7}, 4)
	for k := 0; k < 3; k++ {
		ts.Append(sampleRow(k))
	}
	h := TimelineHandler(ts, 2)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var payload struct {
		IntervalMs float64         `json:"interval_ms"`
		FreqsGHz   []float64       `json:"freqs_ghz"`
		Total      uint64          `json:"total"`
		Samples    []TimeseriesRow `json:"samples"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.IntervalMs != 100 || payload.Total != 3 || len(payload.Samples) != 2 {
		t.Fatalf("payload = %+v (default n must cap samples at 2)", payload)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline?n=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatal(err)
	}
	if len(payload.Samples) != 1 || payload.Samples[0].TimeMs != 300 {
		t.Fatalf("?n=1 returned %+v, want just the newest row", payload.Samples)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline?n=bogus", nil))
	if rec.Code != 400 {
		t.Fatalf("bad n: status %d, want 400", rec.Code)
	}
}

// TestWritePrometheusSortedChildren pins the exposition-order contract:
// children within a family render in sorted label-set order regardless of
// registration (first-touch) order, so two registries that reached the same
// state along different paths expose byte-identical text.
func TestWritePrometheusSortedChildren(t *testing.T) {
	build := func(order []int) string {
		reg := NewRegistry()
		for _, shard := range order {
			reg.Counter("test_route_total", "routes", L("shard", string(rune('0'+shard)))).Add(uint64(shard))
		}
		var sb strings.Builder
		if err := reg.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a := build([]int{0, 1, 2})
	b := build([]int{2, 0, 1})
	if a != b {
		t.Fatalf("exposition depends on registration order:\n%s\nvs\n%s", a, b)
	}
	first := strings.Index(a, `shard="0"`)
	last := strings.Index(a, `shard="2"`)
	if first < 0 || last < 0 || first > last {
		t.Fatalf("children not in sorted label order:\n%s", a)
	}
}
