package harness

import (
	"sync/atomic"
	"testing"
)

func TestGridRunCoversAllJobs(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 100} {
		n := 17
		var done [17]atomic.Int32
		gridRun(workers, n, func(i int) { done[i].Add(1) })
		for i := range done {
			if got := done[i].Load(); got != 1 {
				t.Errorf("workers=%d: job %d ran %d times", workers, i, got)
			}
		}
	}
	gridRun(4, 0, func(int) { t.Error("job ran for n=0") })
}

// TestParallelSweepMatchesSerial is the engine's core guarantee: the worker
// count must not change a single byte of any report. fig10 exercises the
// (rps, policy) sweep grid, fig12 the (trace, policy) grid.
func TestParallelSweepMatchesSerial(t *testing.T) {
	p := plat(t)
	for _, name := range []string{"fig10", "fig12"} {
		serial := NewExperimentSet(p, 0.02)
		parallel := NewExperimentSet(p, 0.02)
		parallel.Workers = 4

		want, err := serial.Run(name)
		if err != nil {
			t.Fatalf("%s serial: %v", name, err)
		}
		got, err := parallel.Run(name)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if got.String() != want.String() {
			t.Errorf("%s: parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, want.String(), got.String())
		}
	}
}

// TestParallelAblationsMatchSerial pins the variant-cell runner: ablation and
// extension grids must be identical for any worker count, including the
// budget sweep's hidden per-budget baselines and the cache extension's
// workload rewriting.
func TestParallelAblationsMatchSerial(t *testing.T) {
	p := plat(t)
	type runner func(workers int) *Report
	cases := map[string]runner{
		"boost": func(w int) *Report {
			r, _ := p.AblationBoostWorkers(80, 6_000, w)
			return r
		},
		"budget": func(w int) *Report {
			r, _ := p.AblationBudgetWorkers(80, 6_000, w)
			return r
		},
		"governors": func(w int) *Report {
			r, _ := p.ExtensionGovernorsWorkers(80, 6_000, w)
			return r
		},
		"cache": func(w int) *Report {
			r, _ := p.ExtensionCacheWorkers(80, 6_000, 64, w)
			return r
		},
		"aggregate": func(w int) *Report {
			r, _ := p.ExtensionAggregateWorkers(3, 40, 6_000, w)
			return r
		},
	}
	for name, run := range cases {
		want := run(1).String()
		if got := run(4).String(); got != want {
			t.Errorf("%s: parallel report differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				name, want, got)
		}
	}
}
