package harness

import (
	"fmt"
	"io"

	"gemini/internal/sim"
	"gemini/internal/telemetry"
	"gemini/internal/trace"
)

// LogDecisions runs one (policy, trace) simulation cell — the same cell
// geometry as the Fig. 12–14 grid — with a decision tracer attached,
// streaming every per-request telemetry.Decision to w as one JSON line each.
// It returns the run's Result and the tracer (whose Quality() snapshot
// summarizes the predictors' live accuracy over the run).
func (p *Platform) LogDecisions(w io.Writer, policyName, traceName string, avgRPS, durationMs float64) (*sim.Result, *telemetry.Tracer, error) {
	pol, err := p.NewPolicy(policyName)
	if err != nil {
		return nil, nil, err
	}
	tr := trace.GenEvalTrace(traceName, avgRPS*p.Opt.ShardFraction, durationMs, p.Opt.Seed+40)
	wl := p.Workload(tr.Arrivals, durationMs, p.Opt.Seed+50)

	cfg := p.SimConfig()
	tracer := telemetry.NewTracer(4096)
	tracer.SetSink(w)
	cfg.Tracer = tracer

	res := sim.Run(cfg, wl, pol)
	if err := tracer.SinkErr(); err != nil {
		return res, tracer, fmt.Errorf("harness: decision log write: %w", err)
	}
	return res, tracer, nil
}
