package harness

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"gemini/internal/sim"
	"gemini/internal/telemetry"
	"gemini/internal/trace"
)

// TimelineSpec parameterizes the time-series view of one shards × replicas
// topology cell. The zero value is the canonical drift/overload cell: the
// 8 × 3 power-aware topology under the 40 W cluster cap (the cap-throttle
// experiment from the capacity-planning PR) sampled every 100 ms — the run
// whose timeline shows the coordinator stepping ceilings down as offered
// load drifts the queues upward.
type TimelineSpec struct {
	Shards, Replicas      int
	Router, Policy        string  // "" = power-aware / Gemini
	CapW, CapIntervalMs   float64 // CapW 0 with Shards 0 defaults to 40 W; explicit topologies keep 0 = uncapped
	EngineRPS, DurationMs float64
	SampleIntervalMs      float64 // 0 = 100 ms
	Seed                  int64
}

// TimelineResult bundles one timeline run: the drift/overload report table,
// the merged cluster series (for JSONL/CSV/HTML export), and the topology
// result the series must stay consistent with.
type TimelineResult struct {
	Report *Report
	Series *telemetry.Timeseries
	Res    *sim.TopologyResult
	Spec   TimelineSpec // spec after defaulting
	// BudgetMs is the workload's latency budget — the SLO deadline the
	// series' slo_violations column was classified against.
	BudgetMs float64
}

// TimelineReport runs one topology cell with the fixed-interval sampler
// attached and folds the merged cluster series into a drift/overload table:
// coarse time buckets annotated with whether the power cap throttled and
// whether the queues drifted (arrivals outpacing completions). The series is
// merged deterministically in core order, so the table and every export are
// byte-identical for any worker count.
func (p *Platform) TimelineReport(spec TimelineSpec, workers int) (*TimelineResult, error) {
	if spec.Shards < 1 {
		// Canonical drift cell: 8 × 3 power-aware under the 40 W cap.
		spec.Shards, spec.Replicas = 8, 3
		if spec.CapW <= 0 {
			spec.CapW = 40
		}
	}
	if spec.Replicas < 1 {
		spec.Replicas = 1
	}
	if spec.Router == "" {
		spec.Router = "power-aware"
	}
	if spec.Policy == "" {
		spec.Policy = "Gemini"
	}
	if spec.EngineRPS <= 0 {
		spec.EngineRPS = 60
	}
	if spec.DurationMs <= 0 {
		spec.DurationMs = 3000
	}
	if spec.SampleIntervalMs <= 0 {
		spec.SampleIntervalMs = 100
	}
	router, err := sim.RouterByName(spec.Router)
	if err != nil {
		return nil, err
	}

	isnRPS := spec.EngineRPS * p.Opt.ShardFraction * float64(spec.Replicas)
	tr := trace.GenFixedRPS(isnRPS, spec.DurationMs, 1)
	wl := p.Workload(tr.Arrivals, spec.DurationMs, 2)

	cfg := p.SimConfig()
	cfg.Series = sim.NewRunTimeseries(cfg.Ladder, spec.DurationMs, spec.SampleIntervalMs)
	tc := sim.TopologyConfig{
		Sim:           cfg,
		Topology:      sim.Topology{Shards: spec.Shards, ReplicasPerShard: spec.Replicas},
		Router:        router,
		Seed:          spec.Seed,
		PowerCapW:     spec.CapW,
		CapIntervalMs: spec.CapIntervalMs,
	}
	res := sim.RunTopologyWorkers(tc, wl, workers, func(int) sim.Policy {
		return p.MustPolicy(spec.Policy)
	})

	rep := timelineTable(cfg.Series, spec, res)
	return &TimelineResult{Report: rep, Series: cfg.Series, Res: res, Spec: spec, BudgetMs: wl.BudgetMs}, nil
}

// timelineDisplayBuckets caps the drift/overload table length: longer runs
// are folded into at most this many coarse rows.
const timelineDisplayBuckets = 24

// timelineTable folds the sampled rows into the drift/overload view.
func timelineTable(ts *telemetry.Timeseries, spec TimelineSpec, res *sim.TopologyResult) *Report {
	rows := ts.Rows()
	rep := &Report{
		Title: "Cluster timeline (drift / overload view)",
		Header: []string{"t0 ms", "t1 ms", "avg W", "cap W", "thr",
			"arrivals", "completions", "queue", "p99 ms", "state"},
	}
	capCell := "-"
	if spec.CapW > 0 {
		capCell = f1(spec.CapW)
	}
	rep.Note("topology %d×%d, router=%s, policy=%s, cap=%s W, sample interval %.0f ms",
		spec.Shards, spec.Replicas, spec.Router, spec.Policy, capCell, spec.SampleIntervalMs)
	rep.Note("state: throttled = cap ceiling step-downs in the bucket; drift = arrivals outpaced completions with the queue deeper at the bucket's end")
	if len(rows) == 0 {
		return rep
	}
	stride := (len(rows) + timelineDisplayBuckets - 1) / timelineDisplayBuckets
	for lo := 0; lo < len(rows); lo += stride {
		hi := lo + stride
		if hi > len(rows) {
			hi = len(rows)
		}
		t0 := 0.0
		if lo > 0 {
			t0 = rows[lo-1].TimeMs
		}
		var arr, comp, drops, thr uint64
		var wSum, p99 float64
		for _, r := range rows[lo:hi] {
			arr += r.Arrivals
			comp += r.Completions
			drops += r.Drops
			thr += r.CapThrottles
			wSum += r.PowerW
			if r.P99Ms > p99 {
				p99 = r.P99Ms
			}
		}
		last := rows[hi-1]
		var states []string
		if thr > 0 {
			states = append(states, "throttled")
		}
		if arr > comp+drops && last.QueueDepth > rows[lo].QueueDepth {
			states = append(states, "drift")
		}
		state := "ok"
		if len(states) > 0 {
			state = strings.Join(states, "+")
		}
		rep.AddRow(
			f1(t0),
			f1(last.TimeMs),
			f2(wSum/float64(hi-lo)),
			f2(last.CapModeledW),
			fmt.Sprintf("%d", thr),
			fmt.Sprintf("%d", arr),
			fmt.Sprintf("%d", comp),
			f1(last.QueueDepth),
			f2(p99),
			state)
	}
	avgW := 0.0
	for _, r := range rows {
		avgW += r.PowerW
	}
	avgW /= float64(len(rows))
	rep.Note("run totals: %d queries, %d throttles, avg %.2f W sampled, p99 %.2f ms",
		res.Queries, res.CapThrottles, avgW, res.TailLatencyMs(99))
	return rep
}

// WriteTimelineHTML renders a self-contained HTML dashboard for one sampled
// series: inline-SVG charts (no scripts, no external assets) for modeled
// power against the cap ceiling, windowed latency percentiles, queue depth
// and in-flight work, arrival/completion throughput with throttle markers,
// and the frequency-residency mix. The output is a deterministic function of
// the series, so dashboards diff cleanly across runs.
func WriteTimelineHTML(w io.Writer, title string, ts *telemetry.Timeseries) error {
	rows := ts.Rows()
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n")
	b.WriteString("<title>" + htmlEscape(title) + "</title>\n<style>\n")
	b.WriteString(`body{font:14px/1.4 system-ui,sans-serif;margin:24px;background:#fafafa;color:#222}
h1{font-size:20px}h2{font-size:15px;margin:18px 0 4px}
svg{background:#fff;border:1px solid #ddd}
.legend span{display:inline-block;margin-right:14px;font-size:12px}
.legend i{display:inline-block;width:10px;height:10px;margin-right:4px;border-radius:2px}
`)
	b.WriteString("</style></head><body>\n")
	fmt.Fprintf(&b, "<h1>%s</h1>\n<p>%d samples, %s ms interval, %d ladder steps.</p>\n",
		htmlEscape(title), len(rows), trimFloat(ts.IntervalMs()), ts.LevelCount())
	if len(rows) == 0 {
		b.WriteString("<p>No samples recorded.</p>\n</body></html>\n")
		_, err := io.WriteString(w, b.String())
		return err
	}

	times := make([]float64, len(rows))
	for i, r := range rows {
		times[i] = r.TimeMs
	}
	col := func(f func(telemetry.TimeseriesRow) float64) []float64 {
		v := make([]float64, len(rows))
		for i, r := range rows {
			v[i] = f(r)
		}
		return v
	}
	perSec := func(f func(telemetry.TimeseriesRow) float64) []float64 {
		v := make([]float64, len(rows))
		prev := 0.0
		for i, r := range rows {
			if dt := r.TimeMs - prev; dt > 0 {
				v[i] = f(r) * 1000 / dt
			}
			prev = r.TimeMs
		}
		return v
	}

	writeChart(&b, "Modeled cluster power (W)", times, []chartSeries{
		{Name: "power", Color: "#c0392b", Values: col(func(r telemetry.TimeseriesRow) float64 { return r.PowerW })},
		{Name: "cap ceiling", Color: "#7f8c8d", Dashed: true, Values: col(func(r telemetry.TimeseriesRow) float64 { return r.CapModeledW })},
	})
	writeChart(&b, "Windowed latency (ms)", times, []chartSeries{
		{Name: "p99", Color: "#8e44ad", Values: col(func(r telemetry.TimeseriesRow) float64 { return r.P99Ms })},
		{Name: "p95", Color: "#2980b9", Values: col(func(r telemetry.TimeseriesRow) float64 { return r.P95Ms })},
		{Name: "p50", Color: "#27ae60", Values: col(func(r telemetry.TimeseriesRow) float64 { return r.P50Ms })},
	})
	writeChart(&b, "Queue depth / in-flight", times, []chartSeries{
		{Name: "queue depth", Color: "#d35400", Values: col(func(r telemetry.TimeseriesRow) float64 { return r.QueueDepth })},
		{Name: "in-flight", Color: "#16a085", Values: col(func(r telemetry.TimeseriesRow) float64 { return r.InFlight })},
	})
	writeChart(&b, "Throughput (req/s) and cap throttles", times, []chartSeries{
		{Name: "arrivals/s", Color: "#2c3e50", Values: perSec(func(r telemetry.TimeseriesRow) float64 { return float64(r.Arrivals) })},
		{Name: "completions/s", Color: "#27ae60", Values: perSec(func(r telemetry.TimeseriesRow) float64 { return float64(r.Completions) })},
		{Name: "throttles/s", Color: "#c0392b", Dashed: true, Values: perSec(func(r telemetry.TimeseriesRow) float64 { return float64(r.CapThrottles) })},
	})
	writeResidency(&b, ts, rows, times)

	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// chartSeries is one polyline on a timeline chart.
type chartSeries struct {
	Name   string
	Color  string
	Dashed bool
	Values []float64
}

const (
	chartW, chartH       = 860.0, 180.0
	chartPadL, chartPadR = 56.0, 12.0
	chartPadT, chartPadB = 10.0, 22.0
)

// residencyPalette colors the ladder steps, coolest (lowest GHz) first.
var residencyPalette = []string{
	"#2c7fb8", "#41b6c4", "#a1dab4", "#fecc5c",
	"#fd8d3c", "#f03b20", "#bd0026", "#54278f",
}

// writeChart emits one <svg> line chart: shared x axis (time), y axis sized
// to the maximum across all series, gridlines at quarter steps.
func writeChart(b *strings.Builder, title string, times []float64, series []chartSeries) {
	b.WriteString("<h2>" + htmlEscape(title) + "</h2>\n<div class=\"legend\">")
	for _, s := range series {
		style := "background:" + s.Color
		if s.Dashed {
			style += ";opacity:.55"
		}
		fmt.Fprintf(b, "<span><i style=%q></i>%s</span>", style, htmlEscape(s.Name))
	}
	b.WriteString("</div>\n")

	maxY := 0.0
	for _, s := range series {
		for _, v := range s.Values {
			if v > maxY {
				maxY = v
			}
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxX := times[len(times)-1]
	if maxX <= 0 {
		maxX = 1
	}
	plotW := chartW - chartPadL - chartPadR
	plotH := chartH - chartPadT - chartPadB
	x := func(t float64) float64 { return chartPadL + t/maxX*plotW }
	y := func(v float64) float64 { return chartPadT + (1-v/maxY)*plotH }

	fmt.Fprintf(b, "<svg width=\"%s\" height=\"%s\" viewBox=\"0 0 %s %s\">\n",
		trimFloat(chartW), trimFloat(chartH), trimFloat(chartW), trimFloat(chartH))
	for i := 0; i <= 4; i++ {
		v := maxY * float64(i) / 4
		gy := y(v)
		fmt.Fprintf(b, "<line x1=\"%s\" y1=\"%s\" x2=\"%s\" y2=\"%s\" stroke=\"#eee\"/>\n",
			trimFloat(chartPadL), trimFloat(gy), trimFloat(chartW-chartPadR), trimFloat(gy))
		fmt.Fprintf(b, "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#888\" text-anchor=\"end\">%s</text>\n",
			trimFloat(chartPadL-4), trimFloat(gy+3), trimFloat(round2(v)))
	}
	fmt.Fprintf(b, "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#888\">0 ms</text>\n",
		trimFloat(chartPadL), trimFloat(chartH-6))
	fmt.Fprintf(b, "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#888\" text-anchor=\"end\">%s ms</text>\n",
		trimFloat(chartW-chartPadR), trimFloat(chartH-6), trimFloat(round2(maxX)))
	for _, s := range series {
		dash := ""
		if s.Dashed {
			dash = " stroke-dasharray=\"5 3\""
		}
		b.WriteString("<polyline fill=\"none\" stroke=\"" + s.Color + "\" stroke-width=\"1.5\"" + dash + " points=\"")
		for i, v := range s.Values {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(trimFloat(round2(x(times[i]))) + "," + trimFloat(round2(y(v))))
		}
		b.WriteString("\"/>\n")
	}
	b.WriteString("</svg>\n")
}

// writeResidency emits the frequency-residency mix as a stacked area chart:
// cumulative fractions per ladder step, lowest step at the bottom.
func writeResidency(b *strings.Builder, ts *telemetry.Timeseries, rows []telemetry.TimeseriesRow, times []float64) {
	levels := ts.FreqsGHz()
	if len(levels) == 0 {
		return
	}
	color := func(i int) string { return residencyPalette[i%len(residencyPalette)] }

	b.WriteString("<h2>Frequency residency (fraction of window per ladder step)</h2>\n<div class=\"legend\">")
	for i, f := range levels {
		fmt.Fprintf(b, "<span><i style=\"background:%s\"></i>%s GHz</span>", color(i), trimFloat(f))
	}
	b.WriteString("</div>\n")

	plotW := chartW - chartPadL - chartPadR
	plotH := chartH - chartPadT - chartPadB
	maxX := times[len(times)-1]
	if maxX <= 0 {
		maxX = 1
	}
	x := func(t float64) float64 { return chartPadL + t/maxX*plotW }
	y := func(v float64) float64 { return chartPadT + (1-v)*plotH }

	// cum[i][k] = summed fraction of levels [0, i) in window k.
	cum := make([][]float64, len(levels)+1)
	cum[0] = make([]float64, len(rows))
	for i := range levels {
		cum[i+1] = make([]float64, len(rows))
		for k, r := range rows {
			v := 0.0
			if i < len(r.Residency) {
				v = r.Residency[i]
			}
			cum[i+1][k] = cum[i][k] + v
		}
	}

	fmt.Fprintf(b, "<svg width=\"%s\" height=\"%s\" viewBox=\"0 0 %s %s\">\n",
		trimFloat(chartW), trimFloat(chartH), trimFloat(chartW), trimFloat(chartH))
	for i := range levels {
		b.WriteString("<polygon fill=\"" + color(i) + "\" fill-opacity=\"0.85\" stroke=\"none\" points=\"")
		for k := range rows {
			if k > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(trimFloat(round2(x(times[k]))) + "," + trimFloat(round2(y(cum[i+1][k]))))
		}
		for k := len(rows) - 1; k >= 0; k-- {
			b.WriteByte(' ')
			b.WriteString(trimFloat(round2(x(times[k]))) + "," + trimFloat(round2(y(cum[i][k]))))
		}
		b.WriteString("\"/>\n")
	}
	fmt.Fprintf(b, "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#888\">0 ms</text>\n",
		trimFloat(chartPadL), trimFloat(chartH-6))
	fmt.Fprintf(b, "<text x=\"%s\" y=\"%s\" font-size=\"10\" fill=\"#888\" text-anchor=\"end\">%s ms</text>\n",
		trimFloat(chartW-chartPadR), trimFloat(chartH-6), trimFloat(round2(maxX)))
	b.WriteString("</svg>\n")
}

// round2 rounds to two decimals — enough SVG precision, and it keeps the
// output stable and compact.
func round2(v float64) float64 {
	if v < 0 {
		return -round2(-v)
	}
	return float64(int64(v*100+0.5)) / 100
}

// trimFloat formats a float without trailing zeros.
func trimFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// htmlEscape escapes the handful of characters that matter in text nodes and
// double-quoted attributes.
func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
