package harness

import (
	"fmt"

	"gemini/internal/stats"
)

// SweepCell is one (policy, RPS) measurement of the Fig. 10/11 sweep.
type SweepCell struct {
	Policy       string
	RPS          float64
	SocketPowerW float64
	SavingFrac   float64 // vs baseline at the same RPS
	TailMs       float64 // 95th percentile latency
	ViolationPct float64
	DropPct      float64
}

// SweepData carries the full Fig. 10/11 grid.
type SweepData struct {
	RPS   []float64
	Cells map[string][]SweepCell // policy -> per-RPS cells
}

// Cell returns the measurement for (policy, rps index).
func (d *SweepData) Cell(policy string, i int) SweepCell { return d.Cells[policy][i] }

// RPSSweep runs the Fig. 10/11 experiment: each policy at fixed request
// rates for durationMs of simulated time (the paper holds each RPS for 120 s
// on the Wikipedia query mix with a 40 ms budget). This is the serial
// reference path; RPSSweepWorkers fans the same grid across a worker pool
// and returns identical data.
func (p *Platform) RPSSweep(rpsList []float64, durationMs float64) *SweepData {
	return p.RPSSweepWorkers(rpsList, durationMs, 1)
}

// Fig10 renders the power and power-saving panels of Fig. 10.
func (p *Platform) Fig10(data *SweepData) *Report {
	r := &Report{
		Title:  "Fig. 10 — CPU power vs RPS (socket W; saving vs baseline)",
		Header: []string{"RPS"},
	}
	for _, name := range PolicyNames {
		r.Header = append(r.Header, name+" (W)", name+" save")
	}
	for i, rps := range data.RPS {
		row := []string{f1(rps)}
		for _, name := range PolicyNames {
			c := data.Cell(name, i)
			row = append(row, f1(c.SocketPowerW), pct(c.SavingFrac))
		}
		r.AddRow(row...)
	}
	last := len(data.RPS) - 1
	r.Note("at %.0f RPS — paper: Pegasus 9.2%%, Rubik 16.8%%, Gemini-a 32.7%%, Gemini 37.9%%", data.RPS[last])
	return r
}

// Fig11 renders the tail-latency panel of Fig. 11 from the same sweep.
func (p *Platform) Fig11(data *SweepData) *Report {
	r := &Report{
		Title:  "Fig. 11 — 95th-percentile tail latency vs RPS (budget 40 ms)",
		Header: []string{"RPS"},
	}
	for _, name := range PolicyNames {
		r.Header = append(r.Header, name+" (ms)")
	}
	for i, rps := range data.RPS {
		row := []string{f1(rps)}
		for _, name := range PolicyNames {
			row = append(row, f2(data.Cell(name, i).TailMs))
		}
		r.AddRow(row...)
	}
	r.Note("paper shape: baseline far below budget; managed policies ≈40 ms; Pegasus overshoots at high RPS")
	return r
}

// TraceCell is one (trace, policy) result of the Fig. 12–14 experiments.
type TraceCell struct {
	Trace        string
	Policy       string
	SocketPowerW float64
	SavingFrac   float64
	TailMs       float64
	ViolationPct float64
	DropPct      float64
	PowerSeriesW []float64 // socket watts per bucket
	Latencies    []float64
}

// TraceData maps trace -> policy -> cell.
type TraceData struct {
	Traces   []string
	Policies []string
	Cells    map[string]map[string]*TraceCell
}

// Cell returns the (trace, policy) cell.
func (d *TraceData) Cell(tr, pol string) *TraceCell { return d.Cells[tr][pol] }

// TraceRuns drives the trace-driven experiments behind Figs. 12–14: each
// policy over each named 1000 s trace at the given mean RPS. This is the
// serial reference path; TraceRunsWorkers fans the same grid across a worker
// pool and returns identical data.
func (p *Platform) TraceRuns(traces, policies []string, avgRPS, durationMs float64) *TraceData {
	return p.TraceRunsWorkers(traces, policies, avgRPS, durationMs, 1)
}

// Fig12 renders the trace-driven power timelines and average savings.
func (p *Platform) Fig12(data *TraceData) *Report {
	r := &Report{Title: "Fig. 12 — trace-driven power (socket W, 10 s buckets) and average saving"}
	for _, trName := range data.Traces {
		base := data.Cell(trName, "Baseline")
		r.Note("[%s] baseline power range %.1f–%.1f W (paper: 29.1–38.2 W)",
			trName, seriesMin(base.PowerSeriesW), seriesMax(base.PowerSeriesW))
	}
	r.Header = []string{"Trace"}
	pols := []string{"Rubik", "Pegasus", "Gemini"}
	for _, name := range pols {
		r.Header = append(r.Header, name+" save")
	}
	for _, trName := range data.Traces {
		row := []string{trName}
		for _, name := range pols {
			row = append(row, pct(data.Cell(trName, name).SavingFrac))
		}
		r.AddRow(row...)
	}
	r.Note("paper: Rubik 23.7–27.8%%, Pegasus 20.1–24.7%%, Gemini up to 42.2%% (Lucene)")
	return r
}

// Fig13 renders the latency distribution and violation-rate panels.
func (p *Platform) Fig13(data *TraceData) *Report {
	r := &Report{Title: "Fig. 13 — latency distribution, tail and violation rate (wiki trace)"}
	cells := data.Cells["wiki"]
	r.Header = []string{"Policy", "p50 (ms)", "p95 (ms)", "p99 (ms)", "Violations", "Drops"}
	for _, name := range []string{"Baseline", "Rubik", "Pegasus", "Gemini"} {
		c := cells[name]
		p50, _ := stats.Percentile(c.Latencies, 50)
		p99, _ := stats.Percentile(c.Latencies, 99)
		r.AddRow(name, f2(p50), f2(c.TailMs), f2(p99),
			fmt.Sprintf("%.1f%%", c.ViolationPct), fmt.Sprintf("%.1f%%", c.DropPct))
	}
	r.Note("paper tails: Baseline 13.8, Rubik 37.9, Pegasus 44.2, Gemini 39.3 ms")
	r.Note("paper violation rates: Rubik 4.7%%, Pegasus 5.8%%, Gemini 2.4%%")
	// CDF knee: fraction of requests above half the budget.
	for _, name := range []string{"Baseline", "Gemini"} {
		c := cells[name]
		cdf, err := stats.NewCDF(c.Latencies)
		if err == nil {
			r.Note("%s: P(latency <= %.0f ms) = %.2f", name, p.Opt.BudgetMs/2, cdf.At(p.Opt.BudgetMs/2))
		}
	}
	return r
}

// Fig14 renders the breakdown of Gemini's power saving across its variants.
func (p *Platform) Fig14(data *TraceData) *Report {
	r := &Report{
		Title:  "Fig. 14 — breakdown: Gemini vs Gemini-a vs Gemini-95th (saving vs baseline)",
		Header: []string{"Trace", "Gemini", "Gemini-a", "Gemini-95th", "a/full", "95th/full"},
	}
	for _, trName := range data.Traces {
		full := data.Cell(trName, "Gemini").SavingFrac
		alpha := data.Cell(trName, "Gemini-a").SavingFrac
		p95 := data.Cell(trName, "Gemini-95th").SavingFrac
		r.AddRow(trName, pct(full), pct(alpha), pct(p95),
			f2(safeDiv(alpha, full)), f2(safeDiv(p95, full)))
	}
	r.Note("paper (TREC): Gemini 36.1%%; Gemini-95th ≈58%% of Gemini's saving, Gemini-a ≈86%%")
	return r
}

func seriesMin(s []float64) float64 {
	m, _ := stats.Min(s)
	return m
}

func seriesMax(s []float64) float64 {
	m, _ := stats.Max(s)
	return m
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
