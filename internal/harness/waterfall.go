// Waterfall analysis: aggregate the simulator's per-request phase spans into
// per-phase latency/energy tables, attributing where each policy's queries
// spend their time (queue wait vs. initial-frequency execution vs. boost) and
// energy — the offline counterpart of the live /debug/traces endpoint.
package harness

import (
	"fmt"

	"gemini/internal/sim"
	"gemini/internal/stats"
	"gemini/internal/telemetry"
	"gemini/internal/trace"
)

// PhaseStats summarizes one span name (phase) across a run's traces.
type PhaseStats struct {
	Name    string  // span name: request, queue, exec-initial, exec-boost
	Count   int     // spans observed
	MeanMs  float64 // mean phase duration
	P95Ms   float64
	P99Ms   float64
	TotalMJ float64 // summed energy_mj attrs (0 for phases without energy)
}

// WaterfallSummary is one (policy, trace) run's phase breakdown.
type WaterfallSummary struct {
	Policy string
	Traces int          // distinct trace IDs observed
	Phases []PhaseStats // first-appearance order
}

// Phase returns the named phase's stats (zero value when absent).
func (w *WaterfallSummary) Phase(name string) PhaseStats {
	for _, p := range w.Phases {
		if p.Name == name {
			return p
		}
	}
	return PhaseStats{}
}

// AnalyzeSpans aggregates a span set into per-phase stats, grouping by span
// name in first-appearance order.
func AnalyzeSpans(policy string, spans []telemetry.Span) *WaterfallSummary {
	ids, _ := telemetry.GroupSpansByTrace(spans)
	sum := &WaterfallSummary{Policy: policy, Traces: len(ids)}
	durs := make(map[string][]float64)
	idx := make(map[string]int)
	for _, sp := range spans {
		i, ok := idx[sp.Name]
		if !ok {
			i = len(sum.Phases)
			idx[sp.Name] = i
			sum.Phases = append(sum.Phases, PhaseStats{Name: sp.Name})
		}
		p := &sum.Phases[i]
		p.Count++
		p.TotalMJ += sp.Attr("energy_mj")
		durs[sp.Name] = append(durs[sp.Name], sp.DurationMs())
	}
	for i := range sum.Phases {
		p := &sum.Phases[i]
		vals := durs[p.Name]
		var total float64
		for _, v := range vals {
			total += v
		}
		p.MeanMs = total / float64(len(vals))
		p.P95Ms, _ = stats.Percentile(vals, 95)
		p.P99Ms, _ = stats.Percentile(vals, 99)
	}
	return sum
}

// RunWaterfall runs one (policy, trace) simulation cell with span tracing
// attached and returns the run's Result plus the retained span set. The ring
// is sized to hold every request's spans (root + queue + at most two exec
// phases per request).
func (p *Platform) RunWaterfall(policyName, traceName string, avgRPS, durationMs float64) (*sim.Result, []telemetry.Span, error) {
	pol, err := p.NewPolicy(policyName)
	if err != nil {
		return nil, nil, err
	}
	tr := trace.GenEvalTrace(traceName, avgRPS*p.Opt.ShardFraction, durationMs, p.Opt.Seed+40)
	wl := p.Workload(tr.Arrivals, durationMs, p.Opt.Seed+50)

	cfg := p.SimConfig()
	sp := telemetry.NewSpanTracer(4 * len(wl.Requests))
	cfg.Spans = sp

	res := sim.Run(cfg, wl, pol)
	return res, sp.Spans(), nil
}

// PhaseReport runs every policy on the same trace and renders the per-phase
// latency/energy waterfall table: where each policy's queries spend their
// time (queue wait, initial-frequency step, boost step) and energy.
func (p *Platform) PhaseReport(traceName string, avgRPS, durationMs float64) (*Report, error) {
	rep := &Report{
		Title:  "Per-phase latency/energy waterfall (" + traceName + " trace)",
		Header: []string{"policy", "phase", "count", "mean ms", "p95 ms", "p99 ms", "energy J"},
	}
	rep.Note("trace=%s avgRPS=%.0f duration=%.0fms shard-fraction=%.2f", traceName, avgRPS, durationMs, p.Opt.ShardFraction)
	rep.Note("phases: queue = enqueue->dispatch, exec-initial = dispatch->boost (planned f*), exec-boost = boost->completion (f_max)")
	for _, name := range PolicyNames {
		res, spans, err := p.RunWaterfall(name, traceName, avgRPS, durationMs)
		if err != nil {
			return nil, err
		}
		sum := AnalyzeSpans(name, spans)
		for _, ph := range sum.Phases {
			energy := ""
			if ph.TotalMJ > 0 {
				energy = fmt.Sprintf("%.2f", ph.TotalMJ/1000)
			}
			rep.AddRow(name, ph.Name, fmt.Sprintf("%d", ph.Count), f2(ph.MeanMs), f2(ph.P95Ms), f2(ph.P99Ms), energy)
		}
		rep.Note("%s: %d traces, completed p99 %.1f ms, energy %.1f J", name, sum.Traces, res.TailLatencyMs(99), res.EnergyMJ/1000)
	}
	return rep, nil
}
