package harness

import (
	"fmt"
	"math"

	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/index"
	"gemini/internal/policy"
	"gemini/internal/search"
	"gemini/internal/sim"
	"gemini/internal/stats"
	"gemini/internal/trace"
)

// Table1 renders the qualitative power-management comparison of paper
// Table I, extended with the two additional baselines this repo implements.
func (p *Platform) Table1() *Report {
	r := &Report{
		Title:  "Table I — power management comparison",
		Header: []string{"Scheme", "Uncertainty", "Unknown demand", "DVFS control", "Critical-request reconfig"},
	}
	r.AddRow("Pegasus", "long-term (per epoch)", "deadline violation + latency history", "centralized feedback controller", "no concept")
	r.AddRow("Rubik", "short & long (per request)", "tail of service-time distribution", "statistical model in software runtime", "yes")
	r.AddRow("PACE", "short & long (per request)", "work distribution from recent tasks", "idealized step-wise DVFS (LP)", "latter request may violate")
	r.AddRow("EETL", "long-term (per epoch)", "run until time threshold expires", "PID controller", "latter request may violate")
	r.AddRow("Gemini", "short & long (per request)", "NN latency + error predictors", "heuristic one/two-step DVFS in user space", "yes")
	return r
}

// Table2Data carries the Table II feature rows for assertions.
type Table2Data struct {
	Queries  []string
	Features []search.FeatureVector
	TimesMs  []float64
}

// Table2 reproduces paper Table II: the full feature vector for an example
// term query and an example phrase query.
func (p *Platform) Table2() (*Report, *Table2Data) {
	data := &Table2Data{}
	r := &Report{
		Title:  "Table II — features for service time prediction",
		Header: append([]string{"Query", "Time(ms)"}, search.FeatureNames[:]...),
	}
	for _, text := range []string{"toyota", "united kingdom"} {
		q, ok := corpus.ParseQuery(p.Corpus, text)
		if !ok {
			continue
		}
		ex := p.Engine.Search(q)
		ms := cpu.TimeFor(p.Cost.WorkFor(ex.Stats), cpu.FDefault)
		fv := p.Extractor.Features(q)
		cells := []string{text, f2(ms)}
		for _, v := range fv {
			cells = append(cells, f2(v))
		}
		r.AddRow(cells...)
		data.Queries = append(data.Queries, text)
		data.Features = append(data.Features, fv)
		data.TimesMs = append(data.TimesMs, ms)
	}
	return r, data
}

// Fig1bData summarizes the workload-variation statistics of Fig. 1b.
type Fig1bData struct {
	NormalizedMaxRPS float64 // hourly max/min ratio (paper: ≈4x)
	PerSecondCV      float64
	InterArrivalP99  float64
	InterArrivalMean float64
}

// Fig1b reproduces the Fig. 1b workload characterization: long-term diurnal
// RPS variation, its CDF, per-second variability, and inter-arrival spread.
func (p *Platform) Fig1b() (*Report, *Fig1bData) {
	long := trace.GenWikipediaLong(6, 150, p.Opt.Seed+10)
	hourly := long.RPSSeries(3_600_000, 150*3_600_000)
	mn, _ := stats.Min(hourly)
	mx, _ := stats.Max(hourly)

	// Normalized-to-min hourly series CDF (paper's top-right panel).
	norm := make([]float64, len(hourly))
	for i, v := range hourly {
		norm[i] = v / mn
	}
	cdf, _ := stats.NewCDF(norm)

	short := trace.GenEvalTrace("wiki", 60, 300_000, p.Opt.Seed+11)
	sec := short.RPSSeries(1000, 300_000)
	secMean, _ := stats.Mean(sec)
	secVar, _ := stats.Variance(sec)
	gaps := short.InterArrivalsMs()
	gapMean, _ := stats.Mean(gaps)
	gapP99, _ := stats.Percentile(gaps, 99)

	data := &Fig1bData{
		NormalizedMaxRPS: mx / mn,
		PerSecondCV:      math.Sqrt(secVar) / secMean,
		InterArrivalP99:  gapP99,
		InterArrivalMean: gapMean,
	}
	r := &Report{Title: "Fig. 1b — search workload arrival variation"}
	r.Note("150h Wikipedia trace, hourly RPS: min %.2f, max %.2f (max/min %.2fx; paper ≈4x)", mn, mx, data.NormalizedMaxRPS)
	r.Header = []string{"Normalized RPS x", "CDF"}
	for _, x := range []float64{1, 1.5, 2, 2.5, 3, 3.5, 4} {
		r.AddRow(f1(x), f2(cdf.At(x)))
	}
	r.Note("per-second RPS coefficient of variation: %.2f", data.PerSecondCV)
	r.Note("inter-arrival: mean %.1f ms, p99 %.1f ms", gapMean, gapP99)
	return r, data
}

// Fig1cData carries the per-query service time variation results.
type Fig1cData struct {
	QueryTimes map[string][]float64 // query -> per-ISN service times (ms)
	SpreadMax  float64              // max over ISNs of (slowest query / fastest)
	CDFTimes   []float64            // 20K-request service time sample
}

// Fig1c reproduces Fig. 1c: the service times of the example queries Canada,
// Bobby and Tokyo across ISN shards, and the service-time CDF over 20K
// requests. Shards are separate corpus seeds: each ISN serves a different
// document partition, so the same query costs differently per ISN.
func (p *Platform) Fig1c() (*Report, *Fig1cData) {
	const isns = 4
	names := []string{"canada", "bobby", "tokyo"}
	data := &Fig1cData{QueryTimes: map[string][]float64{}}

	r := &Report{Title: "Fig. 1c — per-query service time variation"}
	r.Header = []string{"ISN", "canada(ms)", "bobby(ms)", "tokyo(ms)"}
	for shard := 0; shard < isns; shard++ {
		// Shards differ in both content (seed) and size (document count):
		// real collections partition unevenly, which is why the same query
		// costs differently per ISN in the paper's Fig. 1c.
		spec := corpus.SmallSpec()
		spec.Seed = p.Opt.Seed + int64(100+shard)
		spec.NumDocs = spec.NumDocs * (2 + 3*shard) / 5 // 0.4x .. 2.2x
		c := corpus.Generate(spec)
		eng := search.NewEngine(index.Build(c), search.DefaultK)
		cost := search.DefaultCostModel()
		cost.Scale = p.Cost.Scale // same calibration across shards
		row := []string{fmt.Sprintf("ISN-%d", shard+1)}
		for _, name := range names {
			q, ok := corpus.ParseQuery(c, name)
			ms := 0.0
			if ok {
				ms = cpu.TimeFor(cost.WorkFor(eng.Search(q).Stats), cpu.FDefault)
			}
			data.QueryTimes[name] = append(data.QueryTimes[name], ms)
			row = append(row, f2(ms))
		}
		r.AddRow(row...)
	}

	// Spread between heaviest and lightest query per ISN.
	for i := 0; i < isns; i++ {
		mn, mx := 1e18, 0.0
		for _, name := range names {
			v := data.QueryTimes[name][i]
			if v <= 0 {
				continue
			}
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if mn < 1e18 && mx/mn > data.SpreadMax {
			data.SpreadMax = mx / mn
		}
	}

	// 20K-request service-time CDF on the main shard.
	sample := p.SampleQueries(20000, p.Opt.Seed+12)
	times := make([]float64, len(sample))
	for i, pq := range sample {
		times[i] = cpu.TimeFor(pq.BaseWork, cpu.FDefault)
	}
	data.CDFTimes = times
	cdf, _ := stats.NewCDF(times)
	r.Note("service-time spread across example queries: up to %.1fx (paper: 14x)", data.SpreadMax)
	r.Note("20K-request service-time CDF (ms -> P):")
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		r.Note("  p%.0f = %.2f ms", q*100, cdf.Quantile(q))
	}
	return r, data
}

// Fig3Data carries the latency-vs-frequency validation.
type Fig3Data struct {
	Freqs     []cpu.Freq
	Latencies []float64
	FitR2     float64 // linearity of latency vs 1/f
}

// Fig3 reproduces Fig. 3: a single heavy query's latency at every ladder
// frequency, with the linear fit against 1/f confirming S = C/f.
func (p *Platform) Fig3() (*Report, *Fig3Data) {
	// Pick the heaviest pool query (the paper used a long request: 40 ms at
	// 2.7 GHz scaled to our platform).
	heavy := p.Pool[0]
	for _, pq := range p.Pool {
		if pq.BaseWork > heavy.BaseWork {
			heavy = pq
		}
	}
	data := &Fig3Data{}
	var invF []float64
	r := &Report{Title: "Fig. 3 — request latency vs CPU frequency"}
	r.Note("query %q, work %.1f Mcycles", heavy.Query.Text, float64(heavy.BaseWork))
	r.Header = []string{"Freq (GHz)", "Latency (ms)"}
	levels := cpu.DefaultLadder().Levels()
	for i := len(levels) - 1; i >= 0; i-- {
		f := levels[i]
		wl := &sim.Workload{BudgetMs: 10_000, DurationMs: 10_000}
		wl.Requests = []*sim.Request{{
			Query: heavy.Query, Features: heavy.Features,
			BaseWork: heavy.BaseWork, WorkTotal: heavy.BaseWork,
			ArrivalMs: 0, DeadlineMs: 10_000,
		}}
		res := sim.Run(sim.DefaultConfig(), wl, policy.FixedFreq{F: f})
		lat := res.Latencies[0]
		data.Freqs = append(data.Freqs, f)
		data.Latencies = append(data.Latencies, lat)
		invF = append(invF, 1/float64(f))
		r.AddRow(f1(float64(f)), f2(lat))
	}
	fit, err := stats.FitLinear(invF, data.Latencies)
	if err == nil {
		data.FitR2 = fit.R2
		r.Note("linear fit latency = %.2f·(1/f) + %.2f, R² = %.5f (paper: on-line trend)", fit.Slope, fit.Intercept, fit.R2)
	}
	return r, data
}
