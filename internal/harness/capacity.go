package harness

import (
	"fmt"
	"strings"

	"gemini/internal/sim"
	"gemini/internal/telemetry"
	"gemini/internal/trace"
)

// CapacitySpec parameterizes the capacity-planning sweep: how many replicas
// per shard, at what offered load, under which cluster power cap does the
// query (straggler) tail stay inside the SLA — the provisioning question the
// shards × replicas topology exists to answer.
type CapacitySpec struct {
	Shards     int
	Replicas   []int     // replicas-per-shard values to sweep
	EngineRPS  []float64 // engine-level offered load values to sweep
	CapsW      []float64 // cluster power caps to sweep; 0 = uncapped
	Router     string    // sim.RouterByName spelling; "" = power-aware
	Policy     string    // per-replica DVFS policy; "" = "Gemini"
	DurationMs float64
	Seed       int64
}

// CapacityReport runs the replicas × RPS × cap grid over the shards ×
// replicas topology and tabulates query-level quality against modeled
// cluster power. Offered load scales with the replica count (cluster RPS =
// per-ISN RPS × replicas) so each replica sees a per-core rate comparable to
// the single-ISN experiments and adding replicas reads as adding capacity at
// fixed per-core pressure.
//
// workers shards each cell's per-replica simulations over OS threads; the
// topology runner is byte-identical for any worker count, so the report is
// too (TestCapacityReportWorkersIdentical).
func (p *Platform) CapacityReport(spec CapacitySpec, workers int) *Report {
	if spec.Shards < 1 {
		spec.Shards = 1
	}
	if len(spec.Replicas) == 0 {
		spec.Replicas = []int{1, 2, 3}
	}
	if len(spec.EngineRPS) == 0 {
		spec.EngineRPS = []float64{40}
	}
	if len(spec.CapsW) == 0 {
		spec.CapsW = []float64{0}
	}
	if spec.Router == "" {
		spec.Router = "power-aware"
	}
	if spec.Policy == "" {
		spec.Policy = "Gemini"
	}
	if spec.DurationMs <= 0 {
		spec.DurationMs = 3000
	}
	router, err := sim.RouterByName(spec.Router)
	if err != nil {
		panic(err) // spec comes from flags validated by cmd, or from tests
	}

	rep := &Report{
		Title: "Capacity planning (shards × replicas, power-aware routing)",
		Header: []string{"replicas", "rps", "cap W", "queries", "drop", "viol",
			"p99 ms", "avg W", "peak W", "throttles"},
	}
	for _, replicas := range spec.Replicas {
		for _, rps := range spec.EngineRPS {
			// Per-ISN rate held constant per replica: the cluster absorbs
			// replicas× the single-ISN stream.
			isnRPS := rps * p.Opt.ShardFraction * float64(replicas)
			tr := trace.GenFixedRPS(isnRPS, spec.DurationMs, 1)
			for _, capW := range spec.CapsW {
				wl := p.Workload(tr.Arrivals, spec.DurationMs, 2)
				tc := sim.TopologyConfig{
					Sim:       p.SimConfig(),
					Topology:  sim.Topology{Shards: spec.Shards, ReplicasPerShard: replicas},
					Router:    router,
					Seed:      spec.Seed,
					PowerCapW: capW,
				}
				res := sim.RunTopologyWorkers(tc, wl, workers, func(int) sim.Policy {
					return p.MustPolicy(spec.Policy)
				})
				capCell := "-"
				if capW > 0 {
					capCell = f1(capW)
				}
				rep.AddRow(
					fmt.Sprintf("%d", replicas),
					f1(rps),
					capCell,
					fmt.Sprintf("%d", res.Queries),
					pct(res.DropRate()),
					pct(res.ViolationRate()),
					f2(res.TailLatencyMs(99)),
					f2(res.ClusterPowerW(p.Power)),
					f2(res.PeakModeledPowerW),
					fmt.Sprintf("%d", res.CapThrottles))
			}
		}
	}
	rep.Note("shards=%d, router=%s, policy=%s, duration=%.0f ms, budget=%.0f ms",
		spec.Shards, spec.Router, spec.Policy, spec.DurationMs, p.Opt.BudgetMs)
	rep.Note("cluster RPS = per-ISN RPS × replicas (fixed per-core pressure); avg W is the modeled cluster average, peak W the coordinator's boundary peak")
	return rep
}

// TopologyRunSpec parameterizes one shards × replicas cell for the geminisim
// -shards mode.
type TopologyRunSpec struct {
	Shards, Replicas      int
	Router, Policy        string // "" = power-aware / Gemini
	CapW, CapIntervalMs   float64
	EngineRPS, DurationMs float64
	Seed                  int64
}

// TopologyReport runs one topology cell with cluster telemetry attached and
// returns a summary report plus the Prometheus exposition of the
// gemini_cluster_* families (route counters, cap throttles, modeled power,
// query latency histogram) — what the CI smoke greps.
func (p *Platform) TopologyReport(spec TopologyRunSpec, workers int) (*Report, string, error) {
	if spec.Shards < 1 {
		spec.Shards = 1
	}
	if spec.Replicas < 1 {
		spec.Replicas = 1
	}
	if spec.Router == "" {
		spec.Router = "power-aware"
	}
	if spec.Policy == "" {
		spec.Policy = "Gemini"
	}
	if spec.EngineRPS <= 0 {
		spec.EngineRPS = 60
	}
	if spec.DurationMs <= 0 {
		spec.DurationMs = 3000
	}
	router, err := sim.RouterByName(spec.Router)
	if err != nil {
		return nil, "", err
	}

	isnRPS := spec.EngineRPS * p.Opt.ShardFraction * float64(spec.Replicas)
	tr := trace.GenFixedRPS(isnRPS, spec.DurationMs, 1)
	wl := p.Workload(tr.Arrivals, spec.DurationMs, 2)

	reg := telemetry.NewRegistry()
	tc := sim.TopologyConfig{
		Sim:           p.SimConfig(),
		Topology:      sim.Topology{Shards: spec.Shards, ReplicasPerShard: spec.Replicas},
		Router:        router,
		Seed:          spec.Seed,
		PowerCapW:     spec.CapW,
		CapIntervalMs: spec.CapIntervalMs,
		Metrics:       telemetry.NewClusterMetrics(reg),
	}
	res := sim.RunTopologyWorkers(tc, wl, workers, func(int) sim.Policy {
		return p.MustPolicy(spec.Policy)
	})

	rep := &Report{
		Title: "Cluster topology run",
		Header: []string{"shards", "replicas", "router", "cap W", "queries", "drop",
			"viol", "p99 ms", "avg W", "peak W", "throttles", "events"},
	}
	capCell := "-"
	if spec.CapW > 0 {
		capCell = f1(spec.CapW)
	}
	rep.AddRow(
		fmt.Sprintf("%d", spec.Shards),
		fmt.Sprintf("%d", spec.Replicas),
		spec.Router,
		capCell,
		fmt.Sprintf("%d", res.Queries),
		pct(res.DropRate()),
		pct(res.ViolationRate()),
		f2(res.TailLatencyMs(99)),
		f2(res.ClusterPowerW(p.Power)),
		f2(res.PeakModeledPowerW),
		fmt.Sprintf("%d", res.CapThrottles),
		fmt.Sprintf("%d", res.Events))
	rep.Note("policy=%s, engine RPS=%.0f, duration=%.0f ms", spec.Policy, spec.EngineRPS, spec.DurationMs)

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		return nil, "", err
	}
	return rep, sb.String(), nil
}
