package harness

import (
	"strings"
	"testing"

	"gemini/internal/search"
)

// The small platform is built once for the whole package's tests.
func plat(t testing.TB) *Platform {
	t.Helper()
	return Shared(true)
}

func TestPlatformBuild(t *testing.T) {
	p := plat(t)
	if p.Classifier == nil || p.ErrPred == nil || p.P95 == nil {
		t.Fatal("predictors missing")
	}
	if len(p.Pool) != p.Opt.PoolSize {
		t.Fatalf("pool size = %d", len(p.Pool))
	}
	mean, p95, min, max := p.PoolStats()
	// The budget-relative scaling pins the heaviest query, so the mean
	// floats with the corpus shape (the small corpus has a lighter tail and
	// lands higher).
	if mean < 0.5*p.Opt.TargetMeanMs || mean > 2.0*p.Opt.TargetMeanMs {
		t.Errorf("pool mean %.2f far from target %.2f", mean, p.Opt.TargetMeanMs)
	}
	// Feasibility: the heaviest query fits the budget at max frequency.
	if max > 0.85*p.Opt.BudgetMs {
		t.Errorf("max service %.2f too close to budget %.2f", max, p.Opt.BudgetMs)
	}
	if p95 <= mean || min >= mean {
		t.Errorf("degenerate distribution: mean %.2f p95 %.2f min %.2f", mean, p95, min)
	}
}

func TestPolicyRegistry(t *testing.T) {
	p := plat(t)
	for _, name := range append([]string(nil), PolicyNames...) {
		pol, err := p.NewPolicy(name)
		if err != nil || pol == nil {
			t.Errorf("policy %s: %v", name, err)
		}
	}
	for _, name := range []string{"Gemini-95th", "EETL", "PACE-oracle", "Gemini+Sleep"} {
		if _, err := p.NewPolicy(name); err != nil {
			t.Errorf("policy %s: %v", name, err)
		}
	}
	if _, err := p.NewPolicy("bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestTable1(t *testing.T) {
	r := plat(t).Table1()
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !strings.Contains(r.String(), "Gemini") {
		t.Error("missing Gemini row")
	}
}

func TestTable2(t *testing.T) {
	r, data := plat(t).Table2()
	if len(data.Queries) != 2 {
		t.Fatalf("queries = %v", data.Queries)
	}
	// The phrase query must report query length 2, the term query 1.
	if data.Features[0][search.FeatQueryLength] != 1 ||
		data.Features[1][search.FeatQueryLength] != 2 {
		t.Errorf("query lengths wrong")
	}
	for i, ms := range data.TimesMs {
		if ms <= 0 {
			t.Errorf("query %d time %v", i, ms)
		}
	}
	if len(r.Rows) != 2 {
		t.Errorf("report rows = %d", len(r.Rows))
	}
}

func TestFig1b(t *testing.T) {
	_, data := plat(t).Fig1b()
	if data.NormalizedMaxRPS < 2.5 || data.NormalizedMaxRPS > 8 {
		t.Errorf("normalized RPS range %.2f, paper ≈4x", data.NormalizedMaxRPS)
	}
	if data.PerSecondCV < 0.1 {
		t.Errorf("per-second CV %.2f too flat", data.PerSecondCV)
	}
	if data.InterArrivalP99 <= data.InterArrivalMean {
		t.Errorf("inter-arrival p99 %.2f <= mean %.2f", data.InterArrivalP99, data.InterArrivalMean)
	}
}

func TestFig1c(t *testing.T) {
	_, data := plat(t).Fig1c()
	if data.SpreadMax < 2 {
		t.Errorf("query spread %.1fx too small", data.SpreadMax)
	}
	if len(data.CDFTimes) != 20000 {
		t.Errorf("CDF sample = %d", len(data.CDFTimes))
	}
	for _, name := range []string{"canada", "bobby", "tokyo"} {
		if len(data.QueryTimes[name]) != 4 {
			t.Errorf("%s measured on %d ISNs", name, len(data.QueryTimes[name]))
		}
	}
}

func TestFig3Linearity(t *testing.T) {
	_, data := plat(t).Fig3()
	if len(data.Freqs) != 8 {
		t.Fatalf("frequency points = %d", len(data.Freqs))
	}
	// Latency decreases as frequency increases (series is high-freq first).
	if data.Latencies[0] >= data.Latencies[len(data.Latencies)-1] {
		t.Errorf("latency not decreasing with frequency: %v", data.Latencies)
	}
	if data.FitR2 < 0.999 {
		t.Errorf("R² vs 1/f = %v; S=C/f must be near-exact", data.FitR2)
	}
}

func TestFig7Shape(t *testing.T) {
	_, data := plat(t).Fig7()
	if len(data.Evals) != 4 {
		t.Fatalf("evals = %d", len(data.Evals))
	}
	lin, clf := data.Evals[0], data.Evals[3]
	if clf.ErrorRate >= lin.ErrorRate {
		t.Errorf("NN classifier (%.2f) not better than linear (%.2f)", clf.ErrorRate, lin.ErrorRate)
	}
	if lin.OverheadUs >= clf.OverheadUs {
		t.Errorf("overhead ordering violated")
	}
	if data.AvgServiceMs*1000 < 10*clf.OverheadUs {
		t.Errorf("overhead not small vs service time: %.0f µs vs %.0f µs",
			clf.OverheadUs, data.AvgServiceMs*1000)
	}
}

func TestFig8Bounds(t *testing.T) {
	_, data := plat(t).Fig8()
	if data.Accuracy <= 0.3 || data.Accuracy > 1 {
		t.Errorf("error predictor accuracy %.2f", data.Accuracy)
	}
	if data.LatencyAcc <= 0.3 || data.LatencyAcc > 1 {
		t.Errorf("latency accuracy %.2f", data.LatencyAcc)
	}
}

func TestRPSSweepShape(t *testing.T) {
	p := plat(t)
	data := p.RPSSweep([]float64{40, 100}, 8_000)
	for _, name := range PolicyNames {
		if len(data.Cells[name]) != 2 {
			t.Fatalf("%s cells = %d", name, len(data.Cells[name]))
		}
	}
	for i := range data.RPS {
		base := data.Cell("Baseline", i)
		gem := data.Cell("Gemini", i)
		peg := data.Cell("Pegasus", i)
		if gem.SocketPowerW >= base.SocketPowerW {
			t.Errorf("RPS %.0f: Gemini %.1f W >= baseline %.1f W", data.RPS[i], gem.SocketPowerW, base.SocketPowerW)
		}
		if gem.SavingFrac <= peg.SavingFrac {
			t.Errorf("RPS %.0f: Gemini saving %.2f <= Pegasus %.2f", data.RPS[i], gem.SavingFrac, peg.SavingFrac)
		}
	}
	// Reports render.
	if s := p.Fig10(data).String(); !strings.Contains(s, "Gemini") {
		t.Error("Fig10 report broken")
	}
	if s := p.Fig11(data).String(); !strings.Contains(s, "RPS") {
		t.Error("Fig11 report broken")
	}
}

func TestTraceRunsShape(t *testing.T) {
	p := plat(t)
	data := p.TraceRuns([]string{"wiki"}, []string{"Rubik", "Pegasus", "Gemini", "Gemini-a", "Gemini-95th"}, 60, 60_000)
	base := data.Cell("wiki", "Baseline")
	gem := data.Cell("wiki", "Gemini")
	if base == nil || gem == nil {
		t.Fatal("cells missing")
	}
	if gem.SavingFrac <= 0.15 {
		t.Errorf("Gemini trace saving %.2f too small", gem.SavingFrac)
	}
	if len(base.PowerSeriesW) == 0 {
		t.Error("power series missing")
	}
	// Gemini reshapes latency toward the budget: median far above baseline's.
	if len(gem.Latencies) == 0 || len(base.Latencies) == 0 {
		t.Fatal("latencies missing")
	}
	// Reports render without panicking even with a single trace.
	one := p.Fig13(data)
	if !strings.Contains(one.String(), "Gemini") {
		t.Error("Fig13 report broken")
	}
	if s := p.Fig14(data).String(); !strings.Contains(s, "95th") {
		t.Error("Fig14 report broken")
	}
	if s := p.Fig12(data).String(); !strings.Contains(s, "wiki") {
		t.Error("Fig12 report broken")
	}
}

func TestAblations(t *testing.T) {
	p := plat(t)
	if _, data := p.AblationBoost(80, 8_000); len(data.Cells) != 4 {
		t.Errorf("boost ablation cells = %d", len(data.Cells))
	}
	if _, data := p.AblationGrouping(80, 8_000); len(data.Cells) != 3 {
		t.Errorf("grouping ablation cells = %d", len(data.Cells))
	}
	if _, data := p.AblationTdvfs(80, 8_000); len(data.Cells) != 4 {
		t.Errorf("tdvfs ablation cells = %d", len(data.Cells))
	}
	if _, data := p.AblationBudget(80, 8_000); len(data.Cells) != 5 {
		t.Errorf("budget ablation cells = %d", len(data.Cells))
	}
	_, sleep := p.AblationSleep(20, 8_000)
	if len(sleep.Cells) != 3 {
		t.Fatalf("sleep ablation cells = %d", len(sleep.Cells))
	}
	// Sleep must save power vs plain Gemini at light load.
	if sleep.Cells[2].SocketPowerW >= sleep.Cells[1].SocketPowerW {
		t.Errorf("sleep %v W >= plain %v W", sleep.Cells[2].SocketPowerW, sleep.Cells[1].SocketPowerW)
	}
}

func TestExperimentSet(t *testing.T) {
	set := NewExperimentSet(plat(t), 0.02)
	names := set.Names()
	if len(names) < 18 {
		t.Fatalf("experiments = %d", len(names))
	}
	if _, err := set.Run("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// Spot-run the cheap ones end to end.
	for _, n := range []string{"table1", "table2", "fig3", "fig10", "fig13"} {
		rep, err := set.Run(n)
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		if rep.String() == "" {
			t.Errorf("%s: empty report", n)
		}
	}
}

func TestReportRendering(t *testing.T) {
	r := &Report{Title: "T", Header: []string{"a", "bb"}}
	r.AddRow("1", "2")
	r.AddRow("333", "4")
	r.Note("note %d", 7)
	s := r.String()
	for _, want := range []string{"== T ==", "note 7", "333"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in:\n%s", want, s)
		}
	}
	empty := &Report{Title: "E"}
	if !strings.Contains(empty.String(), "== E ==") {
		t.Error("empty report broken")
	}
}

func TestWorkloadSeedsDiffer(t *testing.T) {
	p := plat(t)
	arr := []float64{10, 20, 30}
	a := p.Workload(arr, 100, 1)
	b := p.Workload(arr, 100, 2)
	same := true
	for i := range a.Requests {
		if a.Requests[i].WorkTotal != b.Requests[i].WorkTotal {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestReportHelpers(t *testing.T) {
	if f1(1.25) != "1.2" && f1(1.25) != "1.3" {
		t.Errorf("f1 = %q", f1(1.25))
	}
	if f2(1.256) != "1.26" {
		t.Errorf("f2 = %q", f2(1.256))
	}
	if pct(0.4251) != "42.5%" {
		t.Errorf("pct = %q", pct(0.4251))
	}
}

func TestFig2Timeline(t *testing.T) {
	r := plat(t).Fig2(2)
	s := r.String()
	if !strings.Contains(s, "busy") || !strings.Contains(s, "#") {
		t.Errorf("timeline missing bars:\n%s", s)
	}
	if len(r.Rows) < 3 {
		t.Errorf("timeline rows = %d", len(r.Rows))
	}
}

func TestExtensionAggregate(t *testing.T) {
	r, data := plat(t).ExtensionAggregate(3, 40, 10_000)
	if len(data.Cells) != 2 {
		t.Fatalf("cells = %d", len(data.Cells))
	}
	base, gem := data.Cells[0], data.Cells[1]
	// Gemini must use less per-core power; the aggregate tail exceeds any
	// single ISN's for both.
	if gem.SocketPowerW >= base.SocketPowerW {
		t.Errorf("Gemini per-core power %v >= baseline %v", gem.SocketPowerW, base.SocketPowerW)
	}
	if !strings.Contains(r.String(), "Aggregate") {
		t.Error("report broken")
	}
}

func TestExtensionCache(t *testing.T) {
	r, data := plat(t).ExtensionCache(60, 10_000, 128)
	if len(data.Cells) != 4 {
		t.Fatalf("cells = %d", len(data.Cells))
	}
	// Caching must reduce power for both baseline and Gemini.
	if data.Cells[1].SocketPowerW >= data.Cells[0].SocketPowerW {
		t.Errorf("baseline+cache %v >= baseline %v", data.Cells[1].SocketPowerW, data.Cells[0].SocketPowerW)
	}
	if data.Cells[3].SocketPowerW >= data.Cells[2].SocketPowerW {
		t.Errorf("gemini+cache %v >= gemini %v", data.Cells[3].SocketPowerW, data.Cells[2].SocketPowerW)
	}
	if !strings.Contains(r.String(), "hit rate") {
		t.Error("hit rate note missing")
	}
}

func TestExtensionGovernors(t *testing.T) {
	_, data := plat(t).ExtensionGovernors(60, 10_000)
	if len(data.Cells) != 6 {
		t.Fatalf("cells = %d", len(data.Cells))
	}
	// Gemini must have the best tail among the managed policies.
	gem := data.Cells[len(data.Cells)-1]
	for _, c := range data.Cells[1 : len(data.Cells)-1] {
		if gem.TailMs >= c.TailMs+20 {
			t.Errorf("Gemini tail %v far above %s's %v", gem.TailMs, c.Variant, c.TailMs)
		}
	}
}
