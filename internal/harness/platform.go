// Package harness assembles the full reproduction platform (corpus → index
// → engine → predictors → simulator) and implements one experiment runner
// per table and figure of the paper's evaluation. The cmd/ tools, the
// examples, and the root benchmark suite all drive these runners.
package harness

import (
	"fmt"
	"math/rand"
	"sync"

	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/index"
	"gemini/internal/policy"
	"gemini/internal/predictor"
	"gemini/internal/search"
	"gemini/internal/sim"
	"gemini/internal/stats"
)

// Options configures platform construction.
type Options struct {
	// Small selects the fast test-scale platform (small corpus, tiny NNs).
	Small bool
	// Seed drives all deterministic generation.
	Seed int64
	// TargetMeanMs calibrates the cost model's mean service time at the
	// default frequency (the paper reports ≈10 ms average service time,
	// Fig. 7b).
	TargetMeanMs float64
	// ShardFraction is the fraction of engine-level requests that reach one
	// ISN. The paper's traces drive selective-search deployments (refs
	// [3,4,8]: dynamic shard cutoff) where each query is served by a subset
	// of shards; with 10 ms mean service a full 100 RPS stream would
	// saturate a single-worker ISN, so the sweep's x-axis stays engine RPS
	// while each ISN sees ShardFraction of it.
	ShardFraction float64
	// BudgetMs is the ISN tail latency budget (40 ms in the paper).
	BudgetMs float64
	// PoolSize is the number of distinct queries in the workload pool.
	PoolSize int
	// TrainQueries is the number of labeled samples for predictor training.
	TrainQueries int
	// NNConfig configures predictor training.
	NNConfig predictor.Config
}

// DefaultOptions is the full-scale configuration used by cmd/ and benches.
func DefaultOptions() Options {
	return Options{
		Seed:          1,
		TargetMeanMs:  10.0,
		ShardFraction: 0.4,
		BudgetMs:      40,
		PoolSize:      1500,
		TrainQueries:  9000,
		NNConfig:      predictor.DefaultConfig(),
	}
}

// SmallOptions is the fast configuration used by unit tests.
func SmallOptions() Options {
	return Options{
		Small:         true,
		Seed:          1,
		TargetMeanMs:  10.0,
		ShardFraction: 0.4,
		BudgetMs:      40,
		PoolSize:      300,
		TrainQueries:  2000,
		NNConfig:      predictor.TestConfig(),
	}
}

// Platform is the assembled reproduction stack shared by all experiments.
type Platform struct {
	Opt       Options
	Corpus    *corpus.Corpus
	Index     *index.Index
	Engine    *search.Engine
	Extractor *search.Extractor
	Cost      *search.CostModel
	Jitter    *search.Jitter
	Builder   *predictor.Builder
	Dataset   *predictor.Dataset

	Classifier *predictor.NNClassifier
	ErrPred    *predictor.NNError
	P95        *predictor.Percentile95

	Pool         []sim.PreparedQuery
	ServiceTimes []float64 // pool base service times at FDefault, ms
	Power        *cpu.PowerModel

	// predMu guards predMemo, the feature-keyed memo behind the per-workload
	// prediction tables: each distinct feature vector is pushed through both
	// NNs exactly once for the platform's lifetime, no matter how many
	// workloads, policies, or parallel workers ask for it.
	predMu   sync.RWMutex
	predMemo map[search.FeatureVector]predPair
}

// predPair is one memoized (S*, E*) prediction.
type predPair struct{ svc, err float64 }

// NewPlatform builds the stack: generate the corpus, index it, calibrate the
// cost model, label the training set, train both NNs, and prepare the query
// pool. Construction is deterministic for a given Options value.
func NewPlatform(opt Options) *Platform {
	spec := corpus.DefaultSpec()
	if opt.Small {
		spec = corpus.SmallSpec()
	}
	spec.Seed = opt.Seed
	c := corpus.Generate(spec)
	ix := index.Build(c)
	eng := search.NewEngine(ix, search.DefaultK)
	cost := search.DefaultCostModel()
	gen := corpus.NewQueryGen(c, opt.Seed+1)
	cost.Calibrate(eng, gen.Batch(500), opt.TargetMeanMs)

	jit := search.DefaultJitter()
	// The spike class must exclude whole-corpus scans regardless of corpus
	// scale, or heavy queries become infeasible within the budget.
	jit.SpikeMaxLen = 0.15 * float64(spec.NumDocs)
	p := &Platform{
		Opt:       opt,
		Corpus:    c,
		Index:     ix,
		Engine:    eng,
		Extractor: search.NewExtractor(eng),
		Cost:      cost,
		Jitter:    jit,
		Power:     cpu.DefaultPowerModel(),
	}
	p.Builder = &predictor.Builder{
		Engine: eng, Extractor: p.Extractor, Cost: cost, Jitter: p.Jitter,
	}

	// The paper's measured workload spans about 14x between the lightest and
	// heaviest queries with every request feasible inside the 40 ms budget
	// (Fig. 1c; Fig. 11's baseline tails). The Zipf-synthetic corpus also
	// produces a pathological ultra-heavy tail that the real Wikipedia mix
	// does not exhibit, so the workload population keeps only queries whose
	// base service time (plus worst-case jitter) fits the budget: 2.5x the
	// target mean. The same population feeds predictor training and the
	// workload pool, as on the paper's testbed.
	raw := gen.Batch(opt.PoolSize + opt.TrainQueries + 6000)
	times := make([]float64, len(raw))
	for i, q := range raw {
		times[i] = cpu.TimeFor(cost.WorkFor(eng.Search(q).Stats), cpu.FDefault)
	}
	// Drop the synthetic ultra-heavy outliers (top 2%), then scale the cost
	// model so that the heaviest remaining query sits at 82% of the budget:
	// feasible at the maximum frequency even with worst-case jitter, like
	// every query of the paper's measured workload.
	threshold, err := stats.Percentile(times, 98)
	if err != nil {
		panic(err)
	}
	feasible := make([]corpus.Query, 0, len(raw))
	maxKept := 0.0
	for i, q := range raw {
		if times[i] <= threshold {
			feasible = append(feasible, q)
			if times[i] > maxKept {
				maxKept = times[i]
			}
		}
	}
	if len(feasible) < opt.PoolSize+opt.TrainQueries {
		panic("harness: feasibility filter removed too many queries")
	}
	cost.Scale *= 0.82 * opt.BudgetMs / maxKept

	trainQ := feasible[:opt.TrainQueries]
	poolQ := feasible[opt.TrainQueries : opt.TrainQueries+opt.PoolSize]

	p.Dataset = p.Builder.Build(trainQ, 0.2, opt.Seed+2)
	p.Classifier = predictor.TrainClassifier(p.Dataset.Train, nil, opt.NNConfig)
	p.ErrPred = predictor.TrainError(p.Dataset.Train, p.Classifier, opt.NNConfig)
	p.P95 = predictor.NewPercentile(p.Dataset.Train, 95)

	p.Pool = sim.PrepareQueries(eng, p.Extractor, cost, poolQ)
	p.ServiceTimes = make([]float64, len(p.Pool))
	for i, pq := range p.Pool {
		p.ServiceTimes[i] = cpu.TimeFor(pq.BaseWork, cpu.FDefault)
	}
	p.predMemo = make(map[search.FeatureVector]predPair, len(p.Pool)+1)
	return p
}

// predictPair returns the memoized (S*, E*) predictions for fv, running the
// NNs only on the first sighting of a feature vector. Safe for concurrent
// use: the predictors are goroutine-safe and the memo is lock-protected (a
// racing duplicate computation stores the identical deterministic value).
func (p *Platform) predictPair(fv search.FeatureVector) predPair {
	p.predMu.RLock()
	pr, ok := p.predMemo[fv]
	p.predMu.RUnlock()
	if ok {
		return pr
	}
	pr = predPair{svc: p.Classifier.PredictMs(fv), err: p.ErrPred.PredictErrMs(fv)}
	p.predMu.Lock()
	p.predMemo[fv] = pr
	p.predMu.Unlock()
	return pr
}

// AttachPredictions precomputes the per-request prediction table every
// Gemini-family policy shares when simulating wl (see sim.Predictions).
func (p *Platform) AttachPredictions(wl *sim.Workload) {
	preds := &sim.Predictions{
		ServiceMs: make([]float64, len(wl.Requests)),
		ErrMs:     make([]float64, len(wl.Requests)),
	}
	for _, r := range wl.Requests {
		pr := p.predictPair(r.Features)
		preds.ServiceMs[r.ID], preds.ErrMs[r.ID] = pr.svc, pr.err
	}
	wl.Preds = preds
}

var (
	sharedMu   sync.Mutex
	sharedFull *Platform
	sharedTiny *Platform
)

// Shared returns a lazily built process-wide platform (full or small scale),
// so benchmarks and experiments share one trained predictor suite.
func Shared(small bool) *Platform {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if small {
		if sharedTiny == nil {
			sharedTiny = NewPlatform(SmallOptions())
		}
		return sharedTiny
	}
	if sharedFull == nil {
		sharedFull = NewPlatform(DefaultOptions())
	}
	return sharedFull
}

// SimConfig returns the simulator configuration used by all power
// experiments: prediction overhead charged per arrival, latencies recorded.
func (p *Platform) SimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.PredictOverheadMs = 0.079 // NN classifier inference, §IV-B
	return cfg
}

// Workload materializes a request sequence from arrivals against the pool,
// with the shared prediction table attached.
func (p *Platform) Workload(arrivals []float64, durationMs float64, seed int64) *sim.Workload {
	return p.WorkloadBudget(arrivals, durationMs, seed, p.Opt.BudgetMs)
}

// WorkloadBudget is Workload with an explicit latency budget, so parallel
// experiment cells can vary the budget without mutating the shared Options.
func (p *Platform) WorkloadBudget(arrivals []float64, durationMs float64, seed int64, budgetMs float64) *sim.Workload {
	wl := sim.BuildWorkload(p.Pool, arrivals, p.Jitter, budgetMs, durationMs, seed)
	p.AttachPredictions(wl)
	return wl
}

// PolicyNames lists the five schemes of the Fig. 10/11 sweep in paper order.
var PolicyNames = []string{"Baseline", "Rubik", "Pegasus", "Gemini-a", "Gemini"}

// markCached lets a Gemini policy consume the workload prediction table for
// whichever of its predictors are the platform's shared NN instances — the
// table was computed by exactly those, so cached and live values coincide.
// Other estimators (moving average, percentile, zero-error) keep the live
// path: they are either stateful or too cheap to be worth caching.
func (p *Platform) markCached(g *policy.Gemini) *policy.Gemini {
	if g.Service == predictor.ServicePredictor(p.Classifier) {
		g.UseCachedService = true
	}
	if g.ErrPred == predictor.ErrorPredictor(p.ErrPred) {
		g.UseCachedErr = true
	}
	return g
}

// NewPolicy constructs a fresh policy instance by name (policies are
// stateful: one instance per run).
func (p *Platform) NewPolicy(name string) (sim.Policy, error) {
	switch name {
	case "Baseline":
		return policy.Baseline{}, nil
	case "Pegasus":
		return policy.NewPegasus(), nil
	case "Rubik":
		return policy.NewRubikFromSamples(p.trainServiceTimes()), nil
	case "Gemini":
		return p.markCached(policy.NewGemini(p.Classifier, p.ErrPred)), nil
	case "Gemini-a":
		return p.markCached(policy.NewGeminiAlpha(p.Classifier)), nil
	case "Gemini-95th":
		return policy.NewGemini95(p.P95), nil
	case "EETL":
		return policy.NewEETL(), nil
	case "PACE-oracle":
		return policy.NewPACEOracle(), nil
	case "Gemini+Sleep":
		return policy.NewSleepWrapper(p.markCached(policy.NewGemini(p.Classifier, p.ErrPred))), nil
	case "ondemand":
		return policy.NewOnDemand(), nil
	case "conservative":
		return policy.NewConservative(), nil
	default:
		return nil, fmt.Errorf("harness: unknown policy %q", name)
	}
}

// MustPolicy is NewPolicy for callers with vetted names.
func (p *Platform) MustPolicy(name string) sim.Policy {
	pol, err := p.NewPolicy(name)
	if err != nil {
		panic(err)
	}
	return pol
}

func (p *Platform) trainServiceTimes() []float64 {
	ts := make([]float64, len(p.Dataset.Train))
	for i, s := range p.Dataset.Train {
		ts[i] = s.MeasuredMs
	}
	return ts
}

// PoolStats summarizes the pool's base service-time distribution.
func (p *Platform) PoolStats() (mean, p95, min, max float64) {
	mean, _ = stats.Mean(p.ServiceTimes)
	p95, _ = stats.Percentile(p.ServiceTimes, 95)
	min, _ = stats.Min(p.ServiceTimes)
	max, _ = stats.Max(p.ServiceTimes)
	return
}

// SampleQueries returns n pool queries drawn deterministically (for figure
// examples needing "some" queries).
func (p *Platform) SampleQueries(n int, seed int64) []sim.PreparedQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]sim.PreparedQuery, n)
	for i := range out {
		out[i] = p.Pool[rng.Intn(len(p.Pool))]
	}
	return out
}
