// Parallel experiment engine: the evaluation grids — (rps, policy) for the
// Fig. 10/11 sweep, (trace, policy) for Figs. 12–14, and the ablation /
// extension variant lists — are embarrassingly parallel, so this file fans
// their independent cells across a worker pool. Every cell writes only its
// own index of a pre-sized result slice and the cross-cell quantities
// (power saving vs the baseline at the same grid point) are computed during
// a serial, index-ordered assembly pass, so serial (workers == 1) and
// parallel runs produce byte-identical reports.
package harness

import (
	"gemini/internal/par"
	"gemini/internal/policy"
	"gemini/internal/sim"
	"gemini/internal/trace"
)

// DefaultWorkers returns the grid runner's default worker count: one worker
// per schedulable CPU.
func DefaultWorkers() int { return par.DefaultWorkers() }

// gridRun executes jobs 0..n-1 across at most `workers` goroutines via the
// shared par pool. Each job must write results only into its own per-index
// slot; workers <= 1 runs inline and is the serial reference path.
func gridRun(workers, n int, job func(i int)) { par.Run(workers, n, job) }

// RPSSweepWorkers runs the Fig. 10/11 measurement grid with the (rps, policy)
// cells fanned across the worker pool. Each cell regenerates its arrival
// trace and workload from the same seeds the serial path uses, so the
// returned grid is identical for any worker count.
func (p *Platform) RPSSweepWorkers(rpsList []float64, durationMs float64, workers int) *SweepData {
	if rpsList == nil {
		rpsList = []float64{20, 40, 60, 80, 100}
	}
	nPol := len(PolicyNames)
	type sweepSlot struct {
		cell SweepCell
		res  *sim.Result
	}
	slots := make([]sweepSlot, len(rpsList)*nPol)
	gridRun(workers, len(slots), func(k int) {
		i, pi := k/nPol, k%nPol
		rps, name := rpsList[i], PolicyNames[pi]
		tr := trace.GenFixedRPS(rps*p.Opt.ShardFraction, durationMs, p.Opt.Seed+20+int64(i))
		wl := p.Workload(tr.Arrivals, durationMs, p.Opt.Seed+30+int64(i))
		cfg := p.SimConfig()
		if name == "Baseline" {
			cfg.PredictOverheadMs = 0
		}
		res := sim.Run(cfg, wl, p.MustPolicy(name))
		slots[k] = sweepSlot{
			res: res,
			cell: SweepCell{
				Policy:       name,
				RPS:          rps,
				SocketPowerW: res.SocketPowerW(p.Power),
				TailMs:       res.TailLatencyMs(95),
				ViolationPct: res.ViolationRate() * 100,
				DropPct:      res.DropRate() * 100,
			},
		}
	})
	// Index-ordered assembly: savings against the baseline at the same RPS.
	data := &SweepData{RPS: rpsList, Cells: map[string][]SweepCell{}}
	for i := range rpsList {
		base := slots[i*nPol].res // PolicyNames[0] is Baseline
		for pi, name := range PolicyNames {
			slot := slots[i*nPol+pi]
			slot.cell.SavingFrac = slot.res.PowerSavingVs(base, p.Power)
			data.Cells[name] = append(data.Cells[name], slot.cell)
		}
	}
	return data
}

// TraceRunsWorkers runs the Fig. 12–14 measurement grid with the
// (trace, policy) cells fanned across the worker pool; results are identical
// to the serial path for any worker count.
func (p *Platform) TraceRunsWorkers(traces, policies []string, avgRPS, durationMs float64, workers int) *TraceData {
	// Baseline always runs (first, in the serial order) for the saving
	// reference.
	ordered := make([]string, 0, len(policies)+1)
	seen := map[string]bool{}
	for _, name := range append([]string{"Baseline"}, policies...) {
		if !seen[name] {
			seen[name] = true
			ordered = append(ordered, name)
		}
	}
	nPol := len(ordered)
	type traceSlot struct {
		cell *TraceCell
		res  *sim.Result
	}
	slots := make([]traceSlot, len(traces)*nPol)
	gridRun(workers, len(slots), func(k int) {
		ti, pi := k/nPol, k%nPol
		trName, name := traces[ti], ordered[pi]
		tr := trace.GenEvalTrace(trName, avgRPS*p.Opt.ShardFraction, durationMs, p.Opt.Seed+40+int64(ti))
		wl := p.Workload(tr.Arrivals, durationMs, p.Opt.Seed+50+int64(ti))
		cfg := p.SimConfig()
		cfg.PowerSeriesResMs = 10_000 // 10 s buckets for the timeline
		if name == "Baseline" {
			cfg.PredictOverheadMs = 0
		}
		res := sim.Run(cfg, wl, p.MustPolicy(name))
		slots[k] = traceSlot{
			res: res,
			cell: &TraceCell{
				Trace:        trName,
				Policy:       name,
				SocketPowerW: res.SocketPowerW(p.Power),
				TailMs:       res.TailLatencyMs(95),
				ViolationPct: res.ViolationRate() * 100,
				DropPct:      res.DropRate() * 100,
				PowerSeriesW: res.SocketSeriesW(p.Power),
				Latencies:    res.Latencies,
			},
		}
	})
	data := &TraceData{Traces: traces, Policies: policies, Cells: map[string]map[string]*TraceCell{}}
	for ti, trName := range traces {
		data.Cells[trName] = map[string]*TraceCell{}
		base := slots[ti*nPol].res // ordered[0] is Baseline
		for pi, name := range ordered {
			slot := slots[ti*nPol+pi]
			slot.cell.SavingFrac = slot.res.PowerSavingVs(base, p.Power)
			data.Cells[trName][name] = slot.cell
		}
	}
	return data
}

// variantCell is one ablation/extension grid cell: a policy (plus its sim
// config and workload parameters) to run and measure.
type variantCell struct {
	name     string
	pol      sim.Policy
	cfg      sim.Config
	budgetMs float64 // 0 = platform default
	// baseIdx is the index of this cell's saving reference within the cell
	// list (-1 = no reference; SavingFrac stays 0 unless it is its own ref,
	// which yields exactly 0 like the serial code did).
	baseIdx int
	// hidden cells run (typically as a saving reference) but are not
	// emitted into the AblationData.
	hidden bool
}

// runVariantCells executes the cells across the worker pool (same seeds and
// per-cell workloads as the serial loops used) and assembles AblationCells in
// input order, computing savings against each cell's reference result.
func (p *Platform) runVariantCells(cells []variantCell, rps, durationMs float64, workers int) (*AblationData, []*sim.Result) {
	results := make([]*sim.Result, len(cells))
	gridRun(workers, len(cells), func(i int) {
		c := cells[i]
		budget := c.budgetMs
		if budget == 0 {
			budget = p.Opt.BudgetMs
		}
		tr := trace.GenFixedRPS(rps*p.Opt.ShardFraction, durationMs, p.Opt.Seed+60)
		wl := p.WorkloadBudget(tr.Arrivals, durationMs, p.Opt.Seed+61, budget)
		results[i] = sim.Run(c.cfg, wl, c.pol)
	})
	data := &AblationData{}
	for i, c := range cells {
		if c.hidden {
			continue
		}
		res := results[i]
		cell := AblationCell{
			Variant:      c.name,
			SocketPowerW: res.SocketPowerW(p.Power),
			TailMs:       res.TailLatencyMs(95),
			ViolationPct: res.ViolationRate() * 100,
			Transitions:  res.Transitions,
		}
		if c.baseIdx >= 0 {
			cell.SavingFrac = res.PowerSavingVs(results[c.baseIdx], p.Power)
		}
		data.Cells = append(data.Cells, cell)
	}
	return data, results
}

// baselineCell builds the no-management reference cell shared by most
// ablations (the baseline never pays prediction overhead).
func (p *Platform) baselineCell(name string) variantCell {
	cfg := p.SimConfig()
	cfg.PredictOverheadMs = 0
	return variantCell{name: name, pol: policy.Baseline{}, cfg: cfg, baseIdx: -1}
}
