package harness

import (
	"fmt"

	"gemini/internal/policy"
	"gemini/internal/predictor"
	"gemini/internal/sim"
	"gemini/internal/trace"
)

// AblationCell is one ablation measurement.
type AblationCell struct {
	Variant      string
	SocketPowerW float64
	SavingFrac   float64
	TailMs       float64
	ViolationPct float64
	Transitions  int
}

// AblationData carries one ablation study.
type AblationData struct {
	Name  string
	Cells []AblationCell
}

// geminiVariant builds a Gemini policy with ablation knobs applied.
func (p *Platform) geminiVariant(mod func(*policy.Gemini)) *policy.Gemini {
	g := policy.NewGemini(p.Classifier, p.ErrPred)
	if mod != nil {
		mod(g)
	}
	return g
}

// runAblationCell executes one 200 s fixed-RPS run.
func (p *Platform) runAblationCell(name string, pol sim.Policy, cfg sim.Config, base *sim.Result, rps, durationMs float64) (AblationCell, *sim.Result) {
	tr := trace.GenFixedRPS(rps*p.Opt.ShardFraction, durationMs, p.Opt.Seed+60)
	wl := p.Workload(tr.Arrivals, durationMs, p.Opt.Seed+61)
	res := sim.Run(cfg, wl, pol)
	cell := AblationCell{
		Variant:      name,
		SocketPowerW: res.SocketPowerW(p.Power),
		TailMs:       res.TailLatencyMs(95),
		ViolationPct: res.ViolationRate() * 100,
		Transitions:  res.Transitions,
	}
	if base != nil {
		cell.SavingFrac = res.PowerSavingVs(base, p.Power)
	}
	return cell, res
}

// AblationBoost quantifies the second DVFS step: full Gemini vs one-step
// (no boost) vs no error slack (ZeroError) at a busy fixed load.
func (p *Platform) AblationBoost(rps, durationMs float64) (*Report, *AblationData) {
	cfg := p.SimConfig()
	baseCfg := cfg
	baseCfg.PredictOverheadMs = 0
	baseCell, baseRes := p.runAblationCell("Baseline", policy.Baseline{}, baseCfg, nil, rps, durationMs)

	data := &AblationData{Name: "boost", Cells: []AblationCell{baseCell}}
	variants := []struct {
		name string
		pol  sim.Policy
	}{
		{"Gemini (two-step)", p.geminiVariant(nil)},
		{"Gemini no-boost", p.geminiVariant(func(g *policy.Gemini) { g.DisableBoost = true })},
		{"Gemini no-slack", policy.NewGemini(p.Classifier, predictor.ZeroError{})},
	}
	for _, v := range variants {
		cell, _ := p.runAblationCell(v.name, v.pol, cfg, baseRes, rps, durationMs)
		data.Cells = append(data.Cells, cell)
	}
	r := ablationReport("Ablation — value of the boost step and the error slack", data)
	r.Note("no-boost saves slightly more power but loses the deadline guarantee; no-slack boosts too late")
	return r, data
}

// AblationGrouping quantifies the §III-C grouping rule: shared group
// frequency vs per-request re-planning.
func (p *Platform) AblationGrouping(rps, durationMs float64) (*Report, *AblationData) {
	cfg := p.SimConfig()
	baseCfg := cfg
	baseCfg.PredictOverheadMs = 0
	baseCell, baseRes := p.runAblationCell("Baseline", policy.Baseline{}, baseCfg, nil, rps, durationMs)
	data := &AblationData{Name: "grouping", Cells: []AblationCell{baseCell}}
	for _, v := range []struct {
		name string
		pol  sim.Policy
	}{
		{"Gemini (grouped)", p.geminiVariant(nil)},
		{"Gemini per-request", p.geminiVariant(func(g *policy.Gemini) { g.NoGrouping = true })},
	} {
		cell, _ := p.runAblationCell(v.name, v.pol, cfg, baseRes, rps, durationMs)
		data.Cells = append(data.Cells, cell)
	}
	r := ablationReport("Ablation — group frequency vs per-request re-planning", data)
	r.Note("grouping trades a few re-plans for fewer frequency transitions (Tdvfs stalls)")
	return r, data
}

// AblationTdvfs sweeps the transition-stall cost.
func (p *Platform) AblationTdvfs(rps, durationMs float64) (*Report, *AblationData) {
	data := &AblationData{Name: "tdvfs"}
	for _, td := range []float64{0, 0.05, 0.2, 0.5} {
		cfg := p.SimConfig()
		cfg.TdvfsMs = td
		g := p.geminiVariant(nil)
		g.Params.TdvfsMs = td
		cell, _ := p.runAblationCell(fmt.Sprintf("Tdvfs=%.2fms", td), g, cfg, nil, rps, durationMs)
		data.Cells = append(data.Cells, cell)
	}
	r := ablationReport("Ablation — Tdvfs transition-stall sensitivity", data)
	return r, data
}

// AblationBudget sweeps the tail latency budget.
func (p *Platform) AblationBudget(rps, durationMs float64) (*Report, *AblationData) {
	data := &AblationData{Name: "budget"}
	saved := p.Opt.BudgetMs
	defer func() { p.Opt.BudgetMs = saved }()
	for _, budget := range []float64{25, 30, 40, 50, 60} {
		p.Opt.BudgetMs = budget
		cfg := p.SimConfig()
		baseCfg := cfg
		baseCfg.PredictOverheadMs = 0
		_, baseRes := p.runAblationCell("base", policy.Baseline{}, baseCfg, nil, rps, durationMs)
		cell, _ := p.runAblationCell(fmt.Sprintf("budget=%.0fms", budget), p.geminiVariant(nil), cfg, baseRes, rps, durationMs)
		data.Cells = append(data.Cells, cell)
	}
	r := ablationReport("Ablation — latency budget sensitivity (Gemini saving vs baseline)", data)
	r.Note("looser budgets leave more slack to harvest; tight budgets force near-max frequencies")
	return r, data
}

// AblationSleep compares Gemini with and without the C-state extension at a
// light load where idle time dominates.
func (p *Platform) AblationSleep(rps, durationMs float64) (*Report, *AblationData) {
	cfg := p.SimConfig()
	baseCfg := cfg
	baseCfg.PredictOverheadMs = 0
	baseCell, baseRes := p.runAblationCell("Baseline", policy.Baseline{}, baseCfg, nil, rps, durationMs)
	data := &AblationData{Name: "sleep", Cells: []AblationCell{baseCell}}
	for _, v := range []struct {
		name string
		pol  sim.Policy
	}{
		{"Gemini", p.geminiVariant(nil)},
		{"Gemini+Sleep", policy.NewSleepWrapper(p.geminiVariant(nil))},
	} {
		cell, _ := p.runAblationCell(v.name, v.pol, cfg, baseRes, rps, durationMs)
		data.Cells = append(data.Cells, cell)
	}
	r := ablationReport("Extension — sleep states on top of Gemini (light load)", data)
	r.Note("§I: the two-step technique composes with C-states; idle residency dominates at light load")
	return r, data
}

func ablationReport(title string, data *AblationData) *Report {
	r := &Report{
		Title:  title,
		Header: []string{"Variant", "Power (W)", "Saving", "p95 (ms)", "Violations", "Transitions"},
	}
	for _, c := range data.Cells {
		r.AddRow(c.Variant, f1(c.SocketPowerW), pct(c.SavingFrac), f2(c.TailMs),
			fmt.Sprintf("%.2f%%", c.ViolationPct), fmt.Sprintf("%d", c.Transitions))
	}
	return r
}

// ExtensionGovernors compares Gemini against the deadline-blind Linux-style
// cpufreq governors and the remaining extension baselines at a fixed load —
// context for Table I beyond the paper's three compared schemes.
func (p *Platform) ExtensionGovernors(rps, durationMs float64) (*Report, *AblationData) {
	cfg := p.SimConfig()
	baseCfg := cfg
	baseCfg.PredictOverheadMs = 0
	baseCell, baseRes := p.runAblationCell("Baseline", policy.Baseline{}, baseCfg, nil, rps, durationMs)
	data := &AblationData{Name: "governors", Cells: []AblationCell{baseCell}}
	for _, name := range []string{"ondemand", "conservative", "EETL", "PACE-oracle", "Gemini"} {
		pol := p.MustPolicy(name)
		c := cfg
		if name != "Gemini" {
			c.PredictOverheadMs = 0 // only Gemini pays NN inference
		}
		cell, _ := p.runAblationCell(name, pol, c, baseRes, rps, durationMs)
		data.Cells = append(data.Cells, cell)
	}
	r := ablationReport("Extension — deadline-blind governors vs latency-aware policies", data)
	r.Note("ondemand/conservative track utilization, not deadlines: similar power, worse tails")
	return r, data
}
