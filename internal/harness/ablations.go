package harness

import (
	"fmt"

	"gemini/internal/policy"
	"gemini/internal/predictor"
)

// AblationCell is one ablation measurement.
type AblationCell struct {
	Variant      string
	SocketPowerW float64
	SavingFrac   float64
	TailMs       float64
	ViolationPct float64
	Transitions  int
}

// AblationData carries one ablation study.
type AblationData struct {
	Name  string
	Cells []AblationCell
}

// geminiVariant builds a Gemini policy with ablation knobs applied. The
// variants keep the platform's shared NN predictors, so they all consume the
// workload's precomputed prediction table.
func (p *Platform) geminiVariant(mod func(*policy.Gemini)) *policy.Gemini {
	g := policy.NewGemini(p.Classifier, p.ErrPred)
	if mod != nil {
		mod(g)
	}
	return p.markCached(g)
}

// AblationBoost quantifies the second DVFS step: full Gemini vs one-step
// (no boost) vs no error slack (ZeroError) at a busy fixed load.
func (p *Platform) AblationBoost(rps, durationMs float64) (*Report, *AblationData) {
	return p.AblationBoostWorkers(rps, durationMs, 1)
}

// AblationBoostWorkers is AblationBoost with the variant cells fanned across
// the worker pool.
func (p *Platform) AblationBoostWorkers(rps, durationMs float64, workers int) (*Report, *AblationData) {
	cfg := p.SimConfig()
	cells := []variantCell{
		p.baselineCell("Baseline"),
		{name: "Gemini (two-step)", pol: p.geminiVariant(nil), cfg: cfg, baseIdx: 0},
		{name: "Gemini no-boost", pol: p.geminiVariant(func(g *policy.Gemini) { g.DisableBoost = true }), cfg: cfg, baseIdx: 0},
		{name: "Gemini no-slack", pol: p.markCached(policy.NewGemini(p.Classifier, predictor.ZeroError{})), cfg: cfg, baseIdx: 0},
	}
	data, _ := p.runVariantCells(cells, rps, durationMs, workers)
	data.Name = "boost"
	r := ablationReport("Ablation — value of the boost step and the error slack", data)
	r.Note("no-boost saves slightly more power but loses the deadline guarantee; no-slack boosts too late")
	return r, data
}

// AblationGrouping quantifies the §III-C grouping rule: shared group
// frequency vs per-request re-planning.
func (p *Platform) AblationGrouping(rps, durationMs float64) (*Report, *AblationData) {
	return p.AblationGroupingWorkers(rps, durationMs, 1)
}

// AblationGroupingWorkers is AblationGrouping with the variant cells fanned
// across the worker pool.
func (p *Platform) AblationGroupingWorkers(rps, durationMs float64, workers int) (*Report, *AblationData) {
	cfg := p.SimConfig()
	cells := []variantCell{
		p.baselineCell("Baseline"),
		{name: "Gemini (grouped)", pol: p.geminiVariant(nil), cfg: cfg, baseIdx: 0},
		{name: "Gemini per-request", pol: p.geminiVariant(func(g *policy.Gemini) { g.NoGrouping = true }), cfg: cfg, baseIdx: 0},
	}
	data, _ := p.runVariantCells(cells, rps, durationMs, workers)
	data.Name = "grouping"
	r := ablationReport("Ablation — group frequency vs per-request re-planning", data)
	r.Note("grouping trades a few re-plans for fewer frequency transitions (Tdvfs stalls)")
	return r, data
}

// AblationTdvfs sweeps the transition-stall cost.
func (p *Platform) AblationTdvfs(rps, durationMs float64) (*Report, *AblationData) {
	return p.AblationTdvfsWorkers(rps, durationMs, 1)
}

// AblationTdvfsWorkers is AblationTdvfs with the sweep cells fanned across
// the worker pool.
func (p *Platform) AblationTdvfsWorkers(rps, durationMs float64, workers int) (*Report, *AblationData) {
	var cells []variantCell
	for _, td := range []float64{0, 0.05, 0.2, 0.5} {
		cfg := p.SimConfig()
		cfg.TdvfsMs = td
		g := p.geminiVariant(func(g *policy.Gemini) { g.Params.TdvfsMs = td })
		cells = append(cells, variantCell{
			name: fmt.Sprintf("Tdvfs=%.2fms", td), pol: g, cfg: cfg, baseIdx: -1,
		})
	}
	data, _ := p.runVariantCells(cells, rps, durationMs, workers)
	data.Name = "tdvfs"
	r := ablationReport("Ablation — Tdvfs transition-stall sensitivity", data)
	return r, data
}

// AblationBudget sweeps the tail latency budget.
func (p *Platform) AblationBudget(rps, durationMs float64) (*Report, *AblationData) {
	return p.AblationBudgetWorkers(rps, durationMs, 1)
}

// AblationBudgetWorkers is AblationBudget with the (budget, policy) cells
// fanned across the worker pool. Each budget point carries its own hidden
// baseline run as the saving reference, exactly like the serial loop did.
func (p *Platform) AblationBudgetWorkers(rps, durationMs float64, workers int) (*Report, *AblationData) {
	cfg := p.SimConfig()
	var cells []variantCell
	for _, budget := range []float64{25, 30, 40, 50, 60} {
		base := p.baselineCell("base")
		base.budgetMs = budget
		base.hidden = true
		cells = append(cells, base, variantCell{
			name: fmt.Sprintf("budget=%.0fms", budget), pol: p.geminiVariant(nil),
			cfg: cfg, budgetMs: budget, baseIdx: len(cells),
		})
	}
	data, _ := p.runVariantCells(cells, rps, durationMs, workers)
	data.Name = "budget"
	r := ablationReport("Ablation — latency budget sensitivity (Gemini saving vs baseline)", data)
	r.Note("looser budgets leave more slack to harvest; tight budgets force near-max frequencies")
	return r, data
}

// AblationSleep compares Gemini with and without the C-state extension at a
// light load where idle time dominates.
func (p *Platform) AblationSleep(rps, durationMs float64) (*Report, *AblationData) {
	return p.AblationSleepWorkers(rps, durationMs, 1)
}

// AblationSleepWorkers is AblationSleep with the variant cells fanned across
// the worker pool.
func (p *Platform) AblationSleepWorkers(rps, durationMs float64, workers int) (*Report, *AblationData) {
	cfg := p.SimConfig()
	cells := []variantCell{
		p.baselineCell("Baseline"),
		{name: "Gemini", pol: p.geminiVariant(nil), cfg: cfg, baseIdx: 0},
		{name: "Gemini+Sleep", pol: policy.NewSleepWrapper(p.geminiVariant(nil)), cfg: cfg, baseIdx: 0},
	}
	data, _ := p.runVariantCells(cells, rps, durationMs, workers)
	data.Name = "sleep"
	r := ablationReport("Extension — sleep states on top of Gemini (light load)", data)
	r.Note("§I: the two-step technique composes with C-states; idle residency dominates at light load")
	return r, data
}

func ablationReport(title string, data *AblationData) *Report {
	r := &Report{
		Title:  title,
		Header: []string{"Variant", "Power (W)", "Saving", "p95 (ms)", "Violations", "Transitions"},
	}
	for _, c := range data.Cells {
		r.AddRow(c.Variant, f1(c.SocketPowerW), pct(c.SavingFrac), f2(c.TailMs),
			fmt.Sprintf("%.2f%%", c.ViolationPct), fmt.Sprintf("%d", c.Transitions))
	}
	return r
}

// ExtensionGovernors compares Gemini against the deadline-blind Linux-style
// cpufreq governors and the remaining extension baselines at a fixed load —
// context for Table I beyond the paper's three compared schemes.
func (p *Platform) ExtensionGovernors(rps, durationMs float64) (*Report, *AblationData) {
	return p.ExtensionGovernorsWorkers(rps, durationMs, 1)
}

// ExtensionGovernorsWorkers is ExtensionGovernors with the policy cells
// fanned across the worker pool.
func (p *Platform) ExtensionGovernorsWorkers(rps, durationMs float64, workers int) (*Report, *AblationData) {
	cfg := p.SimConfig()
	cells := []variantCell{p.baselineCell("Baseline")}
	for _, name := range []string{"ondemand", "conservative", "EETL", "PACE-oracle", "Gemini"} {
		c := cfg
		if name != "Gemini" {
			c.PredictOverheadMs = 0 // only Gemini pays NN inference
		}
		cells = append(cells, variantCell{name: name, pol: p.MustPolicy(name), cfg: c, baseIdx: 0})
	}
	data, _ := p.runVariantCells(cells, rps, durationMs, workers)
	data.Name = "governors"
	r := ablationReport("Extension — deadline-blind governors vs latency-aware policies", data)
	r.Note("ondemand/conservative track utilization, not deadlines: similar power, worse tails")
	return r, data
}
