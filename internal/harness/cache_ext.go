package harness

import (
	"fmt"

	"gemini/internal/search"
	"gemini/internal/sim"
	"gemini/internal/trace"
)

// ExtensionCache measures how an ISN-side result cache (paper ref [22])
// composes with Gemini: cache hits collapse to the engine's fixed lookup
// cost, thinning the effective load the DVFS policy must serve. The Zipf
// query stream makes hits frequent, so both the baseline and Gemini draw
// less power — and Gemini's saving persists on the misses.
func (p *Platform) ExtensionCache(rps, durationMs float64, cacheSize int) (*Report, *AblationData) {
	return p.ExtensionCacheWorkers(rps, durationMs, cacheSize, 1)
}

// ExtensionCacheWorkers is ExtensionCache with the four variant cells fanned
// across the worker pool. Each cell materializes its own workload from the
// shared seed (the cached cells then rewrite hits), so results are identical
// for any worker count.
func (p *Platform) ExtensionCacheWorkers(rps, durationMs float64, cacheSize, workers int) (*Report, *AblationData) {
	tr := trace.GenFixedRPS(rps*p.Opt.ShardFraction, durationMs, p.Opt.Seed+70)

	variants := []struct {
		name   string
		policy string
		cached bool
	}{
		{"Baseline", "Baseline", false},
		{"Baseline+cache", "Baseline", true},
		{"Gemini", "Gemini", false},
		{"Gemini+cache", "Gemini", true},
	}
	type cacheSlot struct {
		res     *sim.Result
		hitRate float64
	}
	slots := make([]cacheSlot, len(variants))
	gridRun(workers, len(variants), func(i int) {
		v := variants[i]
		wl := p.Workload(tr.Arrivals, durationMs, p.Opt.Seed+71)
		hitRate := 0.0
		if v.cached {
			hitRate = p.applyCache(wl, cacheSize)
		}
		cfg := p.SimConfig()
		if v.policy == "Baseline" {
			cfg.PredictOverheadMs = 0
		}
		slots[i] = cacheSlot{res: sim.Run(cfg, wl, p.MustPolicy(v.policy)), hitRate: hitRate}
	})

	data := &AblationData{Name: "cache"}
	r := &Report{
		Title:  "Extension — ISN result cache composed with DVFS policies",
		Header: []string{"Variant", "Power (W)", "Saving", "p95 (ms)", "Violations", "Transitions"},
	}
	base := slots[0].res
	for i, variant := range variants {
		res := slots[i].res
		cell := AblationCell{
			Variant:      variant.name,
			SocketPowerW: res.SocketPowerW(p.Power),
			SavingFrac:   res.PowerSavingVs(base, p.Power),
			TailMs:       res.TailLatencyMs(95),
			ViolationPct: res.ViolationRate() * 100,
			Transitions:  res.Transitions,
		}
		data.Cells = append(data.Cells, cell)
		r.AddRow(variant.name, f1(cell.SocketPowerW), pct(cell.SavingFrac),
			f2(cell.TailMs), fmt.Sprintf("%.2f%%", cell.ViolationPct), fmt.Sprintf("%d", cell.Transitions))
		if variant.cached {
			r.Note("%s: cache hit rate %.0f%% (capacity %d, Zipf query stream)", variant.name, slots[i].hitRate*100, cacheSize)
		}
	}
	return r, data
}

// applyCache replays the workload's query sequence through an LRU of the
// given capacity and rewrites hits to the cache-lookup cost, returning the
// hit rate. The request sequence matches the uncached run query-for-query
// (same workload seed), so the comparison isolates the cache's effect.
func (p *Platform) applyCache(wl *sim.Workload, capacity int) float64 {
	lookupWork := p.Cost.WorkFor(search.CacheLookupStats)
	hits := 0
	seen := newLRUSet(capacity)
	for _, req := range wl.Requests {
		if seen.touch(req.Query.Text) {
			hits++
			req.BaseWork = lookupWork
			req.WorkTotal = lookupWork
			// A hit is trivially predictable: zeroed features make the NN
			// place it in the smallest service-time bucket.
			req.Features = search.FeatureVector{}
			// The precomputed prediction table was built from the original
			// features; refresh the rewritten request's entry so cached and
			// live prediction paths stay bit-identical.
			if wl.Preds != nil {
				pr := p.predictPair(req.Features)
				wl.Preds.ServiceMs[req.ID], wl.Preds.ErrMs[req.ID] = pr.svc, pr.err
			}
		}
	}
	if len(wl.Requests) == 0 {
		return 0
	}
	return float64(hits) / float64(len(wl.Requests))
}

// lruSet is a tiny LRU membership set for workload rewriting.
type lruSet struct {
	cap   int
	order []string
	set   map[string]bool
}

func newLRUSet(capacity int) *lruSet {
	return &lruSet{cap: capacity, set: make(map[string]bool, capacity)}
}

// touch reports whether key was present, inserting/refreshing it either way.
func (l *lruSet) touch(key string) bool {
	if l.set[key] {
		for i, k := range l.order {
			if k == key {
				l.order = append(append(append([]string(nil), l.order[:i]...), l.order[i+1:]...), key)
				break
			}
		}
		return true
	}
	l.set[key] = true
	l.order = append(l.order, key)
	if len(l.order) > l.cap {
		evict := l.order[0]
		l.order = l.order[1:]
		delete(l.set, evict)
	}
	return false
}
