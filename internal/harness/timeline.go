package harness

import (
	"fmt"
	"strings"

	"gemini/internal/sim"
	"gemini/internal/stats"
	"gemini/internal/trace"
)

// Fig2 renders the executed two-step frequency plan for a handful of
// requests — paper Fig. 2's picture, measured: the initial frequency from
// the predicted service time, then the boost to maximum at the computed
// time T. The timeline is drawn as ASCII frequency bars per segment.
func (p *Platform) Fig2(nRequests int) *Report {
	if nRequests <= 0 {
		nRequests = 4
	}
	// Sparse arrivals so each request's plan is visible in isolation.
	arrivals := make([]float64, nRequests)
	for i := range arrivals {
		arrivals[i] = float64(i) * 100
	}
	durationMs := float64(nRequests)*100 + 100
	wl := p.Workload(arrivals, durationMs, p.Opt.Seed+80)

	cfg := p.SimConfig()
	cfg.RecordFreqTrace = true
	res := sim.Run(cfg, wl, p.MustPolicy("Gemini"))

	r := &Report{Title: "Fig. 2 — executed two-step DVFS plans (Gemini, isolated requests)"}
	r.Header = []string{"t0 (ms)", "t1 (ms)", "GHz", "state", "plan"}
	maxBar := 24
	for _, seg := range res.FreqTrace {
		if !seg.Busy && seg.DurationMs() < 1 {
			continue
		}
		state := "idle"
		if seg.Busy {
			state = "busy"
		}
		bar := strings.Repeat("#", int(float64(seg.Freq)/2.7*float64(maxBar)))
		r.AddRow(f2(seg.StartMs), f2(seg.EndMs), f2(float64(seg.Freq)), state, bar)
	}
	for i, req := range wl.Requests {
		r.Note("R%d: predicted %.1f ms (E* %+.1f), actual %.1f ms, latency %.1f ms, violated=%v",
			i+1, req.PredictedMs, req.PredErrMs,
			float64(req.WorkTotal)/2.7, req.LatencyMs(), req.Violated())
	}
	r.Note("shape: low first step sized by S*, boost to 2.7 GHz at T when the error slack demands it (eqs. 5, 7)")
	return r
}

// ExtensionAggregate measures the end-to-end partition-aggregate tail the
// paper's introduction motivates: every query is broadcast to nISNs shards
// (independent per-shard service draws), and the search result is gated by
// the slowest shard. ISN-level Gemini must hold the end-to-end tail at the
// budget while saving power on every shard.
func (p *Platform) ExtensionAggregate(nISNs int, rps, durationMs float64) (*Report, *AblationData) {
	return p.ExtensionAggregateWorkers(nISNs, rps, durationMs, 1)
}

// ExtensionAggregateWorkers is ExtensionAggregate with the (policy, shard)
// simulations fanned across the worker pool; the per-policy aggregation walks
// shards in index order, so results are identical for any worker count.
func (p *Platform) ExtensionAggregateWorkers(nISNs int, rps, durationMs float64, workers int) (*Report, *AblationData) {
	if nISNs < 2 {
		nISNs = 4
	}
	tr := trace.GenFixedRPS(rps*p.Opt.ShardFraction, durationMs, p.Opt.Seed+81)

	// Each ISN serves the same arrivals with its own jitter draws; every
	// (policy, shard) pair is an independent simulation.
	names := []string{"Baseline", "Gemini"}
	type shardSlot struct {
		res  *sim.Result
		lats []float64 // per-request latency, -1 = dropped
	}
	slots := make([]shardSlot, len(names)*nISNs)
	gridRun(workers, len(slots), func(k int) {
		ni, shard := k/nISNs, k%nISNs
		name := names[ni]
		wl := p.Workload(tr.Arrivals, durationMs, p.Opt.Seed+90+int64(shard))
		cfg := p.SimConfig()
		if name == "Baseline" {
			cfg.PredictOverheadMs = 0
		}
		res := sim.Run(cfg, wl, p.MustPolicy(name))
		lats := make([]float64, len(wl.Requests))
		for i, req := range wl.Requests {
			if req.Dropped {
				lats[i] = -1 // excluded below: the aggregator ignored it
			} else {
				lats[i] = req.LatencyMs()
			}
		}
		slots[k] = shardSlot{res: res, lats: lats}
	})

	data := &AblationData{Name: "aggregate"}
	r := &Report{
		Title:  "Extension — end-to-end aggregate latency over N ISNs (slowest shard gates)",
		Header: []string{"Policy", "ISN p95 (ms)", "Aggregate p95 (ms)", "Aggregate p99", "Power/ISN (W)"},
	}
	for ni, name := range names {
		perShard := make([][]float64, 0, nISNs) // per-shard latency per request index
		var isnTail, corePow float64
		var dropped bool
		for shard := 0; shard < nISNs; shard++ {
			slot := slots[ni*nISNs+shard]
			isnTail += slot.res.TailLatencyMs(95) / float64(nISNs)
			corePow += slot.res.AvgCorePowW / float64(nISNs)
			for _, l := range slot.lats {
				if l < 0 {
					dropped = true
					break
				}
			}
			perShard = append(perShard, slot.lats)
		}
		// Aggregate latency per request: max over shards that answered.
		var agg []float64
		for i := range tr.Arrivals {
			worst := 0.0
			answered := false
			for shard := 0; shard < nISNs; shard++ {
				if l := perShard[shard][i]; l >= 0 {
					answered = true
					if l > worst {
						worst = l
					}
				}
			}
			if answered {
				agg = append(agg, worst)
			}
		}
		p95, _ := stats.Percentile(agg, 95)
		p99, _ := stats.Percentile(agg, 99)
		r.AddRow(name, f2(isnTail), f2(p95), f2(p99), f2(corePow))
		data.Cells = append(data.Cells, AblationCell{
			Variant: name, SocketPowerW: corePow, TailMs: p95,
		})
		if dropped {
			r.Note("%s: some shards dropped infeasible requests (the aggregator ignores stragglers)", name)
		}
	}
	r.Note("the aggregate tail exceeds any single ISN's (max over %d draws) — the paper's", nISNs)
	r.Note(fmt.Sprintf("motivation for per-ISN deadlines: Gemini holds all %d shards near the budget", nISNs))
	return r, data
}
