package harness

import (
	"fmt"
	"strings"
)

// Report is a printable experiment result: a title, free-form preamble
// lines, and an aligned table.
type Report struct {
	Title    string
	Preamble []string
	Header   []string
	Rows     [][]string
}

// AddRow appends a formatted table row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
}

// Note appends a preamble line.
func (r *Report) Note(format string, args ...any) {
	r.Preamble = append(r.Preamble, fmt.Sprintf(format, args...))
}

// String renders the report with aligned columns.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("== " + r.Title + " ==\n")
	for _, l := range r.Preamble {
		b.WriteString(l + "\n")
	}
	if len(r.Header) == 0 && len(r.Rows) == 0 {
		return b.String()
	}
	widths := make([]int, len(r.Header))
	measure := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(r.Header)
	for _, row := range r.Rows {
		measure(row)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if len(r.Header) > 0 {
		writeRow(r.Header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total) + "\n")
	}
	for _, row := range r.Rows {
		writeRow(row)
	}
	return b.String()
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// pct formats a fraction as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
