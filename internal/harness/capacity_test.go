package harness

import (
	"strings"
	"testing"
)

// TestCapacityReportWorkersIdentical extends the -workers contract to the
// topology sweep: the capacity report renders byte-identically for any
// worker count.
func TestCapacityReportWorkersIdentical(t *testing.T) {
	p := plat(t)
	spec := CapacitySpec{
		Shards:     2,
		Replicas:   []int{1, 2},
		EngineRPS:  []float64{40},
		CapsW:      []float64{0, 14},
		DurationMs: 2000,
		Seed:       5,
	}
	serial := p.CapacityReport(spec, 1).String()
	sharded := p.CapacityReport(spec, 4).String()
	if serial != sharded {
		t.Fatalf("capacity report differs between serial and sharded runs:\n--- serial\n%s\n--- sharded\n%s", serial, sharded)
	}
	if !strings.Contains(serial, "p99 ms") || !strings.Contains(serial, "throttles") {
		t.Fatalf("capacity report missing columns:\n%s", serial)
	}
	// 2 replicas × 1 rps × 2 caps = 4 rows.
	lines := strings.Count(serial, "\n")
	if lines < 7 {
		t.Fatalf("capacity report too short:\n%s", serial)
	}
}

func TestCapacityReportDefaults(t *testing.T) {
	p := plat(t)
	rep := p.CapacityReport(CapacitySpec{Shards: 1, Replicas: []int{1}, EngineRPS: []float64{30}, DurationMs: 1500}, 2)
	if len(rep.Rows) != 1 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	if rep.Rows[0][2] != "-" {
		t.Fatalf("uncapped cap cell = %q, want -", rep.Rows[0][2])
	}
}
