package harness

import (
	"fmt"

	"gemini/internal/sim"
	"gemini/internal/trace"
)

// ClusterReport runs the paper's §V multi-core plan — the least-expected-work
// broker over per-core queues, one policy instance per core — for every
// scheme of the Fig. 10/11 sweep, and tabulates cluster-level quality and
// power. The offered load scales with the core count so each core sees the
// same per-ISN rate as the single-ISN experiments.
//
// workers shards the per-core simulations over OS threads via
// sim.RunClusterWorkers; the numbers are byte-identical for any worker count
// (TestClusterReportWorkersIdentical), so -workers is purely a wall-clock
// knob, exactly like the experiment grids.
func (p *Platform) ClusterReport(cores, workers int, engineRPS, durationMs float64) *Report {
	if cores < 1 {
		cores = 1
	}
	isnRPS := engineRPS * p.Opt.ShardFraction * float64(cores)
	tr := trace.GenFixedRPS(isnRPS, durationMs, 1)
	rep := &Report{
		Title:  "Multi-core cluster (§V broker)",
		Header: []string{"policy", "requests", "completed", "drop", "viol", "p95 ms", "socket W", "events"},
	}
	for _, name := range PolicyNames {
		wl := p.Workload(tr.Arrivals, durationMs, 2)
		cr := sim.RunClusterWorkers(p.SimConfig(), wl, cores, workers, func(int) sim.Policy {
			return p.MustPolicy(name)
		})
		rep.AddRow(name,
			fmt.Sprintf("%d", cr.Total), fmt.Sprintf("%d", cr.Completed),
			pct(float64(cr.Dropped)/float64(max(cr.Total, 1))),
			pct(cr.ViolationRate()),
			f2(cr.TailLatencyMs(95)),
			f2(cr.SocketPowerW(p.Power)),
			fmt.Sprintf("%d", cr.Events))
	}
	rep.Note("cores=%d, engine RPS=%.0f, duration=%.0f ms", cores, engineRPS, durationMs)
	return rep
}
