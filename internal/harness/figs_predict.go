package harness

import (
	"gemini/internal/predictor"
	"gemini/internal/stats"
)

// Fig6Data carries the feature-importance sweep.
type Fig6Data struct {
	Points []predictor.SweepPoint
}

// Fig6 reproduces the feature-addition sweep of Fig. 6: classifier accuracy
// (±1 ms) as Table II features are added one at a time in the figure's
// bottom-to-top order. The paper goes from 23% with the posting-list length
// alone to 89% with all features, with a few features hurting.
func (p *Platform) Fig6() (*Report, *Fig6Data) {
	pts := predictor.FeatureSweep(p.Dataset, p.Opt.NNConfig, nil)
	data := &Fig6Data{Points: pts}
	r := &Report{
		Title:  "Fig. 6 — prediction accuracy vs feature set",
		Header: []string{"+Feature", "Accuracy(±1ms)", "Δ"},
	}
	prev := 0.0
	for i, pt := range pts {
		delta := pt.Accuracy - prev
		mark := ""
		if i > 0 && delta < 0 {
			mark = " (hurts)"
		}
		r.AddRow(pt.Feature, pct(pt.Accuracy), f2(delta*100)+"pp"+mark)
		prev = pt.Accuracy
	}
	return r, data
}

// Fig7Data carries the model-comparison numbers.
type Fig7Data struct {
	Evals        []predictor.Eval
	AvgServiceMs float64
}

// Fig7 reproduces the model comparison of Fig. 7: prediction error rate and
// inference overhead for the linear classifier (paper: 73% / 64 µs), the NN
// regressor (24% / 66 µs, ±4 ms threshold) and the NN classifier (11% /
// 79 µs, ±1 ms), against the average request service time.
func (p *Platform) Fig7() (*Report, *Fig7Data) {
	lin := predictor.TrainLinear(p.Dataset.Train, p.Opt.NNConfig)
	reg := predictor.TrainRegressor(p.Dataset.Train, p.Opt.NNConfig)

	// The paper scores the regressor at a ±4 ms threshold and the
	// classifiers at ±1 ms; the regressor is additionally reported at ±1 ms
	// here because our simulated residuals are tighter than the testbed's,
	// which makes the ±4 ms row trivially easy (see EXPERIMENTS.md).
	evals := []predictor.Eval{
		predictor.Evaluate(lin, p.Dataset.Test, 1.0),
		predictor.Evaluate(reg, p.Dataset.Test, 4.0),
		predictor.Evaluate(reg, p.Dataset.Test, 1.0),
		predictor.Evaluate(p.Classifier, p.Dataset.Test, 1.0),
	}
	var times []float64
	for _, s := range p.Dataset.Test {
		times = append(times, s.MeasuredMs)
	}
	avg, _ := stats.Mean(times)
	data := &Fig7Data{Evals: evals, AvgServiceMs: avg}
	clfIdx := len(evals) - 1

	r := &Report{
		Title:  "Fig. 7 — prediction error and overhead per model",
		Header: []string{"Model", "Error rate", "Tol (ms)", "MAE (ms)", "Overhead (µs)"},
	}
	for _, e := range evals {
		r.AddRow(e.Model, pct(e.ErrorRate), f1(e.TolMs), f2(e.MAEMs), f1(e.OverheadUs))
	}
	r.Note("average request service time: %.0f µs (overhead is %.0fx smaller)",
		avg*1000, avg*1000/evals[clfIdx].OverheadUs)
	r.Note("paper shape: linear worst, NN classifier best; all overheads ≪ service time")
	return r, data
}

// Fig8Data carries the error-predictor evaluation.
type Fig8Data struct {
	Accuracy     float64 // ±1 ms accuracy of the error NN (paper: 85%)
	LatencyAcc   float64 // ±1 ms accuracy of the latency NN (paper: 89%)
	PosErrorFrac float64 // fraction of test samples underpredicted by >1 ms
	NegErrorFrac float64
}

// Fig8 reproduces Fig. 8: the share of requests with significant positive /
// negative prediction error (paper: ≈5.5% each) and the error predictor's
// accuracy (paper: 85%).
func (p *Platform) Fig8() (*Report, *Fig8Data) {
	data := &Fig8Data{
		Accuracy:   p.ErrPred.Accuracy(p.Dataset.Test, p.Classifier, 1.0),
		LatencyAcc: 1 - predictor.Evaluate(p.Classifier, p.Dataset.Test, 1.0).ErrorRate,
	}
	pos, neg := 0, 0
	for _, s := range p.Dataset.Test {
		e := p.Classifier.PredictMs(s.Features) - s.MeasuredMs
		if e > 1 {
			pos++
		}
		if e < -1 {
			neg++
		}
	}
	n := float64(len(p.Dataset.Test))
	data.PosErrorFrac = float64(pos) / n
	data.NegErrorFrac = float64(neg) / n

	r := &Report{Title: "Fig. 8 — error predictor"}
	r.Note("latency NN accuracy (±1ms): %s (paper: 89%%)", pct(data.LatencyAcc))
	r.Note("positive errors >1ms: %s, negative errors >1ms: %s (paper: ≈5.5%% each)",
		pct(data.PosErrorFrac), pct(data.NegErrorFrac))
	r.Note("error-predictor accuracy (±1ms on residuals): %s (paper: 85%%)", pct(data.Accuracy))
	return r, data
}
