package harness

import (
	"math/rand"
	"reflect"
	"testing"

	"gemini/internal/sim"
)

// TestPoliciesEngineEquivalent runs every paper policy under both event
// engines on a real platform workload and requires byte-identical results —
// the end-to-end counterpart of the sim package's differential tests, with
// the actual Gemini/Rubik/Pegasus control flows (timers, planned boosts,
// clears) driving the event queue.
func TestPoliciesEngineEquivalent(t *testing.T) {
	p := plat(t)
	rng := rand.New(rand.NewSource(11))
	arr := make([]float64, 0, 400)
	at := 0.0
	for i := 0; i < 400; i++ {
		at += rng.ExpFloat64() * 8 // ~125 QPS, enough queueing to matter
		arr = append(arr, at)
	}
	dur := at + 100

	for _, name := range PolicyNames {
		run := func(engine sim.Engine) *sim.Result {
			cfg := p.SimConfig()
			cfg.Engine = engine
			cfg.RecordFreqTrace = true
			wl := p.Workload(arr, dur, 5)
			return sim.Run(cfg, wl, p.MustPolicy(name))
		}
		lin := run(sim.EngineLinear)
		cal := run(sim.EngineCalendar)
		if !reflect.DeepEqual(lin, cal) {
			t.Errorf("%s: engines diverge:\n  linear:   completed=%d dropped=%d events=%d energy=%v p99=%v\n  calendar: completed=%d dropped=%d events=%d energy=%v p99=%v",
				name,
				lin.Completed, lin.Dropped, lin.Events, lin.EnergyMJ, lin.TailLatencyMs(99),
				cal.Completed, cal.Dropped, cal.Events, cal.EnergyMJ, cal.TailLatencyMs(99))
		}
	}
}

// TestClusterReportWorkersIdentical pins the -workers contract at the harness
// level: the multi-core cluster sweep prints the same report for any worker
// count.
func TestClusterReportWorkersIdentical(t *testing.T) {
	p := plat(t)
	serial := p.ClusterReport(4, 1, 40, 3000).String()
	sharded := p.ClusterReport(4, 4, 40, 3000).String()
	if serial != sharded {
		t.Fatalf("cluster report differs between serial and sharded runs:\n--- serial\n%s\n--- sharded\n%s", serial, sharded)
	}
	if serial == "" {
		t.Fatal("empty cluster report")
	}
}
