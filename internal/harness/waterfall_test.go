package harness

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"gemini/internal/sim"
	"gemini/internal/telemetry"
	"gemini/internal/trace"
)

// TestPhaseSpansSumToLatency asserts the two span invariants for every
// policy: each traced request's queue + execution phases partition its
// [arrival, finish] window exactly (phase durations sum to the end-to-end
// latency), and the execution phases' energy attributes sum to the energy
// the decision trace attributes to the request.
func TestPhaseSpansSumToLatency(t *testing.T) {
	p := plat(t)
	const avgRPS, durationMs = 400, 3000
	for _, name := range PolicyNames {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := p.NewPolicy(name)
			if err != nil {
				t.Fatal(err)
			}
			tr := trace.GenEvalTrace("uniform", avgRPS*p.Opt.ShardFraction, durationMs, p.Opt.Seed+40)
			wl := p.Workload(tr.Arrivals, durationMs, p.Opt.Seed+50)

			cfg := p.SimConfig()
			sp := telemetry.NewSpanTracer(8 * len(wl.Requests))
			dec := telemetry.NewTracer(2 * len(wl.Requests))
			cfg.Spans = sp
			cfg.Tracer = dec

			res := sim.Run(cfg, wl, pol)

			decByID := make(map[int]telemetry.Decision)
			for _, d := range dec.Ring().Snapshot(0) {
				decByID[d.RequestID] = d
			}

			ids, byTrace := telemetry.GroupSpansByTrace(sp.Spans())
			if len(ids) != res.Total {
				t.Fatalf("traces = %d, want one per request (%d)", len(ids), res.Total)
			}
			const tol = 1e-6
			execSeen := 0
			for _, id := range ids {
				spans := byTrace[id]
				var root *telemetry.Span
				var phaseSum, execMJ float64
				hasExec := false
				for i := range spans {
					sp := &spans[i]
					switch {
					case sp.Name == "request":
						root = sp
					case sp.Name == "queue":
						phaseSum += sp.DurationMs()
					case strings.HasPrefix(sp.Name, "exec-"):
						phaseSum += sp.DurationMs()
						execMJ += sp.Attr("energy_mj")
						hasExec = true
					default:
						t.Fatalf("trace %s: unexpected span %q", id, sp.Name)
					}
				}
				if root == nil {
					t.Fatalf("trace %s: no request root span", id)
				}
				latency := root.DurationMs()
				if math.Abs(phaseSum-latency) > tol {
					t.Errorf("trace %s: phases sum to %.9f ms, end-to-end %.9f ms", id, phaseSum, latency)
				}
				reqID, err := strconv.Atoi(id[strings.LastIndexByte(id, '/')+1:])
				if err != nil {
					t.Fatalf("trace %s: bad trace id: %v", id, err)
				}
				d, ok := decByID[reqID]
				if !ok {
					t.Fatalf("trace %s: no matching decision", id)
				}
				if math.Abs(latency-d.LatencyMs) > tol {
					t.Errorf("trace %s: root span %.9f ms, decision latency %.9f ms", id, latency, d.LatencyMs)
				}
				if hasExec {
					execSeen++
					if math.Abs(execMJ-d.EnergyMJ) > tol {
						t.Errorf("trace %s: exec spans carry %.9f mJ, decision attributes %.9f mJ", id, execMJ, d.EnergyMJ)
					}
				}
			}
			if execSeen < res.Completed {
				t.Errorf("exec phases on %d traces, want >= completed (%d)", execSeen, res.Completed)
			}
		})
	}
}

func TestAnalyzeSpansPhases(t *testing.T) {
	p := plat(t)
	res, spans, err := p.RunWaterfall("Gemini", "uniform", 400, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("no completions")
	}
	sum := AnalyzeSpans("Gemini", spans)
	if sum.Traces != res.Total {
		t.Fatalf("traces = %d, want %d", sum.Traces, res.Total)
	}
	req := sum.Phase("request")
	if req.Count != res.Total {
		t.Errorf("request phase count = %d, want %d", req.Count, res.Total)
	}
	if q := sum.Phase("queue"); q.Count != res.Total {
		t.Errorf("queue phase count = %d, want %d", q.Count, res.Total)
	}
	init := sum.Phase("exec-initial")
	if init.Count == 0 || init.TotalMJ <= 0 {
		t.Errorf("exec-initial phase: count %d energy %.3f", init.Count, init.TotalMJ)
	}
	// Gemini's two-step plan must boost at least some queries.
	if b := sum.Phase("exec-boost"); b.Count == 0 {
		t.Error("no exec-boost phases under Gemini")
	}
	if req.P95Ms < req.MeanMs || req.P99Ms < req.P95Ms {
		t.Errorf("percentiles not monotone: mean %.2f p95 %.2f p99 %.2f", req.MeanMs, req.P95Ms, req.P99Ms)
	}
}

func TestPhaseReportRenders(t *testing.T) {
	rep, err := plat(t).PhaseReport("uniform", 400, 2000)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"Gemini", "Pegasus", "queue", "exec-initial"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
