package harness

import (
	"fmt"

	"gemini/internal/telemetry"
)

// SLO attainment view over a sampled cluster timeline: the per-window
// slo_violations and drops columns replayed through the multi-window
// error-budget tracker, answering the question the paper's controller is
// judged on — did the run hold the deadline at the target percentile, and
// if not, when did the budget burn. Because the tracker is fed from the
// deterministically-merged rows, the report is byte-identical for any
// worker count, like every other harness table.

// SLOReport folds a timeline run into the burn-rate table. targetPct is the
// SLO target percentile (0 selects the tracker default, 99). The tracker's
// buckets are aligned to whole seconds regardless of the sample interval, so
// the default 1 s / 10 s / 60 s windows read the same as the live trackers'.
func SLOReport(tlr *TimelineResult, targetPct float64) *Report {
	rows := tlr.Series.Rows()
	tracker := telemetry.NewSLOTracker(telemetry.SLOConfig{
		DeadlineMs: tlr.BudgetMs,
		TargetPct:  targetPct,
	})
	tracker.FeedRows(rows)

	endMs := 0.0
	if len(rows) > 0 {
		endMs = rows[len(rows)-1].TimeMs
	}
	snap := tracker.Snapshot(endMs, 0)

	rep := &Report{
		Title:  "SLO attainment (error-budget burn view)",
		Header: []string{"window ms", "good", "bad", "bad %", "burn rate"},
	}
	cfg := snap.Config
	rep.Note("deadline %.1f ms at p%s: error budget %.2f%% of events; burn rate = bad fraction / budget (1.0 consumes the budget exactly as provisioned)",
		cfg.DeadlineMs, trimFloat(cfg.TargetPct), cfg.BudgetFraction()*100)
	for _, w := range snap.Windows {
		rep.AddRow(
			trimFloat(w.WindowMs),
			fmt.Sprintf("%d", w.Good),
			fmt.Sprintf("%d", w.Bad),
			f2(w.BadFraction*100),
			f2(w.BurnRate),
		)
	}
	state := "within budget"
	switch {
	case snap.FastBurn:
		state = fmt.Sprintf("FAST BURN (>= %s× over the %s ms window)",
			trimFloat(cfg.FastBurnThreshold), trimFloat(cfg.WindowsMs[0]))
	case snap.SlowBurn:
		state = fmt.Sprintf("slow burn (>= %s× over the %s ms window)",
			trimFloat(cfg.SlowBurnThreshold), trimFloat(cfg.WindowsMs[len(cfg.WindowsMs)-1]))
	}
	rep.Note("run totals: %d good, %d bad, budget remaining %.1f%% — %s",
		snap.Good, snap.Bad, snap.BudgetRemaining*100, state)
	return rep
}
