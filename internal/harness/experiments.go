package harness

import (
	"fmt"
	"sort"
)

// ExperimentSet binds a platform to the named experiment runners and caches
// the expensive shared measurement grids (the RPS sweep behind Figs. 10–11,
// the trace runs behind Figs. 12–14).
type ExperimentSet struct {
	P *Platform
	// DurScale scales the experiments' simulated durations (1 = the paper's
	// 120 s sweep points and 1000 s traces); tests use a small fraction.
	DurScale float64
	// Workers is the grid-runner worker count for the parallelizable
	// experiment grids; <= 0 (and 1) runs serially. Any value produces
	// byte-identical reports — see parallel.go.
	Workers int

	sweep  *SweepData
	traces *TraceData
}

// NewExperimentSet creates a set over the platform. durScale <= 0 means 1.
func NewExperimentSet(p *Platform, durScale float64) *ExperimentSet {
	if durScale <= 0 {
		durScale = 1
	}
	return &ExperimentSet{P: p, DurScale: durScale}
}

// workers normalizes the Workers field to a valid grid-runner count.
func (e *ExperimentSet) workers() int {
	if e.Workers <= 0 {
		return 1
	}
	return e.Workers
}

// Sweep returns the cached Fig. 10/11 measurement grid.
func (e *ExperimentSet) Sweep() *SweepData {
	if e.sweep == nil {
		e.sweep = e.P.RPSSweepWorkers(nil, 120_000*e.DurScale, e.workers())
	}
	return e.sweep
}

// Traces returns the cached Fig. 12–14 measurement grid.
func (e *ExperimentSet) Traces() *TraceData {
	if e.traces == nil {
		pols := []string{"Rubik", "Pegasus", "Gemini", "Gemini-a", "Gemini-95th"}
		e.traces = e.P.TraceRunsWorkers([]string{"wiki", "lucene", "trec"}, pols, 60, 1_000_000*e.DurScale, e.workers())
	}
	return e.traces
}

// runners maps experiment names to their implementations.
func (e *ExperimentSet) runners() map[string]func() *Report {
	abl := 200_000 * e.DurScale
	w := e.workers()
	return map[string]func() *Report{
		"table1": func() *Report { return e.P.Table1() },
		"table2": func() *Report { r, _ := e.P.Table2(); return r },
		"fig1b":  func() *Report { r, _ := e.P.Fig1b(); return r },
		"fig1c":  func() *Report { r, _ := e.P.Fig1c(); return r },
		"fig3":   func() *Report { r, _ := e.P.Fig3(); return r },
		"fig6":   func() *Report { r, _ := e.P.Fig6(); return r },
		"fig7":   func() *Report { r, _ := e.P.Fig7(); return r },
		"fig8":   func() *Report { r, _ := e.P.Fig8(); return r },
		"fig10":  func() *Report { return e.P.Fig10(e.Sweep()) },
		"fig11":  func() *Report { return e.P.Fig11(e.Sweep()) },
		"fig12":  func() *Report { return e.P.Fig12(e.Traces()) },
		"fig13":  func() *Report { return e.P.Fig13(e.Traces()) },
		"fig14":  func() *Report { return e.P.Fig14(e.Traces()) },
		"ablation-boost": func() *Report {
			r, _ := e.P.AblationBoostWorkers(80, abl, w)
			return r
		},
		"ablation-grouping": func() *Report {
			r, _ := e.P.AblationGroupingWorkers(80, abl, w)
			return r
		},
		"ablation-tdvfs": func() *Report {
			r, _ := e.P.AblationTdvfsWorkers(80, abl, w)
			return r
		},
		"ablation-budget": func() *Report {
			r, _ := e.P.AblationBudgetWorkers(80, abl, w)
			return r
		},
		"ablation-sleep": func() *Report {
			r, _ := e.P.AblationSleepWorkers(20, abl, w)
			return r
		},
		"extension-governors": func() *Report {
			r, _ := e.P.ExtensionGovernorsWorkers(80, abl, w)
			return r
		},
		"extension-cache": func() *Report {
			r, _ := e.P.ExtensionCacheWorkers(80, abl, 256, w)
			return r
		},
		"extension-aggregate": func() *Report {
			r, _ := e.P.ExtensionAggregateWorkers(4, 60, abl, w)
			return r
		},
		"fig2": func() *Report { return e.P.Fig2(4) },
	}
}

// Names lists the available experiments, sorted.
func (e *ExperimentSet) Names() []string {
	rs := e.runners()
	names := make([]string, 0, len(rs))
	for n := range rs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one named experiment and returns its report.
func (e *ExperimentSet) Run(name string) (*Report, error) {
	r, ok := e.runners()[name]
	if !ok {
		return nil, fmt.Errorf("harness: unknown experiment %q", name)
	}
	return r(), nil
}
