// Package queueing provides closed-form M/G/1 queueing results used to
// validate the discrete-event simulator against theory and to reason about
// ISN capacity: with Poisson arrivals (the paper's traces are modeled as
// non-homogeneous Poisson processes) and a general service distribution, the
// Pollaczek–Khinchine formula gives the exact mean waiting time — any
// correct FIFO single-server simulator must converge to it.
package queueing

import (
	"errors"
	"math"
)

// MG1 describes an M/G/1 queue: Poisson arrivals at Lambda (requests per
// ms), i.i.d. service times with the given mean and variance (ms, ms²).
type MG1 struct {
	LambdaPerMs   float64
	MeanServiceMs float64
	ServiceVarMs2 float64
}

// ErrUnstable is returned when utilization reaches 1.
var ErrUnstable = errors.New("queueing: utilization >= 1, queue is unstable")

// Rho returns the utilization λ·E[S].
func (m MG1) Rho() float64 { return m.LambdaPerMs * m.MeanServiceMs }

// SCV returns the squared coefficient of variation of service times.
func (m MG1) SCV() float64 {
	if m.MeanServiceMs == 0 {
		return 0
	}
	return m.ServiceVarMs2 / (m.MeanServiceMs * m.MeanServiceMs)
}

// MeanWaitMs returns the mean queueing delay (Pollaczek–Khinchine):
//
//	Wq = λ·E[S²] / (2(1−ρ)) = ρ·E[S]·(1+C²) / (2(1−ρ))
func (m MG1) MeanWaitMs() (float64, error) {
	rho := m.Rho()
	if rho >= 1 {
		return 0, ErrUnstable
	}
	es2 := m.ServiceVarMs2 + m.MeanServiceMs*m.MeanServiceMs
	return m.LambdaPerMs * es2 / (2 * (1 - rho)), nil
}

// MeanLatencyMs returns the mean sojourn time Wq + E[S].
func (m MG1) MeanLatencyMs() (float64, error) {
	wq, err := m.MeanWaitMs()
	if err != nil {
		return 0, err
	}
	return wq + m.MeanServiceMs, nil
}

// MeanQueueLen returns the time-average number in system (Little's law).
func (m MG1) MeanQueueLen() (float64, error) {
	w, err := m.MeanLatencyMs()
	if err != nil {
		return 0, err
	}
	return m.LambdaPerMs * w, nil
}

// MM1TailLatencyMs returns the p-quantile (0<p<1) of sojourn time for the
// exponential-service special case (M/M/1), where the sojourn time is
// exponential with rate µ−λ — a closed-form anchor for tail checks.
func (m MG1) MM1TailLatencyMs(p float64) (float64, error) {
	rho := m.Rho()
	if rho >= 1 {
		return 0, ErrUnstable
	}
	if p <= 0 || p >= 1 {
		return 0, errors.New("queueing: quantile out of (0,1)")
	}
	mu := 1 / m.MeanServiceMs
	return -math.Log(1-p) / (mu - m.LambdaPerMs), nil
}

// StableFrequencyGHz returns the minimum CPU frequency (relative to a
// default-frequency work demand) keeping the queue stable with the given
// headroom factor (<1): f ≥ λ·W_mean / headroom where W_mean = E[S]·fDefault.
// This is the capacity floor any DVFS policy must respect on average.
func StableFrequencyGHz(lambdaPerMs, meanServiceMsAtDefault, fDefaultGHz, headroom float64) float64 {
	if headroom <= 0 || headroom > 1 {
		headroom = 1
	}
	return lambdaPerMs * meanServiceMsAtDefault * fDefaultGHz / headroom
}
