package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gemini/internal/cpu"
	"gemini/internal/policy"
	"gemini/internal/sim"
	"gemini/internal/trace"
)

func TestRhoAndSCV(t *testing.T) {
	m := MG1{LambdaPerMs: 0.05, MeanServiceMs: 10, ServiceVarMs2: 25}
	if math.Abs(m.Rho()-0.5) > 1e-12 {
		t.Errorf("rho = %v", m.Rho())
	}
	if math.Abs(m.SCV()-0.25) > 1e-12 {
		t.Errorf("SCV = %v", m.SCV())
	}
	if (MG1{}).SCV() != 0 {
		t.Error("zero-mean SCV")
	}
}

func TestMM1SpecialCase(t *testing.T) {
	// M/M/1 with λ=0.05/ms, µ=0.1/ms: W = 1/(µ−λ) = 20 ms.
	m := MG1{LambdaPerMs: 0.05, MeanServiceMs: 10, ServiceVarMs2: 100}
	w, err := m.MeanLatencyMs()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w-20) > 1e-9 {
		t.Errorf("M/M/1 mean latency = %v, want 20", w)
	}
	l, _ := m.MeanQueueLen()
	if math.Abs(l-1.0) > 1e-9 { // L = λW = 0.05*20
		t.Errorf("L = %v, want 1", l)
	}
	// p-quantile of exp(µ−λ=0.05): median = ln2/0.05 ≈ 13.86.
	q, err := m.MM1TailLatencyMs(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-math.Ln2/0.05) > 1e-9 {
		t.Errorf("median = %v", q)
	}
}

func TestDeterministicServiceHalvesWait(t *testing.T) {
	// M/D/1 waits exactly half of M/M/1's queueing delay.
	mm1 := MG1{LambdaPerMs: 0.08, MeanServiceMs: 10, ServiceVarMs2: 100}
	md1 := MG1{LambdaPerMs: 0.08, MeanServiceMs: 10, ServiceVarMs2: 0}
	wm, _ := mm1.MeanWaitMs()
	wd, _ := md1.MeanWaitMs()
	if math.Abs(wd-wm/2) > 1e-9 {
		t.Errorf("M/D/1 wait %v, want half of %v", wd, wm)
	}
}

func TestUnstable(t *testing.T) {
	m := MG1{LambdaPerMs: 0.2, MeanServiceMs: 10}
	if _, err := m.MeanWaitMs(); err != ErrUnstable {
		t.Errorf("err = %v", err)
	}
	if _, err := m.MeanLatencyMs(); err != ErrUnstable {
		t.Errorf("err = %v", err)
	}
	if _, err := m.MeanQueueLen(); err != ErrUnstable {
		t.Errorf("err = %v", err)
	}
	if _, err := m.MM1TailLatencyMs(0.5); err != ErrUnstable {
		t.Errorf("err = %v", err)
	}
	if _, err := (MG1{LambdaPerMs: 0.01, MeanServiceMs: 10}).MM1TailLatencyMs(1.5); err == nil {
		t.Error("bad quantile accepted")
	}
}

func TestStableFrequency(t *testing.T) {
	// 40 req/s × 10 ms at 2.7 GHz with 0.8 headroom: f ≥ 0.04·10·2.7/0.8.
	f := StableFrequencyGHz(0.04, 10, 2.7, 0.8)
	if math.Abs(f-1.35) > 1e-9 {
		t.Errorf("stable frequency = %v", f)
	}
	if StableFrequencyGHz(0.04, 10, 2.7, 0) != 0.04*10*2.7 {
		t.Error("headroom clamp wrong")
	}
}

// Property: waiting time grows monotonically with load.
func TestWaitMonotoneInLoadProperty(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw%90)/1000 + 0.0001 // λ up to 0.09/ms
		b := float64(bRaw%90)/1000 + 0.0001
		if a > b {
			a, b = b, a
		}
		ma := MG1{LambdaPerMs: a, MeanServiceMs: 10, ServiceVarMs2: 50}
		mb := MG1{LambdaPerMs: b, MeanServiceMs: 10, ServiceVarMs2: 50}
		wa, ea := ma.MeanWaitMs()
		wb, eb := mb.MeanWaitMs()
		if ea != nil || eb != nil {
			return true
		}
		return wa <= wb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The simulator must converge to Pollaczek–Khinchine: run a long Poisson
// stream with a known service distribution at the default frequency and
// compare the mean latency to theory.
func TestSimulatorMatchesPollaczekKhinchine(t *testing.T) {
	const (
		lambdaPerMs = 0.06 // 60 req/s
		meanMs      = 8.0
		durationMs  = 2_000_000
	)
	rng := rand.New(rand.NewSource(17))
	tr := trace.GenFixedRPS(lambdaPerMs*1000, durationMs, 9)

	wl := &sim.Workload{BudgetMs: 1e9, DurationMs: durationMs}
	var sum, sumsq float64
	for i, at := range tr.Arrivals {
		// Uniform service on [2, 14] ms: mean 8, var 12.
		ms := 2 + rng.Float64()*12
		sum += ms
		sumsq += ms * ms
		w := cpu.Work(ms * float64(cpu.FDefault))
		wl.Requests = append(wl.Requests, &sim.Request{
			ID: i, BaseWork: w, WorkTotal: w, ArrivalMs: at, DeadlineMs: at + 1e9,
		})
	}
	n := float64(len(wl.Requests))
	empMean := sum / n
	empVar := sumsq/n - empMean*empMean

	res := sim.Run(sim.DefaultConfig(), wl, policy.FixedFreq{F: cpu.FDefault})
	theory := MG1{
		LambdaPerMs:   n / durationMs, // realized rate
		MeanServiceMs: empMean,
		ServiceVarMs2: empVar,
	}
	want, err := theory.MeanLatencyMs()
	if err != nil {
		t.Fatal(err)
	}
	got := res.MeanLatencyMs()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("simulated mean latency %.3f ms vs P-K %.3f ms (>5%% off)", got, want)
	}
}
