package server

import (
	"net/http"
	"strconv"
	"time"

	"gemini/internal/telemetry"
)

// Live SLO tracking: the wall-clock binding of telemetry.SLOTracker. The
// tracker itself never reads a clock (internal/telemetry sits inside the
// nodeterminism wall-clock ban); this file — the server package, the one
// layer allowed wall time — supplies every timestamp, mirrors the tracker's
// counters into gemini_slo_* Prometheus families, and serves /debug/slo.

// SLO metric family names, one set per listener (distinguished by the
// listener label so the aggregator and every ISN share one registry page).
const (
	sloGoodName   = "gemini_slo_good_total"
	sloGoodHelp   = "Requests that met the SLO deadline, by listener."
	sloBadName    = "gemini_slo_bad_total"
	sloBadHelp    = "Requests that violated the SLO deadline, errored, or were shed, by listener."
	sloBurnName   = "gemini_slo_burn_rate"
	sloBurnHelp   = "Error-budget burn rate over the trailing window (bad fraction / budgeted fraction; 1.0 = budget consumed exactly as provisioned), by listener and window."
	sloBudgetName = "gemini_slo_budget_remaining"
	sloBudgetHelp = "Unconsumed fraction of the cumulative error budget (1 = untouched, <= 0 = blown), by listener."
	sloDeadName   = "gemini_slo_deadline_ms"
	sloDeadHelp   = "Configured SLO latency deadline in milliseconds, by listener."
	sloTargetName = "gemini_slo_target_pct"
	sloTargetHelp = "Configured SLO target percentile, by listener."
)

// SLOBinding wires one listener to an SLOTracker: request paths call Observe
// / ObserveBad (cheap: one bucket increment plus two atomic counters), and
// scrape/debug paths pull burn-rate snapshots. All methods are nil-safe, so
// an unconfigured listener pays a single pointer test.
type SLOBinding struct {
	tracker *telemetry.SLOTracker
	t0      time.Time

	good, bad *telemetry.Counter
	burn      []*telemetry.Gauge // index-aligned with the config's windows
	budget    *telemetry.Gauge
}

// NewSLOBinding builds a tracker with cfg (zero fields take the telemetry
// defaults: 40 ms deadline, p99, 1 s/10 s/60 s windows) and registers its
// gemini_slo_* families on reg labeled listener=<listener>. The burn-rate
// and budget gauges are refreshed at scrape time via MetricsWithSLO or
// Refresh.
func NewSLOBinding(reg *telemetry.Registry, listener string, cfg telemetry.SLOConfig) *SLOBinding {
	tracker := telemetry.NewSLOTracker(cfg)
	eff := tracker.Config()
	// One listener address per serving process, chosen from static config —
	// the label set is bounded by deployment size, not by traffic.
	l := telemetry.L("listener", listener) //gemini:allow metriclabel -- one value per process, from static config
	b := &SLOBinding{
		tracker: tracker,
		t0:      time.Now(),
		good:    reg.Counter(sloGoodName, sloGoodHelp, l),
		bad:     reg.Counter(sloBadName, sloBadHelp, l),
		budget:  reg.Gauge(sloBudgetName, sloBudgetHelp, l),
	}
	for _, w := range eff.WindowsMs {
		b.burn = append(b.burn, reg.Gauge(sloBurnName, sloBurnHelp, l,
			telemetry.L("window_ms", strconv.FormatFloat(w, 'g', -1, 64))))
	}
	b.budget.Set(1)
	reg.Gauge(sloDeadName, sloDeadHelp, l).Set(eff.DeadlineMs)
	reg.Gauge(sloTargetName, sloTargetHelp, l).Set(eff.TargetPct)
	return b
}

// nowMs is the binding's clock: wall milliseconds since the binding was
// created, the timescale every tracker timestamp lives on.
func (b *SLOBinding) nowMs() float64 { return msSince(b.t0) }

// Observe classifies one served request by its wall latency.
func (b *SLOBinding) Observe(latencyMs float64) {
	if b == nil {
		return
	}
	b.tracker.Observe(b.nowMs(), latencyMs)
	if latencyMs <= b.tracker.Config().DeadlineMs {
		b.good.Inc()
	} else {
		b.bad.Inc()
	}
}

// ObserveBad records one request that burned budget without a latency — a
// shed request, a queue-full rejection, an aggregation that failed outright.
func (b *SLOBinding) ObserveBad() {
	if b == nil {
		return
	}
	b.tracker.ObserveBad(b.nowMs())
	b.bad.Inc()
}

// Snapshot returns the burn view at the current wall instant, with at most
// n trailing buckets.
func (b *SLOBinding) Snapshot(n int) telemetry.SLOSnapshot {
	if b == nil {
		return (*telemetry.SLOTracker)(nil).Snapshot(0, n)
	}
	return b.tracker.Snapshot(b.nowMs(), n)
}

// Refresh recomputes the burn-rate and budget-remaining gauges from the
// current windows. Called at scrape time so the gauges decay as windows
// empty even when no requests arrive.
func (b *SLOBinding) Refresh() {
	if b == nil {
		return
	}
	s := b.Snapshot(1)
	for i, w := range s.Windows {
		if i < len(b.burn) {
			b.burn[i].Set(w.BurnRate)
		}
	}
	b.budget.Set(s.BudgetRemaining)
}

// Handler serves the binding's burn view as /debug/slo JSON (?n= bounds the
// trailing bucket list with the shared ClampDebugN semantics).
func (b *SLOBinding) Handler(defaultN int) http.Handler {
	return telemetry.SLOHandler(b.Snapshot, defaultN)
}

// MetricsWithSLO wraps the registry exposition so every binding's burn-rate
// and budget gauges are recomputed at scrape time — a scrape after traffic
// stops must show the short windows draining back to zero burn.
func MetricsWithSLO(reg *telemetry.Registry, bindings ...*SLOBinding) http.Handler {
	inner := telemetry.MetricsHandler(reg)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		for _, b := range bindings {
			b.Refresh()
		}
		inner.ServeHTTP(w, r)
	})
}
