package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gemini/internal/corpus"
	"gemini/internal/index"
	"gemini/internal/search"
	"gemini/internal/telemetry"
)

// TestSLOBindingLive drives a live ISN through an SLO binding with an
// impossible deadline and checks the whole observable surface: the
// gemini_slo_* families and gemini_build_info on /metrics, and the
// /debug/slo snapshot schema.
func TestSLOBindingLive(t *testing.T) {
	spec := corpus.SmallSpec()
	c := corpus.Generate(spec)
	eng := search.NewEngine(index.Build(c), search.DefaultK)
	isn := NewISN(0, c, eng, search.DefaultCostModel())

	reg := telemetry.NewRegistry()
	telemetry.RegisterBuildInfo(reg, "test")
	// Sub-microsecond deadline: every completion burns budget, so bad counts
	// and burn rates must be visibly nonzero after a handful of requests.
	isn.SLO = NewSLOBinding(reg, "isn-0", telemetry.SLOConfig{DeadlineMs: 1e-6, TargetPct: 99})
	isn.Start()
	t.Cleanup(isn.Stop)
	srv := httptest.NewServer(isn)
	t.Cleanup(srv.Close)

	const reqs = 5
	for i := 0; i < reqs; i++ {
		if resp, _ := postSearchTo(t, srv.URL, "canada"); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}

	metrics := httptest.NewServer(MetricsWithSLO(reg, isn.SLO))
	t.Cleanup(metrics.Close)
	resp, err := http.Get(metrics.URL)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`gemini_build_info{`,
		`engine="test"`,
		`gemini_slo_good_total{listener="isn-0"} 0`,
		`gemini_slo_bad_total{listener="isn-0"} 5`,
		`gemini_slo_deadline_ms{listener="isn-0"}`,
		`gemini_slo_target_pct{listener="isn-0"} 99`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// Gauge values are floats (burn ≈ 100, remaining ≈ -99): assert sign and
	// presence rather than exact decimal rendering.
	if !strings.Contains(text, `gemini_slo_burn_rate{listener="isn-0",window_ms="1000"} `) ||
		strings.Contains(text, `gemini_slo_burn_rate{listener="isn-0",window_ms="1000"} 0`+"\n") {
		t.Errorf("short-window burn rate missing or zero under total violation:\n%s", text)
	}
	if !strings.Contains(text, `gemini_slo_budget_remaining{listener="isn-0"} -`) {
		t.Errorf("budget_remaining not negative under total violation:\n%s", text)
	}

	slo := httptest.NewServer(isn.SLO.Handler(60))
	t.Cleanup(slo.Close)
	resp, err = http.Get(slo.URL)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.SLOSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode /debug/slo: %v", err)
	}
	resp.Body.Close()
	if snap.Good != 0 || snap.Bad != reqs {
		t.Fatalf("snapshot = %d/%d, want 0/%d", snap.Good, snap.Bad, reqs)
	}
	if len(snap.Windows) != 3 || !snap.FastBurn {
		t.Fatalf("windows = %d fastBurn = %v, want 3 windows and fast burn firing", len(snap.Windows), snap.FastBurn)
	}
	if len(snap.Buckets) == 0 {
		t.Fatalf("snapshot carries no buckets")
	}

	resp, err = http.Get(slo.URL + "?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("?n=bogus status = %d, want 400", resp.StatusCode)
	}
}

// TestSLOBindingNilSafe: listeners without a binding must serve unchanged.
func TestSLOBindingNilSafe(t *testing.T) {
	var b *SLOBinding
	b.Observe(1)
	b.ObserveBad()
	b.Refresh()
	s := b.Snapshot(1)
	if s.Windows == nil {
		t.Fatal("nil binding snapshot must carry empty windows")
	}
}

// TestTelemetrySelfOverheadMeter: the per-request observation cost counters
// must advance when a listener is instrumented.
func TestTelemetrySelfOverheadMeter(t *testing.T) {
	spec := corpus.SmallSpec()
	c := corpus.Generate(spec)
	eng := search.NewEngine(index.Build(c), search.DefaultK)
	isn := NewISN(0, c, eng, search.DefaultCostModel())
	met := NewMetrics(nil)
	isn.Instrument(met)
	isn.Start()
	t.Cleanup(isn.Stop)
	srv := httptest.NewServer(isn)
	t.Cleanup(srv.Close)

	const reqs = 3
	for i := 0; i < reqs; i++ {
		if resp, _ := postSearchTo(t, srv.URL, "canada"); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	var buf bytes.Buffer
	if err := met.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if !strings.Contains(text, "gemini_telemetry_observations_total 3") {
		t.Errorf("observation count missing or wrong:\n%s", text)
	}
	if strings.Contains(text, "gemini_telemetry_observe_ns_total 0\n") {
		t.Errorf("observe_ns stayed zero across %d instrumented requests", reqs)
	}
}
