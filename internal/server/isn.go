// Package server implements the paper's partition-aggregate search
// architecture (Fig. 1a) as real HTTP services: Index Serving Nodes with the
// Fig. 9 structure (SearchHandler → blocking queue → single working thread →
// engine) and an aggregator that broadcasts each query to every shard and
// merges the top-K responses, with the paper's aggregation-policy options
// (wait-for-all vs. partial aggregation with a timeout, ref [2] — stragglers
// beyond the timeout are ignored, which is why ISN-level deadlines matter).
//
// The servers run real retrieval; DVFS remains the domain of the simulator
// (a real process cannot meaningfully change a laptop's frequency per
// query), but each ISN response carries the modeled service time and the
// predictors' view of the query, demonstrating the cross-process control
// path the paper built on Solr.
package server

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"gemini/internal/core"
	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/predictor"
	"gemini/internal/search"
	"gemini/internal/telemetry"
)

// DefaultBudgetMs is the per-query latency budget assumed when none is
// configured (the paper's 40 ms ISN deadline, §II-A).
const DefaultBudgetMs = 40

// SearchRequest is the JSON body of POST /search.
type SearchRequest struct {
	Query string `json:"query"`
	K     int    `json:"k,omitempty"`
}

// ShardResult is one document in an ISN response.
type ShardResult struct {
	Shard int     `json:"shard"`
	Doc   int32   `json:"doc"`
	Score float32 `json:"score"`
}

// TraceHeader is the HTTP header carrying the aggregator's trace ID to each
// shard; an ISN that receives it returns its span set in the response
// envelope for the aggregator to stitch into the query waterfall.
const TraceHeader = "X-Gemini-Trace"

// ISNResponse is the JSON body of an ISN's reply.
type ISNResponse struct {
	Shard       int           `json:"shard"`
	Results     []ShardResult `json:"results"`
	ServiceMs   float64       `json:"service_ms"`   // modeled at FDefault
	PredictedMs float64       `json:"predicted_ms"` // S* (0 if no predictor)
	PredErrMs   float64       `json:"pred_err_ms"`  // E* (0 if no predictor)
	QueueDepth  int           `json:"queue_depth"`
	// QueueWaitMs/ExecWallMs split the wall latency into the Fig. 9 phases:
	// time on the blocking queue vs. time on the working thread.
	QueueWaitMs float64 `json:"queue_wait_ms,omitempty"`
	ExecWallMs  float64 `json:"exec_wall_ms,omitempty"`
	// Spans is the shard's span set for this query, present only when the
	// request carried TraceHeader. Times are ms relative to the ISN's
	// receipt of the request; the aggregator rebases them onto its own
	// timeline when stitching.
	Spans []telemetry.Span `json:"spans,omitempty"`
}

// ISN is one Index Serving Node: a single working thread draining a
// blocking queue of search tasks (paper Fig. 9).
type ISN struct {
	ShardID   int
	Corpus    *corpus.Corpus
	Engine    *search.Engine
	Extractor *search.Extractor
	Cost      *search.CostModel

	// Service and ErrPred, when set, annotate responses with the paper's
	// predictions (the inputs Gemini's DVFS controller would consume).
	Service predictor.ServicePredictor
	ErrPred predictor.ErrorPredictor

	// BudgetMs is the per-query latency budget driving the modeled DVFS plan
	// and the deadline-slack telemetry (DefaultBudgetMs when zero).
	BudgetMs float64
	// Tracer, when non-nil, receives one telemetry.Decision per served query:
	// the predictors' view, the plan §III-A would have chosen, and the modeled
	// outcome. Served at /debug/decisions by cmd/isnserver.
	Tracer *telemetry.Tracer
	// Spans, when non-nil, retains the span sets of traced queries (those
	// whose request carried TraceHeader) for the shard's own /debug/traces
	// endpoint; the same spans travel back in the response envelope either
	// way.
	Spans *telemetry.SpanTracer
	// SLO, when non-nil, receives every request's outcome for error-budget
	// burn tracking: served requests classified by wall latency against the
	// binding's deadline, queue-full rejections as bad events. Served at
	// /debug/slo and as gemini_slo_* families by cmd/isnserver.
	SLO *SLOBinding

	queue   chan isnTask
	started sync.Once
	stopped chan struct{}
	depth   int
	mu      sync.Mutex

	// Modeled DVFS state (real frequencies stay the simulator's domain; the
	// live path models the plan each query would have executed, see the
	// package comment). Guarded by mu.
	planner     core.Params
	power       *cpu.PowerModel
	ladder      *cpu.Ladder
	modelFreq   cpu.Freq
	energyMJ    float64
	transitions uint64
	seq         int

	// Timeline window accumulators, guarded by mu. Dormant (tlOn false, zero
	// cost beyond a bool test) until the first TimelineCounters call — i.e.
	// until a TimelineSampler is attached.
	tlOn          bool
	tlArrivals    uint64
	tlCompletions uint64
	tlDrops       uint64
	tlViolations  uint64  // cumulative completions past the budget
	tlHW          float64 // deepest queue this sample window
	tlLats        []float64

	met *isnInstruments
	t0  time.Time
}

type isnTask struct {
	query    corpus.Query
	k        int
	enqueued time.Time
	resp     chan ISNResponse
}

// NewISN builds an ISN over its shard.
func NewISN(shard int, c *corpus.Corpus, eng *search.Engine, cost *search.CostModel) *ISN {
	return &ISN{
		ShardID:   shard,
		Corpus:    c,
		Engine:    eng,
		Extractor: search.NewExtractor(eng),
		Cost:      cost,
		queue:     make(chan isnTask, 1024),
		stopped:   make(chan struct{}),
		planner:   core.DefaultParams(),
		power:     cpu.DefaultPowerModel(),
		ladder:    cpu.DefaultLadder(),
		modelFreq: cpu.FDefault,
		t0:        time.Now(),
	}
}

// Instrument attaches the shared metrics bundle; the shard's labeled
// instruments are created (and therefore rendered, at zero) immediately.
func (n *ISN) Instrument(m *Metrics) {
	if m == nil {
		return
	}
	n.met = m.isnInstruments(n.ShardID)
}

// Start launches the working thread. Idempotent.
func (n *ISN) Start() {
	n.started.Do(func() { go n.worker() })
}

// Stop terminates the working thread after the queue drains.
func (n *ISN) Stop() { close(n.stopped) }

func (n *ISN) worker() {
	for {
		select {
		case t := <-n.queue:
			t.resp <- n.execute(t)
			n.mu.Lock()
			n.depth--
			depth := n.depth
			n.mu.Unlock()
			if n.met != nil {
				n.met.queueDepth.Set(float64(depth))
			}
		case <-n.stopped:
			return
		}
	}
}

func (n *ISN) execute(t isnTask) ISNResponse {
	dequeued := time.Now()
	ex := n.Engine.Search(t.query)
	resp := ISNResponse{
		Shard:       n.ShardID,
		ServiceMs:   cpu.TimeFor(n.Cost.WorkFor(ex.Stats), cpu.FDefault),
		QueueWaitMs: msBetween(t.enqueued, dequeued),
	}
	k := t.k
	if k <= 0 || k > len(ex.Results) {
		k = len(ex.Results)
	}
	for _, r := range ex.Results[:k] {
		resp.Results = append(resp.Results, ShardResult{Shard: n.ShardID, Doc: r.Doc, Score: r.Score})
	}
	if n.Service != nil {
		fv := n.Extractor.Features(t.query)
		resp.PredictedMs = n.Service.PredictMs(fv)
		if n.ErrPred != nil {
			resp.PredErrMs = n.ErrPred.PredictErrMs(fv)
		}
	}
	resp.ExecWallMs = msSince(dequeued)
	return resp
}

// msSince returns the wall milliseconds elapsed since t.
func msSince(t time.Time) float64 { return msBetween(t, time.Now()) }

// msBetween returns b − a in milliseconds.
func msBetween(a, b time.Time) float64 {
	return float64(b.Sub(a).Microseconds()) / 1000
}

// observe records the served query into the shard's instruments and decision
// trace — the wall latency, the §III-A plan the modeled DVFS would have
// executed for the predicted service time, and its energy and transitions —
// and, when the request carried a trace ID, attaches the shard's span set to
// the response for the aggregator to stitch. A no-op unless the ISN is
// instrumented or traced.
func (n *ISN) observe(resp *ISNResponse, start time.Time, depth int, traceID string) {
	if n.met == nil && n.Tracer == nil && traceID == "" {
		return
	}
	// Self-overhead meter: the wall cost of this observation block itself
	// (metrics, modeled plan, decision emit, span assembly), so "bounded when
	// enabled" is a measured claim. The clock reads only run when telemetry
	// is on — the disabled path returned above.
	obsStart := time.Now()
	defer func() {
		if n.met != nil {
			n.met.obsNs.Add(uint64(time.Since(obsStart).Nanoseconds()))
			n.met.obsCount.Inc()
		}
	}()
	latencyMs := msSince(start)
	budget := n.BudgetMs
	if budget <= 0 {
		budget = DefaultBudgetMs
	}

	// The plan §III-A would choose: eq. 5 initial frequency and eq. 7 boost
	// for a predicted query, single-step FDefault when no predictor is
	// attached.
	plan := core.Plan{Initial: cpu.FDefault, Boost: cpu.FDefault, BoostAt: math.Inf(1)}
	if resp.PredictedMs > 0 {
		plan = n.planner.PlanSingle(0, budget, resp.PredictedMs, resp.PredErrMs)
	}
	work := cpu.WorkFor(resp.ServiceMs, cpu.FDefault)
	mx := n.applyModel(plan, work)
	execMs, energyMJ, transitions, totalMJ, seq := mx.execMs, mx.energyMJ, mx.transitions, mx.totalMJ, mx.seq

	// Feed the Gemini-α style moving-average estimator, when attached, with
	// the observed error magnitude so E* adapts to the live stream.
	if ma, ok := n.ErrPred.(*predictor.MovingAvgError); ok && resp.PredictedMs > 0 {
		ma.Observe(resp.ServiceMs - resp.PredictedMs)
	}

	if n.met != nil {
		n.met.requests.Inc()
		n.met.latency.Observe(latencyMs)
		n.met.service.Observe(resp.ServiceMs)
		n.met.energy.Set(totalMJ)
		if transitions > 0 {
			n.met.transitions.Add(uint64(transitions))
		}
		if resp.PredictedMs > 0 {
			n.met.predTotal.Inc()
			abs := resp.ServiceMs - resp.PredictedMs
			if abs < 0 {
				abs = -abs
			}
			n.met.predAbsErr.Observe(abs)
			if resp.ServiceMs <= resp.PredictedMs+resp.PredErrMs {
				n.met.predCovered.Inc()
			}
		}
	}
	if n.Tracer != nil {
		arrivalMs := float64(start.Sub(n.t0).Microseconds()) / 1000
		d := telemetry.Decision{
			Policy:          "isn-live",
			RequestID:       seq,
			ArrivalMs:       arrivalMs,
			PredictedMs:     resp.PredictedMs,
			PredErrMs:       resp.PredErrMs,
			InitialFreqGHz:  float64(plan.Initial),
			CriticalID:      -1,
			QueueDepth:      depth,
			StartFreqGHz:    float64(plan.Initial),
			StartMs:         arrivalMs,
			FinishMs:        arrivalMs + latencyMs,
			ServiceMs:       execMs,
			ActualMs:        resp.ServiceMs,
			LatencyMs:       latencyMs,
			DeadlineSlackMs: budget - latencyMs,
			Transitions:     transitions,
			EnergyMJ:        energyMJ,
			Violated:        latencyMs > budget,
		}
		if plan.HasBoost() {
			d.BoostFreqGHz = float64(plan.Boost)
			d.BoostAtMs = plan.BoostAt
		}
		n.Tracer.Emit(d)
	}
	if traceID != "" {
		resp.Spans = n.buildSpans(traceID, resp, plan, mx)
		n.Spans.EmitBatch(resp.Spans)
	}
}

// buildSpans assembles the shard's span set for one traced query: the real
// queue-wait and working-thread phases (Fig. 9), plus the modeled DVFS
// phases — the time the query would have spent at the planned initial
// frequency f* and at the boost frequency — nested under the execution span.
// Times are ms relative to the ISN's receipt of the request (span 0 starts
// at 0); the aggregator rebases them when stitching.
func (n *ISN) buildSpans(traceID string, resp *ISNResponse, plan core.Plan, mx modelExec) []telemetry.Span {
	pfx := "isn" + strconv.Itoa(n.ShardID)
	shardParent := "shard-" + strconv.Itoa(n.ShardID)
	execStart := resp.QueueWaitMs
	execEnd := execStart + resp.ExecWallMs
	spans := []telemetry.Span{
		{
			TraceID: traceID, SpanID: pfx + "-queue", ParentID: shardParent, Name: "isn-queue",
			StartMs: 0, EndMs: execStart,
			Attrs: map[string]float64{"shard": float64(n.ShardID), "queue_depth": float64(resp.QueueDepth)},
		},
		{
			TraceID: traceID, SpanID: pfx + "-exec", ParentID: shardParent, Name: "isn-exec",
			StartMs: execStart, EndMs: execEnd,
			Attrs: map[string]float64{"shard": float64(n.ShardID), "service_ms": resp.ServiceMs},
		},
		{
			TraceID: traceID, SpanID: pfx + "-model-initial", ParentID: pfx + "-exec", Name: "isn-model-initial",
			StartMs: execStart, EndMs: execStart + mx.initialMs,
			Attrs: map[string]float64{"freq_ghz": float64(plan.Initial), "energy_mj": mx.initialMJ},
		},
	}
	if mx.boosted {
		spans = append(spans, telemetry.Span{
			TraceID: traceID, SpanID: pfx + "-model-boost", ParentID: pfx + "-exec", Name: "isn-model-boost",
			StartMs: execStart + mx.initialMs, EndMs: execStart + mx.execMs,
			Attrs: map[string]float64{"freq_ghz": float64(plan.Boost), "energy_mj": mx.energyMJ - mx.initialMJ},
		})
	}
	return spans
}

// modelExec is one query's outcome under the modeled DVFS plan: total
// execution time and energy, the initial-phase/boost-phase split (for the
// span waterfall), and the shard's cumulative state after the query.
type modelExec struct {
	execMs      float64
	energyMJ    float64
	initialMs   float64 // time in the initial (f*) step; == execMs when !boosted
	initialMJ   float64
	boosted     bool
	transitions int
	totalMJ     float64
	seq         int
}

// applyModel advances the shard's modeled DVFS state by one query: execute
// the plan against the query's true work, counting the frequency transitions
// it incurs and charging busy-core energy (W x ms = mJ) at each step.
func (n *ISN) applyModel(plan core.Plan, work cpu.Work) modelExec {
	n.mu.Lock()
	defer n.mu.Unlock()
	var mx modelExec
	f := plan.Initial
	//gemini:allow floatcmp -- plan frequencies are discrete ladder levels; exact change detection counts real transitions
	if f != n.modelFreq {
		mx.transitions++
		n.modelFreq = f
	}
	firstMs := cpu.TimeFor(work, f)
	if plan.HasBoost() && firstMs > plan.BoostAt {
		// The boost step engaged: the remainder runs at the maximum.
		w1 := cpu.WorkFor(plan.BoostAt, f)
		mx.boosted = true
		mx.initialMs = plan.BoostAt
		mx.initialMJ = n.power.CoreW(f, true) * plan.BoostAt
		mx.execMs = plan.BoostAt + cpu.TimeFor(work-w1, plan.Boost)
		mx.energyMJ = mx.initialMJ +
			n.power.CoreW(plan.Boost, true)*(mx.execMs-plan.BoostAt)
		mx.transitions++
		n.modelFreq = plan.Boost
	} else {
		mx.execMs = firstMs
		mx.initialMs = firstMs
		mx.energyMJ = n.power.CoreW(f, true) * mx.execMs
		mx.initialMJ = mx.energyMJ
	}
	n.energyMJ += mx.energyMJ
	n.transitions += uint64(mx.transitions)
	n.seq++
	mx.totalMJ = n.energyMJ
	mx.seq = n.seq
	return mx
}

// ServeHTTP implements the ISN's /search endpoint: enqueue the task on the
// blocking queue and wait for the working thread (the Fig. 9 Callable +
// Executor structure).
func (n *ISN) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.Start()
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, ok := corpus.ParseQuery(n.Corpus, req.Query)
	if !ok {
		http.Error(w, fmt.Sprintf("no known term in %q", req.Query), http.StatusBadRequest)
		return
	}
	start := time.Now()
	traceID := r.Header.Get(TraceHeader)
	n.mu.Lock()
	n.depth++
	depth := n.depth
	if n.tlOn {
		n.tlArrivals++
		if float64(depth) > n.tlHW {
			n.tlHW = float64(depth)
		}
	}
	n.mu.Unlock()
	if n.met != nil {
		n.met.queueDepth.Set(float64(depth))
	}

	respCh := make(chan ISNResponse, 1)
	select {
	case n.queue <- isnTask{query: q, k: req.K, enqueued: start, resp: respCh}:
	case <-time.After(5 * time.Second):
		n.mu.Lock()
		n.depth-- // never enqueued: undo the admission count
		if n.tlOn {
			n.tlDrops++
		}
		n.mu.Unlock()
		n.SLO.ObserveBad() // shed work burns budget without a latency
		http.Error(w, "queue full", http.StatusServiceUnavailable)
		return
	}
	resp := <-respCh
	resp.QueueDepth = depth
	n.observe(&resp, start, depth, traceID)
	latencyMs := msSince(start)
	n.SLO.Observe(latencyMs)
	budget := n.BudgetMs
	if budget <= 0 {
		budget = DefaultBudgetMs
	}
	n.mu.Lock()
	if n.tlOn {
		n.tlCompletions++
		n.tlLats = append(n.tlLats, latencyMs)
		if latencyMs > budget {
			n.tlViolations++
		}
	}
	n.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
