// Package server implements the paper's partition-aggregate search
// architecture (Fig. 1a) as real HTTP services: Index Serving Nodes with the
// Fig. 9 structure (SearchHandler → blocking queue → single working thread →
// engine) and an aggregator that broadcasts each query to every shard and
// merges the top-K responses, with the paper's aggregation-policy options
// (wait-for-all vs. partial aggregation with a timeout, ref [2] — stragglers
// beyond the timeout are ignored, which is why ISN-level deadlines matter).
//
// The servers run real retrieval; DVFS remains the domain of the simulator
// (a real process cannot meaningfully change a laptop's frequency per
// query), but each ISN response carries the modeled service time and the
// predictors' view of the query, demonstrating the cross-process control
// path the paper built on Solr.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/predictor"
	"gemini/internal/search"
)

// SearchRequest is the JSON body of POST /search.
type SearchRequest struct {
	Query string `json:"query"`
	K     int    `json:"k,omitempty"`
}

// ShardResult is one document in an ISN response.
type ShardResult struct {
	Shard int     `json:"shard"`
	Doc   int32   `json:"doc"`
	Score float32 `json:"score"`
}

// ISNResponse is the JSON body of an ISN's reply.
type ISNResponse struct {
	Shard       int           `json:"shard"`
	Results     []ShardResult `json:"results"`
	ServiceMs   float64       `json:"service_ms"`   // modeled at FDefault
	PredictedMs float64       `json:"predicted_ms"` // S* (0 if no predictor)
	PredErrMs   float64       `json:"pred_err_ms"`  // E* (0 if no predictor)
	QueueDepth  int           `json:"queue_depth"`
}

// ISN is one Index Serving Node: a single working thread draining a
// blocking queue of search tasks (paper Fig. 9).
type ISN struct {
	ShardID   int
	Corpus    *corpus.Corpus
	Engine    *search.Engine
	Extractor *search.Extractor
	Cost      *search.CostModel

	// Service and ErrPred, when set, annotate responses with the paper's
	// predictions (the inputs Gemini's DVFS controller would consume).
	Service predictor.ServicePredictor
	ErrPred predictor.ErrorPredictor

	queue   chan isnTask
	started sync.Once
	stopped chan struct{}
	depth   int
	mu      sync.Mutex
}

type isnTask struct {
	query corpus.Query
	k     int
	resp  chan ISNResponse
}

// NewISN builds an ISN over its shard.
func NewISN(shard int, c *corpus.Corpus, eng *search.Engine, cost *search.CostModel) *ISN {
	return &ISN{
		ShardID:   shard,
		Corpus:    c,
		Engine:    eng,
		Extractor: search.NewExtractor(eng),
		Cost:      cost,
		queue:     make(chan isnTask, 1024),
		stopped:   make(chan struct{}),
	}
}

// Start launches the working thread. Idempotent.
func (n *ISN) Start() {
	n.started.Do(func() { go n.worker() })
}

// Stop terminates the working thread after the queue drains.
func (n *ISN) Stop() { close(n.stopped) }

func (n *ISN) worker() {
	for {
		select {
		case t := <-n.queue:
			t.resp <- n.execute(t)
			n.mu.Lock()
			n.depth--
			n.mu.Unlock()
		case <-n.stopped:
			return
		}
	}
}

func (n *ISN) execute(t isnTask) ISNResponse {
	ex := n.Engine.Search(t.query)
	resp := ISNResponse{
		Shard:     n.ShardID,
		ServiceMs: cpu.TimeFor(n.Cost.WorkFor(ex.Stats), cpu.FDefault),
	}
	k := t.k
	if k <= 0 || k > len(ex.Results) {
		k = len(ex.Results)
	}
	for _, r := range ex.Results[:k] {
		resp.Results = append(resp.Results, ShardResult{Shard: n.ShardID, Doc: r.Doc, Score: r.Score})
	}
	if n.Service != nil {
		fv := n.Extractor.Features(t.query)
		resp.PredictedMs = n.Service.PredictMs(fv)
		if n.ErrPred != nil {
			resp.PredErrMs = n.ErrPred.PredictErrMs(fv)
		}
	}
	return resp
}

// ServeHTTP implements the ISN's /search endpoint: enqueue the task on the
// blocking queue and wait for the working thread (the Fig. 9 Callable +
// Executor structure).
func (n *ISN) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.Start()
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	q, ok := corpus.ParseQuery(n.Corpus, req.Query)
	if !ok {
		http.Error(w, fmt.Sprintf("no known term in %q", req.Query), http.StatusBadRequest)
		return
	}
	n.mu.Lock()
	n.depth++
	depth := n.depth
	n.mu.Unlock()

	respCh := make(chan ISNResponse, 1)
	select {
	case n.queue <- isnTask{query: q, k: req.K, resp: respCh}:
	case <-time.After(5 * time.Second):
		http.Error(w, "queue full", http.StatusServiceUnavailable)
		return
	}
	resp := <-respCh
	resp.QueueDepth = depth
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
