package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"gemini/internal/telemetry"
)

// newSlowShard serves a shard endpoint that never answers within d.
func newSlowShard(t *testing.T, d time.Duration) string {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(d)
	}))
	t.Cleanup(srv.Close)
	return srv.URL
}

// TestISNSpansOnlyWhenTraced pins the head-sampling contract on the shard
// side: a request carrying TraceHeader gets the span set in its response
// envelope (and into the ISN's own tracer), a plain request gets none.
func TestISNSpansOnlyWhenTraced(t *testing.T) {
	isns, _, urls := testCluster(t, 1)
	isns[0].Spans = telemetry.NewSpanTracer(64)

	_, plain := postSearch(t, urls[0], "canada")
	if len(plain.Spans) != 0 {
		t.Fatalf("untraced request returned %d spans", len(plain.Spans))
	}
	if isns[0].Spans.Total() != 0 {
		t.Fatalf("untraced request retained %d spans", isns[0].Spans.Total())
	}

	body, _ := json.Marshal(SearchRequest{Query: "canada"})
	req, _ := http.NewRequest(http.MethodPost, urls[0]+"/search", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "t-123")
	httpResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var r ISNResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if len(r.Spans) < 3 {
		t.Fatalf("traced request returned %d spans, want >= 3", len(r.Spans))
	}
	names := map[string]telemetry.Span{}
	for _, sp := range r.Spans {
		if sp.TraceID != "t-123" {
			t.Fatalf("span trace id = %q", sp.TraceID)
		}
		names[sp.Name] = sp
	}
	q, qok := names["isn-queue"]
	e, eok := names["isn-exec"]
	m, mok := names["isn-model-initial"]
	if !qok || !eok || !mok {
		t.Fatalf("span names = %v", names)
	}
	// Times are relative to request receipt: queue starts at 0 and hands off
	// to the exec span exactly where the response envelope says.
	if q.StartMs != 0 || q.EndMs != r.QueueWaitMs {
		t.Errorf("queue span [%v, %v], queue wait %v", q.StartMs, q.EndMs, r.QueueWaitMs)
	}
	if e.StartMs != q.EndMs || e.DurationMs() != r.ExecWallMs {
		t.Errorf("exec span [%v, %v], exec wall %v", e.StartMs, e.EndMs, r.ExecWallMs)
	}
	if m.ParentID != e.SpanID || m.Attr("freq_ghz") <= 0 {
		t.Errorf("model span parent %q freq %v", m.ParentID, m.Attr("freq_ghz"))
	}
	if got := isns[0].Spans.Total(); got != uint64(len(r.Spans)) {
		t.Errorf("ISN retained %d spans, response carried %d", got, len(r.Spans))
	}
}

// TestAggregatorTraceStitching is the tentpole's end-to-end check: a sampled
// query produces one stitched waterfall whose shard spans (and their rebased
// ISN children) nest inside the root query span, with the shard fan-out legs
// accounting for the end-to-end latency up to aggregation overhead.
func TestAggregatorTraceStitching(t *testing.T) {
	_, _, urls := testCluster(t, 2)
	agg := NewAggregator(urls, 10)
	agg.Spans = telemetry.NewSpanTracer(256)
	agg.TraceSample = 1

	resp, err := agg.Search(context.Background(), "united kingdom")
	if err != nil {
		t.Fatal(err)
	}
	if resp.TraceID == "" {
		t.Fatal("sampled query has no trace id")
	}

	views := agg.Spans.Traces(0)
	if len(views) != 1 {
		t.Fatalf("traces = %d, want 1", len(views))
	}
	v := views[0]
	if v.TraceID != resp.TraceID {
		t.Fatalf("trace id %q, response says %q", v.TraceID, resp.TraceID)
	}

	var root *telemetry.Span
	var shards, isnExecs []telemetry.Span
	mergeSeen := false
	for i := range v.Spans {
		sp := v.Spans[i]
		switch sp.Name {
		case "query":
			root = &v.Spans[i]
		case "shard":
			shards = append(shards, sp)
		case "merge":
			mergeSeen = true
		case "isn-exec":
			isnExecs = append(isnExecs, sp)
		}
	}
	if root == nil || !mergeSeen {
		t.Fatalf("root=%v merge=%v in %d spans", root != nil, mergeSeen, len(v.Spans))
	}
	if root.DurationMs() != resp.LatencyMs {
		t.Errorf("root span %v ms, response latency %v ms", root.DurationMs(), resp.LatencyMs)
	}
	if len(shards) != 2 || len(isnExecs) != 2 {
		t.Fatalf("shard spans = %d, isn-exec spans = %d, want 2/2", len(shards), len(isnExecs))
	}
	// Every shard leg nests inside the query window, and the slowest leg
	// accounts for the end-to-end latency up to the merge overhead.
	const epsMs = 1e-6
	var slowest float64
	for _, sp := range shards {
		if sp.ParentID != "query" {
			t.Errorf("shard span parent = %q", sp.ParentID)
		}
		if sp.StartMs < -epsMs || sp.EndMs > root.EndMs+epsMs {
			t.Errorf("shard span [%v, %v] outside root [%v, %v]", sp.StartMs, sp.EndMs, root.StartMs, root.EndMs)
		}
		if sp.EndMs > slowest {
			slowest = sp.EndMs
		}
	}
	if slowest > resp.LatencyMs+epsMs {
		t.Errorf("slowest shard leg ends at %v ms, past the %v ms end-to-end latency", slowest, resp.LatencyMs)
	}
	// The rebased ISN spans sit inside their shard leg's window (the residual
	// against the leg is network/encode time, which is nonnegative).
	for _, sp := range isnExecs {
		if sp.EndMs > root.EndMs+epsMs {
			t.Errorf("rebased isn-exec [%v, %v] overruns root end %v", sp.StartMs, sp.EndMs, root.EndMs)
		}
	}
}

// TestAggregatorTraceSampling checks the head-based sampler: at rate 1/2,
// exactly every other query is traced, and an unsampled query neither gets a
// trace ID nor emits spans.
func TestAggregatorTraceSampling(t *testing.T) {
	_, _, urls := testCluster(t, 1)
	agg := NewAggregator(urls, 5)
	agg.Spans = telemetry.NewSpanTracer(256)
	agg.TraceSample = 0.5

	traced := 0
	for i := 0; i < 4; i++ {
		resp, err := agg.Search(context.Background(), "canada")
		if err != nil {
			t.Fatal(err)
		}
		if resp.TraceID != "" {
			traced++
		}
	}
	if traced != 2 {
		t.Errorf("traced %d of 4 at rate 0.5", traced)
	}
	if views := agg.Spans.Traces(0); len(views) != 2 {
		t.Errorf("retained traces = %d, want 2", len(views))
	}

	// Rate 0 disables tracing entirely even with a tracer attached.
	agg2 := NewAggregator(urls, 5)
	agg2.Spans = telemetry.NewSpanTracer(16)
	if resp, err := agg2.Search(context.Background(), "canada"); err != nil || resp.TraceID != "" {
		t.Errorf("rate-0 query traced: %v %v", resp, err)
	}
}

// TestAggregatorStragglerSpan extends the straggler contract to the span
// waterfall: an abandoned shard leaves a straggler span naming the shard and
// the gap beyond the fan-out deadline, alongside the unchanged counter.
func TestAggregatorStragglerSpan(t *testing.T) {
	_, _, urls := testCluster(t, 2)
	slow := newSlowShard(t, 2*time.Second)

	met := NewMetrics(nil)
	agg := NewAggregator(append(urls, slow), 10)
	agg.Policy = Partial
	agg.Quorum = 2
	agg.Timeout = 500 * time.Millisecond
	agg.Instrument(met)
	agg.Spans = telemetry.NewSpanTracer(256)
	agg.TraceSample = 1

	resp, err := agg.Search(context.Background(), "canada")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stragglers != 1 {
		t.Fatalf("stragglers = %d", resp.Stragglers)
	}
	views := agg.Spans.Traces(0)
	if len(views) != 1 {
		t.Fatalf("traces = %d", len(views))
	}
	var straggler *telemetry.Span
	for i := range views[0].Spans {
		if views[0].Spans[i].Name == "straggler" {
			straggler = &views[0].Spans[i]
		}
	}
	if straggler == nil {
		t.Fatal("no straggler span in the stitched trace")
	}
	if got := straggler.Attr("shard"); got != 2 {
		t.Errorf("straggler shard attr = %v, want 2", got)
	}
	if straggler.Attr("gap_ms") < 0 {
		t.Errorf("straggler gap = %v", straggler.Attr("gap_ms"))
	}
	if straggler.EndMs != resp.LatencyMs {
		t.Errorf("straggler span ends at %v, aggregation returned at %v", straggler.EndMs, resp.LatencyMs)
	}
	var buf bytes.Buffer
	if err := met.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `gemini_agg_shard_stragglers_total{shard="2"} 1`; !bytes.Contains(buf.Bytes(), []byte(want)) {
		t.Errorf("metrics missing %q", want)
	}
}
