package server

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"gemini/internal/telemetry"
)

// FuzzTraceEnvelopeDecode hardens the ISN response envelope against
// arbitrary bytes: whatever a (buggy or hostile) shard sends, the aggregator
// path must either reject it at decode or handle it without panicking. For
// every envelope that decodes, the properties the stitching code relies on
// must hold: re-encoding is stable (canonical round trip), span sorting
// terminates and preserves the span multiset, and the rebase shift applied
// by stitch preserves every span's duration.
func FuzzTraceEnvelopeDecode(f *testing.F) {
	seed := ISNResponse{
		Shard:     3,
		ServiceMs: 12.5, PredictedMs: 11.0, PredErrMs: 1.5,
		QueueDepth: 2, QueueWaitMs: 0.5, ExecWallMs: 12.0,
		Spans: []telemetry.Span{
			{TraceID: "agg-1", SpanID: "isn-root", Name: "isn-exec", StartMs: 0.5, EndMs: 12.5},
			{TraceID: "agg-1", SpanID: "isn-q", ParentID: "isn-root", Name: "isn-queue",
				StartMs: 0, EndMs: 0.5, Attrs: map[string]float64{"depth": 2}},
		},
	}
	data, err := json.Marshal(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"spans":[{"start_ms":1e308,"end_ms":-1e308}]}`))
	f.Add([]byte(`{"shard":-1,"spans":null,"results":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var r ISNResponse
		if err := json.Unmarshal(data, &r); err != nil {
			return // rejected at the envelope boundary: fine
		}

		// Canonical round trip: encode must succeed (JSON never yields
		// NaN/Inf floats, the one thing Marshal rejects) and re-decode to an
		// identically-encoding value.
		enc1, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("decoded envelope does not re-encode: %v", err)
		}
		var r2 ISNResponse
		if err := json.Unmarshal(enc1, &r2); err != nil {
			t.Fatalf("re-encoded envelope does not decode: %v", err)
		}
		enc2, err := json.Marshal(r2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("round trip unstable:\n%s\n%s", enc1, enc2)
		}

		// The aggregator sorts stitched spans for display; sorting any
		// decodable span set must keep the count and never panic.
		spans := make([]telemetry.Span, len(r.Spans))
		copy(spans, r.Spans)
		telemetry.SortSpans(spans)
		if len(spans) != len(r.Spans) {
			t.Fatalf("sort changed span count: %d -> %d", len(r.Spans), len(spans))
		}

		// stitch rebases ISN spans by the leg's send offset; the shift must
		// preserve durations for every finite span.
		const sendMs = 1.25
		for _, sp := range r.Spans {
			want := sp.DurationMs()
			sp.StartMs += sendMs
			sp.EndMs += sendMs
			if math.IsInf(want, 0) || math.IsNaN(want) {
				continue // only reachable via ±MaxFloat64 overflow inputs
			}
			if got := sp.DurationMs(); math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Fatalf("rebase changed duration: %v -> %v", want, got)
			}
		}
	})
}
