package server

import (
	"strconv"

	"gemini/internal/telemetry"
)

// Metric family names and help strings, shared between the pre-registration
// (Instrument, so every family renders from startup) and the increment sites.
const (
	aggRequestsName  = "gemini_agg_requests_total"
	aggRequestsHelp  = "Queries handled by the aggregator."
	aggErrorsName    = "gemini_agg_request_errors_total"
	aggErrorsHelp    = "Aggregator queries that failed outright (no shard responded)."
	aggLatencyName   = "gemini_agg_request_latency_ms"
	aggLatencyHelp   = "End-to-end aggregator query latency in milliseconds."
	aggPartialsName  = "gemini_agg_partial_aggregations_total"
	aggPartialsHelp  = "Aggregations that returned without every shard (quorum or timeout cut, paper ref [2])."
	aggStragglerName = "gemini_agg_shard_stragglers_total"
	aggStragglerHelp = "Shard replies still in flight when their aggregation returned, by shard (the responses partial aggregation discards)."
	aggShardErrName  = "gemini_agg_shard_errors_total"
	aggShardErrHelp  = "Shard requests that failed, by shard."

	isnRequestsName    = "gemini_isn_requests_total"
	isnRequestsHelp    = "Queries served by the ISN working thread, by shard."
	isnLatencyName     = "gemini_isn_request_latency_ms"
	isnLatencyHelp     = "ISN wall latency (queueing + execution) in milliseconds, by shard."
	isnServiceName     = "gemini_isn_service_time_ms"
	isnServiceHelp     = "Modeled service time at the default frequency in milliseconds, by shard."
	isnDepthName       = "gemini_isn_queue_depth"
	isnDepthHelp       = "Requests queued or executing on the ISN, by shard."
	isnEnergyName      = "gemini_isn_energy_mj"
	isnEnergyHelp      = "Cumulative modeled core energy under the per-query DVFS plan in millijoules, by shard."
	isnTransitionsName = "gemini_isn_freq_transitions_total"
	isnTransitionsHelp = "Modeled DVFS frequency transitions, by shard."
	isnPredTotalName   = "gemini_isn_predictions_total"
	isnPredTotalHelp   = "Requests served with a service-time prediction attached, by shard."
	isnPredErrName     = "gemini_isn_predict_abs_err_ms"
	isnPredErrHelp     = "Absolute error of the predicted service time S* versus the modeled actual, in milliseconds, by shard."
	isnPredCoverName   = "gemini_isn_predictions_covered_total"
	isnPredCoverHelp   = "Predictions whose budgeted estimate S*+E* bounded the actual service time, by shard."

	obsNsName    = "gemini_telemetry_observe_ns_total"
	obsNsHelp    = "Cumulative wall nanoseconds spent in per-request observation blocks (metrics, decision trace, span assembly) across the process."
	obsCountName = "gemini_telemetry_observations_total"
	obsCountHelp = "Per-request observation blocks executed across the process (divide observe_ns by this for mean per-request telemetry cost)."
)

// predErrBuckets matches the tracer's prediction-quality view: the paper
// audits predictor errors at 1-5 ms tolerance (Fig. 7/8).
var predErrBuckets = []float64{0.5, 1, 2, 3, 5, 7.5, 10, 15, 20}

// Metrics bundles the serving path's instruments over one shared registry,
// so the aggregator and every ISN of a process expose a single coherent
// /metrics page. A nil *Metrics disables instrumentation everywhere.
type Metrics struct {
	Registry *telemetry.Registry

	aggRequests *telemetry.Counter
	aggErrors   *telemetry.Counter
	aggLatency  *telemetry.Histogram
	aggPartials *telemetry.Counter

	// Telemetry self-overhead meter, shared by every listener of the process
	// (the cost being measured is process-wide, not per-shard).
	obsNs    *telemetry.Counter
	obsCount *telemetry.Counter
}

// NewMetrics builds the bundle on reg (a fresh registry when nil) and
// registers the aggregator-level families.
func NewMetrics(reg *telemetry.Registry) *Metrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &Metrics{
		Registry:    reg,
		aggRequests: reg.Counter(aggRequestsName, aggRequestsHelp),
		aggErrors:   reg.Counter(aggErrorsName, aggErrorsHelp),
		aggLatency:  reg.Histogram(aggLatencyName, aggLatencyHelp, nil),
		aggPartials: reg.Counter(aggPartialsName, aggPartialsHelp),
		obsNs:       reg.Counter(obsNsName, obsNsHelp),
		obsCount:    reg.Counter(obsCountName, obsCountHelp),
	}
}

func shardLabel(shard int) telemetry.Label {
	return telemetry.L("shard", strconv.Itoa(shard))
}

// shardStraggler counts one abandoned in-flight shard reply.
func (m *Metrics) shardStraggler(shard int) {
	m.Registry.Counter(aggStragglerName, aggStragglerHelp, shardLabel(shard)).Inc()
}

// shardError counts one failed shard request.
func (m *Metrics) shardError(shard int) {
	m.Registry.Counter(aggShardErrName, aggShardErrHelp, shardLabel(shard)).Inc()
}

// isnInstruments caches one shard's labeled instruments so the ISN hot path
// never takes the registry lock.
type isnInstruments struct {
	requests    *telemetry.Counter
	latency     *telemetry.Histogram
	service     *telemetry.Histogram
	queueDepth  *telemetry.Gauge
	energy      *telemetry.Gauge
	transitions *telemetry.Counter
	predTotal   *telemetry.Counter
	predAbsErr  *telemetry.Histogram
	predCovered *telemetry.Counter
	// Process-wide self-overhead meter, shared with the bundle.
	obsNs    *telemetry.Counter
	obsCount *telemetry.Counter
}

func (m *Metrics) isnInstruments(shard int) *isnInstruments {
	l := shardLabel(shard)
	r := m.Registry
	return &isnInstruments{
		requests:    r.Counter(isnRequestsName, isnRequestsHelp, l),
		latency:     r.Histogram(isnLatencyName, isnLatencyHelp, nil, l),
		service:     r.Histogram(isnServiceName, isnServiceHelp, nil, l),
		queueDepth:  r.Gauge(isnDepthName, isnDepthHelp, l),
		energy:      r.Gauge(isnEnergyName, isnEnergyHelp, l),
		transitions: r.Counter(isnTransitionsName, isnTransitionsHelp, l),
		predTotal:   r.Counter(isnPredTotalName, isnPredTotalHelp, l),
		predAbsErr:  r.Histogram(isnPredErrName, isnPredErrHelp, predErrBuckets, l),
		predCovered: r.Counter(isnPredCoverName, isnPredCoverHelp, l),
		obsNs:       m.obsNs,
		obsCount:    m.obsCount,
	}
}
