package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// AggPolicy selects how the aggregator waits for shards (paper ref [2],
// "Optimal aggregation policy for reducing tail latency of web search").
type AggPolicy int

const (
	// WaitAll waits for every shard (the full-quality, tail-exposed option).
	WaitAll AggPolicy = iota
	// Partial returns once Quorum shards responded or Timeout elapsed;
	// stragglers are ignored — exactly why the paper drops requests that
	// cannot meet the ISN deadline (§III-A).
	Partial
)

// AggResponse is the merged reply of the aggregator.
type AggResponse struct {
	Results         []ShardResult `json:"results"`
	ShardsAsked     int           `json:"shards_asked"`
	ShardsResponded int           `json:"shards_responded"`
	LatencyMs       float64       `json:"latency_ms"`
	// PerShard carries each responding ISN's timing metadata.
	PerShard []ISNResponse `json:"per_shard"`
}

// Aggregator broadcasts queries to the shard ISNs and merges the top-K.
type Aggregator struct {
	ShardURLs []string
	K         int
	Policy    AggPolicy
	Quorum    int           // Partial: shards to wait for (default all-1)
	Timeout   time.Duration // Partial: straggler cutoff (default 100 ms)
	Client    *http.Client
}

// NewAggregator builds an aggregator over the shard endpoints.
func NewAggregator(urls []string, k int) *Aggregator {
	return &Aggregator{
		ShardURLs: urls,
		K:         k,
		Policy:    WaitAll,
		Quorum:    len(urls),
		Timeout:   100 * time.Millisecond,
		Client:    &http.Client{Timeout: 5 * time.Second},
	}
}

// Search broadcasts the query and merges shard responses per the policy.
func (a *Aggregator) Search(ctx context.Context, query string) (*AggResponse, error) {
	if len(a.ShardURLs) == 0 {
		return nil, fmt.Errorf("server: aggregator has no shards")
	}
	start := time.Now()
	body, err := json.Marshal(SearchRequest{Query: query, K: a.K})
	if err != nil {
		return nil, err
	}

	type shardReply struct {
		resp ISNResponse
		err  error
	}
	replies := make(chan shardReply, len(a.ShardURLs))
	var wg sync.WaitGroup
	for _, url := range a.ShardURLs {
		wg.Add(1)
		go func(u string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, u+"/search", bytes.NewReader(body))
			if err != nil {
				replies <- shardReply{err: err}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			httpResp, err := a.Client.Do(req)
			if err != nil {
				replies <- shardReply{err: err}
				return
			}
			defer httpResp.Body.Close()
			if httpResp.StatusCode != http.StatusOK {
				replies <- shardReply{err: fmt.Errorf("shard %s: status %d", u, httpResp.StatusCode)}
				return
			}
			var r ISNResponse
			if err := json.NewDecoder(httpResp.Body).Decode(&r); err != nil {
				replies <- shardReply{err: err}
				return
			}
			replies <- shardReply{resp: r}
		}(url)
	}
	go func() { wg.Wait(); close(replies) }()

	quorum := a.Quorum
	if quorum <= 0 || quorum > len(a.ShardURLs) {
		quorum = len(a.ShardURLs)
	}
	deadline := time.NewTimer(a.Timeout)
	defer deadline.Stop()

	agg := &AggResponse{ShardsAsked: len(a.ShardURLs)}
	var firstErr error
collect:
	for agg.ShardsResponded < len(a.ShardURLs) {
		if a.Policy == Partial && agg.ShardsResponded >= quorum {
			break
		}
		if a.Policy == Partial {
			select {
			case rep, ok := <-replies:
				if !ok {
					break collect
				}
				if rep.err != nil {
					if firstErr == nil {
						firstErr = rep.err
					}
					continue
				}
				agg.PerShard = append(agg.PerShard, rep.resp)
				agg.ShardsResponded++
			case <-deadline.C:
				break collect // ignore stragglers
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else {
			rep, ok := <-replies
			if !ok {
				break collect
			}
			if rep.err != nil {
				if firstErr == nil {
					firstErr = rep.err
				}
				continue
			}
			agg.PerShard = append(agg.PerShard, rep.resp)
			agg.ShardsResponded++
		}
	}
	if agg.ShardsResponded == 0 {
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("server: no shard responded")
	}

	// Merge and rank across shards, keep the global top-K.
	for _, r := range agg.PerShard {
		agg.Results = append(agg.Results, r.Results...)
	}
	sort.Slice(agg.Results, func(i, j int) bool {
		if agg.Results[i].Score != agg.Results[j].Score {
			return agg.Results[i].Score > agg.Results[j].Score
		}
		if agg.Results[i].Shard != agg.Results[j].Shard {
			return agg.Results[i].Shard < agg.Results[j].Shard
		}
		return agg.Results[i].Doc < agg.Results[j].Doc
	})
	if a.K > 0 && len(agg.Results) > a.K {
		agg.Results = agg.Results[:a.K]
	}
	agg.LatencyMs = float64(time.Since(start).Microseconds()) / 1000
	return agg, nil
}

// ServeHTTP exposes the aggregator as an HTTP endpoint.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := a.Search(r.Context(), req.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
