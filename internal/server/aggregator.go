package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"gemini/internal/telemetry"
)

// AggPolicy selects how the aggregator waits for shards (paper ref [2],
// "Optimal aggregation policy for reducing tail latency of web search").
type AggPolicy int

const (
	// WaitAll waits for every shard (the full-quality, tail-exposed option).
	WaitAll AggPolicy = iota
	// Partial returns once Quorum shards responded or Timeout elapsed;
	// stragglers are ignored — exactly why the paper drops requests that
	// cannot meet the ISN deadline (§III-A).
	Partial
)

// AggResponse is the merged reply of the aggregator.
type AggResponse struct {
	Results         []ShardResult `json:"results"`
	ShardsAsked     int           `json:"shards_asked"`
	ShardsResponded int           `json:"shards_responded"`
	// TraceID is set when this query was head-sampled for tracing; its
	// stitched waterfall is retrievable at /debug/traces under this ID.
	TraceID string `json:"trace_id,omitempty"`
	// Stragglers counts shards whose replies were still in flight when the
	// aggregation returned (partial aggregation discards them, ref [2]).
	Stragglers int `json:"stragglers"`
	// ShardErrors counts shards whose requests failed outright.
	ShardErrors int     `json:"shard_errors"`
	LatencyMs   float64 `json:"latency_ms"`
	// PerShard carries each responding ISN's timing metadata.
	PerShard []ISNResponse `json:"per_shard"`
}

// Aggregator broadcasts queries to the shard ISNs and merges the top-K.
type Aggregator struct {
	ShardURLs []string
	K         int
	Policy    AggPolicy
	Quorum    int           // Partial: shards to wait for (default all-1)
	Timeout   time.Duration // Partial: straggler cutoff (default 100 ms)
	Client    *http.Client

	// BudgetMs is the end-to-end latency budget used for the decision
	// trace's slack/violation fields (DefaultBudgetMs when zero).
	BudgetMs float64
	// Metrics, when non-nil, receives the aggregation counters; attach via
	// Instrument so per-shard families render from startup.
	Metrics *Metrics
	// Tracer, when non-nil, receives one telemetry.Decision per aggregation:
	// the worst responding shard's S*/E* view against its modeled service
	// time, and the end-to-end outcome. Served at /debug/decisions.
	Tracer *telemetry.Tracer
	// Spans, when non-nil, receives the stitched waterfall of each
	// head-sampled query: the aggregator's query/shard/merge spans plus every
	// responding ISN's span set, rebased onto the aggregator's timeline.
	// Served at /debug/traces.
	Spans *telemetry.SpanTracer
	// TraceSample is the head-based sampling rate in [0, 1]: the fraction of
	// queries that carry TraceHeader to the shards and get a stitched
	// waterfall (1 = every query, 0 = tracing off even with Spans set).
	TraceSample float64
	// SLO, when non-nil, receives every aggregation's outcome for
	// error-budget burn tracking: successes classified by end-to-end wall
	// latency, outright failures as bad events. Served at /debug/slo and as
	// gemini_slo_* families by cmd/isnserver.
	SLO *SLOBinding

	mu        sync.Mutex
	seq       int
	sampleAcc float64   // sampling accumulator, guarded by mu
	startedAt time.Time // trace time origin, set on the first aggregation

	// Timeline window accumulators, guarded by mu; dormant until the first
	// TimelineCounters call (see timeline.go).
	tlOn          bool
	tlArrivals    uint64
	tlCompletions uint64
	tlDrops       uint64
	tlViolations  uint64 // cumulative completions past the budget
	tlInFlight    int
	tlHW          float64 // deepest in-flight count this sample window
	tlLats        []float64
}

// shardReply is one shard's settled fan-out leg: the decoded response (or
// error) plus the leg's send/receive offsets on the aggregator's timeline,
// recorded in the fan-out goroutine so span assembly is race-free.
type shardReply struct {
	idx    int
	resp   ISNResponse
	err    error
	sendMs float64 // offset of the shard request send, ms after Search start
	recvMs float64 // offset of the decoded reply, ms after Search start
}

// NewAggregator builds an aggregator over the shard endpoints.
func NewAggregator(urls []string, k int) *Aggregator {
	return &Aggregator{
		ShardURLs: urls,
		K:         k,
		Policy:    WaitAll,
		Quorum:    len(urls),
		Timeout:   100 * time.Millisecond,
		Client:    &http.Client{Timeout: 5 * time.Second},
	}
}

// Instrument attaches the shared metrics bundle and pre-registers every
// per-shard straggler/error counter so the families render (at zero) before
// any straggler occurs.
func (a *Aggregator) Instrument(m *Metrics) {
	if m == nil {
		return
	}
	a.Metrics = m
	for i := range a.ShardURLs {
		m.Registry.Counter(aggStragglerName, aggStragglerHelp, shardLabel(i))
		m.Registry.Counter(aggShardErrName, aggShardErrHelp, shardLabel(i))
	}
}

// Search broadcasts the query and merges shard responses per the policy.
func (a *Aggregator) Search(ctx context.Context, query string) (*AggResponse, error) {
	if len(a.ShardURLs) == 0 {
		return nil, fmt.Errorf("server: aggregator has no shards")
	}
	start := time.Now()
	seq, t0, traceID := a.begin(start)
	tlOK := false
	defer func() { a.tlFinish(start, tlOK) }()
	body, err := json.Marshal(SearchRequest{Query: query, K: a.K})
	if err != nil {
		return nil, err
	}

	replies := make(chan shardReply, len(a.ShardURLs))
	var wg sync.WaitGroup
	for i, url := range a.ShardURLs {
		wg.Add(1)
		go func(idx int, u string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, u+"/search", bytes.NewReader(body))
			if err != nil {
				replies <- shardReply{idx: idx, err: err}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if traceID != "" {
				req.Header.Set(TraceHeader, traceID)
			}
			sendMs := msBetween(start, time.Now())
			httpResp, err := a.Client.Do(req)
			if err != nil {
				replies <- shardReply{idx: idx, err: err}
				return
			}
			defer httpResp.Body.Close()
			if httpResp.StatusCode != http.StatusOK {
				replies <- shardReply{idx: idx, err: fmt.Errorf("shard %s: status %d", u, httpResp.StatusCode)}
				return
			}
			var r ISNResponse
			if err := json.NewDecoder(httpResp.Body).Decode(&r); err != nil {
				replies <- shardReply{idx: idx, err: err}
				return
			}
			replies <- shardReply{idx: idx, resp: r, sendMs: sendMs, recvMs: msBetween(start, time.Now())}
		}(i, url)
	}
	go func() { wg.Wait(); close(replies) }()

	quorum := a.Quorum
	if quorum <= 0 || quorum > len(a.ShardURLs) {
		quorum = len(a.ShardURLs)
	}
	deadline := time.NewTimer(a.Timeout)
	defer deadline.Stop()

	agg := &AggResponse{ShardsAsked: len(a.ShardURLs), TraceID: traceID}
	settled := make([]bool, len(a.ShardURLs)) // responded or errored
	var got []shardReply                      // responding legs, for span assembly
	var firstErr error
collect:
	for agg.ShardsResponded+agg.ShardErrors < len(a.ShardURLs) {
		if a.Policy == Partial && agg.ShardsResponded >= quorum {
			break
		}
		if a.Policy == Partial {
			select {
			case rep, ok := <-replies:
				if !ok {
					break collect
				}
				settled[rep.idx] = true
				if rep.err != nil {
					a.shardError(rep.idx, &firstErr, rep.err, agg)
					continue
				}
				agg.PerShard = append(agg.PerShard, rep.resp)
				got = append(got, rep)
				agg.ShardsResponded++
			case <-deadline.C:
				break collect // ignore stragglers
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else {
			rep, ok := <-replies
			if !ok {
				break collect
			}
			settled[rep.idx] = true
			if rep.err != nil {
				a.shardError(rep.idx, &firstErr, rep.err, agg)
				continue
			}
			agg.PerShard = append(agg.PerShard, rep.resp)
			got = append(got, rep)
			agg.ShardsResponded++
		}
	}
	// Every shard that never settled was abandoned in flight: a straggler
	// whose eventual reply partial aggregation discards (ref [2]).
	var stragglers []int
	for i, done := range settled {
		if !done {
			agg.Stragglers++
			stragglers = append(stragglers, i)
			if a.Metrics != nil {
				a.Metrics.shardStraggler(i)
			}
		}
	}
	if agg.ShardsResponded == 0 {
		if a.Metrics != nil {
			a.Metrics.aggErrors.Inc()
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("server: no shard responded")
	}

	// Merge and rank across shards, keep the global top-K.
	for _, r := range agg.PerShard {
		agg.Results = append(agg.Results, r.Results...)
	}
	sort.Slice(agg.Results, func(i, j int) bool {
		switch {
		case agg.Results[i].Score > agg.Results[j].Score:
			return true
		case agg.Results[i].Score < agg.Results[j].Score:
			return false
		}
		if agg.Results[i].Shard != agg.Results[j].Shard {
			return agg.Results[i].Shard < agg.Results[j].Shard
		}
		return agg.Results[i].Doc < agg.Results[j].Doc
	})
	if a.K > 0 && len(agg.Results) > a.K {
		agg.Results = agg.Results[:a.K]
	}
	agg.LatencyMs = float64(time.Since(start).Microseconds()) / 1000
	if traceID != "" {
		a.stitch(traceID, agg, got, stragglers)
	}
	a.observe(agg, seq, t0, start)
	tlOK = true
	return agg, nil
}

// tlFinish settles one aggregation's accounting: successful queries complete
// with their wall latency (classified against the budget for the timeline's
// violation column and the SLO binding), failed ones count as drops / bad
// budget burn.
func (a *Aggregator) tlFinish(start time.Time, ok bool) {
	latencyMs := msSince(start)
	if ok {
		a.SLO.Observe(latencyMs)
	} else {
		a.SLO.ObserveBad()
	}
	budget := a.BudgetMs
	if budget <= 0 {
		budget = DefaultBudgetMs
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tlInFlight > 0 {
		a.tlInFlight--
	}
	if !a.tlOn {
		return
	}
	if ok {
		a.tlCompletions++
		a.tlLats = append(a.tlLats, latencyMs)
		if latencyMs > budget {
			a.tlViolations++
		}
	} else {
		a.tlDrops++
	}
}

// begin allocates the aggregation's sequence number and trace-time origin
// and, when the head-based sampler selects this query, its trace ID.
func (a *Aggregator) begin(start time.Time) (seq int, t0 time.Time, traceID string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.seq++
	seq = a.seq
	if a.tlOn {
		a.tlArrivals++
		a.tlInFlight++
		if float64(a.tlInFlight) > a.tlHW {
			a.tlHW = float64(a.tlInFlight)
		}
	}
	if a.startedAt.IsZero() {
		a.startedAt = start
	}
	t0 = a.startedAt
	if a.Spans != nil && a.TraceSample > 0 {
		a.sampleAcc += a.TraceSample
		if a.sampleAcc >= 1 {
			a.sampleAcc--
			traceID = "agg-" + strconv.Itoa(seq)
		}
	}
	return seq, t0, traceID
}

// stitch assembles the sampled query's waterfall: a root span for the whole
// aggregation, one fan-out span per responding shard with the ISN's own span
// set rebased onto the aggregator's timeline, a merge span for the rank/trim
// tail, and one straggler span per abandoned shard recording the gap beyond
// the fan-out deadline (ref [2]). All times are ms after Search start.
func (a *Aggregator) stitch(traceID string, agg *AggResponse, got []shardReply, stragglers []int) {
	budget := a.BudgetMs
	if budget <= 0 {
		budget = DefaultBudgetMs
	}
	spans := make([]telemetry.Span, 0, 2+3*len(got)+len(stragglers))
	spans = append(spans, telemetry.Span{
		TraceID: traceID, SpanID: "query", Name: "query",
		StartMs: 0, EndMs: agg.LatencyMs,
		Attrs: map[string]float64{
			"shards_asked":      float64(agg.ShardsAsked),
			"shards_responded":  float64(agg.ShardsResponded),
			"stragglers":        float64(agg.Stragglers),
			"deadline_slack_ms": budget - agg.LatencyMs,
		},
	})
	var mergeStart float64
	for _, rep := range got {
		if rep.recvMs > mergeStart {
			mergeStart = rep.recvMs
		}
		shardID := "shard-" + strconv.Itoa(rep.idx)
		spans = append(spans, telemetry.Span{
			TraceID: traceID, SpanID: shardID, ParentID: "query", Name: "shard",
			StartMs: rep.sendMs, EndMs: rep.recvMs,
			Attrs: map[string]float64{
				"shard":      float64(rep.idx),
				"service_ms": rep.resp.ServiceMs,
			},
		})
		// The ISN reported its spans relative to its receipt of the request;
		// rebase them by this leg's send offset so the whole waterfall shares
		// one timeline (network/encode time shows up as the residual between
		// the shard span and its children).
		for _, sp := range rep.resp.Spans {
			sp.StartMs += rep.sendMs
			sp.EndMs += rep.sendMs
			spans = append(spans, sp)
		}
	}
	timeoutMs := float64(a.Timeout.Microseconds()) / 1000
	for _, idx := range stragglers {
		gap := agg.LatencyMs - timeoutMs
		if gap < 0 {
			gap = 0
		}
		spans = append(spans, telemetry.Span{
			TraceID: traceID, SpanID: "straggler-" + strconv.Itoa(idx),
			ParentID: "query", Name: "straggler",
			StartMs: 0, EndMs: agg.LatencyMs,
			Attrs: map[string]float64{
				"shard":  float64(idx),
				"gap_ms": gap,
			},
		})
	}
	spans = append(spans, telemetry.Span{
		TraceID: traceID, SpanID: "merge", ParentID: "query", Name: "merge",
		StartMs: mergeStart, EndMs: agg.LatencyMs,
		Attrs: map[string]float64{"results": float64(len(agg.Results))},
	})
	a.Spans.EmitBatch(spans)
}

// shardError accounts one failed shard request.
func (a *Aggregator) shardError(idx int, firstErr *error, err error, agg *AggResponse) {
	agg.ShardErrors++
	if *firstErr == nil {
		*firstErr = err
	}
	if a.Metrics != nil {
		a.Metrics.shardError(idx)
	}
}

// observe records a completed aggregation into the metrics bundle and the
// decision trace. seq and t0 were allocated by begin at Search start.
func (a *Aggregator) observe(agg *AggResponse, seq int, t0 time.Time, start time.Time) {
	if a.Metrics == nil && a.Tracer == nil {
		return
	}
	// Self-overhead meter: see ISN.observe — the cost of observation itself.
	obsStart := time.Now()
	defer func() {
		if a.Metrics != nil {
			a.Metrics.obsNs.Add(uint64(time.Since(obsStart).Nanoseconds()))
			a.Metrics.obsCount.Inc()
		}
	}()
	if a.Metrics != nil {
		a.Metrics.aggRequests.Inc()
		a.Metrics.aggLatency.Observe(agg.LatencyMs)
		if agg.ShardsResponded < agg.ShardsAsked {
			a.Metrics.aggPartials.Inc()
		}
	}
	if a.Tracer == nil {
		return
	}
	budget := a.BudgetMs
	if budget <= 0 {
		budget = DefaultBudgetMs
	}
	arrivalMs := float64(start.Sub(t0).Microseconds()) / 1000
	d := telemetry.Decision{
		Policy:          "aggregator",
		RequestID:       seq,
		ArrivalMs:       arrivalMs,
		CriticalID:      -1,
		QueueDepth:      agg.ShardsResponded,
		StartMs:         arrivalMs,
		FinishMs:        arrivalMs + agg.LatencyMs,
		ServiceMs:       agg.LatencyMs,
		LatencyMs:       agg.LatencyMs,
		DeadlineSlackMs: budget - agg.LatencyMs,
		// A straggler's reply is dropped, not a violation: partial
		// aggregation within the budget is a success with reduced quality,
		// surfaced by the straggler/partial counters.
		Violated: agg.LatencyMs > budget,
	}
	// The aggregation is governed by its slowest responding shard: carry
	// that shard's predicted-vs-modeled-actual pair as the aggregation's
	// prediction view.
	for _, r := range agg.PerShard {
		if r.ServiceMs > d.ActualMs {
			d.ActualMs = r.ServiceMs
			d.PredictedMs = r.PredictedMs
			d.PredErrMs = r.PredErrMs
		}
	}
	a.Tracer.Emit(d)
}

// ServeHTTP exposes the aggregator as an HTTP endpoint.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := a.Search(r.Context(), req.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
