package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"gemini/internal/telemetry"
)

// AggPolicy selects how the aggregator waits for shards (paper ref [2],
// "Optimal aggregation policy for reducing tail latency of web search").
type AggPolicy int

const (
	// WaitAll waits for every shard (the full-quality, tail-exposed option).
	WaitAll AggPolicy = iota
	// Partial returns once Quorum shards responded or Timeout elapsed;
	// stragglers are ignored — exactly why the paper drops requests that
	// cannot meet the ISN deadline (§III-A).
	Partial
)

// AggResponse is the merged reply of the aggregator.
type AggResponse struct {
	Results         []ShardResult `json:"results"`
	ShardsAsked     int           `json:"shards_asked"`
	ShardsResponded int           `json:"shards_responded"`
	// Stragglers counts shards whose replies were still in flight when the
	// aggregation returned (partial aggregation discards them, ref [2]).
	Stragglers int `json:"stragglers"`
	// ShardErrors counts shards whose requests failed outright.
	ShardErrors int     `json:"shard_errors"`
	LatencyMs   float64 `json:"latency_ms"`
	// PerShard carries each responding ISN's timing metadata.
	PerShard []ISNResponse `json:"per_shard"`
}

// Aggregator broadcasts queries to the shard ISNs and merges the top-K.
type Aggregator struct {
	ShardURLs []string
	K         int
	Policy    AggPolicy
	Quorum    int           // Partial: shards to wait for (default all-1)
	Timeout   time.Duration // Partial: straggler cutoff (default 100 ms)
	Client    *http.Client

	// BudgetMs is the end-to-end latency budget used for the decision
	// trace's slack/violation fields (DefaultBudgetMs when zero).
	BudgetMs float64
	// Metrics, when non-nil, receives the aggregation counters; attach via
	// Instrument so per-shard families render from startup.
	Metrics *Metrics
	// Tracer, when non-nil, receives one telemetry.Decision per aggregation:
	// the worst responding shard's S*/E* view against its modeled service
	// time, and the end-to-end outcome. Served at /debug/decisions.
	Tracer *telemetry.Tracer

	mu        sync.Mutex
	seq       int
	startedAt time.Time // trace time origin, set on the first aggregation
}

// NewAggregator builds an aggregator over the shard endpoints.
func NewAggregator(urls []string, k int) *Aggregator {
	return &Aggregator{
		ShardURLs: urls,
		K:         k,
		Policy:    WaitAll,
		Quorum:    len(urls),
		Timeout:   100 * time.Millisecond,
		Client:    &http.Client{Timeout: 5 * time.Second},
	}
}

// Instrument attaches the shared metrics bundle and pre-registers every
// per-shard straggler/error counter so the families render (at zero) before
// any straggler occurs.
func (a *Aggregator) Instrument(m *Metrics) {
	if m == nil {
		return
	}
	a.Metrics = m
	for i := range a.ShardURLs {
		m.Registry.Counter(aggStragglerName, aggStragglerHelp, shardLabel(i))
		m.Registry.Counter(aggShardErrName, aggShardErrHelp, shardLabel(i))
	}
}

// Search broadcasts the query and merges shard responses per the policy.
func (a *Aggregator) Search(ctx context.Context, query string) (*AggResponse, error) {
	if len(a.ShardURLs) == 0 {
		return nil, fmt.Errorf("server: aggregator has no shards")
	}
	start := time.Now()
	body, err := json.Marshal(SearchRequest{Query: query, K: a.K})
	if err != nil {
		return nil, err
	}

	type shardReply struct {
		idx  int
		resp ISNResponse
		err  error
	}
	replies := make(chan shardReply, len(a.ShardURLs))
	var wg sync.WaitGroup
	for i, url := range a.ShardURLs {
		wg.Add(1)
		go func(idx int, u string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, u+"/search", bytes.NewReader(body))
			if err != nil {
				replies <- shardReply{idx: idx, err: err}
				return
			}
			req.Header.Set("Content-Type", "application/json")
			httpResp, err := a.Client.Do(req)
			if err != nil {
				replies <- shardReply{idx: idx, err: err}
				return
			}
			defer httpResp.Body.Close()
			if httpResp.StatusCode != http.StatusOK {
				replies <- shardReply{idx: idx, err: fmt.Errorf("shard %s: status %d", u, httpResp.StatusCode)}
				return
			}
			var r ISNResponse
			if err := json.NewDecoder(httpResp.Body).Decode(&r); err != nil {
				replies <- shardReply{idx: idx, err: err}
				return
			}
			replies <- shardReply{idx: idx, resp: r}
		}(i, url)
	}
	go func() { wg.Wait(); close(replies) }()

	quorum := a.Quorum
	if quorum <= 0 || quorum > len(a.ShardURLs) {
		quorum = len(a.ShardURLs)
	}
	deadline := time.NewTimer(a.Timeout)
	defer deadline.Stop()

	agg := &AggResponse{ShardsAsked: len(a.ShardURLs)}
	settled := make([]bool, len(a.ShardURLs)) // responded or errored
	var firstErr error
collect:
	for agg.ShardsResponded+agg.ShardErrors < len(a.ShardURLs) {
		if a.Policy == Partial && agg.ShardsResponded >= quorum {
			break
		}
		if a.Policy == Partial {
			select {
			case rep, ok := <-replies:
				if !ok {
					break collect
				}
				settled[rep.idx] = true
				if rep.err != nil {
					a.shardError(rep.idx, &firstErr, rep.err, agg)
					continue
				}
				agg.PerShard = append(agg.PerShard, rep.resp)
				agg.ShardsResponded++
			case <-deadline.C:
				break collect // ignore stragglers
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		} else {
			rep, ok := <-replies
			if !ok {
				break collect
			}
			settled[rep.idx] = true
			if rep.err != nil {
				a.shardError(rep.idx, &firstErr, rep.err, agg)
				continue
			}
			agg.PerShard = append(agg.PerShard, rep.resp)
			agg.ShardsResponded++
		}
	}
	// Every shard that never settled was abandoned in flight: a straggler
	// whose eventual reply partial aggregation discards (ref [2]).
	for i, done := range settled {
		if !done {
			agg.Stragglers++
			if a.Metrics != nil {
				a.Metrics.shardStraggler(i)
			}
		}
	}
	if agg.ShardsResponded == 0 {
		if a.Metrics != nil {
			a.Metrics.aggErrors.Inc()
		}
		if firstErr != nil {
			return nil, firstErr
		}
		return nil, fmt.Errorf("server: no shard responded")
	}

	// Merge and rank across shards, keep the global top-K.
	for _, r := range agg.PerShard {
		agg.Results = append(agg.Results, r.Results...)
	}
	sort.Slice(agg.Results, func(i, j int) bool {
		if agg.Results[i].Score != agg.Results[j].Score {
			return agg.Results[i].Score > agg.Results[j].Score
		}
		if agg.Results[i].Shard != agg.Results[j].Shard {
			return agg.Results[i].Shard < agg.Results[j].Shard
		}
		return agg.Results[i].Doc < agg.Results[j].Doc
	})
	if a.K > 0 && len(agg.Results) > a.K {
		agg.Results = agg.Results[:a.K]
	}
	agg.LatencyMs = float64(time.Since(start).Microseconds()) / 1000
	a.observe(agg, start)
	return agg, nil
}

// shardError accounts one failed shard request.
func (a *Aggregator) shardError(idx int, firstErr *error, err error, agg *AggResponse) {
	agg.ShardErrors++
	if *firstErr == nil {
		*firstErr = err
	}
	if a.Metrics != nil {
		a.Metrics.shardError(idx)
	}
}

// observe records a completed aggregation into the metrics bundle and the
// decision trace.
func (a *Aggregator) observe(agg *AggResponse, start time.Time) {
	if a.Metrics != nil {
		a.Metrics.aggRequests.Inc()
		a.Metrics.aggLatency.Observe(agg.LatencyMs)
		if agg.ShardsResponded < agg.ShardsAsked {
			a.Metrics.aggPartials.Inc()
		}
	}
	if a.Tracer == nil {
		return
	}
	budget := a.BudgetMs
	if budget <= 0 {
		budget = DefaultBudgetMs
	}
	a.mu.Lock()
	a.seq++
	seq := a.seq
	if a.startedAt.IsZero() {
		a.startedAt = start
	}
	t0 := a.startedAt
	a.mu.Unlock()
	arrivalMs := float64(start.Sub(t0).Microseconds()) / 1000
	d := telemetry.Decision{
		Policy:          "aggregator",
		RequestID:       seq,
		ArrivalMs:       arrivalMs,
		CriticalID:      -1,
		QueueDepth:      agg.ShardsResponded,
		StartMs:         arrivalMs,
		FinishMs:        arrivalMs + agg.LatencyMs,
		ServiceMs:       agg.LatencyMs,
		LatencyMs:       agg.LatencyMs,
		DeadlineSlackMs: budget - agg.LatencyMs,
		// A straggler's reply is dropped, not a violation: partial
		// aggregation within the budget is a success with reduced quality,
		// surfaced by the straggler/partial counters.
		Violated: agg.LatencyMs > budget,
	}
	// The aggregation is governed by its slowest responding shard: carry
	// that shard's predicted-vs-modeled-actual pair as the aggregation's
	// prediction view.
	for _, r := range agg.PerShard {
		if r.ServiceMs > d.ActualMs {
			d.ActualMs = r.ServiceMs
			d.PredictedMs = r.PredictedMs
			d.PredErrMs = r.PredErrMs
		}
	}
	a.Tracer.Emit(d)
}

// ServeHTTP exposes the aggregator as an HTTP endpoint.
func (a *Aggregator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := a.Search(r.Context(), req.Query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
