package server

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"gemini/internal/telemetry"
)

// TestTracePropagationConcurrent drives many sampled queries through the
// aggregator at once and checks every stitched waterfall independently:
// distinct trace IDs, one root query span per trace, shard fan-out legs and
// their rebased ISN children nested inside the root, and a merge span
// closing the trace. Under -race (the CI server race step) this also pins
// the fan-out design: per-leg send/receive offsets are recorded in the
// fan-out goroutines and handed over via the replies channel, so span
// assembly must not race with in-flight legs.
func TestTracePropagationConcurrent(t *testing.T) {
	_, _, urls := testCluster(t, 2)
	agg := NewAggregator(urls, 10)
	agg.Spans = telemetry.NewSpanTracer(4096)
	agg.Tracer = telemetry.NewTracer(1024)
	agg.TraceSample = 1

	const workers, perWorker = 8, 4
	ids := make(chan string, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < perWorker; q++ {
				resp, err := agg.Search(context.Background(), "united kingdom")
				if err != nil {
					t.Error(err)
					return
				}
				ids <- resp.TraceID
			}
		}()
	}
	wg.Wait()
	close(ids)

	seen := map[string]bool{}
	for id := range ids {
		if id == "" {
			t.Fatal("sampled query returned no trace id")
		}
		if seen[id] {
			t.Fatalf("trace id %q issued twice", id)
		}
		seen[id] = true
	}
	if len(seen) != workers*perWorker {
		t.Fatalf("got %d trace ids, want %d", len(seen), workers*perWorker)
	}

	views := agg.Spans.Traces(0)
	if len(views) != workers*perWorker {
		t.Fatalf("stitched traces = %d, want %d", len(views), workers*perWorker)
	}
	for _, v := range views {
		if !seen[v.TraceID] {
			t.Fatalf("trace %q was never issued to a caller", v.TraceID)
		}
		var root *telemetry.Span
		byID := map[string]telemetry.Span{}
		shardLegs, merges, isnChildren := 0, 0, 0
		for i := range v.Spans {
			sp := v.Spans[i]
			if sp.TraceID != v.TraceID {
				t.Fatalf("trace %q contains span of trace %q", v.TraceID, sp.TraceID)
			}
			byID[sp.SpanID] = sp
			switch {
			case sp.SpanID == "query":
				root = &v.Spans[i]
			case sp.Name == "shard":
				shardLegs++
			case sp.Name == "merge":
				merges++
			case strings.HasPrefix(sp.Name, "isn-"):
				isnChildren++
			}
		}
		if root == nil {
			t.Fatalf("trace %q has no root query span", v.TraceID)
		}
		if shardLegs != 2 || merges != 1 {
			t.Fatalf("trace %q: %d shard legs, %d merge spans; want 2 and 1",
				v.TraceID, shardLegs, merges)
		}
		if isnChildren < 2*3 {
			t.Fatalf("trace %q: %d rebased ISN spans, want >= 6", v.TraceID, isnChildren)
		}
		const slackMs = 1e-6 // float rounding from µs→ms conversions
		for _, sp := range v.Spans {
			if sp.SpanID == "query" {
				continue
			}
			// Modeled DVFS phases carry predicted durations at the planned
			// frequency, not wall time; when the real execution beats the
			// model they extend past the root's wall-clock end by design.
			wallBound := !strings.Contains(sp.Name, "-model-")
			if sp.StartMs < -slackMs || (wallBound && sp.EndMs > root.EndMs+slackMs) {
				t.Fatalf("trace %q: span %s/%s [%v, %v] outside root [0, %v]",
					v.TraceID, sp.Name, sp.SpanID, sp.StartMs, sp.EndMs, root.EndMs)
			}
			// Rebased ISN children must start at or after their shard leg's
			// send offset — the rebase is exactly that shift.
			if strings.HasPrefix(sp.Name, "isn-") && sp.ParentID != "" {
				if leg, ok := byID[sp.ParentID]; ok && leg.Name == "shard" &&
					sp.StartMs < leg.StartMs-slackMs {
					t.Fatalf("trace %q: ISN span %s starts %v before shard send %v",
						v.TraceID, sp.SpanID, sp.StartMs, leg.StartMs)
				}
			}
		}
	}
	if got := agg.Tracer.Emitted(); got != workers*perWorker {
		t.Fatalf("decision trace emitted %d, want %d", got, workers*perWorker)
	}
}

// TestStragglerStitchingConcurrent exercises partial aggregation under
// concurrency: one healthy shard, one shard that always blows the fan-out
// deadline. Every sampled query must return without the straggler, and its
// waterfall must carry exactly one straggler span closed at the trace end.
func TestStragglerStitchingConcurrent(t *testing.T) {
	_, _, urls := testCluster(t, 1)
	slow := newSlowShard(t, 2*time.Second)
	agg := NewAggregator([]string{urls[0], slow}, 10)
	agg.Policy = Partial
	agg.Quorum = 1
	agg.Timeout = 50 * time.Millisecond
	agg.Spans = telemetry.NewSpanTracer(2048)
	agg.TraceSample = 1

	const workers, perWorker = 4, 3
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < perWorker; q++ {
				resp, err := agg.Search(context.Background(), "canada")
				if err != nil {
					t.Error(err)
					return
				}
				if resp.ShardsResponded != 1 {
					t.Errorf("shards responded = %d, want 1", resp.ShardsResponded)
				}
				if resp.Stragglers != 1 {
					t.Errorf("stragglers = %d, want 1", resp.Stragglers)
				}
			}
		}()
	}
	wg.Wait()

	views := agg.Spans.Traces(0)
	if len(views) != workers*perWorker {
		t.Fatalf("stitched traces = %d, want %d", len(views), workers*perWorker)
	}
	for _, v := range views {
		stragglerSpans := 0
		var rootEnd float64
		for _, sp := range v.Spans {
			if sp.SpanID == "query" {
				rootEnd = sp.EndMs
			}
		}
		for _, sp := range v.Spans {
			if sp.Name != "straggler" {
				continue
			}
			stragglerSpans++
			if sp.Attr("shard") != 1 {
				t.Errorf("trace %q: straggler span names shard %v, want 1",
					v.TraceID, sp.Attr("shard"))
			}
			if sp.EndMs != rootEnd {
				t.Errorf("trace %q: straggler span ends at %v, trace root at %v",
					v.TraceID, sp.EndMs, rootEnd)
			}
		}
		if stragglerSpans != 1 {
			t.Errorf("trace %q: %d straggler spans, want 1", v.TraceID, stragglerSpans)
		}
	}
}
