package server

import (
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"gemini/internal/stats"
	"gemini/internal/telemetry"
)

// Live timelines: the wall-clock counterpart of the simulator's fixed-interval
// sampler. A TimelineSampler ticks on real time (this is the server package —
// the one place wall clocks are allowed), drains a listener's windowed
// counters, and appends telemetry.TimeseriesRow values with the exact schema
// the simulated exports use, so `/debug/timeline` on a live listener and
// `geminisim -timeline` are read by the same tooling (jq recipes, the HTML
// dashboard, the examples/timeline scripts).

// TimelineCounters is one listener's instantaneous timeline view: cumulative
// lifecycle counters, instantaneous depth gauges, the modeled energy
// accumulator, the current modeled ladder level (-1 when the listener has no
// DVFS model), and the latency window drained since the previous call.
type TimelineCounters struct {
	Arrivals, Completions, Drops uint64  // cumulative
	Violations                   uint64  // cumulative completions past the budget
	QueueDepth, InFlight         float64 // instantaneous
	// QueueHighWater is the deepest queue observed since the previous drain
	// (the per-window saturation mark; reset to the instantaneous depth on
	// each call, mirroring the simulator cursor's carry-over rule).
	QueueHighWater float64
	EnergyMJ       float64 // cumulative modeled energy
	FreqLevel      int     // current modeled ladder index, -1 = none
	LatenciesMs    []float64
}

// TimelineSampler samples a TimelineCounters source on a wall-clock ticker
// into a ring-buffered telemetry.Timeseries.
type TimelineSampler struct {
	ts   *telemetry.Timeseries
	stop chan struct{}
	once sync.Once
}

// StartTimeline launches a sampler over src: every interval it drains the
// source and appends one row; the ring retains the most recent `capacity`
// rows. freqsGHz labels the residency columns (the source's FreqLevel indexes
// into it); pass nil for listeners without a DVFS model. Returns nil on
// invalid interval or capacity.
func StartTimeline(src func() TimelineCounters, freqsGHz []float64, interval time.Duration, capacity int) *TimelineSampler {
	intervalMs := float64(interval) / float64(time.Millisecond)
	ts := telemetry.NewTimeseries(intervalMs, freqsGHz, capacity)
	if ts == nil {
		return nil
	}
	s := &TimelineSampler{ts: ts, stop: make(chan struct{})}
	go s.run(src, interval, len(freqsGHz))
	return s
}

func (s *TimelineSampler) run(src func() TimelineCounters, interval time.Duration, levels int) {
	t0 := time.Now()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var prev TimelineCounters
	lastMs := 0.0
	// Runtime self-telemetry baseline: GC pause and heap deltas are measured
	// window over window, anchored at sampler start.
	var mem, lastMem runtime.MemStats
	runtime.ReadMemStats(&lastMem)
	for {
		select {
		case now := <-tick.C:
			cur := src()
			nowMs := msBetween(t0, now)
			runtime.ReadMemStats(&mem)
			row := telemetry.TimeseriesRow{
				TimeMs:         nowMs,
				QueueDepth:     cur.QueueDepth,
				InFlight:       cur.InFlight,
				Arrivals:       cur.Arrivals - prev.Arrivals,
				Completions:    cur.Completions - prev.Completions,
				Drops:          cur.Drops - prev.Drops,
				SLOViolations:  cur.Violations - prev.Violations,
				QueueHighWater: cur.QueueHighWater,
				Goroutines:     float64(runtime.NumGoroutine()),
				GCPauseMs:      float64(mem.PauseTotalNs-lastMem.PauseTotalNs) / 1e6,
				HeapDeltaBytes: float64(mem.HeapAlloc) - float64(lastMem.HeapAlloc),
			}
			lastMem = mem
			if dt := nowMs - lastMs; dt > 0 {
				row.PowerW = (cur.EnergyMJ - prev.EnergyMJ) / dt
			}
			if levels > 0 {
				resid := make([]float64, levels)
				if cur.FreqLevel >= 0 && cur.FreqLevel < levels {
					// The live path attributes the whole window to the level
					// observed at the boundary — a sampled approximation of
					// the simulator's exact per-level accrual.
					resid[cur.FreqLevel] = 1
				}
				row.Residency = resid
			}
			if len(cur.LatenciesMs) > 0 {
				sort.Float64s(cur.LatenciesMs)
				row.P50Ms = stats.PercentileSorted(cur.LatenciesMs, 50)
				row.P95Ms = stats.PercentileSorted(cur.LatenciesMs, 95)
				row.P99Ms = stats.PercentileSorted(cur.LatenciesMs, 99)
			}
			s.ts.Append(row)
			prev, lastMs = cur, nowMs
		case <-s.stop:
			return
		}
	}
}

// Series exposes the sampled ring (nil-safe).
func (s *TimelineSampler) Series() *telemetry.Timeseries {
	if s == nil {
		return nil
	}
	return s.ts
}

// Handler serves the sampled series as /debug/timeline JSON — the schema
// shared with the simulated exports.
func (s *TimelineSampler) Handler(defaultN int) http.Handler {
	return telemetry.TimelineHandler(s.Series(), defaultN)
}

// Stop terminates the sampling goroutine. Idempotent.
func (s *TimelineSampler) Stop() {
	if s == nil {
		return
	}
	s.once.Do(func() { close(s.stop) })
}

// TimelineCounters snapshots the ISN's live counters and drains its latency
// window. It is the ISN's TimelineSampler source; sampling starts the
// accumulation (the counters cost nothing until the first call).
func (n *ISN) TimelineCounters() TimelineCounters {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tlOn = true
	tc := TimelineCounters{
		Arrivals:       n.tlArrivals,
		Completions:    n.tlCompletions,
		Drops:          n.tlDrops,
		Violations:     n.tlViolations,
		QueueDepth:     float64(n.depth),
		QueueHighWater: n.tlHW,
		EnergyMJ:       n.energyMJ,
		FreqLevel:      n.ladder.Index(n.modelFreq),
		LatenciesMs:    n.tlLats,
	}
	if float64(n.depth) > tc.QueueHighWater {
		tc.QueueHighWater = float64(n.depth)
	}
	if n.depth > 0 {
		tc.InFlight = 1 // the single working thread (Fig. 9)
	}
	n.tlLats = nil
	n.tlHW = float64(n.depth) // carry the boundary depth into the next window
	return tc
}

// TimelineCounters snapshots the aggregator's live counters and drains its
// latency window. The aggregator has no DVFS model, so energy stays zero and
// FreqLevel is -1.
func (a *Aggregator) TimelineCounters() TimelineCounters {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tlOn = true
	tc := TimelineCounters{
		Arrivals:       a.tlArrivals,
		Completions:    a.tlCompletions,
		Drops:          a.tlDrops,
		Violations:     a.tlViolations,
		QueueDepth:     float64(a.tlInFlight),
		InFlight:       float64(a.tlInFlight),
		QueueHighWater: a.tlHW,
		FreqLevel:      -1,
		LatenciesMs:    a.tlLats,
	}
	if float64(a.tlInFlight) > tc.QueueHighWater {
		tc.QueueHighWater = float64(a.tlInFlight)
	}
	a.tlLats = nil
	a.tlHW = float64(a.tlInFlight) // carry the boundary depth forward
	return tc
}
