package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/index"
	"gemini/internal/search"
	"gemini/internal/telemetry"
)

// testCluster builds nShards ISNs over distinct corpus shards plus their
// httptest servers.
func testCluster(t testing.TB, nShards int) ([]*ISN, []*httptest.Server, []string) {
	t.Helper()
	var isns []*ISN
	var servers []*httptest.Server
	var urls []string
	for s := 0; s < nShards; s++ {
		spec := corpus.SmallSpec()
		spec.Seed = int64(s + 1)
		c := corpus.Generate(spec)
		eng := search.NewEngine(index.Build(c), search.DefaultK)
		cost := search.DefaultCostModel()
		isn := NewISN(s, c, eng, cost)
		isn.Start()
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/search") {
				isn.ServeHTTP(w, r)
				return
			}
			http.NotFound(w, r)
		}))
		t.Cleanup(srv.Close)
		t.Cleanup(isn.Stop)
		isns = append(isns, isn)
		servers = append(servers, srv)
		urls = append(urls, srv.URL)
	}
	return isns, servers, urls
}

func postSearch(t *testing.T, url, query string) (*http.Response, ISNResponse) {
	t.Helper()
	body, _ := json.Marshal(SearchRequest{Query: query})
	resp, err := http.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var r ISNResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, r
}

func TestISNServesSearch(t *testing.T) {
	_, _, urls := testCluster(t, 1)
	resp, r := postSearch(t, urls[0], "united kingdom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(r.Results) == 0 || len(r.Results) > search.DefaultK {
		t.Fatalf("results = %d", len(r.Results))
	}
	if r.ServiceMs <= 0 {
		t.Errorf("service ms = %v", r.ServiceMs)
	}
	for _, res := range r.Results {
		if res.Shard != 0 {
			t.Errorf("shard tag = %d", res.Shard)
		}
	}
}

func TestISNBadRequests(t *testing.T) {
	_, _, urls := testCluster(t, 1)
	resp, err := http.Post(urls[0]+"/search", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", resp.StatusCode)
	}
	resp2, _ := postSearch(t, urls[0], "zzzznotaword")
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown terms: status %d", resp2.StatusCode)
	}
}

func TestISNSingleWorkerSerializes(t *testing.T) {
	isns, _, urls := testCluster(t, 1)
	_ = isns
	// Fire concurrent requests; the single working thread must serve all.
	const n = 24
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(SearchRequest{Query: "canada"})
			resp, err := http.Post(urls[0]+"/search", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- nil
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAggregatorMergesShards(t *testing.T) {
	_, _, urls := testCluster(t, 3)
	agg := NewAggregator(urls, 10)
	resp, err := agg.Search(context.Background(), "united kingdom")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsAsked != 3 || resp.ShardsResponded != 3 {
		t.Fatalf("shards %d/%d", resp.ShardsResponded, resp.ShardsAsked)
	}
	if len(resp.Results) != 10 {
		t.Fatalf("merged results = %d", len(resp.Results))
	}
	// Globally sorted by descending score.
	for i := 1; i < len(resp.Results); i++ {
		if resp.Results[i].Score > resp.Results[i-1].Score {
			t.Fatal("merged results not sorted")
		}
	}
	// Per-shard metadata present.
	if len(resp.PerShard) != 3 {
		t.Errorf("per-shard metadata = %d", len(resp.PerShard))
	}
	if resp.LatencyMs <= 0 {
		t.Errorf("latency = %v", resp.LatencyMs)
	}
}

func TestAggregatorHTTPEndpoint(t *testing.T) {
	_, _, urls := testCluster(t, 2)
	agg := NewAggregator(urls, 5)
	srv := httptest.NewServer(agg)
	defer srv.Close()
	body, _ := json.Marshal(SearchRequest{Query: "canada"})
	resp, err := http.Post(srv.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var ar AggResponse
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Results) == 0 || len(ar.Results) > 5 {
		t.Errorf("results = %d", len(ar.Results))
	}
}

func TestAggregatorPartialIgnoresStragglers(t *testing.T) {
	_, _, urls := testCluster(t, 2)
	// A third "shard" that never answers in time.
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
	}))
	defer slow.Close()

	agg := NewAggregator(append(urls, slow.URL), 10)
	agg.Policy = Partial
	agg.Quorum = 2
	agg.Timeout = 500 * time.Millisecond

	start := time.Now()
	resp, err := agg.Search(context.Background(), "canada")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsResponded != 2 {
		t.Fatalf("responded = %d, want 2 (straggler ignored)", resp.ShardsResponded)
	}
	if elapsed := time.Since(start); elapsed > 1500*time.Millisecond {
		t.Errorf("partial aggregation waited %v for the straggler", elapsed)
	}
}

// TestAggregatorStragglerCounted pins the partial-aggregation telemetry
// contract: a shard still in flight at the cutoff is dropped — counted in
// the per-shard straggler counter, not as an error and not as a violated
// aggregation.
func TestAggregatorStragglerCounted(t *testing.T) {
	_, _, urls := testCluster(t, 2)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
	}))
	defer slow.Close()

	met := NewMetrics(nil)
	agg := NewAggregator(append(urls, slow.URL), 10)
	agg.Policy = Partial
	agg.Quorum = 2
	agg.Timeout = 500 * time.Millisecond
	agg.BudgetMs = 10_000 // wall time in tests is noisy; keep the budget slack
	agg.Instrument(met)
	tr := telemetry.NewTracer(16)
	agg.Tracer = tr

	resp, err := agg.Search(context.Background(), "canada")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsResponded != 2 {
		t.Fatalf("responded = %d, want 2", resp.ShardsResponded)
	}
	if resp.Stragglers != 1 || resp.ShardErrors != 0 {
		t.Fatalf("stragglers/errors = %d/%d, want 1/0", resp.Stragglers, resp.ShardErrors)
	}

	var buf bytes.Buffer
	if err := met.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`gemini_agg_shard_stragglers_total{shard="2"} 1`,
		`gemini_agg_shard_stragglers_total{shard="0"} 0`, // pre-registered at zero
		`gemini_agg_shard_errors_total{shard="2"} 0`,     // dropped, not errored
		`gemini_agg_partial_aggregations_total 1`,
		`gemini_agg_requests_total 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}

	ds := tr.Ring().Snapshot(0)
	if len(ds) != 1 {
		t.Fatalf("decisions = %d, want 1", len(ds))
	}
	if ds[0].Violated {
		t.Error("straggler-dropped aggregation marked violated")
	}
	if ds[0].QueueDepth != 2 {
		t.Errorf("decision shards responded = %d, want 2", ds[0].QueueDepth)
	}
}

// TestISNObservability checks the shard-side instruments and decision trace
// of the live path: per-query modeled DVFS decisions, prediction audit, and
// the Prometheus families the CI smoke job greps for.
func TestISNObservability(t *testing.T) {
	spec := corpus.SmallSpec()
	c := corpus.Generate(spec)
	eng := search.NewEngine(index.Build(c), search.DefaultK)
	isn := NewISN(0, c, eng, search.DefaultCostModel())
	isn.Service = stubService{ms: 7.5}
	isn.ErrPred = stubError{ms: 1.25}
	met := NewMetrics(nil)
	isn.Instrument(met)
	tr := telemetry.NewTracer(32)
	isn.Tracer = tr
	isn.Start()
	t.Cleanup(isn.Stop)
	srv := httptest.NewServer(isn)
	t.Cleanup(srv.Close)

	const reqs = 5
	for i := 0; i < reqs; i++ {
		if resp, _ := postSearchTo(t, srv.URL, "canada"); resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}

	if got := tr.Emitted(); got != reqs {
		t.Fatalf("decisions = %d, want %d", got, reqs)
	}
	for _, d := range tr.Ring().Snapshot(0) {
		if d.PredictedMs != 7.5 || d.PredErrMs != 1.25 {
			t.Fatalf("prediction view = %v/%v", d.PredictedMs, d.PredErrMs)
		}
		if d.ActualMs <= 0 || d.ServiceMs <= 0 || d.EnergyMJ <= 0 {
			t.Fatalf("modeled outcome missing: %+v", d)
		}
		if d.InitialFreqGHz <= 0 || d.InitialFreqGHz > float64(cpu.FDefault) {
			t.Fatalf("initial frequency = %v", d.InitialFreqGHz)
		}
		if d.Policy != "isn-live" {
			t.Fatalf("policy = %q", d.Policy)
		}
	}
	q := tr.Quality()
	if q.N != reqs {
		t.Errorf("quality audit n = %d, want %d", q.N, reqs)
	}

	var buf bytes.Buffer
	if err := met.Registry.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`gemini_isn_requests_total{shard="0"} 5`,
		`gemini_isn_request_latency_ms_count{shard="0"} 5`,
		`gemini_isn_service_time_ms_count{shard="0"} 5`,
		`gemini_isn_freq_transitions_total{shard="0"}`,
		`gemini_isn_energy_mj{shard="0"}`,
		`gemini_isn_queue_depth{shard="0"}`,
		`gemini_isn_predictions_total{shard="0"} 5`,
		`gemini_isn_predict_abs_err_ms_count{shard="0"} 5`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

func TestAggregatorTimeoutCutsOff(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
	}))
	defer slow.Close()
	_, _, urls := testCluster(t, 1)

	agg := NewAggregator([]string{urls[0], slow.URL}, 10)
	agg.Policy = Partial
	agg.Quorum = 2 // wants both, but the timeout fires first
	agg.Timeout = 300 * time.Millisecond
	resp, err := agg.Search(context.Background(), "canada")
	if err != nil {
		t.Fatal(err)
	}
	if resp.ShardsResponded != 1 {
		t.Errorf("responded = %d, want 1", resp.ShardsResponded)
	}
}

func TestAggregatorAllShardsDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer dead.Close()
	agg := NewAggregator([]string{dead.URL}, 10)
	if _, err := agg.Search(context.Background(), "canada"); err == nil {
		t.Error("dead shard produced a result")
	}
	empty := NewAggregator(nil, 10)
	if _, err := empty.Search(context.Background(), "canada"); err == nil {
		t.Error("empty shard list accepted")
	}
}

func TestAggregatorContextCancel(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
	}))
	defer slow.Close()
	agg := NewAggregator([]string{slow.URL}, 10)
	agg.Policy = Partial
	agg.Quorum = 1
	agg.Timeout = 3 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := agg.Search(ctx, "canada"); err == nil {
		t.Error("cancelled context produced a result")
	}
}

// isnWithPredictors attaches the trained predictors so responses carry the
// S*/E* metadata Gemini's controller consumes.
func TestISNPredictorAnnotations(t *testing.T) {
	spec := corpus.SmallSpec()
	c := corpus.Generate(spec)
	eng := search.NewEngine(index.Build(c), search.DefaultK)
	cost := search.DefaultCostModel()
	isn := NewISN(0, c, eng, cost)

	// A stub predictor pair keeps the test fast and deterministic.
	isn.Service = stubService{ms: 7.5}
	isn.ErrPred = stubError{ms: 1.25}
	isn.Start()
	t.Cleanup(isn.Stop)
	srv := httptest.NewServer(isn)
	t.Cleanup(srv.Close)

	resp, r := postSearchTo(t, srv.URL, "canada")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if r.PredictedMs != 7.5 || r.PredErrMs != 1.25 {
		t.Errorf("predictions = %v/%v, want 7.5/1.25", r.PredictedMs, r.PredErrMs)
	}
}

type stubService struct{ ms float64 }

func (s stubService) PredictMs(search.FeatureVector) float64 { return s.ms }
func (s stubService) Name() string                           { return "stub" }
func (s stubService) OverheadUs() float64                    { return 1 }

type stubError struct{ ms float64 }

func (s stubError) PredictErrMs(search.FeatureVector) float64 { return s.ms }
func (s stubError) Name() string                              { return "stub-err" }
func (s stubError) OverheadUs() float64                       { return 1 }

// postSearchTo posts directly to a handler-rooted server URL (no /search
// suffix assumptions beyond the handler itself).
func postSearchTo(t *testing.T, url, query string) (*http.Response, ISNResponse) {
	t.Helper()
	body, _ := json.Marshal(SearchRequest{Query: query})
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var r ISNResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, r
}

func TestISNResultKLimit(t *testing.T) {
	spec := corpus.SmallSpec()
	c := corpus.Generate(spec)
	eng := search.NewEngine(index.Build(c), search.DefaultK)
	isn := NewISN(0, c, eng, search.DefaultCostModel())
	isn.Start()
	t.Cleanup(isn.Stop)
	srv := httptest.NewServer(isn)
	t.Cleanup(srv.Close)

	body, _ := json.Marshal(SearchRequest{Query: "united", K: 3})
	resp, err := http.Post(srv.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var r ISNResponse
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 3 {
		t.Errorf("results = %d, want K=3", len(r.Results))
	}
}
