package corpus

import (
	"math/rand"
	"strings"
)

// Query is a search request: one term ("term query") or several ("phrase
// query" in the paper's Table II terminology — scored disjunctively as the
// paper's engine does for feature extraction).
type Query struct {
	Terms []TermID
	Text  string
}

// Len returns the number of terms (the Table II "Query Length" feature).
func (q Query) Len() int { return len(q.Terms) }

// QueryGen samples queries against a corpus. Real query logs skew toward
// popular terms, so terms are drawn from a (separately parameterized) Zipf
// distribution over popularity ranks; query length is 1–3 terms with the
// bulk being single-term queries.
type QueryGen struct {
	corpus *Corpus
	rng    *rand.Rand
	zipf   *rand.Zipf
}

// NewQueryGen creates a deterministic query generator.
func NewQueryGen(c *Corpus, seed int64) *QueryGen {
	rng := rand.New(rand.NewSource(seed))
	// Slightly flatter than the corpus distribution so medium-frequency
	// terms (the interesting, variable ones) appear regularly.
	zipf := rand.NewZipf(rng, 1.12, 6, uint64(c.Spec.VocabSize-1))
	return &QueryGen{corpus: c, rng: rng, zipf: zipf}
}

// Next samples the next query.
func (g *QueryGen) Next() Query {
	n := 1
	switch p := g.rng.Float64(); {
	case p < 0.60:
		n = 1
	case p < 0.90:
		n = 2
	default:
		n = 3
	}
	terms := make([]TermID, 0, n)
	seen := map[TermID]bool{}
	for len(terms) < n {
		t := TermID(g.zipf.Uint64())
		if !seen[t] {
			seen[t] = true
			terms = append(terms, t)
		}
	}
	words := make([]string, len(terms))
	for i, t := range terms {
		words[i] = g.corpus.Vocab[t]
	}
	return Query{Terms: terms, Text: strings.Join(words, " ")}
}

// Batch samples n queries.
func (g *QueryGen) Batch(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// ParseQuery builds a Query from whitespace-separated words, dropping words
// not in the vocabulary. It returns false if no word resolved.
func ParseQuery(c *Corpus, text string) (Query, bool) {
	var terms []TermID
	for _, w := range strings.Fields(strings.ToLower(text)) {
		if id := c.TermIDOf(w); id >= 0 {
			terms = append(terms, id)
		}
	}
	if len(terms) == 0 {
		return Query{}, false
	}
	return Query{Terms: terms, Text: text}, true
}
