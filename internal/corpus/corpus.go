// Package corpus generates the synthetic document collection and query
// workload that stand in for the paper's 65 GB English Wikipedia dump
// (34 M documents) and its query traces.
//
// The substitution (documented in DESIGN.md) preserves the properties Gemini
// actually depends on: Zipf-distributed term document frequencies give
// posting lists spanning several orders of magnitude, which in turn produce
// the paper's Fig. 1c service-time spread (≈14× between light and heavy
// queries); per-term score shapes vary so the Table II features carry
// signal for the neural-network predictors.
package corpus

import (
	"fmt"
	"math"
	"math/rand"
)

// TermID identifies a vocabulary term.
type TermID int32

// Spec configures corpus generation. The zero value is not useful; use
// DefaultSpec or SmallSpec.
type Spec struct {
	NumDocs    int     // documents in the collection
	VocabSize  int     // distinct terms
	ZipfS      float64 // Zipf exponent for term popularity (>1)
	ZipfV      float64 // Zipf offset (>=1)
	MeanDocLen float64 // mean tokens per document (log-normal)
	SigmaLen   float64 // log-normal sigma of document length
	Seed       int64
}

// DefaultSpec is the full-size configuration used by the experiment harness:
// large enough to produce posting lists from a handful of documents up to
// tens of thousands, small enough to index in a couple of seconds.
func DefaultSpec() Spec {
	return Spec{
		NumDocs:    30000,
		VocabSize:  12000,
		ZipfS:      1.25,
		ZipfV:      4,
		MeanDocLen: 180,
		SigmaLen:   0.6,
		Seed:       1,
	}
}

// SmallSpec is a fast configuration for unit tests.
func SmallSpec() Spec {
	return Spec{
		NumDocs:    1200,
		VocabSize:  800,
		ZipfS:      1.25,
		ZipfV:      3,
		MeanDocLen: 80,
		SigmaLen:   0.5,
		Seed:       1,
	}
}

// Corpus is a generated document collection. Docs[d] lists the term
// occurrences of document d (with repetitions — term frequency matters for
// scoring).
type Corpus struct {
	Spec  Spec
	Docs  [][]TermID
	Vocab []string
}

// exampleTerms gives human-readable names to selected vocabulary slots so
// that examples and the Table II reproduction read like the paper ("toyota",
// "united kingdom", the Fig. 1c queries, ...). The rank assignments mirror
// the paper's examples: "united"/"kingdom" are extremely popular (Table II
// reports a 2.37M posting list), "toyota" is a mid-frequency term (20742
// postings, two orders of magnitude smaller), and the Fig. 1c trio spans the
// popularity range so their service times spread the way the paper's do
// (Canada 14x Tokyo on the same ISN).
var exampleTerms = map[int]string{
	0:   "united",
	1:   "kingdom",
	2:   "canada",
	6:   "wikipedia",
	7:   "search",
	8:   "engine",
	9:   "power",
	10:  "energy",
	11:  "latency",
	12:  "london",
	13:  "paris",
	60:  "toyota",
	150: "bobby",
	600: "tokyo",
}

// Generate builds a corpus from the spec. Generation is deterministic for a
// given spec (including its seed).
func Generate(spec Spec) *Corpus {
	if spec.NumDocs <= 0 || spec.VocabSize <= 0 {
		panic("corpus: spec must set NumDocs and VocabSize")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := rand.NewZipf(rng, spec.ZipfS, spec.ZipfV, uint64(spec.VocabSize-1))

	vocab := make([]string, spec.VocabSize)
	for i := range vocab {
		if name, ok := exampleTerms[i]; ok {
			vocab[i] = name
		} else {
			vocab[i] = syntheticWord(i)
		}
	}

	docs := make([][]TermID, spec.NumDocs)
	muLen := math.Log(spec.MeanDocLen) - spec.SigmaLen*spec.SigmaLen/2
	for d := range docs {
		n := int(math.Exp(muLen + spec.SigmaLen*rng.NormFloat64()))
		if n < 8 {
			n = 8
		}
		terms := make([]TermID, n)
		for i := range terms {
			terms[i] = TermID(zipf.Uint64())
		}
		docs[d] = terms
	}
	return &Corpus{Spec: spec, Docs: docs, Vocab: vocab}
}

// syntheticWord derives a deterministic pronounceable pseudo-word for
// vocabulary slot i.
func syntheticWord(i int) string {
	consonants := "bcdfghklmnprstvz"
	vowels := "aeiou"
	var b []byte
	n := i
	for j := 0; j < 3; j++ {
		b = append(b, consonants[n%len(consonants)])
		n /= len(consonants)
		b = append(b, vowels[n%len(vowels)])
		n /= len(vowels)
	}
	return fmt.Sprintf("%s%d", b, i)
}

// TermIDOf returns the TermID of the given word, or -1 if absent. Linear in
// vocabulary size; intended for examples and tests, not hot paths.
func (c *Corpus) TermIDOf(word string) TermID {
	for i, w := range c.Vocab {
		if w == word {
			return TermID(i)
		}
	}
	return -1
}

// TotalTokens returns the number of token occurrences across all documents.
func (c *Corpus) TotalTokens() int {
	n := 0
	for _, d := range c.Docs {
		n += len(d)
	}
	return n
}
