package corpus

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(SmallSpec())
	b := Generate(SmallSpec())
	if len(a.Docs) != len(b.Docs) {
		t.Fatalf("doc counts differ")
	}
	for i := range a.Docs {
		if len(a.Docs[i]) != len(b.Docs[i]) {
			t.Fatalf("doc %d length differs", i)
		}
		for j := range a.Docs[i] {
			if a.Docs[i][j] != b.Docs[i][j] {
				t.Fatalf("doc %d token %d differs", i, j)
			}
		}
	}
}

func TestGenerateShape(t *testing.T) {
	spec := SmallSpec()
	c := Generate(spec)
	if len(c.Docs) != spec.NumDocs {
		t.Fatalf("NumDocs = %d, want %d", len(c.Docs), spec.NumDocs)
	}
	if len(c.Vocab) != spec.VocabSize {
		t.Fatalf("VocabSize = %d, want %d", len(c.Vocab), spec.VocabSize)
	}
	for i, d := range c.Docs {
		if len(d) < 8 {
			t.Fatalf("doc %d too short: %d", i, len(d))
		}
		for _, term := range d {
			if term < 0 || int(term) >= spec.VocabSize {
				t.Fatalf("doc %d has out-of-range term %d", i, term)
			}
		}
	}
	// Mean length should be in the right ballpark of the log-normal target.
	mean := float64(c.TotalTokens()) / float64(spec.NumDocs)
	if mean < spec.MeanDocLen*0.6 || mean > spec.MeanDocLen*1.6 {
		t.Errorf("mean doc length %.1f far from target %.1f", mean, spec.MeanDocLen)
	}
}

func TestZipfSkew(t *testing.T) {
	c := Generate(SmallSpec())
	df := make([]int, c.Spec.VocabSize) // document frequency
	for _, d := range c.Docs {
		seen := map[TermID]bool{}
		for _, term := range d {
			if !seen[term] {
				seen[term] = true
				df[term]++
			}
		}
	}
	// The most popular term must appear in far more documents than the
	// median term: this skew is what produces the paper's 14x service-time
	// variation (Fig. 1c).
	maxDF := 0
	nonzero := 0
	for _, f := range df {
		if f > maxDF {
			maxDF = f
		}
		if f > 0 {
			nonzero++
		}
	}
	if maxDF < c.Spec.NumDocs/4 {
		t.Errorf("max document frequency %d too small for %d docs", maxDF, c.Spec.NumDocs)
	}
	if nonzero < c.Spec.VocabSize/10 {
		t.Errorf("only %d terms used; vocabulary coverage too small", nonzero)
	}
}

func TestExampleTermsPresent(t *testing.T) {
	c := Generate(SmallSpec())
	for _, w := range []string{"toyota", "united", "kingdom", "canada", "bobby", "tokyo"} {
		if c.TermIDOf(w) < 0 {
			t.Errorf("example term %q missing from vocabulary", w)
		}
	}
	if c.TermIDOf("notaword") != -1 {
		t.Errorf("unknown word resolved")
	}
}

func TestSyntheticWordsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		w := syntheticWord(i)
		if seen[w] {
			t.Fatalf("duplicate synthetic word %q at %d", w, i)
		}
		seen[w] = true
	}
}

func TestQueryGenDistribution(t *testing.T) {
	c := Generate(SmallSpec())
	g := NewQueryGen(c, 42)
	counts := map[int]int{}
	for i := 0; i < 3000; i++ {
		q := g.Next()
		counts[q.Len()]++
		if q.Len() < 1 || q.Len() > 3 {
			t.Fatalf("query length %d out of range", q.Len())
		}
		seen := map[TermID]bool{}
		for _, term := range q.Terms {
			if seen[term] {
				t.Fatalf("duplicate term in query %v", q)
			}
			seen[term] = true
			if term < 0 || int(term) >= c.Spec.VocabSize {
				t.Fatalf("term out of range: %d", term)
			}
		}
		if q.Text == "" {
			t.Fatalf("empty query text")
		}
	}
	if counts[1] < counts[2] || counts[2] < counts[3] {
		t.Errorf("length distribution not skewed to short queries: %v", counts)
	}
}

func TestQueryGenDeterministic(t *testing.T) {
	c := Generate(SmallSpec())
	a := NewQueryGen(c, 7).Batch(50)
	b := NewQueryGen(c, 7).Batch(50)
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("query %d differs: %q vs %q", i, a[i].Text, b[i].Text)
		}
	}
}

func TestBatch(t *testing.T) {
	c := Generate(SmallSpec())
	qs := NewQueryGen(c, 1).Batch(10)
	if len(qs) != 10 {
		t.Fatalf("Batch(10) returned %d", len(qs))
	}
}

func TestParseQuery(t *testing.T) {
	c := Generate(SmallSpec())
	q, ok := ParseQuery(c, "United Kingdom")
	if !ok || q.Len() != 2 {
		t.Fatalf("ParseQuery failed: %v %v", q, ok)
	}
	if c.Vocab[q.Terms[0]] != "united" || c.Vocab[q.Terms[1]] != "kingdom" {
		t.Errorf("wrong terms: %v", q.Terms)
	}
	if _, ok := ParseQuery(c, "zzzz qqqq"); ok {
		t.Errorf("nonsense query parsed")
	}
	q, ok = ParseQuery(c, "toyota zzzz")
	if !ok || q.Len() != 1 {
		t.Errorf("partial parse failed: %v %v", q, ok)
	}
}

// Property: every generated query is well-formed for any seed.
func TestQueryGenProperty(t *testing.T) {
	c := Generate(SmallSpec())
	f := func(seed int64) bool {
		g := NewQueryGen(c, seed)
		for i := 0; i < 20; i++ {
			q := g.Next()
			if q.Len() < 1 || q.Len() > 3 || q.Text == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
