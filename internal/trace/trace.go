// Package trace models the query-arrival workloads of the paper's
// evaluation: the Wikipedia trace with its diurnal and day-of-week request
// rate pattern plus strong per-second variability (Fig. 1b), the burstier
// Lucene nightly-benchmark trace, and the heavy-tailed TREC Million Query
// Track trace. Arrivals are generated as non-homogeneous Poisson processes
// by thinning, deterministically for a given seed.
package trace

import (
	"math"
	"math/rand"
)

// Trace is a named sequence of absolute arrival times in milliseconds,
// ascending.
type Trace struct {
	Name     string
	Arrivals []float64
}

// Len returns the number of arrivals.
func (t *Trace) Len() int { return len(t.Arrivals) }

// DurationMs returns the time of the last arrival (0 if empty).
func (t *Trace) DurationMs() float64 {
	if len(t.Arrivals) == 0 {
		return 0
	}
	return t.Arrivals[len(t.Arrivals)-1]
}

// MeanRPS returns the average request rate over the trace duration.
func (t *Trace) MeanRPS() float64 {
	d := t.DurationMs()
	if d == 0 {
		return 0
	}
	return float64(len(t.Arrivals)) / (d / 1000)
}

// InterArrivalsMs returns the gaps between consecutive arrivals.
func (t *Trace) InterArrivalsMs() []float64 {
	if len(t.Arrivals) < 2 {
		return nil
	}
	out := make([]float64, len(t.Arrivals)-1)
	for i := 1; i < len(t.Arrivals); i++ {
		out[i-1] = t.Arrivals[i] - t.Arrivals[i-1]
	}
	return out
}

// RPSSeries buckets arrivals into windows of windowMs and returns the
// request rate (in RPS) of each window across the full duration.
func (t *Trace) RPSSeries(windowMs, durationMs float64) []float64 {
	n := int(math.Ceil(durationMs / windowMs))
	if n <= 0 {
		return nil
	}
	counts := make([]float64, n)
	for _, a := range t.Arrivals {
		i := int(a / windowMs)
		if i >= 0 && i < n {
			counts[i]++
		}
	}
	for i := range counts {
		counts[i] /= windowMs / 1000
	}
	return counts
}

// RateFunc is an instantaneous arrival rate in requests/second at time tMs.
type RateFunc func(tMs float64) float64

// GenPoisson draws a non-homogeneous Poisson process on [0, durationMs) with
// the given rate function via Lewis-Shedler thinning. maxRPS must bound the
// rate function over the interval.
func GenPoisson(rate RateFunc, maxRPS, durationMs float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	var arrivals []float64
	t := 0.0
	meanGapMs := 1000 / maxRPS
	for {
		t += rng.ExpFloat64() * meanGapMs
		if t >= durationMs {
			break
		}
		if rng.Float64() <= rate(t)/maxRPS {
			arrivals = append(arrivals, t)
		}
	}
	return arrivals
}

// GenFixedRPS draws a homogeneous Poisson process at the given rate — the
// synthetic constant-load used by the Fig. 10/11 RPS sweep.
func GenFixedRPS(rps, durationMs float64, seed int64) *Trace {
	arr := GenPoisson(func(float64) float64 { return rps }, rps, durationMs, seed)
	return &Trace{Name: "fixed", Arrivals: arr}
}

// hashNoise derives a deterministic multiplicative factor in
// [1-amp, 1+amp] for integer bucket i — the per-second rate jitter of
// Fig. 1b's bottom-left panel, reproducible without carrying RNG state in
// the rate function.
func hashNoise(i int64, amp float64, salt uint64) float64 {
	x := uint64(i)*0x9E3779B97F4A7C15 + salt
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	u := float64(x%1_000_000) / 1_000_000 // uniform [0,1)
	return 1 - amp + 2*amp*u
}
