package trace

import (
	"math"
	"testing"
	"testing/quick"

	"gemini/internal/stats"
)

func TestGenFixedRPS(t *testing.T) {
	tr := GenFixedRPS(50, 120_000, 1)
	if tr.Len() == 0 {
		t.Fatal("no arrivals")
	}
	// Mean rate within 10% of target.
	if r := tr.MeanRPS(); math.Abs(r-50) > 5 {
		t.Errorf("mean RPS = %v, want ≈50", r)
	}
	// Ascending arrival times.
	for i := 1; i < tr.Len(); i++ {
		if tr.Arrivals[i] < tr.Arrivals[i-1] {
			t.Fatalf("arrivals not sorted at %d", i)
		}
	}
	if tr.DurationMs() > 120_000 {
		t.Errorf("arrival beyond duration: %v", tr.DurationMs())
	}
}

func TestGenPoissonDeterministic(t *testing.T) {
	a := GenFixedRPS(30, 60_000, 7)
	b := GenFixedRPS(30, 60_000, 7)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
}

func TestInterArrivalsExponentialish(t *testing.T) {
	tr := GenFixedRPS(100, 300_000, 3)
	gaps := tr.InterArrivalsMs()
	mean, _ := stats.Mean(gaps)
	// Poisson at 100 RPS: mean gap 10 ms; CV ≈ 1.
	if math.Abs(mean-10) > 1.5 {
		t.Errorf("mean gap = %v ms, want ≈10", mean)
	}
	v, _ := stats.Variance(gaps)
	cv := math.Sqrt(v) / mean
	if cv < 0.8 || cv > 1.2 {
		t.Errorf("coefficient of variation = %v, want ≈1", cv)
	}
}

func TestRPSSeries(t *testing.T) {
	tr := &Trace{Arrivals: []float64{100, 200, 1100, 1200, 1300}}
	s := tr.RPSSeries(1000, 2000)
	if len(s) != 2 {
		t.Fatalf("series len = %d", len(s))
	}
	if s[0] != 2 || s[1] != 3 {
		t.Errorf("series = %v, want [2 3]", s)
	}
}

func TestEmptyTrace(t *testing.T) {
	tr := &Trace{}
	if tr.DurationMs() != 0 || tr.MeanRPS() != 0 {
		t.Error("empty trace stats nonzero")
	}
	if tr.InterArrivalsMs() != nil {
		t.Error("empty trace inter-arrivals")
	}
}

// Fig. 1b shape: the long Wikipedia trace's normalized hourly RPS must span
// roughly 4x between min and max and show a diurnal pattern.
func TestWikipediaLongShape(t *testing.T) {
	tr := GenWikipediaLong(6, 150, 5)
	hourly := tr.RPSSeries(hourMs, 150*hourMs)
	if len(hourly) != 150 {
		t.Fatalf("hourly buckets = %d", len(hourly))
	}
	mn, _ := stats.Min(hourly)
	mx, _ := stats.Max(hourly)
	if mn <= 0 {
		t.Fatalf("an hour with zero arrivals (rate too low for the test)")
	}
	ratio := mx / mn
	if ratio < 2.5 || ratio > 8 {
		t.Errorf("normalized RPS range = %.1fx, want ≈4x", ratio)
	}
}

// The per-second RPS of the eval Wikipedia trace must vary substantially
// (the paper's argument for per-query management, Fig. 1b bottom-left).
func TestWikipediaEvalPerSecondVariability(t *testing.T) {
	tr := GenEvalTrace("wiki", 60, 200_000, 9)
	sec := tr.RPSSeries(1000, 200_000)
	mean, _ := stats.Mean(sec)
	v, _ := stats.Variance(sec)
	cv := math.Sqrt(v) / mean
	if cv < 0.15 {
		t.Errorf("per-second CV = %v, want > 0.15", cv)
	}
}

func TestEvalTraceMeanRates(t *testing.T) {
	for _, name := range EvalTraceNames {
		tr := GenEvalTrace(name, 60, 1_000_000, 11)
		got := tr.MeanRPS()
		if got < 30 || got > 90 {
			t.Errorf("%s: mean RPS = %v, want ≈60", name, got)
		}
	}
}

func TestEvalTraceDistinctShapes(t *testing.T) {
	wiki := GenEvalTrace("wiki", 60, 1_000_000, 2)
	lucene := GenEvalTrace("lucene", 60, 1_000_000, 2)
	trec := GenEvalTrace("trec", 60, 1_000_000, 2)

	cv := func(tr *Trace) float64 {
		s := tr.RPSSeries(10_000, 1_000_000)
		mean, _ := stats.Mean(s)
		v, _ := stats.Variance(s)
		return math.Sqrt(v) / mean
	}
	cvW, cvL, cvT := cv(wiki), cv(lucene), cv(trec)
	// Lucene's plateau switching makes it the burstiest at the 10 s scale;
	// all three must differ meaningfully from one another.
	if cvL <= cvW {
		t.Errorf("lucene CV %v not above wiki CV %v", cvL, cvW)
	}
	if cvT <= 0.1 {
		t.Errorf("trec CV %v too flat", cvT)
	}
}

func TestGenEvalTraceUnknownName(t *testing.T) {
	tr := GenEvalTrace("nope", 40, 100_000, 1)
	if got := tr.MeanRPS(); math.Abs(got-40) > 8 {
		t.Errorf("fallback constant-rate trace RPS = %v", got)
	}
}

func TestHashNoiseBounds(t *testing.T) {
	f := func(i int64, salt uint64) bool {
		v := hashNoise(i, 0.3, salt)
		return v >= 0.7 && v <= 1.3
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHashNoiseDeterministicAndVaried(t *testing.T) {
	if hashNoise(5, 0.2, 1) != hashNoise(5, 0.2, 1) {
		t.Error("hashNoise not deterministic")
	}
	seen := map[float64]bool{}
	for i := int64(0); i < 100; i++ {
		seen[hashNoise(i, 0.2, 1)] = true
	}
	if len(seen) < 50 {
		t.Errorf("hashNoise not varied: %d distinct of 100", len(seen))
	}
}

// Property: thinning never exceeds the declared max rate by construction —
// the mean RPS of any generated trace is below maxRPS.
func TestGenPoissonRateBound(t *testing.T) {
	f := func(seed int64) bool {
		tr := GenEvalTrace("trec", 50, 200_000, seed)
		return tr.MeanRPS() <= 50*3.2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Error(err)
	}
}
