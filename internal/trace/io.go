package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteCSV writes the trace as a one-column CSV ("arrival_ms" header).
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "arrival_ms"); err != nil {
		return err
	}
	for _, a := range t.Arrivals {
		if _, err := fmt.Fprintf(bw, "%.6f\n", a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (a header line is optional;
// blank lines are skipped). Arrivals must be non-negative and ascending.
func ReadCSV(r io.Reader, name string) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var arrivals []float64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text == "arrival_ms" {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("trace: line %d: negative arrival %v", line, v)
		}
		if len(arrivals) > 0 && v < arrivals[len(arrivals)-1] {
			return nil, fmt.Errorf("trace: line %d: arrivals not ascending (%v after %v)",
				line, v, arrivals[len(arrivals)-1])
		}
		arrivals = append(arrivals, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &Trace{Name: name, Arrivals: arrivals}, nil
}

// SaveFile writes the trace to a CSV file.
func (t *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}

// LoadFile reads a trace CSV file.
func LoadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	name := path
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		name = path[i+1:]
	}
	return ReadCSV(f, name)
}

// Slice returns the sub-trace with arrivals in [fromMs, toMs), re-based so
// the window starts at zero — replaying a segment of a long trace.
func (t *Trace) Slice(fromMs, toMs float64) *Trace {
	out := &Trace{Name: t.Name + "[slice]"}
	for _, a := range t.Arrivals {
		if a >= fromMs && a < toMs {
			out.Arrivals = append(out.Arrivals, a-fromMs)
		}
	}
	return out
}

// Scale returns a copy with all inter-arrival gaps multiplied by factor —
// time-compressing a long trace into an evaluation window (the paper
// compresses its 12-hour load into 1000 s the same way, §VI-A).
func (t *Trace) Scale(factor float64) *Trace {
	out := &Trace{Name: t.Name + "[scaled]", Arrivals: make([]float64, len(t.Arrivals))}
	for i, a := range t.Arrivals {
		out.Arrivals[i] = a * factor
	}
	return out
}
