package trace

import "math"

const (
	hourMs = 3_600_000.0
	dayMs  = 24 * hourMs
)

// WikipediaLongRate is the multi-day rate model behind Fig. 1b: a diurnal
// sinusoid whose peak-to-trough spans ≈4x (the paper's normalized RPS CDF
// tops out near 4), a day-of-week dip on weekends, and per-second noise.
// baseRPS is the mean rate.
func WikipediaLongRate(baseRPS float64) RateFunc {
	return func(tMs float64) float64 {
		day := tMs / dayMs
		diurnal := 1 + 0.62*math.Sin(2*math.Pi*(day-0.25))
		weekday := 1.0
		if int(day)%7 >= 5 { // days 5,6 of each week are the weekend dip
			weekday = 0.78
		}
		noise := hashNoise(int64(tMs/1000), 0.25, 0x5EED)
		r := baseRPS * diurnal * weekday * noise
		if r < 0.05*baseRPS {
			r = 0.05 * baseRPS
		}
		return r
	}
}

// GenWikipediaLong generates the 150-hour Fig. 1b trace at an hour-scale
// resolution. To keep the arrival count tractable the base rate is modest;
// Fig. 1b's statistics are about *normalized* RPS, which is rate-invariant.
func GenWikipediaLong(baseRPS float64, hours float64, seed int64) *Trace {
	r := WikipediaLongRate(baseRPS)
	arr := GenPoisson(r, baseRPS*2.2, hours*hourMs, seed)
	return &Trace{Name: "wikipedia-long", Arrivals: arr}
}

// evalPeriodMs compresses the diurnal cycle into the 1000 s evaluation
// window the way the paper compresses Pegasus' epochs ("we scale Pegasus'
// 5s epoch length ... so as to have the same ratio between epoch length and
// load length", §VI-A): two full load cycles fit in the window.
const evalPeriodMs = 500_000.0

// WikipediaRate is the 1000 s evaluation version of the Wikipedia model
// (Fig. 12a): smooth compressed-diurnal swing plus per-second noise.
func WikipediaRate(avgRPS float64) RateFunc {
	return func(tMs float64) float64 {
		swing := 1 + 0.45*math.Sin(2*math.Pi*tMs/evalPeriodMs)
		noise := hashNoise(int64(tMs/1000), 0.20, 0xA11CE)
		return avgRPS * swing * noise
	}
}

// LuceneRate models the Lucene nightly-benchmark trace (Fig. 12b): long
// alternating high/low load plateaus (benchmark phases) with sharper
// transitions and moderate noise.
func LuceneRate(avgRPS float64) RateFunc {
	return func(tMs float64) float64 {
		phase := math.Mod(tMs, 240_000) / 240_000 // 240 s benchmark phases
		level := 1.55
		if phase >= 0.5 {
			level = 0.45
		}
		noise := hashNoise(int64(tMs/1000), 0.15, 0x1CE)
		return avgRPS * level * noise
	}
}

// TRECRate models the TREC Million Query Track trace (Fig. 12c): a slow
// drift with occasional heavy bursts (batch-submitted query blocks) on a
// lighter baseline.
func TRECRate(avgRPS float64) RateFunc {
	return func(tMs float64) float64 {
		drift := 1 + 0.30*math.Sin(2*math.Pi*tMs/evalPeriodMs+1.3)
		burst := 1.0
		if hashNoise(int64(tMs/20_000), 0.5, 0x7EC) > 1.34 { // ~16% of 20 s blocks
			burst = 2.1
		}
		noise := hashNoise(int64(tMs/1000), 0.30, 0x77EC)
		r := avgRPS * 0.82 * drift * burst * noise
		if r < 0.05*avgRPS {
			r = 0.05 * avgRPS
		}
		return r
	}
}

// EvalTraceNames lists the three trace-driven workloads of Figs. 12–14.
var EvalTraceNames = []string{"wiki", "lucene", "trec"}

// GenEvalTrace generates one of the named 1000 s evaluation traces at the
// given average RPS.
func GenEvalTrace(name string, avgRPS, durationMs float64, seed int64) *Trace {
	var r RateFunc
	switch name {
	case "wiki":
		r = WikipediaRate(avgRPS)
	case "lucene":
		r = LuceneRate(avgRPS)
	case "trec":
		r = TRECRate(avgRPS)
	default:
		r = func(float64) float64 { return avgRPS }
	}
	arr := GenPoisson(r, avgRPS*3.2, durationMs, seed)
	return &Trace{Name: name, Arrivals: arr}
}
