package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := GenFixedRPS(40, 30_000, 3)
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Fatalf("len %d vs %d", got.Len(), orig.Len())
	}
	for i := range got.Arrivals {
		if math.Abs(got.Arrivals[i]-orig.Arrivals[i]) > 1e-5 {
			t.Fatalf("arrival %d: %v vs %v", i, got.Arrivals[i], orig.Arrivals[i])
		}
	}
	if got.Name != "roundtrip" {
		t.Errorf("name = %q", got.Name)
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	orig := GenFixedRPS(20, 10_000, 4)
	path := t.TempDir() + "/trace.csv"
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != orig.Len() {
		t.Errorf("len %d vs %d", got.Len(), orig.Len())
	}
	if got.Name != "trace.csv" {
		t.Errorf("name = %q", got.Name)
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadCSVValidation(t *testing.T) {
	cases := []string{
		"arrival_ms\nabc\n",
		"10\n5\n",   // not ascending
		"-1\n",      // negative
		"10\nxyz\n", // bad number later
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c), "bad"); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
	// Header optional, blank lines skipped, empty trace valid.
	got, err := ReadCSV(strings.NewReader("\n10\n\n20\n"), "ok")
	if err != nil || got.Len() != 2 {
		t.Errorf("lenient parse failed: %v %v", got, err)
	}
	empty, err := ReadCSV(strings.NewReader(""), "empty")
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty trace: %v %v", empty, err)
	}
}

func TestSlice(t *testing.T) {
	tr := &Trace{Arrivals: []float64{5, 15, 25, 35}}
	s := tr.Slice(10, 30)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Arrivals[0] != 5 || s.Arrivals[1] != 15 {
		t.Errorf("rebased arrivals = %v", s.Arrivals)
	}
}

func TestScale(t *testing.T) {
	tr := &Trace{Arrivals: []float64{10, 20, 40}}
	s := tr.Scale(0.5)
	want := []float64{5, 10, 20}
	for i := range want {
		if s.Arrivals[i] != want[i] {
			t.Errorf("scaled[%d] = %v", i, s.Arrivals[i])
		}
	}
	// Scaling halves duration and doubles the rate.
	if math.Abs(s.MeanRPS()-2*tr.MeanRPS()) > 1e-9 {
		t.Errorf("rate after scale = %v, want %v", s.MeanRPS(), 2*tr.MeanRPS())
	}
}
