package nn

import (
	"errors"
	"math"
	"math/rand"
)

// Loss computes the scalar loss and the gradient of the loss w.r.t. the
// network's raw output for one sample. The gradient is written into dOut.
type Loss interface {
	// LossAndGrad returns the loss for (output, target) and fills dOut.
	// target's meaning depends on the loss (class index or regression value).
	LossAndGrad(output []float64, target float64, dOut []float64) float64
}

// CrossEntropy is softmax + sparse categorical cross-entropy: targets are
// class indices; the network's output layer produces raw logits.
type CrossEntropy struct {
	probs []float64
}

// LossAndGrad implements Loss.
func (c *CrossEntropy) LossAndGrad(output []float64, target float64, dOut []float64) float64 {
	if cap(c.probs) < len(output) {
		c.probs = make([]float64, len(output))
	}
	p := c.probs[:len(output)]
	Softmax(output, p)
	cls := int(target)
	if cls < 0 {
		cls = 0
	}
	if cls >= len(output) {
		cls = len(output) - 1
	}
	for i := range dOut {
		dOut[i] = p[i]
	}
	dOut[cls] -= 1
	const tiny = 1e-12
	return -math.Log(p[cls] + tiny)
}

// MSE is mean squared error for single-output regression networks.
type MSE struct{}

// LossAndGrad implements Loss.
func (MSE) LossAndGrad(output []float64, target float64, dOut []float64) float64 {
	d := output[0] - target
	dOut[0] = 2 * d
	for i := 1; i < len(dOut); i++ {
		dOut[i] = 0
	}
	return d * d
}

// steppable lets the trainer advance optimizers with a shared step counter.
type steppable interface {
	BeginStep()
}

// Trainer runs mini-batch gradient training of a Network.
type Trainer struct {
	Net       *Network
	Loss      Loss
	Opt       Optimizer
	BatchSize int
	Epochs    int
	Seed      int64
	// WeightDecay adds L2 regularization: the loss gradient gains
	// WeightDecay·w per weight (biases are not decayed).
	WeightDecay float64

	// OnEpoch, if set, is called after each epoch with the epoch index and
	// mean training loss; returning false stops training early.
	OnEpoch func(epoch int, loss float64) bool
}

// Fit trains the network on inputs X and targets Y (class index or
// regression value per sample). It returns the mean loss of the final epoch.
func (t *Trainer) Fit(X [][]float64, Y []float64) (float64, error) {
	if len(X) == 0 || len(X) != len(Y) {
		return 0, errors.New("nn: bad training set")
	}
	if t.BatchSize <= 0 {
		t.BatchSize = 32
	}
	if t.Epochs <= 0 {
		t.Epochs = 1
	}
	rng := rand.New(rand.NewSource(t.Seed))
	order := make([]int, len(X))
	for i := range order {
		order[i] = i
	}
	dOut := make([]float64, t.Net.OutDim())
	finalLoss := 0.0

	for epoch := 0; epoch < t.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		for start := 0; start < len(order); start += t.BatchSize {
			end := start + t.BatchSize
			if end > len(order) {
				end = len(order)
			}
			t.Net.ZeroGrad()
			for _, idx := range order[start:end] {
				out := t.Net.Forward(X[idx])
				epochLoss += t.Loss.LossAndGrad(out, Y[idx], dOut)
				t.Net.Backward(dOut)
			}
			// Average gradients over the batch and step.
			scale := 1.0 / float64(end-start)
			if s, ok := t.Opt.(steppable); ok {
				s.BeginStep()
			}
			for li, l := range t.Net.Layers {
				for i := range l.gradW {
					l.gradW[i] *= scale
					if t.WeightDecay > 0 {
						l.gradW[i] += t.WeightDecay * l.W[i]
					}
				}
				for i := range l.gradB {
					l.gradB[i] *= scale
				}
				t.Opt.Step(2*li, l.W, l.gradW)
				t.Opt.Step(2*li+1, l.B, l.gradB)
			}
		}
		finalLoss = epochLoss / float64(len(order))
		if t.OnEpoch != nil && !t.OnEpoch(epoch, finalLoss) {
			break
		}
	}
	return finalLoss, nil
}

// ClassifyAccuracy evaluates a classifier network: the fraction of samples
// whose argmax prediction is within tol classes of the target class (tol 0
// means exact). This matches the paper's "prediction error happens when the
// predicted bucket differs by more than the threshold" definition.
func ClassifyAccuracy(net *Network, X [][]float64, Y []float64, tol int) float64 {
	if len(X) == 0 {
		return 0
	}
	hits := 0
	for i, x := range X {
		pred := Argmax(net.Forward(x))
		d := pred - int(Y[i])
		if d < 0 {
			d = -d
		}
		if d <= tol {
			hits++
		}
	}
	return float64(hits) / float64(len(X))
}

// RegressAccuracy evaluates a single-output regression network: the fraction
// of samples with |prediction − target| <= tol.
func RegressAccuracy(net *Network, X [][]float64, Y []float64, tol float64) float64 {
	if len(X) == 0 {
		return 0
	}
	hits := 0
	for i, x := range X {
		if math.Abs(net.Forward(x)[0]-Y[i]) <= tol {
			hits++
		}
	}
	return float64(hits) / float64(len(X))
}
