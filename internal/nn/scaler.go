package nn

import "math"

// Scaler standardizes feature vectors: optionally log1p-compressing heavy-
// tailed columns (posting-list lengths span orders of magnitude), then
// z-scoring each column from training-set statistics.
type Scaler struct {
	LogCols []bool // which columns get log1p before standardization
	Mean    []float64
	Std     []float64
}

// FitScaler computes per-column statistics from the training inputs.
// logCols may be nil (no log compression).
func FitScaler(X [][]float64, logCols []bool) *Scaler {
	if len(X) == 0 {
		return &Scaler{}
	}
	dim := len(X[0])
	s := &Scaler{
		LogCols: make([]bool, dim),
		Mean:    make([]float64, dim),
		Std:     make([]float64, dim),
	}
	copy(s.LogCols, logCols)
	n := float64(len(X))
	for _, x := range X {
		for j := 0; j < dim; j++ {
			s.Mean[j] += s.raw(j, x[j])
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, x := range X {
		for j := 0; j < dim; j++ {
			d := s.raw(j, x[j]) - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-9 {
			s.Std[j] = 1
		}
	}
	return s
}

func (s *Scaler) raw(j int, v float64) float64 {
	if j < len(s.LogCols) && s.LogCols[j] {
		if v < 0 {
			v = 0
		}
		return math.Log1p(v)
	}
	return v
}

// Transform standardizes one vector into a new slice.
func (s *Scaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	s.TransformInto(x, out)
	return out
}

// TransformInto standardizes x into dst (must be same length).
func (s *Scaler) TransformInto(x, dst []float64) {
	for j := range x {
		if j < len(s.Mean) {
			dst[j] = (s.raw(j, x[j]) - s.Mean[j]) / s.Std[j]
		} else {
			dst[j] = x[j]
		}
	}
}

// TransformAll standardizes a whole data set into new slices.
func (s *Scaler) TransformAll(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, x := range X {
		out[i] = s.Transform(x)
	}
	return out
}
