package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
)

// snapshot is the gob-serializable form of a network (scratch buffers are
// rebuilt on load).
type snapshot struct {
	Layers []layerSnapshot
}

type layerSnapshot struct {
	In, Out int
	Act     Activation
	W, B    []float64
}

// Save writes the network's architecture and weights to w.
func (n *Network) Save(w io.Writer) error {
	var s snapshot
	for _, l := range n.Layers {
		s.Layers = append(s.Layers, layerSnapshot{In: l.In, Out: l.Out, Act: l.Act, W: l.W, B: l.B})
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load reads a network previously written by Save.
func Load(r io.Reader) (*Network, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("nn: load: empty network")
	}
	net := &Network{}
	for _, ls := range s.Layers {
		if len(ls.W) != ls.In*ls.Out || len(ls.B) != ls.Out {
			return nil, fmt.Errorf("nn: load: inconsistent layer shape %dx%d", ls.In, ls.Out)
		}
		d := &Dense{
			In: ls.In, Out: ls.Out, Act: ls.Act,
			W: ls.W, B: ls.B,
			z: make([]float64, ls.Out), out: make([]float64, ls.Out),
			in:    make([]float64, ls.In),
			gradW: make([]float64, ls.Out*ls.In), gradB: make([]float64, ls.Out),
			dIn: make([]float64, ls.In),
		}
		net.Layers = append(net.Layers, d)
	}
	return net, nil
}

// SaveFile writes the network to a file path.
func (n *Network) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.Save(f)
}

// LoadFile reads a network from a file path.
func LoadFile(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
