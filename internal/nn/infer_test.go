package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// TestInferMatchesForward checks the reentrant path is bit-identical to the
// training-time Forward pass.
func TestInferMatchesForward(t *testing.T) {
	net := NewMLP(7, []int{16, 11}, 5, 42)
	arena := net.NewArena()
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		x := make([]float64, 7)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		want := append([]float64(nil), net.Forward(x)...)
		got := net.Infer(x, arena)
		if len(got) != len(want) {
			t.Fatalf("output length %d != %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("iter %d output[%d]: Infer %v != Forward %v", iter, i, got[i], want[i])
			}
		}
	}
}

// TestConcurrentInfer hammers one trained Network from many goroutines, each
// with its own arena, and checks every result against the serial reference.
// Run under -race this is the correctness gate for the shared-predictor
// concurrency of the parallel experiment harness.
func TestConcurrentInfer(t *testing.T) {
	const (
		goroutines = 16
		inputs     = 64
		rounds     = 50
	)
	net := NewMLP(9, []int{24, 24}, 13, 3)

	xs := make([][]float64, inputs)
	want := make([][]float64, inputs)
	rng := rand.New(rand.NewSource(11))
	for i := range xs {
		xs[i] = make([]float64, 9)
		for j := range xs[i] {
			xs[i][j] = rng.NormFloat64() * 3
		}
		want[i] = append([]float64(nil), net.Forward(xs[i])...)
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			arena := net.NewArena()
			for r := 0; r < rounds; r++ {
				i := (g + r) % inputs
				got := net.Infer(xs[i], arena)
				for j := range want[i] {
					if got[j] != want[i][j] {
						errs <- "concurrent Infer diverged from serial Forward"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func BenchmarkInfer(b *testing.B) {
	net := NewMLP(12, []int{48, 48}, 61, 1)
	arena := net.NewArena()
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Infer(x, arena)
	}
}

func BenchmarkInferParallel(b *testing.B) {
	net := NewMLP(12, []int{48, 48}, 61, 1)
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		arena := net.NewArena()
		for pb.Next() {
			net.Infer(x, arena)
		}
	})
}
