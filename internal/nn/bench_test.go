package nn

import (
	"math/rand"
	"testing"
)

// benchNet is the default experiment architecture: 15 features in, two
// 48-wide relu layers, 61 per-ms output buckets.
func benchNet() (*Network, []float64) {
	net := NewMLP(15, []int{48, 48}, 61, 1)
	x := make([]float64, 15)
	rng := rand.New(rand.NewSource(2))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return net, x
}

func BenchmarkForward(b *testing.B) {
	net, x := benchNet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}

func BenchmarkForwardBackward(b *testing.B) {
	net, x := benchNet()
	loss := &CrossEntropy{}
	dOut := make([]float64, net.OutDim())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ZeroGrad()
		out := net.Forward(x)
		loss.LossAndGrad(out, 7, dOut)
		net.Backward(dOut)
	}
}

func BenchmarkTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 512
	X := make([][]float64, n)
	Y := make([]float64, n)
	for i := range X {
		row := make([]float64, 15)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
		Y[i] = float64(i % 61)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net := NewMLP(15, []int{48, 48}, 61, int64(i))
		tr := &Trainer{Net: net, Loss: &CrossEntropy{}, Opt: NewAdam(1e-3), BatchSize: 32, Epochs: 1, Seed: 4}
		if _, err := tr.Fit(X, Y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSoftmax(b *testing.B) {
	logits := make([]float64, 61)
	out := make([]float64, 61)
	rng := rand.New(rand.NewSource(5))
	for i := range logits {
		logits[i] = rng.NormFloat64() * 3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Softmax(logits, out)
	}
}
