package nn

import "math"

// Optimizer updates a parameter vector in place given its gradient. The id
// distinguishes parameter groups (each layer's W and B) so stateful
// optimizers keep separate moment estimates per group.
type Optimizer interface {
	Step(id int, params, grads []float64)
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64 // 0 disables the velocity term

	v map[int][]float64
}

// Step applies v = Momentum·v − LR·g; params += v (plain descent when
// Momentum is zero).
func (s *SGD) Step(id int, params, grads []float64) {
	if s.Momentum == 0 {
		for i := range params {
			params[i] -= s.LR * grads[i]
		}
		return
	}
	if s.v == nil {
		s.v = make(map[int][]float64)
	}
	v, ok := s.v[id]
	if !ok {
		v = make([]float64, len(params))
		s.v[id] = v
	}
	for i := range params {
		v[i] = s.Momentum*v[i] - s.LR*grads[i]
		params[i] += v[i]
	}
}

// Adam implements Kingma & Ba's optimizer (the paper trains the latency
// classifier with Adam, §IV-A).
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[int][]float64
	v map[int][]float64
}

// NewAdam returns Adam with the usual defaults and the given learning rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8,
		m: make(map[int][]float64), v: make(map[int][]float64)}
}

// BeginStep advances Adam's shared time step; call once per batch before
// stepping the parameter groups.
func (a *Adam) BeginStep() { a.t++ }

// Step applies one Adam update to a parameter group.
func (a *Adam) Step(id int, params, grads []float64) {
	if a.t == 0 {
		a.t = 1 // tolerate callers that skip BeginStep
	}
	m, ok := a.m[id]
	if !ok {
		m = make([]float64, len(params))
		a.m[id] = m
		a.v[id] = make([]float64, len(params))
	}
	v := a.v[id]
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i := range params {
		g := grads[i]
		m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
		v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
		mhat := m[i] / c1
		vhat := v[i] / c2
		params[i] -= a.LR * mhat / (math.Sqrt(vhat) + a.Eps)
	}
}

// RMSprop implements the optimizer the paper uses for the NN regressor
// variant (§IV-B).
type RMSprop struct {
	LR, Rho, Eps float64

	v map[int][]float64
}

// NewRMSprop returns RMSprop with the usual defaults.
func NewRMSprop(lr float64) *RMSprop {
	return &RMSprop{LR: lr, Rho: 0.9, Eps: 1e-8, v: make(map[int][]float64)}
}

// BeginStep is a no-op; RMSprop keeps no shared step counter.
func (r *RMSprop) BeginStep() {}

// Step applies one RMSprop update to a parameter group.
func (r *RMSprop) Step(id int, params, grads []float64) {
	v, ok := r.v[id]
	if !ok {
		v = make([]float64, len(params))
		r.v[id] = v
	}
	for i := range params {
		g := grads[i]
		v[i] = r.Rho*v[i] + (1-r.Rho)*g*g
		params[i] -= r.LR * g / (math.Sqrt(v[i]) + r.Eps)
	}
}
