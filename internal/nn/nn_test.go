package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseForwardKnownWeights(t *testing.T) {
	d := NewDense(2, 2, Identity, rand.New(rand.NewSource(1)))
	copy(d.W, []float64{1, 2, 3, 4})
	copy(d.B, []float64{0.5, -0.5})
	out := d.Forward([]float64{1, 1})
	if math.Abs(out[0]-3.5) > 1e-12 || math.Abs(out[1]-6.5) > 1e-12 {
		t.Errorf("out = %v, want [3.5 6.5]", out)
	}
}

func TestReLUClampsNegative(t *testing.T) {
	d := NewDense(1, 1, ReLU, rand.New(rand.NewSource(1)))
	d.W[0] = -1
	d.B[0] = 0
	if out := d.Forward([]float64{5}); out[0] != 0 {
		t.Errorf("relu(-5) = %v", out[0])
	}
	if out := d.Forward([]float64{-5}); out[0] != 5 {
		t.Errorf("relu(5) = %v", out[0])
	}
}

// Gradient check: numerical vs analytical gradients on a small network.
func TestGradientCheck(t *testing.T) {
	net := NewMLP(3, []int{5, 4}, 2, 42)
	loss := &CrossEntropy{}
	x := []float64{0.3, -0.7, 1.2}
	target := 1.0
	dOut := make([]float64, 2)

	net.ZeroGrad()
	out := net.Forward(x)
	loss.LossAndGrad(out, target, dOut)
	net.Backward(dOut)

	const eps = 1e-6
	for li, l := range net.Layers {
		for wi := 0; wi < len(l.W); wi += 7 { // sample every 7th weight
			orig := l.W[wi]
			l.W[wi] = orig + eps
			lossPlus := loss.LossAndGrad(net.Forward(x), target, dOut)
			l.W[wi] = orig - eps
			lossMinus := loss.LossAndGrad(net.Forward(x), target, dOut)
			l.W[wi] = orig
			numGrad := (lossPlus - lossMinus) / (2 * eps)
			anaGrad := l.gradW[wi]
			if math.Abs(numGrad-anaGrad) > 1e-4*(1+math.Abs(numGrad)) {
				t.Fatalf("layer %d w[%d]: numerical %v vs analytical %v", li, wi, numGrad, anaGrad)
			}
		}
	}
}

func TestGradientCheckMSE(t *testing.T) {
	net := NewMLP(2, []int{6}, 1, 7)
	loss := MSE{}
	x := []float64{0.5, -1.5}
	target := 2.0
	dOut := make([]float64, 1)

	net.ZeroGrad()
	loss.LossAndGrad(net.Forward(x), target, dOut)
	net.Backward(dOut)

	const eps = 1e-6
	l := net.Layers[0]
	for wi := range l.W {
		orig := l.W[wi]
		l.W[wi] = orig + eps
		lp := loss.LossAndGrad(net.Forward(x), target, dOut)
		l.W[wi] = orig - eps
		lm := loss.LossAndGrad(net.Forward(x), target, dOut)
		l.W[wi] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-l.gradW[wi]) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("w[%d]: numerical %v vs analytical %v", wi, num, l.gradW[wi])
		}
	}
}

func TestSoftmaxProperties(t *testing.T) {
	logits := []float64{1, 2, 3, 1000} // large value must not overflow
	out := make([]float64, 4)
	Softmax(logits, out)
	sum := 0.0
	for _, p := range out {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("bad probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
	if Argmax(out) != 3 {
		t.Errorf("argmax = %d", Argmax(out))
	}
}

// Property: softmax output always sums to 1 for finite inputs.
func TestSoftmaxSumProperty(t *testing.T) {
	f := func(a, b, c int16) bool {
		logits := []float64{float64(a) / 100, float64(b) / 100, float64(c) / 100}
		out := make([]float64, 3)
		Softmax(logits, out)
		sum := out[0] + out[1] + out[2]
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArgmax(t *testing.T) {
	if Argmax([]float64{3, 1, 2}) != 0 {
		t.Error("argmax first")
	}
	if Argmax([]float64{1, 5, 2}) != 1 {
		t.Error("argmax middle")
	}
	if Argmax([]float64{1, 2, 9}) != 2 {
		t.Error("argmax last")
	}
}

// The classifier must learn a simple separable problem.
func TestTrainClassifierXOR(t *testing.T) {
	X := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	Y := []float64{0, 1, 1, 0}
	// Replicate for batching.
	var Xs [][]float64
	var Ys []float64
	for i := 0; i < 64; i++ {
		Xs = append(Xs, X[i%4])
		Ys = append(Ys, Y[i%4])
	}
	net := NewMLP(2, []int{16, 16}, 2, 3)
	tr := &Trainer{Net: net, Loss: &CrossEntropy{}, Opt: NewAdam(0.01), BatchSize: 8, Epochs: 200, Seed: 5}
	if _, err := tr.Fit(Xs, Ys); err != nil {
		t.Fatal(err)
	}
	if acc := ClassifyAccuracy(net, X, Y, 0); acc != 1 {
		t.Errorf("XOR accuracy = %v, want 1", acc)
	}
}

func TestTrainRegressorLine(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var X [][]float64
	var Y []float64
	for i := 0; i < 400; i++ {
		x := rng.Float64()*2 - 1
		X = append(X, []float64{x})
		Y = append(Y, 3*x+0.5)
	}
	net := NewMLP(1, []int{16}, 1, 9)
	tr := &Trainer{Net: net, Loss: MSE{}, Opt: NewRMSprop(0.005), BatchSize: 16, Epochs: 120, Seed: 2}
	loss, err := tr.Fit(X, Y)
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.01 {
		t.Errorf("final MSE = %v too high", loss)
	}
	if acc := RegressAccuracy(net, X, Y, 0.25); acc < 0.95 {
		t.Errorf("regression accuracy = %v", acc)
	}
}

func TestTrainerErrors(t *testing.T) {
	net := NewMLP(1, nil, 1, 1)
	tr := &Trainer{Net: net, Loss: MSE{}, Opt: &SGD{LR: 0.1}}
	if _, err := tr.Fit(nil, nil); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := tr.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("mismatched set accepted")
	}
}

func TestTrainerEarlyStop(t *testing.T) {
	net := NewMLP(1, nil, 1, 1)
	epochs := 0
	tr := &Trainer{
		Net: net, Loss: MSE{}, Opt: &SGD{LR: 0.01}, Epochs: 50, BatchSize: 2,
		OnEpoch: func(e int, _ float64) bool { epochs = e + 1; return e < 4 },
	}
	if _, err := tr.Fit([][]float64{{1}, {2}}, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if epochs != 5 {
		t.Errorf("ran %d epochs, want early stop after 5", epochs)
	}
}

func TestTrainingDeterministic(t *testing.T) {
	build := func() float64 {
		rng := rand.New(rand.NewSource(4))
		var X [][]float64
		var Y []float64
		for i := 0; i < 100; i++ {
			x := rng.Float64()
			X = append(X, []float64{x})
			Y = append(Y, float64(int(x*4)%3))
		}
		net := NewMLP(1, []int{8}, 3, 10)
		tr := &Trainer{Net: net, Loss: &CrossEntropy{}, Opt: NewAdam(0.01), BatchSize: 10, Epochs: 10, Seed: 20}
		loss, _ := tr.Fit(X, Y)
		return loss
	}
	if a, b := build(), build(); a != b {
		t.Errorf("training not deterministic: %v vs %v", a, b)
	}
}

func TestSGDStep(t *testing.T) {
	s := &SGD{LR: 0.5}
	p := []float64{1, 2}
	s.Step(0, p, []float64{2, -2})
	if p[0] != 0 || p[1] != 3 {
		t.Errorf("params = %v", p)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (p-3)^2 via Adam.
	a := NewAdam(0.1)
	p := []float64{0}
	for i := 0; i < 500; i++ {
		g := []float64{2 * (p[0] - 3)}
		a.BeginStep()
		a.Step(0, p, g)
	}
	if math.Abs(p[0]-3) > 0.05 {
		t.Errorf("Adam converged to %v, want 3", p[0])
	}
}

func TestRMSpropConvergesOnQuadratic(t *testing.T) {
	r := NewRMSprop(0.05)
	p := []float64{-4}
	for i := 0; i < 800; i++ {
		g := []float64{2 * (p[0] - 1)}
		r.Step(0, p, g)
	}
	if math.Abs(p[0]-1) > 0.05 {
		t.Errorf("RMSprop converged to %v, want 1", p[0])
	}
}

func TestNumParams(t *testing.T) {
	net := NewMLP(3, []int{5}, 2, 1)
	want := 3*5 + 5 + 5*2 + 2
	if got := net.NumParams(); got != want {
		t.Errorf("NumParams = %d, want %d", got, want)
	}
	if net.InDim() != 3 || net.OutDim() != 2 {
		t.Errorf("dims = %d,%d", net.InDim(), net.OutDim())
	}
	if net.String() == "" {
		t.Error("empty String()")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	net := NewMLP(4, []int{8, 8}, 3, 77)
	var buf bytes.Buffer
	if err := net.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, -0.2, 0.3, 0.9}
	a := net.Forward(x)
	b := loaded.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs after round trip: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	net := NewMLP(2, []int{4}, 2, 5)
	path := t.TempDir() + "/model.gob"
	if err := net.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2}
	a, b := net.Forward(x), loaded.Forward(x)
	if a[0] != b[0] || a[1] != b[1] {
		t.Error("file round trip mismatch")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk accepted")
	}
	var buf bytes.Buffer
	_ = (&Network{}).Save(&buf)
	if _, err := Load(&buf); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := LoadFile("/nonexistent/model.gob"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestScalerBasics(t *testing.T) {
	X := [][]float64{{0, 100}, {2, 300}, {4, 500}}
	s := FitScaler(X, nil)
	out := s.Transform([]float64{2, 300})
	if math.Abs(out[0]) > 1e-9 || math.Abs(out[1]) > 1e-9 {
		t.Errorf("mean row should standardize to 0: %v", out)
	}
	all := s.TransformAll(X)
	var m0 float64
	for _, r := range all {
		m0 += r[0]
	}
	if math.Abs(m0) > 1e-9 {
		t.Errorf("standardized mean = %v", m0/3)
	}
}

func TestScalerLogColumns(t *testing.T) {
	X := [][]float64{{1}, {10}, {100}, {1000}}
	s := FitScaler(X, []bool{true})
	a := s.Transform([]float64{1})[0]
	b := s.Transform([]float64{1000})[0]
	if a >= 0 || b <= 0 {
		t.Errorf("log-scaled extremes: %v, %v", a, b)
	}
	// Negative inputs clamp to 0 under log.
	if v := s.Transform([]float64{-5})[0]; math.IsNaN(v) {
		t.Error("NaN for negative input")
	}
}

func TestScalerConstantColumn(t *testing.T) {
	X := [][]float64{{7}, {7}, {7}}
	s := FitScaler(X, nil)
	if v := s.Transform([]float64{7})[0]; v != 0 {
		t.Errorf("constant column transform = %v", v)
	}
}

func TestScalerEmpty(t *testing.T) {
	s := FitScaler(nil, nil)
	out := s.Transform([]float64{1, 2})
	if out[0] != 1 || out[1] != 2 {
		t.Errorf("empty scaler should pass through: %v", out)
	}
}

func TestCrossEntropyClampsTarget(t *testing.T) {
	ce := &CrossEntropy{}
	dOut := make([]float64, 3)
	// Out-of-range targets must not panic.
	ce.LossAndGrad([]float64{1, 2, 3}, -5, dOut)
	ce.LossAndGrad([]float64{1, 2, 3}, 99, dOut)
}

func TestSGDMomentumConverges(t *testing.T) {
	// Momentum must still converge on a quadratic bowl, faster than plain
	// SGD at the same small learning rate.
	run := func(momentum float64, iters int) float64 {
		s := &SGD{LR: 0.01, Momentum: momentum}
		p := []float64{8}
		for i := 0; i < iters; i++ {
			s.Step(0, p, []float64{2 * (p[0] - 3)})
		}
		return math.Abs(p[0] - 3)
	}
	if d := run(0.9, 200); d > 0.1 {
		t.Errorf("momentum SGD ended %.3f from the optimum", d)
	}
	if run(0.9, 60) >= run(0, 60) {
		t.Errorf("momentum not faster than plain SGD on the bowl")
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	// Train on pure-noise labels: with strong L2 the weights must end up
	// smaller in norm than without.
	rng := rand.New(rand.NewSource(6))
	X := make([][]float64, 200)
	Y := make([]float64, 200)
	for i := range X {
		X[i] = []float64{rng.NormFloat64()}
		Y[i] = rng.NormFloat64()
	}
	norm := func(decay float64) float64 {
		net := NewMLP(1, []int{16}, 1, 13)
		tr := &Trainer{Net: net, Loss: MSE{}, Opt: &SGD{LR: 0.01},
			BatchSize: 20, Epochs: 40, Seed: 3, WeightDecay: decay}
		if _, err := tr.Fit(X, Y); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, l := range net.Layers {
			for _, w := range l.W {
				sum += w * w
			}
		}
		return sum
	}
	plain := norm(0)
	decayed := norm(0.1)
	if decayed >= plain {
		t.Errorf("weight decay did not shrink weights: %v >= %v", decayed, plain)
	}
}

// Warm-start: continuing training on the same network after a distribution
// shift adapts it — the "keep track of measured latencies in the past"
// online-retraining mode of the paper's error predictor.
func TestWarmStartRetraining(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mkSet := func(slope float64) ([][]float64, []float64) {
		X := make([][]float64, 300)
		Y := make([]float64, 300)
		for i := range X {
			x := rng.Float64()*2 - 1
			X[i] = []float64{x}
			Y[i] = slope * x
		}
		return X, Y
	}
	net := NewMLP(1, []int{16}, 1, 31)
	X1, Y1 := mkSet(2)
	tr := &Trainer{Net: net, Loss: MSE{}, Opt: NewAdam(0.01), BatchSize: 16, Epochs: 60, Seed: 7}
	if _, err := tr.Fit(X1, Y1); err != nil {
		t.Fatal(err)
	}
	// Distribution shift: slope flips. A short warm-start run must adapt.
	X2, Y2 := mkSet(-2)
	before := 0.0
	for i := range X2 {
		d := net.Forward(X2[i])[0] - Y2[i]
		before += d * d
	}
	tr2 := &Trainer{Net: net, Loss: MSE{}, Opt: NewAdam(0.01), BatchSize: 16, Epochs: 40, Seed: 8}
	if _, err := tr2.Fit(X2, Y2); err != nil {
		t.Fatal(err)
	}
	after := 0.0
	for i := range X2 {
		d := net.Forward(X2[i])[0] - Y2[i]
		after += d * d
	}
	if after >= before/4 {
		t.Errorf("warm start did not adapt: MSE %v -> %v", before/300, after/300)
	}
}
