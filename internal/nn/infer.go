package nn

// Concurrent inference support. Dense.Forward retains per-layer scratch
// (pre-activations, input copies) for a later Backward call, which makes one
// Network unusable from two goroutines at once. Infer is the allocation-free
// reentrant alternative: the caller owns all mutable state in an Arena, and
// the network's weights are only read, so any number of goroutines can run
// Infer on one trained Network concurrently — each with its own Arena.
//
// Infer performs the multiply-accumulate in exactly Forward's order, so the
// two paths produce bit-identical float64 outputs.

// Arena holds the forward-pass scratch for one network shape: two ping-pong
// activation buffers sized to the widest layer. An Arena must not be shared
// between goroutines; create one per worker with Network.NewArena (they are
// cheap — two slices — and reusable across any number of Infer calls).
type Arena struct {
	ping, pong []float64
}

// NewArena allocates inference scratch sized for this network.
func (n *Network) NewArena() *Arena {
	w := 0
	for _, l := range n.Layers {
		if l.Out > w {
			w = l.Out
		}
	}
	return &Arena{ping: make([]float64, w), pong: make([]float64, w)}
}

// Infer runs the forward pass writing only into the caller's arena; it is
// safe to call concurrently on one Network from many goroutines as long as
// each uses its own Arena and no Forward/Backward/Fit runs concurrently.
// The returned slice is owned by the arena and valid until its next Infer.
func (n *Network) Infer(x []float64, a *Arena) []float64 {
	cur := x
	buf, spare := a.ping, a.pong
	for _, l := range n.Layers {
		out := buf[:l.Out]
		l.applyInto(cur, out)
		cur = out
		buf, spare = spare, buf
	}
	return cur
}

// applyInto computes out = act(W·x + b) without touching the layer's
// training scratch. The summation order matches Forward exactly so both
// paths yield identical float64 results.
func (d *Dense) applyInto(x, out []float64) {
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		if d.Act == ReLU && sum < 0 {
			out[o] = 0
		} else {
			out[o] = sum
		}
	}
}
