// Package nn is a small, dependency-free neural-network library sufficient
// to reproduce the paper's predictors: dense multi-layer perceptrons with
// relu activations, softmax cross-entropy (the "sparse categorical
// cross-entropy" used for the latency classifier, §IV-A) and MSE losses, and
// Adam / RMSprop optimizers (§IV-A, §IV-B). Everything is deterministic for
// a given seed.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Activation selects a layer's element-wise nonlinearity.
type Activation int

const (
	// Identity applies no nonlinearity (used for output layers; softmax is
	// folded into the cross-entropy loss for stability).
	Identity Activation = iota
	// ReLU applies max(0, x).
	ReLU
)

// Dense is one fully connected layer: y = act(W·x + b) with W stored
// row-major as Out rows of In weights.
type Dense struct {
	In, Out int
	W       []float64 // len Out*In
	B       []float64 // len Out
	Act     Activation

	// Scratch buffers reused across forward/backward passes.
	z     []float64 // pre-activation
	out   []float64 // post-activation
	in    []float64 // copy of input (needed by backward)
	gradW []float64
	gradB []float64
	dIn   []float64
}

// NewDense creates a layer with He-uniform initialization (appropriate for
// relu) from the given RNG.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	d := &Dense{
		In: in, Out: out, Act: act,
		W: make([]float64, out*in), B: make([]float64, out),
		z: make([]float64, out), out: make([]float64, out),
		in:    make([]float64, in),
		gradW: make([]float64, out*in), gradB: make([]float64, out),
		dIn: make([]float64, in),
	}
	limit := math.Sqrt(6.0 / float64(in))
	for i := range d.W {
		d.W[i] = (rng.Float64()*2 - 1) * limit
	}
	return d
}

// Forward computes the layer output for input x, retaining the buffers
// needed by a subsequent Backward call. The returned slice is owned by the
// layer and valid until the next Forward.
func (d *Dense) Forward(x []float64) []float64 {
	copy(d.in, x)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		d.z[o] = sum
		if d.Act == ReLU && sum < 0 {
			d.out[o] = 0
		} else {
			d.out[o] = sum
		}
	}
	return d.out
}

// Backward accumulates parameter gradients for the last Forward given the
// loss gradient dOut w.r.t. this layer's output, and returns the gradient
// w.r.t. the layer's input (owned by the layer).
func (d *Dense) Backward(dOut []float64) []float64 {
	for i := range d.dIn {
		d.dIn[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		g := dOut[o]
		if d.Act == ReLU && d.z[o] <= 0 {
			continue
		}
		d.gradB[o] += g
		row := d.W[o*d.In : (o+1)*d.In]
		gw := d.gradW[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			gw[i] += g * d.in[i]
			d.dIn[i] += g * row[i]
		}
	}
	return d.dIn
}

// zeroGrad clears accumulated gradients.
func (d *Dense) zeroGrad() {
	for i := range d.gradW {
		d.gradW[i] = 0
	}
	for i := range d.gradB {
		d.gradB[i] = 0
	}
}

// Network is a feed-forward stack of dense layers.
type Network struct {
	Layers []*Dense
}

// NewMLP builds a multi-layer perceptron with relu hidden layers and an
// identity output layer: in -> hidden[0] -> ... -> out.
func NewMLP(in int, hidden []int, out int, seed int64) *Network {
	rng := rand.New(rand.NewSource(seed))
	var layers []*Dense
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, ReLU, rng))
		prev = h
	}
	layers = append(layers, NewDense(prev, out, Identity, rng))
	return &Network{Layers: layers}
}

// Forward runs the network on x; the returned slice is owned by the last
// layer and valid until the next Forward.
func (n *Network) Forward(x []float64) []float64 {
	cur := x
	for _, l := range n.Layers {
		cur = l.Forward(cur)
	}
	return cur
}

// Backward propagates the output-gradient through all layers, accumulating
// parameter gradients.
func (n *Network) Backward(dOut []float64) {
	cur := dOut
	for i := len(n.Layers) - 1; i >= 0; i-- {
		cur = n.Layers[i].Backward(cur)
	}
}

// ZeroGrad clears all accumulated gradients.
func (n *Network) ZeroGrad() {
	for _, l := range n.Layers {
		l.zeroGrad()
	}
}

// NumParams returns the total number of trainable parameters.
func (n *Network) NumParams() int {
	p := 0
	for _, l := range n.Layers {
		p += len(l.W) + len(l.B)
	}
	return p
}

// InDim returns the network's input dimension.
func (n *Network) InDim() int { return n.Layers[0].In }

// OutDim returns the network's output dimension.
func (n *Network) OutDim() int { return n.Layers[len(n.Layers)-1].Out }

// String summarizes the architecture.
func (n *Network) String() string {
	s := fmt.Sprintf("MLP(%d", n.InDim())
	for _, l := range n.Layers {
		s += fmt.Sprintf("->%d", l.Out)
	}
	return s + ")"
}

// Softmax writes the softmax of logits into out (which may alias logits),
// computed stably by subtracting the max logit.
func Softmax(logits, out []float64) {
	max := logits[0]
	for _, v := range logits[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range logits {
		e := math.Exp(v - max)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}

// Argmax returns the index of the largest element.
func Argmax(v []float64) int {
	best := 0
	for i, x := range v[1:] {
		if x > v[best] {
			best = i + 1
		}
	}
	return best
}
