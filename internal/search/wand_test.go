package search

import (
	"math"
	"testing"

	"gemini/internal/corpus"
	"gemini/internal/index"
)

func TestAlgorithmString(t *testing.T) {
	if AlgMaxScore.String() != "maxscore" || AlgWAND.String() != "wand" ||
		AlgExhaustive.String() != "exhaustive" || Algorithm(99).String() != "unknown" {
		t.Error("algorithm names wrong")
	}
}

func TestNewEngineWith(t *testing.T) {
	_, e := setup(t)
	w := NewEngineWith(e.Index(), 5, AlgWAND)
	if w.Algorithm() != AlgWAND || w.K() != 5 {
		t.Errorf("engine config lost: %v %d", w.Algorithm(), w.K())
	}
	if NewEngine(e.Index(), 5).Algorithm() != AlgMaxScore {
		t.Error("default algorithm should be MaxScore")
	}
}

// All three algorithms must return identical top-K scores on every query.
func TestAlgorithmsAgree(t *testing.T) {
	c, e := setup(t)
	ix := e.Index()
	engines := map[string]*Engine{
		"maxscore":   NewEngineWith(ix, DefaultK, AlgMaxScore),
		"wand":       NewEngineWith(ix, DefaultK, AlgWAND),
		"exhaustive": NewEngineWith(ix, DefaultK, AlgExhaustive),
	}
	g := corpus.NewQueryGen(c, 77)
	for i := 0; i < 300; i++ {
		q := g.Next()
		ref := engines["exhaustive"].Search(q).Results
		for name, eng := range engines {
			got := eng.Search(q).Results
			if len(got) != len(ref) {
				t.Fatalf("%s on %q: %d results, want %d", name, q.Text, len(got), len(ref))
			}
			for j := range ref {
				if math.Abs(float64(got[j].Score-ref[j].Score)) > 1e-4 {
					t.Fatalf("%s on %q: result %d score %v, want %v",
						name, q.Text, j, got[j].Score, ref[j].Score)
				}
			}
		}
	}
}

// WAND must actually skip postings on multi-term queries.
func TestWANDPrunes(t *testing.T) {
	c, e := setup(t)
	w := NewEngineWith(e.Index(), DefaultK, AlgWAND)
	g := corpus.NewQueryGen(c, 21)
	pruned := false
	for i := 0; i < 200; i++ {
		q := g.Next()
		if q.Len() < 2 {
			continue
		}
		ex := w.Search(q)
		total := 0
		for _, pl := range e.Index().Lists(q) {
			total += pl.Len()
		}
		if ex.Stats.PostingsVisited > total {
			t.Fatalf("visited more postings than exist: %d > %d", ex.Stats.PostingsVisited, total)
		}
		if ex.Stats.PostingsVisited < total {
			pruned = true
		}
	}
	if !pruned {
		t.Error("WAND never pruned on 200 multi-term queries")
	}
}

// Exhaustive visits every posting exactly once.
func TestExhaustiveVisitsAll(t *testing.T) {
	c, e := setup(t)
	x := NewEngineWith(e.Index(), DefaultK, AlgExhaustive)
	g := corpus.NewQueryGen(c, 5)
	for i := 0; i < 100; i++ {
		q := g.Next()
		ex := x.Search(q)
		total := 0
		for _, pl := range e.Index().Lists(q) {
			total += pl.Len()
		}
		if ex.Stats.PostingsVisited != total {
			t.Fatalf("exhaustive visited %d of %d postings", ex.Stats.PostingsVisited, total)
		}
	}
}

// Pruning must reduce the modeled work on multi-term queries — the paper's
// selective-pruning speedup, visible through the cost model.
func TestPruningReducesWork(t *testing.T) {
	c, e := setup(t)
	m := DefaultCostModel()
	x := NewEngineWith(e.Index(), DefaultK, AlgExhaustive)
	g := corpus.NewQueryGen(c, 41)
	var prunedW, fullW float64
	for i := 0; i < 200; i++ {
		q := g.Next()
		if q.Len() < 2 {
			continue
		}
		prunedW += float64(m.WorkFor(e.Search(q).Stats))
		fullW += float64(m.WorkFor(x.Search(q).Stats))
	}
	if prunedW >= fullW {
		t.Errorf("pruned work %v >= exhaustive %v", prunedW, fullW)
	}
}

func TestGallop(t *testing.T) {
	postings := make([]index.Posting, 100)
	for i := range postings {
		postings[i] = index.Posting{Doc: int32(i * 3)} // 0,3,6,...,297
	}
	lookups := 0
	cases := []struct {
		target int32
		want   int
	}{
		{0, 0}, {1, 1}, {3, 1}, {150, 50}, {297, 99}, {298, 100}, {1000, 100},
	}
	for _, c := range cases {
		if got := gallop(postings, c.target, &lookups); got != c.want {
			t.Errorf("gallop(%d) = %d, want %d", c.target, got, c.want)
		}
	}
	if lookups == 0 {
		t.Error("no lookups counted")
	}
}

func TestWANDSingleEmptyLists(t *testing.T) {
	_, e := setup(t)
	w := NewEngineWith(e.Index(), DefaultK, AlgWAND)
	// Unknown-term query resolves to zero lists.
	ex := w.Search(corpus.Query{Terms: []corpus.TermID{corpus.TermID(1 << 20)}})
	if len(ex.Results) != 0 {
		t.Error("results from empty lists")
	}
}

func BenchmarkSearchWAND(b *testing.B) {
	c, e := benchEngine(b)
	w := NewEngineWith(e.Index(), DefaultK, AlgWAND)
	q, _ := corpus.ParseQuery(c, "united kingdom")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Search(q)
	}
}

func BenchmarkSearchExhaustive(b *testing.B) {
	c, e := benchEngine(b)
	x := NewEngineWith(e.Index(), DefaultK, AlgExhaustive)
	q, _ := corpus.ParseQuery(c, "united kingdom")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Search(q)
	}
}
