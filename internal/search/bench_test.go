package search

import (
	"math/rand"
	"testing"

	"gemini/internal/corpus"
	"gemini/internal/index"
)

func benchEngine(b *testing.B) (*corpus.Corpus, *Engine) {
	b.Helper()
	if testCorpus == nil {
		testCorpus = corpus.Generate(corpus.SmallSpec())
		testIndex = index.Build(testCorpus)
	}
	return testCorpus, NewEngine(testIndex, DefaultK)
}

func BenchmarkSearchSingleTerm(b *testing.B) {
	c, e := benchEngine(b)
	q, _ := corpus.ParseQuery(c, "united")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(q)
	}
}

func BenchmarkSearchPhraseMaxScore(b *testing.B) {
	c, e := benchEngine(b)
	q, _ := corpus.ParseQuery(c, "united kingdom")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(q)
	}
}

func BenchmarkSearchMixedQueries(b *testing.B) {
	c, e := benchEngine(b)
	qs := corpus.NewQueryGen(c, 1).Batch(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Search(qs[i%len(qs)])
	}
}

func BenchmarkFeatureExtraction(b *testing.B) {
	c, e := benchEngine(b)
	x := NewExtractor(e)
	qs := corpus.NewQueryGen(c, 2).Batch(256)
	// Warm the per-term cache first: the steady-state cost is what the ISN
	// pays per request.
	for _, q := range qs {
		x.Features(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Features(qs[i%len(qs)])
	}
}

func BenchmarkMeasuredWork(b *testing.B) {
	c, e := benchEngine(b)
	x := NewExtractor(e)
	j := DefaultJitter()
	q, _ := corpus.ParseQuery(c, "canada")
	fv := x.Features(q)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j.MeasuredWork(10, fv, rng)
	}
}
