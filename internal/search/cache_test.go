package search

import (
	"testing"

	"gemini/internal/corpus"
)

func TestCacheHitReturnsSameResults(t *testing.T) {
	c, e := setup(t)
	ce := NewCachedEngine(e, 100)
	q, _ := corpus.ParseQuery(c, "united kingdom")

	miss := ce.Search(q)
	hit := ce.Search(q)
	if len(miss.Results) != len(hit.Results) {
		t.Fatalf("hit results differ: %d vs %d", len(hit.Results), len(miss.Results))
	}
	for i := range miss.Results {
		if miss.Results[i] != hit.Results[i] {
			t.Fatalf("result %d differs", i)
		}
	}
	if hit.Stats != CacheLookupStats {
		t.Errorf("hit stats = %+v, want lookup-only", hit.Stats)
	}
	if miss.Stats.PostingsVisited == 0 {
		t.Errorf("miss did not execute")
	}
	if h, m := ce.Stats(); h != 1 || m != 1 {
		t.Errorf("stats = %d/%d", h, m)
	}
}

func TestCacheKeyOrderInvariant(t *testing.T) {
	c, e := setup(t)
	ce := NewCachedEngine(e, 10)
	q1, _ := corpus.ParseQuery(c, "united kingdom")
	q2 := corpus.Query{Terms: []corpus.TermID{q1.Terms[1], q1.Terms[0]}}
	ce.Search(q1)
	ce.Search(q2) // reversed term order must hit
	if h, _ := ce.Stats(); h != 1 {
		t.Errorf("reversed-term query missed the cache (hits=%d)", h)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	_, e := setup(t)
	ce := NewCachedEngine(e, 2)
	qs := []corpus.Query{
		{Terms: []corpus.TermID{0}},
		{Terms: []corpus.TermID{1}},
		{Terms: []corpus.TermID{2}},
	}
	ce.Search(qs[0])
	ce.Search(qs[1])
	ce.Search(qs[0]) // refresh 0; LRU order now [0, 1]
	ce.Search(qs[2]) // evicts 1
	if ce.Len() != 2 {
		t.Fatalf("len = %d", ce.Len())
	}
	ce.Search(qs[1]) // must miss (evicted)
	if _, m := ce.Stats(); m != 4 {
		t.Errorf("misses = %d, want 4", m)
	}
	ce.Search(qs[0]) // 0 was refreshed: may have been evicted by re-adding 1
	_ = ce.HitRate()
}

func TestCacheHitRate(t *testing.T) {
	c, e := setup(t)
	ce := NewCachedEngine(e, 1000)
	if ce.HitRate() != 0 {
		t.Error("empty cache hit rate nonzero")
	}
	// Zipf query stream: popular queries repeat, so a big cache gets a
	// meaningful hit rate — the caching trade-off of ref [22].
	g := corpus.NewQueryGen(c, 99)
	for i := 0; i < 2000; i++ {
		ce.Search(g.Next())
	}
	if hr := ce.HitRate(); hr < 0.05 || hr > 0.95 {
		t.Errorf("hit rate = %.2f, expected a moderate value on a Zipf stream", hr)
	}
	if ce.Inner() != e {
		t.Error("inner engine lost")
	}
}

func TestCacheCapacityClamped(t *testing.T) {
	_, e := setup(t)
	ce := NewCachedEngine(e, 0)
	ce.Search(corpus.Query{Terms: []corpus.TermID{0}})
	ce.Search(corpus.Query{Terms: []corpus.TermID{1}})
	if ce.Len() != 1 {
		t.Errorf("len = %d, want 1 (capacity clamp)", ce.Len())
	}
}

func BenchmarkCacheHit(b *testing.B) {
	c, e := benchEngine(b)
	ce := NewCachedEngine(e, 100)
	q, _ := corpus.ParseQuery(c, "united kingdom")
	ce.Search(q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ce.Search(q)
	}
}
