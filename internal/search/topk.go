package search

// Result is one scored document.
type Result struct {
	Doc   int32
	Score float32
}

// topKHeap is a fixed-capacity min-heap over scores: the root is the K-th
// best score seen so far, i.e. the pruning threshold θ of MaxScore.
// Implemented by hand (rather than container/heap) to keep the per-insert
// cost accounting explicit.
type topKHeap struct {
	k       int
	items   []Result
	pushes  int // heap insertions (cost-model counter)
	evicted int
}

func newTopKHeap(k int) *topKHeap {
	if k < 1 {
		k = 1
	}
	return &topKHeap{k: k, items: make([]Result, 0, k)}
}

// threshold returns the current K-th best score, or 0 if fewer than K
// documents have been collected (nothing can be pruned yet).
func (h *topKHeap) threshold() float32 {
	if len(h.items) < h.k {
		return 0
	}
	return h.items[0].Score
}

func (h *topKHeap) full() bool { return len(h.items) >= h.k }

// offer inserts the result if it beats the current threshold, returning
// whether it was admitted.
func (h *topKHeap) offer(r Result) bool {
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.siftUp(len(h.items) - 1)
		h.pushes++
		return true
	}
	if r.Score <= h.items[0].Score {
		return false
	}
	h.items[0] = r
	h.siftDown(0)
	h.pushes++
	h.evicted++
	return true
}

func (h *topKHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Score <= h.items[i].Score {
			return
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *topKHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.items[l].Score < h.items[smallest].Score {
			smallest = l
		}
		if r < n && h.items[r].Score < h.items[smallest].Score {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}

// results returns the collected documents sorted by descending score (ties
// broken by ascending document ID for determinism).
func (h *topKHeap) results() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	// Simple insertion-style sort is fine for K ≤ a few hundred.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := out[j-1], out[j]
			// In order when a scores strictly higher, or ties (not lower,
			// not higher) with the lower doc id first.
			inOrder := a.Score > b.Score
			if !inOrder && a.Score >= b.Score && a.Doc <= b.Doc {
				inOrder = true
			}
			if inOrder {
				break
			}
			out[j-1], out[j] = b, a
		}
	}
	return out
}
