package search

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/index"
)

var (
	testCorpus *corpus.Corpus
	testIndex  *index.Index
)

func setup(t testing.TB) (*corpus.Corpus, *Engine) {
	t.Helper()
	if testCorpus == nil {
		testCorpus = corpus.Generate(corpus.SmallSpec())
		testIndex = index.Build(testCorpus)
	}
	return testCorpus, NewEngine(testIndex, DefaultK)
}

// bruteForce scores every document exhaustively — the reference oracle for
// the MaxScore implementation.
func bruteForce(ix *index.Index, q corpus.Query, k int) []Result {
	scores := map[int32]float32{}
	for _, pl := range ix.Lists(q) {
		for _, p := range pl.Postings {
			scores[p.Doc] += p.Impact
		}
	}
	all := make([]Result, 0, len(scores))
	for d, s := range scores {
		all = append(all, Result{Doc: d, Score: s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Doc < all[j].Doc
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func TestSearchMatchesBruteForce(t *testing.T) {
	c, e := setup(t)
	g := corpus.NewQueryGen(c, 99)
	for i := 0; i < 300; i++ {
		q := g.Next()
		got := e.Search(q).Results
		want := bruteForce(e.Index(), q, e.K())
		if len(got) != len(want) {
			t.Fatalf("query %q: got %d results, want %d", q.Text, len(got), len(want))
		}
		for j := range got {
			// Scores must match; ties may order docs differently, so compare
			// score multisets positionally (both sorted desc).
			if math.Abs(float64(got[j].Score-want[j].Score)) > 1e-4 {
				t.Fatalf("query %q: result %d score %v, want %v", q.Text, j, got[j].Score, want[j].Score)
			}
		}
	}
}

func TestSearchSingleTermExact(t *testing.T) {
	c, e := setup(t)
	q, ok := corpus.ParseQuery(c, "toyota")
	if !ok {
		t.Fatal("toyota missing")
	}
	ex := e.Search(q)
	want := bruteForce(e.Index(), q, e.K())
	if len(ex.Results) != len(want) {
		t.Fatalf("got %d, want %d", len(ex.Results), len(want))
	}
	for i := range want {
		if ex.Results[i].Score != want[i].Score {
			t.Errorf("result %d: %v vs %v", i, ex.Results[i], want[i])
		}
	}
	pl, _ := e.Index().List(q.Terms[0])
	if ex.Stats.PostingsVisited != pl.Len() {
		t.Errorf("single-term scan visited %d postings, list has %d", ex.Stats.PostingsVisited, pl.Len())
	}
	if ex.Stats.Terms != 1 {
		t.Errorf("Terms = %d", ex.Stats.Terms)
	}
}

func TestSearchUnknownQuery(t *testing.T) {
	_, e := setup(t)
	ex := e.Search(corpus.Query{Terms: []corpus.TermID{corpus.TermID(1 << 20)}})
	if len(ex.Results) != 0 || ex.Stats.DocsScored != 0 {
		t.Errorf("unknown query produced work: %+v", ex)
	}
}

func TestPruningSavesWork(t *testing.T) {
	c, e := setup(t)
	g := corpus.NewQueryGen(c, 5)
	savedSomewhere := false
	for i := 0; i < 200; i++ {
		q := g.Next()
		if q.Len() < 2 {
			continue
		}
		ex := e.Search(q)
		total := 0
		for _, pl := range e.Index().Lists(q) {
			total += pl.Len()
		}
		if ex.Stats.PostingsVisited > total {
			t.Fatalf("visited %d > total postings %d", ex.Stats.PostingsVisited, total)
		}
		if ex.Stats.PostingsVisited < total {
			savedSomewhere = true
		}
	}
	if !savedSomewhere {
		t.Error("MaxScore never pruned any postings across 200 multi-term queries")
	}
}

func TestExecStatsConsistency(t *testing.T) {
	c, e := setup(t)
	g := corpus.NewQueryGen(c, 13)
	for i := 0; i < 200; i++ {
		q := g.Next()
		ex := e.Search(q)
		st := ex.Stats
		if st.DocsEverInTopK > st.DocsScored {
			t.Fatalf("everInTopK %d > scored %d", st.DocsEverInTopK, st.DocsScored)
		}
		if st.HeapOps != st.DocsEverInTopK {
			t.Fatalf("heap ops %d != admitted docs %d", st.HeapOps, st.DocsEverInTopK)
		}
		if len(ex.Results) > e.K() {
			t.Fatalf("more than K results: %d", len(ex.Results))
		}
		for j := 1; j < len(ex.Results); j++ {
			if ex.Results[j].Score > ex.Results[j-1].Score {
				t.Fatalf("results not sorted desc")
			}
		}
	}
}

func TestTopKHeap(t *testing.T) {
	h := newTopKHeap(3)
	for _, s := range []float32{5, 1, 9, 3, 7} {
		h.offer(Result{Doc: int32(s), Score: s})
	}
	res := h.results()
	want := []float32{9, 7, 5}
	if len(res) != 3 {
		t.Fatalf("len = %d", len(res))
	}
	for i, w := range want {
		if res[i].Score != w {
			t.Errorf("res[%d] = %v, want %v", i, res[i].Score, w)
		}
	}
	if h.threshold() != 5 {
		t.Errorf("threshold = %v, want 5", h.threshold())
	}
	if !h.full() {
		t.Error("heap should be full")
	}
	if h.offer(Result{Doc: 0, Score: 4}) {
		t.Error("score below threshold admitted")
	}
}

func TestTopKHeapZeroK(t *testing.T) {
	h := newTopKHeap(0) // clamps to 1
	h.offer(Result{Doc: 1, Score: 2})
	h.offer(Result{Doc: 2, Score: 3})
	res := h.results()
	if len(res) != 1 || res[0].Score != 3 {
		t.Errorf("results = %v", res)
	}
}

// Property: the heap keeps exactly the k largest of any stream.
func TestTopKHeapProperty(t *testing.T) {
	f := func(scores []float32, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		h := newTopKHeap(k)
		clean := make([]float32, 0, len(scores))
		for i, s := range scores {
			if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) {
				continue
			}
			clean = append(clean, s)
			h.offer(Result{Doc: int32(i), Score: s})
		}
		sort.Slice(clean, func(i, j int) bool { return clean[i] > clean[j] })
		if len(clean) > k {
			clean = clean[:k]
		}
		res := h.results()
		if len(res) != len(clean) {
			return false
		}
		for i := range res {
			if res[i].Score != clean[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCostModelMonotone(t *testing.T) {
	m := DefaultCostModel()
	small := m.WorkFor(ExecStats{PostingsVisited: 10, DocsScored: 10})
	big := m.WorkFor(ExecStats{PostingsVisited: 10000, DocsScored: 8000})
	if big <= small {
		t.Errorf("more work counters must mean more cycles: %v <= %v", big, small)
	}
	if m.WorkFor(ExecStats{}) <= 0 {
		t.Errorf("fixed cost must be positive")
	}
}

func TestCalibrate(t *testing.T) {
	c, e := setup(t)
	m := DefaultCostModel()
	sample := corpus.NewQueryGen(c, 3).Batch(300)
	m.Calibrate(e, sample, 5.0)
	total := 0.0
	for _, q := range sample {
		total += cpu.TimeFor(m.WorkFor(e.Search(q).Stats), cpu.FDefault)
	}
	mean := total / float64(len(sample))
	if math.Abs(mean-5.0) > 0.01 {
		t.Errorf("calibrated mean = %v ms, want 5.0", mean)
	}
}

func TestCalibrateDegenerate(t *testing.T) {
	m := DefaultCostModel()
	before := m.Scale
	m.Calibrate(nil, nil, 5)
	if m.Scale != before {
		t.Errorf("empty calibration changed scale")
	}
}

// The paper's Fig. 1c: service times across queries must vary by an order
// of magnitude (Canada was 14x Tokyo).
func TestServiceTimeSpread(t *testing.T) {
	c, e := setup(t)
	m := DefaultCostModel()
	g := corpus.NewQueryGen(c, 17)
	min, max := math.Inf(1), 0.0
	for i := 0; i < 500; i++ {
		st := cpu.TimeFor(m.WorkFor(e.Search(g.Next()).Stats), cpu.FDefault)
		if st < min {
			min = st
		}
		if st > max {
			max = st
		}
	}
	if max/min < 6 {
		t.Errorf("service time spread %.1fx too small (want >= 6x)", max/min)
	}
}

func TestFeaturesBasics(t *testing.T) {
	c, e := setup(t)
	x := NewExtractor(e)
	q, _ := corpus.ParseQuery(c, "toyota")
	fv := x.Features(q)
	pl, _ := e.Index().List(q.Terms[0])
	if fv[FeatPostingListLength] != float64(pl.Len()) {
		t.Errorf("posting list length feature = %v, want %v", fv[FeatPostingListLength], pl.Len())
	}
	if fv[FeatQueryLength] != 1 {
		t.Errorf("query length = %v", fv[FeatQueryLength])
	}
	if fv[FeatMaxScore] <= 0 || fv[FeatIDF] <= 0 {
		t.Errorf("degenerate features: %+v", fv)
	}
	if fv[FeatHMean] > fv[FeatGMean]+1e-9 || fv[FeatGMean] > fv[FeatAMean]+1e-9 {
		t.Errorf("mean inequality violated: H=%v G=%v A=%v", fv[FeatHMean], fv[FeatGMean], fv[FeatAMean])
	}
	if fv[FeatEstimatedMaxScore] < fv[FeatMaxScore] {
		t.Errorf("estimated max %v below actual max %v", fv[FeatEstimatedMaxScore], fv[FeatMaxScore])
	}
	if fv[FeatDocsIn5PctOfMaxScore] < fv[FeatNumMaxScore] {
		t.Errorf("5%%-of-max count below max count")
	}
	if fv[FeatLocalMaximaAboveAMean] > fv[FeatNumLocalMaxima] {
		t.Errorf("local maxima above mean exceeds total")
	}
}

func TestFeaturesPhraseIsMaxOfTerms(t *testing.T) {
	c, e := setup(t)
	x := NewExtractor(e)
	q, ok := corpus.ParseQuery(c, "united kingdom")
	if !ok || q.Len() != 2 {
		t.Fatal("phrase parse failed")
	}
	fv := x.Features(q)
	fu := x.Features(corpus.Query{Terms: q.Terms[:1]})
	fk := x.Features(corpus.Query{Terms: q.Terms[1:]})
	for i := 0; i < NumFeatures-1; i++ {
		want := math.Max(fu[i], fk[i])
		if math.Abs(fv[i]-want) > 1e-9 {
			t.Errorf("feature %s = %v, want max(%v, %v)", FeatureNames[i], fv[i], fu[i], fk[i])
		}
	}
	if fv[FeatQueryLength] != 2 {
		t.Errorf("query length = %v", fv[FeatQueryLength])
	}
}

func TestFeaturesUnknownQueryZero(t *testing.T) {
	_, e := setup(t)
	x := NewExtractor(e)
	fv := x.Features(corpus.Query{Terms: []corpus.TermID{corpus.TermID(1 << 20)}})
	for i := 0; i < NumFeatures-1; i++ {
		if fv[i] != 0 {
			t.Errorf("feature %s = %v for unknown query", FeatureNames[i], fv[i])
		}
	}
}

func TestFeatureCacheConsistency(t *testing.T) {
	c, e := setup(t)
	x := NewExtractor(e)
	q, _ := corpus.ParseQuery(c, "canada")
	a := x.Features(q)
	b := x.Features(q)
	if a != b {
		t.Errorf("cached features differ: %v vs %v", a, b)
	}
}

func TestJitterBiasBounded(t *testing.T) {
	c, e := setup(t)
	x := NewExtractor(e)
	j := DefaultJitter()
	g := corpus.NewQueryGen(c, 23)
	for i := 0; i < 200; i++ {
		b := j.Bias(x.Features(g.Next()))
		if b < -j.BiasAmp-1e-12 || b > j.BiasAmp+j.SpikeAmp+1e-12 {
			t.Fatalf("bias %v outside [-%v, %v]", b, j.BiasAmp, j.BiasAmp+j.SpikeAmp)
		}
	}
}

func TestMeasuredWorkStatistics(t *testing.T) {
	c, e := setup(t)
	x := NewExtractor(e)
	j := DefaultJitter()
	rng := rand.New(rand.NewSource(1))
	q, _ := corpus.ParseQuery(c, "united")
	fv := x.Features(q)
	base := cpu.Work(10)
	var sum, sumsq float64
	const n = 4000
	for i := 0; i < n; i++ {
		m := float64(j.MeasuredWork(base, fv, rng))
		if m <= 0 {
			t.Fatalf("non-positive measured work")
		}
		sum += m
		sumsq += m * m
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	wantMean := float64(base) * (1 + j.Bias(fv))
	if math.Abs(mean-wantMean) > 0.02*float64(base) {
		t.Errorf("measured mean %v, want ≈%v", mean, wantMean)
	}
	if std < 0.01*float64(base) || std > 0.08*float64(base) {
		t.Errorf("measured std %v outside expected band", std)
	}
}

// Property: measured work is always positive and within the clamp bounds.
func TestMeasuredWorkProperty(t *testing.T) {
	j := DefaultJitter()
	rng := rand.New(rand.NewSource(9))
	f := func(baseRaw uint16, lenRaw uint16) bool {
		base := cpu.Work(float64(baseRaw)/100 + 0.01)
		var fv FeatureVector
		fv[FeatPostingListLength] = float64(lenRaw)
		m := j.MeasuredWork(base, fv, rng)
		hi := float64(base) * (1 + j.BiasAmp + j.SpikeAmp + 3*j.NoiseSigma + 1e-9)
		lo := float64(base) * 0.1 * (1 - 1e-9)
		return float64(m) >= lo && float64(m) <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
