package search

import (
	"math"
	"sync"
	"testing"

	"gemini/internal/corpus"
	"gemini/internal/index"
)

var fuzzEnv struct {
	once sync.Once
	mu   sync.Mutex
	c    *corpus.Corpus
	eng  *Engine
}

func fuzzEngine() (*corpus.Corpus, *Engine) {
	fuzzEnv.once.Do(func() {
		spec := corpus.SmallSpec()
		spec.Seed = 7
		fuzzEnv.c = corpus.Generate(spec)
		fuzzEnv.eng = NewEngine(index.Build(fuzzEnv.c), DefaultK)
	})
	return fuzzEnv.c, fuzzEnv.eng
}

// FuzzFeatureVector feeds arbitrary query text through ParseQuery and the
// Table II feature extractor and checks the properties the predictors rely
// on: extraction never panics, every feature is finite and non-negative,
// Query_Length matches the parsed term count, the cached second extraction
// is identical to the first, and a fresh extractor (empty cache) agrees with
// the warmed one — i.e. the per-term profile cache is a pure memoization.
func FuzzFeatureVector(f *testing.F) {
	f.Add("canada")
	f.Add("united kingdom")
	f.Add("UNITED   kingdom\tcanada")
	f.Add("no-such-word at all")
	f.Add("")
	f.Add("a b c d e f g h i j k l m n o p q r s t u v w x y z")

	f.Fuzz(func(t *testing.T, text string) {
		c, eng := fuzzEngine()
		fuzzEnv.mu.Lock()
		defer fuzzEnv.mu.Unlock()

		q, ok := corpus.ParseQuery(c, text)
		if !ok {
			return // nothing resolved against the vocabulary
		}
		if len(q.Terms) == 0 {
			t.Fatal("ParseQuery returned ok with no terms")
		}

		warm := NewExtractor(eng)
		fv := warm.Features(q)
		for i, v := range fv {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("feature %s = %v", FeatureNames[i], v)
			}
			if v < 0 {
				t.Fatalf("feature %s = %v, want >= 0", FeatureNames[i], v)
			}
		}
		if got := fv[FeatQueryLength]; got != float64(len(q.Terms)) {
			t.Fatalf("Query_Length = %v, terms = %d", got, len(q.Terms))
		}

		if again := warm.Features(q); again != fv {
			t.Fatalf("cached extraction diverged:\n%v\n%v", fv, again)
		}
		if fresh := NewExtractor(eng).Features(q); fresh != fv {
			t.Fatalf("fresh extractor diverged:\n%v\n%v", fv, fresh)
		}
	})
}
