package search

import (
	"math"
	"math/rand"

	"gemini/internal/cpu"
)

// Jitter models why measured service times are not perfectly predictable
// from query features (the paper's central premise, §II-B): cache and OS
// effects add a per-execution random component, and there are systematic,
// query-dependent components the engine's counters do not capture. Two
// systematic terms are modeled:
//
//   - a smooth ±BiasAmp modulation (memory locality of a term's postings);
//   - a sparse "spike": a minority of queries (pathological access patterns,
//     e.g. pruning-hostile score distributions) run SpikeAmp slower, again
//     deterministically in the features.
//
// The spike is what gives the paper's Fig. 8 error structure: the per-ms
// bucketized latency classifier under-fits the minority class, leaving large
// feature-predictable residuals that the dedicated error NN (§IV-C) learns —
// and that a moving average (Gemini-α) can only smear across all queries.
// The random component bounds any predictor's accuracy below 100%.
type Jitter struct {
	BiasAmp    float64 // amplitude of the smooth systematic component
	NoiseSigma float64 // std-dev of the random component (fraction of base)
	SpikeAmp   float64 // slowdown of spike-class queries (fraction of base)
	// SpikeMaxLen restricts spikes to queries whose longest posting list is
	// below this bound: giant streaming scans are bandwidth-bound and
	// predictable, while pruning-hostile behavior hits mid-size lists.
	SpikeMaxLen float64
}

// DefaultJitter returns the configuration used by all experiments, tuned so
// the latency NN classifier lands near the paper's 89% (±1 ms) accuracy and
// the error NN near 85%.
func DefaultJitter() *Jitter {
	return &Jitter{BiasAmp: 0.10, NoiseSigma: 0.035, SpikeAmp: 0.40, SpikeMaxLen: 5000}
}

// Bias returns the deterministic systematic fraction for a query with the
// given features (in [-BiasAmp, BiasAmp+SpikeAmp]).
func (j *Jitter) Bias(fv FeatureVector) float64 {
	// A smooth, feature-dependent phase: hard for a bucketized classifier
	// to absorb fully, easy for a dedicated residual model to pick up.
	phase := 0.9*math.Log1p(fv[FeatPostingListLength]) +
		0.7*fv[FeatIDF] +
		0.45*math.Log1p(fv[FeatDocsEverInTopK]) +
		0.25*fv[FeatQueryLength]
	b := j.BiasAmp * math.Sin(phase)
	if j.IsSpike(fv) {
		b += j.SpikeAmp
	}
	return b
}

// IsSpike reports whether the query belongs to the deterministic slow
// minority (≈14% of the feature-phase space).
func (j *Jitter) IsSpike(fv FeatureVector) bool {
	if j.SpikeMaxLen > 0 && fv[FeatPostingListLength] >= j.SpikeMaxLen {
		return false
	}
	phase2 := 1.7*math.Log1p(fv[FeatVariance]) +
		0.9*fv[FeatQueryLength] +
		0.51*math.Log1p(fv[FeatPostingListLength]) +
		0.33*math.Log1p(fv[FeatDocsIn5PctOfKthScore])
	return math.Sin(phase2) > 0.9
}

// MeasuredWork converts the deterministic base work of an execution into a
// "measured" amount of work including systematic bias and random noise.
// Noise is clamped to ±3σ; the result is never below 10% of base.
func (j *Jitter) MeasuredWork(base cpu.Work, fv FeatureVector, rng *rand.Rand) cpu.Work {
	noise := j.NoiseSigma * rng.NormFloat64()
	if noise > 3*j.NoiseSigma {
		noise = 3 * j.NoiseSigma
	}
	if noise < -3*j.NoiseSigma {
		noise = -3 * j.NoiseSigma
	}
	m := float64(base) * (1 + j.Bias(fv) + noise)
	if m < 0.1*float64(base) {
		m = 0.1 * float64(base)
	}
	return cpu.Work(m)
}
