package search

import (
	"sort"

	"gemini/internal/index"
)

// Algorithm selects the query-evaluation strategy. MaxScore is the default
// (and what the cost model is calibrated for); WAND is the other classic
// dynamic-pruning family the paper cites (refs [21], [24]); Exhaustive
// disables pruning entirely and is the correctness oracle as well as the
// "no pruning" ablation point.
type Algorithm int

const (
	// AlgMaxScore evaluates with document-at-a-time MaxScore pruning.
	AlgMaxScore Algorithm = iota
	// AlgWAND evaluates with the Weak-AND pivot-based pruning algorithm.
	AlgWAND
	// AlgExhaustive scores every posting of every list.
	AlgExhaustive
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgMaxScore:
		return "maxscore"
	case AlgWAND:
		return "wand"
	case AlgExhaustive:
		return "exhaustive"
	default:
		return "unknown"
	}
}

// NewEngineWith creates an engine with an explicit evaluation algorithm.
func NewEngineWith(ix *index.Index, k int, alg Algorithm) *Engine {
	e := NewEngine(ix, k)
	e.alg = alg
	return e
}

// Algorithm returns the engine's evaluation strategy.
func (e *Engine) Algorithm() Algorithm { return e.alg }

// searchWAND runs the WAND pivot algorithm over >= 2 lists: lists are kept
// ordered by their current document; the pivot is the first list at which
// the cumulative upper bound exceeds the threshold θ. If all lists before
// the pivot already sit on the pivot document it is fully scored; otherwise
// the lagging lists skip forward to it.
func (e *Engine) searchWAND(lists []*index.PostingList) Execution {
	type cursor struct {
		pl  *index.PostingList
		pos int
	}
	cur := make([]*cursor, 0, len(lists))
	for _, pl := range lists {
		if pl.Len() > 0 {
			cur = append(cur, &cursor{pl: pl})
		}
	}
	h := newTopKHeap(e.k)
	st := ExecStats{Terms: len(lists)}

	doc := func(c *cursor) int32 { return c.pl.Postings[c.pos].Doc }
	byDoc := func() { sort.Slice(cur, func(i, j int) bool { return doc(cur[i]) < doc(cur[j]) }) }

	for len(cur) > 0 {
		byDoc()
		theta := h.threshold()
		// Find the pivot: smallest prefix whose upper bounds can beat θ.
		ub := float32(0)
		pivot := -1
		for i, c := range cur {
			ub += c.pl.MaxImpact
			if ub > theta || !h.full() {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			break // no document can beat the threshold anymore
		}
		pivotDoc := doc(cur[pivot])
		if doc(cur[0]) == pivotDoc {
			// All lists up to the pivot aligned: fully score pivotDoc.
			var score float32
			for _, c := range cur {
				if doc(c) != pivotDoc {
					break
				}
				score += c.pl.Postings[c.pos].Impact
				st.PostingsVisited++
			}
			st.DocsScored++
			if h.offer(Result{Doc: pivotDoc, Score: score}) {
				st.DocsEverInTopK++
			}
			// Advance every aligned list past the pivot.
			alive := cur[:0]
			for _, c := range cur {
				if doc(c) == pivotDoc {
					c.pos++
				}
				if c.pos < c.pl.Len() {
					alive = append(alive, c)
				}
			}
			cur = alive
			continue
		}
		// Skip the lagging lists up to the pivot document.
		alive := cur[:0]
		for i, c := range cur {
			if i < pivot && doc(c) < pivotDoc {
				c.pos += gallop(c.pl.Postings[c.pos:], pivotDoc, &st.Lookups)
			}
			if c.pos < c.pl.Len() {
				alive = append(alive, c)
			}
		}
		cur = alive
	}
	st.HeapOps = h.pushes
	return Execution{Results: h.results(), Stats: st}
}

// gallop returns how far to advance within postings to reach the first
// entry with Doc >= target, counting probe steps into lookups.
func gallop(postings []index.Posting, target int32, lookups *int) int {
	// Exponential probe then binary search — standard skipping.
	n := len(postings)
	bound := 1
	for bound < n && postings[bound].Doc < target {
		*lookups++
		bound *= 2
	}
	lo := bound / 2
	hi := bound
	if hi > n {
		hi = n
	}
	for lo < hi {
		*lookups++
		mid := (lo + hi) / 2
		if postings[mid].Doc < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// searchExhaustive scores every document of every list — the pruning-free
// oracle.
func (e *Engine) searchExhaustive(lists []*index.PostingList) Execution {
	scores := map[int32]float32{}
	st := ExecStats{Terms: len(lists)}
	for _, pl := range lists {
		for _, p := range pl.Postings {
			scores[p.Doc] += p.Impact
			st.PostingsVisited++
		}
	}
	h := newTopKHeap(e.k)
	// Deterministic iteration: collect and sort doc ids.
	docs := make([]int32, 0, len(scores))
	for d := range scores {
		docs = append(docs, d)
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i] < docs[j] })
	for _, d := range docs {
		st.DocsScored++
		if h.offer(Result{Doc: d, Score: scores[d]}) {
			st.DocsEverInTopK++
		}
	}
	st.HeapOps = h.pushes
	return Execution{Results: h.results(), Stats: st}
}
