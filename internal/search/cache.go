package search

import (
	"container/list"
	"fmt"
	"sort"

	"gemini/internal/corpus"
)

// CachedEngine wraps an Engine with an LRU result cache (paper ref [22],
// "Design trade-offs for search engine caching"). A hit skips retrieval
// entirely: its ExecStats are empty except for a fixed lookup charge, so the
// cost model prices a cached query at roughly the engine's fixed overhead —
// which is also what a DVFS policy would see.
type CachedEngine struct {
	inner    *Engine
	capacity int

	lru     *list.List               // of *cacheEntry, front = most recent
	entries map[string]*list.Element // key -> element

	hits, misses int
}

type cacheEntry struct {
	key  string
	exec Execution
}

// CacheLookupStats is the execution-counter charge of a cache hit: one
// probe, nothing else.
var CacheLookupStats = ExecStats{Lookups: 1}

// NewCachedEngine wraps the engine with an LRU of the given capacity.
func NewCachedEngine(inner *Engine, capacity int) *CachedEngine {
	if capacity < 1 {
		capacity = 1
	}
	return &CachedEngine{
		inner:    inner,
		capacity: capacity,
		lru:      list.New(),
		entries:  make(map[string]*list.Element, capacity),
	}
}

// cacheKey canonicalizes a query: term order does not change a disjunction's
// results.
func cacheKey(q corpus.Query) string {
	ids := make([]int, len(q.Terms))
	for i, t := range q.Terms {
		ids[i] = int(t)
	}
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

// Search returns the cached execution on a hit (with CacheLookupStats and
// the stored results) or evaluates, stores, and returns on a miss.
func (c *CachedEngine) Search(q corpus.Query) Execution {
	key := cacheKey(q)
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		hit := el.Value.(*cacheEntry).exec
		return Execution{Results: hit.Results, Stats: CacheLookupStats}
	}
	c.misses++
	ex := c.inner.Search(q)
	el := c.lru.PushFront(&cacheEntry{key: key, exec: ex})
	c.entries[key] = el
	if c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
	return ex
}

// Stats returns hit and miss counts since construction.
func (c *CachedEngine) Stats() (hits, misses int) { return c.hits, c.misses }

// HitRate returns the hit fraction (0 if nothing looked up).
func (c *CachedEngine) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Len returns the number of cached entries.
func (c *CachedEngine) Len() int { return c.lru.Len() }

// Inner returns the wrapped engine.
func (c *CachedEngine) Inner() *Engine { return c.inner }
