// Package search implements the query-evaluation path of the ISN: top-K
// retrieval with MaxScore-style selective pruning over the inverted index,
// the Table II feature extraction that feeds Gemini's neural-network
// predictors, and the cycle cost model that converts an execution's work
// counters into cpu.Work for the DVFS simulator.
package search

import (
	"sort"

	"gemini/internal/corpus"
	"gemini/internal/index"
)

// DefaultK is the result-set size K used throughout the evaluation.
const DefaultK = 10

// ExecStats counts the work done by one query execution; the cost model
// converts these into CPU cycles.
type ExecStats struct {
	PostingsVisited int // postings advanced in driving (essential) lists
	Lookups         int // binary-search probes into non-essential lists
	DocsScored      int // candidate documents whose score was computed
	DocsEverInTopK  int // documents that entered the top-K heap ("fully scored")
	HeapOps         int // heap insertions
	Terms           int // number of query terms evaluated
}

// Execution is the outcome of evaluating one query.
type Execution struct {
	Results []Result
	Stats   ExecStats
}

// Engine evaluates queries against an index shard.
type Engine struct {
	ix  *index.Index
	k   int
	alg Algorithm
}

// NewEngine creates an engine returning top-k results (k<=0 means DefaultK).
func NewEngine(ix *index.Index, k int) *Engine {
	if k <= 0 {
		k = DefaultK
	}
	return &Engine{ix: ix, k: k}
}

// K returns the engine's result-set size.
func (e *Engine) K() int { return e.k }

// Index returns the underlying shard index.
func (e *Engine) Index() *index.Index { return e.ix }

// Search evaluates the query and returns the scored top-K with execution
// statistics. Queries whose terms are all unknown return an empty result.
func (e *Engine) Search(q corpus.Query) Execution {
	lists := e.ix.Lists(q)
	switch {
	case len(lists) == 0:
		return Execution{}
	case e.alg == AlgExhaustive:
		return e.searchExhaustive(lists)
	case len(lists) == 1:
		return e.searchSingle(lists[0])
	case e.alg == AlgWAND:
		return e.searchWAND(lists)
	default:
		return e.searchMaxScore(lists)
	}
}

// searchSingle scans a single posting list: no pruning is possible for a
// doc-ordered disjunction of one term, so cost is linear in list length —
// the paper's observation that service time tracks the posting list,
// modulated for multi-term queries by pruning.
func (e *Engine) searchSingle(pl *index.PostingList) Execution {
	h := newTopKHeap(e.k)
	st := ExecStats{Terms: 1}
	for _, p := range pl.Postings {
		st.PostingsVisited++
		st.DocsScored++
		if h.offer(Result{Doc: p.Doc, Score: p.Impact}) {
			st.DocsEverInTopK++
		}
	}
	st.HeapOps = h.pushes
	return Execution{Results: h.results(), Stats: st}
}

// searchMaxScore runs document-at-a-time MaxScore over >=2 lists: lists are
// ordered by ascending max impact; a prefix of "non-essential" lists whose
// cumulative upper bound cannot alone beat the current threshold is only
// probed (by binary search) for candidates produced by the remaining
// "essential" lists.
func (e *Engine) searchMaxScore(lists []*index.PostingList) Execution {
	sort.Slice(lists, func(i, j int) bool { return lists[i].MaxImpact < lists[j].MaxImpact })
	n := len(lists)

	// prefixUB[i] = sum of MaxImpact of lists[0..i-1].
	prefixUB := make([]float32, n+1)
	for i, l := range lists {
		prefixUB[i+1] = prefixUB[i] + l.MaxImpact
	}

	cursors := make([]int, n) // per-list position, only advanced for essential lists
	h := newTopKHeap(e.k)
	st := ExecStats{Terms: n}

	// firstEssential is the index of the first essential list; lists before
	// it are non-essential. It only grows as the threshold rises.
	firstEssential := 0

	for {
		// Raise the non-essential boundary as far as the threshold allows.
		theta := h.threshold()
		for firstEssential < n-1 && h.full() && prefixUB[firstEssential+1] <= theta {
			firstEssential++
		}

		// Find the minimum current document among essential lists.
		cand := int32(-1)
		for i := firstEssential; i < n; i++ {
			if cursors[i] < len(lists[i].Postings) {
				d := lists[i].Postings[cursors[i]].Doc
				if cand < 0 || d < cand {
					cand = d
				}
			}
		}
		if cand < 0 {
			break // all essential lists exhausted
		}

		// Score the candidate: essential contributions by advancing cursors,
		// plus an upper bound from non-essential lists.
		var score float32
		for i := firstEssential; i < n; i++ {
			if cursors[i] < len(lists[i].Postings) && lists[i].Postings[cursors[i]].Doc == cand {
				score += lists[i].Postings[cursors[i]].Impact
				cursors[i]++
				st.PostingsVisited++
			}
		}
		st.DocsScored++

		// Only consult non-essential lists if the doc could still make it.
		theta = h.threshold()
		if score+prefixUB[firstEssential] > theta {
			for i := firstEssential - 1; i >= 0; i-- {
				// Check whether even with list i..0 the doc can pass.
				if score+prefixUB[i+1] <= theta {
					break
				}
				if imp, probes, ok := probe(lists[i], cand); ok {
					score += imp
					st.Lookups += probes
				} else {
					st.Lookups += probes
				}
			}
			if h.offer(Result{Doc: cand, Score: score}) {
				st.DocsEverInTopK++
			}
		}
	}

	st.HeapOps = h.pushes
	return Execution{Results: h.results(), Stats: st}
}

// probe binary-searches list for doc, returning its impact, the number of
// probe steps (charged as Lookups), and whether the doc was found.
func probe(pl *index.PostingList, doc int32) (float32, int, bool) {
	lo, hi := 0, len(pl.Postings)
	steps := 0
	for lo < hi {
		steps++
		mid := (lo + hi) / 2
		d := pl.Postings[mid].Doc
		switch {
		case d == doc:
			return pl.Postings[mid].Impact, steps, true
		case d < doc:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0, steps, false
}
