package search

import (
	"gemini/internal/corpus"
	"gemini/internal/cpu"
)

// CostModel converts execution counters into CPU work. The per-operation
// constants are in cycles; Scale is a dimensionless calibration knob set by
// Calibrate so that the mean query service time at the default frequency
// matches the target platform (the paper reports ≈10 ms on a 34 M-document
// shard; our default target is 5 ms on the scaled-down shard so that the
// 20–100 RPS sweep of Fig. 10 spans the same utilization band as the paper's
// testbed).
type CostModel struct {
	CyclesPerPosting float64 // advance + accumulate in a driving list
	CyclesPerLookup  float64 // one binary-search probe step
	CyclesPerScore   float64 // candidate document scoring overhead
	CyclesPerHeapOp  float64 // top-K heap insertion
	CyclesFixed      float64 // fixed per-query overhead (parse, setup, response)
	Scale            float64
}

// DefaultCostModel returns the uncalibrated per-op constants (Scale 1).
func DefaultCostModel() *CostModel {
	return &CostModel{
		CyclesPerPosting: 450,
		CyclesPerLookup:  120,
		CyclesPerScore:   900,
		CyclesPerHeapOp:  250,
		CyclesFixed:      250_000,
		Scale:            1,
	}
}

// WorkFor converts execution counters to cpu.Work (units of 10^6 cycles).
func (m *CostModel) WorkFor(st ExecStats) cpu.Work {
	cycles := m.CyclesPerPosting*float64(st.PostingsVisited) +
		m.CyclesPerLookup*float64(st.Lookups) +
		m.CyclesPerScore*float64(st.DocsScored) +
		m.CyclesPerHeapOp*float64(st.HeapOps) +
		m.CyclesFixed
	return cpu.Work(cycles * m.Scale / 1e6)
}

// Calibrate adjusts Scale so that the mean service time of the sample
// queries at the default frequency equals targetMeanMs. It returns the mean
// before calibration (at Scale as configured) for diagnostics.
func (m *CostModel) Calibrate(e *Engine, sample []corpus.Query, targetMeanMs float64) float64 {
	if len(sample) == 0 || targetMeanMs <= 0 {
		return 0
	}
	total := 0.0
	for _, q := range sample {
		ex := e.Search(q)
		total += cpu.TimeFor(m.WorkFor(ex.Stats), cpu.FDefault)
	}
	mean := total / float64(len(sample))
	if mean > 0 {
		m.Scale *= targetMeanMs / mean
	}
	return mean
}
