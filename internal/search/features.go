package search

import (
	"gemini/internal/corpus"
	"gemini/internal/index"
	"gemini/internal/stats"
)

// Feature indices of the Table II feature vector. The order matches the
// bottom-to-top feature-addition order of the paper's Fig. 6 sweep, with the
// query-level "Query Length" appended last.
const (
	FeatPostingListLength = iota
	FeatIDF
	FeatMaxScore
	FeatAMean
	FeatGMean
	FeatHMean
	FeatVariance
	FeatEstimatedMaxScore
	FeatNumLocalMaxima
	FeatLocalMaximaAboveAMean
	FeatNumMaxScore
	FeatDocsIn5PctOfMaxScore
	FeatDocsIn5PctOfKthScore
	FeatDocsEverInTopK
	FeatQueryLength
	NumFeatures
)

// FeatureNames gives the printable name of each feature slot.
var FeatureNames = [NumFeatures]string{
	"Posting_List_Length",
	"IDF",
	"MaxScore",
	"AMean",
	"GMean",
	"HMean",
	"Variance",
	"Estimated_MaxScore",
	"#_of_Local_Maxima",
	"Local_Maxima_above_AMean",
	"#_of_MaxScore",
	"Docs_in_5%_of_MaxScore",
	"Docs_in_5%_of_KthScore",
	"Docs_ever_in_TopK",
	"Query_Length",
}

// FeatureVector holds the Table II features of one query.
type FeatureVector [NumFeatures]float64

// termProfile caches the per-term feature values. Static list statistics
// are computed from the posting list; the execution-derived features
// (Docs_in_5%_of_KthScore, Docs_ever_in_TopK) come from profiling a
// single-term top-K run, mirroring how a production predictor would learn
// them from past executions of the term.
type termProfile struct {
	feats [NumFeatures - 1]float64 // all but Query_Length
}

// Extractor computes Table II feature vectors, caching per-term profiles.
// It is not safe for concurrent use.
type Extractor struct {
	engine *Engine
	cache  map[corpus.TermID]*termProfile
}

// NewExtractor creates an extractor over the engine's index, using the
// engine's K for the Kth-score features.
func NewExtractor(e *Engine) *Extractor {
	return &Extractor{engine: e, cache: make(map[corpus.TermID]*termProfile)}
}

// Features returns the feature vector of a query. For phrase queries (more
// than one term), each per-term feature takes the maximum across the query's
// terms, as in the paper. Unknown terms contribute nothing; a query with no
// known terms yields the zero vector.
func (x *Extractor) Features(q corpus.Query) FeatureVector {
	var fv FeatureVector
	for _, t := range q.Terms {
		p := x.profile(t)
		if p == nil {
			continue
		}
		for i := 0; i < NumFeatures-1; i++ {
			if p.feats[i] > fv[i] {
				fv[i] = p.feats[i]
			}
		}
	}
	fv[FeatQueryLength] = float64(len(q.Terms))
	return fv
}

func (x *Extractor) profile(t corpus.TermID) *termProfile {
	if p, ok := x.cache[t]; ok {
		return p
	}
	pl, err := x.engine.Index().List(t)
	if err != nil {
		x.cache[t] = nil
		return nil
	}
	p := x.buildProfile(pl)
	x.cache[t] = p
	return p
}

func (x *Extractor) buildProfile(pl *index.PostingList) *termProfile {
	imps := make([]float64, pl.Len())
	for i, pst := range pl.Postings {
		imps[i] = float64(pst.Impact)
	}
	am, _ := stats.Mean(imps)
	gm, _ := stats.GeometricMean(imps)
	hm, _ := stats.HarmonicMean(imps)
	vr, _ := stats.Variance(imps)
	max := float64(pl.MaxImpact)

	// Local maxima of the impact sequence in document order (interior
	// points strictly greater than both neighbors).
	nLocalMax, nLocalMaxAboveAM := 0, 0
	for i := 1; i < len(imps)-1; i++ {
		if imps[i] > imps[i-1] && imps[i] > imps[i+1] {
			nLocalMax++
			if imps[i] > am {
				nLocalMaxAboveAM++
			}
		}
	}

	nMax, in5Max := 0, 0
	for _, v := range imps {
		if v >= max { // nothing exceeds max, so this counts exact hits
			nMax++
		}
		if v >= 0.95*max {
			in5Max++
		}
	}

	// Execution-derived features from a profiling run of the single term.
	ex := x.engine.searchSingle(pl)
	kth := 0.0
	if len(ex.Results) > 0 {
		kth = float64(ex.Results[len(ex.Results)-1].Score)
	}
	in5Kth := 0
	for _, v := range imps {
		if v >= 0.95*kth {
			in5Kth++
		}
	}

	// Estimated max score: the analytic BM25 upper bound IDF·(k1+1)
	// (paper ref [43] uses a precomputed approximation; the analytic bound
	// plays the same role — cheap, never below the true max, and loose).
	estMax := pl.IDF * (index.BM25K1 + 1)

	p := &termProfile{}
	p.feats[FeatPostingListLength] = float64(pl.Len())
	p.feats[FeatIDF] = pl.IDF
	p.feats[FeatMaxScore] = max
	p.feats[FeatAMean] = am
	p.feats[FeatGMean] = gm
	p.feats[FeatHMean] = hm
	p.feats[FeatVariance] = vr
	p.feats[FeatEstimatedMaxScore] = estMax
	p.feats[FeatNumLocalMaxima] = float64(nLocalMax)
	p.feats[FeatLocalMaximaAboveAMean] = float64(nLocalMaxAboveAM)
	p.feats[FeatNumMaxScore] = float64(nMax)
	p.feats[FeatDocsIn5PctOfMaxScore] = float64(in5Max)
	p.feats[FeatDocsIn5PctOfKthScore] = float64(in5Kth)
	p.feats[FeatDocsEverInTopK] = float64(ex.Stats.DocsEverInTopK)
	return p
}
