// Package par is the deterministic worker-pool primitive shared by the
// harness experiment grids and the sharded cluster simulator. It runs n
// independent jobs across a bounded pool with an atomic work-stealing
// counter; each job must write only into its own per-index slot so that the
// serial path (workers <= 1, which runs inline with no goroutines) and the
// parallel path produce byte-identical results after an index-ordered
// assembly pass. The harness grid tests (TestParallelSweepMatchesSerial) and
// the sharded-run tests (TestClusterWorkersMatchesSerial) both pin this
// discipline.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default worker count: one per schedulable CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Run executes jobs 0..n-1 across at most `workers` goroutines. Each job must
// write results only into its own per-index slot; workers <= 1 runs inline on
// the caller's goroutine and is the serial reference path.
func Run(workers, n int, job func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				job(i)
			}
		}()
	}
	wg.Wait()
}
