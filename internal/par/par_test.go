package par

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 257
		var hits [n]atomic.Int32
		Run(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestRunSerialIsInline(t *testing.T) {
	// workers <= 1 must execute jobs in index order on the caller's
	// goroutine — the serial reference path of the byte-identical contract.
	var order []int
	Run(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order[%d] = %d", i, got)
		}
	}
	if len(order) != 5 {
		t.Fatalf("ran %d jobs, want 5", len(order))
	}
}

func TestRunZeroJobs(t *testing.T) {
	ran := false
	Run(4, 0, func(int) { ran = true })
	if ran {
		t.Fatal("job ran with n=0")
	}
}
