package cpu

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeWorkRoundTrip(t *testing.T) {
	// 27 GHz·ms at 2.7 GHz takes 10 ms (the paper's average service time).
	if got := TimeFor(27, 2.7); math.Abs(got-10) > 1e-12 {
		t.Errorf("TimeFor(27, 2.7) = %v, want 10", got)
	}
	if got := WorkFor(10, 2.7); math.Abs(float64(got)-27) > 1e-12 {
		t.Errorf("WorkFor(10, 2.7) = %v, want 27", got)
	}
	if !math.IsInf(TimeFor(1, 0), 1) {
		t.Errorf("TimeFor at zero frequency should be +Inf")
	}
}

// Property: S = C/f round trips through WorkFor/TimeFor.
func TestTimeWorkProperty(t *testing.T) {
	f := func(sRaw, fRaw uint16) bool {
		s := float64(sRaw%10000)/100 + 0.01 // 0.01..100.01 ms
		fq := Freq(float64(fRaw%15)/10 + 1.2)
		w := WorkFor(s, fq)
		back := TimeFor(w, fq)
		return math.Abs(back-s) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLadderBasics(t *testing.T) {
	l := DefaultLadder()
	if l.Min() != 1.2 || l.Max() != 2.7 {
		t.Fatalf("ladder bounds = %v..%v", l.Min(), l.Max())
	}
	if len(l.Levels()) != 8 {
		t.Fatalf("levels = %v", l.Levels())
	}
	if !l.Contains(2.0) || l.Contains(2.1) {
		t.Errorf("Contains misbehaves")
	}
}

func TestLadderDedupAndSort(t *testing.T) {
	l := NewLadder([]Freq{2.0, 1.2, 2.0, 1.6})
	lv := l.Levels()
	want := []Freq{1.2, 1.6, 2.0}
	if len(lv) != len(want) {
		t.Fatalf("levels = %v, want %v", lv, want)
	}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("levels = %v, want %v", lv, want)
		}
	}
}

func TestClampUp(t *testing.T) {
	l := DefaultLadder()
	cases := []struct{ in, want Freq }{
		{0.5, 1.2}, {1.2, 1.2}, {1.3, 1.4}, {2.41, 2.7}, {2.7, 2.7}, {9, 2.7},
	}
	for _, c := range cases {
		if got := l.ClampUp(c.in); got != c.want {
			t.Errorf("ClampUp(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestClampDown(t *testing.T) {
	l := DefaultLadder()
	cases := []struct{ in, want Freq }{
		{0.5, 1.2}, {1.2, 1.2}, {1.3, 1.2}, {2.69, 2.4}, {2.7, 2.7}, {9, 2.7},
	}
	for _, c := range cases {
		if got := l.ClampDown(c.in); got != c.want {
			t.Errorf("ClampDown(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestStepUpDown(t *testing.T) {
	l := DefaultLadder()
	if got := l.StepUp(1.2); got != 1.4 {
		t.Errorf("StepUp(1.2) = %v", got)
	}
	if got := l.StepUp(2.7); got != 2.7 {
		t.Errorf("StepUp(top) = %v", got)
	}
	if got := l.StepDown(2.7); got != 2.4 {
		t.Errorf("StepDown(2.7) = %v", got)
	}
	if got := l.StepDown(1.2); got != 1.2 {
		t.Errorf("StepDown(bottom) = %v", got)
	}
	// Between-level inputs step relative to neighbors.
	if got := l.StepUp(1.5); got != 1.6 {
		t.Errorf("StepUp(1.5) = %v", got)
	}
	if got := l.StepDown(1.5); got != 1.4 {
		t.Errorf("StepDown(1.5) = %v", got)
	}
}

// Property: ClampUp never returns below input unless input exceeds max, and
// always returns a ladder level.
func TestClampUpProperty(t *testing.T) {
	l := DefaultLadder()
	f := func(raw uint16) bool {
		in := Freq(float64(raw) / 1000) // 0..65.5 GHz
		out := l.ClampUp(in)
		if !l.Contains(out) {
			return false
		}
		if in <= l.Max() {
			return out >= in
		}
		return out == l.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVoltageEndpoints(t *testing.T) {
	m := DefaultPowerModel()
	if got := m.Voltage(FMin); math.Abs(got-m.VMin) > 1e-12 {
		t.Errorf("Voltage(FMin) = %v", got)
	}
	if got := m.Voltage(FMax); math.Abs(got-m.VMax) > 1e-12 {
		t.Errorf("Voltage(FMax) = %v", got)
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	m := DefaultPowerModel()
	prev := 0.0
	for _, f := range DefaultLevels {
		p := m.CoreW(f, true)
		if p <= prev {
			t.Errorf("power not increasing at %v GHz: %v <= %v", f, p, prev)
		}
		prev = p
	}
}

func TestActiveCostsMoreThanIdle(t *testing.T) {
	m := DefaultPowerModel()
	for _, f := range DefaultLevels {
		if m.CoreW(f, true) <= m.CoreW(f, false) {
			t.Errorf("active <= idle at %v GHz", f)
		}
	}
}

// Calibration: the 12-core socket at the default frequency must land inside
// the paper's Fig. 10 baseline band (≈34 W at low load, ≈36.5 W at 100 RPS).
func TestBaselineCalibration(t *testing.T) {
	m := DefaultPowerModel()
	lo := m.UniformSocketW(FDefault, 0.10)
	hi := m.UniformSocketW(FDefault, 0.50)
	if lo < 32 || lo > 36 {
		t.Errorf("low-load socket power = %.2f W, want ≈34", lo)
	}
	if hi < 34.5 || hi > 38.5 {
		t.Errorf("high-load socket power = %.2f W, want ≈36.5", hi)
	}
	if hi <= lo {
		t.Errorf("power must grow with utilization: %v <= %v", hi, lo)
	}
}

// DVFS must offer enough dynamic range for the paper's ≈41% savings: a
// socket busy at 1.4 GHz must draw well under 65% of the busy 2.7 GHz power.
func TestDVFSDynamicRange(t *testing.T) {
	m := DefaultPowerModel()
	slow := m.UniformSocketW(1.4, 0.9)
	fast := m.UniformSocketW(FDefault, 0.5)
	if ratio := slow / fast; ratio > 0.70 {
		t.Errorf("slow/fast power ratio = %.2f, want < 0.70 (insufficient DVFS range)", ratio)
	}
}

func TestSocketWMatchesUniform(t *testing.T) {
	m := DefaultPowerModel()
	freqs := make([]Freq, m.Cores)
	active := make([]bool, m.Cores)
	for i := range freqs {
		freqs[i] = FDefault
		active[i] = true
	}
	got := m.SocketW(freqs, active)
	want := m.UniformSocketW(FDefault, 1)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("SocketW = %v, UniformSocketW = %v", got, want)
	}
}

func TestUniformSocketWClampsUtilization(t *testing.T) {
	m := DefaultPowerModel()
	if m.UniformSocketW(FDefault, -1) != m.UniformSocketW(FDefault, 0) {
		t.Errorf("negative utilization not clamped")
	}
	if m.UniformSocketW(FDefault, 2) != m.UniformSocketW(FDefault, 1) {
		t.Errorf("excess utilization not clamped")
	}
}

func TestEnergyAccumulator(t *testing.T) {
	m := DefaultPowerModel()
	acc := NewEnergyAccumulator(m)
	acc.Accumulate(10, 2.7, true)
	acc.Accumulate(10, 1.2, false)
	acc.Accumulate(-5, 2.7, true) // ignored
	wantMJ := m.CoreW(2.7, true)*10 + m.CoreW(1.2, false)*10
	if math.Abs(acc.EnergyMJ()-wantMJ) > 1e-9 {
		t.Errorf("EnergyMJ = %v, want %v", acc.EnergyMJ(), wantMJ)
	}
	if math.Abs(acc.AvgPowerW()-wantMJ/20) > 1e-9 {
		t.Errorf("AvgPowerW = %v", acc.AvgPowerW())
	}
	if math.Abs(acc.Utilization()-0.5) > 1e-12 {
		t.Errorf("Utilization = %v, want 0.5", acc.Utilization())
	}
	if acc.TotalMs() != 20 {
		t.Errorf("TotalMs = %v", acc.TotalMs())
	}
}

func TestEnergyAccumulatorEmpty(t *testing.T) {
	acc := NewEnergyAccumulator(DefaultPowerModel())
	if acc.AvgPowerW() != 0 || acc.Utilization() != 0 {
		t.Errorf("empty accumulator should report zeros")
	}
}

// Property: energy is additive — splitting an interval does not change it.
func TestEnergyAdditivityProperty(t *testing.T) {
	m := DefaultPowerModel()
	f := func(dtRaw, splitRaw uint16, fRaw uint8, active bool) bool {
		dt := float64(dtRaw)/100 + 0.01
		split := float64(splitRaw) / 65535 * dt
		fq := Freq(1.2 + float64(fRaw%16)*0.1)
		whole := NewEnergyAccumulator(m)
		whole.Accumulate(dt, fq, active)
		parts := NewEnergyAccumulator(m)
		parts.Accumulate(split, fq, active)
		parts.Accumulate(dt-split, fq, active)
		return math.Abs(whole.EnergyMJ()-parts.EnergyMJ()) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeepestAffordable(t *testing.T) {
	got := DeepestAffordable(DefaultCStates, 0.1)
	if got.Name != "C3" {
		t.Errorf("slack 0.1ms -> %s, want C3", got.Name)
	}
	got = DeepestAffordable(DefaultCStates, 10)
	if got.Name != "C6" {
		t.Errorf("slack 10ms -> %s, want C6", got.Name)
	}
	got = DeepestAffordable(DefaultCStates, 0)
	if got.Name != "C0-poll" {
		t.Errorf("slack 0 -> %s, want C0-poll", got.Name)
	}
}

func TestCStateLadderOrdering(t *testing.T) {
	for i := 1; i < len(DefaultCStates); i++ {
		if DefaultCStates[i].PowerW >= DefaultCStates[i-1].PowerW {
			t.Errorf("deeper state %s not cheaper", DefaultCStates[i].Name)
		}
		if DefaultCStates[i].WakeMs < DefaultCStates[i-1].WakeMs {
			t.Errorf("deeper state %s wakes faster", DefaultCStates[i].Name)
		}
	}
}

func TestVoltageExtrapolation(t *testing.T) {
	m := DefaultPowerModel()
	// Outside the ladder the linear voltage model extrapolates.
	if v := m.Voltage(0.6); v >= m.VMin {
		t.Errorf("Voltage(0.6) = %v, want < VMin", v)
	}
	if v := m.Voltage(3.0); v <= m.VMax {
		t.Errorf("Voltage(3.0) = %v, want > VMax", v)
	}
}

func TestDynPowerSuperlinear(t *testing.T) {
	m := DefaultPowerModel()
	// f·V(f)² grows faster than linearly: doubling frequency from 1.2 to
	// 2.4 must more than double dynamic power.
	if m.DynW(2.4) <= 2*m.DynW(1.2) {
		t.Errorf("dynamic power not superlinear: %v vs 2x %v", m.DynW(2.4), m.DynW(1.2))
	}
}
