// Package cpu models the processor substrate of the Gemini reproduction: the
// discrete DVFS frequency ladder of the paper's Xeon E5-2697 testbed
// (1.2–2.7 GHz), the constant frequency-transition stall Tdvfs, and an
// analytic CMOS power model calibrated so that a 12-ISN socket draws the
// 34–36.5 W baseline band reported in Fig. 10 of the paper.
//
// Units convention (used across the whole repository):
//   - time is float64 milliseconds of simulated time;
//   - Freq is GHz;
//   - Work is 10^6 cycles (== GHz·ms), so serviceTimeMs = Work / Freq,
//     matching the paper's S = C/f model validated in Fig. 3.
package cpu

import (
	"fmt"
	"math"
	"sort"
)

// Freq is a CPU core frequency in GHz.
type Freq float64

// Work is an amount of computation in units of 10^6 cycles (GHz·ms).
type Work float64

// Standard ladder of the evaluation platform (paper Fig. 3 x-axis).
var DefaultLevels = []Freq{1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.7}

const (
	// FMin and FMax bound the default ladder.
	FMin Freq = 1.2
	FMax Freq = 2.7
	// FDefault is the paper's default (and maximum) frequency: both the
	// boosted frequency f_b and the frequency service-time predictions are
	// conditioned on (paper eq. 1).
	FDefault Freq = 2.7
	// FLow is the low "cruise" gear used by epoch-style controllers (EETL,
	// paper ref [16], starts every request here before boosting): a
	// mid-ladder level trading service time for cubic dynamic-power savings.
	FLow Freq = 1.6
	// TdvfsMs is the constant CPU stall incurred by a frequency transition
	// (paper §III-A), folded together with the ~40 µs user-space sysfs write
	// overhead reported in §V.
	TdvfsMs = 0.05
)

// TimeFor returns the time in ms needed to complete w units of work at
// frequency f.
//
//gemini:hotpath
func TimeFor(w Work, f Freq) float64 {
	if f <= 0 {
		return math.Inf(1)
	}
	return float64(w) / float64(f)
}

// WorkFor returns the work completed in tMs milliseconds at frequency f.
//
//gemini:hotpath
func WorkFor(tMs float64, f Freq) Work {
	return Work(tMs * float64(f))
}

// Ladder is a discrete set of selectable core frequencies.
type Ladder struct {
	levels []Freq // ascending
}

// NewLadder builds a ladder from the given levels; they are copied, sorted,
// and deduplicated. An empty input yields the DefaultLevels ladder.
func NewLadder(levels []Freq) *Ladder {
	if len(levels) == 0 {
		levels = DefaultLevels
	}
	ls := make([]Freq, len(levels))
	copy(ls, levels)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:1]
	for _, f := range ls[1:] {
		//gemini:allow floatcmp -- deduplicating identical ladder entries; DVFS states are exact discrete values, not computed
		if f != out[len(out)-1] {
			out = append(out, f)
		}
	}
	return &Ladder{levels: out}
}

// DefaultLadder returns the standard 1.2–2.7 GHz ladder.
func DefaultLadder() *Ladder { return NewLadder(nil) }

// Levels returns a copy of the ladder's frequencies, ascending.
func (l *Ladder) Levels() []Freq {
	out := make([]Freq, len(l.levels))
	copy(out, l.levels)
	return out
}

// Min returns the lowest frequency.
func (l *Ladder) Min() Freq { return l.levels[0] }

// Max returns the highest frequency.
func (l *Ladder) Max() Freq { return l.levels[len(l.levels)-1] }

// ClampUp returns the lowest ladder frequency >= f. Requests above the top
// level return the top level: the deadline may then be at risk and it is the
// caller's (policy's) job to boost immediately or drop, per §III-A.
func (l *Ladder) ClampUp(f Freq) Freq {
	i := sort.Search(len(l.levels), func(i int) bool { return l.levels[i] >= f })
	if i == len(l.levels) {
		return l.levels[len(l.levels)-1]
	}
	return l.levels[i]
}

// ClampDown returns the highest ladder frequency <= f, or the bottom level
// if f is below the ladder.
func (l *Ladder) ClampDown(f Freq) Freq {
	i := sort.Search(len(l.levels), func(i int) bool { return l.levels[i] > f })
	if i == 0 {
		return l.levels[0]
	}
	return l.levels[i-1]
}

// StepDown returns the next frequency below f on the ladder (or the bottom
// level if f already is the bottom).
func (l *Ladder) StepDown(f Freq) Freq {
	i := sort.Search(len(l.levels), func(i int) bool { return l.levels[i] >= f })
	if i <= 0 {
		return l.levels[0]
	}
	if i == len(l.levels) {
		return l.levels[len(l.levels)-1]
	}
	return l.levels[i-1]
}

// StepUp returns the next frequency above f on the ladder (or the top level
// if f already is the top).
func (l *Ladder) StepUp(f Freq) Freq {
	i := sort.Search(len(l.levels), func(i int) bool { return l.levels[i] > f })
	if i == len(l.levels) {
		return l.levels[len(l.levels)-1]
	}
	return l.levels[i]
}

// Index returns f's position on the ladder: the index of the highest level
// <= f, clamped to 0 when f is below the bottom. For exact ladder levels —
// the only values the simulator ever runs at — this is the level's ordinal,
// which is what per-level bookkeeping (frequency-residency sampling) keys on.
func (l *Ladder) Index(f Freq) int {
	i := sort.Search(len(l.levels), func(i int) bool { return l.levels[i] > f })
	if i == 0 {
		return 0
	}
	return i - 1
}

// Contains reports whether f is exactly a ladder level.
func (l *Ladder) Contains(f Freq) bool {
	i := sort.Search(len(l.levels), func(i int) bool { return l.levels[i] >= f })
	//gemini:allow floatcmp -- membership is exact by design: callers must pass a value taken from the ladder
	return i < len(l.levels) && l.levels[i] == f
}

// String renders the ladder for diagnostics.
func (l *Ladder) String() string {
	return fmt.Sprintf("Ladder%v", l.levels)
}
