package cpu

// PowerModel is an analytic CMOS socket power model:
//
//	P_socket = Uncore + Σ_cores [ Leak + Dyn(f)·activity ]
//	Dyn(f)   = DynCoeff · f · V(f)²          (classic f·V² dynamic power)
//	V(f)     = linear between (FMin, VMin) and (FMax, VMax)
//
// activity is 1 for a core executing a request and IdleActivity for an idle
// core. Latency-critical deployments disable deep C-states (the paper's
// testbed polls in C0 so that wake latency never hits the tail), which is why
// an idle core still burns most of its dynamic power at its current
// frequency; that is what makes idle-time frequency scaling profitable and
// reproduces the shallow baseline slope of Fig. 10 (34 W at 20 RPS to 36.5 W
// at 100 RPS).
//
// The default constants are calibrated in DefaultPowerModel so a 12-ISN
// socket lands in that measured band.
type PowerModel struct {
	UncoreW      float64 // constant socket overhead (caches, memory ctrl)
	LeakPerCoreW float64 // per-core static leakage
	DynCoeff     float64 // scales f·V² into watts
	VMin, VMax   float64 // operating voltage at FMin and FMax
	IdleActivity float64 // fraction of Dyn(f) burned by an idle (C0) core
	Cores        int     // cores on the socket (ISNs)
}

// DefaultPowerModel returns the calibrated 12-core model used by all
// experiments. Calibration targets (paper Fig. 10 baseline at 2.7 GHz):
// ≈34 W at 20 RPS (utilization ≈0.1) and ≈36.5 W at 100 RPS (≈0.5).
func DefaultPowerModel() *PowerModel {
	return &PowerModel{
		UncoreW:      6.0,
		LeakPerCoreW: 0.60,
		DynCoeff:     0.60,
		VMin:         0.80,
		VMax:         1.15,
		IdleActivity: 0.85,
		Cores:        12,
	}
}

// Voltage returns the modeled operating voltage at frequency f, linearly
// interpolated (and linearly extrapolated outside [FMin, FMax]).
//
//gemini:hotpath
func (m *PowerModel) Voltage(f Freq) float64 {
	frac := (float64(f) - float64(FMin)) / (float64(FMax) - float64(FMin))
	return m.VMin + (m.VMax-m.VMin)*frac
}

// DynW returns the full-activity dynamic power of one core at frequency f.
//
//gemini:hotpath
func (m *PowerModel) DynW(f Freq) float64 {
	v := m.Voltage(f)
	return m.DynCoeff * float64(f) * v * v
}

// CoreW returns the power of a single core at frequency f, active or idle.
//
//gemini:hotpath
func (m *PowerModel) CoreW(f Freq, active bool) float64 {
	act := m.IdleActivity
	if active {
		act = 1
	}
	return m.LeakPerCoreW + m.DynW(f)*act
}

// SocketW returns the instantaneous socket power given each core's frequency
// and activity. len(freqs) and len(active) must equal Cores.
func (m *PowerModel) SocketW(freqs []Freq, active []bool) float64 {
	p := m.UncoreW
	for i := range freqs {
		p += m.CoreW(freqs[i], active[i])
	}
	return p
}

// UniformSocketW returns socket power when every core runs at frequency f
// with the given busy fraction (time-average utilization), a convenient
// closed form for calibration and quick estimates.
func (m *PowerModel) UniformSocketW(f Freq, utilization float64) float64 {
	if utilization < 0 {
		utilization = 0
	}
	if utilization > 1 {
		utilization = 1
	}
	perCore := m.LeakPerCoreW + m.DynW(f)*(m.IdleActivity+(1-m.IdleActivity)*utilization)
	return m.UncoreW + float64(m.Cores)*perCore
}

// EnergyAccumulator integrates one core's energy over piecewise-constant
// (frequency, activity) intervals. Energies are reported in millijoules
// because simulated time is in milliseconds.
type EnergyAccumulator struct {
	model    *PowerModel
	energyMJ float64
	busyMs   float64
	totalMs  float64
}

// NewEnergyAccumulator creates an accumulator against the given model.
func NewEnergyAccumulator(m *PowerModel) *EnergyAccumulator {
	return &EnergyAccumulator{model: m}
}

// Accumulate charges dtMs milliseconds at frequency f with the given
// activity. Negative intervals are ignored.
//
//gemini:hotpath
func (e *EnergyAccumulator) Accumulate(dtMs float64, f Freq, active bool) {
	if dtMs <= 0 {
		return
	}
	e.energyMJ += e.model.CoreW(f, active) * dtMs
	e.totalMs += dtMs
	if active {
		e.busyMs += dtMs
	}
}

// AccumulatePower charges dtMs at an explicit power draw, bypassing the
// frequency model — used for C-state residency in the sleep-state extension.
//
//gemini:hotpath
func (e *EnergyAccumulator) AccumulatePower(dtMs, powerW float64, active bool) {
	if dtMs <= 0 {
		return
	}
	e.energyMJ += powerW * dtMs
	e.totalMs += dtMs
	if active {
		e.busyMs += dtMs
	}
}

// EnergyMJ returns the accumulated core energy in millijoules (W·ms).
//
//gemini:hotpath
func (e *EnergyAccumulator) EnergyMJ() float64 { return e.energyMJ }

// AvgPowerW returns the time-averaged core power in watts.
func (e *EnergyAccumulator) AvgPowerW() float64 {
	if e.totalMs == 0 {
		return 0
	}
	return e.energyMJ / e.totalMs
}

// Utilization returns the busy fraction of the accumulated interval.
func (e *EnergyAccumulator) Utilization() float64 {
	if e.totalMs == 0 {
		return 0
	}
	return e.busyMs / e.totalMs
}

// TotalMs returns the total accumulated time.
func (e *EnergyAccumulator) TotalMs() float64 { return e.totalMs }
