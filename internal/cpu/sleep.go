package cpu

// CState models one processor sleep state for the sleep-state extension
// (paper §I: the two-step technique "can also be extended to Sleep states").
// PowerW is the core's residency power; WakeMs is the latency to resume
// execution, charged before any request work can progress.
type CState struct {
	Name   string
	PowerW float64
	WakeMs float64
}

// DefaultCStates is a small ladder loosely following published Xeon numbers:
// deeper states save more power but cost more wake latency.
var DefaultCStates = []CState{
	{Name: "C0-poll", PowerW: 2.2, WakeMs: 0},
	{Name: "C1", PowerW: 1.2, WakeMs: 0.002},
	{Name: "C3", PowerW: 0.6, WakeMs: 0.05},
	{Name: "C6", PowerW: 0.3, WakeMs: 0.3},
}

// DeepestAffordable returns the deepest state whose wake latency fits inside
// the given idle-time slack, i.e. the state a DynSleep-style governor would
// pick when it knows the next deadline leaves slackMs of headroom.
func DeepestAffordable(states []CState, slackMs float64) CState {
	best := states[0]
	for _, s := range states[1:] {
		if s.WakeMs <= slackMs && s.PowerW < best.PowerW {
			best = s
		}
	}
	return best
}
