// Fixture for the unitsafety analyzer: float == comparisons and unit-suffix
// mismatches on direct value flows.
package fixture

func compares(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func comparesNeq(a, b float64) bool {
	return a != b // want `floating-point != comparison`
}

func zeroSentinel(a float64) bool {
	return a == 0 // fine: constant-zero is the unset sentinel
}

func intCompare(a, b int) bool {
	return a == b // fine: exact integer equality
}

func allowedCompare(a, b float64) bool {
	//gemini:allow floatcmp -- values copied verbatim, bitwise equality intended
	return a == b
}

func assignMismatch(durSec float64) float64 {
	var totalMs float64
	totalMs = durSec // want `unit mismatch: totalMs \(milliseconds\) receives durSec \(seconds\)`
	return totalMs
}

func declMismatch(lenSec float64) float64 {
	var windowMs = lenSec // want `unit mismatch: windowMs \(milliseconds\) receives lenSec \(seconds\)`
	return windowMs
}

func sameUnit(latencyMs float64) float64 {
	var totalMs float64
	totalMs = latencyMs // fine: both milliseconds
	return totalMs
}

func step(deltaSec float64) float64 { return deltaSec }

func argMismatch(budgetMs float64) float64 {
	return step(budgetMs) // want `unit mismatch: deltaSec \(seconds\) receives budgetMs \(milliseconds\)`
}

type report struct {
	TotalMs float64
}

func fieldMismatch(elapsedSec float64) report {
	return report{TotalMs: elapsedSec} // want `unit mismatch: TotalMs \(milliseconds\) receives elapsedSec \(seconds\)`
}

func freqIntoTime(clockGHz float64) float64 {
	var periodMs float64
	//gemini:allow units -- inverse relation handled by the caller
	periodMs = clockGHz
	return periodMs
}

func arithmeticIsUnchecked(spanSec, rateGHz float64) float64 {
	// Derived expressions carry no single unit; the analyzer only polices
	// direct identifier-to-identifier flows.
	var totalMs float64
	totalMs = spanSec * rateGHz * 1e3
	return totalMs
}

func suffixNeedsBoundary(rms float64) float64 {
	// "rms" ends in "ms" but has no camelCase boundary, so it carries no unit.
	var totalMs float64
	totalMs = rms
	return totalMs
}
