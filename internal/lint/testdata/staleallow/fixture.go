// Package fixture exercises the suite-level //gemini:allow audit: an allow
// that suppresses nothing is stale (and carries a deletion fix, asserted by
// fixture.go.golden), an allow naming an unknown check or missing its reason
// is malformed. Consumed allows stay silent.
package fixture

// ratio carries a live floatcmp suppression: the comparison really fires, so
// the allow is consumed and the audit stays quiet about it.
func ratio(a, b float64) bool {
	//gemini:allow floatcmp -- exact sentinel equality on a value stored verbatim
	return a == b
}

// scale's allow is stale: nothing on the next line triggers floatcmp.
func scale(v float64) float64 {
	//gemini:allow floatcmp -- obsolete after the epsilon refactor // want "stale //gemini:allow floatcmp: the unitsafety analyzer reports nothing here"
	return v * 2
}

// mystery names a check no analyzer owns.
func mystery(v float64) float64 {
	//gemini:allow fastmath -- rounding is fine here // want "names unknown check .fastmath."
	return v * 3
}

// unreasoned suppresses a real diagnostic but never says why.
func unreasoned(a, b float64) bool {
	//gemini:allow floatcmp // want "has no `-- reason`"
	return a == b
}
