// Fixture proving the nodeterminism ban stops at the cmd/ boundary: the
// load generator measures real latencies against a wall clock by design
// (only its *schedule* is deterministic, drawn from PartitionedRNG before
// the first clock read). Checked under import path fixture/cmd/geminiload —
// no want comments, the analyzer must stay silent.
package fixture

import (
	"time"
)

func latencyAgainstIntended(intended time.Time) float64 {
	return float64(time.Since(intended)) / float64(time.Millisecond)
}

func runStart() time.Time {
	return time.Now()
}
