// Fixture for the freqdomain analyzer: cpu.Freq values must come from the
// validated ladder (named constants / levels), not numeric literals.
package fixture

import "gemini/internal/cpu"

var bad cpu.Freq = 2.05 // want `literal frequency 2.05 GHz`

var zeroIsSentinel cpu.Freq // fine: zero value means "use the default"

func converts() cpu.Freq {
	return cpu.Freq(1.9) // want `literal frequency 1.9 GHz`
}

func namedConstant() cpu.Freq {
	return cpu.FDefault // fine: named constants live next to the ladder
}

func explicitZero() cpu.Freq {
	return 0 // fine: unset sentinel
}

type plan struct {
	F cpu.Freq
}

func assigns(p *plan) {
	p.F = 2.2 // want `literal frequency 2.2 GHz`
}

func fromLadder(l *cpu.Ladder, i int) cpu.Freq {
	return l.Levels()[i] // fine: non-constant, drawn from the table
}

func suppressed() cpu.Freq {
	//gemini:allow freqliteral -- microbenchmark pinning a fictional turbo state
	return cpu.Freq(3.2)
}
