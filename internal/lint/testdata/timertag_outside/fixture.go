// Package fixture exercises the timertag analyzer outside the reserved
// namespace owner: negative timer-tag constants declared anywhere but
// internal/sim are flagged, non-negative ones are caller business. The
// cross-package collision path is driven separately through a shared fact
// store (see TestTimerTagCrossPackageCollision).
package fixture

// StrayTimerTag squats on the reserved negative namespace from the wrong
// package.
const StrayTimerTag int64 = -5 // want "reserved .negative. timer tag StrayTimerTag = -5 declared outside internal/sim"

// RetryTimerTag is caller-space and fine.
const RetryTimerTag int64 = 11

type scheduler struct{ next int64 }

func (s *scheduler) SetTimer(atMs float64, tag int64) { s.next = tag }

func (s *scheduler) arm() {
	s.SetTimer(0.5, RetryTimerTag)
	s.SetTimer(1.5, StrayTimerTag) // named constant: the declaration is the finding, not the use
}
