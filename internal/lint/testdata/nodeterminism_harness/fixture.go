// Fixture checked under fixture/internal/harness: a deterministic package
// that is NOT internal/sim. The wall-clock and global-rand bans still apply
// there, but raw seeded sources remain the sanctioned idiom — so this file
// carries no want comment for them.
package fixture

import "math/rand"

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
