// Fixture proving the nodeterminism analyzer stays silent outside the
// deterministic packages: checked under import path fixture/server, where
// wall clocks and the global rand are legitimate.
package fixture

import (
	"math/rand"
	"time"
)

func wallClockIsFine() float64 {
	return float64(time.Now().UnixNano()) + float64(rand.Intn(10))
}
