// Package fixture exercises the metricsconv analyzer: gemini_ prefix,
// _total counter suffix, canonical unit suffixes, non-empty help strings,
// and bounded label values. Literal-name violations carry suggested fixes,
// asserted by fixture.go.golden.
package fixture

import (
	"strconv"

	"gemini/internal/telemetry"
)

// badName is a named constant: diagnosed, but no autofix (renaming the const
// is not a single-literal edit).
const badName = "queue_depth"

func register(reg *telemetry.Registry, shard int, userID string, addr string) {
	// Missing prefix on a literal: fixable.
	reg.Counter("requests_total", "Requests served.") // want "metric requests_total lacks the gemini_ namespace prefix"

	// Counter without _total and without prefix: two diagnostics, one
	// canonical rename fix covering both.
	reg.Counter("reqs", "Requests served.") // want "counter reqs must end in _total" "metric reqs lacks the gemini_ namespace prefix"

	// Alias unit spelling: fixable rename to _ms.
	reg.Gauge("gemini_latency_msec", "Smoothed latency.") // want "spells its unit _msec: the canonical suffix is _ms"

	// Alias unit on a counter, suffix order preserved across _total.
	reg.Counter("gemini_busy_nanos_total", "Busy time.") // want "spells its unit _nanos: the canonical suffix is _ns"

	// Wrong scale: diagnosed without a fix — a rename cannot rescale values.
	reg.Histogram("gemini_query_seconds", "Query latency.", nil) // want "is scaled in _seconds but the canonical unit is _ms"

	// Empty help string.
	reg.Gauge("gemini_power_watts", "") // want "metric gemini_power_watts has an empty help string"

	// Named-constant name: diagnosed, no fix.
	reg.Gauge(badName, "Depth of the pending queue.") // want "metric queue_depth lacks the gemini_ namespace prefix"

	// Clean registrations.
	g := reg.Gauge("gemini_freq_ghz", "Current core frequency.")
	g.Set(1.2)
	reg.Counter("gemini_drops_total", "Dropped requests.",
		telemetry.L("shard", strconv.Itoa(shard))) // bounded: strconv of an index

	// Unbounded label value.
	reg.Counter("gemini_user_hits_total", "Per-user hits.",
		telemetry.L("user", userID)) // want "label user value userID is not from a bounded set"

	// Bounded-by-deployment value with a reviewed suppression.
	reg.Gauge("gemini_up_pct", "Serving readiness.",
		telemetry.L("listener", addr)) //gemini:allow metriclabel -- one listener per process from static config
}
