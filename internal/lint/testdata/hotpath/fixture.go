// Fixture for the hotpath analyzer: //gemini:hotpath functions must not
// allocate or call un-annotated helpers, except inside telemetry nil-check
// guarded regions (tracing enabled ⇒ allocations are part of the contract).
package fixture

import (
	"fmt"
	"math"
	"strconv"

	"gemini/internal/telemetry"
)

type engine struct {
	buf []float64
	tr  *telemetry.Tracer
	sp  *telemetry.SpanTracer
}

//gemini:hotpath
func hotAdd(x float64) float64 { return x + 1 }

//gemini:hotpath
func hotCaller(x float64) float64 {
	return hotAdd(x) // fine: callee is annotated
}

func coldHelper(x float64) float64 { return x * 2 }

//gemini:hotpath
func callsCold(x float64) float64 {
	return coldHelper(x) // want `calls un-annotated coldHelper`
}

//gemini:hotpath
func formats(x float64) string {
	return fmt.Sprintf("%v", x) // want `fmt\.Sprintf allocates`
}

//gemini:hotpath
func makesMap() map[string]int {
	return make(map[string]int) // want `make allocates`
}

//gemini:hotpath
func mapLiteral() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates`
}

//gemini:hotpath
func closes(x float64) func() float64 {
	return func() float64 { return x } // want `closure literal allocates`
}

//gemini:hotpath
func escapes() *engine {
	return &engine{} // want `&composite literal escapes to the heap`
}

//gemini:hotpath
func concats(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//gemini:hotpath
func spawns() {
	go coldHelper(1) // want `go statement spawns a goroutine` `calls un-annotated coldHelper`
}

//gemini:hotpath
func outsideAllowlist(n int) string {
	return strconv.Itoa(n) // want `calls strconv\.Itoa, which is outside the hot-path allowlist`
}

//gemini:hotpath
func mathIsFine(x float64) float64 {
	return math.Max(x, 0)
}

//gemini:hotpath
func (e *engine) push(x float64) {
	e.buf = append(e.buf, x) // fine: amortized append is the queue idiom
}

//gemini:hotpath
func (e *engine) guarded(x float64) {
	if e.tr != nil {
		// Tracing enabled: allocation is the contract, not a violation.
		_ = fmt.Sprintf("%v", x)
	}
}

//gemini:hotpath
func (e *engine) earlyOut(x float64) string {
	if e.sp == nil {
		return ""
	}
	return fmt.Sprintf("%v", x) // fine: only reachable with tracing enabled
}

//gemini:hotpath
func suppressed(n int) string {
	//gemini:allow hotpath -- cold error path, runs at most once per process
	return strconv.Itoa(n)
}

// The calendar-queue / SoA-pool idioms added with the event-engine rework:
// the analyzer must keep accepting the patterns the queue depends on
// (binary-search insert with copy-shift, swap-remove dispatch, generation
// pruning) while still flagging rebucketing-style allocation without an
// explicit allow.

//gemini:hotpath
func (e *engine) insertShift(x float64, at int) {
	// append+copy shift: the queue's sorted-bucket insert. Amortized append
	// and the copy builtin are both allowed.
	e.buf = append(e.buf, 0)
	copy(e.buf[at+1:], e.buf[at:])
	e.buf[at] = x
}

//gemini:hotpath
func (e *engine) swapRemove(i int) {
	// O(1) dispatch removal: physical order is irrelevant once events carry
	// their insertion seq.
	last := len(e.buf) - 1
	e.buf[i] = e.buf[last]
	e.buf = e.buf[:last]
}

//gemini:hotpath
func (e *engine) pruneTail(live func(float64) bool) {
	for len(e.buf) > 0 && !live(e.buf[len(e.buf)-1]) {
		e.buf = e.buf[:len(e.buf)-1]
	}
}

//gemini:hotpath
func rebucket(n int) [][]float64 {
	return make([][]float64, n) // want `make allocates`
}

//gemini:hotpath
func rebucketAllowed(n int) [][]float64 {
	//gemini:allow hotpath -- amortized rebucketing, runs O(1) times per O(n) inserts
	return make([][]float64, n)
}

// Timeseries-sampler idioms: the engine loop touches its *telemetry
// SampleCursor only behind nil checks, so cursor calls (un-annotated,
// internally appending) must pass inside the guard and fail outside it.

type sampler struct {
	tsc    *telemetry.SampleCursor
	window []float64
}

//gemini:hotpath
func (s *sampler) onArrival() {
	if s.tsc != nil {
		s.tsc.OnArrival(1) // fine: nil-check guard exempts the enabled path
	}
}

//gemini:hotpath
func (s *sampler) onCompletion(latMs float64) {
	s.tsc.OnCompletion(latMs) // want `calls un-annotated .*OnCompletion`
}

//gemini:hotpath
func (s *sampler) accrueGuarded(dtMs float64, level int) {
	if s.tsc == nil {
		return
	}
	// Early-out guard shape: everything below only runs with sampling on.
	s.tsc.SetLevel(level)
	s.tsc.Accrue(dtMs)
}

//gemini:hotpath
func (s *sampler) recordWindow(latMs float64) {
	// The window-percentile buffer reuses its backing array across samples
	// (reset via s.window = s.window[:0] at each boundary): amortized append,
	// same contract as the event queue.
	s.window = append(s.window, latMs)
}

//gemini:hotpath
func (s *sampler) resetWindow() {
	s.window = s.window[:0]
}
