// Package fixture exercises the timertag analyzer inside the reserved
// namespace owner (the synthetic import path sits under internal/sim):
// in-package value collisions, literal negative tags at SetTimer call sites,
// and raw-literal tag comparisons.
package fixture

// The reserved engine timers: declaring them here is legal — this package
// owns the negative namespace.
const (
	CapTimerTag    int64 = -1
	SampleTimerTag int64 = -2
)

// DrainTimerTag collides with CapTimerTag's value.
const DrainTimerTag int64 = -1 // want "timer tag DrainTimerTag = -1 collides with CapTimerTag"

// PollTimerTag is caller-space (non-negative): no reservation rules apply.
const PollTimerTag int64 = 7

type engine struct{ timers []int64 }

func (e *engine) SetTimer(atMs float64, tag int64) { e.timers = append(e.timers, tag) }

func (e *engine) schedule() {
	e.SetTimer(1.0, CapTimerTag) // named reserved constant: the sanctioned shape
	e.SetTimer(2.0, PollTimerTag)
	e.SetTimer(3.0, 42)   // positive literals are caller business
	e.SetTimer(4.0, -9)   // want "literal negative timer tag -9 passed to SetTimer"
	e.SetTimer(5.0, -(2)) // want "literal negative timer tag -2 passed to SetTimer"
}

func (e *engine) dispatch(tag int64) string {
	if tag == CapTimerTag {
		return "cap"
	}
	if tag == -2 { // want "tag compared against raw literal -2"
		return "sample"
	}
	switch {
	case tag != -1: // want "tag compared against raw literal -1"
		return "user"
	}
	return "unknown"
}

// freqSentinel must stay out of scope: -1 here is a frequency-level
// sentinel, not a timer tag, and the expression is not tag-named.
func freqSentinel(freqLevel int) bool { return freqLevel == -1 }
