// rng.go is the one non-test file in internal/sim allowed to construct raw
// rand sources — it is where PartitionedRNG derives its subsystem streams.
// The rawsource ban exempts it by basename, so nothing here wants a
// diagnostic.
package fixture

import "math/rand"

func streamFor(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
