// Fixture for the nodeterminism analyzer. Checked under the synthetic
// import path fixture/internal/sim so the deterministic-package gate fires.
package fixture

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() float64 {
	t0 := time.Now()          // want `time\.Now reads the wall clock`
	elapsed := time.Since(t0) // want `time\.Since reads the wall clock`
	return elapsed.Seconds()
}

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn draws from the process-wide source`
}

func seededRand(seed int64) int {
	// Raw source construction is reserved to rng.go inside internal/sim;
	// methods on the returned *rand.Rand stay fine either way.
	r := rand.New(rand.NewSource(seed)) // want `raw math/rand\.NewSource in internal/sim`
	return r.Intn(10)
}

func allowedRawSource(seed int64) int {
	//gemini:allow rawsource -- fixture: explicitly suppressed legacy shim
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func printUnsorted(m map[string]int) {
	for k := range m { // want `map iteration order is nondeterministic`
		fmt.Println(k)
	}
}

func appendUnsorted(m map[string]float64) []string {
	var out []string
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

func collectThenSort(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // fine: sorted below before any output
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sumOnly(m map[string]int) int {
	var total int
	for _, v := range m { // fine: integer addition commutes, no ordered sink
		total += v
	}
	return total
}

func allowedPrint(m map[string]int) {
	//gemini:allow maprange -- debug dump, order is irrelevant
	for k, v := range m {
		fmt.Println(k, v)
	}
}
