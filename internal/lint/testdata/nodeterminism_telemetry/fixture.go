// Fixture proving internal/telemetry is inside the nodeterminism contract:
// the SLO trackers and samplers take every timestamp as an explicit nowMs
// argument, so a wall-clock read here would smuggle real time into the
// byte-identical serial-vs-parallel exports. Checked under import path
// fixture/internal/telemetry.
package fixture

import (
	"math/rand"
	"time"
)

type tracker struct {
	good, bad uint64
}

func (t *tracker) observe(nowMs, latencyMs, deadlineMs float64) {
	if latencyMs <= deadlineMs {
		t.good++
	} else {
		t.bad++
	}
	_ = nowMs // the sanctioned shape: time arrives as a parameter
}

func (t *tracker) observeWallClock(latencyMs, deadlineMs float64) {
	now := time.Now() // want `time\.Now reads the wall clock`
	t.observe(float64(now.UnixNano())/1e6, latencyMs, deadlineMs)
}

func (t *tracker) ageMs(start time.Time) float64 {
	return float64(time.Since(start)) / 1e6 // want `time\.Since reads the wall clock`
}

func jitteredSample() float64 {
	return rand.Float64() // want `global math/rand\.Float64 draws from the process-wide source`
}
