// Package fixture exercises the locksafety analyzer: mutexes held across
// blocking operations, returns with a lock held, and mixed atomic/mutex
// field access. The synthetic import path places it under internal/server,
// inside the analyzer's scope.
package fixture

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

type registry struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	vals    map[string]float64
	hits    int64 // atomically updated in hot path, see addHit
	pending int
	updates chan string
}

// --- lockblocking: blocking operations inside a held region ---

func (r *registry) publish(v string) {
	r.mu.Lock()
	r.updates <- v // want "channel send while holding r.mu"
	r.mu.Unlock()
}

func (r *registry) await() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return <-r.updates // want "channel receive while holding r.mu"
}

func (r *registry) serveSnapshot(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	fmt.Fprintf(w, "pending=%d\n", r.pending) // want "passing the http.ResponseWriter to fmt.Fprintf while holding r.mu"
	r.mu.Unlock()
}

func (r *registry) serveJSON(w http.ResponseWriter, req *http.Request) {
	r.rw.RLock()
	err := json.NewEncoder(w).Encode(r.vals) // want "passing the http.ResponseWriter to json.NewEncoder while holding r.rw"
	r.rw.RUnlock()
	_ = err
}

func (r *registry) forward(conn net.Conn, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := conn.Write(payload) // want "net.Conn.Write .client-paced I/O. while holding r.mu"
	return err
}

func (r *registry) refresh(url string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := http.Get(url) // want "net/http.Get call while holding r.mu"
	return err
}

func (r *registry) throttle() {
	r.mu.Lock()
	time.Sleep(10 * time.Millisecond) // want "time.Sleep while holding r.mu"
	r.mu.Unlock()
}

// tryPublish is clean: a select with a default never blocks.
func (r *registry) tryPublish(v string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case r.updates <- v:
	default:
	}
}

// snapshotThenWrite is the sanctioned handler shape: copy under the lock,
// serialize after releasing it.
func (r *registry) snapshotThenWrite(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	out := make(map[string]float64, len(r.vals))
	for k, v := range r.vals {
		out[k] = v
	}
	r.mu.Unlock()
	if err := json.NewEncoder(w).Encode(out); err != nil {
		return
	}
}

// publishUnlocked blocks only after the critical section ends.
func (r *registry) publishUnlocked(v string) {
	r.mu.Lock()
	r.pending++
	r.mu.Unlock()
	r.updates <- v
}

// allowedSend carries a reviewed suppression and stays silent.
func (r *registry) allowedSend(v string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	//gemini:allow lockblocking -- buffered handoff channel sized to the worker pool, cannot block in practice
	r.updates <- v
}

// --- lockreturn: leaving a function with the mutex still held ---

func (r *registry) get(k string) (float64, bool) {
	r.mu.Lock()
	v, ok := r.vals[k]
	if !ok {
		return 0, false // want "return with r.mu still held"
	}
	r.mu.Unlock()
	return v, true
}

// getDeferred is the fixed shape: defer covers every return path.
func (r *registry) getDeferred(k string) (float64, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vals[k]
	return v, ok
}

// earlyReturnBeforeLock is clean: the return precedes the acquire.
func (r *registry) earlyReturnBeforeLock(k string) bool {
	if k == "" {
		return false
	}
	r.mu.Lock()
	r.vals[k] = 0
	r.mu.Unlock()
	return true
}

// --- atomicmix: one field under two synchronization disciplines ---

// addHit is the atomic side.
func (r *registry) addHit() {
	atomic.AddInt64(&r.hits, 1)
}

// resetHits touches the same field as a plain write under the mutex: the
// mutex does not order addHit's increments.
func (r *registry) resetHits() {
	r.mu.Lock()
	r.hits = 0 // want "field hits is read/written under mutex r.mu"
	r.mu.Unlock()
}

// pendingUnderLock is clean: pending is only ever mutex-guarded.
func (r *registry) pendingUnderLock() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending
}
