package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"

	"gemini/internal/lint/analysis"
)

// NoDeterminism forbids nondeterminism sources in the packages behind the
// byte-identical serial-vs-parallel report contract (internal/sim,
// internal/policy, internal/harness, internal/telemetry — the SLO trackers
// and samplers take every timestamp explicitly, so wall clocks stay confined
// to cmd/ and internal/server): wall-clock reads (time.Now/Since/
// Until), the global math/rand source (seeded per-process, order-dependent
// under parallel runs), and map iteration that feeds order-sensitive output.
// Seeded rand.New(rand.NewSource(...)) generators remain the determinism
// idiom in policy and harness code — but inside internal/sim itself raw
// source construction is banned outside rng.go: every sim stream must come
// from PartitionedRNG so subsystems (workload, routing, sched) stay
// draw-isolated (a raw source reintroduces the shared-stream coupling the
// partition exists to prevent).
var NoDeterminism = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc: "forbid time.Now, global math/rand, map-range-ordered output, and " +
		"raw rand sources outside internal/sim's rng.go in the deterministic " +
		"simulation packages",
	Run: runNoDeterminism,
}

// deterministicPkgs are the import-path fragments under the contract.
var deterministicPkgs = []string{
	"internal/sim",
	"internal/policy",
	"internal/harness",
	"internal/telemetry",
}

// bannedClock are wall-clock reads in package time.
var bannedClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// bannedGlobalRand are the math/rand (and v2) top-level functions that draw
// from the process-global source.
var bannedGlobalRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

// bannedRawSource are the raw generator constructors (v1 and v2) banned
// inside internal/sim outside rng.go.
var bannedRawSource = map[string]bool{
	"NewSource": true,
	// math/rand/v2 source constructors.
	"NewPCG": true, "NewChaCha8": true,
}

func isDeterministicPkg(path string) bool {
	path = pkgPathBase(path)
	for _, frag := range deterministicPkgs {
		if matchesPkgFrag(path, frag) {
			return true
		}
	}
	return false
}

// isSimPkg gates the rawsource ban to internal/sim proper — policy and
// harness keep the plain seeded-generator idiom.
func isSimPkg(path string) bool {
	return matchesPkgFrag(pkgPathBase(path), "internal/sim")
}

func matchesPkgFrag(path, frag string) bool {
	return path == frag || strings.HasSuffix(path, "/"+frag) || strings.Contains(path, "/"+frag+"/")
}

func runNoDeterminism(pass *analysis.Pass) error {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return nil
	}
	allow := buildAllowIndex(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				checkDeterminismUse(pass, n.Sel, allow)
			case *ast.RangeStmt:
				checkMapRange(pass, n, allow)
			}
			return true
		})
	}
	return nil
}

// checkDeterminismUse reports id if it resolves to a banned function.
func checkDeterminismUse(pass *analysis.Pass, id *ast.Ident, allow allowIndex) {
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if pass.InTestFile(id.Pos()) {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedClock[fn.Name()] && !allow.allows(pass, id.Pos(), "walltime") {
			pass.Reportf(id.Pos(),
				"time.%s reads the wall clock: deterministic packages must take time from the simulator (sim.Now)",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Only top-level functions use the global source; methods on
		// *rand.Rand carry an explicit seeded source and are fine.
		if fn.Type().(*types.Signature).Recv() == nil && bannedGlobalRand[fn.Name()] &&
			!allow.allows(pass, id.Pos(), "globalrand") {
			pass.Reportf(id.Pos(),
				"global %s.%s draws from the process-wide source: use rand.New(rand.NewSource(seed))",
				fn.Pkg().Path(), fn.Name())
		}
		// Inside internal/sim, raw source construction is reserved to rng.go:
		// everything else must take its stream from PartitionedRNG so the
		// workload/routing/sched subsystems stay draw-isolated.
		if fn.Type().(*types.Signature).Recv() == nil && bannedRawSource[fn.Name()] &&
			isSimPkg(pass.Pkg.Path()) &&
			filepath.Base(pass.Position(id.Pos()).Filename) != "rng.go" &&
			!allow.allows(pass, id.Pos(), "rawsource") {
			pass.Reportf(id.Pos(),
				"raw %s.%s in internal/sim: take a stream from PartitionedRNG (rng.go) so subsystem draws stay isolated",
				fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkMapRange reports range-over-map loops whose body feeds
// order-sensitive sinks (appends, formatted output, writers, channel sends):
// Go's map iteration order is randomized, so any such loop breaks the
// byte-identical report contract unless the keys are sorted first.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, allow allowIndex) {
	if pass.InTestFile(rng.Pos()) {
		return
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if allow.allows(pass, rng.Pos(), "maprange") {
		return
	}
	// The collect-then-sort idiom is the sanctioned fix: if the enclosing
	// function sorts after the loop, the append inside it is the first half
	// of that idiom, not a leak of map order.
	if sortCallAfter(pass, rng) {
		return
	}
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			sink = "channel send"
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
						sink = "append"
					}
				}
			case *ast.SelectorExpr:
				if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
					if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
						sink = "fmt." + obj.Name()
					} else if strings.HasPrefix(obj.Name(), "Write") {
						sink = obj.Name()
					}
				}
			}
		}
		return sink == ""
	})
	if sink != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order is nondeterministic but the loop body emits ordered output (%s): sort the keys first",
			sink)
	}
}

// sortCallAfter reports whether the function enclosing rng calls into
// package sort or slices at a position after the range loop ends.
func sortCallAfter(pass *analysis.Pass, rng *ast.RangeStmt) bool {
	var enclosing *ast.FuncDecl
	for _, f := range pass.Files {
		if f.Pos() <= rng.Pos() && rng.Pos() <= f.End() {
			enclosing = analysis.FuncForPos(f, rng.Pos())
			break
		}
	}
	if enclosing == nil {
		return false
	}
	found := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rng.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sort", "slices":
					found = true
				}
			}
		}
		return !found
	})
	return found
}
