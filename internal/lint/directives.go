// Package lint hosts the geminivet analyzer suite: domain-specific static
// checks enforcing the repository's headline invariants — deterministic
// simulation (byte-identical serial-vs-parallel reports), zero-allocation
// hot paths when telemetry is disabled, unit-suffix and float-comparison
// hygiene, DVFS plans built only from validated frequency levels, lock
// discipline on the live serving path, Prometheus metric naming conventions,
// and the reserved-timer-tag namespace of the event engines.
//
// Directives recognized in source comments:
//
//	//gemini:hotpath
//	    On a function's doc comment: the function is part of the
//	    per-request fast path and is policed by the hotpath analyzer.
//	//gemini:allow <check> -- <reason>
//	    On (or immediately above) an offending line: suppress the named
//	    check there. The reason is mandatory by convention and enforced in
//	    review; a suppression that no longer suppresses anything is itself
//	    reported by the suite's stale-allow audit (RunPackage).
package lint

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"

	"gemini/internal/lint/analysis"
)

// HotpathDirective marks a function as allocation-policed.
const HotpathDirective = "//gemini:hotpath"

// allowPrefix introduces a per-line suppression.
const allowPrefix = "//gemini:allow "

// hasDirective reports whether the comment group carries the exact directive
// (directives are whole-line comments with no leading space, per Go
// convention, and survive in Doc.List even though doc.Text strips them).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// ParseAllowDirective decomposes one comment's text into a suppression:
// `//gemini:allow <check> -- <reason>`. ok is false when the comment is not
// an allow directive at all; a directive with an empty check name is not a
// directive. The reason may be empty (the stale audit flags that separately).
func ParseAllowDirective(text string) (check, reason string, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(text), strings.TrimSpace(allowPrefix))
	if !found {
		return "", "", false
	}
	// The directive word must end exactly at the prefix: "//gemini:allowx"
	// is some other comment, not a malformed directive.
	if rest == "" || !unicode.IsSpace(rune(rest[0])) {
		return "", "", false
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return "", "", false
	}
	check = rest
	if i := strings.IndexFunc(rest, unicode.IsSpace); i >= 0 {
		check = rest[:i]
		rest = strings.TrimSpace(rest[i:])
		if r, found := strings.CutPrefix(rest, "--"); found {
			reason = strings.TrimSpace(r)
		}
	}
	return check, reason, true
}

// allowEntry is one //gemini:allow suppression with its consumption state.
type allowEntry struct {
	check  string
	reason string
	pos    token.Pos
	end    token.Pos
	used   bool
}

// allowIndex records //gemini:allow suppressions by file and line.
type allowIndex map[string]map[int][]*allowEntry

// buildAllowIndex scans every comment of the pass. When the pass carries a
// suite-shared tracker (RunPackage), all analyzers of the package consume
// from that one index, so the stale audit sees every hit.
func buildAllowIndex(pass *analysis.Pass) allowIndex {
	if shared, ok := pass.SuiteAllow.(allowIndex); ok && shared != nil {
		return shared
	}
	return scanAllows(pass.Fset, pass.Files)
}

// scanAllows builds a fresh allow index over files.
func scanAllows(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := make(allowIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, reason, ok := ParseAllowDirective(c.Text)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				m := idx[p.Filename]
				if m == nil {
					m = make(map[int][]*allowEntry)
					idx[p.Filename] = m
				}
				m[p.Line] = append(m[p.Line], &allowEntry{
					check: check, reason: reason, pos: c.Pos(), end: c.End(),
				})
			}
		}
	}
	return idx
}

// allows reports whether a suppression for check covers pos: an allow
// comment on the same line or on the line directly above. A match marks the
// entry consumed for the stale audit.
func (idx allowIndex) allows(pass *analysis.Pass, pos token.Pos, check string) bool {
	p := pass.Position(pos)
	m := idx[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, e := range m[line] {
			if e.check == check {
				e.used = true
				return true
			}
		}
	}
	return false
}

// checkOwner maps every //gemini:allow check name to the analyzer whose
// diagnostics it suppresses. The stale audit only judges an allow when its
// owning analyzer actually ran, so a subset run never misreports.
var checkOwner = map[string]string{
	"walltime":   "nodeterminism",
	"globalrand": "nodeterminism",
	"maprange":   "nodeterminism",
	"rawsource":  "nodeterminism",

	"hotpath": "hotpath",

	"floatcmp": "unitsafety",
	"units":    "unitsafety",

	"freqliteral": "freqdomain",

	"lockblocking": "locksafety",
	"lockreturn":   "locksafety",
	"atomicmix":    "locksafety",

	"metricname":  "metricsconv",
	"metricunit":  "metricsconv",
	"metrichelp":  "metricsconv",
	"metriclabel": "metricsconv",

	"timertag": "timertag",
}

// All returns the full geminivet suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoDeterminism, Hotpath, UnitSafety, FreqDomain,
		LockSafety, MetricsConv, TimerTag,
	}
}

// ByName resolves one analyzer (driver flag handling).
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// pkgPathBase strips the unit-test variant decoration go vet appends to
// ImportPath ("pkg [pkg.test]") so path gating matches both modes.
func pkgPathBase(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
