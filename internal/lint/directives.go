// Package lint hosts the geminivet analyzer suite: domain-specific static
// checks enforcing the repository's headline invariants — deterministic
// simulation (byte-identical serial-vs-parallel reports), zero-allocation
// hot paths when telemetry is disabled, unit-suffix and float-comparison
// hygiene, and DVFS plans built only from validated frequency levels.
//
// Directives recognized in source comments:
//
//	//gemini:hotpath
//	    On a function's doc comment: the function is part of the
//	    per-request fast path and is policed by the hotpath analyzer.
//	//gemini:allow <check> -- <reason>
//	    On (or immediately above) an offending line: suppress the named
//	    check (floatcmp, units, maprange, freqliteral, hotpath) there.
//	    The reason is mandatory by convention and enforced in review.
package lint

import (
	"go/ast"
	"go/token"
	"strings"

	"gemini/internal/lint/analysis"
)

// HotpathDirective marks a function as allocation-policed.
const HotpathDirective = "//gemini:hotpath"

// allowPrefix introduces a per-line suppression.
const allowPrefix = "//gemini:allow "

// hasDirective reports whether the comment group carries the exact directive
// (directives are whole-line comments with no leading space, per Go
// convention, and survive in Doc.List even though doc.Text strips them).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// allowIndex records //gemini:allow suppressions by file and line.
type allowIndex map[string]map[int][]string

// buildAllowIndex scans every comment of the pass.
func buildAllowIndex(pass *analysis.Pass) allowIndex {
	idx := make(allowIndex)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				rest, ok := strings.CutPrefix(text, strings.TrimSpace(allowPrefix))
				if !ok {
					continue
				}
				rest = strings.TrimSpace(rest)
				key := rest
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					key = rest[:i]
				}
				p := pass.Position(c.Pos())
				m := idx[p.Filename]
				if m == nil {
					m = make(map[int][]string)
					idx[p.Filename] = m
				}
				m[p.Line] = append(m[p.Line], key)
			}
		}
	}
	return idx
}

// allows reports whether a suppression for check covers pos: an allow
// comment on the same line or on the line directly above.
func (idx allowIndex) allows(pass *analysis.Pass, pos token.Pos, check string) bool {
	p := pass.Position(pos)
	m := idx[p.Filename]
	if m == nil {
		return false
	}
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, key := range m[line] {
			if key == check {
				return true
			}
		}
	}
	return false
}

// All returns the full geminivet suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{NoDeterminism, Hotpath, UnitSafety, FreqDomain}
}

// ByName resolves one analyzer (driver flag handling).
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// pkgPathBase strips the unit-test variant decoration go vet appends to
// ImportPath ("pkg [pkg.test]") so path gating matches both modes.
func pkgPathBase(path string) string {
	if i := strings.IndexByte(path, ' '); i >= 0 {
		return path[:i]
	}
	return path
}
