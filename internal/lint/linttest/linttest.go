// Package linttest runs lint analyzers over fixture source and checks their
// diagnostics against `// want "regexp"` expectations, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the stdlib-only
// analysis framework in this module.
//
// A fixture directory holds one package of .go files. Each line that should
// trigger a diagnostic ends with `// want "re"`; the regexp must match the
// diagnostic message reported on that line. Multiple expectations on one
// line are space-separated quoted regexps. Diagnostics with no matching
// expectation, and expectations with no matching diagnostic, both fail the
// test.
//
// Analyzers run through lint.RunPackage, so fixtures also exercise the
// suite-level machinery: //gemini:allow suppressions are tracked across the
// whole analyzer set and the stale-suppression audit reports (as analyzer
// "staleallow") just like in CI.
//
// Suggested fixes are golden-file tested: when a fixture file fixture.go has
// a sibling fixture.go.golden, the first suggested fix of every diagnostic
// is applied with analysis.ApplyFixes and the result must match the golden
// bytes exactly (the same transformation `geminivet -fix` performs).
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"gemini/internal/lint"
	"gemini/internal/lint/analysis"
	"gemini/internal/lint/load"
)

// wantRe pulls the quoted regexps out of a // want comment: double-quoted
// or backquoted, matching analysistest.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

// Run loads the fixture package rooted at dir, applies the analyzers as one
// suite (shared allow tracking, stale-suppression audit), and reports
// mismatches through t. The fixture is type-checked against the real module
// (fixtures may import gemini/internal/cpu etc.), under a synthetic import
// path chosen to exercise the analyzer's package gating.
func Run(t *testing.T, loader *load.Loader, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	RunFacts(t, loader, nil, dir, importPath, analyzers...)
}

// RunFacts is Run with a caller-supplied fact store, letting a test thread
// facts between fixture packages the way a module-wide run does (seed the
// store, run package A, then package B sees A's facts).
func RunFacts(t *testing.T, loader *load.Loader, facts *analysis.FactStore, dir, importPath string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkg, files := loadFixture(t, loader, dir, importPath)
	expects := parseExpectations(t, files)

	var diags []analysis.Diagnostic
	err := lint.RunPackage(lint.SuitePackage{
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.TypesInfo,
	}, analyzers, facts, func(d analysis.Diagnostic) { diags = append(diags, d) })
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		matched := false
		for _, e := range expects {
			if !e.hit && e.file == p.Filename && e.line == p.Line && e.re.MatchString(d.Message) {
				e.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic from %s: %s", p.Filename, p.Line, d.Analyzer, d.Message)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}

	checkGolden(t, pkg, files, diags)
}

// loadFixture reads and type-checks the fixture package in dir.
func loadFixture(t *testing.T, loader *load.Loader, dir, importPath string) (*load.Package, []string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("linttest: no fixture files in %s", dir)
	}
	pkg, err := loader.CheckFiles(importPath, dir, files)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return pkg, files
}

// checkGolden compares fix application against <file>.golden siblings. A
// golden file is mandatory proof: if it exists, applying the diagnostics'
// first fixes to the fixture must reproduce it byte-for-byte; if fixes edit
// a file that has no golden sibling, the test fails so fixes never go
// unasserted.
func checkGolden(t *testing.T, pkg *load.Package, files []string, diags []analysis.Diagnostic) {
	t.Helper()
	for _, fn := range files {
		golden := fn + ".golden"
		goldenBytes, goldenErr := os.ReadFile(golden)
		hasGolden := goldenErr == nil

		src, err := os.ReadFile(fn)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		fixed, applied, err := analysis.ApplyFixes(pkg.Fset, fn, src, diags)
		if err != nil {
			t.Errorf("linttest: applying fixes to %s: %v", fn, err)
			continue
		}
		switch {
		case applied > 0 && !hasGolden:
			t.Errorf("linttest: %d fix(es) edit %s but no golden file %s exists — add one asserting the -fix output", applied, fn, filepath.Base(golden))
		case hasGolden && string(fixed) != string(goldenBytes):
			t.Errorf("linttest: fixes applied to %s do not match %s:\n--- got ---\n%s\n--- want ---\n%s",
				fn, filepath.Base(golden), fixed, goldenBytes)
		}
	}
}

// parseExpectations scans the fixture files for // want comments.
func parseExpectations(t *testing.T, files []string) []*expectation {
	t.Helper()
	var out []*expectation
	for _, fn := range files {
		data, err := os.ReadFile(fn)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			spec := line[idx+len("// want "):]
			ms := wantRe.FindAllStringSubmatch(spec, -1)
			if len(ms) == 0 {
				t.Fatalf("%s:%d: malformed want comment: %s", fn, i+1, spec)
			}
			for _, m := range ms {
				pat := m[1]
				if m[2] != "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", fn, i+1, pat, err)
				}
				out = append(out, &expectation{file: fn, line: i + 1, re: re, raw: pat})
			}
		}
	}
	return out
}

// MustLoader builds a loader for the enclosing module, failing the test on
// error. It resolves the module root from the test's working directory.
func MustLoader(t *testing.T) *load.Loader {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := load.FindModuleRoot(wd)
	if err != nil {
		t.Fatal(err)
	}
	l, err := load.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// Fixture returns the absolute path of a testdata fixture directory relative
// to the test's working directory.
func Fixture(t *testing.T, elems ...string) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(append([]string{wd, "testdata"}, elems...)...)
	if _, err := os.Stat(p); err != nil {
		t.Fatalf("linttest: fixture missing: %v", err)
	}
	return p
}
