// Package load type-checks this module's packages from source using only the
// standard library, so the geminivet analyzers can run without
// golang.org/x/tools/go/packages (unavailable in the offline build image).
//
// Standard-library imports resolve through go/importer's source importer
// (compiling GOROOT/src on demand); module-internal imports resolve
// recursively through this loader, sharing one token.FileSet and one package
// identity per import path so types compare correctly across packages.
package load

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

func init() {
	// The source importer honors go/build's default context. With cgo
	// enabled it would try to preprocess std cgo files (net, os/user) with a
	// C toolchain; every such package has a pure-Go fallback, so force it.
	build.Default.CgoEnabled = false
}

// Package is one loaded, type-checked package.
type Package struct {
	Dir        string
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
}

// Loader loads and memoizes the module's packages.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset *token.FileSet
	std  types.ImporterFrom

	mu   sync.Mutex
	pkgs map[string]*Package // by import path
	// loading guards against import cycles (invalid Go, but fail cleanly).
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at root (a directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("load: source importer is not an ImporterFrom")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory with a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(strings.Trim(strings.TrimSpace(rest), `"`)), nil
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// DirFor maps a module import path to its directory.
func (l *Loader) DirFor(importPath string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, l.ModulePath), "/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// ImportPathFor maps a directory inside the module to its import path.
func (l *Loader) ImportPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModuleRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("load: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// ListPackages returns the import paths of every package in the module, in
// sorted order (the ./... set). testdata, hidden, and vendor-style
// directories are skipped, matching the go tool's pattern expansion.
func (l *Loader) ListPackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				ip, err := l.ImportPathFor(path)
				if err != nil {
					return err
				}
				out = append(out, ip)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// Load type-checks the package at the given module import path (memoized).
// Test files are excluded: the analyzers only police production code.
func (l *Loader) Load(importPath string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.load(importPath)
}

// LoadDir loads the package in dir (which must be inside the module).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	ip, err := l.ImportPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.Load(ip)
}

func (l *Loader) load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("load: import cycle through %s", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir := l.DirFor(importPath)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, "_") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, filepath.Join(dir, n))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}
	p, err := l.check(importPath, dir, names)
	if err != nil {
		return nil, err
	}
	l.pkgs[importPath] = p
	return p, nil
}

// CheckFiles type-checks an explicit file list under a synthetic import path
// (the linttest fixture entry point). The result is not memoized and does not
// shadow real module packages.
func (l *Loader) CheckFiles(importPath, dir string, filenames []string) (*Package, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.check(importPath, dir, filenames)
}

func (l *Loader) check(importPath, dir string, filenames []string) (*Package, error) {
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: importerFunc(func(path, srcDir string) (*types.Package, error) {
			return l.importPkg(path, srcDir)
		}),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
		Sizes: types.SizesFor("gc", build.Default.GOARCH),
	}
	pkg, err := conf.Check(importPath, l.fset, files, info)
	if firstErr != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", importPath, firstErr)
	}
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", importPath, err)
	}
	return &Package{Dir: dir, ImportPath: importPath, Fset: l.fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// importPkg resolves one import: module-internal paths load from source via
// this loader; everything else (the standard library) goes through the
// source importer.
func (l *Loader) importPkg(path, srcDir string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Pkg, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// importerFunc adapts a function to types.ImporterFrom.
type importerFunc func(path, srcDir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) {
	return f(path, "")
}

func (f importerFunc) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	return f(path, srcDir)
}
