package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// fileEdit is one TextEdit resolved to byte offsets within a single file.
type fileEdit struct {
	start, end int
	newText    []byte
}

// fixesForFile collects, from the first suggested fix of each diagnostic,
// every text edit that lands in file, resolved to byte offsets against fset.
// Edits outside file (a fix spanning files is invalid by construction) are
// rejected.
func fixesForFile(fset *token.FileSet, file string, diags []Diagnostic) ([]fileEdit, error) {
	var edits []fileEdit
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		fix := d.SuggestedFixes[0]
		for _, e := range fix.TextEdits {
			p := fset.Position(e.Pos)
			if p.Filename != file {
				continue
			}
			end := e.End
			if !end.IsValid() {
				end = e.Pos
			}
			pe := fset.Position(end)
			if pe.Filename != file {
				return nil, fmt.Errorf("analysis: fix %q spans files (%s..%s)", fix.Message, p.Filename, pe.Filename)
			}
			if pe.Offset < p.Offset {
				return nil, fmt.Errorf("analysis: fix %q has inverted edit range at %s", fix.Message, p)
			}
			edits = append(edits, fileEdit{start: p.Offset, end: pe.Offset, newText: e.NewText})
		}
	}
	return edits, nil
}

// ApplyFixes rewrites src (the contents of file) with the first suggested
// fix of every diagnostic that edits it, returning the new bytes and the
// number of edits applied. Overlapping edits are an error — geminivet fixes
// are all local single-token rewrites, so an overlap means two analyzers
// disagree and a human must pick.
func ApplyFixes(fset *token.FileSet, file string, src []byte, diags []Diagnostic) ([]byte, int, error) {
	edits, err := fixesForFile(fset, file, diags)
	if err != nil {
		return nil, 0, err
	}
	if len(edits) == 0 {
		return src, 0, nil
	}
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].start != edits[j].start {
			return edits[i].start < edits[j].start
		}
		return edits[i].end < edits[j].end
	})
	for i := 1; i < len(edits); i++ {
		if edits[i].start < edits[i-1].end {
			return nil, 0, fmt.Errorf("analysis: overlapping fixes in %s at offsets %d and %d",
				file, edits[i-1].start, edits[i].start)
		}
	}
	out := make([]byte, 0, len(src)+64)
	last := 0
	for _, e := range edits {
		if e.start > len(src) || e.end > len(src) {
			return nil, 0, fmt.Errorf("analysis: fix offset %d past end of %s (%d bytes)", e.end, file, len(src))
		}
		out = append(out, src[last:e.start]...)
		out = append(out, e.newText...)
		last = e.end
	}
	out = append(out, src[last:]...)
	return out, len(edits), nil
}
