// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic,
// SuggestedFix, package facts), just large enough to host the geminivet
// analyzer suite. The container this repo builds in has no module proxy
// access, so the real x/tools framework cannot be vendored; the API mirrors
// it closely enough that swapping the import path is a mechanical change if
// x/tools ever becomes available.
//
// Supported beyond the PR 5 seed: suggested fixes (TextEdit/SuggestedFix on
// Diagnostic, applied by ApplyFixes and `geminivet -fix`) and cross-package
// package facts (FactStore, carried between go vet invocations through the
// vetx files of the vettool protocol). Still unsupported: object facts and
// sub-analyzer requirements — the geminivet analyzers need neither.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// TextEdit is one replacement of the source interval [Pos, End) with
// NewText. Pos == End inserts; empty NewText deletes.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// SuggestedFix is one self-contained rewrite that resolves a diagnostic.
// Edits must not overlap and must all lie in the diagnostic's file.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// Diagnostic is one reported problem. End, when set, closes the source
// interval the finding covers (renderers fall back to Pos alone otherwise).
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Message  string
	Analyzer string
	// SuggestedFixes are machine-applicable rewrites; geminivet -fix applies
	// the first fix of each diagnostic.
	SuggestedFixes []SuggestedFix
}

// Pass carries one package's parsed and type-checked view to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic as it is found.
	Report func(Diagnostic)

	// Facts, when non-nil, is the run-wide package-fact store: analyzers
	// export facts about the package under analysis and import the facts of
	// packages analyzed earlier (standalone mode) or of the package's
	// dependencies (vet-tool mode, decoded from their vetx files).
	Facts *FactStore

	// SuiteAllow, when non-nil, is the suite-shared //gemini:allow tracker
	// (managed by the lint package): all analyzers of one package run consume
	// from one index so the stale-suppression audit can see which allows
	// never fired. Nil when an analyzer runs in isolation.
	SuiteAllow any
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// ReportRangef reports a formatted diagnostic covering [pos, end).
func (p *Pass) ReportRangef(pos, end token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, End: end, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// InTestFile reports whether pos lies in a _test.go file. The geminivet
// analyzers enforce production-path invariants; tests may freely use wall
// clocks, literal frequencies, and exact float comparisons against
// deterministic outputs.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// FuncForPos returns the innermost function declaration enclosing pos in
// file, or nil.
func FuncForPos(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}

// FactStore holds per-package, per-analyzer facts as JSON so they can cross
// process boundaries through the vet protocol's vetx files. All methods are
// safe for concurrent use.
type FactStore struct {
	mu sync.Mutex
	m  map[string]map[string]json.RawMessage // pkg path -> analyzer -> fact
}

// NewFactStore creates an empty store.
func NewFactStore() *FactStore {
	return &FactStore{m: make(map[string]map[string]json.RawMessage)}
}

// Export records the analyzer's fact about pkgPath, replacing any previous
// one.
func (s *FactStore) Export(pkgPath, analyzer string, fact any) error {
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("analysis: encoding %s fact for %s: %w", analyzer, pkgPath, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.m[pkgPath] == nil {
		s.m[pkgPath] = make(map[string]json.RawMessage)
	}
	s.m[pkgPath][analyzer] = data
	return nil
}

// Import decodes the analyzer's fact about pkgPath into fact, reporting
// whether one was present.
func (s *FactStore) Import(pkgPath, analyzer string, fact any) bool {
	s.mu.Lock()
	data, ok := s.m[pkgPath][analyzer]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(data, fact) == nil
}

// Packages returns, sorted, the paths of every package holding a fact from
// the named analyzer.
func (s *FactStore) Packages(analyzer string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for path, facts := range s.m {
		if _, ok := facts[analyzer]; ok {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// EncodePackage renders one package's facts as the JSON payload written to
// that package's vetx file ({} when the package exported nothing).
func (s *FactStore) EncodePackage(pkgPath string) ([]byte, error) {
	s.mu.Lock()
	facts := s.m[pkgPath]
	s.mu.Unlock()
	if facts == nil {
		return []byte("{}\n"), nil
	}
	data, err := json.Marshal(facts)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodePackage loads a vetx payload produced by EncodePackage as pkgPath's
// facts. Payloads that are not JSON objects (for instance vetx files written
// by older geminivet builds) are ignored without error: a missing fact only
// widens what the importing analyzer cannot see, which is the protocol's
// defined degradation.
func (s *FactStore) DecodePackage(pkgPath string, data []byte) {
	var facts map[string]json.RawMessage
	if err := json.Unmarshal(data, &facts); err != nil || facts == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[pkgPath] = facts
}
