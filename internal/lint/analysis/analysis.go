// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic),
// just large enough to host the geminivet analyzer suite. The container this
// repo builds in has no module proxy access, so the real x/tools framework
// cannot be vendored; the API mirrors it closely enough that swapping the
// import path is a mechanical change if x/tools ever becomes available.
//
// Unsupported x/tools features: facts (cross-package analyzer state),
// suggested fixes, and sub-analyzer requirements. The geminivet analyzers
// need none of them — cross-package hot-path annotations are resolved by a
// lightweight syntax-only scan instead of facts (see lint.SetModuleInfo).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flags. It must be a
	// valid Go identifier.
	Name string
	// Doc is the help text: first line is a one-line summary.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Pass carries one package's parsed and type-checked view to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report receives each diagnostic as it is found.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...), Analyzer: p.Analyzer.Name})
}

// Position resolves pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// InTestFile reports whether pos lies in a _test.go file. The geminivet
// analyzers enforce production-path invariants; tests may freely use wall
// clocks, literal frequencies, and exact float comparisons against
// deterministic outputs.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Inspect walks every file of the pass in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// FuncForPos returns the innermost function declaration enclosing pos in
// file, or nil.
func FuncForPos(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
			return fd
		}
	}
	return nil
}
