package lint_test

import (
	"fmt"
	"strings"
	"testing"

	"gemini/internal/lint"
	"gemini/internal/lint/analysis"
	"gemini/internal/lint/linttest"
	"gemini/internal/lint/load"
)

// loaderFor builds one module loader per test and points the hotpath
// analyzer's cross-package annotation oracle at the module.
func loaderFor(t *testing.T) *load.Loader {
	t.Helper()
	l := linttest.MustLoader(t)
	lint.SetModuleInfo(l.ModuleRoot, l.ModulePath)
	return l
}

func TestNoDeterminismFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism"),
		"fixture/internal/sim", lint.NoDeterminism)
}

func TestNoDeterminismRawSourceIsSimScoped(t *testing.T) {
	l := loaderFor(t)
	// Same deterministic-package gate, but not internal/sim: seeded
	// rand.New(rand.NewSource(...)) stays the sanctioned idiom there, so the
	// fixture has no want comments.
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism_harness"),
		"fixture/internal/harness", lint.NoDeterminism)
}

func TestNoDeterminismTelemetryInScope(t *testing.T) {
	l := loaderFor(t)
	// internal/telemetry joined the deterministic contract with the SLO
	// tracker: explicit-nowMs APIs in, wall clocks out.
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism_telemetry"),
		"fixture/internal/telemetry", lint.NoDeterminism)
}

func TestNoDeterminismExemptsLoadGenerator(t *testing.T) {
	l := loaderFor(t)
	// cmd/geminiload measures real latencies by design: wall clocks are the
	// point there, so the fixture has no want comments.
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism_cmdload"),
		"fixture/cmd/geminiload", lint.NoDeterminism)
}

func TestNoDeterminismIgnoresOtherPackages(t *testing.T) {
	l := loaderFor(t)
	// The fixture has wall-clock and global-rand uses but no want comments:
	// under a non-deterministic import path the analyzer must stay silent.
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism_otherpkg"),
		"fixture/server", lint.NoDeterminism)
}

func TestHotpathFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "hotpath"),
		"fixture/hotpath", lint.Hotpath)
}

func TestUnitSafetyFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "unitsafety"),
		"fixture/unitsafety", lint.UnitSafety)
}

func TestFreqDomainFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "freqdomain"),
		"fixture/freqdomain", lint.FreqDomain)
}

// TestRepoIsClean runs the full geminivet suite over every package of this
// module and requires zero diagnostics — the same bar CI enforces through
// go vet -vettool. A failure here names the offending lines directly.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	l := loaderFor(t)
	paths, err := l.ListPackages()
	if err != nil {
		t.Fatal(err)
	}
	var diags []string
	for _, ip := range paths {
		pkg, err := l.Load(ip)
		if err != nil {
			t.Fatalf("load %s: %v", ip, err)
		}
		for _, a := range lint.All() {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.TypesInfo,
				Report: func(d analysis.Diagnostic) {
					p := pkg.Fset.Position(d.Pos)
					diags = append(diags, fmt.Sprintf("%s:%d:%d: %s: %s",
						p.Filename, p.Line, p.Column, d.Analyzer, d.Message))
				},
			}
			if err := a.Run(pass); err != nil {
				t.Fatalf("%s on %s: %v", a.Name, ip, err)
			}
		}
	}
	if len(diags) > 0 {
		t.Errorf("geminivet found %d violation(s) in the repo:\n%s",
			len(diags), strings.Join(diags, "\n"))
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}
