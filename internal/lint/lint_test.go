package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gemini/internal/lint"
	"gemini/internal/lint/analysis"
	"gemini/internal/lint/linttest"
	"gemini/internal/lint/load"
)

// loaderFor builds one module loader per test and points the hotpath
// analyzer's cross-package annotation oracle at the module.
func loaderFor(t *testing.T) *load.Loader {
	t.Helper()
	l := linttest.MustLoader(t)
	lint.SetModuleInfo(l.ModuleRoot, l.ModulePath)
	return l
}

func TestNoDeterminismFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism"),
		"fixture/internal/sim", lint.NoDeterminism)
}

func TestNoDeterminismRawSourceIsSimScoped(t *testing.T) {
	l := loaderFor(t)
	// Same deterministic-package gate, but not internal/sim: seeded
	// rand.New(rand.NewSource(...)) stays the sanctioned idiom there, so the
	// fixture has no want comments.
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism_harness"),
		"fixture/internal/harness", lint.NoDeterminism)
}

func TestNoDeterminismTelemetryInScope(t *testing.T) {
	l := loaderFor(t)
	// internal/telemetry joined the deterministic contract with the SLO
	// tracker: explicit-nowMs APIs in, wall clocks out.
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism_telemetry"),
		"fixture/internal/telemetry", lint.NoDeterminism)
}

func TestNoDeterminismExemptsLoadGenerator(t *testing.T) {
	l := loaderFor(t)
	// cmd/geminiload measures real latencies by design: wall clocks are the
	// point there, so the fixture has no want comments.
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism_cmdload"),
		"fixture/cmd/geminiload", lint.NoDeterminism)
}

func TestNoDeterminismIgnoresOtherPackages(t *testing.T) {
	l := loaderFor(t)
	// The fixture has wall-clock and global-rand uses but no want comments:
	// under a non-deterministic import path the analyzer must stay silent.
	linttest.Run(t, l, linttest.Fixture(t, "nodeterminism_otherpkg"),
		"fixture/server", lint.NoDeterminism)
}

func TestHotpathFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "hotpath"),
		"fixture/hotpath", lint.Hotpath)
}

func TestUnitSafetyFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "unitsafety"),
		"fixture/unitsafety", lint.UnitSafety)
}

func TestFreqDomainFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "freqdomain"),
		"fixture/freqdomain", lint.FreqDomain)
}

func TestLockSafetyFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "locksafety"),
		"fixture/internal/server", lint.LockSafety)
}

func TestLockSafetyIgnoresOtherPackages(t *testing.T) {
	l := loaderFor(t)
	// Same source, but outside internal/server and internal/telemetry: the
	// lock contract binds only the live serving path, so every want comment
	// would go unmatched — run through a bare pass and require silence.
	pkg, err := l.CheckFiles("fixture/internal/sim",
		linttest.Fixture(t, "locksafety"), fixtureFiles(t, "locksafety"))
	if err != nil {
		t.Fatal(err)
	}
	var diags []analysis.Diagnostic
	err = lint.RunPackage(lint.SuitePackage{
		Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, TypesInfo: pkg.TypesInfo,
	}, []*analysis.Analyzer{lint.LockSafety}, nil,
		func(d analysis.Diagnostic) { diags = append(diags, d) })
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Analyzer == lint.StaleAllowName {
			continue // out-of-scope run leaves the fixture's allow unconsumed
		}
		t.Errorf("locksafety fired outside its package scope: %s", d.Message)
	}
}

func TestMetricsConvFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "metricsconv"),
		"fixture/server", lint.MetricsConv)
}

func TestTimerTagFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "timertag"),
		"fixture/internal/sim", lint.TimerTag)
}

func TestTimerTagOutsideReservedPackage(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "timertag_outside"),
		"fixture/internal/engine", lint.TimerTag)
}

// TestTimerTagCrossPackageCollision drives the facts path end to end: a fact
// exported by one package must surface a collision when a second package
// declares the same reserved value under a different name.
func TestTimerTagCrossPackageCollision(t *testing.T) {
	l := loaderFor(t)
	facts := analysis.NewFactStore()
	if err := facts.Export("gemini/internal/other", "timertag", lint.TimerTagFact{
		Decls: []lint.TimerTagDecl{{Name: "FlushTimerTag", Value: -5, Pos: "other.go:1"}},
	}); err != nil {
		t.Fatal(err)
	}

	pkg, err := l.CheckFiles("fixture/internal/engine",
		linttest.Fixture(t, "timertag_outside"), fixtureFiles(t, "timertag_outside"))
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	err = lint.RunPackage(lint.SuitePackage{
		Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Pkg, TypesInfo: pkg.TypesInfo,
	}, []*analysis.Analyzer{lint.TimerTag}, facts,
		func(d analysis.Diagnostic) { msgs = append(msgs, d.Message) })
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range msgs {
		if strings.Contains(m, "StrayTimerTag = -5 collides with FlushTimerTag declared in gemini/internal/other") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected cross-package collision diagnostic, got:\n%s", strings.Join(msgs, "\n"))
	}

	// The run must also have exported this package's own declarations.
	var fact lint.TimerTagFact
	if !facts.Import("fixture/internal/engine", "timertag", &fact) {
		t.Fatal("timertag fact not exported for the analyzed package")
	}
	if len(fact.Decls) != 2 {
		t.Errorf("exported fact has %d decls, want 2 (Stray + Retry): %+v", len(fact.Decls), fact.Decls)
	}
}

func TestStaleAllowFixture(t *testing.T) {
	l := loaderFor(t)
	linttest.Run(t, l, linttest.Fixture(t, "staleallow"),
		"fixture/server", lint.UnitSafety)
}

// fixtureFiles lists the .go sources of a testdata fixture (golden siblings
// excluded).
func fixtureFiles(t *testing.T, name string) []string {
	t.Helper()
	dir := linttest.Fixture(t, name)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	return files
}

// TestReservedTimerTagFacts replaces the hand-written reservation tests: the
// timertag fact collector, run over the real internal/sim package, must see
// the engine's reserved constants with their contracted values, all unique.
// New reserved timers extend the constants next to CapTimerTag and inherit
// this check without another hand-written test.
func TestReservedTimerTagFacts(t *testing.T) {
	l := loaderFor(t)
	pkg, err := l.Load(l.ModulePath + "/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	decls := lint.CollectTimerTagFacts(pkg.Fset, pkg.Files)
	byName := map[string]int64{}
	byValue := map[int64]string{}
	for _, d := range decls {
		byName[d.Name] = d.Value
		if prev, dup := byValue[d.Value]; dup {
			t.Errorf("reserved timer tags %s and %s share value %d", prev, d.Name, d.Value)
		}
		byValue[d.Value] = d.Name
	}
	if v, ok := byName["CapTimerTag"]; !ok || v != -1 {
		t.Errorf("CapTimerTag fact = %d (present=%v), want -1", v, ok)
	}
	if v, ok := byName["SampleTimerTag"]; !ok || v != -2 {
		t.Errorf("SampleTimerTag fact = %d (present=%v), want -2", v, ok)
	}
	for _, d := range decls {
		if d.Value >= 0 {
			t.Errorf("%s = %d: internal/sim timer-tag constants are reserved and must be negative", d.Name, d.Value)
		}
	}
}

// TestRepoIsClean runs the full geminivet suite — all seven analyzers plus
// the stale-suppression audit, with timer-tag facts threaded across packages
// — over every package of this module and requires zero diagnostics: the
// same bar CI enforces through go vet -vettool. A failure here names the
// offending lines directly.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module from source")
	}
	l := loaderFor(t)
	paths, err := l.ListPackages()
	if err != nil {
		t.Fatal(err)
	}
	facts := analysis.NewFactStore()
	var diags []string
	for _, ip := range paths {
		pkg, err := l.Load(ip)
		if err != nil {
			t.Fatalf("load %s: %v", ip, err)
		}
		err = lint.RunPackage(lint.SuitePackage{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.TypesInfo,
		}, lint.All(), facts, func(d analysis.Diagnostic) {
			p := pkg.Fset.Position(d.Pos)
			diags = append(diags, fmt.Sprintf("%s:%d:%d: %s: %s",
				p.Filename, p.Line, p.Column, d.Analyzer, d.Message))
		})
		if err != nil {
			t.Fatalf("suite on %s: %v", ip, err)
		}
	}
	if len(diags) > 0 {
		t.Errorf("geminivet found %d violation(s) in the repo:\n%s",
			len(diags), strings.Join(diags, "\n"))
	}
	// The module-wide sweep must have collected the engine's reserved-tag
	// facts — the cross-package collision check is only as good as its input.
	if got := facts.Packages("timertag"); len(got) == 0 {
		t.Error("no timertag facts collected during the module sweep")
	}
}

func TestByName(t *testing.T) {
	for _, a := range lint.All() {
		if got := lint.ByName(a.Name); got != a {
			t.Errorf("ByName(%q) = %v, want %v", a.Name, got, a)
		}
	}
	if lint.ByName("nosuch") != nil {
		t.Error("ByName(nosuch) should be nil")
	}
}
