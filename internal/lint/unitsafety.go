package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"gemini/internal/lint/analysis"
)

// UnitSafety enforces the repository's unit conventions for bare float64
// values. The cpu package's doc fixes the vocabulary — simulated time in
// milliseconds (*Ms), frequencies in GHz (*GHz), energy in joules or
// millijoules (*Joules/*MJ) — but float64 carries no unit, so nothing stops
// a *Sec value from flowing into a *Ms parameter. The analyzer flags:
//
//   - a direct flow (assignment, call argument, return, composite-literal
//     field) from an identifier with one unit suffix into an identifier with
//     a conflicting one;
//   - floats compared with == or != (except comparisons against constant
//     zero, the repository's explicit "unset" sentinel).
//
// Suppressions: //gemini:allow units -- reason, //gemini:allow floatcmp -- reason.
var UnitSafety = &analysis.Analyzer{
	Name: "unitsafety",
	Doc: "flag float64 flows between identifiers with conflicting unit " +
		"suffixes, and float == comparisons",
	Run: runUnitSafety,
}

// unitSuffixes maps identifier suffixes to unit ids, longest first so e.g.
// "MilliJoules" wins over "Joules"-vs-anything ambiguity.
var unitSuffixes = []struct{ suffix, unit string }{
	{"MilliJoules", "millijoules"},
	{"Micros", "microseconds"},
	{"Millis", "milliseconds"},
	{"Joules", "joules"},
	{"Nanos", "nanoseconds"},
	{"Usec", "microseconds"},
	{"Msec", "milliseconds"},
	{"Nsec", "nanoseconds"},
	{"Secs", "seconds"},
	{"MHz", "megahertz"},
	{"GHz", "gigahertz"},
	{"KHz", "kilohertz"},
	{"Sec", "seconds"},
	{"Us", "microseconds"},
	{"Ms", "milliseconds"},
	{"Ns", "nanoseconds"},
	{"MJ", "millijoules"},
	{"Hz", "hertz"},
	{"J", "joules"},
	{"W", "watts"},
	{"MW", "milliwatts"},
}

// unitOf extracts the unit encoded in an identifier's suffix, or "".
// The character before the suffix must be a lower-case letter or digit so
// that camelCase boundaries are respected ("TotalMs" has unit milliseconds;
// "RMS" or "Sec" alone do not match).
func unitOf(name string) string {
	for _, s := range unitSuffixes {
		if !strings.HasSuffix(name, s.suffix) {
			continue
		}
		rest := name[:len(name)-len(s.suffix)]
		if rest == "" {
			return ""
		}
		r := rune(rest[len(rest)-1])
		if unicode.IsLower(r) || unicode.IsDigit(r) {
			return s.unit
		}
	}
	return ""
}

// isFloat reports whether t's underlying type is a floating-point basic type
// (including named types like cpu.Freq).
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func runUnitSafety(pass *analysis.Pass) error {
	allow := buildAllowIndex(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if pass.InTestFile(f.Pos()) {
				return false
			}
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkFloatCompare(pass, n, allow)
			case *ast.AssignStmt:
				checkAssignUnits(pass, n, allow)
			case *ast.CallExpr:
				checkCallUnits(pass, n, allow)
			case *ast.KeyValueExpr:
				checkKeyValueUnits(pass, n, allow)
			case *ast.ValueSpec:
				checkValueSpecUnits(pass, n, allow)
			}
			return true
		})
	}
	return nil
}

// checkFloatCompare flags == / != between floats, excluding comparisons
// where either side is an exact constant zero (the unset-field sentinel used
// throughout the config structs).
func checkFloatCompare(pass *analysis.Pass, be *ast.BinaryExpr, allow allowIndex) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	xt, xok := pass.TypesInfo.Types[be.X]
	yt, yok := pass.TypesInfo.Types[be.Y]
	if !xok || !yok || !isFloat(xt.Type) || !isFloat(yt.Type) {
		return
	}
	if isConstZero(xt) || isConstZero(yt) {
		return
	}
	if allow.allows(pass, be.OpPos, "floatcmp") {
		return
	}
	pass.Reportf(be.OpPos,
		"floating-point %s comparison: accumulated float error makes exact equality unreliable — compare with a tolerance or //gemini:allow floatcmp with a reason",
		be.Op)
}

// isConstZero reports whether the expression is an exact constant 0.
func isConstZero(tv types.TypeAndValue) bool {
	if tv.Value == nil {
		return false
	}
	return tv.Value.ExactString() == "0"
}

// exprUnit determines the unit of a "direct flow" expression: a plain
// identifier, a selector (x.FieldMs), or a call whose function name carries
// a suffix (LatencyMs()). Arithmetic expressions deliberately return "" —
// unit algebra (GHz·ms = work) is the cpu package's job, not a linter's.
func exprUnit(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return unitOf(e.Name)
	case *ast.SelectorExpr:
		return unitOf(e.Sel.Name)
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			return unitOf(fun.Name)
		case *ast.SelectorExpr:
			return unitOf(fun.Sel.Name)
		}
	case *ast.ParenExpr:
		return exprUnit(e.X)
	}
	return ""
}

// reportUnitFlow reports a src→dst flow when both sides carry conflicting
// units and the value is floating-point.
func reportUnitFlow(pass *analysis.Pass, allow allowIndex, pos token.Pos, dstName, srcName string, src ast.Expr) {
	du, su := unitOf(dstName), exprUnit(src)
	if du == "" || su == "" || du == su {
		return
	}
	if tv, ok := pass.TypesInfo.Types[src]; !ok || !isFloat(tv.Type) {
		return
	}
	if allow.allows(pass, pos, "units") {
		return
	}
	pass.Reportf(pos, "unit mismatch: %s (%s) receives %s (%s)", dstName, du, srcName, su)
}

// exprName renders a short name for diagnostics.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun) + "()"
	case *ast.ParenExpr:
		return exprName(e.X)
	}
	return "value"
}

func checkAssignUnits(pass *analysis.Pass, as *ast.AssignStmt, allow allowIndex) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		var dst string
		switch l := lhs.(type) {
		case *ast.Ident:
			dst = l.Name
		case *ast.SelectorExpr:
			dst = l.Sel.Name
		default:
			continue
		}
		reportUnitFlow(pass, allow, as.TokPos, dst, exprName(as.Rhs[i]), as.Rhs[i])
	}
}

func checkValueSpecUnits(pass *analysis.Pass, vs *ast.ValueSpec, allow allowIndex) {
	if len(vs.Names) != len(vs.Values) {
		return
	}
	for i, name := range vs.Names {
		reportUnitFlow(pass, allow, name.Pos(), name.Name, exprName(vs.Values[i]), vs.Values[i])
	}
}

func checkCallUnits(pass *analysis.Pass, call *ast.CallExpr, allow allowIndex) {
	var callee types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		callee = pass.TypesInfo.Uses[fun.Sel]
	default:
		return
	}
	fn, ok := callee.(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		if i >= params.Len() {
			break
		}
		p := params.At(i)
		if sig.Variadic() && i == params.Len()-1 {
			break
		}
		reportUnitFlow(pass, allow, arg.Pos(), p.Name(), exprName(arg), arg)
	}
}

func checkKeyValueUnits(pass *analysis.Pass, kv *ast.KeyValueExpr, allow allowIndex) {
	key, ok := kv.Key.(*ast.Ident)
	if !ok {
		return
	}
	// Only struct-literal fields: the key of a map literal is a value, not a
	// field name, and may legitimately share a suffix with an unrelated value.
	if _, isField := pass.TypesInfo.Uses[key].(*types.Var); !isField {
		return
	}
	reportUnitFlow(pass, allow, kv.Colon, key.Name, exprName(kv.Value), kv.Value)
}
