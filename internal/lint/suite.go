package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gemini/internal/lint/analysis"
)

// StaleAllowName is the pseudo-analyzer under which the stale-suppression
// audit reports. It is not in All() — it has no standalone Run; RunPackage
// emits it after the real analyzers have consumed their suppressions.
const StaleAllowName = "staleallow"

// SuitePackage is one package handed to RunPackage: the same view a Pass
// carries, decoupled from any single analyzer.
type SuitePackage struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// RunPackage runs analyzers over one package with a single shared
// //gemini:allow index, then audits the suppressions: an allow whose check
// is owned by an analyzer that ran but which suppressed nothing is stale and
// reported (with a deletion fix); an allow naming no known check, or missing
// its `-- reason`, is reported unconditionally. Facts may be nil when no
// analyzer in the set needs cross-package state.
func RunPackage(sp SuitePackage, analyzers []*analysis.Analyzer, facts *analysis.FactStore, report func(analysis.Diagnostic)) error {
	shared := scanAllows(sp.Fset, sp.Files)
	ran := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       sp.Fset,
			Files:      sp.Files,
			Pkg:        sp.Pkg,
			TypesInfo:  sp.TypesInfo,
			Report:     report,
			Facts:      facts,
			SuiteAllow: shared,
		}
		if err := a.Run(pass); err != nil {
			return err
		}
	}
	auditAllows(sp.Fset, shared, ran, report)
	return nil
}

// auditAllows reports the suite-level directive errors left in the shared
// index after every analyzer ran.
func auditAllows(fset *token.FileSet, idx allowIndex, ran map[string]bool, report func(analysis.Diagnostic)) {
	// Deterministic order: sort entries by position.
	var entries []*allowEntry
	for file, lines := range idx {
		if strings.HasSuffix(file, "_test.go") {
			// Test files are outside every analyzer's jurisdiction (InTestFile
			// gating), so their allows can never be consumed; don't judge them.
			continue
		}
		for _, es := range lines {
			entries = append(entries, es...)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].pos < entries[j].pos })
	for _, e := range entries {
		owner, known := checkOwner[e.check]
		switch {
		case !known:
			report(analysis.Diagnostic{
				Pos: e.pos, End: e.end, Analyzer: StaleAllowName,
				Message: "//gemini:allow names unknown check " + quoteCheck(e.check) +
					" (known checks are listed in CONTRIBUTING.md)",
			})
		case e.reason == "":
			report(analysis.Diagnostic{
				Pos: e.pos, End: e.end, Analyzer: StaleAllowName,
				Message: "//gemini:allow " + e.check + " has no `-- reason`: every suppression must say why it is sound",
			})
		case ran[owner] && !e.used:
			report(analysis.Diagnostic{
				Pos: e.pos, End: e.end, Analyzer: StaleAllowName,
				Message: "stale //gemini:allow " + e.check + ": the " + owner +
					" analyzer reports nothing here — remove the suppression",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message:   "delete the stale //gemini:allow comment",
					TextEdits: []analysis.TextEdit{{Pos: e.pos, End: e.end}},
				}},
			})
		}
	}
}

// quoteCheck quotes a check name for a diagnostic without importing fmt into
// the audit path.
func quoteCheck(s string) string { return "\"" + s + "\"" }
