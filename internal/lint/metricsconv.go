package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"gemini/internal/lint/analysis"
)

// MetricsConv enforces the repository's Prometheus naming conventions at
// every telemetry.Registry registration site and telemetry.L label
// constructor, module-wide. Four checks:
//
//   - metricname: every registered metric name carries the gemini_ prefix
//     (one namespace on shared scrape endpoints), and counter names end in
//     _total per Prometheus convention. Literal names get a SuggestedFix.
//   - metricunit: unit-bearing names use the canonical suffix table — _ms,
//     _us, _ns, _watts, _mj, _bytes, _ghz, _pct — so dashboards never have
//     to guess a scale. Alias spellings (_msec, _millis, _milliseconds, …)
//     get a rename fix; _seconds is flagged without a fix because switching
//     to _ms rescales every recorded value, which a text edit cannot do.
//   - metrichelp: help strings are non-empty — `# HELP` lines are the only
//     documentation a scrape consumer sees.
//   - metriclabel: label values come from bounded sets: a constant, or a
//     strconv.Itoa/Format* rendering of a bounded numeric (shard and replica
//     indices). Anything else — a request field, an error string — is
//     unbounded cardinality and blows up the time-series store. Genuinely
//     bounded dynamic values (a build version, a listener address chosen
//     from config) carry a reasoned //gemini:allow metriclabel.
//
// Suppressions: //gemini:allow metricname|metricunit|metrichelp|metriclabel.
var MetricsConv = &analysis.Analyzer{
	Name: "metricsconv",
	Doc: "enforce gemini_ metric-name prefix, _total counter suffix, " +
		"canonical unit suffixes, non-empty help strings, and bounded label " +
		"values at telemetry registration sites",
	Run: runMetricsConv,
}

// metricNamePrefix is the mandatory namespace of every registered metric.
const metricNamePrefix = "gemini_"

// canonicalUnits are the approved unit suffix tokens (checked against the
// name's trailing tokens, before any _total).
var canonicalUnits = map[string]bool{
	"ms": true, "us": true, "ns": true,
	"watts": true, "mj": true, "bytes": true, "ghz": true, "pct": true,
}

// unitAliases maps non-canonical unit spellings to their canonical token.
// These are pure renames: the recorded values already use the unit, only the
// spelling drifts, so a text edit fully fixes the finding.
var unitAliases = map[string]string{
	"msec": "ms", "millis": "ms", "milliseconds": "ms", "millisecond": "ms",
	"usec": "us", "micros": "us", "microseconds": "us",
	"nsec": "ns", "nanos": "ns", "nanoseconds": "ns",
	"watt": "watts", "millijoules": "mj",
	"byte": "bytes", "gigahertz": "ghz", "percent": "pct", "percentage": "pct",
}

// rescaleUnits are unit spellings whose canonical replacement changes the
// scale of recorded values; renaming the metric without rescaling its
// observations would lie to every dashboard, so no fix is offered.
var rescaleUnits = map[string]string{
	"seconds": "ms", "secs": "ms", "sec": "ms", "s": "ms",
	"minutes": "ms", "hours": "ms",
	"joules": "mj", "kw": "watts", "mw": "watts",
	"kb": "bytes", "mb": "bytes", "gb": "bytes",
	"mhz": "ghz", "khz": "ghz", "hz": "ghz",
}

// registryMethods maps telemetry.Registry registration methods to whether
// the metric is a counter (and so must end _total).
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": false, "Histogram": false, "Summary": false,
}

func runMetricsConv(pass *analysis.Pass) error {
	allow := buildAllowIndex(pass)
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || pass.InTestFile(call.Pos()) {
			return true
		}
		// The callee may appear as telemetry.L / reg.Counter from outside the
		// package, or as a bare identifier inside internal/telemetry itself.
		var callee *ast.Ident
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			callee = fun.Sel
		case *ast.Ident:
			callee = fun
		default:
			return true
		}
		fn, ok := pass.TypesInfo.Uses[callee].(*types.Func)
		if !ok || fn.Pkg() == nil || !isTelemetryPkg(fn.Pkg().Path()) {
			return true
		}
		if isCounter, isReg := registryMethods[fn.Name()]; isReg && isRegistryMethod(fn) {
			checkRegistration(pass, call, isCounter, allow)
		}
		if fn.Name() == "L" && fn.Type().(*types.Signature).Recv() == nil {
			checkLabelValue(pass, call, allow)
		}
		return true
	})
	return nil
}

func isTelemetryPkg(path string) bool {
	return matchesPkgFrag(pkgPathBase(path), "internal/telemetry")
}

// isRegistryMethod reports whether fn is a method on telemetry.Registry.
func isRegistryMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// constString resolves e to its compile-time string value (literal or named
// constant), reporting whether it is constant at all.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkRegistration applies metricname, metricunit, and metrichelp to one
// Registry.Counter/Gauge/Histogram/Summary call.
func checkRegistration(pass *analysis.Pass, call *ast.CallExpr, isCounter bool, allow allowIndex) {
	if len(call.Args) < 2 {
		return
	}
	nameArg, helpArg := call.Args[0], call.Args[1]
	name, nameKnown := constString(pass, nameArg)

	if nameKnown {
		checkName(pass, nameArg, name, isCounter, allow)
	}

	if help, ok := constString(pass, helpArg); ok && strings.TrimSpace(help) == "" {
		if !allow.allows(pass, helpArg.Pos(), "metrichelp") {
			msg := "metric registration has an empty help string: # HELP is the only documentation a scrape consumer sees"
			if nameKnown {
				msg = "metric " + name + " has an empty help string: # HELP is the only documentation a scrape consumer sees"
			}
			pass.ReportRangef(helpArg.Pos(), helpArg.End(), "%s", msg)
		}
	}
}

// litFix builds a whole-string-literal replacement fix when arg is a basic
// string literal at the call site; named constants get no fix (their
// declaration may feed other sites, so a human must rename it).
func litFix(arg ast.Expr, message, newName string) []analysis.SuggestedFix {
	lit, ok := arg.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return nil
	}
	return []analysis.SuggestedFix{{
		Message: message,
		TextEdits: []analysis.TextEdit{{
			Pos: lit.Pos(), End: lit.End(), NewText: []byte("\"" + newName + "\""),
		}},
	}}
}

// nameViolation is one convention breach found in a metric name.
type nameViolation struct {
	check   string // metricname or metricunit
	message string
	fixable bool // whether the canonical rename fully resolves it
}

// canonicalizeName computes the convention-conforming spelling of name and
// the list of violations on the way there. Rescale-only violations (wrong
// unit scale, e.g. _seconds) are reported but excluded from the canonical
// rename, since a rename cannot rescale recorded values.
func canonicalizeName(name string, isCounter bool) (string, []nameViolation) {
	var viols []nameViolation
	fixed := name

	parts := strings.Split(fixed, "_")
	last := len(parts) - 1
	if parts[last] == "total" && len(parts) >= 3 {
		last-- // unit token sits before _total on counters
	}
	if last >= 1 {
		tok := parts[last]
		if canon, ok := unitAliases[tok]; ok {
			viols = append(viols, nameViolation{
				check: "metricunit", fixable: true,
				message: "metric " + name + " spells its unit _" + tok +
					": the canonical suffix is _" + canon + " (see the unit table in CONTRIBUTING.md)",
			})
			parts[last] = canon
			fixed = strings.Join(parts, "_")
		} else if canon, ok := rescaleUnits[tok]; ok && !canonicalUnits[tok] {
			viols = append(viols, nameViolation{
				check: "metricunit", fixable: false,
				message: "metric " + name + " is scaled in _" + tok + " but the canonical unit is _" + canon +
					": renaming alone would mislabel recorded values, so convert the instrumentation and rename together (no autofix)",
			})
		}
	}

	if isCounter && !strings.HasSuffix(fixed, "_total") {
		viols = append(viols, nameViolation{
			check: "metricname", fixable: true,
			message: "counter " + name + " must end in _total (Prometheus counter convention)",
		})
		fixed += "_total"
	}
	if !strings.HasPrefix(fixed, metricNamePrefix) {
		viols = append(viols, nameViolation{
			check: "metricname", fixable: true,
			message: "metric " + name + " lacks the " + metricNamePrefix +
				" namespace prefix required of every registered metric",
		})
		fixed = metricNamePrefix + fixed
	}
	return fixed, viols
}

// checkName reports every naming violation. The canonical rename rides on
// the first fixable violation only — attaching it to each would hand
// ApplyFixes overlapping edits of the same literal.
func checkName(pass *analysis.Pass, arg ast.Expr, name string, isCounter bool, allow allowIndex) {
	fixed, viols := canonicalizeName(name, isCounter)
	fixAttached := false
	for _, v := range viols {
		if allow.allows(pass, arg.Pos(), v.check) {
			continue
		}
		var fixes []analysis.SuggestedFix
		if v.fixable && !fixAttached {
			fixes = litFix(arg, "rename to the canonical "+fixed, fixed)
			fixAttached = fixes != nil
		}
		pass.Report(analysis.Diagnostic{
			Pos: arg.Pos(), End: arg.End(), Analyzer: pass.Analyzer.Name,
			Message: v.message, SuggestedFixes: fixes,
		})
	}
}

// boundedLabelValue reports whether e can only take values from a bounded
// set: any compile-time constant, or a strconv rendering of a numeric (the
// shard/replica-index idiom — bounded by topology size).
func boundedLabelValue(pass *analysis.Pass, e ast.Expr) bool {
	if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "strconv" {
		return false
	}
	return fn.Name() == "Itoa" || strings.HasPrefix(fn.Name(), "Format")
}

// checkLabelValue applies metriclabel to one telemetry.L(name, value) call.
func checkLabelValue(pass *analysis.Pass, call *ast.CallExpr, allow allowIndex) {
	if len(call.Args) != 2 {
		return
	}
	value := call.Args[1]
	if boundedLabelValue(pass, value) {
		return
	}
	if allow.allows(pass, value.Pos(), "metriclabel") {
		return
	}
	labelName, _ := constString(pass, call.Args[0])
	if labelName == "" {
		labelName = "?"
	}
	pass.ReportRangef(value.Pos(), value.End(),
		"label %s value %s is not from a bounded set (constant or strconv rendering of a bounded index): unbounded label values explode time-series cardinality — if the set is genuinely bounded, say why with //gemini:allow metriclabel",
		labelName, exprName(value))
}

// sortedUnitTable renders the canonical unit suffixes for documentation and
// usage text, sorted.
func sortedUnitTable() []string {
	out := make([]string, 0, len(canonicalUnits))
	for u := range canonicalUnits {
		out = append(out, "_"+u)
	}
	sort.Strings(out)
	return out
}
