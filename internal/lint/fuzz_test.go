package lint_test

import (
	"strings"
	"testing"
	"unicode"

	"gemini/internal/lint"
)

// FuzzParseAllowDirective hammers the //gemini:allow comment parser — the
// suite's one piece of user-facing syntax, fed raw source comments from
// every package of the module. Invariants: never panic; an accepted
// directive has a non-empty, whitespace-free check name and a
// whitespace-trimmed reason; and re-rendering an accepted directive in
// canonical form parses back to the same (check, reason).
func FuzzParseAllowDirective(f *testing.F) {
	f.Add("//gemini:allow floatcmp -- exact comparison intended")
	f.Add("//gemini:allow floatcmp")
	f.Add("//gemini:allow  ")
	f.Add("//gemini:allow\tmetricname\t--\ttabs everywhere")
	f.Add("// just a comment")
	f.Add("//gemini:hotpath")
	f.Add("//gemini:allow a--b")
	f.Add("//gemini:allow c -- -- double dash reason")
	f.Add("//gemini:allow timertag --")
	f.Add("//gemini:allow x -- reason with trailing space ")

	f.Fuzz(func(t *testing.T, text string) {
		check, reason, ok := lint.ParseAllowDirective(text)
		if !ok {
			if check != "" || reason != "" {
				t.Fatalf("rejected input %q still returned (%q, %q)", text, check, reason)
			}
			return
		}
		if check == "" {
			t.Fatalf("accepted directive %q with empty check name", text)
		}
		if strings.ContainsFunc(check, unicode.IsSpace) {
			t.Fatalf("check name %q from %q contains whitespace", check, text)
		}
		if reason != strings.TrimSpace(reason) {
			t.Fatalf("reason %q from %q is not whitespace-trimmed", reason, text)
		}
		// Canonical re-rendering must be a fixed point.
		canonical := "//gemini:allow " + check
		if reason != "" {
			canonical += " -- " + reason
		}
		check2, reason2, ok2 := lint.ParseAllowDirective(canonical)
		if !ok2 || check2 != check || reason2 != reason {
			t.Fatalf("canonical form %q of %q reparsed to (%q, %q, %v), want (%q, %q, true)",
				canonical, text, check2, reason2, ok2, check, reason)
		}
	})
}
