package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"gemini/internal/lint/analysis"
)

// LockSafety polices the lock discipline of the live serving path
// (internal/server) and the observability layer (internal/telemetry) — the
// two packages where goroutines, mutexes, and atomics meet real concurrency
// rather than the simulator's single-threaded event loop. Three checks:
//
//   - lockblocking: a mutex held across a blocking operation — a channel
//     send/receive (outside a select with a default), time.Sleep, a call
//     into package net or net/http, a method on a net.Conn or
//     http.ResponseWriter, or passing an http.ResponseWriter to any callee
//     (fmt.Fprintf(w, ...), json.NewEncoder(w), ...). A slow peer then
//     extends the critical section arbitrarily: /metrics scrapes stall the
//     request path, and the paper's always-on decision loop (§IV) cannot
//     afford a lock whose hold time the network chooses.
//   - lockreturn: a return statement while a mutex is still held and no
//     deferred Unlock covers the function — the classic leaked-lock shape
//     that deadlocks the next request.
//   - atomicmix: the same struct field accessed both through sync/atomic
//     and as a plain read/write under a mutex. The two disciplines do not
//     compose: the mutex does not order the atomic's loads, so the "guarded"
//     access still races.
//
// Suppressions: //gemini:allow lockblocking|lockreturn|atomicmix -- reason.
var LockSafety = &analysis.Analyzer{
	Name: "locksafety",
	Doc: "forbid mutexes held across blocking calls, returns with a lock " +
		"held, and mixed atomic/mutex access to one field in internal/server " +
		"and internal/telemetry",
	Run: runLockSafety,
}

// lockSafetyPkgs are the import-path fragments under the lock contract.
var lockSafetyPkgs = []string{"internal/server", "internal/telemetry"}

func isLockSafetyPkg(path string) bool {
	path = pkgPathBase(path)
	for _, frag := range lockSafetyPkgs {
		if matchesPkgFrag(path, frag) {
			return true
		}
	}
	return false
}

// isSyncLocker reports whether t (after pointer stripping) is sync.Mutex or
// sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	switch named.Obj().Name() {
	case "Mutex", "RWMutex":
		return true
	}
	return false
}

// lockOp is one Lock/Unlock call site within a function.
type lockOp struct {
	pos      token.Pos
	mutex    string // rendered receiver, e.g. "n.mu"
	acquire  bool   // Lock/RLock vs Unlock/RUnlock
	deferred bool
}

// mutexOp decomposes a call into a lock operation when the callee is a
// Lock/RLock/Unlock/RUnlock method on a sync mutex.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (mutex string, acquire, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	tv, okT := pass.TypesInfo.Types[sel.X]
	if !okT || !isSyncLocker(tv.Type) {
		return "", false, false
	}
	return exprName(sel.X), acquire, true
}

// lockRegion is one held interval of a mutex in source order: [lo, hi).
type lockRegion struct {
	mutex    string
	lo, hi   token.Pos
	deferred bool // closed by a deferred Unlock (spans to function end)
	lockPos  token.Pos
}

func runLockSafety(pass *analysis.Pass) error {
	if !isLockSafetyPkg(pass.Pkg.Path()) {
		return nil
	}
	allow := buildAllowIndex(pass)

	atomicFields := map[*types.Var]token.Pos{} // field -> first atomic access
	type guardedAccess struct {
		field *types.Var
		pos   token.Pos
		mutex string
	}
	var guarded []guardedAccess

	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || pass.InTestFile(fd.Pos()) {
				continue
			}
			regions := lockRegions(pass, fd)
			checkLockReturns(pass, fd, regions, allow)
			checkBlockingUnderLock(pass, fd, regions, allow)
			collectFieldAccesses(pass, fd, regions, atomicFields, func(v *types.Var, pos token.Pos, mu string) {
				guarded = append(guarded, guardedAccess{v, pos, mu})
			})
		}
	}

	for _, g := range guarded {
		aPos, ok := atomicFields[g.field]
		if !ok || allow.allows(pass, g.pos, "atomicmix") {
			continue
		}
		pass.Reportf(g.pos,
			"field %s is read/written under mutex %s here but accessed via sync/atomic at %s: the mutex does not order the atomic accesses — pick one discipline",
			g.field.Name(), g.mutex, pass.Position(aPos))
	}
	return nil
}

// lockRegions computes the held intervals of every mutex in fd, in source
// order: a Lock opens a region that the next Unlock of the same mutex
// closes; a deferred Unlock extends the region to the function end. The scan
// is flow-insensitive by design — geminivet trades path sensitivity for
// zero dependencies, and the repo's lock bodies are short and linear.
func lockRegions(pass *analysis.Pass, fd *ast.FuncDecl) []lockRegion {
	var ops []lockOp
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a closure's locks are its own function's story
		case *ast.DeferStmt:
			if mu, acquire, ok := mutexOp(pass, n.Call); ok && !acquire {
				ops = append(ops, lockOp{pos: n.Pos(), mutex: mu, acquire: false, deferred: true})
			}
			return false
		case *ast.CallExpr:
			if mu, acquire, ok := mutexOp(pass, n); ok {
				ops = append(ops, lockOp{pos: n.Pos(), mutex: mu, acquire: acquire})
			}
		}
		return true
	})
	// ops arrive in source order (Inspect is depth-first over a single file).
	var regions []lockRegion
	open := map[string]int{} // mutex -> index into regions, or absent
	deferClosed := map[string]bool{}
	for _, op := range ops {
		switch {
		case op.acquire:
			if _, held := open[op.mutex]; !held {
				regions = append(regions, lockRegion{mutex: op.mutex, lo: op.pos, lockPos: op.pos})
				open[op.mutex] = len(regions) - 1
				if deferClosed[op.mutex] {
					// A deferred Unlock earlier in the function covers every
					// later acquire too (the lock/defer-unlock loop idiom is
					// not in this repo; treat re-acquires as defer-covered).
					regions[len(regions)-1].deferred = true
				}
			}
		case op.deferred:
			deferClosed[op.mutex] = true
			if i, held := open[op.mutex]; held {
				regions[i].deferred = true
			}
		default: // plain Unlock
			if i, held := open[op.mutex]; held && !regions[i].deferred {
				regions[i].hi = op.pos
				delete(open, op.mutex)
			}
		}
	}
	for i := range regions {
		if regions[i].hi == token.NoPos {
			regions[i].hi = fd.Body.End()
		}
	}
	return regions
}

// regionAt returns the innermost region holding pos, preferring non-deferred
// regions (tighter intervals).
func regionAt(regions []lockRegion, pos token.Pos) *lockRegion {
	var found *lockRegion
	for i := range regions {
		r := &regions[i]
		if r.lo < pos && pos < r.hi {
			if found == nil || r.lo > found.lo {
				found = r
			}
		}
	}
	return found
}

// checkLockReturns flags returns inside a non-deferred lock region.
func checkLockReturns(pass *analysis.Pass, fd *ast.FuncDecl, regions []lockRegion, allow allowIndex) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		r := regionAt(regions, ret.Pos())
		if r == nil || r.deferred {
			return true
		}
		if allow.allows(pass, ret.Pos(), "lockreturn") {
			return true
		}
		pass.Reportf(ret.Pos(),
			"return with %s still held (locked at %s, no deferred Unlock): this path leaks the lock",
			r.mutex, pass.Position(r.lockPos))
		return true
	})
}

// blockingDesc classifies a node as a blocking operation, returning a
// human-readable description or "".
func blockingDesc(pass *analysis.Pass, n ast.Node, selectDepth int) string {
	switch n := n.(type) {
	case *ast.SendStmt:
		if selectDepth == 0 {
			return "channel send"
		}
	case *ast.UnaryExpr:
		if n.Op == token.ARROW && selectDepth == 0 {
			return "channel receive"
		}
	case *ast.CallExpr:
		return blockingCallDesc(pass, n)
	}
	return ""
}

// blockingCallDesc classifies a call as blocking: network packages, conn or
// response-writer methods, time.Sleep, or an http.ResponseWriter argument.
func blockingCallDesc(pass *analysis.Pass, call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			fn.Type().(*types.Signature).Recv() == nil {
			switch fn.Pkg().Path() {
			case "net", "net/http":
				return fn.Pkg().Path() + "." + fn.Name() + " call"
			case "time":
				if fn.Name() == "Sleep" {
					return "time.Sleep"
				}
			}
		}
		if tv, ok := pass.TypesInfo.Types[sel.X]; ok {
			if name := netInterfaceName(tv.Type); name != "" {
				return name + "." + sel.Sel.Name + " (client-paced I/O)"
			}
		}
	}
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok {
			if name := netInterfaceName(tv.Type); name == "http.ResponseWriter" {
				return "passing the http.ResponseWriter to " + exprName(call.Fun)
			}
		}
	}
	return ""
}

// netInterfaceName recognizes the network-paced interface types:
// net/http.ResponseWriter and net.Conn.
func netInterfaceName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	switch {
	case named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "ResponseWriter":
		return "http.ResponseWriter"
	case named.Obj().Pkg().Path() == "net" && named.Obj().Name() == "Conn":
		return "net.Conn"
	}
	return ""
}

// checkBlockingUnderLock flags blocking operations inside any lock region.
func checkBlockingUnderLock(pass *analysis.Pass, fd *ast.FuncDecl, regions []lockRegion, allow allowIndex) {
	if len(regions) == 0 {
		return
	}
	var walk func(n ast.Node, selectDepth int)
	walk = func(root ast.Node, selectDepth int) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.SelectStmt:
				if n != root {
					// A select with a default clause never blocks; one without
					// still parks the goroutine, but its comm cases are the
					// idiomatic wait shape — only flag the non-default sends
					// and receives via the increased depth when a default
					// exists.
					depth := selectDepth
					if hasDefaultClause(n) {
						depth++
					}
					walk(n, depth)
					return false
				}
				return true
			}
			if desc := blockingDesc(pass, n, selectDepth); desc != "" {
				if r := regionAt(regions, n.Pos()); r != nil {
					if !allow.allows(pass, n.Pos(), "lockblocking") {
						pass.Reportf(n.Pos(),
							"%s while holding %s (locked at %s): a slow peer extends the critical section arbitrarily — snapshot under the lock, then block outside it",
							desc, r.mutex, pass.Position(r.lockPos))
					}
				}
			}
			return true
		})
	}
	walk(fd.Body, 0)
}

// hasDefaultClause reports whether the select carries a default case.
func hasDefaultClause(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// collectFieldAccesses records, for the atomicmix check, every struct field
// reached through a sync/atomic call and every plain selector access to a
// field inside a lock region.
func collectFieldAccesses(pass *analysis.Pass, fd *ast.FuncDecl, regions []lockRegion,
	atomicFields map[*types.Var]token.Pos, guarded func(*types.Var, token.Pos, string)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				continue
			}
			if v := fieldVar(pass, un.X); v != nil {
				if _, seen := atomicFields[v]; !seen {
					atomicFields[v] = un.Pos()
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v := fieldVar(pass, sel)
		if v == nil {
			return true
		}
		r := regionAt(regions, sel.Pos())
		if r == nil {
			return true
		}
		guarded(v, sel.Pos(), r.mutex)
		return true
	})
}

// fieldVar resolves a selector to the struct field it names, or nil.
func fieldVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}
