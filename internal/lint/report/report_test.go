package report

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"gemini/internal/lint/analysis"
)

// fixtureDiags builds a deterministic diagnostic set resolved against a
// synthetic file set, the round-trip fixture for both renderers.
func fixtureDiags(t *testing.T) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f := fset.AddFile("/repo/internal/server/isn.go", -1, 1000)
	for i := 0; i < 1000; i += 40 {
		f.AddLine(i)
	}
	g := fset.AddFile("/repo/internal/sim/sim.go", -1, 1000)
	for i := 0; i < 1000; i += 40 {
		g.AddLine(i)
	}
	raw := []analysis.Diagnostic{
		{
			Pos: g.Pos(85), End: g.Pos(95), Analyzer: "timertag",
			Message: "literal negative timer tag -9 passed to SetTimer",
		},
		{
			Pos: f.Pos(45), Analyzer: "metricsconv",
			Message: "metric reqs lacks the gemini_ namespace prefix",
			SuggestedFixes: []analysis.SuggestedFix{{
				Message:   "rename",
				TextEdits: []analysis.TextEdit{{Pos: f.Pos(45), End: f.Pos(50), NewText: []byte(`"gemini_reqs"`)}},
			}},
		},
		{
			Pos: f.Pos(10), Analyzer: "locksafety",
			Message: "channel send while holding s.mu",
		},
	}
	out := make([]Diagnostic, len(raw))
	for i, d := range raw {
		out[i] = Resolve(fset, d)
	}
	return out
}

func fixtureRules() []RuleDoc {
	return []RuleDoc{
		{Name: "locksafety", Doc: "forbid mutexes held across blocking calls\nlong form."},
		{Name: "metricsconv", Doc: "enforce metric naming conventions"},
		{Name: "timertag", Doc: "police the reserved timer-tag namespace"},
	}
}

func TestJSONRoundTrip(t *testing.T) {
	diags := fixtureDiags(t)
	data, err := JSON(diags)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Diagnostics []Diagnostic `json:"diagnostics"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("rendered JSON does not parse: %v", err)
	}
	if len(doc.Diagnostics) != len(diags) {
		t.Fatalf("round-trip lost diagnostics: got %d, want %d", len(doc.Diagnostics), len(diags))
	}
	// Sorted: isn.go entries (by line) before sim.go.
	if doc.Diagnostics[0].Analyzer != "locksafety" || doc.Diagnostics[2].Analyzer != "timertag" {
		t.Errorf("diagnostics not sorted by file/line: %+v", doc.Diagnostics)
	}
	if !doc.Diagnostics[1].HasFix {
		t.Error("metricsconv diagnostic lost its hasFix marker")
	}
	if doc.Diagnostics[2].EndLine == 0 {
		t.Error("timertag diagnostic lost its end position")
	}
}

func TestJSONEmpty(t *testing.T) {
	data, err := JSON(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"diagnostics": []`) {
		t.Errorf("empty report must render an empty array, got: %s", data)
	}
}

func TestSARIFValidatesAndRoundTrips(t *testing.T) {
	data, err := SARIF(fixtureDiags(t), "/repo", fixtureRules())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSARIF(data); err != nil {
		t.Fatalf("rendered SARIF fails schema validation: %v\n%s", err, data)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID        string `json:"id"`
						ShortDesc struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q / %q", log.Version, log.Schema)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "geminivet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != 3 {
		t.Errorf("rules table has %d entries, want 3", len(run.Tool.Driver.Rules))
	}
	// Rule short descriptions take only the first doc line.
	if got := run.Tool.Driver.Rules[0].ShortDesc.Text; strings.Contains(got, "long form") {
		t.Errorf("shortDescription leaked past the first line: %q", got)
	}
	if len(run.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(run.Results))
	}
	// URIs are repo-relative with forward slashes.
	for _, res := range run.Results {
		uri := res.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if strings.HasPrefix(uri, "/") || !strings.HasPrefix(uri, "internal/") {
			t.Errorf("artifact URI %q is not repo-relative", uri)
		}
	}
}

func TestSARIFUnknownRuleAppended(t *testing.T) {
	diags := []Diagnostic{{Analyzer: "staleallow", Message: "stale allow", File: "/repo/a.go", Line: 3, Column: 1}}
	data, err := SARIF(diags, "/repo", fixtureRules())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSARIF(data); err != nil {
		t.Fatalf("SARIF with appended rule fails validation: %v", err)
	}
	if !strings.Contains(string(data), `"geminivet/staleallow"`) {
		t.Error("undeclared rule was not appended to the rules table")
	}
}

func TestSARIFEmptyStillValid(t *testing.T) {
	data, err := SARIF(nil, "/repo", fixtureRules())
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateSARIF(data); err != nil {
		t.Fatalf("empty SARIF fails validation: %v", err)
	}
}

func TestSARIFDeterministic(t *testing.T) {
	a, err := SARIF(fixtureDiags(t), "/repo", fixtureRules())
	if err != nil {
		t.Fatal(err)
	}
	b, err := SARIF(fixtureDiags(t), "/repo", fixtureRules())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("SARIF output is not byte-deterministic across runs")
	}
}

func TestValidateSARIFRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"not json":        "{",
		"wrong version":   `{"$schema":"x","version":"2.0.0","runs":[{"tool":{"driver":{"name":"t","rules":[]}},"results":[]}]}`,
		"no runs":         `{"$schema":"x","version":"2.1.0","runs":[]}`,
		"no driver name":  `{"$schema":"x","version":"2.1.0","runs":[{"tool":{"driver":{"rules":[]}},"results":[]}]}`,
		"unknown ruleId":  `{"$schema":"x","version":"2.1.0","runs":[{"tool":{"driver":{"name":"t","rules":[]}},"results":[{"ruleId":"r","ruleIndex":0,"message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.go"},"region":{"startLine":1}}}]}]}]}`,
		"bad startLine":   `{"$schema":"x","version":"2.1.0","runs":[{"tool":{"driver":{"name":"t","rules":[{"id":"r"}]}},"results":[{"ruleId":"r","ruleIndex":0,"message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.go"},"region":{"startLine":0}}}]}]}]}`,
		"missing message": `{"$schema":"x","version":"2.1.0","runs":[{"tool":{"driver":{"name":"t","rules":[{"id":"r"}]}},"results":[{"ruleId":"r","ruleIndex":0,"message":{"text":""},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.go"},"region":{"startLine":1}}}]}]}]}`,
	}
	for name, doc := range cases {
		if err := ValidateSARIF([]byte(doc)); err == nil {
			t.Errorf("%s: validation accepted malformed document", name)
		}
	}
}
