// Package report renders geminivet diagnostics in machine-readable formats:
// a line-oriented JSON form for scripting, and SARIF 2.1.0 for CI systems
// that surface findings as inline annotations (GitHub code scanning via
// codeql-action/upload-sarif). Both renderers are deterministic: diagnostics
// are sorted by file, line, column, analyzer before encoding, so two runs
// over the same tree produce byte-identical reports.
package report

import (
	"encoding/json"
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
	"strings"

	"gemini/internal/lint/analysis"
)

// Diagnostic is one finding resolved to file positions — the pivot between
// token.Pos-based analysis diagnostics and the serialized forms.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	// EndLine/EndColumn close the finding's source range when the analyzer
	// reported one (0 otherwise).
	EndLine   int  `json:"endLine,omitempty"`
	EndColumn int  `json:"endColumn,omitempty"`
	HasFix    bool `json:"hasFix,omitempty"`
}

// Resolve flattens an analysis diagnostic against fset.
func Resolve(fset *token.FileSet, d analysis.Diagnostic) Diagnostic {
	p := fset.Position(d.Pos)
	out := Diagnostic{
		Analyzer: d.Analyzer,
		Message:  d.Message,
		File:     p.Filename,
		Line:     p.Line,
		Column:   p.Column,
		HasFix:   len(d.SuggestedFixes) > 0,
	}
	if d.End.IsValid() {
		pe := fset.Position(d.End)
		if pe.Filename == p.Filename {
			out.EndLine, out.EndColumn = pe.Line, pe.Column
		}
	}
	return out
}

// Sort orders diagnostics for deterministic output.
func Sort(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// JSON renders diagnostics as a single indented JSON document:
// {"diagnostics": [...]} — an object rather than a bare array so the schema
// can grow (summary counts, tool version) without breaking consumers.
func JSON(diags []Diagnostic) ([]byte, error) {
	Sort(diags)
	if diags == nil {
		diags = []Diagnostic{}
	}
	doc := struct {
		Diagnostics []Diagnostic `json:"diagnostics"`
	}{diags}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// SARIF 2.1.0 document structure — only the slice of the spec geminivet
// emits, but every emitted field follows the published schema
// (https://json.schemastore.org/sarif-2.1.0.json).

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription *sarifMessage     `json:"shortDescription,omitempty"`
	FullDescription  *sarifMessage     `json:"fullDescription,omitempty"`
	Help             *sarifMessage     `json:"help,omitempty"`
	Properties       map[string]any    `json:"properties,omitempty"`
	DefaultConfig    *sarifRuleDefault `json:"defaultConfiguration,omitempty"`
}

type sarifRuleDefault struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
	EndLine     int `json:"endLine,omitempty"`
	EndColumn   int `json:"endColumn,omitempty"`
}

// RuleDoc describes one analyzer for the SARIF rules table.
type RuleDoc struct {
	Name string
	Doc  string
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. root, when non-empty, is
// stripped from file paths so artifact URIs are repo-relative (GitHub code
// scanning requires relative URIs to attach annotations). rules documents
// every analyzer that ran, found something or not, so CI can show the rule
// inventory.
func SARIF(diags []Diagnostic, root string, rules []RuleDoc) ([]byte, error) {
	Sort(diags)

	sarifRules := make([]sarifRule, 0, len(rules))
	ruleIndex := map[string]int{}
	for _, r := range rules {
		ruleIndex[r.Name] = len(sarifRules)
		short := r.Doc
		if i := strings.IndexByte(short, '\n'); i >= 0 {
			short = short[:i]
		}
		sarifRules = append(sarifRules, sarifRule{
			ID:               "geminivet/" + r.Name,
			ShortDescription: &sarifMessage{Text: short},
			FullDescription:  &sarifMessage{Text: r.Doc},
			DefaultConfig:    &sarifRuleDefault{Level: "error"},
		})
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			// A diagnostic from an undeclared rule (the stale-allow audit when
			// the caller forgot to list it) still must render: append the rule.
			idx = len(sarifRules)
			ruleIndex[d.Analyzer] = idx
			sarifRules = append(sarifRules, sarifRule{
				ID:            "geminivet/" + d.Analyzer,
				DefaultConfig: &sarifRuleDefault{Level: "error"},
			})
		}
		region := sarifRegion{StartLine: max(d.Line, 1), StartColumn: d.Column}
		if d.EndLine > 0 {
			region.EndLine, region.EndColumn = d.EndLine, d.EndColumn
		}
		results = append(results, sarifResult{
			RuleID:    "geminivet/" + d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relativeURI(d.File, root)},
					Region:           region,
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "geminivet",
				Rules: sarifRules,
			}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// relativeURI renders file as a forward-slash path relative to root when
// possible, absolute otherwise.
func relativeURI(file, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// ValidateSARIF structurally checks data against the slice of the SARIF
// 2.1.0 schema geminivet emits: required top-level fields, version string,
// runs with tool.driver.name, results whose ruleId/ruleIndex agree with the
// rules table, and locations with positive startLine. It is the CI gate that
// keeps the renderer honest without a JSON-Schema engine in the module.
func ValidateSARIF(data []byte) error {
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex *int   `json:"ruleIndex"`
				Level     string `json:"level"`
				Message   struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		return fmt.Errorf("sarif: not valid JSON: %w", err)
	}
	if log.Version != sarifVersion {
		return fmt.Errorf("sarif: version %q, want %q", log.Version, sarifVersion)
	}
	if log.Schema == "" {
		return fmt.Errorf("sarif: missing $schema")
	}
	if len(log.Runs) == 0 {
		return fmt.Errorf("sarif: no runs")
	}
	for ri, run := range log.Runs {
		if run.Tool.Driver.Name == "" {
			return fmt.Errorf("sarif: runs[%d] missing tool.driver.name", ri)
		}
		ruleIDs := make(map[string]int, len(run.Tool.Driver.Rules))
		for i, r := range run.Tool.Driver.Rules {
			if r.ID == "" {
				return fmt.Errorf("sarif: runs[%d].rules[%d] missing id", ri, i)
			}
			ruleIDs[r.ID] = i
		}
		for i, res := range run.Results {
			if res.RuleID == "" {
				return fmt.Errorf("sarif: runs[%d].results[%d] missing ruleId", ri, i)
			}
			idx, known := ruleIDs[res.RuleID]
			if !known {
				return fmt.Errorf("sarif: runs[%d].results[%d] ruleId %q not in rules table", ri, i, res.RuleID)
			}
			if res.RuleIndex == nil || *res.RuleIndex != idx {
				return fmt.Errorf("sarif: runs[%d].results[%d] ruleIndex disagrees with rules table", ri, i)
			}
			if res.Message.Text == "" {
				return fmt.Errorf("sarif: runs[%d].results[%d] empty message", ri, i)
			}
			if len(res.Locations) == 0 {
				return fmt.Errorf("sarif: runs[%d].results[%d] has no locations", ri, i)
			}
			for li, loc := range res.Locations {
				pl := loc.PhysicalLocation
				if pl.ArtifactLocation.URI == "" {
					return fmt.Errorf("sarif: runs[%d].results[%d].locations[%d] missing artifact uri", ri, i, li)
				}
				if pl.Region.StartLine < 1 {
					return fmt.Errorf("sarif: runs[%d].results[%d].locations[%d] startLine %d < 1", ri, i, li, pl.Region.StartLine)
				}
			}
		}
	}
	return nil
}
