package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"gemini/internal/lint/analysis"
)

// Hotpath polices functions annotated //gemini:hotpath — the per-request
// engine loop, the telemetry nil-check hooks, and the instrument fast paths
// behind the "zero added allocations per request when telemetry is disabled"
// benchmark contract (TestTelemetryDisabledAddsNoAllocsPerRequest).
//
// Inside an annotated function the analyzer forbids:
//   - fmt.* calls and string concatenation (allocate);
//   - closure literals, make(...), new(...), map composite literals, and
//     &T{...} pointer composites (allocate);
//   - go statements (hidden goroutine + order hazards);
//   - calls to module functions that are not themselves annotated
//     //gemini:hotpath (so the allocation discipline propagates), except
//     dynamic calls (interface methods, func values) which cannot be
//     resolved statically.
//
// The telemetry-disabled contract shapes an escape hatch: statements guarded
// by a telemetry nil-check (`if s.tr != nil { ... }`, or following an early
// `if s.tr == nil { return }`) are exempt — allocations there only happen
// when tracing is enabled, which is exactly the contract. Anything else
// needs an explicit `//gemini:allow hotpath -- reason` suppression.
//
// Allowed callees besides annotated module functions: builtins (append's
// amortized growth is the queue-recycling idiom the engine relies on),
// package math, sort.Search*, and sync/atomic.
var Hotpath = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "forbid allocations and un-annotated callees in //gemini:hotpath " +
		"functions (zero-alloc telemetry-disabled contract)",
	Run: runHotpath,
}

// moduleRoot and modulePath configure cross-package annotation lookup; the
// driver and tests set them via SetModuleInfo. When unset, calls into other
// module packages are reported (conservative).
var (
	hotpathMu     sync.Mutex
	moduleRoot    string
	modulePathStr string
	hotpathCache  = map[string]map[string]bool{} // pkg path -> "Recv.Name" set
)

// SetModuleInfo tells the hotpath analyzer where the module lives so it can
// resolve //gemini:hotpath annotations on functions in other packages by a
// syntax-only scan of their source directory.
func SetModuleInfo(root, path string) {
	hotpathMu.Lock()
	defer hotpathMu.Unlock()
	if moduleRoot != root || modulePathStr != path {
		moduleRoot, modulePathStr = root, path
		hotpathCache = map[string]map[string]bool{}
	}
}

// funcKey canonicalizes a function or method name for the annotation sets:
// "Name" for functions, "Recv.Name" for methods (pointer stripped).
func funcKey(recv, name string) string {
	if recv == "" {
		return name
	}
	return recv + "." + name
}

// recvTypeName extracts the receiver's base type name from a FuncDecl.
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// annotatedInDir parses (syntax + comments only) the non-test Go files of a
// package directory and returns its //gemini:hotpath function keys.
func annotatedInDir(dir string) map[string]bool {
	set := map[string]bool{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return set
	}
	fset := token.NewFileSet()
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			continue
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && hasDirective(fd.Doc, HotpathDirective) {
				set[funcKey(recvTypeName(fd), fd.Name.Name)] = true
			}
		}
	}
	return set
}

// annotatedInPkg resolves the annotation set of a module package by path.
func annotatedInPkg(pkgPath string) map[string]bool {
	hotpathMu.Lock()
	defer hotpathMu.Unlock()
	if set, ok := hotpathCache[pkgPath]; ok {
		return set
	}
	set := map[string]bool{}
	if moduleRoot != "" && modulePathStr != "" {
		rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, modulePathStr), "/")
		set = annotatedInDir(filepath.Join(moduleRoot, filepath.FromSlash(rel)))
	}
	hotpathCache[pkgPath] = set
	return set
}

// inModule reports whether pkgPath belongs to this module.
func inModule(pkgPath string) bool {
	if modulePathStr != "" {
		return pkgPath == modulePathStr || strings.HasPrefix(pkgPath, modulePathStr+"/")
	}
	// Fallback heuristic: module paths here have no dot (stdlib-style would
	// too, but stdlib is matched first by the allowlist switch).
	return strings.HasPrefix(pkgPath, "gemini")
}

func runHotpath(pass *analysis.Pass) error {
	allow := buildAllowIndex(pass)

	// Local annotation set: every //gemini:hotpath FuncDecl in this package.
	local := map[string]bool{}
	type annotated struct {
		fd   *ast.FuncDecl
		file *ast.File
	}
	var targets []annotated
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !hasDirective(fd.Doc, HotpathDirective) {
				continue
			}
			local[funcKey(recvTypeName(fd), fd.Name.Name)] = true
			if fd.Body != nil && !pass.InTestFile(fd.Pos()) {
				targets = append(targets, annotated{fd, f})
			}
		}
	}
	for _, t := range targets {
		checkHotpathFunc(pass, t.fd, local, allow)
	}
	return nil
}

// telemetryGated reports whether expr is a telemetry handle whose nil state
// encodes "tracing disabled": a pointer to a type defined in
// internal/telemetry.
func telemetryGated(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/telemetry")
}

// nilCheck decomposes `x != nil` / `x == nil`, returning the non-nil side.
func nilCheck(cond ast.Expr) (x ast.Expr, op token.Token, ok bool) {
	be, isBin := cond.(*ast.BinaryExpr)
	if !isBin || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, 0, false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case isNil(be.Y):
		return be.X, be.Op, true
	case isNil(be.X):
		return be.Y, be.Op, true
	}
	return nil, 0, false
}

// terminates reports whether the statement unconditionally leaves the
// enclosing block (return or panic) — the early-exit guard shape.
func terminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// posRange is a half-open source interval.
type posRange struct{ lo, hi token.Pos }

// exemptRanges finds the telemetry-enabled regions of an annotated function:
// bodies of `if <telemetry> != nil { ... }`, and block suffixes following an
// `if <telemetry> == nil { return }` guard.
func exemptRanges(pass *analysis.Pass, body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if x, op, ok := nilCheck(n.Cond); ok && op == token.NEQ && telemetryGated(pass, x) {
				out = append(out, posRange{n.Body.Pos(), n.Body.End()})
			}
		case *ast.BlockStmt:
			for i, s := range n.List {
				ifs, ok := s.(*ast.IfStmt)
				if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
					continue
				}
				x, op, okNil := nilCheck(ifs.Cond)
				if okNil && op == token.EQL && telemetryGated(pass, x) &&
					terminates(ifs.Body.List[len(ifs.Body.List)-1]) && i+1 < len(n.List) {
					out = append(out, posRange{n.List[i+1].Pos(), n.End()})
				}
			}
		}
		return true
	})
	return out
}

func inRanges(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// hotpathStdAllowed lists standard-library callees that never allocate on
// the paths the engine uses.
func hotpathStdAllowed(pkgPath, name string) bool {
	switch pkgPath {
	case "math", "sync/atomic":
		return true
	case "sort":
		return strings.HasPrefix(name, "Search")
	}
	return false
}

func checkHotpathFunc(pass *analysis.Pass, fd *ast.FuncDecl, local map[string]bool, allow allowIndex) {
	exempt := exemptRanges(pass, fd.Body)
	report := func(pos token.Pos, format string, args ...any) {
		if inRanges(exempt, pos) || allow.allows(pass, pos, "hotpath") {
			return
		}
		pass.Reportf(pos, "//gemini:hotpath %s: "+format,
			append([]any{fd.Name.Name}, args...)...)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure literal allocates per call")
			return false // its body is the closure's problem, not this path's
		case *ast.GoStmt:
			report(n.Pos(), "go statement spawns a goroutine on the per-request path")
		case *ast.CompositeLit:
			if tv, ok := pass.TypesInfo.Types[n]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(n.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, isLit := n.X.(*ast.CompositeLit); isLit {
					report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
						report(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.CallExpr:
			checkHotpathCall(pass, n, local, report)
		}
		return true
	})
}

func checkHotpathCall(pass *analysis.Pass, call *ast.CallExpr, local map[string]bool, report func(token.Pos, string, ...any)) {
	// Conversions: flag the allocating string<->slice ones.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic && b.Info()&types.IsString != 0 {
			if atv, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
				if _, isSlice := atv.Type.Underlying().(*types.Slice); isSlice {
					report(call.Pos(), "string(<slice>) conversion allocates")
				}
			}
		}
		return
	}

	var callee types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		callee = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		callee = pass.TypesInfo.Uses[fun.Sel]
		// Interface method calls cannot be resolved statically; they are the
		// engine's policy callbacks and are each policy's responsibility.
		if sel, ok := pass.TypesInfo.Selections[fun]; ok && types.IsInterface(sel.Recv()) {
			return
		}
	default:
		return // call through a computed func value: dynamic, unresolvable
	}

	switch obj := callee.(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			// make of a map or channel always allocates; make of a slice
			// does too and has no amortized-append excuse.
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "print", "println":
			report(call.Pos(), "%s writes to stderr", obj.Name())
		}
	case *types.Func:
		if obj.Pkg() == nil {
			return // universe-scope (error.Error)
		}
		pkgPath := obj.Pkg().Path()
		sig, _ := obj.Type().(*types.Signature)
		recv := ""
		if sig != nil && sig.Recv() != nil {
			recv = namedRecvName(sig.Recv().Type())
		}
		key := funcKey(recv, obj.Name())
		switch {
		case pkgPath == "fmt":
			report(call.Pos(), "fmt.%s allocates (formatting on the hot path)", obj.Name())
		case hotpathStdAllowed(pkgPath, obj.Name()):
			// fine
		case pkgPathBase(pkgPath) == pkgPathBase(pass.Pkg.Path()):
			if !local[key] {
				report(call.Pos(), "calls un-annotated %s (add //gemini:hotpath to the callee or guard the call)", key)
			}
		case inModule(pkgPath):
			if !annotatedInPkg(pkgPath)[key] {
				report(call.Pos(), "calls un-annotated %s.%s", pkgPath, key)
			}
		default:
			report(call.Pos(), "calls %s.%s, which is outside the hot-path allowlist", pkgPath, obj.Name())
		}
	case *types.Var:
		// func-typed variable or field: dynamic.
	}
}

// namedRecvName returns the base type name of a method receiver type.
func namedRecvName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}
