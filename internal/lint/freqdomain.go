package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"gemini/internal/lint/analysis"
)

// FreqDomain keeps DVFS plans inside the validated frequency ladder. The cpu
// package defines the platform's level table (cpu.DefaultLevels, clamped by
// Ladder.Clamp); policies and planners must pick from it rather than
// inventing frequencies, or the simulator happily models a clock the
// hardware cannot set. The analyzer flags constant cpu.Freq expressions
// built from numeric literals outside the cpu package itself — e.g.
// `plan.Freq = 2.05` or `cpu.Freq(1.9)` — while leaving the zero value
// (the "unset, use default" sentinel) and test files alone.
//
// Suppression: //gemini:allow freqliteral -- reason.
var FreqDomain = &analysis.Analyzer{
	Name: "freqdomain",
	Doc: "forbid literal cpu.Freq values outside the cpu package's validated " +
		"level table",
	Run: runFreqDomain,
}

// isCPUFreq reports whether t is the cpu package's Freq type.
func isCPUFreq(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Freq" &&
		strings.HasSuffix(named.Obj().Pkg().Path(), "internal/cpu")
}

func runFreqDomain(pass *analysis.Pass) error {
	if strings.HasSuffix(pkgPathBase(pass.Pkg.Path()), "internal/cpu") {
		return nil // the ladder's home defines the literals
	}
	allow := buildAllowIndex(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			e, ok := n.(ast.Expr)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil || !isCPUFreq(tv.Type) {
				return true
			}
			// Outermost constant Freq expression: don't double-report its
			// sub-expressions.
			if !containsBasicLit(e) || tv.Value.ExactString() == "0" {
				return false
			}
			if !pass.InTestFile(e.Pos()) && !allow.allows(pass, e.Pos(), "freqliteral") {
				pass.Reportf(e.Pos(),
					"literal frequency %s GHz: pick from the validated ladder (cpu.DefaultLevels / Ladder.Clamp) so plans stay inside real DVFS states",
					tv.Value.String())
			}
			return false
		})
	}
	return nil
}

// containsBasicLit reports whether the expression tree contains a numeric
// literal (as opposed to a named constant like cpu.FMax, which is fine:
// named constants live next to the ladder and change with it).
func containsBasicLit(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.BasicLit); ok {
			found = true
		}
		return !found
	})
	return found
}
