package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"gemini/internal/lint/analysis"
)

// TimerTag polices the event engines' reserved timer-tag namespace. Timer
// tags are the int64 cookies handed to Sim.SetTimer; non-negative tags
// belong to callers, while negative tags are reserved for engine-internal
// timers (CapTimerTag = -1 for the power-cap governor, SampleTimerTag = -2
// for the telemetry sampler). The analyzer enforces, module-wide:
//
//   - no literal negative tag at a SetTimer call site or in a tag
//     comparison — reserved tags must be referenced by name, so a grep for
//     the constant finds every use;
//   - reserved (negative) timer-tag constants are declared only in the
//     package that owns the namespace (internal/sim, beside CapTimerTag) —
//     a stray -3 constant in another package is a collision waiting for its
//     victim;
//   - no two reserved constants share a value, across every package of the
//     module. Declarations are exported as package facts (collected
//     syntactically so the vet VetxOnly fast path can produce them without
//     type-checking) and checked pairwise as packages flow through the run.
//
// This replaces the hand-written per-constant reservation tests: the
// invariant now lives in one place and new engine timers inherit it.
//
// Suppressions: //gemini:allow timertag -- reason.
var TimerTag = &analysis.Analyzer{
	Name: "timertag",
	Doc: "ban literal negative timer tags, keep reserved timer-tag constants " +
		"beside CapTimerTag, and detect cross-package tag collisions via " +
		"package facts",
	Run: runTimerTag,
}

// reservedTagPkg is the import-path fragment of the one package allowed to
// declare negative timer-tag constants.
const reservedTagPkg = "internal/sim"

// timerTagName is the analyzer name, usable from runTimerTag without an
// initialization cycle through the TimerTag variable.
const timerTagName = "timertag"

// TimerTagDecl is one `const XxxTimerTag int64 = -N` declaration, as carried
// in the timertag package fact.
type TimerTagDecl struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
	Pos   string `json:"pos"` // file:line, for diagnostics in other packages
}

// TimerTagFact is the timertag analyzer's package fact: every timer-tag
// constant the package declares.
type TimerTagFact struct {
	Decls []TimerTagDecl `json:"decls"`
}

// CollectTimerTagFacts scans files for timer-tag constant declarations —
// package-level consts whose name ends in "TimerTag" with an integer literal
// (possibly negated) initializer. The scan is purely syntactic so the
// geminivet VetxOnly path can run it without type-checking a package.
func CollectTimerTagFacts(fset *token.FileSet, files []*ast.File) []TimerTagDecl {
	var decls []TimerTagDecl
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasSuffix(name.Name, "TimerTag") || i >= len(vs.Values) {
						continue
					}
					if v, ok := intLiteralValue(vs.Values[i]); ok {
						p := fset.Position(name.Pos())
						decls = append(decls, TimerTagDecl{
							Name:  name.Name,
							Value: v,
							Pos:   fmt.Sprintf("%s:%d", p.Filename, p.Line),
						})
					}
				}
			}
		}
	}
	return decls
}

// intLiteralValue evaluates an integer literal, optionally under a chain of
// unary +/- operators, without type information.
func intLiteralValue(e ast.Expr) (int64, bool) {
	neg := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			switch x.Op {
			case token.SUB:
				neg = !neg
				e = x.X
			case token.ADD:
				e = x.X
			default:
				return 0, false
			}
		case *ast.BasicLit:
			if x.Kind != token.INT {
				return 0, false
			}
			v, err := strconv.ParseInt(x.Value, 0, 64)
			if err != nil {
				return 0, false
			}
			if neg {
				v = -v
			}
			return v, true
		default:
			return 0, false
		}
	}
}

func runTimerTag(pass *analysis.Pass) error {
	allow := buildAllowIndex(pass)
	pkgPath := pkgPathBase(pass.Pkg.Path())

	// Production files only: tests may poke raw tags at the engine to probe
	// its error paths.
	var prodFiles []*ast.File
	for _, f := range pass.Files {
		if !pass.InTestFile(f.Pos()) {
			prodFiles = append(prodFiles, f)
		}
	}

	decls := CollectTimerTagFacts(pass.Fset, prodFiles)

	// Reserved constants live beside CapTimerTag only.
	inReservedPkg := matchesPkgFrag(pkgPath, reservedTagPkg)
	for _, d := range decls {
		if d.Value < 0 && !inReservedPkg {
			if pos, ok := declPos(pass, prodFiles, d.Name); ok && !allow.allows(pass, pos, "timertag") {
				pass.Reportf(pos,
					"reserved (negative) timer tag %s = %d declared outside %s: reserved tags must be named constants beside CapTimerTag so the namespace has one owner",
					d.Name, d.Value, reservedTagPkg)
			}
		}
	}

	// Collisions: within this package, and against every package already in
	// the fact store. Pairwise coverage is order-independent — whichever
	// package the run visits second sees the first's fact.
	seen := map[int64]TimerTagDecl{}
	for _, d := range decls {
		if prev, dup := seen[d.Value]; dup && prev.Name != d.Name {
			if pos, ok := declPos(pass, prodFiles, d.Name); ok && !allow.allows(pass, pos, "timertag") {
				pass.Reportf(pos,
					"timer tag %s = %d collides with %s (%s): every reserved tag value must be unique",
					d.Name, d.Value, prev.Name, prev.Pos)
			}
			continue
		}
		seen[d.Value] = d
	}
	if pass.Facts != nil {
		for _, otherPkg := range pass.Facts.Packages(timerTagName) {
			if otherPkg == pass.Pkg.Path() || pkgPathBase(otherPkg) == pkgPath {
				continue
			}
			var fact TimerTagFact
			if !pass.Facts.Import(otherPkg, timerTagName, &fact) {
				continue
			}
			for _, other := range fact.Decls {
				local, dup := seen[other.Value]
				if !dup || local.Name == other.Name {
					continue
				}
				if pos, ok := declPos(pass, prodFiles, local.Name); ok && !allow.allows(pass, pos, "timertag") {
					pass.Reportf(pos,
						"timer tag %s = %d collides with %s declared in %s (%s)",
						local.Name, local.Value, other.Name, otherPkg, other.Pos)
				}
			}
		}
		if len(decls) > 0 {
			if err := pass.Facts.Export(pass.Pkg.Path(), timerTagName, TimerTagFact{Decls: decls}); err != nil {
				return err
			}
		}
	}

	// Literal negative tags at call and comparison sites.
	for _, f := range prodFiles {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkSetTimerCall(pass, n, allow)
			case *ast.BinaryExpr:
				checkTagComparison(pass, n, allow)
			}
			return true
		})
	}
	return nil
}

// declPos finds the declaration position of a package-level constant by name.
func declPos(pass *analysis.Pass, files []*ast.File, name string) (token.Pos, bool) {
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						if id.Name == name {
							return id.Pos(), true
						}
					}
				}
			}
		}
	}
	return token.NoPos, false
}

// checkSetTimerCall flags a literal negative tag passed to SetTimer.
func checkSetTimerCall(pass *analysis.Pass, call *ast.CallExpr, allow allowIndex) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "SetTimer" || len(call.Args) != 2 {
		return
	}
	v, isLit := intLiteralValue(call.Args[1])
	if !isLit || v >= 0 {
		return
	}
	if allow.allows(pass, call.Args[1].Pos(), "timertag") {
		return
	}
	pass.ReportRangef(call.Args[1].Pos(), call.Args[1].End(),
		"literal negative timer tag %d passed to SetTimer: reserved tags must be referenced by their named constant (CapTimerTag, SampleTimerTag, ...) so collisions stay visible",
		v)
}

// checkTagComparison flags comparing a tag-named expression against a raw
// negative literal (`tag == -1` instead of `tag == CapTimerTag`).
func checkTagComparison(pass *analysis.Pass, be *ast.BinaryExpr, allow allowIndex) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	expr, lit := be.X, be.Y
	v, isLit := intLiteralValue(lit)
	if !isLit {
		expr, lit = be.Y, be.X
		v, isLit = intLiteralValue(lit)
	}
	if !isLit || v >= 0 || !isTagNamedExpr(expr) {
		return
	}
	if allow.allows(pass, be.Pos(), "timertag") {
		return
	}
	pass.ReportRangef(be.Pos(), be.End(),
		"tag compared against raw literal %d: use the named reserved constant so the comparison survives a renumbering",
		v)
}

// isTagNamedExpr reports whether e names a timer tag: an identifier or
// selector whose final name is "tag" or ends in "Tag". The restriction keeps
// unrelated negative sentinels (FreqLevel == -1) out of scope.
func isTagNamedExpr(e ast.Expr) bool {
	var name string
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	default:
		return false
	}
	return name == "tag" || strings.HasSuffix(name, "Tag")
}
