package sim

import "math"

// Reference linear-scan engine (Config.Engine == EngineLinear). This is the
// original event loop: every nextEvent scans the full planned-change and
// timer lists, clamping past-due timestamps to the clock per scan. It exists
// so the calendar engine's behavior stays machine-checked against a simple,
// obviously-correct implementation (TestEnginesEquivalent,
// FuzzEngineEquivalence assert byte-identical results, decision traces, and
// spans); nothing outside tests and benchmarks should select it.
//
// One historical wart is fixed here rather than preserved: dispatch used to
// remove the chosen event with an O(n) splice (append(s[:i], s[i+1:]...)),
// and the same-instant tie-break leaned on slice position surviving those
// splices. Events now carry their insertion seq and the scan tie-breaks on
// (timestamp, kind, seq) explicitly, which makes O(1) swap-remove legal:
// physical order no longer matters. The dispatch order is unchanged —
// relative slice positions under splice removal equal insertion order.

//gemini:hotpath
func (s *Sim) loopLinear() {
	for {
		kind, at, idx := s.nextEventLinear()
		if kind == evNone {
			return
		}
		s.res.Events++
		s.advanceTo(at)
		switch kind {
		case evCompletion:
			s.completeHead()
		case evPlanned:
			pc := s.planned[idx]
			last := len(s.planned) - 1
			s.planned[idx] = s.planned[last]
			s.planned = s.planned[:last]
			s.SetFreq(pc.freq)
		case evArrival:
			r := s.wl.Requests[s.nextArr]
			s.nextArr++
			s.arrive(r)
		case evTimer:
			tm := s.timers[idx]
			last := len(s.timers) - 1
			s.timers[idx] = s.timers[last]
			s.timers = s.timers[:last]
			if tm.tag == SampleTimerTag {
				// Reserved sampler timer: engine-internal, never surfaced
				// to any policy — identical to the calendar loop.
				s.sampleTick()
			} else {
				s.syncHead()
				s.pol.OnTimer(s, tm.tag)
			}
		}
	}
}

// nextEventLinear picks the earliest pending event by scanning every list;
// ties break by the priority completion < planned < arrival < timer, then by
// insertion seq within a kind.
//
//gemini:hotpath
func (s *Sim) nextEventLinear() (kind int, at float64, idx int) {
	kind, at, idx = evNone, math.Inf(1), -1
	var seq uint64

	if c := s.completionTime(); c < at {
		kind, at = evCompletion, c
	}
	for i := range s.planned {
		pc := &s.planned[i]
		t := math.Max(pc.at, s.now)
		//gemini:allow floatcmp -- exact timestamp ties are the common same-instant case; broken by (kind, seq)
		if t < at || (t == at && (kind > evPlanned || (kind == evPlanned && pc.seq < seq))) {
			kind, at, idx, seq = evPlanned, t, i, pc.seq
		}
	}
	if s.nextArr < len(s.wl.Requests) {
		t := s.wl.Requests[s.nextArr].ArrivalMs
		//gemini:allow floatcmp -- exact timestamp ties are the common same-instant case; broken by event-kind priority
		if t < at || (t == at && kind > evArrival) {
			kind, at, idx = evArrival, t, -1
		}
	}
	for i := range s.timers {
		tm := &s.timers[i]
		t := math.Max(tm.at, s.now)
		//gemini:allow floatcmp -- exact timestamp ties are the common same-instant case; broken by (kind, seq)
		if t < at || (t == at && (kind > evTimer || (kind == evTimer && tm.seq < seq))) {
			kind, at, idx, seq = evTimer, t, i, tm.seq
		}
	}
	// Timers beyond the workload horizon with nothing left to do would spin
	// the loop forever in policies that always re-arm (Pegasus): stop once
	// all requests have been served and the horizon is passed.
	if kind == evTimer && s.nextArr >= len(s.wl.Requests) && s.qlen() == 0 && at > s.wl.DurationMs {
		return evNone, 0, -1
	}
	return kind, at, idx
}
