package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gemini/internal/cpu"
	"gemini/internal/par"
	"gemini/internal/stats"
	"gemini/internal/telemetry"
)

// Cluster topology: shards × replicas above the per-core broker.
//
// The paper's evaluation stops at 12 single-thread ISNs behind one aggregator
// (§V). This layer scales the same discrete-event machinery to a datacenter
// topology: the index is split over Shards shards, each shard is served by
// ReplicasPerShard replica cores, and every query fans out to exactly one
// replica per shard. A pluggable Router picks the replica; the query's
// latency is its straggler — the slowest shard's completion — which is what
// makes replicas-per-shard vs. tail-latency vs. watts a real capacity-planning
// trade-off ("Capacity Planning for Vertical Search Engines").
//
// Determinism discipline (the PR 6 contract, extended to fan-out/merge):
// routing runs as a serial pre-pass over arrivals using only *virtual*
// per-replica state (vFinish, the modeled DVFS frequency, cap ceilings), so
// replica assignment is a pure function of (workload, router, seed, cap) and
// never of execution interleaving. The per-replica simulations then share
// nothing and run on OS threads; aggregation walks cores in index order,
// query stragglers are assembled in arrival order, and telemetry is captured
// per core and replayed in core order. RunTopologyWorkers is therefore
// byte-identical to the serial run under every router — results, latencies,
// decision rings, and spans (TestTopologyWorkersMatchesSerial,
// FuzzRouterEquivalence).
//
// Routing randomness (RouterPowerAware's tie-breaks) draws from the
// PartitionedRNG routing stream, so enabling or disabling a router — or
// changing how often it draws — can never perturb workload generation.

// Topology is the cluster shape: Shards index partitions, each served by
// ReplicasPerShard replica cores. The zero value normalizes to 1×1, which is
// exactly one single-core simulation.
type Topology struct {
	Shards           int
	ReplicasPerShard int
}

// normalized clamps both dimensions to at least 1.
func (t Topology) normalized() Topology {
	if t.Shards < 1 {
		t.Shards = 1
	}
	if t.ReplicasPerShard < 1 {
		t.ReplicasPerShard = 1
	}
	return t
}

// Cores returns the total simulated core count, Shards × ReplicasPerShard.
func (t Topology) Cores() int {
	t = t.normalized()
	return t.Shards * t.ReplicasPerShard
}

// Core maps (shard, replica) to the flat core index.
func (t Topology) Core(shard, replica int) int {
	return shard*t.ReplicasPerShard + replica
}

// RouteState is the virtual per-replica view routers decide on during the
// routing pre-pass. It deliberately mirrors the broker's accounting — vFinish
// advances by each request's base service time at the default frequency — so
// RouterLeastLoaded over a single shard reproduces Dispatch exactly, and it
// adds the two signals the new routers need: a modeled per-replica DVFS
// frequency (what a deadline-targeting policy like Gemini would currently
// run, given the replica's backlog) and the PowerCapCoordinator's per-replica
// frequency ceilings.
type RouteState struct {
	topo     Topology
	budgetMs float64
	ladder   *cpu.Ladder
	now      float64

	vFinish  []float64  // virtual finish time per core (broker accounting)
	ceilings []cpu.Freq // cap-coordinator ceilings (ladder.Max() when uncapped)
	rr       []int      // per-shard round-robin cursors
	rng      *rand.Rand // PartitionedRNG routing stream
}

func newRouteState(topo Topology, budgetMs float64, ladder *cpu.Ladder, rng *rand.Rand) *RouteState {
	cores := topo.Cores()
	st := &RouteState{
		topo:     topo,
		budgetMs: budgetMs,
		ladder:   ladder,
		vFinish:  make([]float64, cores),
		ceilings: make([]cpu.Freq, cores),
		rr:       make([]int, topo.normalized().Shards),
		rng:      rng,
	}
	for c := range st.ceilings {
		st.ceilings[c] = ladder.Max()
	}
	return st
}

// Replicas returns the replicas-per-shard count.
func (st *RouteState) Replicas() int { return st.topo.normalized().ReplicasPerShard }

// Now returns the routing pass's current time (the arrival being routed).
func (st *RouteState) Now() float64 { return st.now }

// VFinish returns the replica's virtual finish time: when its queue would
// drain executing everything at the default frequency.
func (st *RouteState) VFinish(shard, replica int) float64 {
	return st.vFinish[st.topo.Core(shard, replica)]
}

// Ceiling returns the replica's current cap-coordinator frequency ceiling.
func (st *RouteState) Ceiling(shard, replica int) cpu.Freq {
	return st.ceilings[st.topo.Core(shard, replica)]
}

// PlannedFreq returns the replica's modeled DVFS frequency: the ladder level
// a deadline-targeting per-core policy would plan to drain the replica's
// current backlog within the latency budget, clamped to the cap ceiling. An
// idle replica cruises at the ladder floor. This is the routing layer's model
// of the per-core DVFS state — the same modeled-load idiom as vFinish — and
// is what RouterPowerAware steers on.
func (st *RouteState) PlannedFreq(shard, replica int) cpu.Freq {
	return st.plannedFreqCore(st.topo.Core(shard, replica), st.now)
}

func (st *RouteState) plannedFreqCore(c int, now float64) cpu.Freq {
	return plannedFreqFor(st.vFinish[c]-now, st.budgetMs, st.ladder, st.ceilings[c])
}

// plannedFreqFor is the shared modeled-DVFS law: backlogMs of work-time at
// the default frequency must drain within budgetMs, so the planned frequency
// is FDefault·backlog/budget clamped up to a ladder level and down to the
// ceiling. Zero backlog (or a degenerate budget) models an idle core at the
// ladder floor.
func plannedFreqFor(backlogMs, budgetMs float64, ladder *cpu.Ladder, ceiling cpu.Freq) cpu.Freq {
	if backlogMs <= 0 {
		return ladder.Min()
	}
	f := ladder.Max()
	if budgetMs > 0 {
		f = ladder.ClampUp(cpu.Freq(float64(cpu.FDefault) * backlogMs / budgetMs))
	}
	if f > ceiling {
		f = ceiling
	}
	if f < ladder.Min() {
		f = ladder.Min()
	}
	return f
}

// EstFinishMs estimates when the replica would finish r if routed there:
// queue drain plus r's base service at the replica's ceiling-limited service
// frequency. Deadline- and power-aware routing both rank on this.
func (st *RouteState) EstFinishMs(shard, replica int, r *Request) float64 {
	c := st.topo.Core(shard, replica)
	start := st.now
	if st.vFinish[c] > start {
		start = st.vFinish[c]
	}
	sf := st.ceilings[c]
	if sf > cpu.FDefault {
		sf = cpu.FDefault
	}
	return start + cpu.TimeFor(r.BaseWork, sf)
}

// assign commits r to the core, advancing its virtual finish time with the
// broker's exact accounting (start at max(arrival, vFinish), serve BaseWork
// at the default frequency).
func (st *RouteState) assign(c int, r *Request) {
	start := r.ArrivalMs
	if st.vFinish[c] > start {
		start = st.vFinish[c]
	}
	st.vFinish[c] = start + cpu.TimeFor(r.BaseWork, cpu.FDefault)
}

// Router picks, for each query and shard, the replica that serves the
// query's fan-out on that shard. Pick returns a replica index in
// [0, Replicas()); implementations must be deterministic functions of the
// RouteState (whose rng is the seeded routing stream — the only sanctioned
// randomness source).
type Router interface {
	Name() string
	Pick(st *RouteState, shard int, r *Request) int
}

// RouterRoundRobin cycles through a shard's replicas in order — the
// state-blind baseline every informed router must beat. Draw-free.
type RouterRoundRobin struct{}

func (RouterRoundRobin) Name() string { return "round-robin" }

func (RouterRoundRobin) Pick(st *RouteState, shard int, r *Request) int {
	j := st.rr[shard]
	st.rr[shard] = (j + 1) % st.Replicas()
	return j
}

// RouterLeastLoaded picks the replica with the earliest virtual finish time,
// first minimal index on exact ties — the §V broker's dispatch rule lifted to
// a shard's replica set. Over a single shard it reproduces Dispatch exactly
// (TestRouterLeastLoadedMatchesBroker). Draw-free.
type RouterLeastLoaded struct{}

func (RouterLeastLoaded) Name() string { return "least-loaded" }

func (RouterLeastLoaded) Pick(st *RouteState, shard int, r *Request) int {
	best := 0
	for j := 1; j < st.Replicas(); j++ {
		if st.VFinish(shard, j) < st.VFinish(shard, best) {
			best = j
		}
	}
	return best
}

// RouterDeadlineAware packs onto loaded replicas while the deadline still
// holds: among replicas whose ceiling-aware estimated finish meets r's
// deadline it picks the latest-finishing one (keeping the others draining
// toward idle, where the DVFS policies park them at the ladder floor), and
// falls back to the earliest estimated finish when no replica can make the
// deadline. Unlike RouterLeastLoaded it sees cap throttling: a replica with a
// depressed frequency ceiling serves slower and stops being a packing target
// before it becomes a straggler. Draw-free (ties take the lowest index).
type RouterDeadlineAware struct{}

func (RouterDeadlineAware) Name() string { return "deadline-aware" }

func (RouterDeadlineAware) Pick(st *RouteState, shard int, r *Request) int {
	bestMeet, bestMeetEst := -1, math.Inf(-1)
	bestAny, bestAnyEst := 0, math.Inf(1)
	for j := 0; j < st.Replicas(); j++ {
		est := st.EstFinishMs(shard, j, r)
		if est < bestAnyEst {
			bestAny, bestAnyEst = j, est
		}
		if est <= r.DeadlineMs && est > bestMeetEst {
			bestMeet, bestMeetEst = j, est
		}
	}
	if bestMeet >= 0 {
		return bestMeet
	}
	return bestAny
}

// RouterPowerAware steers queries to replicas whose modeled DVFS frequency is
// already high: work added to an already-hot core rides frequency the CMOS
// model is burning anyway, while the shard's remaining replicas stay parked
// at the ladder floor — the consolidation that makes a power cap cheap to
// honor. Among deadline-feasible replicas it prefers the highest planned
// frequency, then the earliest virtual finish; exact ties (the common
// all-idle case) break by a routing-stream draw, so equally-cold replicas
// share the wake-up load without perturbing any other subsystem's stream.
// With no feasible replica it falls back to the earliest estimated finish.
type RouterPowerAware struct{}

func (RouterPowerAware) Name() string { return "power-aware" }

func (RouterPowerAware) Pick(st *RouteState, shard int, r *Request) int {
	reps := st.Replicas()
	bestAny, bestAnyEst := 0, math.Inf(1)
	var tied []int
	var bestFreq cpu.Freq
	var bestVF float64
	for j := 0; j < reps; j++ {
		est := st.EstFinishMs(shard, j, r)
		if est < bestAnyEst {
			bestAny, bestAnyEst = j, est
		}
		if est > r.DeadlineMs {
			continue
		}
		pf, vf := st.PlannedFreq(shard, j), st.VFinish(shard, j)
		switch {
		//gemini:allow floatcmp -- planned freqs are discrete ladder levels and vFinish ties are exact by construction; equal scores must pool for the tie-break draw
		case len(tied) == 0 || pf > bestFreq || (pf == bestFreq && vf < bestVF):
			bestFreq, bestVF = pf, vf
			tied = tied[:0]
			tied = append(tied, j)
		//gemini:allow floatcmp -- exact-tie pooling, same as above
		case pf == bestFreq && vf == bestVF:
			tied = append(tied, j)
		}
	}
	if len(tied) == 0 {
		return bestAny
	}
	if len(tied) == 1 {
		return tied[0]
	}
	return tied[st.rng.Intn(len(tied))]
}

// RouterByName resolves the flag spellings used by cmd/geminisim.
func RouterByName(name string) (Router, error) {
	switch name {
	case "round-robin", "rr":
		return RouterRoundRobin{}, nil
	case "least-loaded", "ll":
		return RouterLeastLoaded{}, nil
	case "deadline-aware", "deadline":
		return RouterDeadlineAware{}, nil
	case "power-aware", "power":
		return RouterPowerAware{}, nil
	default:
		return nil, fmt.Errorf("sim: unknown router %q (round-robin, least-loaded, deadline-aware, power-aware)", name)
	}
}

// RouterNames lists the canonical router spellings in presentation order.
var RouterNames = []string{"round-robin", "least-loaded", "deadline-aware", "power-aware"}

// TopologyConfig parameterizes a shards × replicas cluster run.
type TopologyConfig struct {
	// Sim is the per-core simulator configuration (engine, power model,
	// telemetry sinks — sinks are captured per core and replayed in core
	// order exactly as in RunClusterWorkers).
	Sim Config
	// Topology is the cluster shape; the zero value runs 1×1.
	Topology Topology
	// Router picks the replica per (query, shard); nil means
	// RouterLeastLoaded.
	Router Router
	// Seed roots the run's PartitionedRNG; only the routing stream is drawn
	// from here, so workload generation (seeded by its own builder) is
	// untouched by routing randomness.
	Seed int64
	// PowerCapW, when positive, enables the PowerCapCoordinator at this
	// cluster power cap (modeled watts: uncore + every replica core under
	// the CMOS model).
	PowerCapW float64
	// CapIntervalMs is the coordinator's control interval (default
	// DefaultCapIntervalMs).
	CapIntervalMs float64
	// Metrics, when non-nil, receives the per-replica route counts,
	// cap-throttle totals, modeled cluster power, and query straggler
	// latencies after the run completes (publication is post-merge and
	// serial, so it never affects run determinism).
	Metrics *telemetry.ClusterMetrics
}

// TopologyResult aggregates a shards × replicas run. Per-core results keep
// the broker-cluster semantics (each entry is one replica core); the
// query-level metrics account fan-out: a query completes when its slowest
// shard completes, is dropped if any shard dropped it, and violates its
// deadline if the straggler finished late.
type TopologyResult struct {
	Topology Topology
	Router   string
	PerCore  []*Result

	// Query-level (fan-out/straggler) accounting.
	Queries    int
	Completed  int
	Dropped    int // queries with at least one dropped shard request
	Violations int // fully-completed queries whose straggler missed the deadline
	// QueryLatencies holds each completed query's straggler latency
	// (slowest shard finish − arrival), sorted ascending.
	QueryLatencies []float64

	// Shard-request-level sums over cores (the per-core Results' view).
	ShardRequests int
	ShardDrops    int

	Events     uint64
	EnergyMJ   float64
	DurationMs float64

	// RouteCounts is the number of shard requests routed to each core.
	RouteCounts []uint64

	// Power-cap coordinator outcome (zero-valued when uncapped).
	CapW              float64
	CapIntervalMs     float64
	CapThrottles      int       // ceiling step-downs applied across all intervals
	ModeledPowerW     []float64 // modeled cluster watts at each control boundary, post-adjustment
	PeakModeledPowerW float64
}

// RunTopology routes wl over the topology and simulates every replica core
// serially. mkPolicy is called once per core (possibly concurrently under
// RunTopologyWorkers) and must return policies sharing no mutable state.
func RunTopology(tc TopologyConfig, wl *Workload, mkPolicy func(core int) Policy) *TopologyResult {
	return RunTopologyWorkers(tc, wl, 1, mkPolicy)
}

// RunTopologyWorkers is RunTopology sharded over `workers` OS threads,
// byte-identical to the serial run under every router (see the package
// comment's determinism discipline).
func RunTopologyWorkers(tc TopologyConfig, wl *Workload, workers int, mkPolicy func(core int) Policy) *TopologyResult {
	topo := tc.Topology.normalized()
	router := tc.Router
	if router == nil {
		router = RouterLeastLoaded{}
	}
	cfg := tc.Sim
	if cfg.Ladder == nil {
		cfg.Ladder = cpu.DefaultLadder()
	}
	if cfg.Power == nil {
		cfg.Power = cpu.DefaultPowerModel()
	}
	cores := topo.Cores()

	// --- routing pre-pass (serial, virtual state only) --------------------
	st := newRouteState(topo, wl.BudgetMs, cfg.Ladder, NewPartitionedRNG(tc.Seed).Routing())
	var coord *PowerCapCoordinator
	if tc.PowerCapW > 0 {
		coord = newPowerCapCoordinator(tc.PowerCapW, tc.CapIntervalMs, cfg.Power, cfg.Ladder, st)
	}
	parts := make([]*Workload, cores)
	for c := range parts {
		parts[c] = &Workload{BudgetMs: wl.BudgetMs, DurationMs: wl.DurationMs, Preds: wl.Preds}
	}
	clones := make([][]*Request, len(wl.Requests))
	routeCounts := make([]uint64, cores)
	reps := topo.ReplicasPerShard
	for qi, r := range wl.Requests {
		st.now = r.ArrivalMs
		if coord != nil {
			coord.advanceTo(r.ArrivalMs)
		}
		fan := make([]*Request, topo.Shards)
		for s := 0; s < topo.Shards; s++ {
			j := router.Pick(st, s, r)
			if j < 0 || j >= reps {
				j = 0
			}
			c := topo.Core(s, j)
			clone := &Request{
				ID:         r.ID,
				Query:      r.Query,
				Features:   r.Features,
				BaseWork:   r.BaseWork,
				WorkTotal:  r.WorkTotal,
				ArrivalMs:  r.ArrivalMs,
				DeadlineMs: r.DeadlineMs,
			}
			parts[c].Requests = append(parts[c].Requests, clone)
			fan[s] = clone
			routeCounts[c]++
			st.assign(c, r)
		}
		clones[qi] = fan
	}
	if coord != nil {
		coord.finishTo(wl.DurationMs)
	}

	// --- independent per-core simulations (sharded) -----------------------
	mk := mkPolicy
	if coord != nil {
		inner := mkPolicy
		mk = func(c int) Policy { return wrapCapped(inner(c), coord.Schedule(c)) }
	}
	results := make([]*Result, cores)
	// Telemetry sinks are shared mutable state: capture per core, replay or
	// merge in core order (the RunClusterWorkers discipline). Tracer/span
	// capture is needed only under concurrency; a Series is always captured
	// per core, because its merge is window arithmetic, not concatenation.
	captureTr := workers > 1 && cfg.Tracer != nil
	captureSp := workers > 1 && cfg.Spans != nil
	var tracers []*telemetry.Tracer
	var spans []*telemetry.SpanTracer
	var series []*telemetry.Timeseries
	if captureTr {
		tracers = make([]*telemetry.Tracer, cores)
	}
	if captureSp {
		spans = make([]*telemetry.SpanTracer, cores)
	}
	if cfg.Series != nil {
		series = make([]*telemetry.Timeseries, cores)
	}
	par.Run(workers, cores, func(c int) {
		ccfg := cfg
		if captureTr {
			tracers[c] = telemetry.NewTracer(len(parts[c].Requests))
			ccfg.Tracer = tracers[c]
		}
		if captureSp {
			spans[c] = telemetry.NewSpanAccumulator()
			ccfg.Spans = spans[c]
		}
		if series != nil {
			series[c] = coreSeries(cfg.Series, parts[c].DurationMs)
			ccfg.Series = series[c]
		}
		results[c] = Run(ccfg, parts[c], mk(c))
	})
	for c := 0; c < cores && (captureTr || captureSp); c++ {
		if captureTr {
			for _, d := range tracers[c].Ring().Snapshot(0) {
				cfg.Tracer.Emit(d)
			}
		}
		if captureSp {
			cfg.Spans.EmitBatch(spans[c].Spans())
		}
	}
	if series != nil {
		mergeTimeseries(cfg.Series, series, parts, cfg.Power.UncoreW, coord)
	}

	// --- deterministic merge ----------------------------------------------
	tr := &TopologyResult{
		Topology:    topo,
		Router:      router.Name(),
		PerCore:     results,
		Queries:     len(wl.Requests),
		DurationMs:  wl.DurationMs,
		RouteCounts: routeCounts,
	}
	for _, res := range results {
		tr.ShardRequests += res.Total
		tr.ShardDrops += res.Dropped
		tr.Events += res.Events
		tr.EnergyMJ += res.EnergyMJ
	}
	tr.QueryLatencies = make([]float64, 0, len(wl.Requests))
	for qi, r := range wl.Requests {
		dropped := false
		finish := math.Inf(-1)
		for _, cl := range clones[qi] {
			if cl.Dropped {
				dropped = true
			}
			if cl.FinishMs > finish {
				finish = cl.FinishMs
			}
		}
		switch {
		case dropped:
			tr.Dropped++
		default:
			tr.Completed++
			tr.QueryLatencies = append(tr.QueryLatencies, finish-r.ArrivalMs)
			if finish > r.DeadlineMs {
				tr.Violations++
			}
		}
	}
	sort.Float64s(tr.QueryLatencies)
	if coord != nil {
		tr.CapW = coord.capW
		tr.CapIntervalMs = coord.intervalMs
		tr.CapThrottles = coord.throttles
		tr.ModeledPowerW = coord.seriesW
		for _, w := range coord.seriesW {
			if w > tr.PeakModeledPowerW {
				tr.PeakModeledPowerW = w
			}
		}
	}
	if tc.Metrics != nil {
		tr.publish(tc.Metrics)
	}
	return tr
}

// publish records the run's route/throttle/power telemetry (serial,
// post-merge — determinism of the run itself is unaffected).
func (tr *TopologyResult) publish(m *telemetry.ClusterMetrics) {
	reps := tr.Topology.ReplicasPerShard
	for c, n := range tr.RouteCounts {
		m.AddRoutes(c/reps, c%reps, n)
	}
	m.AddCapThrottles(uint64(tr.CapThrottles))
	if n := len(tr.ModeledPowerW); n > 0 {
		m.SetModeledPowerW(tr.ModeledPowerW[n-1])
	}
	for _, l := range tr.QueryLatencies {
		m.ObserveQueryLatency(l)
	}
}

// ViolationRate returns the fraction of queries whose straggler missed the
// deadline among all queries (drops excluded, as in Result).
func (tr *TopologyResult) ViolationRate() float64 {
	if tr.Queries == 0 {
		return 0
	}
	return float64(tr.Violations) / float64(tr.Queries)
}

// DropRate returns the fraction of queries with at least one dropped shard.
func (tr *TopologyResult) DropRate() float64 {
	if tr.Queries == 0 {
		return 0
	}
	return float64(tr.Dropped) / float64(tr.Queries)
}

// TailLatencyMs returns the p-th percentile query (straggler) latency.
func (tr *TopologyResult) TailLatencyMs(p float64) float64 {
	if len(tr.QueryLatencies) == 0 {
		return 0
	}
	return stats.PercentileSorted(tr.QueryLatencies, p)
}

// ClusterPowerW returns the modeled average cluster power: uncore plus every
// simulated replica core's average power under the CMOS model.
func (tr *TopologyResult) ClusterPowerW(m *cpu.PowerModel) float64 {
	p := m.UncoreW
	for _, res := range tr.PerCore {
		p += res.AvgCorePowW
	}
	return p
}
