package sim

import (
	"math"
	"math/rand"
	"testing"

	"gemini/internal/cpu"
)

func clusterWorkload(n int, gapMs, serviceMs float64, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	wl := &Workload{BudgetMs: 40}
	at := 0.0
	for i := 0; i < n; i++ {
		at += rng.ExpFloat64() * gapMs
		w := cpu.Work(serviceMs * float64(cpu.FDefault) * (0.5 + rng.Float64()))
		wl.Requests = append(wl.Requests, &Request{
			ID: i, BaseWork: w, WorkTotal: w,
			ArrivalMs: at, DeadlineMs: at + 40,
		})
	}
	wl.DurationMs = at + 100
	return wl
}

func TestDispatchPartitionsAll(t *testing.T) {
	wl := clusterWorkload(200, 5, 8, 1)
	parts := Dispatch(wl, 4)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p.Requests)
		// Arrival order must be preserved within each core.
		for i := 1; i < len(p.Requests); i++ {
			if p.Requests[i].ArrivalMs < p.Requests[i-1].ArrivalMs {
				t.Fatal("per-core arrivals out of order")
			}
		}
		if p.BudgetMs != 40 || p.DurationMs != wl.DurationMs {
			t.Fatal("partition metadata lost")
		}
	}
	if total != 200 {
		t.Fatalf("dispatched %d of 200", total)
	}
}

func TestDispatchBalances(t *testing.T) {
	wl := clusterWorkload(400, 2, 8, 2)
	parts := Dispatch(wl, 4)
	for c, p := range parts {
		if len(p.Requests) < 50 || len(p.Requests) > 150 {
			t.Errorf("core %d got %d of 400 requests — badly balanced", c, len(p.Requests))
		}
	}
}

func TestRunClusterRelievesOverload(t *testing.T) {
	// 8 ms mean service at 2 ms mean gap: a single core is hopelessly
	// overloaded; four cores handle it.
	wl1 := clusterWorkload(300, 2, 8, 3)
	single := Run(DefaultConfig(), wl1, &fixedPolicy{f: cpu.FDefault})
	wl2 := clusterWorkload(300, 2, 8, 3)
	cluster := RunCluster(DefaultConfig(), wl2, 4, func(int) Policy { return &fixedPolicy{f: cpu.FDefault} })

	if cluster.Total != 300 || cluster.Completed != 300 {
		t.Fatalf("cluster completed %d of %d", cluster.Completed, cluster.Total)
	}
	if cluster.ViolationRate() >= single.ViolationRate() {
		t.Errorf("cluster violation rate %v not below single-core %v",
			cluster.ViolationRate(), single.ViolationRate())
	}
	if cluster.TailLatencyMs(95) >= single.TailLatencyMs(95) {
		t.Errorf("cluster tail %v not below single %v",
			cluster.TailLatencyMs(95), single.TailLatencyMs(95))
	}
}

func TestClusterSocketPower(t *testing.T) {
	wl := clusterWorkload(100, 10, 5, 4)
	m := cpu.DefaultPowerModel()
	cluster := RunCluster(DefaultConfig(), wl, 4, func(int) Policy { return &fixedPolicy{f: cpu.FDefault} })
	p := cluster.SocketPowerW(m)
	// 4 simulated + 8 idle-floor cores + uncore: must be a sane wattage.
	if p < m.UncoreW || p > 60 {
		t.Errorf("socket power = %v", p)
	}
	// Energy must equal the sum of per-core energies.
	sum := 0.0
	for _, r := range cluster.PerCore {
		sum += r.EnergyMJ
	}
	if math.Abs(sum-cluster.EnergyMJ) > 1e-9 {
		t.Errorf("energy aggregation mismatch")
	}
}

func TestClusterSingleCoreDegenerate(t *testing.T) {
	wl := clusterWorkload(50, 20, 5, 5)
	cluster := RunCluster(DefaultConfig(), wl, 0, func(int) Policy { return &fixedPolicy{f: cpu.FDefault} })
	if len(cluster.PerCore) != 1 {
		t.Fatalf("cores = %d, want clamp to 1", len(cluster.PerCore))
	}
	if cluster.Total != 50 {
		t.Errorf("total = %d", cluster.Total)
	}
}

func TestClusterEmptyWorkload(t *testing.T) {
	wl := &Workload{BudgetMs: 40, DurationMs: 100}
	cluster := RunCluster(DefaultConfig(), wl, 3, func(int) Policy { return &fixedPolicy{f: cpu.FDefault} })
	if cluster.ViolationRate() != 0 || cluster.TailLatencyMs(95) != 0 {
		t.Errorf("empty cluster metrics: %+v", cluster)
	}
}
