package sim

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/telemetry"
)

func clusterWorkload(n int, gapMs, serviceMs float64, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	wl := &Workload{BudgetMs: 40}
	at := 0.0
	for i := 0; i < n; i++ {
		at += rng.ExpFloat64() * gapMs
		w := cpu.Work(serviceMs * float64(cpu.FDefault) * (0.5 + rng.Float64()))
		wl.Requests = append(wl.Requests, &Request{
			ID: i, BaseWork: w, WorkTotal: w,
			ArrivalMs: at, DeadlineMs: at + 40,
		})
	}
	wl.DurationMs = at + 100
	return wl
}

func TestDispatchPartitionsAll(t *testing.T) {
	wl := clusterWorkload(200, 5, 8, 1)
	parts := Dispatch(wl, 4)
	if len(parts) != 4 {
		t.Fatalf("parts = %d", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p.Requests)
		// Arrival order must be preserved within each core.
		for i := 1; i < len(p.Requests); i++ {
			if p.Requests[i].ArrivalMs < p.Requests[i-1].ArrivalMs {
				t.Fatal("per-core arrivals out of order")
			}
		}
		if p.BudgetMs != 40 || p.DurationMs != wl.DurationMs {
			t.Fatal("partition metadata lost")
		}
	}
	if total != 200 {
		t.Fatalf("dispatched %d of 200", total)
	}
}

func TestDispatchBalances(t *testing.T) {
	wl := clusterWorkload(400, 2, 8, 2)
	parts := Dispatch(wl, 4)
	for c, p := range parts {
		if len(p.Requests) < 50 || len(p.Requests) > 150 {
			t.Errorf("core %d got %d of 400 requests — badly balanced", c, len(p.Requests))
		}
	}
}

func TestRunClusterRelievesOverload(t *testing.T) {
	// 8 ms mean service at 2 ms mean gap: a single core is hopelessly
	// overloaded; four cores handle it.
	wl1 := clusterWorkload(300, 2, 8, 3)
	single := Run(DefaultConfig(), wl1, &FixedPolicy{F: cpu.FDefault})
	wl2 := clusterWorkload(300, 2, 8, 3)
	cluster := RunCluster(DefaultConfig(), wl2, 4, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })

	if cluster.Total != 300 || cluster.Completed != 300 {
		t.Fatalf("cluster completed %d of %d", cluster.Completed, cluster.Total)
	}
	if cluster.ViolationRate() >= single.ViolationRate() {
		t.Errorf("cluster violation rate %v not below single-core %v",
			cluster.ViolationRate(), single.ViolationRate())
	}
	if cluster.TailLatencyMs(95) >= single.TailLatencyMs(95) {
		t.Errorf("cluster tail %v not below single %v",
			cluster.TailLatencyMs(95), single.TailLatencyMs(95))
	}
}

func TestClusterSocketPower(t *testing.T) {
	wl := clusterWorkload(100, 10, 5, 4)
	m := cpu.DefaultPowerModel()
	cluster := RunCluster(DefaultConfig(), wl, 4, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
	p := cluster.SocketPowerW(m)
	// 4 simulated + 8 idle-floor cores + uncore: must be a sane wattage.
	if p < m.UncoreW || p > 60 {
		t.Errorf("socket power = %v", p)
	}
	// Energy must equal the sum of per-core energies.
	sum := 0.0
	for _, r := range cluster.PerCore {
		sum += r.EnergyMJ
	}
	if math.Abs(sum-cluster.EnergyMJ) > 1e-9 {
		t.Errorf("energy aggregation mismatch")
	}
}

func TestClusterSingleCoreDegenerate(t *testing.T) {
	wl := clusterWorkload(50, 20, 5, 5)
	cluster := RunCluster(DefaultConfig(), wl, 0, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
	if len(cluster.PerCore) != 1 {
		t.Fatalf("cores = %d, want clamp to 1", len(cluster.PerCore))
	}
	if cluster.Total != 50 {
		t.Errorf("total = %d", cluster.Total)
	}
}

func TestClusterEmptyWorkload(t *testing.T) {
	wl := &Workload{BudgetMs: 40, DurationMs: 100}
	cluster := RunCluster(DefaultConfig(), wl, 3, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
	if cluster.ViolationRate() != 0 || cluster.TailLatencyMs(95) != 0 {
		t.Errorf("empty cluster metrics: %+v", cluster)
	}
}

// dispatchLinearRef is the original O(cores) scan broker, kept here as the
// reference for the heap broker's tie-break contract: first minimal index.
func dispatchLinearRef(wl *Workload, cores int) [][]int {
	assign := make([][]int, cores)
	vFinish := make([]float64, cores)
	for _, r := range wl.Requests {
		best := 0
		for c := 1; c < cores; c++ {
			if vFinish[c] < vFinish[best] {
				best = c
			}
		}
		start := r.ArrivalMs
		if vFinish[best] > start {
			start = vFinish[best]
		}
		vFinish[best] = start + cpu.TimeFor(r.BaseWork, cpu.FDefault)
		assign[best] = append(assign[best], r.ID)
	}
	return assign
}

func TestDispatchHeapMatchesLinear(t *testing.T) {
	// The heap broker must assign every request to the exact core the linear
	// first-minimal-index scan picks — including tie-heavy workloads where
	// many cores share a virtual finish time.
	for seed := int64(1); seed <= 10; seed++ {
		for _, cores := range []int{1, 2, 3, 7, 16, 33} {
			wl := clusterWorkload(500, 3, 6, seed)
			if seed%2 == 0 {
				// Identical works + identical arrivals: all-ties stress.
				for _, r := range wl.Requests {
					r.BaseWork = 27
					r.ArrivalMs = float64(int(r.ArrivalMs/5)) * 5
				}
			}
			want := dispatchLinearRef(wl, cores)
			parts := Dispatch(wl, cores)
			for c := range parts {
				got := make([]int, 0, len(parts[c].Requests))
				for _, r := range parts[c].Requests {
					got = append(got, r.ID)
				}
				if !reflect.DeepEqual(got, want[c]) && !(len(got) == 0 && len(want[c]) == 0) {
					t.Fatalf("seed %d cores %d: core %d assignment diverges:\n  heap:   %v\n  linear: %v",
						seed, cores, c, got, want[c])
				}
			}
		}
	}
}

func TestMergeSortedMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(8)
		lists := make([][]float64, k)
		var all []float64
		for i := range lists {
			n := rng.Intn(40)
			for j := 0; j < n; j++ {
				// Quantized values force cross-list duplicates.
				v := float64(rng.Intn(20))
				lists[i] = append(lists[i], v)
				all = append(all, v)
			}
			sort.Float64s(lists[i])
		}
		got := mergeSorted(lists)
		sort.Float64s(all)
		if len(all) == 0 {
			if got != nil {
				t.Fatalf("trial %d: empty merge returned %v", trial, got)
			}
			continue
		}
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d: merge diverges from sort", trial)
		}
	}
}

// mkCountingPolicy builds policies that exercise timers and planned changes
// per core, so the sharded telemetry path has real traffic to merge.
func mkCountingPolicy(core int) Policy {
	return &tieStormPolicy{}
}

func TestClusterWorkersMatchesSerial(t *testing.T) {
	// The sharded run must be byte-identical to the serial run: per-core
	// results, merged aggregates, decision traces, and spans.
	for _, workers := range []int{2, 4, 9} {
		runOnce := func(w int) (*ClusterResult, []telemetry.Decision, []telemetry.Span) {
			wl := clusterWorkload(600, 2, 6, 17)
			cfg := DefaultConfig()
			cfg.RecordFreqTrace = true
			cfg.Tracer = telemetry.NewTracer(700)
			cfg.Spans = telemetry.NewSpanTracer(4000)
			cr := RunClusterWorkers(cfg, wl, 8, w, mkCountingPolicy)
			return cr, cfg.Tracer.Ring().Snapshot(0), cfg.Spans.Spans()
		}
		crS, decS, spS := runOnce(1)
		crP, decP, spP := runOnce(workers)
		if !reflect.DeepEqual(crS, crP) {
			t.Fatalf("workers=%d: cluster results diverge from serial", workers)
		}
		if !reflect.DeepEqual(decS, decP) {
			t.Fatalf("workers=%d: decision traces diverge (%d vs %d)", workers, len(decS), len(decP))
		}
		if !reflect.DeepEqual(spS, spP) {
			t.Fatalf("workers=%d: span traces diverge (%d vs %d)", workers, len(spS), len(spP))
		}
	}
}

func TestClusterEventsAggregated(t *testing.T) {
	wl := clusterWorkload(100, 5, 5, 21)
	cr := RunCluster(DefaultConfig(), wl, 4, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
	var sum uint64
	for _, r := range cr.PerCore {
		sum += r.Events
	}
	if cr.Events != sum || cr.Events == 0 {
		t.Errorf("Events = %d, per-core sum = %d", cr.Events, sum)
	}
}
