package sim

import (
	"sort"

	"gemini/internal/cpu"
	"gemini/internal/stats"
)

// Cluster support: the paper's multi-core plan (§V) — "maintain a separate
// queue for each core and have a global broker to distribute the incoming
// requests to each core ... each core will manage its power consumption
// independently by using Gemini's DVFS scheme".
//
// The broker dispatches on least-expected-work: it tracks a virtual finish
// time per core (advanced by each request's base service time at the default
// frequency) and routes every arrival to the core that would start it
// soonest. Each core then runs as an independent single-ISN simulation.

// ClusterResult aggregates the per-core results of a dispatched run.
type ClusterResult struct {
	PerCore []*Result

	Total      int
	Completed  int
	Dropped    int
	Violations int
	EnergyMJ   float64
	DurationMs float64
	Latencies  []float64 // merged, sorted
}

// RunCluster partitions the workload over `cores` queues with the broker and
// simulates each core with its own policy instance from mkPolicy.
func RunCluster(cfg Config, wl *Workload, cores int, mkPolicy func(core int) Policy) *ClusterResult {
	if cores < 1 {
		cores = 1
	}
	parts := Dispatch(wl, cores)
	cr := &ClusterResult{DurationMs: wl.DurationMs}
	for c := 0; c < cores; c++ {
		res := Run(cfg, parts[c], mkPolicy(c))
		cr.PerCore = append(cr.PerCore, res)
		cr.Total += res.Total
		cr.Completed += res.Completed
		cr.Dropped += res.Dropped
		cr.Violations += res.Violations
		cr.EnergyMJ += res.EnergyMJ
		cr.Latencies = append(cr.Latencies, res.Latencies...)
	}
	sort.Float64s(cr.Latencies)
	return cr
}

// Dispatch splits a workload into per-core workloads using the
// least-expected-work broker. Request objects are shared (not copied); a
// workload must not be dispatched and also run directly.
func Dispatch(wl *Workload, cores int) []*Workload {
	parts := make([]*Workload, cores)
	for c := range parts {
		// The prediction table is indexed by global request ID, so every
		// per-core part can share the parent workload's table directly.
		parts[c] = &Workload{BudgetMs: wl.BudgetMs, DurationMs: wl.DurationMs, Preds: wl.Preds}
	}
	vFinish := make([]float64, cores)
	for _, r := range wl.Requests {
		best := 0
		for c := 1; c < cores; c++ {
			if vFinish[c] < vFinish[best] {
				best = c
			}
		}
		start := r.ArrivalMs
		if vFinish[best] > start {
			start = vFinish[best]
		}
		vFinish[best] = start + cpu.TimeFor(r.BaseWork, cpu.FDefault)
		parts[best].Requests = append(parts[best].Requests, r)
	}
	return parts
}

// ViolationRate returns the fraction of all requests that missed deadlines.
func (cr *ClusterResult) ViolationRate() float64 {
	if cr.Total == 0 {
		return 0
	}
	return float64(cr.Violations) / float64(cr.Total)
}

// TailLatencyMs returns the p-th percentile latency across all cores.
func (cr *ClusterResult) TailLatencyMs(p float64) float64 {
	if len(cr.Latencies) == 0 {
		return 0
	}
	return stats.PercentileSorted(cr.Latencies, p)
}

// SocketPowerW sums uncore power and every simulated core's average power;
// if fewer cores were simulated than the model's socket has, the remaining
// cores are charged as idle at the lowest frequency.
func (cr *ClusterResult) SocketPowerW(m *cpu.PowerModel) float64 {
	p := m.UncoreW
	for _, res := range cr.PerCore {
		p += res.AvgCorePowW
	}
	for i := len(cr.PerCore); i < m.Cores; i++ {
		p += m.CoreW(cpu.FMin, false)
	}
	return p
}
