package sim

import (
	"gemini/internal/cpu"
	"gemini/internal/par"
	"gemini/internal/stats"
	"gemini/internal/telemetry"
)

// Cluster support: the paper's multi-core plan (§V) — "maintain a separate
// queue for each core and have a global broker to distribute the incoming
// requests to each core ... each core will manage its power consumption
// independently by using Gemini's DVFS scheme".
//
// The broker dispatches on least-expected-work: it tracks a virtual finish
// time per core (advanced by each request's base service time at the default
// frequency) and routes every arrival to the core that would start it
// soonest. Each core then runs as an independent single-ISN simulation —
// which is what makes sharded execution exact: cores share nothing at
// simulation time, so RunClusterWorkers can run them on OS threads and merge
// deterministically, byte-identical to the serial core-by-core run.

// ClusterResult aggregates the per-core results of a dispatched run.
type ClusterResult struct {
	PerCore []*Result

	Total      int
	Completed  int
	Dropped    int
	Violations int
	Events     uint64 // dispatched engine events summed over cores
	EnergyMJ   float64
	DurationMs float64
	Latencies  []float64 // merged, sorted
}

// RunCluster partitions the workload over `cores` queues with the broker and
// simulates each core with its own policy instance from mkPolicy, serially.
func RunCluster(cfg Config, wl *Workload, cores int, mkPolicy func(core int) Policy) *ClusterResult {
	return RunClusterWorkers(cfg, wl, cores, 1, mkPolicy)
}

// RunClusterWorkers is RunCluster sharded over `workers` OS threads. Cores
// are independent simulations, so the parallel run is byte-identical to the
// serial one: per-core Results are deterministic functions of their
// partition, aggregation walks cores in index order, and telemetry is
// captured per core (private tracer/accumulator) and replayed into the
// caller's cfg.Tracer/cfg.Spans in core order — the exact emission sequence
// of the serial run (TestClusterWorkersMatchesSerial asserts this).
//
// mkPolicy is called once per core, possibly concurrently; it must be safe
// for concurrent use and the returned policies must not share mutable state.
func RunClusterWorkers(cfg Config, wl *Workload, cores, workers int, mkPolicy func(core int) Policy) *ClusterResult {
	if cores < 1 {
		cores = 1
	}
	parts := Dispatch(wl, cores)
	results := make([]*Result, cores)

	// Telemetry sinks are shared mutable state: concurrent cores would
	// interleave emissions nondeterministically. Capture per core, replay
	// (tracer/spans) or merge (series) in core order below. Tracer/span
	// capture is needed only under concurrency; a Series is always captured
	// per core, because its merge is window arithmetic, not concatenation.
	captureTr := workers > 1 && cfg.Tracer != nil
	captureSp := workers > 1 && cfg.Spans != nil
	var tracers []*telemetry.Tracer
	var spans []*telemetry.SpanTracer
	var series []*telemetry.Timeseries
	if captureTr {
		tracers = make([]*telemetry.Tracer, cores)
	}
	if captureSp {
		spans = make([]*telemetry.SpanTracer, cores)
	}
	if cfg.Series != nil {
		series = make([]*telemetry.Timeseries, cores)
	}
	par.Run(workers, cores, func(c int) {
		ccfg := cfg
		if captureTr {
			// One decision per request (completion or drop), so the
			// private ring never evicts.
			tracers[c] = telemetry.NewTracer(len(parts[c].Requests))
			ccfg.Tracer = tracers[c]
		}
		if captureSp {
			spans[c] = telemetry.NewSpanAccumulator()
			ccfg.Spans = spans[c]
		}
		if series != nil {
			series[c] = coreSeries(cfg.Series, parts[c].DurationMs)
			ccfg.Series = series[c]
		}
		results[c] = Run(ccfg, parts[c], mkPolicy(c))
	})
	for c := 0; c < cores && (captureTr || captureSp); c++ {
		if captureTr {
			for _, d := range tracers[c].Ring().Snapshot(0) {
				cfg.Tracer.Emit(d) // re-stamps Seq in serial order
			}
		}
		if captureSp {
			cfg.Spans.EmitBatch(spans[c].Spans())
		}
	}
	if series != nil {
		pw := cfg.Power
		if pw == nil {
			pw = cpu.DefaultPowerModel()
		}
		mergeTimeseries(cfg.Series, series, parts, pw.UncoreW, nil)
	}

	cr := &ClusterResult{DurationMs: wl.DurationMs, PerCore: results}
	lats := make([][]float64, cores)
	for c, res := range results {
		cr.Total += res.Total
		cr.Completed += res.Completed
		cr.Dropped += res.Dropped
		cr.Violations += res.Violations
		cr.Events += res.Events
		cr.EnergyMJ += res.EnergyMJ
		lats[c] = res.Latencies
	}
	cr.Latencies = mergeSorted(lats)
	return cr
}

// Dispatch splits a workload into per-core workloads using the
// least-expected-work broker. Request objects are shared (not copied); a
// workload must not be dispatched and also run directly.
//
// The broker keeps the cores in a binary min-heap keyed (vFinish, coreIdx):
// the lexicographic minimum is exactly the first minimal index a linear scan
// with strict less-than would pick, and only the root's key changes per
// request, so each dispatch is one O(log cores) sift-down instead of an
// O(cores) scan (TestDispatchHeapMatchesLinear checks the equivalence).
func Dispatch(wl *Workload, cores int) []*Workload {
	parts := make([]*Workload, cores)
	for c := range parts {
		// The prediction table is indexed by global request ID, so every
		// per-core part can share the parent workload's table directly.
		parts[c] = &Workload{BudgetMs: wl.BudgetMs, DurationMs: wl.DurationMs, Preds: wl.Preds}
	}
	// hv/hc form the heap: hv is the virtual finish time, hc the core index.
	// The initial layout (all zeros, cores in index order) is already a valid
	// heap: equal keys tie-break on hc, and parent indices precede children.
	hv := make([]float64, cores)
	hc := make([]int, cores)
	for c := range hc {
		hc[c] = c
	}
	for _, r := range wl.Requests {
		best := hc[0]
		start := r.ArrivalMs
		if hv[0] > start {
			start = hv[0]
		}
		hv[0] = start + cpu.TimeFor(r.BaseWork, cpu.FDefault)
		parts[best].Requests = append(parts[best].Requests, r)
		brokerSiftDown(hv, hc)
	}
	return parts
}

// brokerSiftDown restores the heap property after the root's key grew.
//
//gemini:hotpath
func brokerSiftDown(hv []float64, hc []int) {
	n := len(hv)
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && brokerLess(hv, hc, r, l) {
			m = r
		}
		if !brokerLess(hv, hc, m, i) {
			return
		}
		hv[i], hv[m] = hv[m], hv[i]
		hc[i], hc[m] = hc[m], hc[i]
		i = m
	}
}

// brokerLess orders heap slots by (vFinish, coreIdx).
//
//gemini:hotpath
func brokerLess(hv []float64, hc []int, i, j int) bool {
	//gemini:allow floatcmp -- exact vFinish ties pick the lowest core index, matching the scan broker
	if hv[i] != hv[j] {
		return hv[i] < hv[j]
	}
	return hc[i] < hc[j]
}

// mergeSorted k-way merges already-sorted float slices. Equal values carry
// identical bit patterns here (latencies are finite and non-negative), so the
// output is byte-identical to sorting the concatenation — at O(N log k)
// instead of O(N log N), which matters when merging hundreds of cores.
func mergeSorted(lists [][]float64) []float64 {
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	if total == 0 {
		return nil
	}
	out := make([]float64, 0, total)
	// Cursor heap keyed (current value, list index).
	type cursor struct {
		v  float64
		li int
		i  int
	}
	h := make([]cursor, 0, len(lists))
	less := func(a, b cursor) bool {
		//gemini:allow floatcmp -- exact latency ties across cores are fine either way; broken by list index
		if a.v != b.v {
			return a.v < b.v
		}
		return a.li < b.li
	}
	push := func(c cursor) {
		h = append(h, c)
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if !less(h[i], h[p]) {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	siftDown := func() {
		i, n := 0, len(h)
		for {
			l := 2*i + 1
			if l >= n {
				return
			}
			m := l
			if r := l + 1; r < n && less(h[r], h[l]) {
				m = r
			}
			if !less(h[m], h[i]) {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for li, l := range lists {
		if len(l) > 0 {
			push(cursor{v: l[0], li: li})
		}
	}
	for len(h) > 0 {
		c := h[0]
		out = append(out, c.v)
		if c.i+1 < len(lists[c.li]) {
			h[0] = cursor{v: lists[c.li][c.i+1], li: c.li, i: c.i + 1}
			siftDown()
		} else {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
			siftDown()
		}
	}
	return out
}

// ViolationRate returns the fraction of all requests that missed deadlines.
func (cr *ClusterResult) ViolationRate() float64 {
	if cr.Total == 0 {
		return 0
	}
	return float64(cr.Violations) / float64(cr.Total)
}

// TailLatencyMs returns the p-th percentile latency across all cores.
func (cr *ClusterResult) TailLatencyMs(p float64) float64 {
	if len(cr.Latencies) == 0 {
		return 0
	}
	return stats.PercentileSorted(cr.Latencies, p)
}

// SocketPowerW sums uncore power and every simulated core's average power;
// if fewer cores were simulated than the model's socket has, the remaining
// cores are charged as idle at the lowest frequency.
func (cr *ClusterResult) SocketPowerW(m *cpu.PowerModel) float64 {
	p := m.UncoreW
	for _, res := range cr.PerCore {
		p += res.AvgCorePowW
	}
	for i := len(cr.PerCore); i < m.Cores; i++ {
		p += m.CoreW(cpu.FMin, false)
	}
	return p
}
