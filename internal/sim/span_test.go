package sim

import (
	"strings"
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/telemetry"
)

// TestSpansEmittedPerRequest checks the simulator's span shape: every
// request yields exactly one trace (root + queue + execution phases), the
// trace IDs carry the policy name, and a request dropped before dispatch
// emits a queue-only waterfall flagged dropped.
func TestSpansEmittedPerRequest(t *testing.T) {
	wl := traceWorkload(300, 7)
	cfg := DefaultConfig()
	sp := telemetry.NewSpanTracer(8 * len(wl.Requests))
	cfg.Spans = sp

	res := Run(cfg, wl, &FixedPolicy{F: cpu.FDefault})
	ids, byTrace := telemetry.GroupSpansByTrace(sp.Spans())
	if len(ids) != res.Total {
		t.Fatalf("traces = %d, want %d", len(ids), res.Total)
	}
	for _, id := range ids {
		if !strings.HasPrefix(id, "fixed/") {
			t.Fatalf("trace id %q missing policy prefix", id)
		}
		var hasRoot, hasQueue, hasExec, dropped bool
		for _, s := range byTrace[id] {
			switch s.Name {
			case "request":
				hasRoot = true
				dropped = s.Attr("dropped") == 1
			case "queue":
				hasQueue = true
			default:
				hasExec = true
				if f := s.Attr("freq_ghz"); f != float64(cpu.FDefault) {
					t.Errorf("trace %s: exec phase at %.2f GHz, want FDefault", id, f)
				}
			}
		}
		if !hasRoot || !hasQueue {
			t.Errorf("trace %s: root=%v queue=%v", id, hasRoot, hasQueue)
		}
		if dropped && hasExec {
			t.Errorf("trace %s: dropped-before-dispatch request has exec spans", id)
		}
	}
}

// TestSpansDisabledAddsNoAllocsPerRequest is the phase-span counterpart of
// TestTelemetryDisabledAddsNoAllocsPerRequest: with Config.Spans nil the
// simulator's per-request marginal allocation count must not grow — the
// disabled path is one pointer test per lifecycle event.
func TestSpansDisabledAddsNoAllocsPerRequest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordLatencies = false
	cfg.Spans = nil

	const n = 600
	wlA := traceWorkload(n, 11)
	wlB := traceWorkload(2*n, 11)
	reset := func(wl *Workload) {
		for _, r := range wl.Requests {
			r.Started, r.Done, r.Dropped = false, false, false
			r.StartMs, r.FinishMs, r.WorkDone = 0, 0, 0
		}
	}
	pol := &FixedPolicy{F: cpu.FDefault}
	allocsA := testing.AllocsPerRun(20, func() { reset(wlA); Run(cfg, wlA, pol) })
	allocsB := testing.AllocsPerRun(20, func() { reset(wlB); Run(cfg, wlB, pol) })
	perReq := (allocsB - allocsA) / float64(n)
	if perReq > 0.05 {
		t.Errorf("span-disabled path allocates %.3f allocs/request (n: %.0f, 2n: %.0f)",
			perReq, allocsA, allocsB)
	}
}
