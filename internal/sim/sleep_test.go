package sim

import (
	"math"
	"testing"

	"gemini/internal/cpu"
)

// sleepPolicy parks the core in a C-state whenever the queue drains.
type sleepPolicy struct {
	powerW, wakeMs float64
}

func (p *sleepPolicy) Name() string { return "sleep" }
func (p *sleepPolicy) Init(s *Sim) {
	s.SetFreq(cpu.FDefault)
	s.Sleep(p.powerW, p.wakeMs)
}
func (p *sleepPolicy) OnArrival(*Sim, *Request) {}
func (p *sleepPolicy) OnStart(*Sim, *Request)   {}
func (p *sleepPolicy) OnDeparture(s *Sim, r *Request) {
	if len(s.Queue()) == 0 {
		s.Sleep(p.powerW, p.wakeMs)
	}
}
func (p *sleepPolicy) OnTimer(*Sim, int64) {}

func TestSleepReducesIdleEnergy(t *testing.T) {
	mk := func() *Workload { return mkWorkload(50, 1000, [2]float64{0, 27}) }
	awake := Run(DefaultConfig(), mk(), &FixedPolicy{F: cpu.FDefault})
	asleep := Run(DefaultConfig(), mk(), &sleepPolicy{powerW: 0.3, wakeMs: 0.3})
	if asleep.EnergyMJ >= awake.EnergyMJ {
		t.Fatalf("sleep energy %v >= awake %v", asleep.EnergyMJ, awake.EnergyMJ)
	}
	// Idle portion (990 ms) must be billed at the C-state power.
	cfg := DefaultConfig()
	busy := cfg.Power.CoreW(cpu.FDefault, true) * (27/2.7 + 0.3) // service + wake stall billed busy? wake stall happens while queue non-empty
	idleLow := 0.3 * 980.0
	if asleep.EnergyMJ > busy+idleLow+50 {
		t.Errorf("sleep energy %v implausibly high", asleep.EnergyMJ)
	}
}

func TestSleepWakeLatencyCharged(t *testing.T) {
	wl := mkWorkload(50, 200, [2]float64{100, 27})
	res := Run(DefaultConfig(), wl, &sleepPolicy{powerW: 0.3, wakeMs: 0.5})
	// Latency = wake stall + service.
	want := 0.5 + 10.0
	if math.Abs(res.Latencies[0]-want) > 1e-9 {
		t.Errorf("latency = %v, want %v", res.Latencies[0], want)
	}
}

func TestSleepIgnoredWhileBusy(t *testing.T) {
	wl := mkWorkload(50, 200, [2]float64{0, 27}, [2]float64{1, 13.5})
	pol := &hookPolicy{
		onArrival: func(s *Sim, r *Request) {
			s.Sleep(0.1, 10) // queue non-empty: must be a no-op
		},
	}
	res := Run(DefaultConfig(), wl, pol)
	// No wake stall anywhere: r0 latency exactly 10 ms.
	if math.Abs(wl.Requests[0].LatencyMs()-10) > 1e-9 {
		t.Errorf("r0 latency = %v (sleep applied while busy?)", wl.Requests[0].LatencyMs())
	}
	if res.Completed != 2 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestSleepClearedAfterWake(t *testing.T) {
	// Two arrivals: the first wakes the core; idle power between the two
	// bursts (policy never re-sleeps) must be the normal C0 idle power.
	wl := mkWorkload(50, 400, [2]float64{0, 27}, [2]float64{300, 27})
	pol := &sleepPolicy{powerW: 0.1, wakeMs: 0.2}
	// Override: only sleep at init, not after departures.
	init := &hookPolicy{
		init: func(s *Sim) {
			s.SetFreq(cpu.FDefault)
			s.Sleep(0.1, 0.2)
		},
	}
	res := Run(DefaultConfig(), wl, init)
	_ = pol
	cfg := DefaultConfig()
	idleC0 := cfg.Power.CoreW(cpu.FDefault, false)
	// Energy must include ~280 ms of C0 idle (between the bursts) — far
	// above what staying in the C-state would cost.
	if res.EnergyMJ < idleC0*200 {
		t.Errorf("energy %v too low: sleep state not cleared on wake", res.EnergyMJ)
	}
	// Second request pays no wake latency (already awake).
	if math.Abs(wl.Requests[1].LatencyMs()-10) > 1e-9 {
		t.Errorf("r1 latency = %v, want 10", wl.Requests[1].LatencyMs())
	}
}
