package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gemini/internal/cpu"
)

// hookPolicy lets tests inject behavior per callback.
type hookPolicy struct {
	init        func(*Sim)
	onArrival   func(*Sim, *Request)
	onStart     func(*Sim, *Request)
	onDeparture func(*Sim, *Request)
	onTimer     func(*Sim, int64)
}

func (p *hookPolicy) Name() string { return "hook" }
func (p *hookPolicy) Init(s *Sim) {
	if p.init != nil {
		p.init(s)
	}
}
func (p *hookPolicy) OnArrival(s *Sim, r *Request) {
	if p.onArrival != nil {
		p.onArrival(s, r)
	}
}
func (p *hookPolicy) OnStart(s *Sim, r *Request) {
	if p.onStart != nil {
		p.onStart(s, r)
	}
}
func (p *hookPolicy) OnDeparture(s *Sim, r *Request) {
	if p.onDeparture != nil {
		p.onDeparture(s, r)
	}
}
func (p *hookPolicy) OnTimer(s *Sim, tag int64) {
	if p.onTimer != nil {
		p.onTimer(s, tag)
	}
}

// mkWorkload hand-builds a workload from (arrival, work) pairs.
func mkWorkload(budget, duration float64, reqs ...[2]float64) *Workload {
	wl := &Workload{BudgetMs: budget, DurationMs: duration}
	for i, rw := range reqs {
		wl.Requests = append(wl.Requests, &Request{
			ID:         i,
			WorkTotal:  cpu.Work(rw[1]),
			BaseWork:   cpu.Work(rw[1]),
			ArrivalMs:  rw[0],
			DeadlineMs: rw[0] + budget,
		})
	}
	return wl
}

func TestSingleRequestAtDefault(t *testing.T) {
	// 27 GHz·ms at 2.7 GHz = 10 ms service.
	wl := mkWorkload(40, 100, [2]float64{5, 27})
	res := Run(DefaultConfig(), wl, &FixedPolicy{F: cpu.FDefault})
	if res.Completed != 1 || res.Dropped != 0 {
		t.Fatalf("completed=%d dropped=%d", res.Completed, res.Dropped)
	}
	r := wl.Requests[0]
	if math.Abs(r.FinishMs-15) > 1e-9 {
		t.Errorf("finish = %v, want 15", r.FinishMs)
	}
	if math.Abs(res.Latencies[0]-10) > 1e-9 {
		t.Errorf("latency = %v, want 10", res.Latencies[0])
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d", res.Violations)
	}
	if res.DurationMs != 100 {
		t.Errorf("duration = %v", res.DurationMs)
	}
}

func TestFrequencyScalingSlowsRequest(t *testing.T) {
	wl := mkWorkload(200, 300, [2]float64{0, 27})
	cfg := DefaultConfig()
	res := Run(cfg, wl, &FixedPolicy{F: 1.2})
	// One transition at t=0 (2.7 -> 1.2) stalls Tdvfs, then 27/1.2 = 22.5ms.
	want := cfg.TdvfsMs + 27/1.2
	if math.Abs(res.Latencies[0]-want) > 1e-9 {
		t.Errorf("latency = %v, want %v", res.Latencies[0], want)
	}
	if res.Transitions != 1 {
		t.Errorf("transitions = %d", res.Transitions)
	}
}

func TestFIFOQueueing(t *testing.T) {
	// Two requests, second arrives while first executes.
	wl := mkWorkload(100, 200, [2]float64{0, 27}, [2]float64{2, 13.5})
	res := Run(DefaultConfig(), wl, &FixedPolicy{F: cpu.FDefault})
	r0, r1 := wl.Requests[0], wl.Requests[1]
	if math.Abs(r0.FinishMs-10) > 1e-9 {
		t.Errorf("r0 finish = %v", r0.FinishMs)
	}
	// r1 starts at 10, runs 5 ms.
	if math.Abs(r1.StartMs-10) > 1e-9 || math.Abs(r1.FinishMs-15) > 1e-9 {
		t.Errorf("r1 start/finish = %v/%v, want 10/15", r1.StartMs, r1.FinishMs)
	}
	if math.Abs(r1.LatencyMs()-13) > 1e-9 {
		t.Errorf("r1 latency = %v (queueing time included)", r1.LatencyMs())
	}
	if res.Completed != 2 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestPlannedBoostChangesCompletion(t *testing.T) {
	// 54 GHz·ms: at 1.35 GHz would take 40 ms; boost to 2.7 at t=10.
	wl := mkWorkload(100, 200, [2]float64{0, 54})
	cfg := DefaultConfig()
	cfg.TdvfsMs = 0 // isolate the boost math
	pol := &hookPolicy{
		onStart: func(s *Sim, r *Request) {
			s.SetFreq(1.35)
			s.PlanFreqChange(10, 2.7)
		},
	}
	res := Run(cfg, wl, pol)
	// 10 ms at 1.35 does 13.5 work; remaining 40.5 at 2.7 takes 15 ms.
	want := 10 + 40.5/2.7
	if math.Abs(res.Latencies[0]-want) > 1e-9 {
		t.Errorf("latency = %v, want %v", res.Latencies[0], want)
	}
}

func TestTdvfsStallDelaysWork(t *testing.T) {
	wl := mkWorkload(100, 200, [2]float64{0, 27})
	cfg := DefaultConfig()
	cfg.TdvfsMs = 1.0
	pol := &hookPolicy{
		onStart: func(s *Sim, r *Request) { s.SetFreq(2.4) },
	}
	res := Run(cfg, wl, pol)
	want := 1.0 + 27/2.4
	if math.Abs(res.Latencies[0]-want) > 1e-9 {
		t.Errorf("latency = %v, want %v", res.Latencies[0], want)
	}
}

func TestSetFreqSameIsNoop(t *testing.T) {
	wl := mkWorkload(100, 100, [2]float64{0, 27})
	pol := &hookPolicy{
		onStart: func(s *Sim, r *Request) {
			s.SetFreq(cpu.FDefault) // same as start freq
			s.SetFreq(cpu.FDefault)
		},
	}
	res := Run(DefaultConfig(), wl, pol)
	if res.Transitions != 0 {
		t.Errorf("transitions = %d, want 0", res.Transitions)
	}
	if math.Abs(res.Latencies[0]-10) > 1e-9 {
		t.Errorf("latency = %v", res.Latencies[0])
	}
}

func TestDropRequest(t *testing.T) {
	wl := mkWorkload(5, 100, [2]float64{0, 270}) // impossible: 100 ms of work, 5 ms budget
	pol := &hookPolicy{
		onArrival: func(s *Sim, r *Request) { s.Drop(r) },
	}
	res := Run(DefaultConfig(), wl, pol)
	if res.Dropped != 1 || res.Completed != 0 {
		t.Fatalf("dropped=%d completed=%d", res.Dropped, res.Completed)
	}
	if res.Violations != 0 {
		t.Errorf("violations = %d (drops are tracked separately)", res.Violations)
	}
	if res.DropRate() != 1 {
		t.Errorf("drop rate = %v", res.DropRate())
	}
	if !wl.Requests[0].Dropped || !wl.Requests[0].Violated() {
		t.Errorf("request flags wrong: %+v", wl.Requests[0])
	}
}

func TestDropHeadStartsNext(t *testing.T) {
	wl := mkWorkload(50, 200, [2]float64{0, 2700}, [2]float64{1, 27})
	pol := &hookPolicy{
		onArrival: func(s *Sim, r *Request) {
			if r.ID == 1 {
				s.Drop(s.Queue()[0]) // drop the executing head
			}
		},
	}
	res := Run(DefaultConfig(), wl, pol)
	if res.Dropped != 1 || res.Completed != 1 {
		t.Fatalf("dropped=%d completed=%d", res.Dropped, res.Completed)
	}
	r1 := wl.Requests[1]
	if math.Abs(r1.StartMs-1) > 1e-9 {
		t.Errorf("r1 started at %v, want 1 (right after the drop)", r1.StartMs)
	}
}

func TestTimerFires(t *testing.T) {
	wl := mkWorkload(50, 100, [2]float64{0, 13.5})
	var fired []float64
	var tags []int64
	pol := &hookPolicy{
		init: func(s *Sim) { s.SetTimer(20, 7) },
		onTimer: func(s *Sim, tag int64) {
			fired = append(fired, s.Now())
			tags = append(tags, tag)
			if len(fired) < 3 {
				s.SetTimer(s.Now()+20, tag+1)
			}
		},
	}
	Run(DefaultConfig(), wl, pol)
	if len(fired) != 3 {
		t.Fatalf("timer fired %d times", len(fired))
	}
	if fired[0] != 20 || fired[1] != 40 || fired[2] != 60 {
		t.Errorf("fire times = %v", fired)
	}
	if tags[0] != 7 || tags[2] != 9 {
		t.Errorf("tags = %v", tags)
	}
}

func TestViolationCounting(t *testing.T) {
	// 27 work at 2.7 = 10 ms, but budget is 8 ms -> violation.
	wl := mkWorkload(8, 100, [2]float64{0, 27})
	res := Run(DefaultConfig(), wl, &FixedPolicy{F: cpu.FDefault})
	if res.Violations != 1 || res.Completed != 1 {
		t.Errorf("violations=%d completed=%d", res.Violations, res.Completed)
	}
	if res.ViolationRate() != 1 {
		t.Errorf("violation rate = %v", res.ViolationRate())
	}
}

func TestEnergyAccounting(t *testing.T) {
	wl := mkWorkload(50, 100, [2]float64{0, 27})
	cfg := DefaultConfig()
	res := Run(cfg, wl, &FixedPolicy{F: cpu.FDefault})
	// 10 ms busy + 90 ms idle at 2.7 GHz.
	m := cfg.Power
	want := m.CoreW(2.7, true)*10 + m.CoreW(2.7, false)*90
	if math.Abs(res.EnergyMJ-want) > 1e-6 {
		t.Errorf("energy = %v mJ, want %v", res.EnergyMJ, want)
	}
	if math.Abs(res.Utilization-0.1) > 1e-9 {
		t.Errorf("utilization = %v, want 0.1", res.Utilization)
	}
	if math.Abs(res.AvgCorePowW-want/100) > 1e-9 {
		t.Errorf("avg power = %v", res.AvgCorePowW)
	}
}

func TestLowerFrequencySavesEnergyOnFixedWindow(t *testing.T) {
	wl1 := mkWorkload(100, 200, [2]float64{0, 27})
	wl2 := mkWorkload(100, 200, [2]float64{0, 27})
	fast := Run(DefaultConfig(), wl1, &FixedPolicy{F: 2.7})
	slow := Run(DefaultConfig(), wl2, &FixedPolicy{F: 1.4})
	if slow.EnergyMJ >= fast.EnergyMJ {
		t.Errorf("slow run energy %v >= fast %v", slow.EnergyMJ, fast.EnergyMJ)
	}
}

func TestPowerSeries(t *testing.T) {
	wl := mkWorkload(50, 100, [2]float64{0, 27})
	cfg := DefaultConfig()
	cfg.PowerSeriesResMs = 10
	res := Run(cfg, wl, &FixedPolicy{F: cpu.FDefault})
	if len(res.PowerSeriesW) != 10 {
		t.Fatalf("series buckets = %d", len(res.PowerSeriesW))
	}
	// Energy reconstructed from the series must match the accumulator.
	sum := 0.0
	for _, w := range res.PowerSeriesW {
		sum += w * cfg.PowerSeriesResMs
	}
	if math.Abs(sum-res.EnergyMJ) > 1e-6 {
		t.Errorf("series energy %v != accumulator %v", sum, res.EnergyMJ)
	}
	// First bucket (busy) must draw more than the last (idle).
	if res.PowerSeriesW[0] <= res.PowerSeriesW[9] {
		t.Errorf("busy bucket %v <= idle bucket %v", res.PowerSeriesW[0], res.PowerSeriesW[9])
	}
}

func TestPredictionOverheadStallsCore(t *testing.T) {
	wl := mkWorkload(50, 100, [2]float64{0, 27})
	cfg := DefaultConfig()
	cfg.PredictOverheadMs = 0.5
	res := Run(cfg, wl, &FixedPolicy{F: cpu.FDefault})
	if math.Abs(res.Latencies[0]-10.5) > 1e-9 {
		t.Errorf("latency = %v, want 10.5", res.Latencies[0])
	}
}

func TestSocketPowerExtrapolation(t *testing.T) {
	wl := mkWorkload(50, 100, [2]float64{0, 27})
	cfg := DefaultConfig()
	res := Run(cfg, wl, &FixedPolicy{F: cpu.FDefault})
	want := cfg.Power.UncoreW + float64(cfg.Power.Cores)*res.AvgCorePowW
	if math.Abs(res.SocketPowerW(cfg.Power)-want) > 1e-9 {
		t.Errorf("socket power mismatch")
	}
	base := Run(DefaultConfig(), mkWorkload(50, 100, [2]float64{0, 27}), &FixedPolicy{F: 2.7})
	slow := Run(DefaultConfig(), mkWorkload(50, 100, [2]float64{0, 27}), &FixedPolicy{F: 1.2})
	if s := slow.PowerSavingVs(base, cfg.Power); s <= 0 || s >= 1 {
		t.Errorf("saving = %v", s)
	}
}

func TestTailLatency(t *testing.T) {
	wl := mkWorkload(100, 500,
		[2]float64{0, 27}, [2]float64{50, 13.5}, [2]float64{100, 54}, [2]float64{200, 27})
	res := Run(DefaultConfig(), wl, &FixedPolicy{F: cpu.FDefault})
	if res.TailLatencyMs(100) != 20 {
		t.Errorf("max latency = %v, want 20", res.TailLatencyMs(100))
	}
	if res.MeanLatencyMs() <= 0 {
		t.Errorf("mean latency = %v", res.MeanLatencyMs())
	}
}

// Property: for any workload and any fixed frequency, all requests complete
// exactly (work conservation) and latencies are consistent with S = C/f when
// there is no queueing.
func TestWorkConservationProperty(t *testing.T) {
	f := func(workRaw []uint16, fIdx uint8) bool {
		ladder := cpu.DefaultLadder()
		freq := ladder.Levels()[int(fIdx)%8]
		var reqs [][2]float64
		at := 0.0
		for _, w := range workRaw {
			work := float64(w%5000)/100 + 0.5 // 0.5..50.5 GHz·ms
			reqs = append(reqs, [2]float64{at, work})
			at += 1000 // spaced out: no queueing
		}
		if len(reqs) == 0 {
			return true
		}
		wl := mkWorkload(10_000, at+1000, reqs...)
		cfg := DefaultConfig()
		res := Run(cfg, wl, &FixedPolicy{F: freq})
		if res.Completed != len(reqs) {
			return false
		}
		for i, r := range wl.Requests {
			wantLat := float64(r.WorkTotal) / float64(freq)
			if i == 0 && freq != cpu.FDefault {
				wantLat += cfg.TdvfsMs // initial transition stall
			}
			if math.Abs(r.LatencyMs()-wantLat) > 1e-6 {
				return false
			}
			if math.Abs(float64(r.WorkDone-r.WorkTotal)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZeroRequests(t *testing.T) {
	wl := &Workload{BudgetMs: 40, DurationMs: 100}
	res := Run(DefaultConfig(), wl, &FixedPolicy{F: cpu.FDefault})
	if res.Completed != 0 || res.ViolationRate() != 0 || res.DropRate() != 0 {
		t.Errorf("empty workload metrics: %+v", res)
	}
	if res.Utilization != 0 {
		t.Errorf("utilization = %v", res.Utilization)
	}
	if math.Abs(res.DurationMs-100) > 1e-9 {
		t.Errorf("duration = %v", res.DurationMs)
	}
}

func TestPlannedChangeInPast(t *testing.T) {
	wl := mkWorkload(100, 200, [2]float64{10, 27})
	pol := &hookPolicy{
		onStart: func(s *Sim, r *Request) {
			s.PlanFreqChange(5, 1.2) // already in the past: applies immediately
		},
	}
	res := Run(DefaultConfig(), wl, pol)
	cfg := DefaultConfig()
	want := cfg.TdvfsMs + 27/1.2
	if math.Abs(res.Latencies[0]-want) > 1e-9 {
		t.Errorf("latency = %v, want %v", res.Latencies[0], want)
	}
}

func TestClearPlannedChanges(t *testing.T) {
	wl := mkWorkload(100, 200, [2]float64{0, 27})
	pol := &hookPolicy{
		onStart: func(s *Sim, r *Request) {
			s.PlanFreqChange(5, 1.2)
			s.ClearPlannedChanges()
		},
	}
	res := Run(DefaultConfig(), wl, pol)
	if math.Abs(res.Latencies[0]-10) > 1e-9 {
		t.Errorf("latency = %v, want 10 (plan cancelled)", res.Latencies[0])
	}
	if res.Transitions != 0 {
		t.Errorf("transitions = %d", res.Transitions)
	}
}

func TestFreqTraceRecording(t *testing.T) {
	wl := mkWorkload(100, 60, [2]float64{0, 54})
	cfg := DefaultConfig()
	cfg.RecordFreqTrace = true
	pol := &hookPolicy{
		onStart: func(s *Sim, r *Request) {
			s.SetFreq(1.35)
			s.PlanFreqChange(10, 2.7)
		},
	}
	res := Run(cfg, wl, pol)
	if len(res.FreqTrace) < 2 {
		t.Fatalf("trace segments = %d", len(res.FreqTrace))
	}
	// Segments are contiguous, time-ordered and cover [0, duration].
	for i, seg := range res.FreqTrace {
		if seg.EndMs <= seg.StartMs {
			t.Fatalf("segment %d empty: %+v", i, seg)
		}
		if i > 0 && seg.StartMs != res.FreqTrace[i-1].EndMs {
			t.Fatalf("gap before segment %d", i)
		}
	}
	last := res.FreqTrace[len(res.FreqTrace)-1]
	if last.EndMs != 60 {
		t.Errorf("trace ends at %v, want 60", last.EndMs)
	}
	// The trace must show the two-step plan: 1.35 then 2.7 while busy.
	sawSlow, sawBoost := false, false
	for _, seg := range res.FreqTrace {
		if seg.Busy && seg.Freq == 1.35 {
			sawSlow = true
		}
		if seg.Busy && seg.Freq == 2.7 && sawSlow {
			sawBoost = true
		}
	}
	if !sawSlow || !sawBoost {
		t.Errorf("two-step plan not visible in trace: %+v", res.FreqTrace)
	}
	// Energy reconstructed from the trace matches the accumulator.
	m := cfg.Power
	e := 0.0
	for _, seg := range res.FreqTrace {
		e += m.CoreW(seg.Freq, seg.Busy) * seg.DurationMs()
	}
	if math.Abs(e-res.EnergyMJ) > 1e-6 {
		t.Errorf("trace energy %v != accumulator %v", e, res.EnergyMJ)
	}
}

func TestFreqTraceDisabledByDefault(t *testing.T) {
	wl := mkWorkload(100, 60, [2]float64{0, 27})
	res := Run(DefaultConfig(), wl, &FixedPolicy{F: cpu.FDefault})
	if res.FreqTrace != nil {
		t.Error("trace recorded without RecordFreqTrace")
	}
}

// chaosPolicy issues random-but-valid control calls on every event: the
// simulator must never panic, lose requests, or violate work conservation.
type chaosPolicy struct {
	rng *rand.Rand
}

func (p *chaosPolicy) Name() string { return "chaos" }
func (p *chaosPolicy) Init(s *Sim) {
	s.SetFreq(s.Ladder().Levels()[p.rng.Intn(8)])
	s.SetTimer(p.rng.Float64()*50, 1)
}
func (p *chaosPolicy) act(s *Sim) {
	switch p.rng.Intn(6) {
	case 0:
		s.SetFreq(s.Ladder().Levels()[p.rng.Intn(8)])
	case 1:
		s.PlanFreqChange(s.Now()+p.rng.Float64()*30, s.Ladder().Levels()[p.rng.Intn(8)])
	case 2:
		s.ClearPlannedChanges()
	case 3:
		s.Stall(p.rng.Float64())
	case 4:
		if q := s.Queue(); len(q) > 0 && p.rng.Intn(10) == 0 {
			s.Drop(q[p.rng.Intn(len(q))])
		}
	case 5:
		s.Sleep(p.rng.Float64(), p.rng.Float64())
	}
}
func (p *chaosPolicy) OnArrival(s *Sim, r *Request)   { p.act(s) }
func (p *chaosPolicy) OnStart(s *Sim, r *Request)     { p.act(s) }
func (p *chaosPolicy) OnDeparture(s *Sim, r *Request) { p.act(s) }
func (p *chaosPolicy) OnTimer(s *Sim, tag int64) {
	p.act(s)
	if s.Now() < 900 {
		s.SetTimer(s.Now()+1+p.rng.Float64()*20, tag)
	}
}

func TestChaosPolicyInvariants(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var reqs [][2]float64
		at := 0.0
		for i := 0; i < 60; i++ {
			at += rng.ExpFloat64() * 15
			reqs = append(reqs, [2]float64{at, 1 + rng.Float64()*40})
		}
		wl := mkWorkload(40, at+200, reqs...)
		res := Run(DefaultConfig(), wl, &chaosPolicy{rng: rand.New(rand.NewSource(seed + 100))})

		if res.Completed+res.Dropped != res.Total {
			t.Fatalf("seed %d: lost requests: %d+%d != %d", seed, res.Completed, res.Dropped, res.Total)
		}
		if res.EnergyMJ <= 0 || math.IsNaN(res.EnergyMJ) {
			t.Fatalf("seed %d: energy %v", seed, res.EnergyMJ)
		}
		if res.Utilization < 0 || res.Utilization > 1 {
			t.Fatalf("seed %d: utilization %v", seed, res.Utilization)
		}
		for _, r := range wl.Requests {
			if r.Done && math.Abs(float64(r.WorkDone-r.WorkTotal)) > 1e-6 {
				t.Fatalf("seed %d: request %d work not conserved", seed, r.ID)
			}
			if r.Done && r.FinishMs < r.ArrivalMs {
				t.Fatalf("seed %d: request %d finished before arriving", seed, r.ID)
			}
		}
	}
}
