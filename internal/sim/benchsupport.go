package sim

import (
	"gemini/internal/cpu"
)

// Shared benchmark scaffolding. The repo's benchmarks — the package-level
// pairs in internal/sim/bench_test.go, the engine-throughput suite behind
// BENCH_sim.json, and the whole-stack benchmarks in the root bench_test.go —
// all build their synthetic request streams and no-op policies here, so the
// workload shape is defined exactly once and every events/sec number is
// comparable across packages.

// BenchWorkload builds a Poisson-ish stream of n requests: exponential
// inter-arrivals at 40 QPS and uniform 2–22 ms service at the default
// frequency, all inside a 40 ms budget. Deterministic per (n, seed).
func BenchWorkload(n int, seed int64) *Workload {
	return BenchWorkloadRate(n, seed, 25)
}

// BenchWorkloadRate is BenchWorkload with an explicit mean inter-arrival gap
// (ms) so cluster benchmarks can scale offered load with the core count.
// Draws come from the seed's workload stream — bit-compatible with the
// historical shared generator (see PartitionedRNG).
func BenchWorkloadRate(n int, seed int64, meanGapMs float64) *Workload {
	rng := NewPartitionedRNG(seed).Workload()
	wl := &Workload{BudgetMs: 40}
	at := 0.0
	for i := 0; i < n; i++ {
		at += rng.ExpFloat64() * meanGapMs
		w := cpu.Work((2 + rng.Float64()*20) * 2.7)
		wl.Requests = append(wl.Requests, &Request{
			ID: i, BaseWork: w, WorkTotal: w,
			ArrivalMs: at, DeadlineMs: at + 40,
		})
	}
	wl.DurationMs = at + 100
	return wl
}

// FixedPolicy pins one frequency at Init and never changes it — the
// canonical no-op policy for benchmarks and engine-overhead measurements
// (its per-event cost is a single virtual call).
type FixedPolicy struct{ F cpu.Freq }

func (p *FixedPolicy) Name() string               { return "fixed" }
func (p *FixedPolicy) Init(s *Sim)                { s.SetFreq(p.F) }
func (p *FixedPolicy) OnArrival(*Sim, *Request)   {}
func (p *FixedPolicy) OnStart(*Sim, *Request)     {}
func (p *FixedPolicy) OnDeparture(*Sim, *Request) {}
func (p *FixedPolicy) OnTimer(*Sim, int64)        {}
