package sim

import "gemini/internal/cpu"

// requestPool is the struct-of-arrays repack of the per-request state the
// dispatch loop touches on every event, indexed by the request's position in
// the workload (Request.poolIdx). The loop's per-event reads — the next
// arrival's timestamp (nextEvent) and the executing head's remaining work
// (completionTime, advanceTo) — walk these contiguous arrays instead of
// chasing *Request pointers scattered across the heap.
//
// State read only at request-lifecycle boundaries (deadline, start/finish
// stamps, flags) stays on the Request struct: it is touched once per request,
// not once per event, so repacking it buys nothing. The engine keeps the
// struct's WorkDone mirror current at every policy-callback boundary
// (syncHead) and writes the final values back at completion/drop, so policies
// and post-run consumers observe exactly the fields they always did.
type requestPool struct {
	arrivalMs []float64
	workTotal []cpu.Work
	workDone  []cpu.Work
}

// load (re)initializes the pool from the workload and stamps every request
// with its pool index. Field values are copied verbatim so a workload whose
// lifecycle fields were reset between runs behaves as on a fresh build.
// Once per run, not on the hot path.
func (p *requestPool) load(reqs []*Request) {
	n := len(reqs)
	if cap(p.arrivalMs) < n {
		p.arrivalMs = make([]float64, n)
		p.workTotal = make([]cpu.Work, n)
		p.workDone = make([]cpu.Work, n)
	}
	p.arrivalMs = p.arrivalMs[:n]
	p.workTotal = p.workTotal[:n]
	p.workDone = p.workDone[:n]
	for i, r := range reqs {
		r.poolIdx = int32(i)
		p.arrivalMs[i] = r.ArrivalMs
		p.workTotal[i] = r.WorkTotal
		p.workDone[i] = r.WorkDone
	}
}

// remaining returns the work left for the request at pool index i.
//
//gemini:hotpath
func (p *requestPool) remaining(i int32) cpu.Work {
	return p.workTotal[i] - p.workDone[i]
}
