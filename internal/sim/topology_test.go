package sim

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/telemetry"
)

func TestTopologyNormalization(t *testing.T) {
	if c := (Topology{}).Cores(); c != 1 {
		t.Fatalf("zero topology cores = %d", c)
	}
	if c := (Topology{Shards: -2, ReplicasPerShard: 0}).Cores(); c != 1 {
		t.Fatalf("negative topology cores = %d", c)
	}
	topo := Topology{Shards: 3, ReplicasPerShard: 4}
	if topo.Cores() != 12 {
		t.Fatalf("3x4 cores = %d", topo.Cores())
	}
	if topo.Core(2, 3) != 11 || topo.Core(0, 0) != 0 {
		t.Fatal("Core() flat index mapping broken")
	}
}

func TestRouterByName(t *testing.T) {
	for _, name := range RouterNames {
		r, err := RouterByName(name)
		if err != nil || r.Name() != name {
			t.Fatalf("RouterByName(%q) = %v, %v", name, r, err)
		}
	}
	// Short spellings resolve to the same routers.
	for short, long := range map[string]string{
		"rr": "round-robin", "ll": "least-loaded", "deadline": "deadline-aware", "power": "power-aware",
	} {
		r, err := RouterByName(short)
		if err != nil || r.Name() != long {
			t.Fatalf("RouterByName(%q) = %v, %v", short, r, err)
		}
	}
	if _, err := RouterByName("bogus"); err == nil {
		t.Fatal("unknown router did not error")
	}
}

func TestRouterRoundRobinSpreadsEvenly(t *testing.T) {
	wl := clusterWorkload(120, 5, 4, 31)
	tc := TopologyConfig{
		Sim:      DefaultConfig(),
		Topology: Topology{Shards: 2, ReplicasPerShard: 3},
		Router:   RouterRoundRobin{},
	}
	tr := RunTopology(tc, wl, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
	for c, n := range tr.RouteCounts {
		if n != 40 {
			t.Errorf("core %d got %d of 120 round-robin routes, want 40", c, n)
		}
	}
	if tr.ShardRequests != 240 {
		t.Errorf("shard requests = %d, want queries×shards = 240", tr.ShardRequests)
	}
}

func TestTopologyStragglerAccounting(t *testing.T) {
	// One query fanned over two shards with very different replica backlogs:
	// its latency must be the slowest shard's finish, not the fastest's.
	wl := &Workload{BudgetMs: 40, DurationMs: 200}
	// Pre-load shard 1's only replica with a long request, then send the
	// measured query.
	long := cpu.Work(30 * float64(cpu.FDefault))
	short := cpu.Work(2 * float64(cpu.FDefault))
	wl.Requests = []*Request{
		{ID: 0, BaseWork: long, WorkTotal: long, ArrivalMs: 0, DeadlineMs: 40},
		{ID: 1, BaseWork: short, WorkTotal: short, ArrivalMs: 1, DeadlineMs: 41},
	}
	tc := TopologyConfig{
		Sim:      DefaultConfig(),
		Topology: Topology{Shards: 2, ReplicasPerShard: 1},
	}
	tr := RunTopology(tc, wl, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
	if tr.Queries != 2 || tr.Completed != 2 || tr.Dropped != 0 {
		t.Fatalf("accounting: %+v", tr)
	}
	// Query 1 arrives at t=1 behind the 30 ms request on both shards'
	// single replicas: straggler finish 32, latency 31.
	if len(tr.QueryLatencies) != 2 {
		t.Fatalf("latencies = %v", tr.QueryLatencies)
	}
	if got := tr.QueryLatencies[1]; math.Abs(got-31) > 1e-9 {
		t.Errorf("straggler latency = %v, want 31", got)
	}
	if got := tr.QueryLatencies[0]; math.Abs(got-30) > 1e-9 {
		t.Errorf("first query latency = %v, want 30", got)
	}
}

// TestRouterLeastLoadedMatchesBroker is the property test anchoring the
// topology layer to the existing broker: a single shard with R replicas under
// RouterLeastLoaded must reproduce Dispatch's per-core assignment — and hence
// RunCluster's per-core results — exactly, for every R and seed.
func TestRouterLeastLoadedMatchesBroker(t *testing.T) {
	for _, replicas := range []int{1, 2, 3, 5, 8} {
		for seed := int64(1); seed <= 5; seed++ {
			wlTopo := clusterWorkload(300, 2, 6, seed)
			wlBroker := clusterWorkload(300, 2, 6, seed)

			tc := TopologyConfig{
				Sim:      DefaultConfig(),
				Topology: Topology{Shards: 1, ReplicasPerShard: replicas},
				Router:   RouterLeastLoaded{},
			}
			tr := RunTopology(tc, wlTopo, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
			cr := RunCluster(DefaultConfig(), wlBroker, replicas, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })

			if len(tr.PerCore) != len(cr.PerCore) {
				t.Fatalf("replicas=%d seed=%d: core counts differ", replicas, seed)
			}
			for c := range tr.PerCore {
				if !reflect.DeepEqual(tr.PerCore[c], cr.PerCore[c]) {
					t.Fatalf("replicas=%d seed=%d: core %d result diverges from broker dispatch",
						replicas, seed, c)
				}
			}
			// With one shard the query straggler is the lone shard request, so
			// the merged latency distributions must agree too.
			if !reflect.DeepEqual(tr.QueryLatencies, cr.Latencies) {
				t.Fatalf("replicas=%d seed=%d: merged latencies diverge", replicas, seed)
			}
		}
	}
}

// runTopoOnce executes one topology run with full telemetry for the
// serial-vs-parallel comparisons.
func runTopoOnce(router Router, capW float64, workers int) (*TopologyResult, []telemetry.Decision, []telemetry.Span) {
	wl := clusterWorkload(400, 2, 6, 23)
	cfg := DefaultConfig()
	cfg.RecordFreqTrace = true
	cfg.Tracer = telemetry.NewTracer(500)
	cfg.Spans = telemetry.NewSpanTracer(16000)
	tc := TopologyConfig{
		Sim:       cfg,
		Topology:  Topology{Shards: 3, ReplicasPerShard: 2},
		Router:    router,
		Seed:      99,
		PowerCapW: capW,
	}
	tr := RunTopologyWorkers(tc, wl, workers, mkCountingPolicy)
	return tr, cfg.Tracer.Ring().Snapshot(0), cfg.Spans.Spans()
}

// TestTopologyWorkersMatchesSerial pins the PR's core determinism claim: the
// sharded topology run is byte-identical to the serial run under EVERY
// router, capped and uncapped — results, query latencies, decision rings,
// and spans. The policy is the tie-storm policy, the nastiest timer/plan
// mix in the repo, so wrapper timers (CapTimerTag) must coexist with policy
// timers without reordering anything.
func TestTopologyWorkersMatchesSerial(t *testing.T) {
	for _, name := range RouterNames {
		router, err := RouterByName(name)
		if err != nil {
			t.Fatal(err)
		}
		// 16 W binds hard for six cores (modeled floor ≈12.4 W, max ≈22.5 W).
		for _, capW := range []float64{0, 16} {
			for _, workers := range []int{2, 4, 9} {
				trS, decS, spS := runTopoOnce(router, capW, 1)
				trP, decP, spP := runTopoOnce(router, capW, workers)
				if !reflect.DeepEqual(trS, trP) {
					t.Fatalf("router=%s cap=%v workers=%d: topology results diverge from serial",
						name, capW, workers)
				}
				if !reflect.DeepEqual(decS, decP) {
					t.Fatalf("router=%s cap=%v workers=%d: decision traces diverge (%d vs %d)",
						name, capW, workers, len(decS), len(decP))
				}
				if !reflect.DeepEqual(spS, spP) {
					t.Fatalf("router=%s cap=%v workers=%d: span traces diverge (%d vs %d)",
						name, capW, workers, len(spS), len(spP))
				}
			}
		}
	}
}

// TestTopologyRoutingDrawsIsolated proves the partitioned-RNG contract at the
// topology level: RouterPowerAware draws from the routing stream, and those
// draws must not perturb a workload built from the same base seed.
func TestTopologyRoutingDrawsIsolated(t *testing.T) {
	const seed = 7
	before := BenchWorkload(200, seed)

	wl := clusterWorkload(200, 3, 5, seed)
	tc := TopologyConfig{
		Sim:      DefaultConfig(),
		Topology: Topology{Shards: 4, ReplicasPerShard: 3},
		Router:   RouterPowerAware{},
		Seed:     seed,
	}
	RunTopology(tc, wl, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })

	after := BenchWorkload(200, seed)
	for i := range before.Requests {
		a, b := before.Requests[i], after.Requests[i]
		if a.ArrivalMs != b.ArrivalMs || a.WorkTotal != b.WorkTotal {
			t.Fatalf("workload request %d perturbed by power-aware routing draws", i)
		}
	}
}

func TestTopologyPublishesClusterMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	wl := clusterWorkload(90, 2, 6, 13)
	tc := TopologyConfig{
		Sim:       DefaultConfig(),
		Topology:  Topology{Shards: 3, ReplicasPerShard: 2},
		Router:    RouterPowerAware{},
		Seed:      13,
		PowerCapW: 15, // between the six-core floor (~12.4 W) and max (~22.5 W): must throttle
		Metrics:   telemetry.NewClusterMetrics(reg),
	}
	tr := RunTopology(tc, wl, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })

	var sum uint64
	for _, n := range tr.RouteCounts {
		sum += n
	}
	if want := uint64(tr.Queries * tc.Topology.Shards); sum != want {
		t.Fatalf("route counts sum %d, want %d", sum, want)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	expo := sb.String()
	for _, fam := range []string{
		telemetry.ClusterRouteTotalName,
		telemetry.ClusterCapThrottleName,
		telemetry.ClusterModeledPowerWName,
		telemetry.ClusterQueryLatencyMsName,
	} {
		if !strings.Contains(expo, fam) {
			t.Errorf("exposition missing family %s", fam)
		}
	}
	if !strings.Contains(expo, `shard="0"`) || !strings.Contains(expo, `replica="1"`) {
		t.Errorf("exposition missing shard/replica labels:\n%s", expo)
	}
	if tr.CapThrottles == 0 {
		t.Error("40 W cap over 6 cores never throttled — smoke telemetry would be empty")
	}
}

// FuzzRouterEquivalence is the CI smoke fuzz: arbitrary (seed, router, cap)
// triples must keep the sharded topology run byte-identical to the serial
// one — both the TopologyResult and the merged timeline export.
func FuzzRouterEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0))
	f.Add(int64(7), uint8(1), uint8(1))
	f.Add(int64(42), uint8(2), uint8(2))
	f.Add(int64(-9), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, ri, capSel uint8) {
		router, err := RouterByName(RouterNames[int(ri)%len(RouterNames)])
		if err != nil {
			t.Fatal(err)
		}
		capW := 0.0
		switch capSel % 3 {
		case 1:
			capW = 14 // tight for six cores (floor ≈12.4 W): throttles constantly
		case 2:
			capW = 19 // loose (max ≈22.5 W): throttles only under bursts
		}
		run := func(workers int) (*TopologyResult, []byte) {
			wl := clusterWorkload(150, 2, 6, seed)
			cfg := DefaultConfig()
			cfg.Series = NewRunTimeseries(cfg.Ladder, wl.DurationMs, 50)
			tc := TopologyConfig{
				Sim:       cfg,
				Topology:  Topology{Shards: 3, ReplicasPerShard: 2},
				Router:    router,
				Seed:      seed,
				PowerCapW: capW,
			}
			tr := RunTopologyWorkers(tc, wl, workers, mkCountingPolicy)
			var buf bytes.Buffer
			if err := cfg.Series.WriteJSONL(&buf); err != nil {
				t.Fatal(err)
			}
			return tr, buf.Bytes()
		}
		serial, serialTL := run(1)
		sharded, shardedTL := run(4)
		if !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("seed=%d router=%s cap=%v: sharded run diverges from serial",
				seed, router.Name(), capW)
		}
		if !bytes.Equal(serialTL, shardedTL) {
			t.Fatalf("seed=%d router=%s cap=%v: sharded timeline diverges from serial",
				seed, router.Name(), capW)
		}
	})
}
