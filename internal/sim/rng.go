package sim

import "math/rand"

// Partitioned, per-subsystem RNG plumbing.
//
// The simulator historically carried one shared *rand.Rand per seeded entry
// point. That breaks down as subsystems multiply: with a single stream,
// adding one extra draw in the routing layer would shift every subsequent
// workload-generation draw, so turning a router on or off (or changing how
// often it tie-breaks randomly) would silently change which queries arrive
// and how much jitter they carry. PartitionedRNG gives each subsystem its own
// independently seeded stream, derived deterministically from one base seed,
// so draws in one subsystem can never perturb another's sequence — the
// property TestRNGStreamIsolation locks in.
//
// Backward compatibility is part of the contract: the workload stream is
// seeded with the base seed verbatim, so every pre-partitioning workload
// builder (BuildWorkload, BenchWorkload) reproduces its historical request
// sequences bit-for-bit (TestWorkloadStreamMatchesLegacy and the golden
// results in TestGoldenResultsUnchangedByRNGRefactor).
//
// This file is the only non-test file in internal/sim allowed to construct a
// raw rand.NewSource: the geminivet nodeterminism analyzer bans it everywhere
// else in the package so new code cannot quietly re-introduce a shared
// stream.

// Subsystem names one independent random stream of a simulation run.
type Subsystem uint8

const (
	// SubsystemWorkload drives workload generation: query sampling and
	// per-request execution jitter. Its stream is seeded with the base seed
	// verbatim for bit-compatibility with the pre-partitioning builders.
	SubsystemWorkload Subsystem = iota
	// SubsystemRouting drives replica-selection draws in the cluster
	// topology layer (random tie-breaks in RouterPowerAware).
	SubsystemRouting
	// SubsystemSched is reserved for scheduler-side draws (e.g. randomized
	// policy perturbations); no production code draws from it yet, but the
	// stream's independence is already under test so adopting it later
	// cannot disturb existing sequences.
	SubsystemSched

	numSubsystems
)

// String returns the subsystem's stable name (used in tests and docs).
func (s Subsystem) String() string {
	switch s {
	case SubsystemWorkload:
		return "workload"
	case SubsystemRouting:
		return "routing"
	case SubsystemSched:
		return "sched"
	default:
		return "unknown"
	}
}

// PartitionedRNG derives one lazily-initialized *rand.Rand per subsystem from
// a single base seed. Streams are mutually independent: draws on one never
// advance another, and the per-subsystem seed derivation is a fixed function
// of (base seed, subsystem) so the same base seed always reproduces the same
// set of streams. Not safe for concurrent use — the simulator's determinism
// discipline confines each stream to one serial pass (workload build, routing
// pre-pass) anyway.
type PartitionedRNG struct {
	seed    int64
	streams [numSubsystems]*rand.Rand
}

// NewPartitionedRNG returns a partitioned RNG rooted at the base seed.
func NewPartitionedRNG(seed int64) *PartitionedRNG {
	return &PartitionedRNG{seed: seed}
}

// Seed returns the base seed the streams derive from.
func (p *PartitionedRNG) Seed() int64 { return p.seed }

// Stream returns the subsystem's RNG, creating it on first use.
func (p *PartitionedRNG) Stream(sub Subsystem) *rand.Rand {
	if sub >= numSubsystems {
		sub = numSubsystems - 1
	}
	if p.streams[sub] == nil {
		p.streams[sub] = rand.New(rand.NewSource(streamSeed(p.seed, sub)))
	}
	return p.streams[sub]
}

// Workload returns the workload-generation stream (query sampling + jitter).
func (p *PartitionedRNG) Workload() *rand.Rand { return p.Stream(SubsystemWorkload) }

// Routing returns the replica-selection stream.
func (p *PartitionedRNG) Routing() *rand.Rand { return p.Stream(SubsystemRouting) }

// Sched returns the reserved scheduler stream.
func (p *PartitionedRNG) Sched() *rand.Rand { return p.Stream(SubsystemSched) }

// streamSeed derives the subsystem's seed. The workload subsystem uses the
// base seed verbatim (bit-compatibility with the single-stream past); every
// other subsystem mixes the base seed with a subsystem-specific constant
// through a splitmix64 finalizer, so the derived seeds are decorrelated from
// the base seed and from each other even for adjacent base seeds.
func streamSeed(seed int64, sub Subsystem) int64 {
	if sub == SubsystemWorkload {
		return seed
	}
	x := uint64(seed) ^ (0x9E3779B97F4A7C15 * uint64(sub))
	// splitmix64 finalizer.
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
