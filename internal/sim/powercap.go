package sim

import "gemini/internal/cpu"

// Cluster power capping (Pegasus's original setting, lifted from one socket
// to the whole topology): a coordinator tracks modeled cluster watts under
// the CMOS power model and throttles per-replica frequency ceilings whenever
// the cap is exceeded.
//
// The coordinator lives entirely inside the deterministic routing pre-pass.
// At every control-interval boundary it recomputes, from scratch, the
// cheapest set of per-replica ceilings that brings the modeled cluster power
// under the cap given the replicas' current modeled load — stateless per
// boundary, which buys two properties the tests pin down:
//
//   - the invariant: modeled cluster power exceeds the cap for at most one
//     control interval — the boundary after a load spike always restores it
//     (or proves the cap is below the all-floor power, the physical limit);
//   - monotonicity: a higher cap's greedy throttle sequence is a prefix of a
//     lower cap's, so every ceiling is pointwise ≥ under a looser cap and
//     relaxing the cap can only improve tail latency on a fixed routing
//     (TestPowerCapMonotonicity).
//
// The resulting per-replica ceiling schedules are fixed before any core
// simulates, so cores stay share-nothing: each core's policy is wrapped in a
// cappedPolicy that replays its schedule via timers and clamps the frequency,
// and sharded execution stays byte-identical to serial.

// DefaultCapIntervalMs is the coordinator's control interval — 100 ms, the
// order of Pegasus's power-sampling epoch and long against Tdvfs.
const DefaultCapIntervalMs = 100.0

// CapTimerTag is the reserved (negative) timer tag cappedPolicy uses to
// replay ceiling schedules. Policies under topology runs must keep their own
// timer tags non-negative (every in-repo policy uses tag 0).
const CapTimerTag int64 = -1

// SampleTimerTag is the reserved (negative) timer tag the timeline sampler
// (Config.Series) rides. Both engine loops intercept it before OnTimer, so
// no policy — cappedPolicy included — ever observes it.
const SampleTimerTag int64 = -2

// CeilingStep is one scheduled ceiling change for a replica core.
type CeilingStep struct {
	AtMs    float64
	Ceiling cpu.Freq
}

// PowerCapCoordinator enforces a modeled cluster power cap over the routing
// pre-pass's virtual replica state. See the file comment for the discipline.
type PowerCapCoordinator struct {
	capW       float64
	intervalMs float64
	model      *cpu.PowerModel
	ladder     *cpu.Ladder
	st         *RouteState

	next      float64 // next unprocessed boundary
	throttles int
	seriesT   []float64 // boundary timestamps, in processing order
	seriesW   []float64 // modeled watts per boundary, post-adjustment
	seriesThr []int     // ceiling step-downs applied at each boundary
	schedules [][]CeilingStep
}

func newPowerCapCoordinator(capW, intervalMs float64, model *cpu.PowerModel, ladder *cpu.Ladder, st *RouteState) *PowerCapCoordinator {
	if intervalMs <= 0 {
		intervalMs = DefaultCapIntervalMs
	}
	return &PowerCapCoordinator{
		capW:       capW,
		intervalMs: intervalMs,
		model:      model,
		ladder:     ladder,
		st:         st,
		next:       intervalMs,
		schedules:  make([][]CeilingStep, len(st.ceilings)),
	}
}

// advanceTo processes every control boundary up to and including now.
func (pc *PowerCapCoordinator) advanceTo(now float64) {
	for pc.next <= now {
		pc.adjust(pc.next)
		pc.next += pc.intervalMs
	}
}

// finishTo processes the remaining boundaries through the workload horizon.
func (pc *PowerCapCoordinator) finishTo(endMs float64) { pc.advanceTo(endMs) }

// Schedule returns the core's ceiling-change schedule in time order.
func (pc *PowerCapCoordinator) Schedule(core int) []CeilingStep { return pc.schedules[core] }

// adjust recomputes every replica's ceiling at boundary t. Ceilings restart
// from the ladder top (statelessness), then the replica with the highest
// modeled planned frequency is stepped down one ladder level at a time until
// the modeled cluster power fits under the cap or every loaded replica sits
// at the floor.
func (pc *PowerCapCoordinator) adjust(t float64) {
	st := pc.st
	n := len(st.ceilings)
	top, floor := pc.ladder.Max(), pc.ladder.Min()
	throttlesBefore := pc.throttles

	// Uncapped plan: what each replica would run with no ceiling.
	base := make([]cpu.Freq, n)
	eff := make([]cpu.Freq, n)
	busy := make([]bool, n)
	watts := pc.model.UncoreW
	for c := 0; c < n; c++ {
		base[c] = plannedFreqFor(st.vFinish[c]-t, st.budgetMs, pc.ladder, top)
		eff[c] = base[c]
		busy[c] = st.vFinish[c] > t
		watts += pc.model.CoreW(eff[c], busy[c])
	}
	ceil := make([]cpu.Freq, n)
	for c := range ceil {
		ceil[c] = top
	}
	for watts > pc.capW {
		// Highest effective planned frequency, lowest index on ties.
		hot := -1
		for c := 0; c < n; c++ {
			if eff[c] > floor && (hot < 0 || eff[c] > eff[hot]) {
				hot = c
			}
		}
		if hot < 0 {
			break // every replica at the floor: the cap is below modeled minimum
		}
		nf := pc.ladder.StepDown(eff[hot])
		watts -= pc.model.CoreW(eff[hot], busy[hot])
		eff[hot] = nf
		ceil[hot] = nf
		watts += pc.model.CoreW(eff[hot], busy[hot])
		pc.throttles++
	}
	// Commit: emit schedule steps only where the ceiling actually changed.
	for c := 0; c < n; c++ {
		//gemini:allow floatcmp -- ceilings are discrete ladder levels; the exact no-change check suppresses redundant schedule steps
		if ceil[c] != st.ceilings[c] {
			pc.schedules[c] = append(pc.schedules[c], CeilingStep{AtMs: t, Ceiling: ceil[c]})
			st.ceilings[c] = ceil[c]
		}
	}
	pc.seriesT = append(pc.seriesT, t)
	pc.seriesW = append(pc.seriesW, watts)
	pc.seriesThr = append(pc.seriesThr, pc.throttles-throttlesBefore)
}

// FloorW returns the modeled cluster power with every replica loaded at the
// ladder floor — the lowest wattage throttling can reach; a cap below it is
// physically unenforceable and the invariant tests bound against it.
func (pc *PowerCapCoordinator) FloorW() float64 {
	return ClusterFloorW(pc.model, pc.ladder, len(pc.st.ceilings))
}

// ClusterFloorW is the modeled cluster power of `cores` busy replicas at the
// ladder floor plus uncore — the hard lower bound of cap enforcement.
func ClusterFloorW(m *cpu.PowerModel, l *cpu.Ladder, cores int) float64 {
	return m.UncoreW + float64(cores)*m.CoreW(l.Min(), true)
}

// cappedPolicy wraps a per-core policy with a fixed ceiling schedule: it
// replays the coordinator's CeilingSteps through reserved timers and clamps
// the core's frequency to the ceiling after every policy decision. The
// wrapper tracks the frequency it clamped away from so a later relaxation
// restores the policy's own choice (a hardware ceiling limits the governor's
// setpoint, it does not rewrite it). Planned future changes the inner policy
// scheduled are clamped at the next callback or boundary — control-interval
// granularity, same as the coordinator's own model.
type cappedPolicy struct {
	inner Policy
	steps []CeilingStep
	i     int
	// ceiling is the currently-active ceiling; clampedFrom, when positive,
	// is the frequency the wrapper forced down from (and the inner policy
	// has not overridden since).
	ceiling     cpu.Freq
	clampedFrom cpu.Freq
}

// wrapCapped returns pol unchanged when the schedule is empty (the cap never
// bound for this core), so uncapped runs carry zero wrapper overhead.
func wrapCapped(pol Policy, steps []CeilingStep) Policy {
	if len(steps) == 0 {
		return pol
	}
	return &cappedPolicy{inner: pol, steps: steps}
}

func (p *cappedPolicy) Name() string { return p.inner.Name() }

func (p *cappedPolicy) Init(s *Sim) {
	p.ceiling = s.Ladder().Max()
	p.inner.Init(s)
	p.afterInner(s)
	p.arm(s)
}

func (p *cappedPolicy) OnArrival(s *Sim, r *Request) {
	p.inner.OnArrival(s, r)
	p.afterInner(s)
}

func (p *cappedPolicy) OnStart(s *Sim, r *Request) {
	p.inner.OnStart(s, r)
	p.afterInner(s)
}

func (p *cappedPolicy) OnDeparture(s *Sim, r *Request) {
	p.inner.OnDeparture(s, r)
	p.afterInner(s)
}

func (p *cappedPolicy) OnTimer(s *Sim, tag int64) {
	if tag == CapTimerTag {
		p.applySteps(s)
		p.arm(s)
		return
	}
	p.inner.OnTimer(s, tag)
	p.afterInner(s)
}

// arm schedules the next pending ceiling step.
func (p *cappedPolicy) arm(s *Sim) {
	if p.i < len(p.steps) {
		s.SetTimer(p.steps[p.i].AtMs, CapTimerTag)
	}
}

// applySteps applies every step due at or before now, then re-clamps or
// restores the frequency against the new ceiling.
func (p *cappedPolicy) applySteps(s *Sim) {
	now := s.Now()
	for p.i < len(p.steps) && p.steps[p.i].AtMs <= now {
		p.ceiling = p.steps[p.i].Ceiling
		p.i++
	}
	switch {
	case s.Freq() > p.ceiling:
		if p.clampedFrom <= 0 {
			p.clampedFrom = s.Freq()
		}
		s.SetFreq(p.ceiling)
	case p.clampedFrom > 0 && p.ceiling > s.Freq():
		restore := p.clampedFrom
		if restore > p.ceiling {
			restore = p.ceiling // partially restored; the wrapper still owes the rest
		} else {
			p.clampedFrom = 0 // fully restored: the policy's choice is back
		}
		s.SetFreq(restore)
	}
}

// afterInner clamps whatever frequency the inner policy just chose. The
// policy's own choice supersedes any earlier clamp bookkeeping.
func (p *cappedPolicy) afterInner(s *Sim) {
	p.clampedFrom = 0
	if s.Freq() > p.ceiling {
		p.clampedFrom = s.Freq()
		s.SetFreq(p.ceiling)
	}
}
