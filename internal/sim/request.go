// Package sim is the discrete-event simulator of a single-working-thread
// Index Serving Node (paper §V): a blocking FIFO queue in front of one CPU
// core with per-core DVFS, the constant transition stall Tdvfs, and energy
// integration against the cpu.PowerModel. Policies (Baseline, Pegasus,
// Rubik, the Gemini variants) drive the core's frequency through the Sim's
// control surface from arrival/start/departure/timer callbacks.
package sim

import (
	"gemini/internal/corpus"
	"gemini/internal/cpu"
	"gemini/internal/search"
)

// Request is one search query flowing through the ISN.
type Request struct {
	ID       int
	Query    corpus.Query
	Features search.FeatureVector

	// BaseWork is the deterministic execution cost; WorkTotal includes the
	// per-execution jitter and is the ground truth the simulator executes.
	// Policies must not read WorkTotal — they only see Features and their
	// predictors (PACE-oracle, the clairvoyant bound, is the one exception).
	BaseWork  cpu.Work
	WorkTotal cpu.Work

	ArrivalMs  float64
	DeadlineMs float64

	// Lifecycle, maintained by the simulator.
	Started  bool
	StartMs  float64
	WorkDone cpu.Work
	FinishMs float64
	Done     bool
	Dropped  bool

	// Policy scratch: the service-time and error predictions made for this
	// request (diagnostics only; the simulator ignores them).
	PredictedMs float64
	PredErrMs   float64

	// poolIdx is the request's index into the engine's struct-of-arrays pool
	// (its position in the workload), stamped by requestPool.load at the
	// start of every run.
	poolIdx int32
}

// LatencyMs returns completion latency (finish − arrival); for dropped
// requests it is the time until the drop.
//
//gemini:hotpath
func (r *Request) LatencyMs() float64 { return r.FinishMs - r.ArrivalMs }

// Violated reports whether the request missed its deadline (dropped requests
// count as violations: the aggregator never got their results in time).
//
//gemini:hotpath
func (r *Request) Violated() bool {
	return r.Dropped || (r.Done && r.FinishMs > r.DeadlineMs)
}

// Remaining returns the work left to execute.
//
//gemini:hotpath
func (r *Request) Remaining() cpu.Work { return r.WorkTotal - r.WorkDone }

// PreparedQuery caches the execution-derived properties of a pool query so
// trace-driven workloads do not re-run retrieval for every arrival.
type PreparedQuery struct {
	Query    corpus.Query
	Features search.FeatureVector
	BaseWork cpu.Work
}

// PrepareQueries executes each query once on the engine to derive its
// features and deterministic base work.
func PrepareQueries(e *search.Engine, x *search.Extractor, cm *search.CostModel, queries []corpus.Query) []PreparedQuery {
	out := make([]PreparedQuery, len(queries))
	for i, q := range queries {
		ex := e.Search(q)
		out[i] = PreparedQuery{
			Query:    q,
			Features: x.Features(q),
			BaseWork: cm.WorkFor(ex.Stats),
		}
	}
	return out
}

// Predictions is a per-request table of NN predictor outputs, indexed by
// Request.ID. The harness precomputes it once per workload (predictions
// depend only on a request's features, never on the policy or the run), so
// every policy simulating the workload shares one table instead of re-running
// both NN forwards per request — O(requests) forwards for a whole policy
// sweep instead of O(policies × requests). The table is read-only during
// simulation and therefore safe to share across concurrent runs.
type Predictions struct {
	ServiceMs []float64 // S*: service-time predictor output (eq. 1)
	ErrMs     []float64 // E*: error predictor output (eq. 6)
}

// Lookup returns the cached pair for r and whether the table covers it.
func (p *Predictions) Lookup(r *Request) (svcMs, errMs float64, ok bool) {
	if p == nil || r.ID < 0 || r.ID >= len(p.ServiceMs) {
		return 0, 0, false
	}
	return p.ServiceMs[r.ID], p.ErrMs[r.ID], true
}

// Workload is a fully materialized request sequence for one simulation run.
type Workload struct {
	Requests   []*Request
	DurationMs float64
	BudgetMs   float64
	// Preds, when non-nil, holds precomputed per-request predictions shared
	// by every policy simulating this workload (see Predictions).
	Preds *Predictions
}

// BuildWorkload samples one pool query per arrival (uniformly, seeded) and
// applies a fresh jitter draw per request instance — the same query arriving
// twice takes different measured times, as on real hardware.
//
// Draws come from the seed's workload stream (PartitionedRNG), which is
// bit-compatible with the historical shared rand.New(rand.NewSource(seed)):
// the same seed yields the same requests it always has, and draws on any
// other subsystem (routing, sched) can never perturb them.
func BuildWorkload(pool []PreparedQuery, arrivals []float64, jitter *search.Jitter, budgetMs, durationMs float64, seed int64) *Workload {
	rng := NewPartitionedRNG(seed).Workload()
	reqs := make([]*Request, len(arrivals))
	for i, at := range arrivals {
		pq := pool[rng.Intn(len(pool))]
		reqs[i] = &Request{
			ID:         i,
			Query:      pq.Query,
			Features:   pq.Features,
			BaseWork:   pq.BaseWork,
			WorkTotal:  jitter.MeasuredWork(pq.BaseWork, pq.Features, rng),
			ArrivalMs:  at,
			DeadlineMs: at + budgetMs,
		}
	}
	if durationMs == 0 && len(arrivals) > 0 {
		durationMs = arrivals[len(arrivals)-1] + budgetMs
	}
	return &Workload{Requests: reqs, DurationMs: durationMs, BudgetMs: budgetMs}
}
