package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/telemetry"
)

// Differential tests: the calendar engine must be indistinguishable from the
// reference linear engine on every observable surface — results (latencies,
// energy, event counts), decision traces, span waterfalls, and the exact
// sequence of policy callbacks. These tests run the same workload+policy
// under both Config.Engine values and require deep equality.

// callbackLog records every policy callback with its full observable context
// so the two engines can be compared on the exact sequence a policy sees.
type callbackLog struct {
	kind  string
	now   float64
	freq  cpu.Freq
	qlen  int
	reqID int
	tag   int64
}

// loggingPolicy wraps a policy, recording each callback before delegating.
type loggingPolicy struct {
	inner Policy
	log   []callbackLog
}

func (p *loggingPolicy) Name() string { return p.inner.Name() }
func (p *loggingPolicy) record(kind string, s *Sim, reqID int, tag int64) {
	p.log = append(p.log, callbackLog{
		kind: kind, now: s.Now(), freq: s.Freq(), qlen: len(s.Queue()),
		reqID: reqID, tag: tag,
	})
}
func (p *loggingPolicy) Init(s *Sim) {
	p.record("init", s, -1, 0)
	p.inner.Init(s)
}
func (p *loggingPolicy) OnArrival(s *Sim, r *Request) {
	p.record("arrival", s, r.ID, 0)
	p.inner.OnArrival(s, r)
}
func (p *loggingPolicy) OnStart(s *Sim, r *Request) {
	p.record("start", s, r.ID, 0)
	p.inner.OnStart(s, r)
}
func (p *loggingPolicy) OnDeparture(s *Sim, r *Request) {
	p.record("departure", s, r.ID, 0)
	p.inner.OnDeparture(s, r)
}
func (p *loggingPolicy) OnTimer(s *Sim, tag int64) {
	p.record("timer", s, -1, tag)
	p.inner.OnTimer(s, tag)
}

// runEngine executes one freshly-built workload/policy pair under the given
// engine with full observability enabled, returning everything comparable.
func runEngine(engine Engine, wl *Workload, pol Policy) (*Result, []telemetry.Decision, []telemetry.Span, []callbackLog) {
	cfg := DefaultConfig()
	cfg.Engine = engine
	cfg.RecordFreqTrace = true
	cfg.Tracer = telemetry.NewTracer(4 * len(wl.Requests))
	cfg.Spans = telemetry.NewSpanTracer(8 * len(wl.Requests))
	lp := &loggingPolicy{inner: pol}
	res := Run(cfg, wl, lp)
	return res, cfg.Tracer.Ring().Snapshot(0), cfg.Spans.Spans(), lp.log
}

// assertEnginesEqual runs both engines on independently-built (but identical)
// workloads and policies and requires every observable to match exactly.
func assertEnginesEqual(t *testing.T, label string, mkWl func() *Workload, mkPol func() Policy) {
	t.Helper()
	resL, decL, spL, logL := runEngine(EngineLinear, mkWl(), mkPol())
	resC, decC, spC, logC := runEngine(EngineCalendar, mkWl(), mkPol())

	if !reflect.DeepEqual(logL, logC) {
		n := len(logL)
		if len(logC) < n {
			n = len(logC)
		}
		for i := 0; i < n; i++ {
			if logL[i] != logC[i] {
				t.Fatalf("%s: callback %d diverges:\n  linear:   %+v\n  calendar: %+v",
					label, i, logL[i], logC[i])
			}
		}
		t.Fatalf("%s: callback log lengths diverge: linear %d, calendar %d",
			label, len(logL), len(logC))
	}
	if !reflect.DeepEqual(resL, resC) {
		t.Fatalf("%s: results diverge:\n  linear:   %+v\n  calendar: %+v", label, resL, resC)
	}
	if resL.Events != resC.Events {
		t.Fatalf("%s: event counts diverge: linear %d, calendar %d", label, resL.Events, resC.Events)
	}
	if !reflect.DeepEqual(decL, decC) {
		t.Fatalf("%s: decision traces diverge (%d vs %d decisions)", label, len(decL), len(decC))
	}
	if !reflect.DeepEqual(spL, spC) {
		t.Fatalf("%s: span traces diverge (%d vs %d spans)", label, len(spL), len(spC))
	}
}

// tieStormPolicy deliberately provokes every tie-break path: same-instant
// planned changes and timers, past-due (clamped) timestamps, clears that
// cancel pending plans, and periodic drops — all on quantized integer
// timestamps so exact-equality ties are the norm, not the exception.
type tieStormPolicy struct {
	arrivals int
	timers   int
}

func (p *tieStormPolicy) Name() string { return "tiestorm" }
func (p *tieStormPolicy) Init(s *Sim) {
	s.SetFreq(cpu.FDefault)
	// Three timers at the same instant plus one already in the past (clamps
	// to now=0): four same-instant events right at t=10 and t=0.
	s.SetTimer(10, 1)
	s.SetTimer(10, 2)
	s.SetTimer(10, 3)
	s.SetTimer(-5, 4)
}
func (p *tieStormPolicy) OnArrival(s *Sim, r *Request) {
	p.arrivals++
	now := s.Now()
	lv := s.Ladder().Levels()
	// Two plans at the same future instant, one at the current instant, one
	// in the past (both clamp to now) — then sometimes cancel them all and
	// replan, exercising generation-based clearing under ties.
	s.PlanFreqChange(now+4, lv[p.arrivals%len(lv)])
	s.PlanFreqChange(now+4, lv[(p.arrivals+3)%len(lv)])
	s.PlanFreqChange(now, lv[(p.arrivals+5)%len(lv)])
	s.PlanFreqChange(now-2, lv[(p.arrivals+1)%len(lv)])
	if p.arrivals%3 == 0 {
		s.ClearPlannedChanges()
		s.PlanFreqChange(now+4, lv[(p.arrivals+2)%len(lv)])
	}
	s.SetTimer(now+4, int64(100+p.arrivals)) // collides with the planned instant
	if p.arrivals%7 == 0 {
		if q := s.Queue(); len(q) > 1 {
			s.Drop(q[len(q)-1])
		}
	}
}
func (p *tieStormPolicy) OnStart(s *Sim, r *Request) {
	if r.ID%5 == 0 {
		s.Stall(1)
	}
}
func (p *tieStormPolicy) OnDeparture(s *Sim, r *Request) {
	s.PlanFreqChange(s.Now(), cpu.FDefault) // same-instant with the departure
}
func (p *tieStormPolicy) OnTimer(s *Sim, tag int64) {
	p.timers++
	if tag < 100 && s.Now() < 200 {
		s.SetTimer(s.Now()+10, tag) // re-arm: keeps the same-instant cluster alive
	}
	if p.timers%4 == 0 {
		s.ClearPlannedChanges()
	}
}

// tieWorkload builds a workload with coinciding arrivals on integer
// timestamps so arrivals tie with timers and planned changes.
func tieWorkload(n int) *Workload {
	reqs := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		at := float64((i / 2) * 4) // pairs of simultaneous arrivals every 4 ms
		work := float64(8 + (i*7)%30)
		reqs = append(reqs, [2]float64{at, work})
	}
	return mkWorkload(25, float64(n*2+50), reqs...)
}

func TestEnginesEquivalentTieStorm(t *testing.T) {
	for _, n := range []int{1, 2, 7, 40, 150} {
		assertEnginesEqual(t, "tiestorm",
			func() *Workload { return tieWorkload(n) },
			func() Policy { return &tieStormPolicy{} })
	}
}

func TestEnginesEquivalentFixed(t *testing.T) {
	assertEnginesEqual(t, "fixed",
		func() *Workload { return tieWorkload(60) },
		func() Policy { return &FixedPolicy{F: cpu.FMax} })
}

// chaosWorkload builds a pseudo-random workload; same seed, same workload.
func chaosWorkload(seed int64, n int) *Workload {
	rng := rand.New(rand.NewSource(seed))
	reqs := make([][2]float64, 0, n)
	at := 0.0
	for i := 0; i < n; i++ {
		// Mix exact-integer arrivals (tie-prone) with irrational-ish ones.
		if rng.Intn(3) == 0 {
			at = float64(int(at) + rng.Intn(3))
		} else {
			at += rng.ExpFloat64() * 3
		}
		reqs = append(reqs, [2]float64{at, 2 + rng.Float64()*40})
	}
	return mkWorkload(30, at+100, reqs...)
}

func TestEnginesEquivalentChaos(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		n := 20 + int(seed)*7
		assertEnginesEqual(t, "chaos",
			func() *Workload { return chaosWorkload(seed, n) },
			func() Policy { return &chaosPolicy{rng: rand.New(rand.NewSource(seed * 31))} })
	}
}

func FuzzEngineEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(10))
	f.Add(int64(42), uint8(100))
	f.Add(int64(-7), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		nn := int(n)%200 + 1
		assertEnginesEqual(t, "fuzz",
			func() *Workload { return chaosWorkload(seed, nn) },
			func() Policy { return &chaosPolicy{rng: rand.New(rand.NewSource(seed ^ 0x9e3779b9))} })
	})
}
