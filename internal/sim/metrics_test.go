package sim

import (
	"math/rand"
	"sort"
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/telemetry"
)

// TestLatenciesSortedContract asserts the Result.Latencies sealed contract:
// sorted ascending regardless of the order completions were recorded in.
func TestLatenciesSortedContract(t *testing.T) {
	// Direct seal path: record latencies badly out of order.
	r := newResult("test", &Workload{})
	for _, lat := range []float64{9, 1, 30, 4, 2} {
		r.recordCompletion(&Request{ArrivalMs: 0, FinishMs: lat, DeadlineMs: 100, Done: true})
	}
	r.seal(cpu.NewEnergyAccumulator(cpu.DefaultPowerModel()), 0, 100)
	if !sort.Float64sAreSorted(r.Latencies) {
		t.Fatalf("seal left Latencies unsorted: %v", r.Latencies)
	}
	if r.TailLatencyMs(100) != 30 || r.TailLatencyMs(0) != 1 {
		t.Errorf("percentiles off a sorted result: p0=%v p100=%v", r.TailLatencyMs(0), r.TailLatencyMs(100))
	}

	// Full run path: a bursty workload completes requests in arrival order
	// but with wildly varying latencies; the returned Result must be sorted.
	rng := rand.New(rand.NewSource(7))
	wl := &Workload{BudgetMs: 40}
	at := 0.0
	for i := 0; i < 400; i++ {
		at += rng.ExpFloat64() * 8
		w := cpu.Work((1 + rng.Float64()*25) * 2.7)
		wl.Requests = append(wl.Requests, &Request{
			ID: i, BaseWork: w, WorkTotal: w,
			ArrivalMs: at, DeadlineMs: at + 40,
		})
	}
	wl.DurationMs = at + 200
	res := Run(DefaultConfig(), wl, &FixedPolicy{F: 1.4})
	if len(res.Latencies) == 0 {
		t.Fatal("no latencies recorded")
	}
	if !sort.Float64sAreSorted(res.Latencies) {
		t.Fatal("Run returned unsorted Latencies")
	}
}

// traceWorkload builds a small deterministic stream for tracer tests.
func traceWorkload(n int, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	wl := &Workload{BudgetMs: 40}
	at := 0.0
	for i := 0; i < n; i++ {
		at += rng.ExpFloat64() * 20
		w := cpu.Work((2 + rng.Float64()*18) * 2.7)
		wl.Requests = append(wl.Requests, &Request{
			ID: i, BaseWork: w, WorkTotal: w,
			ArrivalMs: at, DeadlineMs: at + 40,
		})
	}
	wl.DurationMs = at + 100
	return wl
}

// TestTracerEmitsOneDecisionPerRequest checks the sim-side decision trace:
// one record per request, outcome fields filled, energy and transitions
// attributed.
func TestTracerEmitsOneDecisionPerRequest(t *testing.T) {
	wl := traceWorkload(200, 3)
	tr := telemetry.NewTracer(1024)
	cfg := DefaultConfig()
	cfg.Tracer = tr
	res := Run(cfg, wl, &FixedPolicy{F: cpu.FDefault})

	if got := int(tr.Emitted()); got != res.Completed+res.Dropped {
		t.Fatalf("decisions = %d, want completed+dropped = %d", got, res.Completed+res.Dropped)
	}
	var energy float64
	for _, d := range tr.Ring().Snapshot(0) {
		if d.StartFreqGHz != float64(cpu.FDefault) {
			t.Fatalf("start freq = %v", d.StartFreqGHz)
		}
		if d.ServiceMs <= 0 || d.ActualMs <= 0 || d.EnergyMJ <= 0 {
			t.Fatalf("outcome fields missing: %+v", d)
		}
		if d.LatencyMs < d.ServiceMs-1e-9 {
			t.Fatalf("latency %v < service %v", d.LatencyMs, d.ServiceMs)
		}
		if d.QueueDepth < 1 {
			t.Fatalf("queue depth = %d", d.QueueDepth)
		}
		if d.Policy != "fixed" {
			t.Fatalf("policy = %q", d.Policy)
		}
		energy += d.EnergyMJ
	}
	// Attributed energy is the busy-time share of the run's total.
	if energy <= 0 || energy > res.EnergyMJ+1e-6 {
		t.Errorf("attributed energy %v vs run total %v", energy, res.EnergyMJ)
	}
}

// TestTracePlanAnnotatesPending verifies the policy-side TracePlan hook and
// that a run without a tracer (the default) emits nothing and keeps working.
func TestTracePlanAnnotatesPending(t *testing.T) {
	wl := traceWorkload(50, 5)
	tr := telemetry.NewTracer(64)
	cfg := DefaultConfig()
	cfg.Tracer = tr
	pol := &hookPolicy{
		init: func(s *Sim) { s.SetFreq(cpu.FDefault) },
		onStart: func(s *Sim, r *Request) {
			if !s.TraceEnabled() {
				t.Error("TraceEnabled false with tracer attached")
			}
			s.TracePlan(r, 1.8, cpu.FDefault, s.Now()+5, -1)
		},
	}
	Run(cfg, wl, pol)
	ds := tr.Ring().Snapshot(0)
	if len(ds) == 0 {
		t.Fatal("no decisions")
	}
	for _, d := range ds {
		if d.InitialFreqGHz != 1.8 || d.BoostFreqGHz != float64(cpu.FDefault) || d.BoostAtMs <= 0 {
			t.Fatalf("plan fields not annotated: %+v", d)
		}
	}

	// No tracer: TracePlan is a cheap no-op.
	wl2 := traceWorkload(50, 5)
	noTrace := &hookPolicy{
		init: func(s *Sim) { s.SetFreq(cpu.FDefault) },
		onStart: func(s *Sim, r *Request) {
			if s.TraceEnabled() {
				t.Error("TraceEnabled true without tracer")
			}
			s.TracePlan(r, 1.8, cpu.FDefault, s.Now()+5, -1)
		},
	}
	res := Run(DefaultConfig(), wl2, noTrace)
	if res.Completed == 0 {
		t.Fatal("run without tracer broke")
	}
}

// TestTracerDropsEmitted checks dropped requests are traced as drops.
func TestTracerDropsEmitted(t *testing.T) {
	wl := traceWorkload(40, 9)
	tr := telemetry.NewTracer(64)
	cfg := DefaultConfig()
	cfg.Tracer = tr
	dropEvery := 0
	pol := &hookPolicy{
		init: func(s *Sim) { s.SetFreq(cpu.FDefault) },
		onArrival: func(s *Sim, r *Request) {
			dropEvery++
			if dropEvery%4 == 0 {
				s.Drop(r)
			}
		},
	}
	res := Run(cfg, wl, pol)
	if res.Dropped == 0 {
		t.Fatal("test needs drops")
	}
	drops := 0
	for _, d := range tr.Ring().Snapshot(0) {
		if d.Dropped {
			drops++
			if !d.Violated {
				t.Error("dropped decision not marked violated")
			}
			if d.ServiceMs != 0 {
				t.Errorf("dropped-before-start decision has service time %v", d.ServiceMs)
			}
		}
	}
	if drops != res.Dropped {
		t.Errorf("traced drops = %d, want %d", drops, res.Dropped)
	}
}

// TestTelemetryDisabledAddsNoAllocsPerRequest is the benchmark guard of the
// issue: with no tracer attached the simulator's per-request marginal
// allocation count must not grow. We measure Run over n and 2n requests and
// require the per-request delta to be ~zero (latency recording off so the
// only appends are the engine's own queue reuse).
func TestTelemetryDisabledAddsNoAllocsPerRequest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordLatencies = false

	const n = 600
	wlA := traceWorkload(n, 11)
	wlB := traceWorkload(2*n, 11)
	reset := func(wl *Workload) {
		for _, r := range wl.Requests {
			r.Started, r.Done, r.Dropped = false, false, false
			r.StartMs, r.FinishMs, r.WorkDone = 0, 0, 0
		}
	}
	pol := &FixedPolicy{F: cpu.FDefault}
	allocsA := testing.AllocsPerRun(20, func() { reset(wlA); Run(cfg, wlA, pol) })
	allocsB := testing.AllocsPerRun(20, func() { reset(wlB); Run(cfg, wlB, pol) })
	perReq := (allocsB - allocsA) / float64(n)
	if perReq > 0.05 {
		t.Errorf("telemetry-disabled path allocates %.3f allocs/request (n: %.0f, 2n: %.0f)",
			perReq, allocsA, allocsB)
	}
}
