package sim

import (
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/par"
	"gemini/internal/telemetry"
)

// benchRun is the shared body of the single-ISN benchmark family: a fresh
// 2000-request BenchWorkload per iteration (built outside the timed region),
// run under the config mkCfg yields. The telemetry/span benchmarks differ
// from the baseline only in mkCfg, so the pairs stay comparable by
// construction.
func benchRun(b *testing.B, mkCfg func() Config) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := BenchWorkload(2000, int64(i))
		cfg := mkCfg()
		b.StartTimer()
		res := Run(cfg, wl, &FixedPolicy{F: cpu.FDefault})
		events += res.Events
	}
	reportEventsPerSec(b, events)
}

// reportEventsPerSec attaches the engine-throughput metric tracked by
// BENCH_sim.json and cmd/benchdiff.
func reportEventsPerSec(b *testing.B, events uint64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(events)/s, "events/sec")
	}
}

func BenchmarkRunFixedPolicy(b *testing.B) {
	benchRun(b, DefaultConfig)
}

func BenchmarkRunWithPowerSeries(b *testing.B) {
	benchRun(b, func() Config {
		cfg := DefaultConfig()
		cfg.PowerSeriesResMs = 1000
		return cfg
	})
}

// BenchmarkRunTelemetryDisabled / ...Enabled are the paired guard for the
// decision-trace hook: the disabled path must cost one nil test per
// lifecycle event and nothing more (see also
// TestTelemetryDisabledAddsNoAllocsPerRequest).
func BenchmarkRunTelemetryDisabled(b *testing.B) {
	benchRun(b, DefaultConfig)
}

func BenchmarkRunTelemetryEnabled(b *testing.B) {
	benchRun(b, func() Config {
		cfg := DefaultConfig()
		cfg.Tracer = telemetry.NewTracer(256)
		return cfg
	})
}

// BenchmarkRunSpansDisabled / ...Enabled are the same paired guard for the
// phase-span hook: with Config.Spans nil the per-request cost is one pointer
// test (the Disabled numbers must match BenchmarkRunFixedPolicy; see also
// TestSpansDisabledAddsNoAllocsPerRequest).
func BenchmarkRunSpansDisabled(b *testing.B) {
	benchRun(b, DefaultConfig)
}

func BenchmarkRunSpansEnabled(b *testing.B) {
	benchRun(b, func() Config {
		cfg := DefaultConfig()
		cfg.Spans = telemetry.NewSpanTracer(256)
		return cfg
	})
}

// BenchmarkRunTimeseriesDisabled / ...Enabled are the paired guard for the
// timeline sampler hooks: with Config.Series nil the engine pays one nil test
// per lifecycle event and per accrued segment (the Disabled numbers must
// match BenchmarkRunFixedPolicy; see also
// TestTimeseriesDisabledAddsNoAllocsPerRequest). The Enabled run samples at
// the 100 ms default interval, sized per-workload so the ring never evicts —
// the acceptance bound is ≤5% events/sec regression vs Disabled.
func BenchmarkRunTimeseriesDisabled(b *testing.B) {
	benchRun(b, DefaultConfig)
}

func BenchmarkRunTimeseriesEnabled(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := BenchWorkload(2000, int64(i))
		cfg := DefaultConfig()
		cfg.Series = NewRunTimeseries(cfg.Ladder, wl.DurationMs, 100)
		b.StartTimer()
		res := Run(cfg, wl, &FixedPolicy{F: cpu.FDefault})
		events += res.Events
	}
	reportEventsPerSec(b, events)
}

// BenchmarkRunEngineLinear / ...Calendar are the single-ISN engine pair: the
// same workload under the reference linear-scan loop and the calendar-queue
// loop. The FixedPolicy floor keeps the pending-event population tiny, so
// this pair bounds the calendar's bookkeeping overhead rather than its
// asymptotic win (BenchmarkClusterLarge* measures that).
func BenchmarkRunEngineLinear(b *testing.B) {
	benchRun(b, func() Config {
		cfg := DefaultConfig()
		cfg.Engine = EngineLinear
		return cfg
	})
}

func BenchmarkRunEngineCalendar(b *testing.B) {
	benchRun(b, DefaultConfig)
}

func BenchmarkDispatch(b *testing.B) {
	wl := BenchWorkload(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dispatch(wl, 8)
	}
}

func BenchmarkRunCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := BenchWorkload(4000, int64(i))
		b.StartTimer()
		RunCluster(DefaultConfig(), wl, 4, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
	}
}

// timerHeavyPolicy drives the event queue the way a real per-core controller
// does: a ladder of staggered periodic timers stays armed for the whole run
// (think Pegasus-style epochs plus per-slot watchdogs) and every arrival
// plans a boost-then-restore frequency pair. Dozens of events are pending
// per core in steady state — where the linear engine's O(pending) scans
// dominate and the calendar queue's O(1) extract pays off.
type timerHeavyPolicy struct{ k int }

const timerHeavySlots = 128

func (p *timerHeavyPolicy) Name() string { return "timerheavy" }
func (p *timerHeavyPolicy) Init(s *Sim) {
	s.SetFreq(cpu.FDefault)
	for i := int64(0); i < timerHeavySlots; i++ {
		s.SetTimer(float64(i), i)
	}
}
func (p *timerHeavyPolicy) OnArrival(s *Sim, r *Request) {
	p.k++
	lv := s.Ladder().Levels()
	s.PlanFreqChange(s.Now()+2, lv[p.k%len(lv)])
	s.PlanFreqChange(s.Now()+8, cpu.FDefault)
}
func (p *timerHeavyPolicy) OnStart(*Sim, *Request)     {}
func (p *timerHeavyPolicy) OnDeparture(*Sim, *Request) {}
func (p *timerHeavyPolicy) OnTimer(s *Sim, tag int64) {
	// Re-arm unconditionally: the engine terminates re-arming timers once
	// every request is served and the workload horizon has passed.
	s.SetTimer(s.Now()+timerHeavySlots, tag)
}

// benchClusterLarge is the hundreds-of-ISNs cluster benchmark behind the
// checked-in BENCH_sim.json numbers: 288 cores (24 sockets of 12 ISNs) fed
// 100k requests, a timer-heavy controller per core. The workload is built
// per iteration outside the timed region; the timed region is dispatch,
// engine execution, and the deterministic merge.
func benchClusterLarge(b *testing.B, engine Engine, workers int) {
	b.ReportAllocs()
	const cores = 288
	const n = 100000
	var events uint64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := BenchWorkloadRate(n, int64(i), 25.0/float64(cores))
		cfg := DefaultConfig()
		cfg.Engine = engine
		b.StartTimer()
		cr := RunClusterWorkers(cfg, wl, cores, workers, func(int) Policy { return &timerHeavyPolicy{} })
		events += cr.Events
	}
	reportEventsPerSec(b, events)
}

func BenchmarkClusterLargeLinear(b *testing.B)   { benchClusterLarge(b, EngineLinear, 1) }
func BenchmarkClusterLargeCalendar(b *testing.B) { benchClusterLarge(b, EngineCalendar, 1) }
func BenchmarkClusterLargeSharded(b *testing.B) {
	benchClusterLarge(b, EngineCalendar, par.DefaultWorkers())
}
