package sim

import (
	"math/rand"
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/telemetry"
)

// benchWorkload builds a Poisson-ish stream of n requests.
func benchWorkload(n int, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	wl := &Workload{BudgetMs: 40}
	at := 0.0
	for i := 0; i < n; i++ {
		at += rng.ExpFloat64() * 25
		w := cpu.Work((2 + rng.Float64()*20) * 2.7)
		wl.Requests = append(wl.Requests, &Request{
			ID: i, BaseWork: w, WorkTotal: w,
			ArrivalMs: at, DeadlineMs: at + 40,
		})
	}
	wl.DurationMs = at + 100
	return wl
}

func BenchmarkRunFixedPolicy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := benchWorkload(2000, int64(i))
		b.StartTimer()
		Run(DefaultConfig(), wl, &fixedPolicy{f: cpu.FDefault})
	}
}

func BenchmarkRunWithPowerSeries(b *testing.B) {
	cfg := DefaultConfig()
	cfg.PowerSeriesResMs = 1000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := benchWorkload(2000, int64(i))
		b.StartTimer()
		Run(cfg, wl, &fixedPolicy{f: cpu.FDefault})
	}
}

// BenchmarkRunTelemetryDisabled / ...Enabled are the paired guard for the
// decision-trace hook: the disabled path must cost one nil test per
// lifecycle event and nothing more (see also
// TestTelemetryDisabledAddsNoAllocsPerRequest).
func BenchmarkRunTelemetryDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := benchWorkload(2000, int64(i))
		b.StartTimer()
		Run(DefaultConfig(), wl, &fixedPolicy{f: cpu.FDefault})
	}
}

func BenchmarkRunTelemetryEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := benchWorkload(2000, int64(i))
		cfg := DefaultConfig()
		cfg.Tracer = telemetry.NewTracer(256)
		b.StartTimer()
		Run(cfg, wl, &fixedPolicy{f: cpu.FDefault})
	}
}

// BenchmarkRunSpansDisabled / ...Enabled are the same paired guard for the
// phase-span hook: with Config.Spans nil the per-request cost is one pointer
// test (the Disabled numbers must match BenchmarkRunFixedPolicy; see also
// TestSpansDisabledAddsNoAllocsPerRequest).
func BenchmarkRunSpansDisabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := benchWorkload(2000, int64(i))
		b.StartTimer()
		Run(DefaultConfig(), wl, &fixedPolicy{f: cpu.FDefault})
	}
}

func BenchmarkRunSpansEnabled(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := benchWorkload(2000, int64(i))
		cfg := DefaultConfig()
		cfg.Spans = telemetry.NewSpanTracer(256)
		b.StartTimer()
		Run(cfg, wl, &fixedPolicy{f: cpu.FDefault})
	}
}

func BenchmarkDispatch(b *testing.B) {
	wl := benchWorkload(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dispatch(wl, 8)
	}
}

func BenchmarkRunCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := benchWorkload(4000, int64(i))
		b.StartTimer()
		RunCluster(DefaultConfig(), wl, 4, func(int) Policy { return &fixedPolicy{f: cpu.FDefault} })
	}
}
