package sim

import (
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/lint"
)

// capBoundOK is the coordinator invariant: post-adjustment modeled cluster
// power at a control boundary is under the cap, unless the cap is below the
// all-at-floor power (the physical limit of frequency throttling), in which
// case it is at most that floor.
func capBoundOK(w, capW, floorW float64) bool {
	const eps = 1e-9
	return w <= capW+eps || w <= floorW+eps
}

func runCapped(seed int64, topo Topology, capW, intervalMs float64, router Router) *TopologyResult {
	wl := clusterWorkload(250, 2, 6, seed)
	tc := TopologyConfig{
		Sim:           DefaultConfig(),
		Topology:      topo,
		Router:        router,
		Seed:          seed,
		PowerCapW:     capW,
		CapIntervalMs: intervalMs,
	}
	return RunTopology(tc, wl, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
}

// TestPowerCapInvariant sweeps caps from below the floor to above the
// uncapped peak: at every control boundary the modeled cluster power must be
// under the cap — i.e. an overshoot between boundaries lasts at most one
// control interval — or pinned at the all-floor power when the cap is
// unsatisfiable.
func TestPowerCapInvariant(t *testing.T) {
	m := cpu.DefaultPowerModel()
	l := cpu.DefaultLadder()
	topo := Topology{Shards: 3, ReplicasPerShard: 2}
	floorW := ClusterFloorW(m, l, topo.Cores())
	maxW := m.UncoreW + float64(topo.Cores())*m.CoreW(l.Max(), true)

	for _, capW := range []float64{floorW - 5, floorW + 1, (floorW + maxW) / 2, maxW - 1, maxW + 10} {
		for seed := int64(1); seed <= 4; seed++ {
			tr := runCapped(seed, topo, capW, 50, RouterLeastLoaded{})
			if len(tr.ModeledPowerW) == 0 {
				t.Fatalf("cap=%v seed=%d: no control boundaries recorded", capW, seed)
			}
			for i, w := range tr.ModeledPowerW {
				if !capBoundOK(w, capW, floorW) {
					t.Fatalf("cap=%v seed=%d: boundary %d modeled %v W above cap and floor %v W",
						capW, seed, i, w, floorW)
				}
			}
			if tr.PeakModeledPowerW > 0 && !capBoundOK(tr.PeakModeledPowerW, capW, floorW) {
				t.Fatalf("cap=%v seed=%d: peak %v W escapes bound", capW, seed, tr.PeakModeledPowerW)
			}
		}
	}
}

// TestPowerCapUnsatisfiableSaturatesAtFloor pins the floor-escape behavior: a
// cap below the all-floor power throttles every replica to the ladder floor
// and the run still completes (the coordinator must not spin).
func TestPowerCapUnsatisfiableSaturatesAtFloor(t *testing.T) {
	m := cpu.DefaultPowerModel()
	l := cpu.DefaultLadder()
	topo := Topology{Shards: 2, ReplicasPerShard: 2}
	floorW := ClusterFloorW(m, l, topo.Cores())

	tr := runCapped(3, topo, floorW-3, 50, RouterRoundRobin{})
	if tr.Completed+tr.Dropped != tr.Queries {
		t.Fatalf("run did not complete: %+v", tr)
	}
	for i, w := range tr.ModeledPowerW {
		if w > floorW+1e-9 {
			t.Fatalf("boundary %d: %v W above the all-floor power %v W", i, w, floorW)
		}
	}
	if tr.CapThrottles == 0 {
		t.Fatal("unsatisfiable cap applied no throttles")
	}
}

// TestPowerCapMonotonicity is the capacity-planning sanity law: relaxing the
// cap can only help. Under a cap-blind router (round-robin keeps routing
// identical across caps) and a fixed-frequency policy, a looser cap yields
// pointwise higher frequency ceilings (the greedy throttle sequence of a
// looser cap is a prefix of a tighter cap's), so every query latency — and
// hence p99 — is non-increasing in the cap, and so is the throttle count.
func TestPowerCapMonotonicity(t *testing.T) {
	m := cpu.DefaultPowerModel()
	l := cpu.DefaultLadder()
	topo := Topology{Shards: 3, ReplicasPerShard: 2}
	floorW := ClusterFloorW(m, l, topo.Cores())
	maxW := m.UncoreW + float64(topo.Cores())*m.CoreW(l.Max(), true)

	caps := []float64{
		floorW + 0.1*(maxW-floorW),
		floorW + 0.35*(maxW-floorW),
		floorW + 0.6*(maxW-floorW),
		floorW + 0.85*(maxW-floorW),
		maxW + 50, // effectively uncapped
	}
	for seed := int64(1); seed <= 3; seed++ {
		var prev *TopologyResult
		var prevCap float64
		for _, capW := range caps {
			tr := runCapped(seed, topo, capW, 50, RouterRoundRobin{})
			if prev != nil {
				const eps = 1e-9
				if got, was := tr.TailLatencyMs(99), prev.TailLatencyMs(99); got > was+eps {
					t.Errorf("seed=%d: p99 worsened relaxing cap %v→%v W: %v → %v ms",
						seed, prevCap, capW, was, got)
				}
				if tr.CapThrottles > prev.CapThrottles {
					t.Errorf("seed=%d: throttles rose relaxing cap %v→%v W: %d → %d",
						seed, prevCap, capW, prev.CapThrottles, tr.CapThrottles)
				}
				if len(tr.QueryLatencies) != len(prev.QueryLatencies) {
					t.Fatalf("seed=%d: completion counts changed across caps", seed)
				}
				// Pointwise dominance of the sorted latency distributions —
				// strictly stronger than any single percentile.
				for i := range tr.QueryLatencies {
					if tr.QueryLatencies[i] > prev.QueryLatencies[i]+eps {
						t.Fatalf("seed=%d: sorted latency %d worsened relaxing cap %v→%v W",
							seed, i, prevCap, capW)
					}
				}
			}
			prev, prevCap = tr, capW
		}
		// The loosest cap must genuinely not bind.
		if prev.CapThrottles != 0 {
			t.Errorf("seed=%d: cap above modeled max still throttled %d times", seed, prev.CapThrottles)
		}
	}
}

// TestCapTimerTagReserved is now a thin wiring check: the reservation
// invariants (negative values, uniqueness, declared-beside-CapTimerTag, no
// cross-package collisions) moved into the geminivet timertag analyzer,
// whose facts-driven assertions run module-wide in TestReservedTimerTagFacts
// and TestRepoIsClean (internal/lint). This test only guards against the
// analyzer being unplugged from the suite.
func TestCapTimerTagReserved(t *testing.T) {
	if lint.ByName("timertag") == nil {
		t.Fatal("timertag analyzer missing from the geminivet suite: reserved-tag invariants are unenforced")
	}
}

// TestCappedTighterCapLowersEnergy ties the cap to the energy ledger: a
// binding cap must not increase modeled energy relative to the uncapped run
// (the whole point of throttling), on identical routing.
func TestCappedTighterCapLowersEnergy(t *testing.T) {
	m := cpu.DefaultPowerModel()
	l := cpu.DefaultLadder()
	topo := Topology{Shards: 3, ReplicasPerShard: 2}
	floorW := ClusterFloorW(m, l, topo.Cores())
	maxW := m.UncoreW + float64(topo.Cores())*m.CoreW(l.Max(), true)

	tight := runCapped(2, topo, floorW+0.15*(maxW-floorW), 50, RouterRoundRobin{})
	loose := runCapped(2, topo, 0, 0, RouterRoundRobin{}) // uncapped
	if tight.CapThrottles == 0 {
		t.Fatal("tight cap never bound — test is vacuous")
	}
	if tight.EnergyMJ > loose.EnergyMJ+1e-9 {
		t.Errorf("capped run used more energy than uncapped: %v > %v mJ",
			tight.EnergyMJ, loose.EnergyMJ)
	}
}

// FuzzPowerCapInvariant drives arbitrary (seed, cap, interval, topology)
// points through the coordinator and asserts the one-interval bound plus
// serial/sharded equality of the capped run.
func FuzzPowerCapInvariant(f *testing.F) {
	f.Add(int64(1), uint8(120), uint8(2), uint8(2), uint8(50))
	f.Add(int64(7), uint8(40), uint8(3), uint8(2), uint8(100))
	f.Add(int64(42), uint8(200), uint8(1), uint8(4), uint8(25))
	f.Fuzz(func(t *testing.T, seed int64, capSel, shards, reps, interval uint8) {
		topo := Topology{Shards: 1 + int(shards)%4, ReplicasPerShard: 1 + int(reps)%4}
		m := cpu.DefaultPowerModel()
		l := cpu.DefaultLadder()
		floorW := ClusterFloorW(m, l, topo.Cores())
		maxW := m.UncoreW + float64(topo.Cores())*m.CoreW(l.Max(), true)
		// Map capSel onto [floorW-5, maxW+5]: covers unsatisfiable, binding,
		// and slack caps.
		capW := floorW - 5 + (maxW-floorW+10)*float64(capSel)/255
		if capW <= 0 {
			capW = 1
		}
		ivMs := 10 + float64(interval)

		tr := runCapped(seed, topo, capW, ivMs, RouterDeadlineAware{})
		for i, w := range tr.ModeledPowerW {
			if !capBoundOK(w, capW, floorW) {
				t.Fatalf("topo=%+v cap=%v iv=%v seed=%d: boundary %d modeled %v W escapes bound",
					topo, capW, ivMs, seed, i, w)
			}
		}
	})
}
