package sim

import (
	"math"

	"gemini/internal/cpu"
)

// Calendar event queue (Brown 1988) for the engine's policy-scheduled events
// — planned frequency changes and timers. Completion and arrival candidates
// never enter the queue: the next completion is derived from the executing
// head and the next arrival from the workload cursor, so the queue holds only
// the two event classes policies create dynamically.
//
// Ordering contract: events dispatch in ascending (timestamp, kind, seq)
// order, where kind encodes the engine's same-instant priority
// (evPlanned < evTimer; completion and arrival slot in via nextEvent) and
// seq is the global insertion index — the tie-break the reference linear
// engine realizes through scan order. Timestamps are clamped to the
// simulation clock at insertion: while a past-due event is pending the clock
// cannot advance (it is always the minimum), so the clamped key equals the
// effective dispatch time the reference engine computes per scan.
//
// Structure: a power-of-two array of buckets, each a slice sorted descending
// by key so the bucket minimum pops off the tail in O(1). Insert binary-
// searches the bucket (O(log bucket) compares, one memmove that is O(1) in
// the common append-at-tail case). Extract-min sweeps the calendar from the
// current absolute bucket number, one bucket per step, considering only
// events whose own bucket number matches the sweep position; when a full lap
// turns up empty it falls back to a direct search over all bucket minima and
// jumps the calendar to the winner. The calendar position is an integer
// bucket number — never a float time edge — so membership is decided by the
// exact same floor(at/width) computation at insert and at sweep, which is
// what makes edge-of-bucket timestamps safe. The bucket count doubles/halves
// as the live population crosses watermarks and the bucket width is
// re-derived from the live event span, keeping O(1) amortized inserts and
// extracts. Steady state allocates nothing: buckets recycle their backing
// arrays and only resize/compaction — amortized over many events — calls
// make.
//
// ClearPlannedChanges must be O(1) even though planned events are scattered
// across buckets: a generation counter stamps every planned event, clearing
// bumps the generation, and stale events are pruned lazily when scans or
// compaction touch them.

// Queue event kinds, ordered by dispatch priority. They mirror the engine's
// evPlanned/evTimer constants but are typed narrowly so a qevent packs small.
const (
	qkPlanned uint8 = iota + 1 // == evPlanned
	qkTimer   uint8 = 3        // == evTimer
)

// qevent is one scheduled event. freq is meaningful for planned events, tag
// for timers.
type qevent struct {
	at   float64
	seq  uint64
	gen  uint64 // planned events: generation at insert; timers: 0, always live
	freq cpu.Freq
	tag  int64
	kind uint8
}

// qless orders events by the dispatch key (at, kind, seq). Keys are unique:
// seq increments on every insert.
//
//gemini:hotpath
func qless(a, b *qevent) bool {
	//gemini:allow floatcmp -- exact timestamp ties are the common same-instant case; broken by (kind, seq)
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}

// qFarBucket is the absolute bucket number sentinel for events whose
// at/width ratio exceeds exact float->int precision (+Inf included). Every
// far event compares greater than every bucketed event — at >= 2^52·width
// versus at < 2^52·width — so the far list needs consulting only when the
// buckets are empty.
const qFarBucket = int64(math.MaxInt64)

// eventQueue is the calendar. The zero value is not ready; call initialize.
type eventQueue struct {
	buckets [][]qevent
	mask    int     // len(buckets)-1 (power of two)
	width   float64 // bucket width in ms
	inv     float64 // 1/width
	far     []qevent

	n       int // live events (buckets + far, excluding stale planned)
	stored  int // physically stored events including stale planned
	planned int // live planned events
	seq     uint64
	gen     uint64 // current planned generation

	cur    int64 // calendar position: absolute bucket number of the sweep
	peeked bool  // the verified minimum is at buckets[cur&mask] (or far) tail
	curFar bool  // with peeked: the minimum is far's tail, not a bucket's
}

// initialize sets up an empty calendar. Not on the hot path (once per run).
func (q *eventQueue) initialize() {
	const nb = 8
	if len(q.buckets) != nb {
		q.buckets = make([][]qevent, nb)
	}
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.mask = nb - 1
	q.width = 1.0 // ms; re-derived from the live span on the first resize
	q.inv = 1.0
	q.far = q.far[:0]
	q.n, q.stored, q.planned = 0, 0, 0
	q.seq, q.gen = 0, 0
	q.cur = 0
	q.peeked, q.curFar = false, false
}

// bucketNum maps a timestamp to its absolute bucket number (qFarBucket for
// the far list). The same computation decides membership at insert and at
// sweep, so an event can never fall between the calendar's teeth.
//
//gemini:hotpath
func (q *eventQueue) bucketNum(at float64) int64 {
	b := math.Floor(at * q.inv)
	if !(b < 1<<52) { // catches +Inf
		return qFarBucket
	}
	return int64(b)
}

// pushPlanned schedules a frequency change. at must already be clamped to the
// simulation clock. NaN timestamps are dropped: the reference engine's scan
// comparisons are all false for NaN, so such an event never dispatches there
// either.
//
//gemini:hotpath
func (q *eventQueue) pushPlanned(at float64, f cpu.Freq) {
	if math.IsNaN(at) {
		return
	}
	q.seq++
	q.insert(qevent{at: at, seq: q.seq, gen: q.gen, freq: f, kind: qkPlanned})
	q.planned++
}

// pushTimer schedules a policy timer. Same contract as pushPlanned.
//
//gemini:hotpath
func (q *eventQueue) pushTimer(at float64, tag int64) {
	if math.IsNaN(at) {
		return
	}
	q.seq++
	q.insert(qevent{at: at, seq: q.seq, tag: tag, kind: qkTimer})
}

// clearPlanned cancels every live planned event in O(1) by bumping the
// generation; stale entries are pruned lazily.
//
//gemini:hotpath
func (q *eventQueue) clearPlanned() {
	if q.planned == 0 {
		return
	}
	q.gen++
	q.n -= q.planned
	q.planned = 0
	q.peeked = false
}

// live reports whether e still dispatches (timers always; planned events only
// in the current generation).
//
//gemini:hotpath
func (q *eventQueue) live(e *qevent) bool {
	return e.kind != qkPlanned || e.gen == q.gen
}

// insert places e into its bucket keeping the descending key order, rewinding
// the calendar when e lands before the sweep position.
//
//gemini:hotpath
func (q *eventQueue) insert(e qevent) {
	q.peeked = false
	bn := q.bucketNum(e.at)
	var b []qevent
	if bn == qFarBucket {
		b = q.far
	} else {
		b = q.buckets[int(bn)&q.mask]
	}
	// Binary search for the insertion point in the descending order: the
	// first position whose event keys below e.
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if qless(&b[mid], &e) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	b = append(b, qevent{})
	copy(b[lo+1:], b[lo:])
	b[lo] = e
	if bn == qFarBucket {
		q.far = b
	} else {
		q.buckets[int(bn)&q.mask] = b
	}
	q.n++
	q.stored++
	// Rewind: an event before the sweep position would be missed by a
	// forward sweep.
	if bn < q.cur {
		q.cur = bn
	}
	if q.stored > 4*q.n+64 {
		q.compact()
	}
	if q.n > 3*len(q.buckets) || (q.n < len(q.buckets)/4 && len(q.buckets) > 8) {
		q.resize()
	}
}

// peek returns the minimum live event's dispatch key without removing it.
//
//gemini:hotpath
func (q *eventQueue) peek() (at float64, kind uint8, ok bool) {
	if q.n == 0 {
		return 0, 0, false
	}
	if q.peeked {
		e := q.minEvent()
		return e.at, e.kind, true
	}
	// Sweep the calendar one bucket per step for at most one full lap,
	// accepting only events whose own bucket number matches the sweep
	// position (i.e. events of the current "year").
	for swept := 0; swept <= q.mask; swept++ {
		b := q.pruneTail(int(q.cur) & q.mask)
		if len(b) > 0 {
			e := &b[len(b)-1]
			if q.bucketNum(e.at) <= q.cur {
				q.peeked, q.curFar = true, false
				return e.at, e.kind, true
			}
		}
		q.cur++
	}
	// A full lap was empty: direct search over every bucket minimum.
	return q.peekDirect()
}

// minEvent returns the verified minimum (peeked must be true).
//
//gemini:hotpath
func (q *eventQueue) minEvent() *qevent {
	if q.curFar {
		return &q.far[len(q.far)-1]
	}
	b := q.buckets[int(q.cur)&q.mask]
	return &b[len(b)-1]
}

// pruneTail drops stale planned events off bucket i's tail and returns the
// pruned bucket.
//
//gemini:hotpath
func (q *eventQueue) pruneTail(i int) []qevent {
	b := q.buckets[i]
	for len(b) > 0 && !q.live(&b[len(b)-1]) {
		b = b[:len(b)-1]
		q.stored--
	}
	q.buckets[i] = b
	return b
}

// pruneFarTail is pruneTail for the far list.
//
//gemini:hotpath
func (q *eventQueue) pruneFarTail() []qevent {
	b := q.far
	for len(b) > 0 && !q.live(&b[len(b)-1]) {
		b = b[:len(b)-1]
		q.stored--
	}
	q.far = b
	return b
}

// peekDirect finds the global minimum by scanning every bucket's tail (each
// tail is its bucket's minimum) plus the far list, then jumps the calendar to
// the winner. Called when a full sweep lap found nothing — the sparse-queue
// fallback.
//
//gemini:hotpath
func (q *eventQueue) peekDirect() (at float64, kind uint8, ok bool) {
	var best *qevent
	for i := range q.buckets {
		b := q.pruneTail(i)
		if len(b) == 0 {
			continue
		}
		e := &b[len(b)-1]
		if best == nil || qless(e, best) {
			best = e
		}
	}
	if best == nil {
		fb := q.pruneFarTail()
		if len(fb) == 0 {
			// n > 0 counts only live events, so a live one must exist in the
			// buckets or far. Defensive.
			return 0, 0, false
		}
		e := &fb[len(fb)-1]
		q.peeked, q.curFar = true, true
		return e.at, e.kind, true
	}
	// Jump the calendar to the winner's bucket.
	q.cur = q.bucketNum(best.at)
	q.peeked, q.curFar = true, false
	return best.at, best.kind, true
}

// pop removes and returns the minimum live event.
//
//gemini:hotpath
func (q *eventQueue) pop() qevent {
	if !q.peeked {
		if _, _, ok := q.peek(); !ok {
			panic("sim: pop from empty event queue")
		}
	}
	var e qevent
	if q.curFar {
		e = q.far[len(q.far)-1]
		q.far = q.far[:len(q.far)-1]
	} else {
		i := int(q.cur) & q.mask
		b := q.buckets[i]
		e = b[len(b)-1]
		q.buckets[i] = b[:len(b)-1]
	}
	q.n--
	q.stored--
	if e.kind == qkPlanned {
		q.planned--
	}
	// The next minimum keys >= e, so the calendar position stays valid; the
	// next peek resumes sweeping from cur.
	q.peeked = false
	return e
}

// empty reports whether any live event remains.
//
//gemini:hotpath
func (q *eventQueue) empty() bool { return q.n == 0 }

// compact rewrites every bucket dropping stale planned events — the lazy
// deletion backstop when clears outpace scans.
//
//gemini:hotpath
func (q *eventQueue) compact() {
	for i := range q.buckets {
		b := q.buckets[i]
		w := 0
		for j := range b {
			if q.live(&b[j]) {
				b[w] = b[j]
				w++
			}
		}
		q.buckets[i] = b[:w]
	}
	fb := q.far
	w := 0
	for j := range fb {
		if q.live(&fb[j]) {
			fb[w] = fb[j]
			w++
		}
	}
	q.far = fb[:w]
	q.stored = q.n
	q.peeked = false
}

// resize re-derives the bucket count from the live population and the bucket
// width from the live time span, then rebuckets. Amortized O(1) per insert.
//
//gemini:hotpath
func (q *eventQueue) resize() {
	q.compact()
	nb := len(q.buckets)
	for q.n > 3*nb {
		nb *= 2
	}
	for q.n < nb/4 && nb > 8 {
		nb /= 2
	}
	// Re-derive the width so live events spread ~evenly: span / n, one event
	// per bucket at the current population. Far events are excluded (their
	// span would be meaningless); degenerate spans keep the old width.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i := range q.buckets {
		for j := range q.buckets[i] {
			at := q.buckets[i][j].at
			lo = math.Min(lo, at)
			hi = math.Max(hi, at)
		}
	}
	if q.n > 1 && hi > lo {
		w := (hi - lo) / float64(q.n)
		if w > 0 && !math.IsInf(w, 0) {
			q.width = w
			q.inv = 1 / w
		}
	}
	// Rebucket. compact already dropped stale entries, so n and planned are
	// unchanged; stored is rebuilt by reinsert.
	old := q.buckets
	oldFar := q.far
	//gemini:allow hotpath -- amortized rebucketing: resize runs O(1) times per O(n) inserts
	q.buckets = make([][]qevent, nb)
	q.mask = nb - 1
	q.far = nil
	q.stored = 0
	for i := range old {
		for j := range old[i] {
			q.reinsert(old[i][j])
		}
	}
	for j := range oldFar {
		q.reinsert(oldFar[j])
	}
	// Reposition the calendar at the new minimum (peekDirect jumps cur and
	// leaves a verified peek).
	q.peeked = false
	q.cur = 0
	if q.n > 0 {
		q.peekDirect()
	}
}

// reinsert places an already-counted event during resize (no watermark
// checks, no rewind bookkeeping).
//
//gemini:hotpath
func (q *eventQueue) reinsert(e qevent) {
	bn := q.bucketNum(e.at)
	var b []qevent
	if bn == qFarBucket {
		b = q.far
	} else {
		b = q.buckets[int(bn)&q.mask]
	}
	lo, hi := 0, len(b)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if qless(&b[mid], &e) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	b = append(b, qevent{})
	copy(b[lo+1:], b[lo:])
	b[lo] = e
	if bn == qFarBucket {
		q.far = b
	} else {
		q.buckets[int(bn)&q.mask] = b
	}
	q.stored++
}
