package sim

import (
	"math/rand"
	"testing"

	"gemini/internal/cpu"
)

// drawN advances the stream by n Float64 draws, returning the values.
func drawN(r *rand.Rand, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Float64()
	}
	return out
}

// allSubsystems enumerates every partitioned stream under test.
var allSubsystems = []Subsystem{SubsystemWorkload, SubsystemRouting, SubsystemSched}

// TestRNGStreamIsolation is the stream-isolation contract: inserting or
// removing draws on one subsystem leaves every other subsystem's sequence
// bit-identical. Table-driven over (perturbed subsystem, number of extra
// draws) — including zero extra draws as the control row.
func TestRNGStreamIsolation(t *testing.T) {
	const seed = 12345
	const n = 64

	// Reference sequences: each subsystem drawn from a fresh PartitionedRNG
	// with no other subsystem touched at all.
	ref := map[Subsystem][]float64{}
	for _, sub := range allSubsystems {
		ref[sub] = drawN(NewPartitionedRNG(seed).Stream(sub), n)
	}

	for _, perturbed := range allSubsystems {
		for _, extra := range []int{0, 1, 7, 1000} {
			p := NewPartitionedRNG(seed)
			// Interleave: a burst of draws on the perturbed subsystem before
			// and between every other subsystem's draws.
			drawN(p.Stream(perturbed), extra)
			for _, sub := range allSubsystems {
				if sub == perturbed {
					continue
				}
				got := drawN(p.Stream(sub), n)
				drawN(p.Stream(perturbed), extra)
				for i := range got {
					if got[i] != ref[sub][i] {
						t.Fatalf("%v draws (%d) perturbed %v stream at index %d: %v != %v",
							perturbed, extra, sub, i, got[i], ref[sub][i])
					}
				}
			}
		}
	}
}

// TestRNGStreamsAreDistinct guards against two subsystems accidentally
// sharing a seed (which would make their sequences identical — independence
// in the aliasing sense, not the statistical one).
func TestRNGStreamsAreDistinct(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7} {
		p := NewPartitionedRNG(seed)
		seqs := make([][]float64, len(allSubsystems))
		for i, sub := range allSubsystems {
			seqs[i] = drawN(p.Stream(sub), 16)
		}
		for i := 0; i < len(seqs); i++ {
			for j := i + 1; j < len(seqs); j++ {
				same := true
				for k := range seqs[i] {
					if seqs[i][k] != seqs[j][k] {
						same = false
						break
					}
				}
				if same {
					t.Errorf("seed %d: subsystems %v and %v produce identical streams",
						seed, allSubsystems[i], allSubsystems[j])
				}
			}
		}
	}
}

// TestRNGStreamStableAcrossCalls asserts Stream returns the same underlying
// generator on every call (lazily created once, then cached).
func TestRNGStreamStableAcrossCalls(t *testing.T) {
	p := NewPartitionedRNG(9)
	a := p.Routing()
	b := p.Stream(SubsystemRouting)
	if a != b {
		t.Fatal("Stream created a second generator for the same subsystem")
	}
	if p.Seed() != 9 {
		t.Fatalf("Seed() = %d", p.Seed())
	}
}

// TestWorkloadStreamMatchesLegacy pins the bit-compatibility contract: the
// workload subsystem's stream is the historical rand.New(rand.NewSource(seed))
// stream, verbatim. (Constructing the raw source here is fine — the geminivet
// rawsource ban exempts test files.)
func TestWorkloadStreamMatchesLegacy(t *testing.T) {
	for _, seed := range []int64{0, 1, 7, 42, -3} {
		legacy := rand.New(rand.NewSource(seed))
		got := NewPartitionedRNG(seed).Workload()
		for i := 0; i < 256; i++ {
			// Mix draw kinds the workload builders actually use.
			if l, g := legacy.Float64(), got.Float64(); l != g {
				t.Fatalf("seed %d: Float64 draw %d diverged", seed, i)
			}
			if l, g := legacy.ExpFloat64(), got.ExpFloat64(); l != g {
				t.Fatalf("seed %d: ExpFloat64 draw %d diverged", seed, i)
			}
			if l, g := legacy.Intn(97), got.Intn(97); l != g {
				t.Fatalf("seed %d: Intn draw %d diverged", seed, i)
			}
		}
	}
}

// Golden fingerprints captured from the pre-refactor single-RNG code (the
// commit preceding the PartitionedRNG migration). The refactor's contract is
// that every seeded workload build and every seeded policy run reproduces
// these numbers exactly.
var goldenBench = []struct {
	seed                       int64
	sumAt, sumW, lastAt, lastW float64
}{
	{1, 33641.749248902670, 1512.115393701901, 1386.412553108423, 39.155131528229},
	{7, 30034.698847441981, 1819.449121353171, 1052.885468621425, 56.270080997857},
	{42, 32308.516502755923, 1708.155353107028, 1290.158648064696, 36.677179025416},
}

var goldenRun = []struct {
	seed        int64
	events      uint64
	p95, energy float64
	violations  int
}{
	{1, 100, 30.470605146854, 3778.706954846494, 0},
	{7, 100, 60.240127177880, 3007.790764252692, 6},
	{42, 100, 40.041817184376, 3569.001965956658, 3},
}

var goldenCluster = []struct {
	seed        int64
	events      uint64
	p95, energy float64
}{
	{1, 80, 20.462542007558, 5867.731841389672},
	{7, 80, 20.236970266176, 4679.072868532885},
	{42, 80, 21.418311715505, 4926.124071143689},
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-9
}

// TestGoldenResultsUnchangedByRNGRefactor replays the pre-refactor golden
// runs: BenchWorkload streams, a seeded single-core Run, and a seeded
// RunCluster must all be unchanged by the PartitionedRNG migration.
func TestGoldenResultsUnchangedByRNGRefactor(t *testing.T) {
	for i, g := range goldenBench {
		wl := BenchWorkload(50, g.seed)
		var sumAt, sumW float64
		for _, r := range wl.Requests {
			sumAt += r.ArrivalMs
			sumW += float64(r.WorkTotal)
		}
		last := wl.Requests[len(wl.Requests)-1]
		if !near(sumAt, g.sumAt) || !near(sumW, g.sumW) ||
			!near(last.ArrivalMs, g.lastAt) || !near(float64(last.WorkTotal), g.lastW) {
			t.Errorf("BenchWorkload seed %d diverged from pre-refactor golden: sumAt=%.12f sumW=%.12f lastAt=%.12f lastW=%.12f",
				g.seed, sumAt, sumW, last.ArrivalMs, float64(last.WorkTotal))
		}

		gr := goldenRun[i]
		res := Run(DefaultConfig(), wl, &FixedPolicy{F: cpu.FDefault})
		if res.Events != gr.events || !near(res.TailLatencyMs(95), gr.p95) ||
			!near(res.EnergyMJ, gr.energy) || res.Violations != gr.violations {
			t.Errorf("Run seed %d diverged from pre-refactor golden: events=%d p95=%.12f energy=%.12f viol=%d",
				gr.seed, res.Events, res.TailLatencyMs(95), res.EnergyMJ, res.Violations)
		}

		gc := goldenCluster[i]
		wl2 := BenchWorkloadRate(40, g.seed, 10)
		cr := RunCluster(DefaultConfig(), wl2, 4, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
		if cr.Events != gc.events || !near(cr.TailLatencyMs(95), gc.p95) || !near(cr.EnergyMJ, gc.energy) {
			t.Errorf("RunCluster seed %d diverged from pre-refactor golden: events=%d p95=%.12f energy=%.12f",
				gc.seed, cr.Events, cr.TailLatencyMs(95), cr.EnergyMJ)
		}
	}
}

// TestBuildWorkloadUnchangedByRoutingDraws asserts the end-to-end property
// the partition exists for: building the same seeded workload is unaffected
// by any number of routing/sched draws taken from the same base seed's
// partitioned RNG (as the topology layer does during its routing pre-pass).
func TestBuildWorkloadUnchangedByRoutingDraws(t *testing.T) {
	baseline := BenchWorkload(100, 11)
	// Simulate a run that interleaves heavy routing and sched draws.
	p := NewPartitionedRNG(11)
	drawN(p.Routing(), 333)
	drawN(p.Sched(), 77)
	again := BenchWorkload(100, 11)
	for i := range baseline.Requests {
		a, b := baseline.Requests[i], again.Requests[i]
		if a.ArrivalMs != b.ArrivalMs || a.WorkTotal != b.WorkTotal {
			t.Fatalf("request %d diverged after routing draws", i)
		}
	}
}
