package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"gemini/internal/cpu"
)

// drain pops every live event and returns them in dispatch order.
func drain(q *eventQueue) []qevent {
	var out []qevent
	for !q.empty() {
		out = append(out, q.pop())
	}
	return out
}

func TestEventQueueOrdersByAtKindSeq(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var q eventQueue
	q.initialize()
	// Quantized timestamps force heavy (at) ties; kinds and seq must break
	// them: planned before timer at the same instant, insertion order within
	// a kind.
	for i := 0; i < 500; i++ {
		at := float64(rng.Intn(40))
		if rng.Intn(2) == 0 {
			q.pushPlanned(at, cpu.Freq(i))
		} else {
			q.pushTimer(at, int64(i))
		}
	}
	got := drain(&q)
	if len(got) != 500 {
		t.Fatalf("drained %d events, want 500", len(got))
	}
	want := append([]qevent(nil), got...)
	sort.SliceStable(want, func(i, j int) bool { return qless(&want[i], &want[j]) })
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("dispatch order diverges at %d: got {at=%v kind=%d seq=%d}, want {at=%v kind=%d seq=%d}",
				i, got[i].at, got[i].kind, got[i].seq, want[i].at, want[i].kind, want[i].seq)
		}
	}
}

func TestEventQueueInterleavedPushPop(t *testing.T) {
	// Pops interleaved with pushes must deliver non-decreasing timestamps
	// as long as inserts never land before the clock (the engine clamps
	// them). Kind/seq may step "backwards" at one instant when a new event
	// is inserted at the current clock — that is the same-instant dispatch
	// semantics, not a violation.
	var q eventQueue
	q.initialize()
	rng := rand.New(rand.NewSource(7))
	clock := 0.0 // engine invariant: inserts are clamped to the clock
	var popped []qevent
	for i := 0; i < 2000; i++ {
		if q.empty() || rng.Intn(3) > 0 {
			at := clock + float64(rng.Intn(20))
			if rng.Intn(2) == 0 {
				q.pushPlanned(at, cpu.FDefault)
			} else {
				q.pushTimer(at, 1)
			}
		} else {
			e := q.pop()
			if n := len(popped); n > 0 && e.at < popped[n-1].at {
				t.Fatalf("pop %d went back in time: at=%v after at=%v",
					len(popped), e.at, popped[n-1].at)
			}
			popped = append(popped, e)
			clock = e.at
		}
	}
}

func TestEventQueueMatchesBruteForce(t *testing.T) {
	// Property test: every pop must equal the brute-force minimum over a
	// shadow copy of the live events, across many interleaving seeds. This is
	// the check that caught a real bug during development — a float-edge
	// timestamp falling between the sweep window and its bucket assignment —
	// so keep it brute-force-simple.
	for seed := int64(1); seed <= 50; seed++ {
		var q eventQueue
		q.initialize()
		rng := rand.New(rand.NewSource(seed))
		clock := 0.0
		var shadow []qevent // all live events, unordered
		for i := 0; i < 2000; i++ {
			if q.empty() || rng.Intn(3) > 0 {
				at := clock + float64(rng.Intn(20))
				if rng.Intn(2) == 0 {
					q.pushPlanned(at, cpu.FDefault)
					shadow = append(shadow, qevent{at: at, kind: qkPlanned, seq: q.seq})
				} else {
					q.pushTimer(at, 1)
					shadow = append(shadow, qevent{at: at, kind: qkTimer, seq: q.seq})
				}
			} else {
				e := q.pop()
				best := 0
				for j := 1; j < len(shadow); j++ {
					if qless(&shadow[j], &shadow[best]) {
						best = j
					}
				}
				if shadow[best].at != e.at || shadow[best].kind != e.kind || shadow[best].seq != e.seq {
					t.Fatalf("seed %d op %d: pop = {at=%v kind=%d seq=%d}, brute-force min = {at=%v kind=%d seq=%d}",
						seed, i, e.at, e.kind, e.seq, shadow[best].at, shadow[best].kind, shadow[best].seq)
				}
				shadow = append(shadow[:best], shadow[best+1:]...)
				clock = e.at
			}
		}
	}
}

func TestEventQueueRewindOnEarlierInsert(t *testing.T) {
	var q eventQueue
	q.initialize()
	q.pushTimer(100, 1)
	if at, _, ok := q.peek(); !ok || at != 100 {
		t.Fatalf("peek = %v, %v", at, ok)
	}
	// The peek swept the calendar forward; an earlier insert must rewind it.
	q.pushPlanned(3, cpu.FDefault)
	if at, kind, ok := q.peek(); !ok || at != 3 || kind != qkPlanned {
		t.Fatalf("after earlier insert: peek = %v kind=%d ok=%v, want 3/planned", at, kind, ok)
	}
	if e := q.pop(); e.at != 3 {
		t.Fatalf("pop = %v, want 3", e.at)
	}
	if e := q.pop(); e.at != 100 {
		t.Fatalf("pop = %v, want 100", e.at)
	}
}

func TestEventQueueClearPlanned(t *testing.T) {
	var q eventQueue
	q.initialize()
	q.pushPlanned(5, cpu.FDefault)
	q.pushTimer(6, 42)
	q.pushPlanned(7, cpu.FMax)
	q.clearPlanned()
	q.pushPlanned(8, cpu.FMin)
	got := drain(&q)
	if len(got) != 2 {
		t.Fatalf("drained %d events, want 2 (timer + post-clear planned)", len(got))
	}
	if got[0].kind != qkTimer || got[0].tag != 42 {
		t.Fatalf("first = %+v, want the timer", got[0])
	}
	if got[1].kind != qkPlanned || got[1].freq != cpu.FMin {
		t.Fatalf("second = %+v, want the post-clear planned change", got[1])
	}
}

func TestEventQueueClearIsolation(t *testing.T) {
	// Stale planned events must never resurface even across resizes.
	var q eventQueue
	q.initialize()
	rng := rand.New(rand.NewSource(3))
	live := 0
	for i := 0; i < 300; i++ {
		q.pushPlanned(float64(rng.Intn(1000)), cpu.FDefault)
		live++
		if rng.Intn(5) == 0 {
			q.clearPlanned()
			live = 0
		}
		q.pushTimer(float64(rng.Intn(1000)), int64(i))
	}
	got := drain(&q)
	timers, planned := 0, 0
	for _, e := range got {
		if e.kind == qkTimer {
			timers++
		} else {
			planned++
		}
	}
	if timers != 300 {
		t.Fatalf("drained %d timers, want 300", timers)
	}
	if planned != live {
		t.Fatalf("drained %d planned, want %d live after last clear", planned, live)
	}
}

func TestEventQueueStaleStorageBounded(t *testing.T) {
	// Plan/clear churn without any pops (a policy replanning every arrival)
	// must not accumulate unbounded stale entries: compaction keeps stored
	// within a constant factor of the live population.
	var q eventQueue
	q.initialize()
	for i := 0; i < 100000; i++ {
		q.pushPlanned(float64(i%977), cpu.FDefault)
		q.clearPlanned()
	}
	if q.stored > 4*q.n+64+1 {
		t.Fatalf("stored %d entries for %d live events", q.stored, q.n)
	}
}

func TestEventQueueFarEvents(t *testing.T) {
	var q eventQueue
	q.initialize()
	q.pushTimer(math.Inf(1), 9)
	q.pushTimer(1e18, 8)
	q.pushTimer(5, 1)
	q.pushPlanned(math.NaN(), cpu.FMax) // dropped: never dispatches anywhere
	got := drain(&q)
	if len(got) != 3 {
		t.Fatalf("drained %d events, want 3", len(got))
	}
	if got[0].tag != 1 || got[1].tag != 8 || !math.IsInf(got[2].at, 1) {
		t.Fatalf("far ordering wrong: %+v", got)
	}
}

func TestEventQueueResizeGrowShrink(t *testing.T) {
	var q eventQueue
	q.initialize()
	for i := 0; i < 5000; i++ {
		q.pushTimer(float64(i)*0.25, int64(i))
	}
	if len(q.buckets) == 8 {
		t.Fatalf("bucket table never grew for 5000 events")
	}
	for i := 0; i < 4990; i++ {
		q.pop()
	}
	// Push a couple more to trigger the shrink watermark check.
	q.pushTimer(1e6, -1)
	q.pushTimer(1e6+1, -2)
	if len(q.buckets) > 64 {
		t.Fatalf("bucket table did not shrink: %d buckets for %d events", len(q.buckets), q.n)
	}
	rest := drain(&q)
	if len(rest) != 12 {
		t.Fatalf("drained %d, want 12", len(rest))
	}
	for i := 1; i < len(rest); i++ {
		if qless(&rest[i], &rest[i-1]) {
			t.Fatalf("order violated after resizes at %d", i)
		}
	}
}

func TestEventQueueSteadyStateAllocFree(t *testing.T) {
	// Push/pop churn at a stable population must not allocate: buckets
	// recycle their backing arrays (the //gemini:hotpath contract).
	var q eventQueue
	q.initialize()
	for i := 0; i < 64; i++ {
		q.pushTimer(float64(i), int64(i))
	}
	clock := 0.0
	allocs := testing.AllocsPerRun(2000, func() {
		e := q.pop()
		clock = e.at
		q.pushTimer(clock+64, e.tag)
	})
	if allocs > 0.01 {
		t.Fatalf("steady-state push/pop allocates %.2f allocs/op, want 0", allocs)
	}
}
