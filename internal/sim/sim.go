package sim

import (
	"math"
	"strconv"

	"gemini/internal/cpu"
	"gemini/internal/telemetry"
)

// Policy is the DVFS control surface: the simulator invokes these callbacks
// and the policy responds by calling the Sim's control methods (SetFreq,
// PlanFreqChange, Drop, SetTimer).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Init is called once at time zero, before any arrival.
	Init(s *Sim)
	// OnArrival fires after the request has been enqueued (and, if the
	// server was idle, before OnStart for the same request).
	OnArrival(s *Sim, r *Request)
	// OnStart fires when a request begins executing at the head of the
	// queue.
	OnStart(s *Sim, r *Request)
	// OnDeparture fires after a request completes and has been dequeued.
	OnDeparture(s *Sim, r *Request)
	// OnTimer fires for timers the policy registered via SetTimer.
	OnTimer(s *Sim, tag int64)
}

// Engine selects the event-engine implementation backing a run.
type Engine uint8

const (
	// EngineCalendar (the zero value, and the default) dispatches
	// policy-scheduled events through the indexed calendar queue — O(1)
	// amortized insert/extract, no linear scans or slice splices.
	EngineCalendar Engine = iota
	// EngineLinear is the original linear-scan reference engine: every
	// nextEvent scans the planned-change and timer lists. It is retained
	// solely so equivalence with the calendar engine stays machine-checked
	// (see TestEnginesEquivalent and FuzzEngineEquivalence); production and
	// experiment paths must not select it.
	EngineLinear
)

// Config parameterizes one simulation run.
type Config struct {
	Ladder  *cpu.Ladder
	Power   *cpu.PowerModel
	TdvfsMs float64
	// Engine selects the event-engine implementation (test/bench use only;
	// the zero value is the production calendar engine). Both engines
	// produce byte-identical results, traces, and decision logs.
	Engine Engine
	// StartFreq is the core's frequency at time zero (FDefault if zero).
	StartFreq cpu.Freq
	// PredictOverheadMs, when positive, stalls the core on every arrival to
	// model on-core predictor inference (paper: 79 µs, §IV-B).
	PredictOverheadMs float64
	// PowerSeriesResMs, when positive, records a power-vs-time series at
	// this resolution (Fig. 12 timelines).
	PowerSeriesResMs float64
	// RecordFreqTrace keeps every (time, frequency, busy) segment — the
	// executed frequency plan, for Fig. 2/4/5-style timelines and replay
	// verification.
	RecordFreqTrace bool
	// RecordLatencies keeps every request latency (needed for CDFs).
	RecordLatencies bool
	// Tracer, when non-nil, receives one telemetry.Decision per request at
	// completion (or drop): the predictors' view, the policy's plan (via
	// TracePlan), and the executed outcome including per-request frequency
	// transitions and core energy. A nil Tracer costs one pointer test per
	// lifecycle event and zero allocations — see BenchmarkRunTelemetry*.
	Tracer *telemetry.Tracer
	// Spans, when non-nil, receives the per-request phase spans forming each
	// request's waterfall: "queue" (enqueue→dispatch), "exec-initial"
	// (dispatch at the planned initial frequency), and one "exec-boost" span
	// per frequency change while the request held the core (the f_max
	// catch-up phase of a two-step plan, or a group replan). Every span
	// carries frequency and energy attributes; the request root span carries
	// deadline slack. Emission is policy-agnostic — Baseline, Pegasus, Rubik
	// and the Gemini variants produce comparable waterfalls. A nil SpanTracer
	// follows the same contract as Tracer: one pointer test per lifecycle
	// event, zero allocations.
	Spans *telemetry.SpanTracer
	// Series, when non-nil, attaches the fixed-interval timeline sampler: a
	// reserved engine timer (SampleTimerTag) fires at every Series interval
	// boundary and records modeled power, frequency residency, queue depth,
	// in-flight count, arrival/completion/drop counts, and windowed latency
	// percentiles into the Timeseries. The Series' residency levels must
	// match the run's ladder. A nil Series follows the Tracer contract: one
	// pointer test per lifecycle event, zero allocations
	// (TestTimeseriesDisabledAddsNoAllocsPerRequest).
	Series *telemetry.Timeseries
}

// DefaultConfig returns the standard testbed configuration.
func DefaultConfig() Config {
	return Config{
		Ladder:          cpu.DefaultLadder(),
		Power:           cpu.DefaultPowerModel(),
		TdvfsMs:         cpu.TdvfsMs,
		StartFreq:       cpu.FDefault,
		RecordLatencies: true,
	}
}

// plannedChange / timerEvent are the reference linear engine's event records.
// seq is the insertion index: the dispatch tie-break for same-instant events
// of the same kind, which under the historical splice-on-dispatch scheme was
// implicit in slice position. Carrying it explicitly lets dispatch swap-remove
// in O(1) while preserving the exact historical order.
type plannedChange struct {
	at   float64
	freq cpu.Freq
	seq  uint64
}

type timerEvent struct {
	at  float64
	tag int64
	seq uint64
}

// Sim is the event-driven ISN simulator. Policies receive it in callbacks
// and use its control methods; after Run it is discarded.
type Sim struct {
	cfg Config
	pol Policy
	wl  *Workload

	now        float64
	freq       cpu.Freq
	stallUntil float64

	// queue[qhead:] is the live FIFO; queue[qhead] is executing once
	// Started. Popping advances qhead instead of re-slicing so the backing
	// array's capacity is reused and steady-state operation allocates
	// nothing per request (the telemetry-disabled benchmark guard relies on
	// this).
	queue   []*Request
	qhead   int
	nextArr int // cursor into wl.Requests

	// pool is the struct-of-arrays repack of the per-event request state;
	// headIdx/headStarted cache the executing head's pool index and started
	// flag so completionTime and advanceTo touch no *Request pointer.
	pool        requestPool
	headIdx     int32
	headStarted bool

	// events is the calendar queue holding planned changes and timers
	// (default engine); linear selects the reference engine, which keeps
	// them in the planned/timers slices instead (evSeq is its insertion
	// counter).
	events  eventQueue
	linear  bool
	evSeq   uint64
	planned []plannedChange
	timers  []timerEvent

	acc         *cpu.EnergyAccumulator
	transitions int

	// Sleep-state extension: while asleep an idle core draws sleepPowerW
	// instead of its C0 idle power, and the next arrival pays sleepWakeMs.
	sleeping    bool
	sleepPowerW float64
	sleepWakeMs float64

	// Power series bookkeeping.
	seriesRes float64
	series    []float64 // energy (mJ) per bucket, converted to W at the end

	freqTrace []FreqSegment

	// Decision-trace state (nil/zero unless cfg.Tracer is set). The head
	// snapshot marks where the current head request's energy/transition
	// attribution window begins; headSnapped records that an earlier hook
	// (arrival-time planning, post-departure replanning) already opened the
	// window so startHead must not reset it.
	tr          *telemetry.Tracer
	pending     map[*Request]*telemetry.Decision
	headEnergy0 float64
	headTrans0  int
	headSnapped bool

	// Phase-span state (inert unless cfg.Spans is set). marks records the
	// executing head request's frequency boundaries — one mark per phase
	// start, with the energy meter reading at that instant — and is reused
	// across heads. tracking gates boundary recording to the window between
	// a head's OnStart returning and its completion/drop, so frequency
	// changes made while planning a not-yet-started head don't split phases.
	sp       *telemetry.SpanTracer
	marks    []phaseMark
	tracking bool

	// Timeline-sampler cursor (nil unless cfg.Series is set). Every touch in
	// the engine sits under an `if s.tsc != nil` guard — the telemetry-gated
	// zero-alloc discipline the hotpath analyzer enforces.
	tsc *telemetry.SampleCursor

	res *Result
}

// phaseMark is one phase boundary of the executing request: the moment a
// frequency took effect and the cumulative core energy at that moment.
type phaseMark struct {
	at       float64
	freq     cpu.Freq
	energyMJ float64
}

// Run simulates the workload under the policy and returns the metrics.
func Run(cfg Config, wl *Workload, pol Policy) *Result {
	if cfg.Ladder == nil {
		cfg.Ladder = cpu.DefaultLadder()
	}
	if cfg.Power == nil {
		cfg.Power = cpu.DefaultPowerModel()
	}
	if cfg.StartFreq == 0 {
		cfg.StartFreq = cpu.FDefault
	}
	s := &Sim{
		cfg:       cfg,
		pol:       pol,
		wl:        wl,
		freq:      cfg.StartFreq,
		acc:       cpu.NewEnergyAccumulator(cfg.Power),
		seriesRes: cfg.PowerSeriesResMs,
		tr:        cfg.Tracer,
		sp:        cfg.Spans,
		linear:    cfg.Engine == EngineLinear,
		headIdx:   -1,
		res:       newResult(pol.Name(), wl),
	}
	s.pool.load(wl.Requests)
	if !s.linear {
		s.events.initialize()
	}
	if s.tr != nil {
		s.pending = make(map[*Request]*telemetry.Decision)
	}
	if s.seriesRes > 0 {
		n := int(math.Ceil(wl.DurationMs/s.seriesRes)) + 1
		s.series = make([]float64, n)
	}
	if cfg.Series != nil {
		if got, want := cfg.Series.LevelCount(), len(cfg.Ladder.Levels()); got != want {
			panic("sim: Config.Series residency levels (" + strconv.Itoa(got) +
				") do not match the run's ladder (" + strconv.Itoa(want) + ")")
		}
		s.tsc = cfg.Series.StartRun(wl.DurationMs)
		if s.tsc != nil {
			s.tsc.SetLevel(cfg.Ladder.Index(cfg.StartFreq))
			// The workload's latency budget is the SLO deadline: completions
			// past it land in the rows' slo_violations column. Identical per
			// core, so sharded merges stay byte-identical.
			s.tsc.SetSLODeadline(wl.BudgetMs)
			// Armed before pol.Init so a boundary coinciding with a policy
			// timer samples first in both engines (lower insertion seq).
			s.SetTimer(s.tsc.NextAt(), SampleTimerTag)
		}
	}
	pol.Init(s)
	s.loop()
	s.finish()
	return s.res
}

// --- control surface used by policies -----------------------------------

// Now returns the current simulation time in ms.
func (s *Sim) Now() float64 { return s.now }

// Freq returns the core's current frequency.
func (s *Sim) Freq() cpu.Freq { return s.freq }

// Ladder returns the selectable frequency ladder.
func (s *Sim) Ladder() *cpu.Ladder { return s.cfg.Ladder }

// TdvfsMs returns the configured frequency-transition stall.
func (s *Sim) TdvfsMs() float64 { return s.cfg.TdvfsMs }

// BudgetMs returns the workload's latency budget.
func (s *Sim) BudgetMs() float64 { return s.wl.BudgetMs }

// Predictions returns the workload's precomputed prediction table (nil when
// the workload carries none). Policies whose predictors produced the table
// read it instead of re-running inference per arrival.
func (s *Sim) Predictions() *Predictions { return s.wl.Preds }

// Queue returns the live queue; index 0 is the executing request. Callers
// must not mutate it.
func (s *Sim) Queue() []*Request { return s.queue[s.qhead:] }

// qlen is the live queue length.
//
//gemini:hotpath
func (s *Sim) qlen() int { return len(s.queue) - s.qhead }

// head is the live queue's front request; callers must check qlen() > 0.
//
//gemini:hotpath
func (s *Sim) head() *Request { return s.queue[s.qhead] }

// popHead dequeues the front request, recycling the backing array: when the
// queue drains the slice resets to its full capacity, and a long-lived
// non-empty queue compacts once the dead prefix dominates. Either way the
// steady state appends into existing capacity — no per-request allocation.
//
//gemini:hotpath
func (s *Sim) popHead() {
	s.queue[s.qhead] = nil // release the reference
	s.qhead++
	switch {
	case s.qhead == len(s.queue):
		s.queue = s.queue[:0]
		s.qhead = 0
	case s.qhead >= 64 && s.qhead*2 >= len(s.queue):
		n := copy(s.queue, s.queue[s.qhead:])
		clearTail := s.queue[n:]
		for i := range clearTail {
			clearTail[i] = nil
		}
		s.queue = s.queue[:n]
		s.qhead = 0
	}
	s.refreshHead()
}

// refreshHead re-caches the executing head's pool index and started flag
// after any queue-front mutation.
//
//gemini:hotpath
func (s *Sim) refreshHead() {
	if s.qlen() == 0 {
		s.headIdx = -1
		s.headStarted = false
		return
	}
	h := s.queue[s.qhead]
	s.headIdx = h.poolIdx
	s.headStarted = h.Started
}

// syncHead flushes the executing head's accrued work from the pool back to
// its Request struct. Called before every policy callback so policies reading
// Queue()[0].WorkDone (Gemini's binding test, Rubik's residual estimate) see
// the live value, exactly as they did when the engine accrued into the struct
// directly.
//
//gemini:hotpath
func (s *Sim) syncHead() {
	if s.headStarted {
		h := s.queue[s.qhead]
		h.WorkDone = s.pool.workDone[s.headIdx]
	}
}

// SetFreq switches the core to f immediately; a change away from the
// current frequency stalls the core for TdvfsMs.
//
//gemini:hotpath
func (s *Sim) SetFreq(f cpu.Freq) {
	//gemini:allow floatcmp -- frequencies are discrete ladder levels; the exact no-op check avoids phantom transition stalls
	if f == s.freq {
		return
	}
	s.freq = f
	s.transitions++
	if s.tsc != nil {
		s.tsc.SetLevel(s.cfg.Ladder.Index(f))
	}
	until := s.now + s.cfg.TdvfsMs
	if until > s.stallUntil {
		s.stallUntil = until
	}
	if s.tracking {
		s.markPhase()
	}
}

// markPhase closes the executing request's current phase at the present
// moment (span tracing enabled only). Several same-instant switches — clear
// plan, set initial, re-plan at an arrival — collapse into one boundary: the
// phase that matters is the one time actually passes in.
//
//gemini:hotpath
func (s *Sim) markPhase() {
	//gemini:allow floatcmp -- mark timestamps are copied from s.now verbatim; same-instant coalescing needs exact equality
	if n := len(s.marks); n > 0 && s.marks[n-1].at == s.now {
		s.marks[n-1].freq = s.freq
		return
	}
	s.marks = append(s.marks, phaseMark{at: s.now, freq: s.freq, energyMJ: s.acc.EnergyMJ()})
}

// PlanFreqChange schedules a frequency switch at the given absolute time.
// Past times apply on the next event dispatch.
//
// The calendar engine clamps the timestamp to the present at insertion; the
// reference engine clamps at every scan. The two are equivalent: while a
// past-due event is pending the clock cannot advance past it (its effective
// time is always the minimum), so the insertion-time clamp equals the
// scan-time clamp at dispatch.
//
//gemini:hotpath
func (s *Sim) PlanFreqChange(atMs float64, f cpu.Freq) {
	if s.linear {
		s.evSeq++
		s.planned = append(s.planned, plannedChange{at: atMs, freq: f, seq: s.evSeq})
		return
	}
	s.events.pushPlanned(math.Max(atMs, s.now), f)
}

// ClearPlannedChanges cancels all scheduled frequency switches.
//
//gemini:hotpath
func (s *Sim) ClearPlannedChanges() {
	if s.linear {
		s.planned = s.planned[:0]
		return
	}
	s.events.clearPlanned()
}

// SetTimer schedules an OnTimer callback at the given absolute time.
//
//gemini:hotpath
func (s *Sim) SetTimer(atMs float64, tag int64) {
	if s.linear {
		s.evSeq++
		s.timers = append(s.timers, timerEvent{at: atMs, tag: tag, seq: s.evSeq})
		return
	}
	s.events.pushTimer(math.Max(atMs, s.now), tag)
}

// Stall blocks the core for the given duration (prediction overhead).
//
//gemini:hotpath
func (s *Sim) Stall(ms float64) {
	if ms <= 0 {
		return
	}
	until := s.now + ms
	if until > s.stallUntil {
		s.stallUntil = until
	}
}

// Sleep puts an idle core into a C-state drawing powerW; the next arrival
// pays wakeMs of stall before any processing (sleep-state extension, §I).
// Ignored while the queue is non-empty.
func (s *Sim) Sleep(powerW, wakeMs float64) {
	if s.qlen() > 0 {
		return
	}
	s.sleeping = true
	s.sleepPowerW = powerW
	s.sleepWakeMs = wakeMs
}

// Drop removes a queued (or executing) request without completing it. The
// paper drops requests that cannot meet their deadline even at the maximum
// frequency (§III-A); the aggregator would discard their late responses
// anyway.
//
//gemini:hotpath
func (s *Sim) Drop(r *Request) {
	for i := s.qhead; i < len(s.queue); i++ {
		if s.queue[i] != r {
			continue
		}
		r.Dropped = true
		r.FinishMs = s.now
		if r.Started {
			// Flush the accrued progress so post-mortem consumers see the
			// same WorkDone the struct-accruing engine left behind.
			r.WorkDone = s.pool.workDone[r.poolIdx]
		}
		wasHead := i == s.qhead
		if wasHead {
			s.popHead()
		} else {
			copy(s.queue[i:], s.queue[i+1:])
			s.queue[len(s.queue)-1] = nil
			s.queue = s.queue[:len(s.queue)-1]
		}
		s.res.recordDrop(r)
		if s.tsc != nil {
			s.tsc.OnDrop()
		}
		if s.tr != nil {
			s.emitDecision(r)
		}
		if s.sp != nil {
			s.emitSpans(r)
			if wasHead {
				s.tracking = false
			}
		}
		if wasHead && s.qlen() > 0 && !s.head().Started {
			s.startHead()
		}
		return
	}
}

// TraceEnabled reports whether a decision tracer is attached; policies may
// use it to skip building trace-only values.
//
//gemini:hotpath
func (s *Sim) TraceEnabled() bool { return s.tr != nil }

// TracePlan annotates r's pending decision record with the frequency plan
// the policy just chose for it: the initial (eq. 5 / eq. 14) frequency, the
// boost step (zero boost frequency or a non-finite boostAt means
// single-step), and the critical request anchoring a group plan (-1 when the
// request was planned alone). A no-op when tracing is disabled — the hook
// costs policies one call with no allocation.
//
//gemini:hotpath
func (s *Sim) TracePlan(r *Request, initial, boost cpu.Freq, boostAtMs float64, criticalID int) {
	if s.tr == nil {
		return
	}
	d := s.pending[r]
	if d == nil {
		return
	}
	d.InitialFreqGHz = float64(initial)
	if boost > 0 && !math.IsInf(boostAtMs, 0) && boostAtMs > 0 {
		d.BoostFreqGHz = float64(boost)
		d.BoostAtMs = boostAtMs
	} else {
		d.BoostFreqGHz = 0
		d.BoostAtMs = 0
	}
	d.CriticalID = criticalID
}

// emitDecision seals and emits r's decision record (tracing enabled only).
func (s *Sim) emitDecision(r *Request) {
	d := s.pending[r]
	if d == nil {
		d = &telemetry.Decision{RequestID: r.ID, ArrivalMs: r.ArrivalMs, CriticalID: -1}
	} else {
		delete(s.pending, r)
	}
	d.Policy = s.pol.Name()
	d.PredictedMs = r.PredictedMs
	d.PredErrMs = r.PredErrMs
	d.FinishMs = r.FinishMs
	d.LatencyMs = r.LatencyMs()
	d.DeadlineSlackMs = r.DeadlineMs - r.FinishMs
	d.Dropped = r.Dropped
	d.Violated = r.Violated()
	if r.Started {
		d.StartMs = r.StartMs
		d.ServiceMs = r.FinishMs - r.StartMs
		d.Transitions = s.transitions - s.headTrans0
		d.EnergyMJ = s.acc.EnergyMJ() - s.headEnergy0
	}
	if r.Done {
		// The S* audit target: the request's true work expressed as service
		// time at the default frequency (what eq. 1 predicts).
		d.ActualMs = cpu.TimeFor(r.WorkTotal, cpu.FDefault)
	}
	s.tr.Emit(*d)
}

// emitSpans emits r's phase-span waterfall (span tracing enabled only): the
// request root span, the queue-wait span, and — for a request that reached
// the core — one execution span per frequency phase recorded in marks. The
// phase durations partition [ArrivalMs, FinishMs] exactly, and the execution
// phases' energy attributes sum to the energy the decision trace attributes
// to the request (both invariants are asserted by TestPhaseSpansSumToLatency).
func (s *Sim) emitSpans(r *Request) {
	id := s.pol.Name() + "/" + strconv.Itoa(r.ID)
	spans := make([]telemetry.Span, 0, 2+len(s.marks))
	spans = append(spans, telemetry.Span{
		TraceID: id, SpanID: "request", Name: "request",
		StartMs: r.ArrivalMs, EndMs: r.FinishMs,
		Attrs: map[string]float64{
			"deadline_slack_ms": r.DeadlineMs - r.FinishMs,
			"dropped":           boolAttr(r.Dropped),
			"violated":          boolAttr(r.Violated()),
		},
	})
	queueEnd := r.FinishMs // dropped before dispatch: all time was queue wait
	if r.Started {
		queueEnd = r.StartMs
	}
	spans = append(spans, telemetry.Span{
		TraceID: id, SpanID: "queue", ParentID: "request", Name: "queue",
		StartMs: r.ArrivalMs, EndMs: queueEnd,
	})
	if r.Started && s.tracking && len(s.marks) > 0 {
		endEnergy := s.acc.EnergyMJ()
		for i, m := range s.marks {
			phaseEnd, phaseEndEnergy := r.FinishMs, endEnergy
			if i+1 < len(s.marks) {
				phaseEnd, phaseEndEnergy = s.marks[i+1].at, s.marks[i+1].energyMJ
			}
			name := "exec-initial"
			if i > 0 {
				name = "exec-boost"
			}
			spans = append(spans, telemetry.Span{
				TraceID: id, SpanID: "exec-" + strconv.Itoa(i), ParentID: "request", Name: name,
				StartMs: m.at, EndMs: phaseEnd,
				Attrs: map[string]float64{
					"freq_ghz":  float64(m.freq),
					"energy_mj": phaseEndEnergy - m.energyMJ,
				},
			})
		}
	}
	s.sp.EmitBatch(spans)
}

// boolAttr renders a bool as a span attribute value.
func boolAttr(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// --- engine ---------------------------------------------------------------

const (
	evCompletion = iota
	evPlanned
	evArrival
	evTimer
	evNone
)

//gemini:hotpath
func (s *Sim) loop() {
	if s.linear {
		s.loopLinear()
		return
	}
	for {
		kind, at := s.nextEvent()
		if kind == evNone {
			return
		}
		s.res.Events++
		s.advanceTo(at)
		switch kind {
		case evCompletion:
			s.completeHead()
		case evPlanned:
			e := s.events.pop()
			s.SetFreq(e.freq)
		case evArrival:
			r := s.wl.Requests[s.nextArr]
			s.nextArr++
			s.arrive(r)
		case evTimer:
			e := s.events.pop()
			if e.tag == SampleTimerTag {
				// Reserved sampler timer: drained by the engine itself,
				// never surfaced to any policy (cappedPolicy included).
				s.sampleTick()
			} else {
				s.syncHead()
				s.pol.OnTimer(s, e.tag)
			}
		}
	}
}

// sampleTick seals the timeline window ending now and re-arms the reserved
// sampler timer for the next boundary. Fired from both engine loops before
// any policy sees the timer.
//
//gemini:hotpath
func (s *Sim) sampleTick() {
	if s.tsc == nil {
		return
	}
	inFlight := 0.0
	if s.headStarted {
		inFlight = 1
	}
	s.tsc.Sample(s.now, s.acc.EnergyMJ(), float64(s.qlen()), inFlight)
	if next := s.tsc.NextAt(); next >= 0 {
		s.SetTimer(next, SampleTimerTag)
	}
}

// nextEvent picks the earliest pending event; ties break by the priority
// completion < planned < arrival < timer so departures free the server
// before a simultaneous arrival is observed. The completion candidate is
// derived from the executing head, the arrival candidate from the workload
// cursor, and the policy-scheduled candidates (planned changes, timers) from
// the calendar queue's minimum — whose key already encodes the
// (timestamp, kind, seq) contract.
//
//gemini:hotpath
func (s *Sim) nextEvent() (kind int, at float64) {
	kind, at = evNone, math.Inf(1)

	if c := s.completionTime(); c < at {
		kind, at = evCompletion, c
	}
	if s.nextArr < len(s.pool.arrivalMs) {
		t := s.pool.arrivalMs[s.nextArr]
		//gemini:allow floatcmp -- exact timestamp ties are the common same-instant case; broken by event-kind priority
		if t < at || (t == at && kind > evArrival) {
			kind, at = evArrival, t
		}
	}
	if qat, qk, ok := s.events.peek(); ok {
		//gemini:allow floatcmp -- exact timestamp ties are the common same-instant case; broken by event-kind priority
		if qat < at || (qat == at && kind > int(qk)) {
			kind, at = int(qk), qat
		}
	}
	// Timers beyond the workload horizon with nothing left to do would spin
	// the loop forever in policies that always re-arm (Pegasus): stop once
	// all requests have been served and the horizon is passed.
	if kind == evTimer && s.nextArr >= len(s.wl.Requests) && s.qlen() == 0 && at > s.wl.DurationMs {
		return evNone, 0
	}
	return kind, at
}

// completionTime returns when the executing request will finish under the
// current frequency and stall state (+Inf if the server is idle). It reads
// the head's remaining work from the pool through the cached index — no
// pointer chase.
//
//gemini:hotpath
func (s *Sim) completionTime() float64 {
	if !s.headStarted {
		return math.Inf(1)
	}
	t0 := math.Max(s.now, s.stallUntil)
	return t0 + cpu.TimeFor(s.pool.remaining(s.headIdx), s.freq)
}

// advanceTo moves simulated time forward, accruing head-request progress and
// core energy across the stall boundary.
//
//gemini:hotpath
func (s *Sim) advanceTo(t float64) {
	if t <= s.now {
		s.now = math.Max(s.now, t)
		return
	}
	busy := s.qlen() > 0
	// Segment 1: stalled (no progress).
	segEnd := math.Min(t, math.Max(s.now, s.stallUntil))
	if segEnd > s.now {
		s.accrue(segEnd-s.now, busy)
		s.now = segEnd
	}
	// Segment 2: executing.
	if t > s.now {
		dt := t - s.now
		if busy && s.headStarted {
			s.pool.workDone[s.headIdx] += cpu.WorkFor(dt, s.freq)
		}
		s.accrue(dt, busy)
		s.now = t
	}
}

// accrue charges dt of energy at the current frequency/activity, splitting
// across power-series buckets when enabled.
//
//gemini:hotpath
func (s *Sim) accrue(dt float64, busy bool) {
	if s.cfg.RecordFreqTrace && dt > 0 {
		n := len(s.freqTrace)
		//gemini:allow floatcmp -- segment coalescing compares values copied verbatim from s.freq / s.now
		if n > 0 && s.freqTrace[n-1].Freq == s.freq && s.freqTrace[n-1].Busy == busy && s.freqTrace[n-1].EndMs == s.now {
			s.freqTrace[n-1].EndMs = s.now + dt
		} else {
			s.freqTrace = append(s.freqTrace, FreqSegment{StartMs: s.now, EndMs: s.now + dt, Freq: s.freq, Busy: busy})
		}
	}
	p := s.cfg.Power.CoreW(s.freq, busy)
	if !busy && s.sleeping {
		p = s.sleepPowerW
	}
	s.acc.AccumulatePower(dt, p, busy)
	if s.tsc != nil {
		s.tsc.Accrue(dt)
	}
	if s.series == nil || dt <= 0 {
		return
	}
	t0, t1 := s.now, s.now+dt
	for t0 < t1 {
		b := int(t0 / s.seriesRes)
		bEnd := float64(b+1) * s.seriesRes
		seg := math.Min(t1, bEnd) - t0
		if b >= 0 && b < len(s.series) {
			s.series[b] += p * seg
		}
		t0 += seg
	}
}

//gemini:hotpath
func (s *Sim) arrive(r *Request) {
	s.queue = append(s.queue, r)
	if s.qlen() == 1 {
		s.refreshHead()
	}
	if s.tsc != nil {
		s.tsc.OnArrival(float64(s.qlen())) // depth includes this request
	}
	if s.tr != nil {
		s.pending[r] = &telemetry.Decision{
			RequestID:  r.ID,
			ArrivalMs:  r.ArrivalMs,
			QueueDepth: s.qlen(), // including this request
			CriticalID: -1,
		}
	}
	if s.sleeping {
		s.Stall(s.sleepWakeMs)
		s.sleeping = false
	}
	s.Stall(s.cfg.PredictOverheadMs)
	// Snapshot before OnArrival: if this request starts immediately, the
	// transitions its arrival-time plan incurs belong to it.
	preEnergy, preTrans := 0.0, 0
	if s.tr != nil {
		preEnergy, preTrans = s.acc.EnergyMJ(), s.transitions
	}
	s.syncHead()
	s.pol.OnArrival(s, r)
	// OnArrival may have dropped the request.
	if s.qlen() > 0 && s.head() == r && !r.Started && !r.Dropped {
		if s.tr != nil {
			s.headEnergy0, s.headTrans0, s.headSnapped = preEnergy, preTrans, true
		}
		s.startHead()
	}
}

//gemini:hotpath
func (s *Sim) startHead() {
	head := s.head()
	head.Started = true
	head.StartMs = s.now
	s.headIdx = head.poolIdx
	s.headStarted = true
	if s.tr != nil {
		// Snapshot before OnStart so the transitions and energy its plan
		// application incurs are attributed to this request — unless an
		// earlier hook already opened the attribution window.
		if !s.headSnapped {
			s.headEnergy0 = s.acc.EnergyMJ()
			s.headTrans0 = s.transitions
		}
		s.headSnapped = false
	}
	s.pol.OnStart(s, head)
	if s.tr != nil {
		// OnStart may have dropped the head (and emitted its record).
		if d := s.pending[head]; d != nil {
			d.StartFreqGHz = float64(s.freq)
		}
	}
	if s.sp != nil && !head.Dropped {
		// Open the phase window after OnStart applied its plan: no simulated
		// time passes inside the callback, so the first mark sits exactly at
		// StartMs with the plan's initial frequency, and any SetFreq calls
		// the plan made do not split a zero-length phase (tracking was off).
		s.marks = s.marks[:0]
		s.marks = append(s.marks, phaseMark{at: head.StartMs, freq: s.freq, energyMJ: s.acc.EnergyMJ()})
		s.tracking = true
	}
}

//gemini:hotpath
func (s *Sim) completeHead() {
	head := s.head()
	head.Done = true
	head.FinishMs = s.now
	// Clamp the float drift: the request is exactly finished.
	head.WorkDone = head.WorkTotal
	s.popHead()
	s.res.recordCompletion(head)
	if s.tsc != nil {
		s.tsc.OnCompletion(head.FinishMs - head.ArrivalMs)
	}
	if s.sp != nil {
		s.emitSpans(head)
		s.tracking = false
	}
	if s.tr != nil {
		s.emitDecision(head)
		// With a successor already queued there is no idle gap: open its
		// attribution window now, so replanning transitions the policy makes
		// in OnDeparture count toward the next head.
		if s.qlen() > 0 {
			s.headEnergy0, s.headTrans0, s.headSnapped = s.acc.EnergyMJ(), s.transitions, true
		}
	}
	s.pol.OnDeparture(s, head)
	if s.qlen() > 0 && !s.head().Started {
		s.startHead()
	}
}

// finish accrues trailing idle time up to the workload horizon and seals the
// metrics.
func (s *Sim) finish() {
	if s.now < s.wl.DurationMs {
		s.advanceTo(s.wl.DurationMs)
	}
	s.res.seal(s.acc, s.transitions, s.wl.DurationMs)
	s.res.FreqTrace = s.freqTrace
	if s.series != nil {
		// Convert per-bucket energy to average watts.
		n := int(math.Ceil(s.wl.DurationMs / s.seriesRes))
		if n > len(s.series) {
			n = len(s.series)
		}
		watts := make([]float64, n)
		for i := 0; i < n; i++ {
			watts[i] = s.series[i] / s.seriesRes
		}
		s.res.PowerSeriesW = watts
		s.res.PowerSeriesResMs = s.seriesRes
	}
}
