package sim

import (
	"sort"

	"gemini/internal/cpu"
	"gemini/internal/stats"
)

// Result collects the metrics of one simulation run.
type Result struct {
	Policy string

	Total      int
	Completed  int
	Dropped    int
	Violations int // late completions (drops are counted separately: the
	// aggregator ignores stragglers, so the paper treats drops as harmless
	// to quality, §III-A)

	// Latencies holds completion latencies of completed requests in ms,
	// populated when Config.RecordLatencies is set.
	//
	// Contract: once a Result has been sealed (i.e. whenever sim.Run has
	// returned it), Latencies is sorted ascending. TailLatencyMs and every
	// percentile consumer (reports, CDF figures) rely on this; seal sorts
	// defensively rather than depending on completion-recording order, so
	// the contract holds even though recordCompletion appends in event
	// order.
	Latencies []float64

	// Events counts dispatched engine events (completions, planned changes,
	// arrivals, timers) — the denominator of the events/sec throughput
	// metric the engine benchmarks report. Identical across engine
	// implementations by construction (the differential tests assert it).
	Events uint64

	// Core-level energy metrics.
	EnergyMJ    float64
	AvgCorePowW float64
	Utilization float64
	Transitions int
	DurationMs  float64

	// Optional power-vs-time series (core watts per bucket).
	PowerSeriesW     []float64
	PowerSeriesResMs float64

	// FreqTrace is the executed frequency plan (when
	// Config.RecordFreqTrace is set): piecewise-constant segments in time
	// order, adjacent segments differing in frequency or activity.
	FreqTrace []FreqSegment

	record bool
}

func newResult(policy string, wl *Workload) *Result {
	return &Result{Policy: policy, Total: len(wl.Requests), record: true}
}

//gemini:hotpath
func (r *Result) recordCompletion(req *Request) {
	r.Completed++
	if req.Violated() {
		r.Violations++
	}
	if r.record {
		r.Latencies = append(r.Latencies, req.LatencyMs())
	}
}

//gemini:hotpath
func (r *Result) recordDrop(req *Request) {
	r.Dropped++
}

// seal finalizes the result: it fixes the energy metrics and establishes
// the Latencies sorted-ascending contract (see the field comment) no matter
// what order completions were recorded in.
func (r *Result) seal(acc *cpu.EnergyAccumulator, transitions int, durationMs float64) {
	r.EnergyMJ = acc.EnergyMJ()
	r.AvgCorePowW = acc.AvgPowerW()
	r.Utilization = acc.Utilization()
	r.Transitions = transitions
	r.DurationMs = durationMs
	sort.Float64s(r.Latencies)
}

// TailLatencyMs returns the p-th percentile completion latency (0 if none).
// It requires the sealed Result's sorted Latencies (see the field contract).
func (r *Result) TailLatencyMs(p float64) float64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	return stats.PercentileSorted(r.Latencies, p)
}

// MeanLatencyMs returns the mean completion latency.
func (r *Result) MeanLatencyMs() float64 {
	m, err := stats.Mean(r.Latencies)
	if err != nil {
		return 0
	}
	return m
}

// ViolationRate returns the fraction of all requests that completed after
// their deadline. Dropped requests are excluded — see Dropped/DropRate.
func (r *Result) ViolationRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Violations) / float64(r.Total)
}

// DropRate returns the fraction of all requests that were dropped.
func (r *Result) DropRate() float64 {
	if r.Total == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Total)
}

// SocketPowerW extrapolates the measured single-ISN core power to the
// paper's 12-ISN socket: uncore + Cores × core average. The paper's 12 ISNs
// receive the same query stream, so a single core is an unbiased sample.
func (r *Result) SocketPowerW(m *cpu.PowerModel) float64 {
	return m.UncoreW + float64(m.Cores)*r.AvgCorePowW
}

// SocketSeriesW converts the core power series to socket power.
func (r *Result) SocketSeriesW(m *cpu.PowerModel) []float64 {
	out := make([]float64, len(r.PowerSeriesW))
	for i, p := range r.PowerSeriesW {
		out[i] = m.UncoreW + float64(m.Cores)*p
	}
	return out
}

// PowerSavingVs returns the fractional socket-power saving of r relative to
// the given baseline result.
func (r *Result) PowerSavingVs(base *Result, m *cpu.PowerModel) float64 {
	pb := base.SocketPowerW(m)
	if pb == 0 {
		return 0
	}
	return 1 - r.SocketPowerW(m)/pb
}

// FreqSegment is one piecewise-constant stretch of the executed plan.
type FreqSegment struct {
	StartMs, EndMs float64
	Freq           cpu.Freq
	Busy           bool
}

// DurationMs returns the segment length.
func (f FreqSegment) DurationMs() float64 { return f.EndMs - f.StartMs }
