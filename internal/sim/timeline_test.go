package sim

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/telemetry"
)

// timelineJSONL renders a series to its canonical JSONL export — the byte
// representation the serial-vs-sharded identity contract is stated over.
func timelineJSONL(t *testing.T, ts *telemetry.Timeseries) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ts.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTimeseriesDisabledAddsNoAllocsPerRequest is the zero-alloc guard for
// the sampler hooks: with Config.Series nil the per-request marginal cost of
// the timeline instrumentation must be a handful of pointer tests and no
// allocations — same contract, and same marginal-allocation methodology, as
// the decision tracer's TestTelemetryDisabledAddsNoAllocsPerRequest.
func TestTimeseriesDisabledAddsNoAllocsPerRequest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecordLatencies = false

	const n = 600
	wlA := traceWorkload(n, 29)
	wlB := traceWorkload(2*n, 29)
	reset := func(wl *Workload) {
		for _, r := range wl.Requests {
			r.Started, r.Done, r.Dropped = false, false, false
			r.StartMs, r.FinishMs, r.WorkDone = 0, 0, 0
		}
	}
	pol := &FixedPolicy{F: cpu.FDefault}
	allocsA := testing.AllocsPerRun(20, func() { reset(wlA); Run(cfg, wlA, pol) })
	allocsB := testing.AllocsPerRun(20, func() { reset(wlB); Run(cfg, wlB, pol) })
	perReq := (allocsB - allocsA) / float64(n)
	if perReq > 0.05 {
		t.Errorf("sampler-disabled path allocates %.3f allocs/request (n: %.0f, 2n: %.0f)",
			perReq, allocsA, allocsB)
	}
}

// TestTimeseriesSingleRun pins the single-core sampler semantics: one row
// per boundary at bit-exact k·interval timestamps (final row clamped to the
// horizon), lifecycle counts that sum to the workload's totals, residency
// fractions that partition each window, and ordered windowed percentiles.
func TestTimeseriesSingleRun(t *testing.T) {
	const intervalMs = 25.0
	wl := traceWorkload(300, 7)
	cfg := DefaultConfig()
	cfg.Series = NewRunTimeseries(cfg.Ladder, wl.DurationMs, intervalMs)
	res := Run(cfg, wl, &FixedPolicy{F: cpu.FDefault})

	rows := cfg.Series.Rows()
	want := telemetry.SampleCount(wl.DurationMs, intervalMs)
	if len(rows) != want {
		t.Fatalf("rows = %d, want SampleCount = %d", len(rows), want)
	}
	var arrivals, completions, drops uint64
	prev := 0.0
	for k, row := range rows {
		b := float64(k+1) * intervalMs
		if b > wl.DurationMs {
			b = wl.DurationMs
		}
		if row.TimeMs != b {
			t.Fatalf("row %d boundary = %v, want %v", k, row.TimeMs, b)
		}
		arrivals += row.Arrivals
		completions += row.Completions
		drops += row.Drops
		sum := 0.0
		for _, r := range row.Residency {
			sum += r
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d residency sums to %v, want 1", k, sum)
		}
		if row.P50Ms > row.P95Ms || row.P95Ms > row.P99Ms {
			t.Fatalf("row %d percentiles not ordered: p50=%v p95=%v p99=%v",
				k, row.P50Ms, row.P95Ms, row.P99Ms)
		}
		if row.PowerW <= 0 {
			t.Fatalf("row %d modeled power %v, want > 0", k, row.PowerW)
		}
		if row.TimeMs <= prev {
			t.Fatalf("row %d time %v not increasing past %v", k, row.TimeMs, prev)
		}
		prev = row.TimeMs
	}
	if int(arrivals) != len(wl.Requests) {
		t.Errorf("windowed arrivals sum to %d, want %d", arrivals, len(wl.Requests))
	}
	inHorizon := 0
	for _, r := range wl.Requests {
		if r.Done && !r.Dropped && r.FinishMs <= wl.DurationMs {
			inHorizon++
		}
	}
	if int(completions) != inHorizon {
		t.Errorf("windowed completions sum to %d, want %d in-horizon completions", completions, inHorizon)
	}
	if drops != uint64(res.Dropped) && res.Dropped == 0 && drops != 0 {
		t.Errorf("windowed drops sum to %d, result says %d", drops, res.Dropped)
	}
}

// TestTimeseriesEnginesEquivalent extends the engine-equivalence contract to
// the sampler: the calendar and linear engines must produce byte-identical
// timeline exports (the reserved timer is intercepted identically in both
// loops, before any policy sees it).
func TestTimeseriesEnginesEquivalent(t *testing.T) {
	run := func(engine Engine) []byte {
		wl := traceWorkload(400, 11)
		cfg := DefaultConfig()
		cfg.Engine = engine
		cfg.Series = NewRunTimeseries(cfg.Ladder, wl.DurationMs, 40)
		Run(cfg, wl, &chaosTimelinePolicy{})
		return timelineJSONL(t, cfg.Series)
	}
	cal, lin := run(EngineCalendar), run(EngineLinear)
	if !bytes.Equal(cal, lin) {
		t.Fatalf("calendar and linear engines produced different timelines (%d vs %d bytes)",
			len(cal), len(lin))
	}
}

// chaosTimelinePolicy mixes timers (tag 0), planned changes, and frequency
// switches so the sampler's reserved timer has to coexist with a busy event
// queue.
type chaosTimelinePolicy struct{ flip bool }

func (p *chaosTimelinePolicy) Name() string { return "chaos-timeline" }
func (p *chaosTimelinePolicy) Init(s *Sim)  { s.SetTimer(5, 0) }
func (p *chaosTimelinePolicy) OnArrival(s *Sim, r *Request) {
	if p.flip {
		s.SetFreq(s.Ladder().Min())
	} else {
		s.SetFreq(s.Ladder().Max())
	}
	p.flip = !p.flip
	s.PlanFreqChange(s.Now()+3, s.Ladder().Max())
}
func (p *chaosTimelinePolicy) OnStart(s *Sim, r *Request)     {}
func (p *chaosTimelinePolicy) OnDeparture(s *Sim, r *Request) {}
func (p *chaosTimelinePolicy) OnTimer(s *Sim, tag int64) {
	if tag != 0 {
		panic(fmt.Sprintf("policy observed reserved timer tag %d", tag))
	}
	s.SetTimer(s.Now()+7, 0)
}

// TestTopologyTimelineWorkersIdentical is the tentpole's determinism claim:
// the merged cluster timeline is byte-identical between the serial and
// sharded topology runs under every router, capped and uncapped.
func TestTopologyTimelineWorkersIdentical(t *testing.T) {
	run := func(router Router, capW float64, workers int) []byte {
		wl := clusterWorkload(400, 2, 6, 23)
		cfg := DefaultConfig()
		cfg.Series = NewRunTimeseries(cfg.Ladder, wl.DurationMs, 50)
		tc := TopologyConfig{
			Sim:       cfg,
			Topology:  Topology{Shards: 3, ReplicasPerShard: 2},
			Router:    router,
			Seed:      99,
			PowerCapW: capW,
		}
		RunTopologyWorkers(tc, wl, workers, mkCountingPolicy)
		return timelineJSONL(t, cfg.Series)
	}
	for _, name := range RouterNames {
		router, err := RouterByName(name)
		if err != nil {
			t.Fatal(err)
		}
		// 16 W binds hard for six cores (modeled floor ≈12.4 W, max ≈22.5 W).
		for _, capW := range []float64{0, 16} {
			serial := run(router, capW, 1)
			if len(serial) == 0 {
				t.Fatalf("router=%s cap=%v: empty timeline", name, capW)
			}
			for _, workers := range []int{2, 4, 9} {
				if sharded := run(router, capW, workers); !bytes.Equal(serial, sharded) {
					t.Fatalf("router=%s cap=%v workers=%d: timeline diverges from serial",
						name, capW, workers)
				}
			}
		}
	}
}

// TestClusterTimelineWorkersIdentical is the same identity for the broker
// cluster runner.
func TestClusterTimelineWorkersIdentical(t *testing.T) {
	run := func(workers int) []byte {
		wl := clusterWorkload(500, 1.5, 6, 41)
		cfg := DefaultConfig()
		cfg.Series = NewRunTimeseries(cfg.Ladder, wl.DurationMs, 50)
		RunClusterWorkers(cfg, wl, 6, workers, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
		return timelineJSONL(t, cfg.Series)
	}
	serial := run(1)
	if len(serial) == 0 {
		t.Fatal("empty cluster timeline")
	}
	for _, workers := range []int{2, 5} {
		if sharded := run(workers); !bytes.Equal(serial, sharded) {
			t.Fatalf("workers=%d: cluster timeline diverges from serial", workers)
		}
	}
}

// TestTopologyTimelineMatchesSingleRun checks the merge arithmetic against
// the raw sampler: a 1×1 topology's merged timeline must equal the plain
// single-core run on the same workload — power offset by exactly the uncore
// wattage, every other column (percentiles included, which the merge
// recomputes from request finish times) identical.
func TestTopologyTimelineMatchesSingleRun(t *testing.T) {
	const intervalMs = 40.0
	mk := func() (*Workload, Config) {
		wl := clusterWorkload(300, 3, 6, 17)
		cfg := DefaultConfig()
		cfg.Series = NewRunTimeseries(cfg.Ladder, wl.DurationMs, intervalMs)
		return wl, cfg
	}

	wlT, cfgT := mk()
	tc := TopologyConfig{Sim: cfgT, Topology: Topology{Shards: 1, ReplicasPerShard: 1}, Seed: 1}
	RunTopology(tc, wlT, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })

	wlS, cfgS := mk()
	Run(cfgS, wlS, &FixedPolicy{F: cpu.FDefault})

	topo, single := cfgT.Series.Rows(), cfgS.Series.Rows()
	if len(topo) != len(single) {
		t.Fatalf("row counts differ: topology %d vs single %d", len(topo), len(single))
	}
	uncore := cfgT.Power.UncoreW
	for k := range topo {
		a, b := topo[k], single[k]
		if math.Abs(a.PowerW-(b.PowerW+uncore)) > 1e-9 {
			t.Fatalf("row %d power: topology %v, single+uncore %v", k, a.PowerW, b.PowerW+uncore)
		}
		a.PowerW, b.PowerW = 0, 0
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("row %d differs beyond uncore:\n topology: %+v\n single:   %+v", k, a, b)
		}
	}
}

// TestTimelineCapConsistency is the power-cap/timeline consistency contract:
// the throttle column integrated over the run equals both the topology
// result's counter and the exported gemini_cluster_cap_throttle_total, and
// the coordinator's modeled watts obey the cap invariant sample-by-sample
// (never above max(cap, all-floor power) once the cap engages).
func TestTimelineCapConsistency(t *testing.T) {
	reg := telemetry.NewRegistry()
	wl := clusterWorkload(300, 1.5, 6, 13)
	cfg := DefaultConfig()
	cfg.Series = NewRunTimeseries(cfg.Ladder, wl.DurationMs, 30)
	tc := TopologyConfig{
		Sim:       cfg,
		Topology:  Topology{Shards: 3, ReplicasPerShard: 2},
		Router:    RouterPowerAware{},
		Seed:      13,
		PowerCapW: 15, // between the six-core floor (~12.4 W) and max (~22.5 W): must throttle
		Metrics:   telemetry.NewClusterMetrics(reg),
	}
	res := RunTopology(tc, wl, func(int) Policy { return &FixedPolicy{F: cpu.FDefault} })
	if res.CapThrottles == 0 {
		t.Fatal("cap never throttled; the fixture is supposed to bind")
	}

	var integral uint64
	bound := math.Max(tc.PowerCapW, ClusterFloorW(cfg.Power, cfg.Ladder, tc.Topology.Cores()))
	sawCapW := false
	for k, row := range cfg.Series.Rows() {
		integral += row.CapThrottles
		if row.CapModeledW > bound+1e-9 {
			t.Fatalf("row %d cap-modeled watts %v exceed invariant bound %v", k, row.CapModeledW, bound)
		}
		if row.CapModeledW > 0 {
			sawCapW = true
		}
	}
	if !sawCapW {
		t.Error("cap-modeled watts column never populated under an active cap")
	}
	if integral != uint64(res.CapThrottles) {
		t.Errorf("throttle series integrates to %d, result counter says %d", integral, res.CapThrottles)
	}

	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("gemini_cluster_cap_throttle_total %d\n", res.CapThrottles)
	if !strings.Contains(expo.String(), want) {
		t.Errorf("exposition missing %q:\n%s", strings.TrimSpace(want), expo.String())
	}
}
