package sim

import (
	"sort"

	"gemini/internal/cpu"
	"gemini/internal/stats"
	"gemini/internal/telemetry"
)

// Cluster timelines: per-core sampled series merged deterministically into
// one cluster-aggregate series.
//
// The discipline extends the span-accumulator contract: when Config.Series
// is set, RunClusterWorkers and RunTopologyWorkers give every core a private
// Timeseries (shared sinks would interleave samples nondeterministically
// under workers > 1), then merge window-by-window in core order after every
// core finished. Sample boundaries are bit-identical across cores — both the
// engine's reserved timers and SampleCount multiply k·interval rather than
// accumulating — so the merge is pure column arithmetic and the sharded
// timeline export is byte-identical to the serial one under every router and
// power cap (TestTopologyTimelineWorkersIdentical, FuzzRouterEquivalence).

// NewRunTimeseries sizes a telemetry.Timeseries for one run: residency levels
// from the ladder (DefaultLadder when nil) and capacity for every sample
// boundary of a durationMs run at intervalMs, so nothing is ever evicted.
func NewRunTimeseries(ladder *cpu.Ladder, durationMs, intervalMs float64) *telemetry.Timeseries {
	if ladder == nil {
		ladder = cpu.DefaultLadder()
	}
	levels := ladder.Levels()
	freqs := make([]float64, len(levels))
	for i, f := range levels {
		freqs[i] = float64(f)
	}
	n := telemetry.SampleCount(durationMs, intervalMs)
	if n < 1 {
		n = 1
	}
	return telemetry.NewTimeseries(intervalMs, freqs, n)
}

// coreSeries builds the private per-core capture series matching the
// caller's aggregate series.
func coreSeries(proto *telemetry.Timeseries, durationMs float64) *telemetry.Timeseries {
	iv := proto.IntervalMs()
	n := telemetry.SampleCount(durationMs, iv)
	if n < 1 {
		n = 1
	}
	return telemetry.NewTimeseries(iv, proto.FreqsGHz(), n)
}

// mergeTimeseries folds the per-core capture series into dst in core order.
// Sums (power, queue depth, in-flight, lifecycle counts) add across cores;
// the merged power includes uncoreW so the cluster row is comparable to the
// power cap; residency averages across cores (every core's window spans the
// same dt). Windowed percentiles cannot be merged from per-core percentiles,
// so they are recomputed from the parts' completed requests, bucketed by the
// same boundary rule the engine dispatch order implies (a completion at
// exactly a boundary dispatches before the sampler timer, hence lands in the
// window that boundary ends). coord, when non-nil, contributes the cap
// columns: throttle step-downs and modeled watts at the coordinator's own
// boundaries, mapped onto the enclosing sample window.
func mergeTimeseries(dst *telemetry.Timeseries, perCore []*telemetry.Timeseries, parts []*Workload, uncoreW float64, coord *PowerCapCoordinator) {
	if dst == nil || len(perCore) == 0 {
		return
	}
	rows := make([][]telemetry.TimeseriesRow, len(perCore))
	n := -1
	for c, ts := range perCore {
		rows[c] = ts.Rows()
		if n < 0 || len(rows[c]) < n {
			n = len(rows[c])
		}
	}
	if n <= 0 {
		return
	}
	bounds := make([]float64, n)
	for k := range bounds {
		bounds[k] = rows[0][k].TimeMs
	}

	// Latency windows, walked in core order: first boundary >= FinishMs.
	// Completions past the final boundary were never sampled on any core.
	wins := make([][]float64, n)
	for _, part := range parts {
		for _, r := range part.Requests {
			if !r.Done || r.Dropped {
				continue
			}
			k := sort.SearchFloat64s(bounds, r.FinishMs)
			if k >= n {
				continue
			}
			wins[k] = append(wins[k], r.FinishMs-r.ArrivalMs)
		}
	}

	resid := make([]float64, dst.LevelCount())
	capIdx := 0
	lastCapW := 0.0
	for k := 0; k < n; k++ {
		out := telemetry.TimeseriesRow{TimeMs: bounds[k], PowerW: uncoreW}
		for i := range resid {
			resid[i] = 0
		}
		for _, rs := range rows {
			r := rs[k]
			out.PowerW += r.PowerW
			out.QueueDepth += r.QueueDepth
			out.InFlight += r.InFlight
			out.Arrivals += r.Arrivals
			out.Completions += r.Completions
			out.Drops += r.Drops
			out.SLOViolations += r.SLOViolations
			// Per-core high-water marks sum: an upper bound on the
			// cluster-wide instantaneous peak (cores peak at different
			// instants), consistent with QueueDepth summing above.
			out.QueueHighWater += r.QueueHighWater
			// Runtime self-telemetry is zero in simulator rows; summing
			// keeps the merge total even if a producer ever sets it.
			out.Goroutines += r.Goroutines
			out.GCPauseMs += r.GCPauseMs
			out.HeapDeltaBytes += r.HeapDeltaBytes
			for i := range resid {
				if i < len(r.Residency) {
					resid[i] += r.Residency[i]
				}
			}
		}
		for i := range resid {
			resid[i] /= float64(len(rows))
		}
		out.Residency = resid
		if len(wins[k]) > 0 {
			sort.Float64s(wins[k])
			out.P50Ms = stats.PercentileSorted(wins[k], 50)
			out.P95Ms = stats.PercentileSorted(wins[k], 95)
			out.P99Ms = stats.PercentileSorted(wins[k], 99)
		}
		if coord != nil {
			for capIdx < len(coord.seriesT) && coord.seriesT[capIdx] <= bounds[k] {
				out.CapThrottles += uint64(coord.seriesThr[capIdx])
				lastCapW = coord.seriesW[capIdx]
				capIdx++
			}
			out.CapModeledW = lastCapW
		}
		dst.Append(out)
	}
}
