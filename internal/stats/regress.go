package stats

import "errors"

// LinearFit is the result of an ordinary-least-squares fit y = Slope*x +
// Intercept, with the coefficient of determination R2. It backs the Fig. 3
// validation that search latency is linear in 1/frequency.
type LinearFit struct {
	Slope, Intercept, R2 float64
}

// FitLinear performs ordinary least squares on the paired samples.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched sample lengths")
	}
	if len(xs) < 2 {
		return LinearFit{}, errors.New("stats: need at least two points")
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R² = 1 - SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }
