package stats

import "math/rand"

// Reservoir keeps a uniform random sample of fixed capacity from a stream of
// observations (Vitter's algorithm R). It is used to bound the memory of
// long trace-driven runs while still computing faithful percentiles.
type Reservoir struct {
	cap  int
	seen int
	buf  []float64
	rng  *rand.Rand
}

// NewReservoir creates a reservoir sampler of the given capacity, seeded
// deterministically so experiment runs are reproducible.
func NewReservoir(capacity int, seed int64) *Reservoir {
	if capacity <= 0 {
		capacity = 1
	}
	return &Reservoir{
		cap: capacity,
		buf: make([]float64, 0, capacity),
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(x float64) {
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, x)
		return
	}
	if j := r.rng.Intn(r.seen); j < r.cap {
		r.buf[j] = x
	}
}

// Seen returns the total number of observations offered.
func (r *Reservoir) Seen() int { return r.seen }

// Sample returns a copy of the current sample.
func (r *Reservoir) Sample() []float64 {
	out := make([]float64, len(r.buf))
	copy(out, r.buf)
	return out
}

// Percentile computes the p-th percentile of the current sample.
func (r *Reservoir) Percentile(p float64) (float64, error) {
	return Percentile(r.buf, p)
}
