package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPercentileBasics(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {75, 7.75},
	}
	for _, c := range cases {
		got, err := Percentile(vals, c.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileSingleValue(t *testing.T) {
	got, err := Percentile([]float64{42}, 95)
	if err != nil || got != 42 {
		t.Fatalf("Percentile single = %v, %v; want 42, nil", got, err)
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Errorf("empty: got %v, want ErrEmpty", err)
	}
	if _, err := Percentile([]float64{1}, -1); err == nil {
		t.Errorf("negative percentile accepted")
	}
	if _, err := Percentile([]float64{1}, 101); err == nil {
		t.Errorf("out-of-range percentile accepted")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	if _, err := Percentile(vals, 50); err != nil {
		t.Fatal(err)
	}
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Errorf("input mutated: %v", vals)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		p1 := float64(a) / 255 * 100
		p2 := float64(b) / 255 * 100
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		v1, err1 := Percentile(vals, p1)
		v2, err2 := Percentile(vals, p2)
		if err1 != nil || err2 != nil {
			return false
		}
		lo, _ := Min(vals)
		hi, _ := Max(vals)
		return v1 <= v2+1e-9 && v1 >= lo-1e-9 && v2 <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeans(t *testing.T) {
	vals := []float64{2, 8}
	am, _ := Mean(vals)
	gm, _ := GeometricMean(vals)
	hm, _ := HarmonicMean(vals)
	if !almostEqual(am, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", am)
	}
	if !almostEqual(gm, 4, 1e-9) {
		t.Errorf("GeometricMean = %v, want 4", gm)
	}
	if !almostEqual(hm, 3.2, 1e-9) {
		t.Errorf("HarmonicMean = %v, want 3.2", hm)
	}
}

// Property: HM <= GM <= AM for positive values.
func TestMeanInequalityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			v = math.Abs(v)
			if v > 1e-6 && v < 1e9 && !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		am, _ := Mean(vals)
		gm, _ := GeometricMean(vals)
		hm, _ := HarmonicMean(vals)
		return hm <= gm*(1+1e-9) && gm <= am*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestVariance(t *testing.T) {
	v, err := Variance([]float64{1, 1, 1})
	if err != nil || v != 0 {
		t.Errorf("Variance(constant) = %v, %v; want 0, nil", v, err)
	}
	v, _ = Variance([]float64{1, 3})
	if !almostEqual(v, 1, 1e-12) {
		t.Errorf("Variance = %v, want 1", v)
	}
}

func TestMinMax(t *testing.T) {
	vals := []float64{3, -1, 7, 0}
	mn, _ := Min(vals)
	mx, _ := Max(vals)
	if mn != -1 || mx != 7 {
		t.Errorf("Min/Max = %v/%v, want -1/7", mn, mx)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(2); got != 0.5 {
		t.Errorf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(4); got != 1 {
		t.Errorf("At(4) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); !almostEqual(got, 2.5, 1e-9) {
		t.Errorf("Quantile(0.5) = %v, want 2.5", got)
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

func TestCDFPoints(t *testing.T) {
	c, _ := NewCDF([]float64{0, 10})
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("len(pts) = %d", len(pts))
	}
	if pts[0][0] != 0 || pts[10][0] != 10 {
		t.Errorf("x range = [%v,%v], want [0,10]", pts[0][0], pts[10][0])
	}
	// CDF points must be monotone non-decreasing in y.
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Errorf("non-monotone CDF at %d: %v < %v", i, pts[i][1], pts[i-1][1])
		}
	}
	if pts[10][1] != 1 {
		t.Errorf("final CDF value = %v, want 1", pts[10][1])
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-5) // clamps into first bin
	h.Add(99) // clamps into last bin
	if h.Total() != 12 {
		t.Fatalf("Total = %d, want 12", h.Total())
	}
	if h.Counts[0] != 2 || h.Counts[9] != 2 {
		t.Errorf("edge bins = %d,%d, want 2,2", h.Counts[0], h.Counts[9])
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 12 {
		t.Errorf("bin sum = %d, want 12", sum)
	}
	if got := h.BinCenter(0); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 0.5", got)
	}
	if got := h.Fraction(0); !almostEqual(got, 2.0/12, 1e-12) {
		t.Errorf("Fraction(0) = %v", got)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 1000)
	var o Online
	for i := range vals {
		vals[i] = rng.NormFloat64()*3 + 7
		o.Add(vals[i])
	}
	bm, _ := Mean(vals)
	bv, _ := Variance(vals)
	if !almostEqual(o.Mean(), bm, 1e-9) {
		t.Errorf("online mean %v != batch %v", o.Mean(), bm)
	}
	if !almostEqual(o.Variance(), bv, 1e-6) {
		t.Errorf("online var %v != batch %v", o.Variance(), bv)
	}
	mn, _ := Min(vals)
	mx, _ := Max(vals)
	if o.Min() != mn || o.Max() != mx {
		t.Errorf("online min/max mismatch")
	}
	if o.N() != 1000 {
		t.Errorf("N = %d", o.N())
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if o.Mean() != 0 || o.Variance() != 0 || o.N() != 0 {
		t.Errorf("zero-value Online not zeroed")
	}
}

func TestMovingAverageWindow(t *testing.T) {
	m := NewMovingAverage(3)
	if m.Mean() != 0 || m.Len() != 0 {
		t.Fatalf("empty window: mean=%v len=%d", m.Mean(), m.Len())
	}
	m.Add(1)
	m.Add(2)
	if !almostEqual(m.Mean(), 1.5, 1e-12) || m.Len() != 2 {
		t.Errorf("partial window: mean=%v len=%d", m.Mean(), m.Len())
	}
	m.Add(3)
	m.Add(10) // evicts 1
	if !almostEqual(m.Mean(), 5, 1e-12) || m.Len() != 3 {
		t.Errorf("full window: mean=%v len=%d, want 5, 3", m.Mean(), m.Len())
	}
}

// Property: moving average always equals the mean of the last w values.
func TestMovingAverageProperty(t *testing.T) {
	f := func(raw []float64, w uint8) bool {
		window := int(w%16) + 1
		m := NewMovingAverage(window)
		var hist []float64
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e9 {
				continue
			}
			m.Add(v)
			hist = append(hist, v)
			start := len(hist) - window
			if start < 0 {
				start = 0
			}
			want, _ := Mean(hist[start:])
			if !almostEqual(m.Mean(), want, 1e-6*(1+math.Abs(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	e.Add(10)
	if e.Value() != 10 {
		t.Errorf("first value = %v, want 10", e.Value())
	}
	e.Add(20)
	if !almostEqual(e.Value(), 15, 1e-12) {
		t.Errorf("Value = %v, want 15", e.Value())
	}
	bad := NewEWMA(2) // invalid alpha falls back to 0.5
	bad.Add(10)
	bad.Add(20)
	if !almostEqual(bad.Value(), 15, 1e-12) {
		t.Errorf("fallback alpha: %v, want 15", bad.Value())
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{3, 5, 7, 9} // y = 2x + 1
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-9) || !almostEqual(fit.Intercept, 1, 1e-9) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
	if !almostEqual(fit.Predict(10), 21, 1e-9) {
		t.Errorf("Predict(10) = %v, want 21", fit.Predict(10))
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] - 4 + rng.NormFloat64()*0.01
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 3, 1e-3) || !almostEqual(fit.Intercept, -4, 0.05) {
		t.Errorf("fit = %+v", fit)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R2 = %v too low", fit.R2)
	}
}

func TestReservoirSmallStream(t *testing.T) {
	r := NewReservoir(10, 1)
	for i := 0; i < 5; i++ {
		r.Add(float64(i))
	}
	if r.Seen() != 5 {
		t.Errorf("Seen = %d", r.Seen())
	}
	s := r.Sample()
	if len(s) != 5 {
		t.Fatalf("sample len = %d, want 5", len(s))
	}
	sort.Float64s(s)
	for i, v := range s {
		if v != float64(i) {
			t.Errorf("sample[%d] = %v", i, v)
		}
	}
}

func TestReservoirCapacityAndUniformity(t *testing.T) {
	const n = 20000
	r := NewReservoir(1000, 42)
	for i := 0; i < n; i++ {
		r.Add(float64(i))
	}
	if len(r.Sample()) != 1000 {
		t.Fatalf("sample len = %d, want 1000", len(r.Sample()))
	}
	// The sample mean of a uniform stream 0..n-1 should be near (n-1)/2.
	m, _ := Mean(r.Sample())
	if math.Abs(m-float64(n-1)/2) > float64(n)*0.05 {
		t.Errorf("sample mean %v far from %v", m, float64(n-1)/2)
	}
	p, err := r.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-float64(n)/2) > float64(n)*0.1 {
		t.Errorf("median %v far from %v", p, float64(n)/2)
	}
}
