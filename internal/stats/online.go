package stats

import "math"

// Online accumulates mean and variance incrementally using Welford's
// algorithm. The zero value is ready to use.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of observations.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 if no observations).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest observation (0 if none).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest observation (0 if none).
func (o *Online) Max() float64 { return o.max }

// MovingAverage keeps the mean of the last Window observations. It backs
// Gemini-α, which estimates the current request's prediction error as the
// moving average of the errors seen over the past 60 request arrivals
// (paper §VI-A).
type MovingAverage struct {
	window int
	buf    []float64
	next   int
	filled bool
	sum    float64
}

// NewMovingAverage creates a moving average over the given window size.
func NewMovingAverage(window int) *MovingAverage {
	if window <= 0 {
		window = 1
	}
	return &MovingAverage{window: window, buf: make([]float64, window)}
}

// Add records one observation, evicting the oldest when the window is full.
func (m *MovingAverage) Add(x float64) {
	if m.filled {
		m.sum -= m.buf[m.next]
	}
	m.buf[m.next] = x
	m.sum += x
	m.next++
	if m.next == m.window {
		m.next = 0
		m.filled = true
	}
}

// Mean returns the mean of the observations currently in the window, or 0 if
// none have been recorded.
func (m *MovingAverage) Mean() float64 {
	n := m.Len()
	if n == 0 {
		return 0
	}
	return m.sum / float64(n)
}

// Len returns the number of observations currently in the window.
func (m *MovingAverage) Len() int {
	if m.filled {
		return m.window
	}
	return m.next
}

// Std returns the population standard deviation of the observations
// currently in the window (0 if fewer than two).
func (m *MovingAverage) Std() float64 {
	n := m.Len()
	if n < 2 {
		return 0
	}
	mean := m.Mean()
	sum := 0.0
	for i := 0; i < n; i++ {
		d := m.buf[i] - mean
		sum += d * d
	}
	return math.Sqrt(sum / float64(n))
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha weights recent observations more.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA creates an EWMA with the given smoothing factor.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.5
	}
	return &EWMA{alpha: alpha}
}

// Add records one observation.
func (e *EWMA) Add(x float64) {
	if !e.init {
		e.value = x
		e.init = true
		return
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
}

// Value returns the current smoothed value.
func (e *EWMA) Value() float64 { return e.value }
