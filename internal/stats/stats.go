// Package stats provides the small statistical toolkit used throughout the
// Gemini reproduction: percentiles, empirical CDFs, histograms, online
// moments, sliding-window averages, simple linear regression, and reservoir
// sampling.
//
// All routines are deterministic and allocation-conscious; they are used both
// by the simulator's metrics pipeline and by the experiment harness that
// regenerates the paper's tables and figures.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by routines that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Percentile returns the p-th percentile (0 <= p <= 100) of values using
// linear interpolation between closest ranks. The input slice is not
// modified.
func Percentile(values []float64, p float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

// PercentileSorted is like Percentile but assumes values are already sorted
// ascending and avoids the copy. It panics on an empty slice.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: PercentileSorted on empty slice")
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of values.
func Mean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values)), nil
}

// GeometricMean returns the geometric mean of values. Non-positive values
// are clamped to a tiny epsilon so that score distributions containing zeros
// remain well-defined (matching the feature extraction in the paper's
// Table II, where scores are strictly positive anyway).
func GeometricMean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	const eps = 1e-12
	sumLog := 0.0
	for _, v := range values {
		if v < eps {
			v = eps
		}
		sumLog += math.Log(v)
	}
	return math.Exp(sumLog / float64(len(values))), nil
}

// HarmonicMean returns the harmonic mean of values, clamping non-positive
// values to a tiny epsilon as in GeometricMean.
func HarmonicMean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	const eps = 1e-12
	sumInv := 0.0
	for _, v := range values {
		if v < eps {
			v = eps
		}
		sumInv += 1 / v
	}
	return float64(len(values)) / sumInv, nil
}

// Variance returns the population variance of values.
func Variance(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	mean, _ := Mean(values)
	sum := 0.0
	for _, v := range values {
		d := v - mean
		sum += d * d
	}
	return sum / float64(len(values)), nil
}

// Max returns the maximum of values.
func Max(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	m := values[0]
	for _, v := range values[1:] {
		if v > m {
			m = v
		}
	}
	return m, nil
}

// Min returns the minimum of values.
func Min(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, ErrEmpty
	}
	m := values[0]
	for _, v := range values[1:] {
		if v < m {
			m = v
		}
	}
	return m, nil
}

// CDF is an empirical cumulative distribution function built from a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample. The input is copied.
func NewCDF(values []float64) (*CDF, error) {
	if len(values) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(values))
	copy(sorted, values)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns P(X <= x) for the empirical distribution.
func (c *CDF) At(x float64) float64 {
	// Index of first element > x.
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1) of the distribution.
func (c *CDF) Quantile(q float64) float64 {
	return percentileSorted(c.sorted, q*100)
}

// Len returns the number of samples behind the CDF.
func (c *CDF) Len() int { return len(c.sorted) }

// Points renders the CDF as n evenly spaced (x, P(X<=x)) points across the
// sample range, convenient for printing figure series.
func (c *CDF) Points(n int) [][2]float64 {
	if n < 2 {
		n = 2
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([][2]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = [2]float64{x, c.At(x)}
	}
	return pts
}

// Histogram counts samples into fixed-width bins over [Lo, Hi). Values
// outside the range are clamped into the edge bins so that counts always sum
// to the number of observations.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Fraction returns the fraction of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}
