package policy

import (
	"math/rand"
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/sim"
)

func governorWorkload(n int, gapMs float64, seed int64) *sim.Workload {
	rng := rand.New(rand.NewSource(seed))
	wl := &sim.Workload{BudgetMs: 40}
	at := 0.0
	for i := 0; i < n; i++ {
		at += rng.ExpFloat64() * gapMs
		ms := 2 + rng.Float64()*10
		w := cpu.Work(ms * float64(cpu.FDefault))
		wl.Requests = append(wl.Requests, &sim.Request{
			ID: i, BaseWork: w, WorkTotal: w, ArrivalMs: at, DeadlineMs: at + 40,
		})
	}
	wl.DurationMs = at + 200
	return wl
}

func TestOnDemandCompletesAll(t *testing.T) {
	wl := governorWorkload(200, 25, 1)
	res := sim.Run(sim.DefaultConfig(), wl, NewOnDemand())
	if res.Completed != 200 {
		t.Fatalf("completed = %d", res.Completed)
	}
	b := sim.Run(sim.DefaultConfig(), governorWorkload(200, 25, 1), Baseline{})
	if res.EnergyMJ >= b.EnergyMJ {
		t.Errorf("ondemand energy %v >= baseline %v", res.EnergyMJ, b.EnergyMJ)
	}
}

func TestOnDemandRampsUpUnderLoad(t *testing.T) {
	// Saturating load: utilization ~1, the governor must reach max quickly
	// and stay there, keeping the queue from diverging unboundedly.
	wl := governorWorkload(400, 6, 2)
	res := sim.Run(sim.DefaultConfig(), wl, NewOnDemand())
	if res.Completed != 400 {
		t.Fatalf("completed = %d", res.Completed)
	}
	// At near-saturation ondemand's mean latency must be within a small
	// factor of the baseline's (it converges to max frequency).
	b := sim.Run(sim.DefaultConfig(), governorWorkload(400, 6, 2), Baseline{})
	if res.MeanLatencyMs() > 5*b.MeanLatencyMs()+20 {
		t.Errorf("ondemand mean %v far above baseline %v — governor failed to ramp",
			res.MeanLatencyMs(), b.MeanLatencyMs())
	}
}

func TestConservativeCompletesAndSaves(t *testing.T) {
	wl := governorWorkload(200, 25, 3)
	res := sim.Run(sim.DefaultConfig(), wl, NewConservative())
	if res.Completed != 200 {
		t.Fatalf("completed = %d", res.Completed)
	}
	b := sim.Run(sim.DefaultConfig(), governorWorkload(200, 25, 3), Baseline{})
	if res.EnergyMJ >= b.EnergyMJ {
		t.Errorf("conservative energy %v >= baseline %v", res.EnergyMJ, b.EnergyMJ)
	}
}

// Governors are deadline-blind: under the same load where Gemini holds the
// budget, ondemand violates more — the motivation for latency-aware DVFS.
func TestGovernorsAreDeadlineBlind(t *testing.T) {
	mk := func() *sim.Workload {
		rng := rand.New(rand.NewSource(4))
		wl := &sim.Workload{BudgetMs: 40}
		at := 0.0
		for i := 0; i < 300; i++ {
			at += rng.ExpFloat64() * 18
			ms := 4 + rng.Float64()*18
			var fv [16]float64
			w := cpu.Work(ms * float64(cpu.FDefault))
			req := &sim.Request{
				ID: i, BaseWork: w, WorkTotal: w, ArrivalMs: at, DeadlineMs: at + 40,
			}
			req.Features[0] = ms
			req.Features[1] = 0.5
			_ = fv
			wl.Requests = append(wl.Requests, req)
		}
		wl.DurationMs = at + 200
		return wl
	}
	od := sim.Run(sim.DefaultConfig(), mk(), NewOnDemand())
	gm := sim.Run(sim.DefaultConfig(), mk(), newTestGemini())
	if gm.ViolationRate() >= od.ViolationRate() && od.ViolationRate() > 0 {
		t.Errorf("Gemini violation rate %v not below ondemand %v",
			gm.ViolationRate(), od.ViolationRate())
	}
}
