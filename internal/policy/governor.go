package policy

import (
	"gemini/internal/cpu"
	"gemini/internal/sim"
)

// OnDemand mimics the classic Linux `ondemand` cpufreq governor: utilization
// is sampled on a fixed period; above the up-threshold the core jumps to the
// maximum frequency, otherwise the frequency is set proportionally so the
// sampled utilization would sit at the threshold. It is deadline-blind —
// a useful non-latency-aware reference point next to the paper's policies.
type OnDemand struct {
	PeriodMs    float64 // sampling period (Linux default order: 10 ms)
	SampleMs    float64 // busy-probe spacing within a period
	UpThreshold float64 // utilization that triggers max frequency (0.80)

	busy, samples int
}

// NewOnDemand returns the governor with Linux-like defaults.
func NewOnDemand() *OnDemand {
	return &OnDemand{PeriodMs: 10, SampleMs: 1, UpThreshold: 0.80}
}

// Name implements sim.Policy.
func (p *OnDemand) Name() string { return "ondemand" }

// Init implements sim.Policy.
func (p *OnDemand) Init(s *sim.Sim) {
	s.SetFreq(s.Ladder().Min())
	s.SetTimer(p.SampleMs, 0)
}

// OnArrival implements sim.Policy.
func (p *OnDemand) OnArrival(*sim.Sim, *sim.Request) {}

// OnStart implements sim.Policy.
func (p *OnDemand) OnStart(*sim.Sim, *sim.Request) {}

// OnDeparture implements sim.Policy.
func (p *OnDemand) OnDeparture(*sim.Sim, *sim.Request) {}

// OnTimer implements sim.Policy: probe business, and on period boundaries
// apply the governor rule.
func (p *OnDemand) OnTimer(s *sim.Sim, _ int64) {
	p.samples++
	if len(s.Queue()) > 0 {
		p.busy++
	}
	if float64(p.samples)*p.SampleMs >= p.PeriodMs {
		util := float64(p.busy) / float64(p.samples)
		p.busy, p.samples = 0, 0
		if util >= p.UpThreshold {
			s.SetFreq(cpu.FDefault)
		} else {
			// Scale so that the observed busy work would fill UpThreshold
			// of the period at the new frequency.
			target := cpu.Freq(float64(s.Freq()) * util / p.UpThreshold)
			s.SetFreq(s.Ladder().ClampUp(target))
		}
	}
	s.SetTimer(s.Now()+p.SampleMs, 0)
}

// Conservative mimics the Linux `conservative` governor: like ondemand but
// stepping one ladder level at a time in both directions.
type Conservative struct {
	PeriodMs      float64
	SampleMs      float64
	UpThreshold   float64 // step up above this (0.80)
	DownThreshold float64 // step down below this (0.20)

	busy, samples int
}

// NewConservative returns the governor with Linux-like defaults.
func NewConservative() *Conservative {
	return &Conservative{PeriodMs: 10, SampleMs: 1, UpThreshold: 0.80, DownThreshold: 0.20}
}

// Name implements sim.Policy.
func (p *Conservative) Name() string { return "conservative" }

// Init implements sim.Policy.
func (p *Conservative) Init(s *sim.Sim) {
	s.SetFreq(s.Ladder().Min())
	s.SetTimer(p.SampleMs, 0)
}

// OnArrival implements sim.Policy.
func (p *Conservative) OnArrival(*sim.Sim, *sim.Request) {}

// OnStart implements sim.Policy.
func (p *Conservative) OnStart(*sim.Sim, *sim.Request) {}

// OnDeparture implements sim.Policy.
func (p *Conservative) OnDeparture(*sim.Sim, *sim.Request) {}

// OnTimer implements sim.Policy.
func (p *Conservative) OnTimer(s *sim.Sim, _ int64) {
	p.samples++
	if len(s.Queue()) > 0 {
		p.busy++
	}
	if float64(p.samples)*p.SampleMs >= p.PeriodMs {
		util := float64(p.busy) / float64(p.samples)
		p.busy, p.samples = 0, 0
		switch {
		case util >= p.UpThreshold:
			s.SetFreq(s.Ladder().StepUp(s.Freq()))
		case util <= p.DownThreshold:
			s.SetFreq(s.Ladder().StepDown(s.Freq()))
		}
	}
	s.SetTimer(s.Now()+p.SampleMs, 0)
}
