package policy

import (
	"math/rand"
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/search"
	"gemini/internal/sim"
)

// benchWL builds a stream with self-describing predictions (features carry
// the prediction, as in the unit tests).
func benchWL(n int, seed int64) *sim.Workload {
	rng := rand.New(rand.NewSource(seed))
	wl := &sim.Workload{BudgetMs: 40}
	at := 0.0
	for i := 0; i < n; i++ {
		at += rng.ExpFloat64() * 25
		ms := 2 + rng.Float64()*20
		var fv search.FeatureVector
		fv[0] = ms
		fv[1] = 0.5
		w := cpu.Work(ms * 2.7)
		wl.Requests = append(wl.Requests, &sim.Request{
			ID: i, Features: fv, BaseWork: w, WorkTotal: w,
			ArrivalMs: at, DeadlineMs: at + 40,
		})
	}
	wl.DurationMs = at + 100
	return wl
}

func benchPolicy(b *testing.B, mk func() sim.Policy) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		wl := benchWL(2000, int64(i))
		pol := mk()
		b.StartTimer()
		sim.Run(sim.DefaultConfig(), wl, pol)
	}
}

func BenchmarkBaselinePolicy(b *testing.B) {
	benchPolicy(b, func() sim.Policy { return Baseline{} })
}

func BenchmarkGeminiPolicy(b *testing.B) {
	benchPolicy(b, func() sim.Policy { return NewGemini(featService{}, featError{}) })
}

func BenchmarkRubikPolicy(b *testing.B) {
	benchPolicy(b, func() sim.Policy { return NewRubik(20) })
}

func BenchmarkPegasusPolicy(b *testing.B) {
	benchPolicy(b, func() sim.Policy { return NewPegasus() })
}

func BenchmarkPACEOraclePolicy(b *testing.B) {
	benchPolicy(b, func() sim.Policy { return NewPACEOracle() })
}
