package policy

import (
	"sort"

	"gemini/internal/cpu"
	"gemini/internal/sim"
)

// Rubik is the fine-grained analytical scheme of Kasture et al. (paper ref
// [18], described in §II-B and §VI-A): on every request arrival and
// departure it recomputes the lowest frequency such that every queued
// request still meets its deadline, estimating each request's compute demand
// from the tail (95th percentile) of the service-time distribution — the
// conservative estimator whose wasted headroom motivates Gemini's per-query
// prediction.
//
// When built from distribution samples (NewRubikFromSamples), the executing
// request's residual demand uses the *conditional* tail — the 95th
// percentile of service times that exceed the work already executed — as in
// Rubik's remaining-work distribution model: a request that has already run
// long reveals itself to be a tail request and its residual estimate grows.
type Rubik struct {
	// S95Ms is the 95th-percentile service time at the default frequency.
	S95Ms float64
	// IdleFreq is used when the queue drains (lowest ladder frequency).
	IdleFreq cpu.Freq
	// samples, when non-nil, holds the sorted service-time distribution for
	// conditional-tail residual estimates.
	samples []float64
}

// NewRubik builds Rubik from the profiled tail service time alone.
func NewRubik(s95Ms float64) *Rubik {
	return &Rubik{S95Ms: s95Ms, IdleFreq: cpu.DefaultLadder().Min()}
}

// armedFreq is the frequency Rubik starts at: able to serve one tail request
// arriving into an idle core within the budget.
func (p *Rubik) armedFreq(budgetMs float64) cpu.Freq {
	f := cpu.Freq(p.S95Ms * float64(cpu.FDefault) / budgetMs)
	return cpu.DefaultLadder().ClampUp(f)
}

// NewRubikFromSamples builds Rubik from profiled service times (ms at the
// default frequency), enabling the conditional remaining-work tail.
func NewRubikFromSamples(serviceMs []float64) *Rubik {
	s := make([]float64, len(serviceMs))
	copy(s, serviceMs)
	sort.Float64s(s)
	s95 := 0.0
	if len(s) > 0 {
		s95 = s[int(0.95*float64(len(s)-1))]
	}
	return &Rubik{S95Ms: s95, IdleFreq: cpu.DefaultLadder().Min(), samples: s}
}

// condTail95 returns the 95th percentile of service times conditioned on
// exceeding elapsedMs of FDefault-equivalent execution.
func (p *Rubik) condTail95(elapsedMs float64) float64 {
	if p.samples == nil {
		return p.S95Ms
	}
	i := sort.SearchFloat64s(p.samples, elapsedMs)
	rest := p.samples[i:]
	if len(rest) == 0 {
		// Beyond every observed service time: extrapolate proportionally.
		return elapsedMs * 1.1
	}
	return rest[int(0.95*float64(len(rest)-1))]
}

// Name implements sim.Policy.
func (p *Rubik) Name() string { return "Rubik" }

// Init implements sim.Policy.
func (p *Rubik) Init(s *sim.Sim) { s.SetFreq(p.armedFreq(s.BudgetMs())) }

// OnArrival implements sim.Policy.
func (p *Rubik) OnArrival(s *sim.Sim, r *sim.Request) { p.replan(s) }

// OnStart implements sim.Policy.
func (p *Rubik) OnStart(*sim.Sim, *sim.Request) {}

// OnDeparture implements sim.Policy.
func (p *Rubik) OnDeparture(s *sim.Sim, r *sim.Request) { p.replan(s) }

// OnTimer implements sim.Policy.
func (p *Rubik) OnTimer(*sim.Sim, int64) {}

// replan selects the smallest frequency that clears every queued request's
// estimated cumulative work before its deadline.
func (p *Rubik) replan(s *sim.Sim) {
	q := s.Queue()
	if len(q) == 0 {
		// Rubik reconfigures only on arrival and departure events; with an
		// empty queue its model has nothing to solve, so the core keeps the
		// last computed frequency until the next arrival (the behavior the
		// paper measured at 16.8% saving — Rubik does not manage idle).
		return
	}
	fdef := float64(cpu.FDefault)
	now := s.Now()
	est := p.S95Ms * fdef // per-request work estimate at the tail

	// Head residual: conditional tail of its remaining work given observed
	// progress.
	elapsed := float64(q[0].WorkDone) / fdef
	cum := p.condTail95(elapsed)*fdef - float64(q[0].WorkDone)
	if cum < 0 {
		cum = 0
	}
	required := 0.0
	for k, r := range q {
		if k > 0 {
			cum += est
		}
		window := r.DeadlineMs - now - s.TdvfsMs()
		if window <= 0 {
			required = fdef
			break
		}
		if f := cum / window; f > required {
			required = f
		}
	}
	f := s.Ladder().ClampUp(cpu.Freq(required))
	s.SetFreq(f)
	// Rubik is single-step: the whole queue runs at f until the next event,
	// so the head's decision record carries it as the initial frequency.
	s.TracePlan(q[0], f, 0, 0, -1)
}
