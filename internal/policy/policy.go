// Package policy implements the DVFS power-management schemes the paper
// evaluates (Table I, §VI): the no-management Baseline, the epoch-feedback
// Pegasus, the analytical per-arrival/departure Rubik, Gemini and its
// ablations Gemini-α and Gemini-95th, plus two extension baselines — an
// EETL-style PID threshold controller and a clairvoyant PACE-oracle lower
// bound. All policies drive a sim.Sim through its control surface.
package policy

import (
	"gemini/internal/cpu"
	"gemini/internal/sim"
)

// Baseline never manages power: the core stays at the default (maximum)
// frequency, as in the paper's baseline bars.
type Baseline struct{}

// Name implements sim.Policy.
func (Baseline) Name() string { return "Baseline" }

// Init implements sim.Policy.
func (Baseline) Init(s *sim.Sim) { s.SetFreq(cpu.FDefault) }

// OnArrival implements sim.Policy.
func (Baseline) OnArrival(*sim.Sim, *sim.Request) {}

// OnStart implements sim.Policy.
func (Baseline) OnStart(*sim.Sim, *sim.Request) {}

// OnDeparture implements sim.Policy.
func (Baseline) OnDeparture(*sim.Sim, *sim.Request) {}

// OnTimer implements sim.Policy.
func (Baseline) OnTimer(*sim.Sim, int64) {}

// FixedFreq pins an arbitrary frequency — used by calibration experiments
// such as the Fig. 3 latency-vs-frequency sweep.
type FixedFreq struct{ F cpu.Freq }

// Name implements sim.Policy.
func (p FixedFreq) Name() string { return "Fixed" }

// Init implements sim.Policy.
func (p FixedFreq) Init(s *sim.Sim) { s.SetFreq(p.F) }

// OnArrival implements sim.Policy.
func (FixedFreq) OnArrival(*sim.Sim, *sim.Request) {}

// OnStart implements sim.Policy.
func (FixedFreq) OnStart(*sim.Sim, *sim.Request) {}

// OnDeparture implements sim.Policy.
func (FixedFreq) OnDeparture(*sim.Sim, *sim.Request) {}

// OnTimer implements sim.Policy.
func (FixedFreq) OnTimer(*sim.Sim, int64) {}
