package policy

import (
	"gemini/internal/cpu"
	"gemini/internal/sim"
)

// SleepWrapper composes any DVFS policy with C-state management — the
// extension the paper sketches in §I ("the technique can also be extended to
// Sleep states"). Whenever the wrapped policy leaves the queue empty, the
// core enters the deepest sleep state whose wake latency is an acceptable
// fraction of the latency budget; the next arrival pays the wake latency.
type SleepWrapper struct {
	Inner sim.Policy
	// States is the available C-state ladder (cpu.DefaultCStates if nil).
	States []cpu.CState
	// MaxWakeFraction bounds the wake latency to this fraction of the
	// budget (default 1%): deep sleep must never endanger the deadline.
	MaxWakeFraction float64
}

// NewSleepWrapper wraps a policy with the default C-state ladder.
func NewSleepWrapper(inner sim.Policy) *SleepWrapper {
	return &SleepWrapper{Inner: inner, States: cpu.DefaultCStates, MaxWakeFraction: 0.01}
}

// Name implements sim.Policy.
func (p *SleepWrapper) Name() string { return p.Inner.Name() + "+Sleep" }

// Init implements sim.Policy.
func (p *SleepWrapper) Init(s *sim.Sim) {
	if p.States == nil {
		p.States = cpu.DefaultCStates
	}
	if p.MaxWakeFraction == 0 {
		p.MaxWakeFraction = 0.01
	}
	p.Inner.Init(s)
	p.maybeSleep(s)
}

// OnArrival implements sim.Policy.
func (p *SleepWrapper) OnArrival(s *sim.Sim, r *sim.Request) { p.Inner.OnArrival(s, r) }

// OnStart implements sim.Policy.
func (p *SleepWrapper) OnStart(s *sim.Sim, r *sim.Request) { p.Inner.OnStart(s, r) }

// OnDeparture implements sim.Policy.
func (p *SleepWrapper) OnDeparture(s *sim.Sim, r *sim.Request) {
	p.Inner.OnDeparture(s, r)
	p.maybeSleep(s)
}

// OnTimer implements sim.Policy.
func (p *SleepWrapper) OnTimer(s *sim.Sim, tag int64) { p.Inner.OnTimer(s, tag) }

func (p *SleepWrapper) maybeSleep(s *sim.Sim) {
	if len(s.Queue()) > 0 {
		return
	}
	st := cpu.DeepestAffordable(p.States, p.MaxWakeFraction*s.BudgetMs())
	s.Sleep(st.PowerW, st.WakeMs)
}
