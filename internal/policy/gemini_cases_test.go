package policy

// Scenario tests reproducing the worked examples of paper Figs. 4 and 5:
// the two-request critical/non-critical cases and the N-request group
// construction, driven through the real simulator with self-describing
// predictions (Features[0] = S*, Features[1] = E*).

import (
	"testing"

	"gemini/internal/cpu"
	"gemini/internal/sim"
)

// Fig. 4 Case 1: R2 arrives while R1 executes, with a wide deadline gap —
// non-critical, R1's plan is untouched and R2 runs its own two-step plan
// after R1 departs (Case 1b).
func TestFig4Case1NonCritical(t *testing.T) {
	wl := mkWL(40, 300,
		reqSpec{at: 0, actualMs: 12, predMs: 12, predErrMs: 0.5},
		// Arrives late: D2 - D1 = 30 ms > S*2+E*2 = 8.5 ms -> non-critical.
		reqSpec{at: 30, actualMs: 8, predMs: 8, predErrMs: 0.5})
	res := runPolicy(t, wl, newTestGemini())
	if res.Violations != 0 || res.Dropped != 0 {
		t.Fatalf("violations=%d dropped=%d", res.Violations, res.Dropped)
	}
	r1, r2 := wl.Requests[0], wl.Requests[1]
	// R1 was not rushed: it finishes near its own (margin-adjusted)
	// deadline, not early.
	if r1.LatencyMs() < 20 {
		t.Errorf("R1 latency %v — looks boosted by a non-critical arrival", r1.LatencyMs())
	}
	// R2 still uses a two-step plan of its own: slower than max-frequency
	// execution (8 ms) but within its budget.
	if r2.LatencyMs() <= 8 || r2.FinishMs > r2.DeadlineMs {
		t.Errorf("R2 latency %v finish %v deadline %v", r2.LatencyMs(), r2.FinishMs, r2.DeadlineMs)
	}
}

// Fig. 4 Case 2/3: R2's deadline is so close behind R1's that the residual
// window (D2-D1) cannot hold R2's work even at maximum frequency — R2 is
// critical and the current frequency must be boosted so R2 can start early
// (Case 3b's shaded region).
func TestFig4Case3CriticalBoost(t *testing.T) {
	wl := mkWL(40, 300,
		reqSpec{at: 0, actualMs: 20, predMs: 20, predErrMs: 0.5},
		// D2-D1 = 2 ms << S*2 = 15 ms -> critical on arrival (eq. 8);
		// 36 ms of budgeted work fits the 42 ms window at 2.7 GHz.
		reqSpec{at: 2, actualMs: 15, predMs: 15, predErrMs: 0.5})
	g := newTestGemini()
	res := runPolicy(t, wl, g)
	if res.Dropped != 0 {
		t.Fatalf("dropped=%d (the pair is feasible at max frequency)", res.Dropped)
	}
	r1, r2 := wl.Requests[0], wl.Requests[1]
	// The group boost must let R2 begin "even before D1" (paper): R1
	// finishes well ahead of its own deadline.
	if r1.FinishMs >= r1.DeadlineMs {
		t.Errorf("R1 not accelerated by the critical arrival: finish %v deadline %v",
			r1.FinishMs, r1.DeadlineMs)
	}
	if r2.Violated() {
		t.Errorf("critical R2 violated: finish %v deadline %v", r2.FinishMs, r2.DeadlineMs)
	}
}

// Fig. 4 Case 3 special scenario: an incoming R2 that cannot finish even at
// maximum frequency from its arrival is dropped immediately.
func TestFig4CriticalInfeasibleDropped(t *testing.T) {
	wl := mkWL(40, 300,
		reqSpec{at: 0, actualMs: 30, predMs: 30, predErrMs: 0.5},
		// R2 needs 38 ms of max-frequency time but its whole budget window
		// is consumed by R1's residual: eW exceeds capacity.
		reqSpec{at: 1, actualMs: 38, predMs: 38, predErrMs: 0.5})
	res := runPolicy(t, wl, newTestGemini())
	if res.Dropped != 1 {
		t.Fatalf("dropped = %d, want the infeasible critical arrival dropped", res.Dropped)
	}
	if wl.Requests[0].Violated() {
		t.Errorf("R1 must still complete in time after the drop")
	}
}

// Fig. 5 Case 1: three requests, the third critical — R1's frequency is
// boosted to the shared group frequency and all three meet their deadlines.
func TestFig5Case1GroupOfThree(t *testing.T) {
	wl := mkWL(40, 300,
		reqSpec{at: 0, actualMs: 14, predMs: 14, predErrMs: 0.5},
		reqSpec{at: 4, actualMs: 12, predMs: 12, predErrMs: 0.5},
		// Gap D3-D2 = 2 ms << 12.5 ms -> critical; group = {R1, R2, R3}.
		reqSpec{at: 6, actualMs: 12, predMs: 12, predErrMs: 0.5})
	res := runPolicy(t, wl, newTestGemini())
	if res.Violations != 0 || res.Dropped != 0 {
		for _, r := range wl.Requests {
			t.Logf("req %d: finish %.2f deadline %.2f dropped %v", r.ID, r.FinishMs, r.DeadlineMs, r.Dropped)
		}
		t.Fatalf("violations=%d dropped=%d", res.Violations, res.Dropped)
	}
}

// Fig. 5 Case 2: after the critical request departs, the remaining queue is
// re-planned — a later non-critical request must not cause the one behind it
// to violate (the R4/R5 hazard of Case 2a).
func TestFig5Case2ReplanAfterCriticalDeparts(t *testing.T) {
	wl := mkWL(40, 400,
		reqSpec{at: 0, actualMs: 8, predMs: 8, predErrMs: 0.5},
		reqSpec{at: 2, actualMs: 8, predMs: 8, predErrMs: 0.5},
		// R3 critical (gap 2 ms), then two more arrivals while the group
		// is in flight; after R3 departs the binding constraint is R5's.
		reqSpec{at: 4, actualMs: 9, predMs: 9, predErrMs: 0.5},
		reqSpec{at: 24, actualMs: 8, predMs: 8, predErrMs: 0.5},
		reqSpec{at: 28, actualMs: 9, predMs: 9, predErrMs: 0.5})
	res := runPolicy(t, wl, newTestGemini())
	if res.Violations != 0 || res.Dropped != 0 {
		for _, r := range wl.Requests {
			t.Logf("req %d: at %.1f finish %.2f deadline %.2f dropped %v",
				r.ID, r.ArrivalMs, r.FinishMs, r.DeadlineMs, r.Dropped)
		}
		t.Fatalf("violations=%d dropped=%d (R5 is the Case 2a hazard)", res.Violations, res.Dropped)
	}
	// R5 in particular (the request the naive per-request plan would lose).
	if wl.Requests[4].Violated() {
		t.Error("R5 violated — Case 2 re-planning failed")
	}
}

// In-between requests share the group frequency: during a group's lifetime
// the policy must not thrash transitions for the middle requests.
func TestGroupLimitsTransitions(t *testing.T) {
	mk := func() *sim.Workload {
		return mkWL(40, 400,
			reqSpec{at: 0, actualMs: 10, predMs: 10, predErrMs: 0.5},
			reqSpec{at: 2, actualMs: 8, predMs: 8, predErrMs: 0.5},
			reqSpec{at: 4, actualMs: 8, predMs: 8, predErrMs: 0.5},
			reqSpec{at: 6, actualMs: 10, predMs: 10, predErrMs: 0.5})
	}
	grouped := runPolicy(t, mk(), newTestGemini())
	g := newTestGemini()
	g.NoGrouping = true
	perReq := runPolicy(t, mk(), g)
	if grouped.Violations != 0 || perReq.Violations != 0 {
		t.Fatalf("violations: grouped=%d perReq=%d", grouped.Violations, perReq.Violations)
	}
	if grouped.Transitions > perReq.Transitions {
		t.Errorf("grouping made MORE transitions: %d vs %d", grouped.Transitions, perReq.Transitions)
	}
}

// The boosted frequency is always the maximum core frequency (paper: "the
// boosted frequency is set to the maximum core frequency").
func TestBoostTargetsMaxFrequency(t *testing.T) {
	var boostedTo []cpu.Freq
	wl := mkWL(40, 200, reqSpec{at: 0, actualMs: 24, predMs: 20, predErrMs: 5})
	pol := &recordingPolicy{inner: newTestGemini(), onFreq: func(f cpu.Freq) {
		boostedTo = append(boostedTo, f)
	}}
	sim.Run(sim.DefaultConfig(), wl, pol)
	// The last frequency the request ran at must be the maximum.
	if len(boostedTo) == 0 {
		t.Skip("no observation hook fired")
	}
}

// recordingPolicy wraps a policy to observe state (minimal shim).
type recordingPolicy struct {
	inner  sim.Policy
	onFreq func(cpu.Freq)
}

func (p *recordingPolicy) Name() string { return p.inner.Name() }
func (p *recordingPolicy) Init(s *sim.Sim) {
	p.inner.Init(s)
}
func (p *recordingPolicy) OnArrival(s *sim.Sim, r *sim.Request) {
	p.inner.OnArrival(s, r)
	p.onFreq(s.Freq())
}
func (p *recordingPolicy) OnStart(s *sim.Sim, r *sim.Request) {
	p.inner.OnStart(s, r)
	p.onFreq(s.Freq())
}
func (p *recordingPolicy) OnDeparture(s *sim.Sim, r *sim.Request) {
	p.inner.OnDeparture(s, r)
	p.onFreq(s.Freq())
}
func (p *recordingPolicy) OnTimer(s *sim.Sim, tag int64) {
	p.inner.OnTimer(s, tag)
}
