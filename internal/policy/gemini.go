package policy

import (
	"math"

	"gemini/internal/core"
	"gemini/internal/cpu"
	"gemini/internal/predictor"
	"gemini/internal/sim"
)

// Gemini is the paper's contribution wired to the simulator: per-query
// two-step DVFS (§III-A) driven by the NN service-time predictor and the NN
// error predictor, with group frequency planning around critical requests
// under queueing (§III-B/C) and the drop rule for infeasible requests.
//
// The ablation variants of §VI are the same controller with the predictors
// swapped: Gemini-α replaces the error NN with a moving average of recent
// errors, Gemini-95th additionally replaces the latency NN with the
// 95th-percentile distribution estimate.
type Gemini struct {
	// Label distinguishes the variants in reports ("Gemini", "Gemini-a",
	// "Gemini-95th").
	Label string
	// Params is the planner math (frequencies, Tdvfs, ladder).
	Params core.Params
	// Service predicts per-query service time at FDefault (eq. 1).
	Service predictor.ServicePredictor
	// ErrPred predicts the service predictor's error (eq. 6). For Gemini-α
	// pass a *predictor.MovingAvgError; it is fed on every departure.
	ErrPred predictor.ErrorPredictor
	// DisableDrop keeps infeasible requests (failure-injection tests).
	DisableDrop bool
	// DisableBoost removes the second DVFS step (ablation: one-step DVFS
	// from the prediction alone — quantifies the catch-up step's value).
	DisableBoost bool
	// NoGrouping re-plans individually at every request start instead of
	// pinning a shared group frequency (ablation: quantifies the transition
	// overhead the grouping rule of §III-C avoids).
	NoGrouping bool
	// UseCachedService / UseCachedErr route OnArrival's predictions through
	// the workload's precomputed table (sim.Predictions) instead of invoking
	// Service / ErrPred per arrival. The harness sets these only when the
	// table was produced by the very same predictor instances, so cached and
	// live paths are bit-identical; stateful estimators (Gemini-α's moving
	// average) must keep the live path.
	UseCachedService bool
	UseCachedErr     bool
	// IdleFreq is applied when the queue drains.
	IdleFreq cpu.Freq

	// Group state: while a critical request is in flight, every request up
	// to and including it shares the group frequency and must not re-plan
	// individually (§III-C: "all requests in between ... adopt the same
	// frequency to minimize the frequency transition overhead").
	groupMembers map[int]bool
	criticalID   int
}

// NewGemini builds the full design (service NN + error NN).
func NewGemini(svc predictor.ServicePredictor, errp predictor.ErrorPredictor) *Gemini {
	return &Gemini{
		Label:      "Gemini",
		Params:     core.DefaultParams(),
		Service:    svc,
		ErrPred:    errp,
		IdleFreq:   cpu.DefaultLadder().Min(),
		criticalID: -1,
	}
}

// NewGeminiAlpha builds the Gemini-α ablation: the error NN is replaced by
// the moving average of the last 60 observed errors (§VI-A).
func NewGeminiAlpha(svc predictor.ServicePredictor) *Gemini {
	g := NewGemini(svc, predictor.NewMovingAvgError(60))
	g.Label = "Gemini-a"
	return g
}

// NewGemini95 builds the Gemini-95th ablation: Gemini-α with the latency NN
// also replaced by the 95th-percentile distribution estimate (§VI-D).
func NewGemini95(p95 *predictor.Percentile95) *Gemini {
	g := NewGemini(p95, predictor.NewMovingAvgError(60))
	g.Label = "Gemini-95th"
	// The constant tail estimate wildly overstates most requests' work;
	// Gemini's drop rule would spuriously abandon queued requests that are
	// perfectly feasible, so this variant only uses the estimate for
	// frequency selection (as Rubik does).
	g.DisableDrop = true
	return g
}

// Name implements sim.Policy.
func (g *Gemini) Name() string {
	if g.Label == "" {
		return "Gemini"
	}
	return g.Label
}

// Init implements sim.Policy.
func (g *Gemini) Init(s *sim.Sim) {
	if g.groupMembers == nil {
		g.groupMembers = make(map[int]bool)
	}
	g.criticalID = -1
	s.SetFreq(g.IdleFreq)
}

// OnArrival implements sim.Policy: predict, then apply the critical-request
// test when the request queues behind others (§III-B/C).
func (g *Gemini) OnArrival(s *sim.Sim, r *sim.Request) {
	svcMs, errMs, cached := s.Predictions().Lookup(r)
	if cached && g.UseCachedService {
		r.PredictedMs = svcMs
	} else {
		r.PredictedMs = g.Service.PredictMs(r.Features)
	}
	if cached && g.UseCachedErr {
		r.PredErrMs = errMs
	} else {
		r.PredErrMs = g.ErrPred.PredictErrMs(r.Features)
	}

	q := s.Queue()
	if len(q) < 2 {
		return // idle server: OnStart plans the two-step schedule
	}

	prev := q[len(q)-2]
	if !g.Params.IsCritical(prev.DeadlineMs, r.DeadlineMs, r.PredictedMs, r.PredErrMs) {
		return // Case 1b: non-critical, no reconfiguration needed
	}

	// Case 3b / Case 1 (N requests): boost the current frequency so the
	// whole group clears before the critical deadline.
	eW := g.equivalentWork(s, q, len(q)-1)
	plan := g.Params.PlanGroup(s.Now(), r.DeadlineMs, eW, r.PredErrMs)
	if plan.Drop {
		if !g.DisableDrop {
			s.Drop(r)
		}
		return
	}
	// Never lower the in-flight frequency: earlier guarantees assumed it.
	freq := plan.Initial
	if s.Freq() > freq {
		freq = s.Freq()
	}
	s.ClearPlannedChanges()
	s.SetFreq(freq)
	if plan.HasBoost() && !g.DisableBoost {
		s.PlanFreqChange(plan.BoostAt, plan.Boost)
	}
	g.tracePlan(s, r, freq, plan, r.ID)
	g.groupMembers = make(map[int]bool, len(q))
	for _, m := range q {
		g.groupMembers[m.ID] = true
	}
	g.criticalID = r.ID
}

// OnStart implements sim.Policy: requests covered by an active group keep
// the shared frequency; everything else gets its own two-step plan.
func (g *Gemini) OnStart(s *sim.Sim, r *sim.Request) {
	if !g.NoGrouping && g.criticalID >= 0 && g.groupMembers[r.ID] {
		return
	}
	g.planHead(s, r)
}

// planHead computes the queue-aware plan when request r begins executing:
// with an empty tail this is the single-request two-step DVFS of §III-A;
// with queued successors it finds the binding (critical) request and applies
// the group construction of §III-C ("we find the next critical request ...
// then our design uses the method in Case 1").
func (g *Gemini) planHead(s *sim.Sim, r *sim.Request) {
	q := s.Queue()
	bind := g.bindingIndex(s, q)
	if bind == 0 {
		plan := g.Params.PlanSingle(s.Now(), r.DeadlineMs, r.PredictedMs, r.PredErrMs)
		g.applyPlan(s, r, plan)
		return
	}
	crit := q[bind]
	eW := g.equivalentWork(s, q, bind)
	plan := g.Params.PlanGroup(s.Now(), crit.DeadlineMs, eW, crit.PredErrMs)
	if plan.Drop {
		// The binding request cannot make it even at maximum: drop it and
		// re-plan for the rest.
		if !g.DisableDrop {
			s.Drop(crit)
			g.planHead(s, r)
			return
		}
		plan.Drop = false // failure-injection mode: run at max instead
	}
	s.ClearPlannedChanges()
	s.SetFreq(plan.Initial)
	if plan.HasBoost() && !g.DisableBoost {
		s.PlanFreqChange(plan.BoostAt, plan.Boost)
	}
	g.tracePlan(s, r, plan.Initial, plan, crit.ID)
	g.groupMembers = make(map[int]bool, bind+1)
	for _, m := range q[:bind+1] {
		g.groupMembers[m.ID] = true
	}
	g.criticalID = crit.ID
}

// applyPlan executes a single-request plan for the head request.
func (g *Gemini) applyPlan(s *sim.Sim, r *sim.Request, plan core.Plan) {
	if plan.Drop {
		if !g.DisableDrop {
			s.Drop(r)
			return
		}
		plan = core.Plan{Initial: g.Params.FDefault, Boost: g.Params.FDefault}
	}
	s.ClearPlannedChanges()
	s.SetFreq(plan.Initial)
	if plan.HasBoost() && !g.DisableBoost {
		s.PlanFreqChange(plan.BoostAt, plan.Boost)
	}
	g.tracePlan(s, r, plan.Initial, plan, -1)
}

// tracePlan reports the chosen schedule to the decision tracer (no-op when
// tracing is disabled). The boost step is reported only when it will
// actually be armed, so disabled-boost ablations trace what they execute.
func (g *Gemini) tracePlan(s *sim.Sim, r *sim.Request, initial cpu.Freq, plan core.Plan, criticalID int) {
	if !s.TraceEnabled() {
		return
	}
	boost, boostAt := cpu.Freq(0), 0.0
	if plan.HasBoost() && !g.DisableBoost {
		boost, boostAt = plan.Boost, plan.BoostAt
	}
	s.TracePlan(r, initial, boost, boostAt, criticalID)
}

// bindingIndex returns the queue index whose deadline demands the highest
// shared frequency from now on — index 0 means the head alone binds.
func (g *Gemini) bindingIndex(s *sim.Sim, q []*sim.Request) int {
	fdef := float64(g.Params.FDefault)
	now := s.Now()
	cum := float64(g.Params.HeadResidual(q[0].PredictedMs, q[0].PredErrMs, q[0].WorkDone))
	best, bestReq := 0, 0.0
	for k, r := range q {
		if k > 0 {
			if k == len(q)-1 {
				cum += r.PredictedMs * fdef // eq. 12: last request budgets S* only
			} else {
				cum += (r.PredictedMs + r.PredErrMs) * fdef
			}
		}
		window := r.DeadlineMs - now - g.Params.TdvfsMs
		req := fdef // infeasible window: max pressure
		if window > 0 {
			req = cum / window
		}
		if req > bestReq {
			bestReq, best = req, k
		}
	}
	return best
}

// equivalentWork implements eq. 12 over the live queue: head residual plus
// budgeted work of requests 1..critIdx-1 plus the critical request's S*.
func (g *Gemini) equivalentWork(s *sim.Sim, q []*sim.Request, critIdx int) cpu.Work {
	head := q[0]
	residual := g.Params.HeadResidual(head.PredictedMs, head.PredErrMs, head.WorkDone)
	between := make([]core.QueuedEstimate, 0, critIdx-1)
	for _, m := range q[1:critIdx] {
		between = append(between, core.QueuedEstimate{PredMs: m.PredictedMs, PredErrMs: m.PredErrMs})
	}
	return g.Params.EquivalentWork(residual, between, q[critIdx].PredictedMs)
}

// OnDeparture implements sim.Policy: feed the moving-average estimator (the
// α variant observes true errors of completed requests), close the group
// when its critical request leaves, and drop to the idle frequency when the
// queue drains.
func (g *Gemini) OnDeparture(s *sim.Sim, r *sim.Request) {
	if ma, ok := g.ErrPred.(*predictor.MovingAvgError); ok {
		// Gemini-α observes the completed request's error magnitude; the
		// estimator turns the window into a conservative population slack.
		actualMs := float64(r.WorkTotal) / float64(g.Params.FDefault)
		ma.Observe(math.Abs(actualMs - r.PredictedMs))
	}
	delete(g.groupMembers, r.ID)
	if r.ID == g.criticalID {
		g.criticalID = -1
		g.groupMembers = make(map[int]bool)
		// The successor's OnStart (fired right after this) re-plans the
		// remaining queue via planHead.
	}
	if len(s.Queue()) == 0 {
		s.ClearPlannedChanges()
		s.SetFreq(g.IdleFreq)
	}
}

// OnTimer implements sim.Policy.
func (g *Gemini) OnTimer(*sim.Sim, int64) {}
