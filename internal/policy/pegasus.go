package policy

import (
	"gemini/internal/cpu"
	"gemini/internal/sim"
)

// Pegasus is the coarse-grained epoch-based feedback controller of Lo et al.
// (paper ref [14], described in §II-B and §VI-A): it measures request
// latencies over an epoch and steps the whole core's frequency — to maximum
// on a deadline violation, down when the epoch's worst latency leaves more
// than 35% headroom (the paper's 65% threshold), up when headroom gets thin.
// The paper scales the epoch to 125 ms for the 1000 s runs.
type Pegasus struct {
	// EpochMs is the controller period (125 ms in the paper's scaled setup).
	EpochMs float64

	epochLat []float64
}

// NewPegasus returns the controller with the paper's scaled epoch.
func NewPegasus() *Pegasus { return &Pegasus{EpochMs: 125} }

// Name implements sim.Policy.
func (p *Pegasus) Name() string { return "Pegasus" }

// Init implements sim.Policy.
func (p *Pegasus) Init(s *sim.Sim) {
	s.SetFreq(cpu.FDefault)
	s.SetTimer(p.EpochMs, 0)
}

// OnArrival implements sim.Policy.
func (p *Pegasus) OnArrival(*sim.Sim, *sim.Request) {}

// OnStart implements sim.Policy.
func (p *Pegasus) OnStart(*sim.Sim, *sim.Request) {}

// OnDeparture implements sim.Policy: record the completed latency for the
// epoch's feedback decision.
func (p *Pegasus) OnDeparture(s *sim.Sim, r *sim.Request) {
	p.epochLat = append(p.epochLat, r.LatencyMs())
}

// OnTimer implements sim.Policy: the epoch controller.
func (p *Pegasus) OnTimer(s *sim.Sim, _ int64) {
	budget := s.BudgetMs()
	worst := 0.0
	for _, l := range p.epochLat {
		if l > worst {
			worst = l
		}
	}
	p.epochLat = p.epochLat[:0]

	ladder := s.Ladder()
	switch {
	case worst > budget:
		// Violation: jump straight to maximum.
		s.SetFreq(cpu.FDefault)
	case worst > 0.65*budget:
		// Thin headroom: climb back toward safety.
		s.SetFreq(ladder.StepUp(s.Freq()))
	case worst > 0 && worst < 0.65*budget:
		// "When the measured latency is smaller than 65% of the given time
		// budget, the CPU frequency is reduced" (§II-B).
		s.SetFreq(ladder.StepDown(s.Freq()))
	case worst == 0:
		// An epoch without completions carries no latency signal: hold (the
		// paper's unsharded ISNs never see an empty epoch, so the controller
		// defines no action for one).
	}
	// Pegasus decides per epoch, not per request; the in-flight head (if
	// any) inherits the epoch's frequency, which is what its decision record
	// should show.
	if q := s.Queue(); len(q) > 0 {
		s.TracePlan(q[0], s.Freq(), 0, 0, -1)
	}
	s.SetTimer(s.Now()+p.EpochMs, 0)
}
