package policy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gemini/internal/cpu"
	"gemini/internal/predictor"
	"gemini/internal/search"
	"gemini/internal/sim"
)

// Test predictors read the expected prediction straight from feature slots:
// Features[0] = predicted service ms, Features[1] = predicted error ms.
type featService struct{}

func (featService) PredictMs(fv search.FeatureVector) float64 { return fv[0] }
func (featService) Name() string                              { return "feat-service" }
func (featService) OverheadUs() float64                       { return 1 }

type featError struct{}

func (featError) PredictErrMs(fv search.FeatureVector) float64 { return fv[1] }
func (featError) Name() string                                 { return "feat-error" }
func (featError) OverheadUs() float64                          { return 1 }

// req builds a request with explicit actual work (GHz·ms), predicted ms and
// predicted error ms.
type reqSpec struct {
	at, actualMs, predMs, predErrMs float64
}

func mkWL(budget, duration float64, specs ...reqSpec) *sim.Workload {
	wl := &sim.Workload{BudgetMs: budget, DurationMs: duration}
	for i, sp := range specs {
		var fv search.FeatureVector
		fv[0] = sp.predMs
		fv[1] = sp.predErrMs
		w := cpu.Work(sp.actualMs * float64(cpu.FDefault))
		wl.Requests = append(wl.Requests, &sim.Request{
			ID: i, Features: fv, BaseWork: w, WorkTotal: w,
			ArrivalMs: sp.at, DeadlineMs: sp.at + budget,
		})
	}
	return wl
}

func runPolicy(t *testing.T, wl *sim.Workload, p sim.Policy) *sim.Result {
	t.Helper()
	return sim.Run(sim.DefaultConfig(), wl, p)
}

func newTestGemini() *Gemini { return NewGemini(featService{}, featError{}) }

func TestBaselineNeverViolatesLightLoad(t *testing.T) {
	wl := mkWL(40, 1000,
		reqSpec{at: 0, actualMs: 10, predMs: 10},
		reqSpec{at: 100, actualMs: 20, predMs: 20},
		reqSpec{at: 200, actualMs: 5, predMs: 5})
	res := runPolicy(t, wl, Baseline{})
	if res.Violations != 0 || res.Completed != 3 {
		t.Fatalf("violations=%d completed=%d", res.Violations, res.Completed)
	}
	if res.Transitions != 0 {
		t.Errorf("baseline made %d transitions", res.Transitions)
	}
	// Latency equals service time at 2.7 GHz.
	if math.Abs(wl.Requests[0].LatencyMs()-10) > 1e-9 {
		t.Errorf("latency = %v", wl.Requests[0].LatencyMs())
	}
}

func TestGeminiSingleRequestInitialFrequency(t *testing.T) {
	// 20 ms predicted (exact), 40 ms budget: eq. 5 gives 1.385, quantized
	// down to 1.2 GHz with a catch-up boost near the deadline.
	wl := mkWL(40, 200, reqSpec{at: 0, actualMs: 20, predMs: 20, predErrMs: 0})
	res := runPolicy(t, wl, newTestGemini())
	if res.Violations != 0 {
		t.Fatalf("violations = %d", res.Violations)
	}
	r := wl.Requests[0]
	// Slower than 2.7 GHz would be (20 ms), within the budget, and close to
	// the margin-adjusted deadline (the "reshaping" of Fig. 13a).
	if r.LatencyMs() <= 25 || r.LatencyMs() > 40 {
		t.Errorf("latency = %v, want within (25, 40]", r.LatencyMs())
	}
}

func TestGeminiSavesEnergyVsBaseline(t *testing.T) {
	specs := []reqSpec{}
	for i := 0; i < 20; i++ {
		specs = append(specs, reqSpec{at: float64(i) * 50, actualMs: 10, predMs: 10})
	}
	g := runPolicy(t, mkWL(40, 1100, specs...), newTestGemini())
	b := runPolicy(t, mkWL(40, 1100, specs...), Baseline{})
	if g.Violations != 0 {
		t.Fatalf("gemini violations = %d", g.Violations)
	}
	saving := g.PowerSavingVs(b, cpu.DefaultPowerModel())
	if saving < 0.25 {
		t.Errorf("gemini saving = %.2f, want > 0.25", saving)
	}
}

func TestGeminiBoostRescuesUnderprediction(t *testing.T) {
	// Actual 26 ms, predicted 20, error predictor says +6: the boost step
	// must catch the deadline.
	wl := mkWL(40, 200, reqSpec{at: 0, actualMs: 26, predMs: 20, predErrMs: 6})
	res := runPolicy(t, wl, newTestGemini())
	if res.Violations != 0 {
		t.Fatalf("violated despite error slack: latency=%v", wl.Requests[0].LatencyMs())
	}
	if res.Transitions < 2 {
		t.Errorf("expected a boost transition, got %d transitions", res.Transitions)
	}
}

func TestGeminiWithoutErrorSlackViolates(t *testing.T) {
	// Same request but the error predictor reports 0: the initial frequency
	// is too slow and no boost is scheduled — the deadline is missed. This
	// is exactly the failure mode the second NN exists to prevent (§IV-C).
	wl := mkWL(40, 200, reqSpec{at: 0, actualMs: 26, predMs: 20, predErrMs: 0})
	g := NewGemini(featService{}, predictor.ZeroError{})
	res := runPolicy(t, wl, g)
	if res.Violations == 0 {
		t.Fatalf("expected a violation without error slack; latency=%v", wl.Requests[0].LatencyMs())
	}
}

func TestGeminiDropsInfeasible(t *testing.T) {
	wl := mkWL(40, 200, reqSpec{at: 0, actualMs: 100, predMs: 100, predErrMs: 0})
	res := runPolicy(t, wl, newTestGemini())
	if res.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", res.Dropped)
	}
	// With drops disabled it runs at max and violates instead.
	g := newTestGemini()
	g.DisableDrop = true
	wl2 := mkWL(40, 200, reqSpec{at: 0, actualMs: 100, predMs: 100, predErrMs: 0})
	res2 := runPolicy(t, wl2, g)
	if res2.Dropped != 0 || res2.Completed != 1 || res2.Violations != 1 {
		t.Errorf("no-drop mode: %+v", res2)
	}
}

func TestGeminiIdleFrequency(t *testing.T) {
	wl := mkWL(40, 500, reqSpec{at: 0, actualMs: 10, predMs: 10})
	g := newTestGemini()
	cfg := sim.DefaultConfig()
	res := sim.Run(cfg, wl, g)
	// After the queue drains Gemini parks at the ladder minimum: average
	// power must be near the idle floor, far below baseline's.
	idleW := cfg.Power.CoreW(cpu.DefaultLadder().Min(), false)
	if res.AvgCorePowW > idleW*1.5 {
		t.Errorf("avg power %v too high for a mostly idle run (idle floor %v)", res.AvgCorePowW, idleW)
	}
}

func TestGeminiCriticalRequestGroupBoost(t *testing.T) {
	// Head: 20 ms predicted, runs slow. Critical arrival at t=5 with a
	// deadline only 5 ms after the head's: must trigger the group boost
	// (eq. 8: gap 5 < 18 predicted).
	wl := mkWL(40, 300,
		reqSpec{at: 0, actualMs: 20, predMs: 20, predErrMs: 0},
		reqSpec{at: 5, actualMs: 18, predMs: 18, predErrMs: 0})
	res := runPolicy(t, wl, newTestGemini())
	if res.Violations != 0 || res.Dropped != 0 {
		t.Fatalf("violations=%d dropped=%d (lat0=%v lat1=%v)",
			res.Violations, res.Dropped,
			wl.Requests[0].LatencyMs(), wl.Requests[1].LatencyMs())
	}
	// Both must finish before their deadlines with the shared frequency.
	if wl.Requests[1].FinishMs > wl.Requests[1].DeadlineMs {
		t.Errorf("critical request finished at %v, deadline %v",
			wl.Requests[1].FinishMs, wl.Requests[1].DeadlineMs)
	}
}

func TestGeminiNonCriticalArrivalNoReplan(t *testing.T) {
	// Second request's deadline leaves plenty of room after the first's:
	// non-critical, so the in-flight frequency must not change on arrival.
	wl := mkWL(40, 500,
		reqSpec{at: 0, actualMs: 8, predMs: 8, predErrMs: 0},
		reqSpec{at: 30, actualMs: 5, predMs: 5, predErrMs: 0})
	res := runPolicy(t, wl, newTestGemini())
	if res.Violations != 0 {
		t.Fatalf("violations = %d", res.Violations)
	}
}

func TestGeminiQueueChain(t *testing.T) {
	// A burst of five requests with staggered deadlines: all must complete
	// in FIFO order without violations (predictions exact).
	var specs []reqSpec
	for i := 0; i < 5; i++ {
		specs = append(specs, reqSpec{at: float64(i), actualMs: 6, predMs: 6, predErrMs: 0.5})
	}
	wl := mkWL(40, 300, specs...)
	res := runPolicy(t, wl, newTestGemini())
	if res.Violations != 0 || res.Completed != 5 {
		for _, r := range wl.Requests {
			t.Logf("req %d: lat %.2f deadline %.2f dropped %v", r.ID, r.LatencyMs(), r.DeadlineMs-r.ArrivalMs, r.Dropped)
		}
		t.Fatalf("violations=%d completed=%d", res.Violations, res.Completed)
	}
}

func TestGeminiAlphaObservesErrors(t *testing.T) {
	// Systematic +2 ms underprediction: after enough departures the moving
	// average approaches +2 and later requests stop violating.
	var specs []reqSpec
	for i := 0; i < 30; i++ {
		specs = append(specs, reqSpec{at: float64(i) * 100, actualMs: 22, predMs: 20})
	}
	wl := mkWL(40, 3100, specs...)
	g := NewGeminiAlpha(featService{})
	res := runPolicy(t, wl, g)
	// Early requests may violate; late ones must not.
	late := wl.Requests[20:]
	for _, r := range late {
		if r.Violated() {
			t.Errorf("late request %d still violates (lat %.2f)", r.ID, r.LatencyMs())
		}
	}
	if res.Completed != 30 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestGemini95UsesConstantEstimate(t *testing.T) {
	p95 := &predictor.Percentile95{ValueMs: 35, P: 95}
	g := NewGemini95(p95)
	// Short request (15 ms) still planned as if 35 ms: runs faster than
	// necessary (2.4 GHz instead of 1.2), wasting energy vs full Gemini —
	// the Fig. 14 gap.
	wlA := mkWL(40, 300, reqSpec{at: 0, actualMs: 15, predMs: 15})
	resA := runPolicy(t, wlA, g)
	wlB := mkWL(40, 300, reqSpec{at: 0, actualMs: 15, predMs: 15})
	resB := runPolicy(t, wlB, newTestGemini())
	if resA.Violations != 0 || resB.Violations != 0 {
		t.Fatal("violations in either variant")
	}
	if resB.EnergyMJ >= resA.EnergyMJ {
		t.Errorf("full Gemini energy %v >= Gemini-95th %v", resB.EnergyMJ, resA.EnergyMJ)
	}
}

func TestRubikMeetsDeadlinesConservatively(t *testing.T) {
	var specs []reqSpec
	rng := rand.New(rand.NewSource(4))
	at := 0.0
	for i := 0; i < 40; i++ {
		at += rng.ExpFloat64() * 20
		actual := 2 + rng.Float64()*10 // all under the 13 ms tail estimate
		specs = append(specs, reqSpec{at: at, actualMs: actual, predMs: actual})
	}
	wl := mkWL(40, at+100, specs...)
	res := runPolicy(t, wl, NewRubik(13))
	if res.Violations != 0 {
		t.Fatalf("rubik violations = %d", res.Violations)
	}
	if res.Completed != 40 {
		t.Errorf("completed = %d", res.Completed)
	}
}

func TestRubikUsesMoreEnergyThanGemini(t *testing.T) {
	var specs []reqSpec
	for i := 0; i < 30; i++ {
		specs = append(specs, reqSpec{at: float64(i) * 50, actualMs: 10, predMs: 10, predErrMs: 0.5})
	}
	dur := 30*50 + 100.0
	// Rubik plans every request as a 30 ms tail case (2.2 GHz); Gemini's
	// per-query prediction runs these 10 ms requests at 1.2 GHz.
	rb := runPolicy(t, mkWL(40, dur, specs...), NewRubik(30))
	gm := runPolicy(t, mkWL(40, dur, specs...), newTestGemini())
	if gm.Violations != 0 || rb.Violations != 0 {
		t.Fatal("violations")
	}
	if gm.EnergyMJ >= rb.EnergyMJ {
		t.Errorf("gemini energy %v >= rubik %v (per-query prediction should win)", gm.EnergyMJ, rb.EnergyMJ)
	}
}

func TestPegasusStepsDownUnderLightLoad(t *testing.T) {
	// Short requests far below the budget: epochs keep stepping down.
	var specs []reqSpec
	for i := 0; i < 40; i++ {
		specs = append(specs, reqSpec{at: float64(i) * 100, actualMs: 5, predMs: 5})
	}
	wl := mkWL(40, 4100, specs...)
	res := runPolicy(t, wl, NewPegasus())
	if res.Violations != 0 {
		t.Fatalf("violations = %d", res.Violations)
	}
	b := runPolicy(t, mkWL(40, 4100, specs...), Baseline{})
	if res.EnergyMJ >= b.EnergyMJ {
		t.Errorf("pegasus energy %v >= baseline %v", res.EnergyMJ, b.EnergyMJ)
	}
}

func TestPegasusRecoversFromViolation(t *testing.T) {
	// A long request violates at low frequency; the next epoch jumps to max.
	specs := []reqSpec{
		{at: 0, actualMs: 5, predMs: 5},     // settles the controller down
		{at: 500, actualMs: 39, predMs: 39}, // will violate at low freq
		{at: 700, actualMs: 39, predMs: 39}, // must run at max
	}
	wl := mkWL(40, 1200, specs...)
	res := runPolicy(t, wl, NewPegasus())
	_ = res
	last := wl.Requests[2]
	// After the violation epoch the controller is at max: 39 ms fits.
	if last.Violated() {
		t.Errorf("pegasus did not recover: latency %v", last.LatencyMs())
	}
}

func TestEETLCompletesAndAdapts(t *testing.T) {
	var specs []reqSpec
	rng := rand.New(rand.NewSource(9))
	at := 0.0
	for i := 0; i < 60; i++ {
		at += rng.ExpFloat64() * 30
		specs = append(specs, reqSpec{at: at, actualMs: 3 + rng.Float64()*9})
	}
	wl := mkWL(40, at+100, specs...)
	res := runPolicy(t, wl, NewEETL())
	if res.Completed != 60 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if res.ViolationRate() > 0.15 {
		t.Errorf("EETL violation rate = %v", res.ViolationRate())
	}
}

func TestPACEOracleIsLowerBound(t *testing.T) {
	var specs []reqSpec
	rng := rand.New(rand.NewSource(5))
	at := 0.0
	for i := 0; i < 40; i++ {
		at += rng.ExpFloat64() * 25
		ms := 2 + rng.Float64()*12
		specs = append(specs, reqSpec{at: at, actualMs: ms, predMs: ms, predErrMs: 1})
	}
	dur := at + 100
	oracle := runPolicy(t, mkWL(40, dur, specs...), NewPACEOracle())
	gem := runPolicy(t, mkWL(40, dur, specs...), newTestGemini())
	// Just-in-time pacing can lose a few deadlines to bursts it cannot
	// foresee (Table I's criticism of PACE); the energy bound is the point.
	if oracle.ViolationRate() > 0.15 {
		t.Fatalf("oracle violation rate = %v", oracle.ViolationRate())
	}
	if oracle.EnergyMJ > gem.EnergyMJ*1.02 {
		t.Errorf("oracle energy %v above Gemini %v — not a lower bound", oracle.EnergyMJ, gem.EnergyMJ)
	}
}

func TestSleepWrapperSavesIdleEnergy(t *testing.T) {
	specs := []reqSpec{{at: 0, actualMs: 10, predMs: 10}}
	plain := runPolicy(t, mkWL(40, 2000, specs...), newTestGemini())
	slept := runPolicy(t, mkWL(40, 2000, specs...), NewSleepWrapper(newTestGemini()))
	if slept.EnergyMJ >= plain.EnergyMJ {
		t.Errorf("sleep energy %v >= plain %v", slept.EnergyMJ, plain.EnergyMJ)
	}
	if slept.Violations != 0 {
		t.Errorf("sleep wrapper caused violations")
	}
}

func TestSleepWrapperWakeLatencyCharged(t *testing.T) {
	specs := []reqSpec{
		{at: 0, actualMs: 10, predMs: 10},
		{at: 1000, actualMs: 10, predMs: 10},
	}
	wl := mkWL(40, 2000, specs...)
	res := runPolicy(t, wl, NewSleepWrapper(newTestGemini()))
	if res.Violations != 0 {
		t.Fatal("violations")
	}
	// The second request pays the wake latency on top of its service time;
	// it must still be well within budget.
	if wl.Requests[1].LatencyMs() <= wl.Requests[0].LatencyMs()-1e9 {
		t.Errorf("unexpected latencies: %v vs %v", wl.Requests[1].LatencyMs(), wl.Requests[0].LatencyMs())
	}
}

func TestFixedFreqPolicy(t *testing.T) {
	wl := mkWL(200, 300, reqSpec{at: 0, actualMs: 10, predMs: 10})
	res := runPolicy(t, wl, FixedFreq{F: 1.2})
	want := 10*2.7/1.2 + cpu.TdvfsMs
	if math.Abs(res.Latencies[0]-want) > 1e-6 {
		t.Errorf("latency = %v, want %v", res.Latencies[0], want)
	}
}

// Property: with exact predictions and a feasible, lightly loaded workload,
// Gemini never violates a deadline — the paper's guarantee when the error
// bound holds.
func TestGeminiNoViolationWithPerfectPredictionsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var specs []reqSpec
		at := 0.0
		for i := 0; i < 25; i++ {
			at += 15 + rng.ExpFloat64()*25
			ms := 1 + rng.Float64()*12
			specs = append(specs, reqSpec{at: at, actualMs: ms, predMs: ms, predErrMs: 0.5})
		}
		wl := mkWL(40, at+100, specs...)
		res := sim.Run(sim.DefaultConfig(), wl, newTestGemini())
		return res.Violations == 0 && res.Dropped == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Failure injection: a predictor returning garbage must not crash the
// policy, and the drop/boost machinery bounds the damage.
func TestGeminiGarbagePredictorSurvives(t *testing.T) {
	garbage := garbageService{}
	g := NewGemini(garbage, predictor.ZeroError{})
	var specs []reqSpec
	for i := 0; i < 20; i++ {
		specs = append(specs, reqSpec{at: float64(i) * 60, actualMs: 8})
	}
	wl := mkWL(40, 1300, specs...)
	res := runPolicy(t, wl, g)
	if res.Completed+res.Dropped != 20 {
		t.Fatalf("requests lost: completed=%d dropped=%d", res.Completed, res.Dropped)
	}
}

type garbageService struct{}

func (garbageService) PredictMs(fv search.FeatureVector) float64 {
	// Alternating absurd values.
	if int(fv[0])%2 == 0 {
		return -50
	}
	return 1e6
}
func (garbageService) Name() string        { return "garbage" }
func (garbageService) OverheadUs() float64 { return 1 }
