package policy

import (
	"gemini/internal/cpu"
	"gemini/internal/sim"
	"gemini/internal/stats"
)

// EETL is an EETL-style controller (paper ref [16], Table I): every request
// starts at a low frequency and boosts to maximum once its execution time
// crosses a shared threshold; the threshold is adjusted per epoch by a PID
// controller tracking the epoch tail latency against the budget. Requests in
// an epoch share the same boosting threshold, so short-term per-query
// variation is not captured — the paper's criticism.
type EETL struct {
	EpochMs   float64
	LowFreq   cpu.Freq
	threshold float64 // execution time after which a request boosts
	integral  float64
	epochLat  []float64
}

// NewEETL returns the controller with defaults matched to the 40 ms budget.
func NewEETL() *EETL {
	return &EETL{EpochMs: 125, LowFreq: cpu.FLow}
}

// Name implements sim.Policy.
func (p *EETL) Name() string { return "EETL" }

// Init implements sim.Policy.
func (p *EETL) Init(s *sim.Sim) {
	p.threshold = 0.5 * s.BudgetMs()
	s.SetFreq(p.LowFreq)
	s.SetTimer(p.EpochMs, 0)
}

// OnArrival implements sim.Policy.
func (p *EETL) OnArrival(*sim.Sim, *sim.Request) {}

// OnStart implements sim.Policy: low frequency, boost after the threshold.
func (p *EETL) OnStart(s *sim.Sim, r *sim.Request) {
	s.ClearPlannedChanges()
	s.SetFreq(p.LowFreq)
	s.PlanFreqChange(s.Now()+p.threshold, cpu.FDefault)
}

// OnDeparture implements sim.Policy.
func (p *EETL) OnDeparture(s *sim.Sim, r *sim.Request) {
	p.epochLat = append(p.epochLat, r.LatencyMs())
	if len(s.Queue()) == 0 {
		s.ClearPlannedChanges()
		s.SetFreq(p.LowFreq)
	}
}

// OnTimer implements sim.Policy: PI adjustment of the boost threshold.
func (p *EETL) OnTimer(s *sim.Sim, _ int64) {
	if len(p.epochLat) > 0 {
		tail, _ := stats.Percentile(p.epochLat, 95)
		err := 0.9*s.BudgetMs() - tail // positive: headroom, raise threshold
		p.integral += err
		p.threshold += 0.25*err + 0.02*p.integral
		if p.threshold < 0 {
			p.threshold = 0
		}
		if p.threshold > s.BudgetMs() {
			p.threshold = s.BudgetMs()
		}
		p.epochLat = p.epochLat[:0]
	}
	s.SetTimer(s.Now()+p.EpochMs, 0)
}

// PACEOracle is a clairvoyant lower bound in the spirit of PACE (paper ref
// [19], Table I): it reads each request's true total work (which no real
// policy can know) and runs the queue at the exact continuous frequency that
// finishes every request just in time. It bounds from below the power any
// prediction-based scheme could reach; the paper notes PACE's per-query LP
// "has a very high overhead, precluding real deployment".
//
// The oracle is clairvoyant about work, not about future arrivals: pacing
// just-in-time consumes all slack, so a burst landing behind a stretched
// request can make deadlines infeasible that an always-max baseline would
// have met — the same "latter request might violate its deadline" weakness
// Table I attributes to PACE. Its energy is the meaningful bound.
type PACEOracle struct {
	IdleFreq cpu.Freq
}

// NewPACEOracle returns the oracle bound policy.
func NewPACEOracle() *PACEOracle {
	return &PACEOracle{IdleFreq: cpu.DefaultLadder().Min()}
}

// Name implements sim.Policy.
func (p *PACEOracle) Name() string { return "PACE-oracle" }

// Init implements sim.Policy.
func (p *PACEOracle) Init(s *sim.Sim) { s.SetFreq(p.IdleFreq) }

// OnArrival implements sim.Policy.
func (p *PACEOracle) OnArrival(s *sim.Sim, r *sim.Request) { p.replan(s) }

// OnStart implements sim.Policy.
func (p *PACEOracle) OnStart(*sim.Sim, *sim.Request) {}

// OnDeparture implements sim.Policy.
func (p *PACEOracle) OnDeparture(s *sim.Sim, r *sim.Request) { p.replan(s) }

// OnTimer implements sim.Policy.
func (p *PACEOracle) OnTimer(*sim.Sim, int64) {}

// replan sets the exact continuous frequency clearing all true residual work
// by each deadline (no ladder quantization: the oracle has ideal hardware).
func (p *PACEOracle) replan(s *sim.Sim) {
	q := s.Queue()
	if len(q) == 0 {
		s.SetFreq(p.IdleFreq)
		return
	}
	now := s.Now()
	cum := float64(q[0].Remaining())
	required := 0.0
	for k, r := range q {
		if k > 0 {
			cum += float64(r.WorkTotal)
		}
		// Leave room for two transition stalls: this replan's and a later
		// arrival's — the oracle is clairvoyant about work, not arrivals.
		window := r.DeadlineMs - now - 2*s.TdvfsMs()
		if window <= 0 {
			required = float64(cpu.FDefault)
			break
		}
		if f := cum / window; f > required {
			required = f
		}
	}
	f := cpu.Freq(required * 1.001)
	if f < p.IdleFreq {
		f = p.IdleFreq
	}
	if f > cpu.FDefault {
		f = cpu.FDefault
	}
	s.SetFreq(f)
}
