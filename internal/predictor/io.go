package predictor

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"gemini/internal/nn"
	"gemini/internal/search"
)

// Model persistence: a trained classifier (or error predictor) is only
// usable with the exact feature scaler and bucket configuration it was
// trained with, so Save/Load bundle all three.

type classifierSnapshot struct {
	Cols    []int
	MaxMs   int
	LogCols []bool
	Mean    []float64
	Std     []float64
	// Net holds the gob-encoded network (nested, because gob decoders
	// buffer reads and cannot share a stream with a second decoder).
	Net []byte
}

// Save writes the classifier (network + scaler + configuration) to w.
func (c *NNClassifier) Save(w io.Writer) error {
	var nb bytes.Buffer
	if err := c.net.Save(&nb); err != nil {
		return err
	}
	snap := classifierSnapshot{
		Cols:    c.cols,
		MaxMs:   c.maxMs,
		LogCols: c.scaler.LogCols,
		Mean:    c.scaler.Mean,
		Std:     c.scaler.Std,
		Net:     nb.Bytes(),
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("predictor: save: %w", err)
	}
	return nil
}

// LoadClassifier reads a classifier written by Save.
func LoadClassifier(r io.Reader) (*NNClassifier, error) {
	var snap classifierSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("predictor: load: %w", err)
	}
	net, err := nn.Load(bytes.NewReader(snap.Net))
	if err != nil {
		return nil, err
	}
	wantIn := search.NumFeatures
	if snap.Cols != nil {
		wantIn = len(snap.Cols)
	}
	if net.InDim() != wantIn {
		return nil, fmt.Errorf("predictor: network input %d does not match %d features", net.InDim(), wantIn)
	}
	if net.OutDim() != snap.MaxMs+1 {
		return nil, fmt.Errorf("predictor: network output %d does not match %d buckets", net.OutDim(), snap.MaxMs+1)
	}
	scaler := &nn.Scaler{LogCols: snap.LogCols, Mean: snap.Mean, Std: snap.Std}
	return &NNClassifier{net: net, scaler: scaler, cols: snap.Cols, maxMs: snap.MaxMs}, nil
}

// SaveFile writes the classifier to a file path.
func (c *NNClassifier) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return c.Save(f)
}

// LoadClassifierFile reads a classifier from a file path.
func LoadClassifierFile(path string) (*NNClassifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadClassifier(f)
}

// Save writes the error predictor (network + scaler) to w.
func (e *NNError) Save(w io.Writer) error {
	var nb bytes.Buffer
	if err := e.net.Save(&nb); err != nil {
		return err
	}
	snap := classifierSnapshot{
		MaxMs:   2 * errRangeMs,
		LogCols: e.scaler.LogCols,
		Mean:    e.scaler.Mean,
		Std:     e.scaler.Std,
		Net:     nb.Bytes(),
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("predictor: save: %w", err)
	}
	return nil
}

// LoadError reads an error predictor written by (*NNError).Save.
func LoadError(r io.Reader) (*NNError, error) {
	var snap classifierSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("predictor: load: %w", err)
	}
	net, err := nn.Load(bytes.NewReader(snap.Net))
	if err != nil {
		return nil, err
	}
	if net.OutDim() != 2*errRangeMs+1 {
		return nil, fmt.Errorf("predictor: network output %d does not match error buckets", net.OutDim())
	}
	scaler := &nn.Scaler{LogCols: snap.LogCols, Mean: snap.Mean, Std: snap.Std}
	return &NNError{net: net, scaler: scaler}, nil
}
