package predictor

import (
	"sort"

	"gemini/internal/search"
)

// ServicePredictor estimates a query's service time (in ms at the default
// frequency) from its Table II features — paper eq. 1.
type ServicePredictor interface {
	// PredictMs returns the predicted service time at cpu.FDefault.
	PredictMs(fv search.FeatureVector) float64
	// Name identifies the model for reports.
	Name() string
	// OverheadUs is the modeled per-prediction inference latency in
	// microseconds (Fig. 7's x-axis companion).
	OverheadUs() float64
}

// ErrorPredictor estimates the signed error of the service predictor for a
// query (paper §IV-C). The sign convention is actual − predicted, so that
// S* + E* approximates the actual service time: the quantity the two-step
// planner budgets for when computing the boost time (eq. 7).
type ErrorPredictor interface {
	PredictErrMs(fv search.FeatureVector) float64
	Name() string
	OverheadUs() float64
}

// inference overhead model: a fixed dispatch/copy cost plus a per-parameter
// term, calibrated to the paper's measurements (linear 64 µs, NN regressor
// 66 µs, NN classifier 79 µs on their platform).
const (
	overheadBaseUs     = 62.0
	overheadPerParamUs = 2.3e-4
)

func modelOverheadUs(params int) float64 {
	return overheadBaseUs + overheadPerParamUs*float64(params)
}

// Percentile95 predicts the same value for every query: the p-th percentile
// of the training service-time distribution. With p=95 this is exactly the
// conservative estimator Rubik uses and the one Gemini-95th falls back to
// (paper §VI-D).
type Percentile95 struct {
	ValueMs float64
	P       float64
}

// NewPercentile returns a distribution-tail estimator fitted on train.
func NewPercentile(train []Sample, p float64) *Percentile95 {
	times := make([]float64, len(train))
	for i, s := range train {
		times[i] = s.MeasuredMs
	}
	sort.Float64s(times)
	v := 0.0
	if len(times) > 0 {
		idx := int(p / 100 * float64(len(times)-1))
		v = times[idx]
	}
	return &Percentile95{ValueMs: v, P: p}
}

// PredictMs implements ServicePredictor.
func (p *Percentile95) PredictMs(search.FeatureVector) float64 { return p.ValueMs }

// Name implements ServicePredictor.
func (p *Percentile95) Name() string { return "95th-percentile" }

// OverheadUs implements ServicePredictor: a table lookup is essentially free.
func (p *Percentile95) OverheadUs() float64 { return 1 }

// ZeroError is an ErrorPredictor that always predicts no error — used by
// ablations that disable the second NN entirely.
type ZeroError struct{}

// PredictErrMs implements ErrorPredictor.
func (ZeroError) PredictErrMs(search.FeatureVector) float64 { return 0 }

// Name implements ErrorPredictor.
func (ZeroError) Name() string { return "zero-error" }

// OverheadUs implements ErrorPredictor.
func (ZeroError) OverheadUs() float64 { return 0 }

// Eval summarizes a service predictor on a test set: the fraction of
// predictions whose absolute error exceeds tolMs (Fig. 7's "prediction
// error") and the mean absolute error.
type Eval struct {
	Model      string
	ErrorRate  float64 // fraction with |pred − actual| > tolMs
	MAEMs      float64
	OverheadUs float64
	TolMs      float64
}

// Evaluate runs the predictor over the test samples.
func Evaluate(p ServicePredictor, test []Sample, tolMs float64) Eval {
	if len(test) == 0 {
		return Eval{Model: p.Name(), TolMs: tolMs, OverheadUs: p.OverheadUs()}
	}
	bad := 0
	mae := 0.0
	for _, s := range test {
		d := p.PredictMs(s.Features) - s.MeasuredMs
		if d < 0 {
			d = -d
		}
		mae += d
		if d > tolMs {
			bad++
		}
	}
	return Eval{
		Model:      p.Name(),
		ErrorRate:  float64(bad) / float64(len(test)),
		MAEMs:      mae / float64(len(test)),
		OverheadUs: p.OverheadUs(),
		TolMs:      tolMs,
	}
}

// EvaluateError measures an error predictor: accuracy within tolMs of the
// true residual of the given service predictor (Fig. 8b's "accuracy").
func EvaluateError(ep ErrorPredictor, sp ServicePredictor, test []Sample, tolMs float64) float64 {
	if len(test) == 0 {
		return 0
	}
	hits := 0
	for _, s := range test {
		trueErr := s.MeasuredMs - sp.PredictMs(s.Features)
		d := ep.PredictErrMs(s.Features) - trueErr
		if d < 0 {
			d = -d
		}
		if d <= tolMs {
			hits++
		}
	}
	return float64(hits) / float64(len(test))
}
